package dta

// One benchmark per table and figure of the paper's evaluation (§7), plus
// the §3 integrated-vs-staged comparison and the ablation benches DESIGN.md
// calls out. Each benchmark reports the experiment's headline numbers as
// custom metrics (quality percentages, speedups, reductions) so
// `go test -bench=. -benchmem` regenerates the whole evaluation.
//
// Benchmarks run at the experiments package's Quick scale by default so the
// full sweep stays laptop-friendly; set -dtafull for Default scale (the
// numbers recorded in EXPERIMENTS.md).

import (
	"flag"
	"testing"

	"repro/internal/experiments"
)

var fullScale = flag.Bool("dtafull", false, "run benchmarks at full experiment scale")

func benchConfig() experiments.Config {
	if *fullScale {
		return experiments.Default()
	}
	return experiments.Quick()
}

func BenchmarkTable1CustomerOverview(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 4 {
			b.Fatal("table 1 rows")
		}
	}
}

func BenchmarkTable2QualityVsHandTuned(b *testing.B) {
	cfg := benchConfig()
	var rows []experiments.Table2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(100*r.QualityHand, r.Name+"_hand_%")
		b.ReportMetric(100*r.QualityDTA, r.Name+"_dta_%")
	}
}

func BenchmarkSec72TPCHExpectedVsActual(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Sec72Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Sec72(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.ExpectedImprovement, "expected_%")
	b.ReportMetric(100*res.ActualImprovement, "actual_%")
}

func BenchmarkFigure3TestServerOverhead(b *testing.B) {
	cfg := benchConfig()
	var rows []experiments.Figure3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(100*r.Reduction, r.Name+"_reduction_%")
	}
}

func BenchmarkTable3WorkloadCompression(b *testing.B) {
	cfg := benchConfig()
	var rows []experiments.Table3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, r.Name+"_speedup_x")
		b.ReportMetric(100*r.QualityDecrease, r.Name+"_quality_loss_%")
	}
}

func BenchmarkSec75ReducedStats(b *testing.B) {
	cfg := benchConfig()
	var rows []experiments.Sec75Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Sec75(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(100*r.CountReduction, r.Name+"_count_reduction_%")
		b.ReportMetric(100*r.TimeReduction, r.Name+"_time_reduction_%")
	}
}

func BenchmarkFigure4DTAvsITWQuality(b *testing.B) {
	cfg := benchConfig()
	var rows []experiments.Figure45Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure45(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(100*r.QualityDTA, r.Name+"_dta_%")
		b.ReportMetric(100*r.QualityITW, r.Name+"_itw_%")
	}
}

func BenchmarkFigure5DTAvsITWTime(b *testing.B) {
	cfg := benchConfig()
	var rows []experiments.Figure45Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure45(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.TimeDTA.Seconds()*1000, r.Name+"_dta_ms")
		b.ReportMetric(r.TimeITW.Seconds()*1000, r.Name+"_itw_ms")
	}
}

func BenchmarkSec3IntegratedVsStaged(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Sec3Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Sec3IntegratedVsStaged(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.IntegratedQuality, "integrated_%")
	b.ReportMetric(100*res.StagedQuality, "staged_%")
}

func BenchmarkAblationColumnGroupRestriction(b *testing.B) {
	benchAblation(b, experiments.AblationColumnGroupRestriction)
}

func BenchmarkAblationMerging(b *testing.B) {
	benchAblation(b, experiments.AblationMerging)
}

func BenchmarkAblationLazyAlignment(b *testing.B) {
	benchAblation(b, experiments.AblationLazyAlignment)
}

func BenchmarkAblationGreedySeed(b *testing.B) {
	benchAblation(b, experiments.AblationGreedySeed)
}

func benchAblation(b *testing.B, fn func(experiments.Config) (*experiments.AblationRow, error)) {
	b.Helper()
	cfg := benchConfig()
	var row *experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		row, err = fn(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*row.QualityOn, "quality_on_%")
	b.ReportMetric(100*row.QualityOff, "quality_off_%")
	b.ReportMetric(float64(row.CallsOn), "whatif_on")
	b.ReportMetric(float64(row.CallsOff), "whatif_off")
}
