// Command dta is the command-line front end of the tuning advisor, in the
// spirit of the dta.exe utility that ships with SQL Server 2005 (the paper's
// §2.1: DTA "can be run either from a graphical user interface or using a
// command-line executable").
//
// The tool tunes one of the built-in demonstration databases (tpch, psoft,
// synt1) against a workload file, or evaluates a user-specified
// configuration, and writes the recommendation in the public XML schema.
//
// Usage:
//
//	dta -db tpch -sf 0.01 -workload queries.sql -storage-mb 512 -out rec.xml
//	dta -db tpch -builtin -features IDX_MV -aligned
//	dta -input session.xml -db tpch          # XML-scripted session (§6.1)
//	dta -db synt1 -workload big.trc -stream  # bounded-memory streaming ingest
//	dta -db tpch -explain                    # per-structure provenance report
//	dta -db tpch -builtin -pool tpch.pool.json            # keep the costed pool
//	dta -db tpch -revise tpch.pool.json -storage-mb 256   # replay a constraint change
//
// Workload files use the trace format: one statement per line with optional
// leading weight and duration fields separated by tabs. With -stream the
// trace is folded into the online compressor as it is read, so traces far
// larger than memory tune with the same recommendation as the batch path.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/derive"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/testsrv"
	"repro/internal/workload"
	"repro/internal/xmlio"
)

func main() {
	var (
		dbName     = flag.String("db", "tpch", "demonstration database: tpch | psoft | synt1")
		sf         = flag.Float64("sf", 0.01, "scale factor / data scale for the demonstration database")
		wlPath     = flag.String("workload", "", "workload trace file (default: the database's built-in workload)")
		inputXML   = flag.String("input", "", "XML session input (overrides workload/options flags)")
		outPath    = flag.String("out", "", "write the recommendation XML here (default stdout)")
		features   = flag.String("features", "ALL", "feature set: IDX | MV | PARTITIONING | IDX_MV | IDX_PARTITIONING | ALL")
		storageMB  = flag.Int64("storage-mb", 0, "storage budget in MB (0 = 3x raw data)")
		aligned    = flag.Bool("aligned", false, "require aligned partitioning (§4)")
		evaluate   = flag.Bool("evaluate", false, "evaluate the user configuration instead of tuning (§6.3)")
		timeLimit  = flag.Duration("time-limit", 0, "tuning time bound (e.g. 5m)")
		noCompress = flag.Bool("no-compression", false, "disable workload compression (§5.1)")
		stream     = flag.Bool("stream", false, "stream -workload through the online compressor: bounded memory for very large traces, identical recommendation")
		useTestSrv = flag.Bool("test-server", false, "tune through a test server (§5.3)")
		allowDrops = flag.Bool("allow-drops", false, "allow dropping existing non-constraint structures")
		tracePath  = flag.String("trace", "", "write the session's span timeline here as Chrome trace-event JSON (view in chrome://tracing or ui.perfetto.dev)")
		explain    = flag.Bool("explain", false, "after tuning, print per-structure provenance (the greedy decision that admitted each structure, the alternatives it beat, the queries it benefits) reconstructed from the decision journal")
		jnlPath    = flag.String("journal", "", "write the session's decision journal here as NDJSON, one typed event per line")
		quiet      = flag.Bool("q", false, "suppress live progress and the summary")
		par        = flag.Int("parallelism", 0, "concurrent what-if evaluations (0 = GOMAXPROCS); the recommendation does not depend on it")
		deriveMode = flag.String("derive", "off", "cost derivation: off | on (answer composite what-if calls from atomic plan facts) | verify (derive and cross-check every derived cost); the recommendation does not depend on it")
		poolOut    = flag.String("pool", "", "write the session's costed pool here as JSON; feed it back with -revise to replay constraint changes without re-costing")
		revisePath = flag.String("revise", "", "revise: replay the costed pool in this file (written by -pool) under the constraint flags (-storage-mb, -aligned, -pin, -veto, -reweight), re-running only the search layer")
		pinKeys    = flag.String("pin", "", "with -revise: comma-separated structure keys the recommendation must include")
		vetoKeys   = flag.String("veto", "", "with -revise: comma-separated structure keys the recommendation may not include")
		reweight   = flag.String("reweight", "", `with -revise: comma-separated workload-slice reweightings "templateSignature=multiplier"`)
	)
	flag.Parse()

	var err error
	if *revisePath != "" {
		err = runRevise(*dbName, *sf, *revisePath, *outPath, *storageMB, *aligned,
			*pinKeys, *vetoKeys, *reweight, *par, *quiet, *poolOut)
	} else {
		err = run(*dbName, *sf, *wlPath, *inputXML, *outPath, *features, *storageMB,
			*aligned, *evaluate, *allowDrops, *timeLimit, *noCompress, *stream, *useTestSrv, *quiet, *tracePath, *par, *deriveMode,
			*explain, *jnlPath, *poolOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dta:", err)
		os.Exit(1)
	}
}

func run(dbName string, sf float64, wlPath, inputXML, outPath, features string,
	storageMB int64, aligned, evaluate, allowDrops bool, timeLimit time.Duration,
	noCompress, stream, useTestSrv, quiet bool, tracePath string, parallelism int,
	deriveMode string, explain bool, jnlPath, poolOut string) error {

	srv, builtin, err := demo.Build(dbName, sf)
	if err != nil {
		return err
	}
	dmode, err := derive.ParseMode(deriveMode)
	if err != nil {
		return err
	}

	opts := core.Options{
		Aligned:       aligned,
		TimeLimit:     timeLimit,
		NoCompression: noCompress,
		EvaluateOnly:  evaluate,
		AllowDrops:    allowDrops,
	}
	var w *workload.Workload

	if inputXML != "" {
		doc, err := readXML(inputXML)
		if err != nil {
			return err
		}
		if doc.Input == nil {
			return fmt.Errorf("XML input has no <Input> element")
		}
		o, err := xmlio.OptionsFromXML(doc.Input.Options)
		if err != nil {
			return err
		}
		opts = o
		opts.EvaluateOnly = doc.Input.EvaluateOnly || evaluate
		if doc.Input.Configuration != nil {
			opts.UserConfig = xmlio.ToConfiguration(doc.Input.Configuration)
		}
		if doc.Input.Workload != nil {
			w, err = xmlio.ToWorkload(doc.Input.Workload)
			if err != nil {
				return err
			}
		}
	} else {
		m, err := xmlio.FeatureMaskFromString(features)
		if err != nil {
			return err
		}
		opts.Features = m
	}

	if stream && wlPath == "" {
		return fmt.Errorf("-stream requires -workload (a trace file to stream)")
	}
	if w == nil {
		if wlPath != "" {
			f, err := os.Open(wlPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if stream {
				// Online path: fold the trace into the bounded-memory
				// compressor as it is read and hand the advisor the
				// pre-compressed workload — same recommendation as the batch
				// path for the same trace, but memory stays
				// O(templates × MaxPerTemplate) however long the file is.
				comp := workload.NewCompressor(workload.CompressOptions{MaxPerTemplate: opts.MaxPerTemplate})
				if err := workload.StreamTrace(f, func(e *workload.Event, _ int) error {
					return comp.Add(e)
				}); err != nil {
					return err
				}
				st, err := os.Stat(wlPath)
				if err != nil {
					return err
				}
				w = comp.Workload()
				opts.Ingest = &core.IngestStats{Events: comp.Events(), Bytes: st.Size(), Templates: comp.Templates()}
				if !quiet {
					fmt.Fprintf(os.Stderr, "streamed %d events (%d templates) into %d representatives (%.0fx)\n",
						comp.Events(), comp.Templates(), comp.Len(), comp.Ratio())
				}
			} else if w, err = workload.ReadTrace(f); err != nil {
				return err
			}
		} else {
			w = builtin
		}
	}

	if parallelism > 0 {
		opts.Parallelism = parallelism
	}
	if dmode.Enabled() {
		opts.Derive = dmode
	}
	if storageMB > 0 {
		opts.StorageBudget = storageMB << 20
	} else if opts.StorageBudget == 0 {
		opts.StorageBudget = 3 * srv.Cat.Bytes()
	}
	if opts.BaseConfig == nil {
		opts.BaseConfig = demo.ConstraintConfig(dbName, srv.Cat)
	}

	var tuner core.Tuner = srv
	var sess *testsrv.Session
	if useTestSrv {
		sess = testsrv.NewSession(srv)
		tuner = sess
	}

	// Live progress on stderr: the same Progress stream the tuning service
	// exposes over HTTP, printed on phase transitions.
	if !quiet {
		var lastPhase core.Phase
		opts.Progress = func(p core.Progress) {
			if p.Phase != lastPhase {
				lastPhase = p.Phase
				fmt.Fprintln(os.Stderr, "  "+p.String())
			}
		}
	}

	// With -trace, run the session under a span timeline and write it out as
	// Chrome trace-event JSON — the same timeline dtaserver serves per
	// session at GET /sessions/{id}/trace.
	ctx := context.Background()
	var trace *obs.Trace
	if tracePath != "" {
		trace = obs.NewTrace("dta " + dbName)
		ctx = obs.WithTrace(ctx, trace)
	}
	// With -explain or -journal, run the session under a decision journal —
	// the same event stream dtaserver serves at GET /sessions/{id}/journal.
	// Journaling is purely observational: the recommendation is byte-identical
	// with it on or off.
	var jnl *journal.Journal
	if explain || jnlPath != "" {
		jnl = journal.New("dta " + dbName)
		ctx = journal.WithContext(ctx, jnl)
	}

	// With -pool, capture the sealed costed pool and write it out after the
	// run; -revise replays it under changed constraints later.
	var pool *core.CostedPool
	if poolOut != "" {
		opts.PoolSink = func(p *core.CostedPool) { pool = p }
	}

	rec, err := core.TuneContext(ctx, tuner, w, opts)
	if err != nil {
		return err
	}

	if poolOut != "" {
		if pool == nil {
			fmt.Fprintln(os.Stderr, "dta: session stopped early; no costed pool to write")
		} else if err := writePool(poolOut, pool, quiet); err != nil {
			return err
		}
	}

	if trace != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", trace.SpanCount(), tracePath)
		}
	}

	if jnlPath != "" {
		f, err := os.Create(jnlPath)
		if err != nil {
			return err
		}
		if err := jnl.WriteNDJSON(f, nil); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "wrote %d journal events to %s\n", jnl.Len(), jnlPath)
		}
	}
	if explain {
		keys := make([]string, 0, len(rec.NewStructures))
		for _, s := range rec.NewStructures {
			keys = append(keys, s.Key())
		}
		exp := journal.Explain(jnl.Events(), keys)
		exp.DroppedEvents = jnl.DroppedByKind()
		if err := exp.WriteText(os.Stderr); err != nil {
			return err
		}
	}

	if !quiet {
		fmt.Fprintf(os.Stderr, "tuned %d events (%d templates): improvement %.1f%%, %d structures, %s, %d what-if calls\n",
			rec.EventsTuned, rec.TemplatesTuned, 100*rec.Improvement, len(rec.NewStructures),
			rec.Duration.Round(time.Millisecond), rec.WhatIfCalls)
		if rec.DerivedEvals > 0 {
			fmt.Fprintf(os.Stderr, "  %d evaluations answered by cost derivation (no optimizer call)\n", rec.DerivedEvals)
		}
		if rec.StopReason != "" {
			fmt.Fprintf(os.Stderr, "  stopped early: %s (best-so-far recommendation)\n", rec.StopReason)
		}
		for _, s := range rec.NewStructures {
			fmt.Fprintf(os.Stderr, "  CREATE %s\n", s)
		}
		for _, s := range rec.DroppedStructures {
			fmt.Fprintf(os.Stderr, "  DROP %s\n", s)
		}
		if sess != nil {
			fmt.Fprintf(os.Stderr, "production overhead: %.0f units (what-if calls ran on the test server)\n",
				sess.ProductionOverhead())
		}
	}

	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return xmlio.Encode(out, &xmlio.DTAXML{
		Output: &xmlio.Output{Recommendation: xmlio.FromRecommendation(rec)},
	})
}

func readXML(path string) (*xmlio.DTAXML, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return xmlio.Decode(f)
}

// writePool serializes a costed pool as JSON, the form -revise (and the
// service's <id>.pool.json files) read back.
func writePool(path string, p *core.CostedPool, quiet bool) error {
	data, err := json.MarshalIndent(p, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "wrote costed pool (%d candidates, %d query gains, fingerprint %s) to %s\n",
			len(p.Candidates), len(p.Gains), p.Fingerprint[:12], path)
	}
	return nil
}

// runRevise is the -revise path: load a costed pool written by -pool (or by
// the service as <id>.pool.json), build a Constraints value from the
// command-line flags, and re-run only the search layer against the same
// demonstration database. The revised recommendation is byte-identical to a
// fresh full run under the same constraints, without re-deriving candidates
// or re-costing atoms.
func runRevise(dbName string, sf float64, revisePath, outPath string,
	storageMB int64, aligned bool, pinKeys, vetoKeys, reweight string,
	parallelism int, quiet bool, poolOut string) error {

	srv, _, err := demo.Build(dbName, sf)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(revisePath)
	if err != nil {
		return err
	}
	var pool core.CostedPool
	if err := json.Unmarshal(data, &pool); err != nil {
		return fmt.Errorf("bad pool file %s: %w", revisePath, err)
	}
	if err := pool.Check(); err != nil {
		return fmt.Errorf("pool file %s: %w", revisePath, err)
	}

	cons := core.Constraints{Aligned: aligned}
	if storageMB > 0 {
		cons.StorageBudget = storageMB << 20
	} else {
		cons.StorageBudget = 3 * srv.Cat.Bytes()
	}
	if vetoKeys != "" {
		cons.Vetoed = splitKeys(vetoKeys)
	}
	if pinKeys != "" {
		if cons.Pinned, err = resolvePins(&pool, splitKeys(pinKeys)); err != nil {
			return err
		}
	}
	if reweight != "" {
		if cons.SliceWeights, err = parseReweight(reweight); err != nil {
			return err
		}
	}

	opts := core.Options{}
	if parallelism > 0 {
		opts.Parallelism = parallelism
	}
	if !quiet {
		var lastPhase core.Phase
		opts.Progress = func(p core.Progress) {
			if p.Phase != lastPhase {
				lastPhase = p.Phase
				fmt.Fprintln(os.Stderr, "  "+p.String())
			}
		}
	}
	var revised *core.CostedPool
	if poolOut != "" {
		opts.PoolSink = func(p *core.CostedPool) { revised = p }
	}

	start := time.Now()
	rec, err := core.Revise(context.Background(), srv, &pool, cons, opts)
	if err != nil {
		return err
	}
	if poolOut != "" && revised != nil {
		if err := writePool(poolOut, revised, quiet); err != nil {
			return err
		}
	}

	if !quiet {
		fmt.Fprintf(os.Stderr, "revised %d events from pool %s: improvement %.1f%%, %d structures, %s, %d what-if calls (search layer only)\n",
			rec.EventsTuned, pool.Fingerprint[:12], 100*rec.Improvement, len(rec.NewStructures),
			time.Since(start).Round(time.Millisecond), rec.WhatIfCalls)
		for _, s := range rec.NewStructures {
			fmt.Fprintf(os.Stderr, "  CREATE %s\n", s)
		}
		for _, s := range rec.DroppedStructures {
			fmt.Fprintf(os.Stderr, "  DROP %s\n", s)
		}
	}

	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return xmlio.Encode(out, &xmlio.DTAXML{
		Output: &xmlio.Output{Recommendation: xmlio.FromRecommendation(rec)},
	})
}

// splitKeys parses a comma-separated structure-key list, trimming blanks.
func splitKeys(s string) []string {
	var out []string
	for _, k := range strings.Split(s, ",") {
		if k = strings.TrimSpace(k); k != "" {
			out = append(out, k)
		}
	}
	return out
}

// resolvePins maps -pin structure keys to structures, looked up in the
// pool's candidate set and its base configuration.
func resolvePins(pool *core.CostedPool, keys []string) (*catalog.Configuration, error) {
	byKey := map[string]catalog.Structure{}
	for _, st := range pool.Candidates {
		byKey[st.Key()] = st
	}
	if pool.Base != nil {
		for _, st := range pool.Base.Structures() {
			byKey[st.Key()] = st
		}
	}
	pin := catalog.NewConfiguration()
	for _, k := range keys {
		st, ok := byKey[k]
		if !ok {
			return nil, fmt.Errorf("-pin key %q matches no pool candidate or base structure", k)
		}
		st.ApplyTo(pin)
	}
	return pin, nil
}

// parseReweight parses -reweight "sig=mult,sig=mult" into slice weights.
func parseReweight(s string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		sig, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf(`bad -reweight entry %q: want "templateSignature=multiplier"`, part)
		}
		var m float64
		if _, err := fmt.Sscanf(val, "%g", &m); err != nil {
			return nil, fmt.Errorf("bad -reweight multiplier %q: %w", val, err)
		}
		out[sig] = m
	}
	return out, nil
}
