// Command dtabench regenerates every table and figure of the paper's
// evaluation (§7) plus the §3 integrated-vs-staged comparison and the
// ablation studies called out in DESIGN.md, printing each in the paper's
// row/column layout. Pass -quick for a fast reduced-scale run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale")
	only := flag.String("only", "", "run a single experiment: table1, table2, sec72, figure3, table3, sec75, figure45, sec3, ablations")
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}

	run := func(name string, fn func() error) {
		if *only != "" && *only != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "dtabench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() error {
		fmt.Println(experiments.Table1String())
		return nil
	})
	run("table2", func() error {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Table2String(rows))
		return nil
	})
	run("sec72", func() error {
		res, err := experiments.Sec72(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.String())
		return nil
	})
	run("figure3", func() error {
		rows, err := experiments.Figure3(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Figure3String(rows))
		return nil
	})
	run("table3", func() error {
		rows, err := experiments.Table3(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Table3String(rows))
		return nil
	})
	run("sec75", func() error {
		rows, err := experiments.Sec75(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Sec75String(rows))
		return nil
	})
	run("figure45", func() error {
		rows, err := experiments.Figure45(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Figure45String(rows))
		return nil
	})
	run("sec3", func() error {
		res, err := experiments.Sec3IntegratedVsStaged(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.String())
		return nil
	})
	run("ablations", func() error {
		for _, fn := range []func(experiments.Config) (*experiments.AblationRow, error){
			experiments.AblationColumnGroupRestriction,
			experiments.AblationMerging,
			experiments.AblationLazyAlignment,
			experiments.AblationGreedySeed,
		} {
			row, err := fn(cfg)
			if err != nil {
				return err
			}
			fmt.Println(experiments.AblationString(row))
		}
		return nil
	})
}
