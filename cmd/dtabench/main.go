// Command dtabench regenerates every table and figure of the paper's
// evaluation (§7) plus the §3 integrated-vs-staged comparison and the
// ablation studies called out in DESIGN.md, printing each in the paper's
// row/column layout. Pass -quick for a fast reduced-scale run, and
// -json <path> to also write the results as a machine-readable JSON array
// (one record per experiment and per case: name, wall time, what-if calls,
// improvement percentage) — what CI archives as a benchmark artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/derive"
	"repro/internal/experiments"
)

// parseLevels parses the -parallelism flag: comma-separated positive ints.
func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("%q is not a positive integer", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no levels given")
	}
	return out, nil
}

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale")
	only := flag.String("only", "", "run a single experiment: table1, table2, sec72, figure3, table3, sec75, figure45, sec3, ablations, parallel, ingest, derive, revise, daemon")
	jsonPath := flag.String("json", "", "write machine-readable results to this file as JSON")
	parLevels := flag.String("parallelism", "1,2,4", "comma-separated Options.Parallelism levels for the parallel sweep")
	ingestSizes := flag.String("ingest-sizes", "10000,100000,1000000", "comma-separated trace sizes (events) for the streaming-ingestion sweep")
	deriveMode := flag.String("derive", "off", "cost-derivation mode every tuning run uses: off, on, or verify (the derive sweep always runs all three)")
	flag.Parse()

	levels, err := parseLevels(*parLevels)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtabench: bad -parallelism: %v\n", err)
		os.Exit(2)
	}
	sizes, err := parseLevels(*ingestSizes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtabench: bad -ingest-sizes: %v\n", err)
		os.Exit(2)
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if _, err := derive.ParseMode(*deriveMode); err != nil {
		fmt.Fprintf(os.Stderr, "dtabench: bad -derive: %v\n", err)
		os.Exit(2)
	}
	cfg.Derive = *deriveMode

	var records []experiments.BenchRecord
	run := func(name string, fn func() ([]experiments.BenchRecord, error)) {
		if *only != "" && *only != name {
			return
		}
		start := time.Now()
		recs, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtabench: %s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		records = append(records, experiments.BenchRecord{Experiment: name, WallMS: elapsed.Milliseconds()})
		records = append(records, recs...)
		fmt.Printf("(%s completed in %s)\n\n", name, elapsed.Round(time.Millisecond))
	}

	run("table1", func() ([]experiments.BenchRecord, error) {
		fmt.Println(experiments.Table1String())
		return nil, nil
	})
	run("table2", func() ([]experiments.BenchRecord, error) {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Println(experiments.Table2String(rows))
		return experiments.SummarizeTable2(rows), nil
	})
	run("sec72", func() ([]experiments.BenchRecord, error) {
		res, err := experiments.Sec72(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Println(res.String())
		return experiments.SummarizeSec72(res), nil
	})
	run("figure3", func() ([]experiments.BenchRecord, error) {
		rows, err := experiments.Figure3(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Println(experiments.Figure3String(rows))
		return experiments.SummarizeFigure3(rows), nil
	})
	run("table3", func() ([]experiments.BenchRecord, error) {
		rows, err := experiments.Table3(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Println(experiments.Table3String(rows))
		return experiments.SummarizeTable3(rows), nil
	})
	run("sec75", func() ([]experiments.BenchRecord, error) {
		rows, err := experiments.Sec75(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Println(experiments.Sec75String(rows))
		return experiments.SummarizeSec75(rows), nil
	})
	run("figure45", func() ([]experiments.BenchRecord, error) {
		rows, err := experiments.Figure45(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Println(experiments.Figure45String(rows))
		return experiments.SummarizeFigure45(rows), nil
	})
	run("sec3", func() ([]experiments.BenchRecord, error) {
		res, err := experiments.Sec3IntegratedVsStaged(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Println(res.String())
		return experiments.SummarizeSec3(res), nil
	})
	run("parallel", func() ([]experiments.BenchRecord, error) {
		rows, err := experiments.ParallelSweep(cfg, levels)
		if err != nil {
			return nil, err
		}
		fmt.Println(experiments.ParallelString(rows))
		return experiments.SummarizeParallel(rows), nil
	})
	run("ingest", func() ([]experiments.BenchRecord, error) {
		rows, err := experiments.IngestSweep(cfg, sizes)
		if err != nil {
			return nil, err
		}
		fmt.Println(experiments.IngestString(rows))
		return experiments.SummarizeIngest(rows), nil
	})
	run("derive", func() ([]experiments.BenchRecord, error) {
		rows, err := experiments.DeriveSweep(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Println(experiments.DeriveString(rows))
		return experiments.SummarizeDerive(rows), nil
	})
	run("revise", func() ([]experiments.BenchRecord, error) {
		rows, err := experiments.ReviseSweep(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Println(experiments.ReviseString(rows))
		return experiments.SummarizeRevise(rows), nil
	})
	run("daemon", func() ([]experiments.BenchRecord, error) {
		rows, err := experiments.DaemonSweep(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Println(experiments.DaemonString(rows))
		return experiments.SummarizeDaemon(rows), nil
	})
	run("ablations", func() ([]experiments.BenchRecord, error) {
		var recs []experiments.BenchRecord
		for _, fn := range []func(experiments.Config) (*experiments.AblationRow, error){
			experiments.AblationColumnGroupRestriction,
			experiments.AblationMerging,
			experiments.AblationLazyAlignment,
			experiments.AblationGreedySeed,
		} {
			row, err := fn(cfg)
			if err != nil {
				return nil, err
			}
			fmt.Println(experiments.AblationString(row))
			recs = append(recs, experiments.SummarizeAblation(row)...)
		}
		return recs, nil
	})

	if *jsonPath != "" {
		if err := experiments.WriteBenchJSON(*jsonPath, records); err != nil {
			fmt.Fprintf(os.Stderr, "dtabench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dtabench: wrote %d records to %s\n", len(records), *jsonPath)
	}
}
