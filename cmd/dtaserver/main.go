// Command dtaserver runs the tuning advisor as a long-lived HTTP service:
// the paper's §2.1 deployment where DTA is a server-side feature DBAs submit
// tuning sessions to, watch progress on, and cancel — here over a JSON API.
//
// Usage:
//
//	dtaserver -addr :8700 -db tpch,psoft -sf 0.01 -workers 4
//
// Endpoints (see internal/service):
//
//	POST   /sessions             create a session (JSON or DTAXML body)
//	POST   /sessions/trace       create a session from a raw trace streamed as the body
//	POST   /sessions/resume      resume checkpointed sessions from -state-dir
//	GET    /sessions             list sessions
//	GET    /sessions/{id}        session snapshot
//	GET    /sessions/{id}/events progress stream (NDJSON)
//	GET    /sessions/{id}/trace  session timeline (Chrome trace-event JSON)
//	GET    /sessions/{id}/journal decision journal (NDJSON, ?kind= filters)
//	GET    /sessions/{id}/explain per-structure provenance from the journal
//	PATCH  /sessions/{id}        revise a completed session under changed constraints
//	DELETE /sessions/{id}        cancel (keeps the best-so-far result)
//	POST   /daemons              create a continuous tuning daemon
//	POST   /daemons/resume       restore persisted daemons from -state-dir
//	GET    /daemons              list daemons
//	GET    /daemons/{id}         daemon snapshot
//	POST   /daemons/{id}/trace   ingest one trace chunk; re-tunes when drift crosses -drift-threshold
//	GET    /daemons/{id}/delta   recommendation deltas (?since=N)
//	POST   /daemons/{id}/feedback accept/veto structures, optionally forcing a re-tune
//	GET    /daemons/{id}/events  daemon event stream (NDJSON)
//	GET    /daemons/{id}/journal decision journal (NDJSON, ?kind= filters)
//	GET    /daemons/{id}/explain why the latest delta was proposed
//	GET    /daemons/{id}/timeline daemon timeline (Chrome trace-event JSON)
//	DELETE /daemons/{id}         close a daemon
//	GET    /metrics              Prometheus metrics (JSON via Accept header)
//	GET    /metrics.json         cumulative service metrics, JSON
//	GET    /backends             registered databases
//
// With -pprof the standard net/http/pprof profiling handlers are mounted
// under /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/demo"
	"repro/internal/derive"
	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/testsrv"
)

func main() {
	var (
		addr       = flag.String("addr", ":8700", "HTTP listen address")
		dbs        = flag.String("db", "tpch", "comma-separated demonstration databases to serve: tpch,psoft,synt1")
		sf         = flag.Float64("sf", 0.01, "scale factor / data scale for the demonstration databases")
		workers    = flag.Int("workers", 4, "maximum concurrently running tuning sessions")
		maxPar     = flag.Int("max-parallelism", 0, "cap per-session evaluation parallelism (0 = uncapped); sessions request theirs in options.parallelism")
		useTestSrv = flag.Bool("test-server", false, "tune each database through a test server (§5.3)")
		withPprof  = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
		faultSpec  = flag.String("fault-spec", "", `server-wide fault injection spec, e.g. "seed=7;whatif:error:0.10" (sites: whatif, stats, import; kinds: error, latency, panic)`)
		stateDir   = flag.String("state-dir", "", "directory for session checkpoints; killed sessions resume from here on restart")
		deriveMode = flag.String("derive", "on", "cost-derivation default for sessions that do not set options.derive: off | on | verify; the recommendation does not depend on it")
		poolTTL    = flag.Duration("pool-retention", 0, "how long completed sessions keep their costed pool for PATCH /sessions/{id} revision (0 = forever)")
		driftThr   = flag.Float64("drift-threshold", service.DefaultDriftThreshold, "drift score at which a continuous tuning daemon re-tunes, for daemons that do not set drift.threshold")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "dtaserver: bad -log-level:", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if err := run(logger, *addr, *dbs, *sf, *workers, *maxPar, *useTestSrv, *withPprof, *faultSpec, *stateDir, *deriveMode, *poolTTL, *driftThr); err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
}

// FaultSetter is the backend hook -fault-spec attaches through; both
// *whatif.Server and *testsrv.Session implement it.
type FaultSetter interface {
	SetFaults(*fault.Injector)
}

func run(logger *slog.Logger, addr, dbs string, sf float64, workers, maxPar int, useTestSrv, withPprof bool, faultSpec, stateDir, deriveMode string, poolTTL time.Duration, driftThr float64) error {
	m := service.NewManager(workers)
	m.SetLogger(logger)
	m.SetParallelismCap(maxPar)
	m.SetPoolRetention(poolTTL)
	m.SetDriftThreshold(driftThr)
	dmode, err := derive.ParseMode(deriveMode)
	if err != nil {
		return fmt.Errorf("bad -derive: %w", err)
	}
	m.SetDeriveDefault(dmode)

	var injector *fault.Injector
	if faultSpec != "" {
		spec, err := fault.ParseSpec(faultSpec)
		if err != nil {
			return fmt.Errorf("bad -fault-spec: %w", err)
		}
		injector = fault.NewInjector(spec)
		injector.SetMetrics(m.Registry())
		logger.Warn("fault injection active", "spec", spec.String())
	}

	for _, name := range strings.Split(dbs, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		srv, builtin, err := demo.Build(name, sf)
		if err != nil {
			return err
		}
		b := &service.Backend{
			Name:            name,
			Tuner:           srv,
			DefaultWorkload: builtin,
			BaseConfig:      demo.ConstraintConfig(name, srv.Cat),
		}
		if useTestSrv {
			b.Tuner = testsrv.NewSession(srv)
		}
		if injector != nil {
			if fs, ok := b.Tuner.(FaultSetter); ok {
				fs.SetFaults(injector)
			}
		}
		if err := m.Register(b); err != nil {
			return err
		}
		logger.Info("serving database", "db", name,
			"tables", len(srv.Cat.Tables()),
			"dataMB", fmt.Sprintf("%.1f", float64(srv.Cat.Bytes())/(1<<20)),
			"workloadStatements", builtin.Len(),
			"testServer", useTestSrv)
	}
	if len(m.Backends()) == 0 {
		return fmt.Errorf("no databases to serve (-db)")
	}

	if stateDir != "" {
		if err := m.SetStateDir(stateDir); err != nil {
			return err
		}
		resumed, err := m.ResumeSessions()
		if err != nil {
			return err
		}
		daemons, err := m.ResumeDaemons()
		if err != nil {
			return err
		}
		logger.Info("session state enabled", "stateDir", stateDir,
			"resumed", len(resumed), "daemons", len(daemons))
	}

	mux := http.NewServeMux()
	mux.Handle("/", m.Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	// WriteTimeout stays 0: /sessions/{id}/events is a long-lived NDJSON
	// stream and a write deadline would sever it mid-session.
	hs := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}

	// Serve until interrupted, then cancel live sessions and drain.
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("listening", "addr", addr, "workers", workers,
		"pprof", withPprof,
		"readHeaderTimeout", hs.ReadHeaderTimeout,
		"idleTimeout", hs.IdleTimeout)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sigc:
		logger.Info("shutting down", "signal", s.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		logger.Warn("session drain", "err", err)
	}
	return hs.Shutdown(ctx)
}
