// Command dtaserver runs the tuning advisor as a long-lived HTTP service:
// the paper's §2.1 deployment where DTA is a server-side feature DBAs submit
// tuning sessions to, watch progress on, and cancel — here over a JSON API.
//
// Usage:
//
//	dtaserver -addr :8700 -db tpch,psoft -sf 0.01 -workers 4
//
// Endpoints (see internal/service):
//
//	POST   /sessions             create a session (JSON or DTAXML body)
//	GET    /sessions             list sessions
//	GET    /sessions/{id}        session snapshot
//	GET    /sessions/{id}/events progress stream (NDJSON)
//	DELETE /sessions/{id}        cancel (keeps the best-so-far result)
//	GET    /metrics              cumulative service metrics
//	GET    /backends             registered databases
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/demo"
	"repro/internal/service"
	"repro/internal/testsrv"
)

func main() {
	var (
		addr       = flag.String("addr", ":8700", "HTTP listen address")
		dbs        = flag.String("db", "tpch", "comma-separated demonstration databases to serve: tpch,psoft,synt1")
		sf         = flag.Float64("sf", 0.01, "scale factor / data scale for the demonstration databases")
		workers    = flag.Int("workers", 4, "maximum concurrently running tuning sessions")
		useTestSrv = flag.Bool("test-server", false, "tune each database through a test server (§5.3)")
	)
	flag.Parse()

	if err := run(*addr, *dbs, *sf, *workers, *useTestSrv); err != nil {
		fmt.Fprintln(os.Stderr, "dtaserver:", err)
		os.Exit(1)
	}
}

func run(addr, dbs string, sf float64, workers int, useTestSrv bool) error {
	m := service.NewManager(workers)
	for _, name := range strings.Split(dbs, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		srv, builtin, err := demo.Build(name, sf)
		if err != nil {
			return err
		}
		b := &service.Backend{
			Name:            name,
			Tuner:           srv,
			DefaultWorkload: builtin,
			BaseConfig:      demo.ConstraintConfig(name, srv.Cat),
		}
		if useTestSrv {
			b.Tuner = testsrv.NewSession(srv)
		}
		if err := m.Register(b); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dtaserver: serving %s (%d tables, %.1f MB, built-in workload of %d statements)\n",
			name, len(srv.Cat.Tables()), float64(srv.Cat.Bytes())/(1<<20), builtin.Len())
	}
	if len(m.Backends()) == 0 {
		return fmt.Errorf("no databases to serve (-db)")
	}

	hs := &http.Server{Addr: addr, Handler: m.Handler()}

	// Serve until interrupted, then cancel live sessions and drain.
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dtaserver: listening on %s (max %d concurrent sessions)\n", addr, workers)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sigc:
		fmt.Fprintf(os.Stderr, "dtaserver: %v — cancelling sessions and shutting down\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dtaserver: session drain: %v\n", err)
	}
	return hs.Shutdown(ctx)
}
