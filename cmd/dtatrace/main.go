// Command dtatrace generates workload trace files for the demonstration
// databases — the stand-in for SQL Server Profiler (paper §2.1: "a workload
// can be obtained by using SQL Server Profiler, a tool for logging events
// that execute on a server"). The output uses the trace format cmd/dta and
// dta.ReadWorkload consume: one statement per line with optional leading
// weight and duration fields.
//
// Usage:
//
//	dtatrace -db psoft -events 6000 -out psoft.trace
//	dtatrace -db synt1 -events 8000 -templates 100 | go run ./cmd/dta -db synt1 -workload /dev/stdin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen/cust"
	"repro/internal/datagen/psoft"
	"repro/internal/datagen/setquery"
	"repro/internal/datagen/tpch"
	"repro/internal/workload"
)

func main() {
	var (
		db        = flag.String("db", "tpch", "demonstration database: tpch | psoft | synt1 | cust1..cust4")
		events    = flag.Int("events", 2000, "number of trace events (ignored for tpch: always the 22 queries)")
		templates = flag.Int("templates", 100, "distinct templates (synt1 only)")
		scale     = flag.Float64("scale", 0.01, "schema scale factor")
		seed      = flag.Int64("seed", 1, "generator seed")
		out       = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	w, err := build(*db, *events, *templates, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtatrace:", err)
		os.Exit(1)
	}

	f := os.Stdout
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtatrace:", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	if err := workload.WriteTrace(f, w); err != nil {
		fmt.Fprintln(os.Stderr, "dtatrace:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d events (%d templates)\n", w.Len(), len(w.Templates()))
}

func build(db string, events, templates int, scale float64, seed int64) (*workload.Workload, error) {
	switch db {
	case "tpch":
		return tpch.Workload(), nil
	case "psoft":
		return psoft.Workload(psoft.Catalog(scale), events, seed), nil
	case "synt1":
		rows := int64(scale * 1000000)
		if rows < 1000 {
			rows = 1000
		}
		return setquery.Workload(setquery.Catalog(rows), events, templates, seed), nil
	case "cust1", "cust2", "cust3", "cust4":
		for _, s := range cust.All(scale) {
			if s.Name == "CUST"+db[4:] {
				return s.Workload(events, seed), nil
			}
		}
		return nil, fmt.Errorf("unknown customer scenario %q", db)
	default:
		return nil, fmt.Errorf("unknown database %q", db)
	}
}
