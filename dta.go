// Package dta is the public API of the Database Tuning Advisor
// reproduction — an automated physical database design tool in the mold of
// the DTA shipped with Microsoft SQL Server 2005 (Agrawal et al., VLDB 2004).
//
// The advisor produces integrated recommendations for indexes, materialized
// views, and single-column horizontal range partitioning for a workload of
// SQL statements, under optional storage, alignment, feature-set, and
// user-specified-configuration constraints. It can tune a production server
// directly, or through a test server holding only metadata and imported
// statistics so that tuning imposes almost no load on production.
//
// Quick start:
//
//	cat := catalog.New()            // describe databases and tables
//	db  := engine.NewDatabase(cat)  // optionally load data
//	srv := dta.NewServer("prod", cat, dta.DefaultHardware())
//	srv.AttachData(db)
//	w, _ := dta.NewWorkload("SELECT a, COUNT(*) FROM t WHERE x < 10 GROUP BY a")
//	rec, _ := dta.Tune(srv, w, dta.Options{StorageBudget: 256 << 20})
//	fmt.Println(rec)
//
// The subsystems (parser, optimizer, what-if interfaces, execution engine,
// statistics) live under internal/ and are documented in DESIGN.md.
package dta

import (
	"context"
	"io"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/optimizer"
	"repro/internal/service"
	"repro/internal/testsrv"
	"repro/internal/whatif"
	"repro/internal/workload"
	"repro/internal/xmlio"
)

// Re-exported core types: tuning options, results, and feature masks.
type (
	// Options mirrors the tuning inputs of the paper's §2.1.
	Options = core.Options
	// Recommendation is the advisor's output.
	Recommendation = core.Recommendation
	// QueryReport is one per-statement analysis row.
	QueryReport = core.QueryReport
	// FeatureMask selects which physical design features to tune.
	FeatureMask = core.FeatureMask
	// Tuner abstracts the server being tuned (production or test session).
	Tuner = core.Tuner

	// Server is a database server exposing what-if interfaces.
	Server = whatif.Server
	// TestSession tunes through a test server (paper §5.3).
	TestSession = testsrv.Session

	// Configuration is a physical database design.
	Configuration = catalog.Configuration
	// Index, MaterializedView and PartitionScheme are the three physical
	// design feature kinds.
	Index            = catalog.Index
	MaterializedView = catalog.MaterializedView
	PartitionScheme  = catalog.PartitionScheme
	Structure        = catalog.Structure
	// Hardware models the server parameters the cost model considers.
	Hardware = optimizer.Hardware
	// Workload is the set of statements to tune.
	Workload = workload.Workload
	// Event is one workload statement with its weight and duration.
	Event = workload.Event
	// Compressor is the bounded-memory online workload compressor
	// (paper §5.1): feed events as they arrive, retain only
	// O(templates × MaxPerTemplate) representatives, and hand the result to
	// Tune via Options.Ingest. Fed in order it produces exactly what
	// CompressWorkload produces in batch.
	Compressor = workload.Compressor
	// CompressOptions configures workload compression (batch or online).
	CompressOptions = workload.CompressOptions
	// IngestStats records a streaming ingest for Options.Ingest: setting it
	// tells Tune the workload is already-compressed Compressor output.
	IngestStats = core.IngestStats

	// Progress is a live tuning-progress snapshot; set Options.Progress to
	// receive them, or use the tuning service's event stream.
	Progress = core.Progress
	// Phase identifies the pipeline step a progress snapshot belongs to.
	Phase = core.Phase

	// TuningService manages concurrent tuning sessions over registered
	// backends and exposes them over an HTTP JSON API (see cmd/dtaserver).
	TuningService = service.Manager
	// TuningBackend is one tunable database registered with the service.
	TuningBackend = service.Backend
	// TuningSession is one managed tuning run.
	TuningSession = service.Session
)

// Feature mask values.
const (
	FeatureIndexes      = core.FeatureIndexes
	FeatureViews        = core.FeatureViews
	FeaturePartitioning = core.FeaturePartitioning
	FeatureAll          = core.FeatureAll
)

// NewServer creates a server over the catalog.
func NewServer(name string, cat *catalog.Catalog, hw Hardware) *Server {
	return whatif.NewServer(name, cat, hw)
}

// DefaultHardware returns the default hardware model.
func DefaultHardware() Hardware { return optimizer.DefaultHardware() }

// NewWorkload parses SQL texts into a workload with unit weights.
func NewWorkload(sqls ...string) (*Workload, error) { return workload.New(sqls...) }

// ReadWorkload reads a profiler-style trace (one statement per line with
// optional weight and duration fields).
func ReadWorkload(r io.Reader) (*Workload, error) { return workload.ReadTrace(r) }

// CompressWorkload applies workload compression (paper §5.1) explicitly;
// Tune applies it automatically for large workloads.
func CompressWorkload(w *Workload) *Workload {
	return workload.Compress(w, workload.CompressOptions{})
}

// StreamTrace incrementally reads a profiler-style trace, handing each event
// to sink with its 1-based line number; lines may be arbitrarily long and
// errors carry the line they occurred on. A sink that folds events into a
// Compressor tunes traces far larger than memory:
//
//	comp := dta.NewCompressor(dta.CompressOptions{})
//	err  := dta.StreamTrace(f, func(e *dta.Event, _ int) error { return comp.Add(e) })
//	rec, _ := dta.Tune(srv, comp.Workload(), dta.Options{
//		Ingest: &dta.IngestStats{Events: comp.Events(), Templates: comp.Templates()},
//	})
func StreamTrace(r io.Reader, sink func(e *Event, line int) error) error {
	return workload.StreamTrace(r, sink)
}

// NewCompressor creates an empty online workload compressor.
func NewCompressor(opts CompressOptions) *Compressor { return workload.NewCompressor(opts) }

// Tune produces an integrated physical design recommendation.
func Tune(t Tuner, w *Workload, opts Options) (*Recommendation, error) {
	return core.Tune(t, w, opts)
}

// TuneContext is Tune under a context: cancelling ctx stops the search
// within one what-if optimizer call and returns the best recommendation
// found so far with StopReason set to StopCancelled (anytime behaviour,
// paper §2.1).
func TuneContext(ctx context.Context, t Tuner, w *Workload, opts Options) (*Recommendation, error) {
	return core.TuneContext(ctx, t, w, opts)
}

// Recommendation stop reasons.
const (
	StopTimeLimit = core.StopTimeLimit
	StopCancelled = core.StopCancelled
)

// NewTuningService creates a session manager running at most workers
// concurrent tuning sessions; register backends, then serve its Handler()
// or drive it programmatically.
func NewTuningService(workers int) *TuningService { return service.NewManager(workers) }

// TuneStaged is the staged-selection baseline of paper §3 (one feature at a
// time), for comparison against the integrated search.
func TuneStaged(t Tuner, w *Workload, opts Options, stages []FeatureMask) (*Recommendation, error) {
	return core.TuneStaged(t, w, opts, stages)
}

// TuneITW emulates the SQL Server 2000 Index Tuning Wizard (paper §7.6).
func TuneITW(t Tuner, w *Workload, opts Options) (*Recommendation, error) {
	return core.TuneITW(t, w, opts)
}

// Evaluate performs exploratory what-if analysis of a user-proposed
// configuration without tuning (paper §6.3).
func Evaluate(t Tuner, w *Workload, base, user *Configuration) (*Recommendation, error) {
	return core.Evaluate(t, w, base, user)
}

// NewTestSession imports the production server's metadata into a fresh test
// server and returns a tuning session that imposes almost no load on
// production (paper §5.3).
func NewTestSession(prod *Server) *TestSession { return testsrv.NewSession(prod) }

// NewConfiguration returns an empty physical design.
func NewConfiguration() *Configuration { return catalog.NewConfiguration() }

// WriteRecommendationXML writes the recommendation in the public XML schema
// (paper §6.1).
func WriteRecommendationXML(w io.Writer, rec *Recommendation) error {
	return xmlio.Encode(w, &xmlio.DTAXML{Output: &xmlio.Output{Recommendation: xmlio.FromRecommendation(rec)}})
}
