// Aligned partitioning for manageability (paper §4 and §6.2): a DBA wants a
// large fact table range-partitioned so old data can be switched out
// cheaply, and wants the table and all of its indexes partitioned
// identically. This example
//
//  1. tunes with the alignment constraint and verifies every index on a
//     partitioned table shares the table's partitioning, and
//  2. answers the month-vs-quarter question of §6.2 by running the advisor
//     twice with user-specified configurations — partition by month, then by
//     quarter — and comparing the workload costs, without ever physically
//     repartitioning the table.
package main

import (
	"fmt"
	"log"

	dta "repro"
	"repro/internal/catalog"
	"repro/internal/datagen/tpch"
)

func main() {
	cat := tpch.Catalog(0.01)
	data, err := tpch.Load(cat, 1)
	if err != nil {
		log.Fatal(err)
	}
	srv := dta.NewServer("tpch", cat, dta.DefaultHardware())
	srv.AttachData(data)

	w, err := dta.NewWorkload(
		"SELECT l_suppkey, SUM(l_quantity) FROM lineitem WHERE l_shipdate BETWEEN 1095 AND 1460 GROUP BY l_suppkey",
		"SELECT l_returnflag, COUNT(*) FROM lineitem WHERE l_shipdate < 730 GROUP BY l_returnflag",
		"SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_partkey = 117",
		"SELECT o_orderpriority, COUNT(*) FROM orders WHERE o_orderdate BETWEEN 900 AND 1000 GROUP BY o_orderpriority",
	)
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: tune with the alignment requirement.
	fmt.Println("=== aligned tuning (indexes + partitioning) ===")
	rec, err := dta.Tune(srv, w, dta.Options{
		Features: dta.FeatureIndexes | dta.FeaturePartitioning,
		Aligned:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("improvement %.1f%%, aligned: %v\n", 100*rec.Improvement, rec.Config.Aligned())
	for _, s := range rec.NewStructures {
		fmt.Println("  CREATE", s)
	}

	// Part 2: month vs quarter (user-specified configurations, §6.2).
	fmt.Println("\n=== month vs quarter partitioning of lineitem (§6.2) ===")
	month := dta.NewConfiguration()
	month.SetTablePartitioning("lineitem", monthScheme())
	quarter := dta.NewConfiguration()
	quarter.SetTablePartitioning("lineitem", quarterScheme())

	recMonth, err := dta.Tune(srv, w, dta.Options{
		Features: dta.FeatureIndexes | dta.FeaturePartitioning, Aligned: true, UserConfig: month,
	})
	if err != nil {
		log.Fatal(err)
	}
	recQuarter, err := dta.Tune(srv, w, dta.Options{
		Features: dta.FeatureIndexes | dta.FeaturePartitioning, Aligned: true, UserConfig: quarter,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition by month:   workload cost %.1f (improvement %.1f%%)\n",
		recMonth.Cost, 100*recMonth.Improvement)
	fmt.Printf("partition by quarter: workload cost %.1f (improvement %.1f%%)\n",
		recQuarter.Cost, 100*recQuarter.Improvement)
	if recMonth.Cost < recQuarter.Cost {
		fmt.Println("→ month-level partitioning wins for this workload.")
	} else {
		fmt.Println("→ quarter-level partitioning wins for this workload.")
	}
	fmt.Println("(the table was never physically repartitioned — both options were")
	fmt.Println(" evaluated through what-if interfaces alone, per §6.2)")
}

// monthScheme partitions l_shipdate into ~84 month-sized ranges.
func monthScheme() *dta.PartitionScheme {
	var bounds []float64
	for d := 30.4; d < tpch.DateMax; d += 30.4 {
		bounds = append(bounds, d)
	}
	return catalog.NewPartitionScheme("l_shipdate", bounds...)
}

// quarterScheme partitions l_shipdate into ~28 quarter-sized ranges.
func quarterScheme() *dta.PartitionScheme {
	var bounds []float64
	for d := 91.25; d < tpch.DateMax; d += 91.25 {
		bounds = append(bounds, d)
	}
	return catalog.NewPartitionScheme("l_shipdate", bounds...)
}
