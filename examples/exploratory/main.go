// Exploratory (what-if) analysis and iterative tuning (paper §6.3): a DBA
// proposes a physical design, asks "what would happen to my workload if I
// created these structures?", inspects the per-statement report, refines the
// proposal, and re-evaluates — all without materializing anything. The
// refined configuration round-trips through the public XML schema the way an
// external tool would drive DTA.
package main

import (
	"bytes"
	"fmt"
	"log"

	dta "repro"
	"repro/internal/catalog"
	"repro/internal/datagen/psoft"
	"repro/internal/xmlio"
)

func main() {
	cat := psoft.Catalog(0.02)
	data, err := psoft.Load(cat, 1)
	if err != nil {
		log.Fatal(err)
	}
	srv := dta.NewServer("erp", cat, dta.DefaultHardware())
	srv.AttachData(data)

	w, err := dta.NewWorkload(
		"SELECT name, deptid, salary FROM ps_employee WHERE emplid = 4021",
		"SELECT deptid, COUNT(*), AVG(salary) FROM ps_employee WHERE status = 'A' AND deptid = 17 GROUP BY deptid",
		"SELECT account, SUM(amount) FROM ps_ledger WHERE fiscal_year = 2004 AND period = 6 GROUP BY account",
		"UPDATE ps_employee SET salary = 90000 WHERE emplid = 4021",
		"INSERT INTO ps_ledger VALUES (99000001, 1500, 12, 2004, 6, 250)",
	)
	if err != nil {
		log.Fatal(err)
	}

	// Round 1: the DBA's first idea — one wide index on the ledger.
	proposal := dta.NewConfiguration()
	proposal.AddIndex(catalog.NewIndex("ps_ledger", "fiscal_year", "period").WithInclude("account", "amount"))

	rec, err := dta.Evaluate(srv, w, nil, proposal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round 1: expected workload change %+.1f%%\n", -100*rec.Improvement)
	for _, r := range rec.Reports {
		marker := " "
		if r.CostAfter > r.CostBefore*1.01 {
			marker = "!" // regression: maintenance outweighs benefit
		}
		fmt.Printf("  %s %8.2f → %8.2f  %s\n", marker, r.CostBefore, r.CostAfter, r.SQL)
	}

	// Round 2: the report shows the INSERT pays maintenance; refine by also
	// covering the employee lookup that dominates the cost.
	proposal2 := proposal.Clone()
	proposal2.AddIndex(catalog.NewIndex("ps_employee", "emplid").WithInclude("name", "deptid", "salary"))

	rec2, err := dta.Evaluate(srv, w, nil, proposal2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nround 2 (refined): expected workload change %+.1f%%\n", -100*rec2.Improvement)

	// Round 3: feed the refined configuration back as a constraint and let
	// DTA complete the design (iterative tuning through the XML schema).
	var buf bytes.Buffer
	if err := xmlio.Encode(&buf, &xmlio.DTAXML{Input: &xmlio.Input{
		Configuration: xmlio.FromConfiguration(proposal2),
	}}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nround 3: re-tuning with the refined design as a user-specified configuration\n")
	fmt.Printf("(carried through the public XML schema, %d bytes)\n", buf.Len())

	doc, err := xmlio.Decode(&buf)
	if err != nil {
		log.Fatal(err)
	}
	userCfg := xmlio.ToConfiguration(doc.Input.Configuration)

	rec3, err := dta.Tune(srv, w, dta.Options{UserConfig: userCfg, StorageBudget: 128 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: improvement %.1f%% with %d structures (user design honored: %v)\n",
		100*rec3.Improvement, len(rec3.NewStructures), includesAll(rec3.Config, userCfg))
	for _, s := range rec3.NewStructures {
		fmt.Println("  CREATE", s)
	}
}

// includesAll reports whether cfg contains every structure of user.
func includesAll(cfg, user *dta.Configuration) bool {
	have := map[string]bool{}
	for _, s := range cfg.Structures() {
		have[s.Key()] = true
	}
	for _, s := range user.Structures() {
		if !have[s.Key()] {
			return false
		}
	}
	return true
}
