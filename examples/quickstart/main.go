// Quickstart: describe a small database, load some rows, hand the advisor a
// workload, and print its integrated recommendation — indexes, materialized
// views and range partitioning in one pass.
package main

import (
	"fmt"
	"log"
	"os"

	dta "repro"
	"repro/internal/catalog"
	"repro/internal/engine"
)

func main() {
	// 1. Describe the logical schema: a 200k-row sales table.
	cat := catalog.New()
	db := catalog.NewDatabase("shop")
	db.AddTable(catalog.NewTable("shop", "sales", 0,
		&catalog.Column{Name: "id", Type: catalog.TypeInt, Width: 8, Distinct: 200000, Min: 1, Max: 200000},
		&catalog.Column{Name: "customer", Type: catalog.TypeInt, Width: 8, Distinct: 20000, Min: 1, Max: 20000},
		&catalog.Column{Name: "day", Type: catalog.TypeDate, Width: 8, Distinct: 730, Min: 0, Max: 729},
		&catalog.Column{Name: "amount", Type: catalog.TypeFloat, Width: 8, Distinct: 5000, Min: 1, Max: 5000},
		&catalog.Column{Name: "note", Type: catalog.TypeString, Width: 64, Distinct: 200000, Min: 0, Max: 199999},
	))
	cat.AddDatabase(db)

	// 2. Load data (the advisor itself only reads metadata and statistics,
	// but statistics are created by sampling this data).
	data := engine.NewDatabase(cat)
	rows := make([][]engine.Value, 0, 200000)
	for i := 0; i < 200000; i++ {
		rows = append(rows, []engine.Value{
			engine.Num(float64(i + 1)),
			engine.Num(float64(i%20000 + 1)),
			engine.Num(float64(i % 730)),
			engine.Num(float64((i*13)%5000 + 1)),
			engine.Str(fmt.Sprintf("note-%06d", i)),
		})
	}
	if err := data.Load("sales", rows); err != nil {
		log.Fatal(err)
	}

	// 3. Stand up a server and attach the data.
	srv := dta.NewServer("prod", cat, dta.DefaultHardware())
	srv.AttachData(data)

	// 4. The workload: per-customer lookups, a daily report, and updates.
	w, err := dta.NewWorkload(
		"SELECT id, amount FROM sales WHERE customer = 4211",
		"SELECT id, amount FROM sales WHERE customer = 17",
		"SELECT day, SUM(amount), COUNT(*) FROM sales WHERE day BETWEEN 100 AND 130 GROUP BY day",
		"SELECT customer, SUM(amount) FROM sales GROUP BY customer",
		"UPDATE sales SET amount = 42 WHERE id = 31337",
	)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Tune with a 64 MB storage budget.
	rec, err := dta.Tune(srv, w, dta.Options{StorageBudget: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload cost %.1f → %.1f (improvement %.1f%%)\n",
		rec.BaseCost, rec.Cost, 100*rec.Improvement)
	fmt.Printf("storage: %.1f MB, what-if calls: %d\n\n",
		float64(rec.StorageBytes)/(1<<20), rec.WhatIfCalls)
	fmt.Println("recommended physical design changes:")
	for _, s := range rec.NewStructures {
		fmt.Println("  CREATE", s)
	}

	fmt.Println("\nper-statement report:")
	for _, r := range rec.Reports {
		fmt.Printf("  %7.2f → %7.2f  %s\n", r.CostBefore, r.CostAfter, r.SQL)
	}

	// 6. The same recommendation in the public XML schema (§6.1).
	fmt.Println("\nXML output:")
	if err := dta.WriteRecommendationXML(os.Stdout, rec); err != nil {
		log.Fatal(err)
	}
}
