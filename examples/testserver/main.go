// Tuning in the production/test server scenario (paper §5.3): tune a
// production server's workload without imposing the tuning load on it. The
// test server imports only metadata — never data — plus the statistics the
// optimizer turns out to need, and simulates the production server's
// hardware parameters so the what-if plans match. The example compares the
// production overhead of tuning directly against tuning through the test
// server, the measurement behind the paper's Figure 3.
package main

import (
	"fmt"
	"log"

	dta "repro"
	"repro/internal/datagen/tpch"
)

func main() {
	w := tpch.Workload()

	// Baseline: tune directly against production.
	fmt.Println("tuning directly on the production server...")
	direct := newProd()
	recDirect, err := dta.Tune(direct, w, dta.Options{
		BaseConfig:    tpch.ConstraintConfig(direct.Cat),
		StorageBudget: 3 * direct.Cat.Bytes(),
	})
	if err != nil {
		log.Fatal(err)
	}
	directOverhead := direct.Acct().Overhead
	fmt.Printf("  improvement %.1f%%, what-if calls on production: %d, overhead: %.0f units\n",
		100*recDirect.Improvement, direct.Acct().WhatIfCalls, directOverhead)

	// Through a test server.
	fmt.Println("\ntuning through a test server (metadata + imported statistics only)...")
	prod := newProd()
	sess := dta.NewTestSession(prod)
	recSess, err := dta.Tune(sess, w, dta.Options{
		BaseConfig:    tpch.ConstraintConfig(sess.Catalog()),
		StorageBudget: 3 * prod.Cat.Bytes(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  improvement %.1f%% (same metadata + statistics + simulated hardware → same plans)\n",
		100*recSess.Improvement)
	fmt.Printf("  what-if calls on production: %d (all %d ran on the test server)\n",
		prod.Acct().WhatIfCalls, sess.Test.Acct().WhatIfCalls)
	fmt.Printf("  statistics created on production: %d (imported on demand)\n", prod.Acct().StatsCreated)
	fmt.Printf("  production overhead: %.0f units\n", sess.ProductionOverhead())

	reduction := 1 - sess.ProductionOverhead()/directOverhead
	fmt.Printf("\nreduction in production server overhead: %.0f%%\n", 100*reduction)
	fmt.Println("(the paper's Figure 3 reports ~60% for single-query index tuning,")
	fmt.Println(" rising to ~90% for the full 22-query workload with all features)")
}

func newProd() *dta.Server {
	cat := tpch.Catalog(0.01)
	data, err := tpch.Load(cat, 1)
	if err != nil {
		log.Fatal(err)
	}
	s := dta.NewServer("prod", cat, dta.DefaultHardware())
	s.AttachData(data)
	return s
}
