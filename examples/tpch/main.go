// TPC-H end to end (paper §7.2): generate a scaled-down TPC-H database,
// tune the 22-query benchmark workload with a 3× storage budget, implement
// the recommendation in the execution engine, and compare the
// optimizer-estimated ("expected") improvement against the actual
// improvement in warm-run execution times. The paper reports 88% expected
// vs 83% actual at 10 GB; the point is that the two track closely.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	dta "repro"
	"repro/internal/datagen/tpch"
	"repro/internal/engine"
	"repro/internal/sqlparser"
)

func main() {
	sf := flag.Float64("sf", 0.02, "TPC-H scale factor")
	flag.Parse()

	fmt.Printf("generating TPC-H data at SF %g...\n", *sf)
	cat := tpch.Catalog(*sf)
	data, err := tpch.Load(cat, 1)
	if err != nil {
		log.Fatal(err)
	}
	srv := dta.NewServer("tpch", cat, dta.DefaultHardware())
	srv.AttachData(data)

	raw := tpch.ConstraintConfig(cat)
	w := tpch.Workload()

	fmt.Println("tuning the 22-query benchmark workload (storage budget 3x raw)...")
	rec, err := dta.Tune(srv, w, dta.Options{
		BaseConfig:    raw,
		StorageBudget: 3 * cat.Bytes(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected improvement: %.1f%% (%d structures, %.1f MB)\n",
		100*rec.Improvement, len(rec.NewStructures), float64(rec.StorageBytes)/(1<<20))
	for _, s := range rec.NewStructures {
		fmt.Println("  CREATE", s)
	}

	fmt.Println("\nimplementing both configurations and executing warm runs...")
	rawPrep, err := data.Materialize(raw)
	if err != nil {
		log.Fatal(err)
	}
	tunedPrep, err := data.Materialize(rec.Config)
	if err != nil {
		log.Fatal(err)
	}

	var rawTotal, tunedTotal time.Duration
	for qi, e := range w.Events {
		rt := warmRun(rawPrep, e.Stmt)
		tt := warmRun(tunedPrep, e.Stmt)
		rawTotal += rt
		tunedTotal += tt
		fmt.Printf("  Q%-2d  raw %-12s tuned %s\n", qi+1, rt.Round(time.Microsecond), tt.Round(time.Microsecond))
	}
	actual := 1 - float64(tunedTotal)/float64(rawTotal)
	fmt.Printf("\nactual improvement in execution time: %.1f%% (raw %s → tuned %s)\n",
		100*actual, rawTotal.Round(time.Millisecond), tunedTotal.Round(time.Millisecond))
	fmt.Printf("expected %.1f%% vs actual %.1f%% — the optimizer's estimates are close but not exact,\n",
		100*rec.Improvement, 100*actual)
	fmt.Println("exactly the relationship §7.2 of the paper demonstrates.")
}

// warmRun executes the statement 5 times after a warm-up, drops the highest
// and lowest readings, and averages the rest (the paper's methodology).
func warmRun(p *engine.Prepared, stmt sqlparser.Statement) time.Duration {
	if _, err := p.Exec(stmt); err != nil {
		log.Fatal(err)
	}
	var times []time.Duration
	for i := 0; i < 5; i++ {
		start := time.Now()
		if _, err := p.Exec(stmt); err != nil {
			log.Fatal(err)
		}
		times = append(times, time.Since(start))
	}
	lo, hi := 0, 0
	for i, t := range times {
		if t < times[lo] {
			lo = i
		}
		if t > times[hi] {
			hi = i
		}
	}
	var sum time.Duration
	n := 0
	for i, t := range times {
		if i == lo || i == hi {
			continue
		}
		sum += t
		n++
	}
	if n == 0 {
		return times[0]
	}
	return sum / time.Duration(n)
}
