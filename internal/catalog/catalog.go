// Package catalog models the logical schema (databases, tables, columns,
// constraints) and the physical design structures (indexes, materialized
// views, horizontal range partitioning) that the Database Tuning Advisor
// reasons about.
//
// The catalog is purely metadata: sizes, widths, domains and distinct counts.
// It is the information the query optimizer fundamentally relies on when
// generating a plan, which is why a test server holding only the catalog and
// statistics can stand in for a production server during tuning (paper §5.3).
package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// PageSize is the size in bytes of one storage page. All page-count
// arithmetic in the optimizer and the engine uses this unit.
const PageSize = 8192

// Type is the data type of a column.
type Type int

// Column data types supported by the system.
const (
	TypeInt Type = iota
	TypeFloat
	TypeString
	TypeDate // stored as days since epoch, behaves numerically
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "VARCHAR"
	case TypeDate:
		return "DATE"
	default:
		return fmt.Sprintf("TYPE(%d)", int(t))
	}
}

// Numeric reports whether values of the type are ordered numerically
// (everything except strings, which order lexicographically).
func (t Type) Numeric() bool { return t != TypeString }

// Column describes one column of a table: its type, storage width, and the
// ground-truth domain information from which statistics are built.
type Column struct {
	Name     string
	Type     Type
	Width    int     // storage width in bytes
	Distinct int64   // number of distinct values in the column
	Min, Max float64 // numeric domain (dictionary codes for strings)
	// NullFrac is the fraction of NULL values (0 for all generated data,
	// kept so selectivity math stays honest if loaders set it).
	NullFrac float64
}

// ForeignKey records a referential-integrity constraint from Columns of the
// owning table to RefColumns of RefTable.
type ForeignKey struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

// Table is the logical description of one table.
type Table struct {
	DB      string
	Name    string
	Columns []*Column
	Rows    int64

	PrimaryKey  []string
	UniqueKeys  [][]string
	ForeignKeys []ForeignKey

	byName map[string]*Column
}

// NewTable creates a table with the given columns and row count.
func NewTable(db, name string, rows int64, cols ...*Column) *Table {
	t := &Table{DB: db, Name: name, Rows: rows, Columns: cols}
	t.reindex()
	return t
}

func (t *Table) reindex() {
	t.byName = make(map[string]*Column, len(t.Columns))
	for _, c := range t.Columns {
		t.byName[strings.ToLower(c.Name)] = c
	}
}

// AddColumn appends a column to the table definition.
func (t *Table) AddColumn(c *Column) {
	t.Columns = append(t.Columns, c)
	if t.byName == nil {
		t.byName = make(map[string]*Column)
	}
	t.byName[strings.ToLower(c.Name)] = c
}

// Column returns the named column, or nil if the table has no such column.
// Lookup is case-insensitive, matching SQL identifier semantics.
func (t *Table) Column(name string) *Column {
	if t.byName == nil {
		t.reindex()
	}
	return t.byName[strings.ToLower(name)]
}

// HasColumn reports whether the table has the named column.
func (t *Table) HasColumn(name string) bool { return t.Column(name) != nil }

// RowWidth returns the width in bytes of one row, including a fixed
// per-row header.
func (t *Table) RowWidth() int {
	const rowHeader = 10
	w := rowHeader
	for _, c := range t.Columns {
		w += c.Width
	}
	return w
}

// Pages returns the number of pages the heap occupies.
func (t *Table) Pages() int64 {
	return pagesFor(t.Rows, t.RowWidth())
}

// Bytes returns the heap size in bytes.
func (t *Table) Bytes() int64 { return t.Pages() * PageSize }

// ColumnWidth returns the total width of the named columns plus a per-entry
// overhead, used to size index leaf entries and view rows.
func (t *Table) ColumnWidth(names []string) int {
	const entryHeader = 8
	w := entryHeader
	for _, n := range names {
		if c := t.Column(n); c != nil {
			w += c.Width
		} else {
			w += 8 // unknown columns cost a word; keeps math defined
		}
	}
	return w
}

// DistinctOf returns the distinct count of the named column, or the table
// row count if the column is unknown.
func (t *Table) DistinctOf(name string) int64 {
	if c := t.Column(name); c != nil && c.Distinct > 0 {
		return c.Distinct
	}
	return t.Rows
}

func pagesFor(rows int64, width int) int64 {
	if rows <= 0 {
		return 1
	}
	perPage := int64(PageSize / width)
	if perPage < 1 {
		perPage = 1
	}
	p := (rows + perPage - 1) / perPage
	if p < 1 {
		p = 1
	}
	return p
}

// PagesFor is the shared "how many pages do n rows of width w occupy"
// computation, exported for the optimizer and engine.
func PagesFor(rows int64, width int) int64 { return pagesFor(rows, width) }

// Database is a named collection of tables.
type Database struct {
	Name   string
	Tables []*Table
	byName map[string]*Table
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{Name: name, byName: make(map[string]*Table)}
}

// AddTable registers a table with the database, overwriting any table with
// the same (case-insensitive) name.
func (d *Database) AddTable(t *Table) {
	t.DB = d.Name
	key := strings.ToLower(t.Name)
	if _, dup := d.byName[key]; dup {
		for i, old := range d.Tables {
			if strings.EqualFold(old.Name, t.Name) {
				d.Tables[i] = t
				break
			}
		}
	} else {
		d.Tables = append(d.Tables, t)
	}
	d.byName[key] = t
}

// Table returns the named table or nil.
func (d *Database) Table(name string) *Table {
	return d.byName[strings.ToLower(name)]
}

// Bytes returns the total raw data size of the database.
func (d *Database) Bytes() int64 {
	var b int64
	for _, t := range d.Tables {
		b += t.Bytes()
	}
	return b
}

// Catalog is the set of databases on one server. Many applications use more
// than one database, and DTA tunes several simultaneously (paper §2.1).
type Catalog struct {
	Databases []*Database
	byName    map[string]*Database
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{byName: make(map[string]*Database)}
}

// AddDatabase registers a database with the catalog.
func (c *Catalog) AddDatabase(d *Database) {
	key := strings.ToLower(d.Name)
	if _, dup := c.byName[key]; !dup {
		c.Databases = append(c.Databases, d)
	}
	c.byName[key] = d
}

// Database returns the named database or nil.
func (c *Catalog) Database(name string) *Database {
	return c.byName[strings.ToLower(name)]
}

// ResolveTable finds a table by name across all databases. Returns nil if
// the name is unknown or ambiguous across databases.
func (c *Catalog) ResolveTable(name string) *Table {
	var found *Table
	for _, d := range c.Databases {
		if t := d.Table(name); t != nil {
			if found != nil {
				return nil // ambiguous
			}
			found = t
		}
	}
	return found
}

// Tables returns all tables across all databases.
func (c *Catalog) Tables() []*Table {
	var out []*Table
	for _, d := range c.Databases {
		out = append(out, d.Tables...)
	}
	return out
}

// Bytes returns the total raw data size across databases.
func (c *Catalog) Bytes() int64 {
	var b int64
	for _, d := range c.Databases {
		b += d.Bytes()
	}
	return b
}

// Clone returns a deep copy of the catalog metadata. Cloning is what the
// production/test server scenario calls "importing metadata": it copies
// table and constraint definitions but, by construction, no data.
func (c *Catalog) Clone() *Catalog {
	out := New()
	for _, d := range c.Databases {
		nd := NewDatabase(d.Name)
		for _, t := range d.Tables {
			cols := make([]*Column, len(t.Columns))
			for i, col := range t.Columns {
				cc := *col
				cols[i] = &cc
			}
			nt := NewTable(d.Name, t.Name, t.Rows, cols...)
			nt.PrimaryKey = append([]string(nil), t.PrimaryKey...)
			for _, u := range t.UniqueKeys {
				nt.UniqueKeys = append(nt.UniqueKeys, append([]string(nil), u...))
			}
			for _, fk := range t.ForeignKeys {
				nt.ForeignKeys = append(nt.ForeignKeys, ForeignKey{
					Columns:    append([]string(nil), fk.Columns...),
					RefTable:   fk.RefTable,
					RefColumns: append([]string(nil), fk.RefColumns...),
				})
			}
			nd.AddTable(nt)
		}
		out.AddDatabase(nd)
	}
	return out
}

// ColumnGroup is an unordered set of columns of one table, the unit over
// which DTA's column-group restriction step works (paper §2.2).
type ColumnGroup struct {
	Table   string
	Columns []string // kept sorted, lower-case
}

// NewColumnGroup builds a canonical (sorted, lower-cased, deduplicated)
// column group.
func NewColumnGroup(table string, cols ...string) ColumnGroup {
	seen := make(map[string]bool, len(cols))
	out := make([]string, 0, len(cols))
	for _, c := range cols {
		lc := strings.ToLower(c)
		if !seen[lc] {
			seen[lc] = true
			out = append(out, lc)
		}
	}
	sort.Strings(out)
	return ColumnGroup{Table: strings.ToLower(table), Columns: out}
}

// Key returns a canonical string key for map usage.
func (g ColumnGroup) Key() string {
	return g.Table + "(" + strings.Join(g.Columns, ",") + ")"
}

// Contains reports whether the group contains the column.
func (g ColumnGroup) Contains(col string) bool {
	lc := strings.ToLower(col)
	i := sort.SearchStrings(g.Columns, lc)
	return i < len(g.Columns) && g.Columns[i] == lc
}

// Subsumes reports whether g contains every column of other (same table).
func (g ColumnGroup) Subsumes(other ColumnGroup) bool {
	if g.Table != other.Table {
		return false
	}
	for _, c := range other.Columns {
		if !g.Contains(c) {
			return false
		}
	}
	return true
}
