package catalog

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func testTable() *Table {
	return NewTable("db", "orders", 1_000_000,
		&Column{Name: "o_orderkey", Type: TypeInt, Width: 8, Distinct: 1_000_000, Min: 1, Max: 1_000_000},
		&Column{Name: "o_custkey", Type: TypeInt, Width: 8, Distinct: 100_000, Min: 1, Max: 100_000},
		&Column{Name: "o_orderdate", Type: TypeDate, Width: 8, Distinct: 2406, Min: 0, Max: 2405},
		&Column{Name: "o_comment", Type: TypeString, Width: 48, Distinct: 900_000, Min: 0, Max: 899_999},
	)
}

func TestTableBasics(t *testing.T) {
	tbl := testTable()
	if tbl.Column("O_ORDERKEY") == nil {
		t.Fatal("column lookup should be case-insensitive")
	}
	if tbl.Column("nope") != nil {
		t.Fatal("unknown column should return nil")
	}
	w := tbl.RowWidth()
	if w != 10+8+8+8+48 {
		t.Fatalf("RowWidth = %d, want %d", w, 10+8+8+8+48)
	}
	perPage := int64(PageSize / w)
	wantPages := (tbl.Rows + perPage - 1) / perPage
	if got := tbl.Pages(); got != wantPages {
		t.Fatalf("Pages = %d, want %d", got, wantPages)
	}
	if tbl.DistinctOf("o_custkey") != 100_000 {
		t.Fatalf("DistinctOf(o_custkey) = %d", tbl.DistinctOf("o_custkey"))
	}
	if tbl.DistinctOf("unknown") != tbl.Rows {
		t.Fatal("DistinctOf(unknown) should fall back to row count")
	}
}

func TestPagesForEdgeCases(t *testing.T) {
	if PagesFor(0, 100) != 1 {
		t.Fatal("empty tables still occupy one page")
	}
	if PagesFor(1, PageSize*3) != 1 {
		t.Fatal("a row wider than a page occupies one page per row")
	}
	if PagesFor(5, PageSize*3) != 5 {
		t.Fatal("five oversize rows occupy five pages")
	}
}

func TestCatalogResolve(t *testing.T) {
	c := New()
	d1 := NewDatabase("sales")
	d1.AddTable(testTable())
	c.AddDatabase(d1)
	d2 := NewDatabase("hr")
	d2.AddTable(NewTable("hr", "emp", 10, &Column{Name: "id", Type: TypeInt, Width: 8, Distinct: 10}))
	c.AddDatabase(d2)

	if c.ResolveTable("orders") == nil {
		t.Fatal("orders should resolve")
	}
	if c.ResolveTable("EMP") == nil {
		t.Fatal("resolution should be case-insensitive")
	}
	if c.ResolveTable("missing") != nil {
		t.Fatal("missing table should not resolve")
	}

	// Ambiguity: same table name in two databases resolves to nil.
	d2.AddTable(NewTable("hr", "orders", 5, &Column{Name: "x", Type: TypeInt, Width: 8, Distinct: 5}))
	if c.ResolveTable("orders") != nil {
		t.Fatal("ambiguous table should not resolve")
	}
}

func TestCatalogCloneIsDeep(t *testing.T) {
	c := New()
	d := NewDatabase("sales")
	d.AddTable(testTable())
	c.AddDatabase(d)

	cl := c.Clone()
	cl.Database("sales").Table("orders").Rows = 7
	cl.Database("sales").Table("orders").Columns[0].Distinct = 7
	if c.Database("sales").Table("orders").Rows != 1_000_000 {
		t.Fatal("clone shares row counts with original")
	}
	if c.Database("sales").Table("orders").Columns[0].Distinct != 1_000_000 {
		t.Fatal("clone shares column metadata with original")
	}
}

func TestPartitionScheme(t *testing.T) {
	p := NewPartitionScheme("o_orderdate", 30, 10, 20, 10)
	if got := p.Partitions(); got != 4 {
		t.Fatalf("Partitions = %d, want 4 (dedup + sort)", got)
	}
	cases := []struct {
		v    float64
		want int
	}{{5, 0}, {10, 1}, {15, 1}, {20, 2}, {29, 2}, {30, 3}, {99, 3}}
	for _, tc := range cases {
		if got := p.Locate(tc.v); got != tc.want {
			t.Errorf("Locate(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
	if !p.Same(NewPartitionScheme("O_ORDERDATE", 10, 20, 30)) {
		t.Fatal("identical schemes should be Same")
	}
	if p.Same(NewPartitionScheme("o_orderdate", 10, 20)) {
		t.Fatal("different boundary counts are not Same")
	}
	if p.Same(nil) {
		t.Fatal("a scheme is not Same as nil")
	}
	var nilScheme *PartitionScheme
	if !nilScheme.Same(nil) {
		t.Fatal("nil schemes are mutually aligned")
	}
	if nilScheme.Partitions() != 1 {
		t.Fatal("nil scheme has one partition")
	}
}

func TestPartitionLocateProperty(t *testing.T) {
	// Property: Locate is monotone in v and always lands inside range.
	f := func(raw []float64, v float64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		p := NewPartitionScheme("c", raw...)
		i := p.Locate(v)
		if i < 0 || i >= p.Partitions() {
			return false
		}
		j := p.Locate(v + 1)
		return j >= i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexProperties(t *testing.T) {
	tbl := testTable()
	ix := NewIndex("Orders", "O_CUSTKEY", "o_orderdate").WithInclude("o_comment")
	if ix.Table != "orders" || ix.KeyColumns[0] != "o_custkey" {
		t.Fatal("identifiers should be canonicalized to lower case")
	}
	if !ix.Covers([]string{"o_custkey", "o_orderdate", "O_COMMENT"}) {
		t.Fatal("index should cover key+included columns")
	}
	if ix.Covers([]string{"o_orderkey"}) {
		t.Fatal("index should not cover columns it lacks")
	}
	if ix.StorageBytes(tbl) <= 0 {
		t.Fatal("non-clustered index must consume storage")
	}
	cix := NewIndex("orders", "o_orderdate")
	cix.Clustered = true
	if cix.StorageBytes(tbl) != 0 {
		t.Fatal("clustered index is non-redundant storage")
	}
	if !cix.Covers([]string{"o_comment"}) {
		t.Fatal("clustered index covers everything")
	}
	if cix.Pages(tbl) != tbl.Pages() {
		t.Fatal("clustered index pages = table pages")
	}
	if ix.Pages(tbl) >= tbl.Pages() {
		t.Fatal("narrow NC index should be smaller than the heap")
	}
}

func TestIndexKeyIdentity(t *testing.T) {
	a := NewIndex("t", "a", "b").WithInclude("z", "y")
	b := NewIndex("T", "A", "B").WithInclude("Y", "Z")
	if a.Key() != b.Key() {
		t.Fatalf("include order should not change identity: %q vs %q", a.Key(), b.Key())
	}
	c := NewIndex("t", "b", "a")
	if a.Key() == c.Key() {
		t.Fatal("key column order is significant")
	}
}

func TestMaterializedView(t *testing.T) {
	cat := New()
	d := NewDatabase("db")
	d.AddTable(testTable())
	cat.AddDatabase(d)

	v := NewMaterializedView(
		[]string{"ORDERS"},
		nil,
		[]ColRef{NewColRef("orders", "o_custkey")},
		[]ColRef{NewColRef("orders", "o_custkey")},
		[]Agg{{Func: "COUNT"}, {Func: "SUM", Col: NewColRef("orders", "o_orderkey")}},
		100_000,
	)
	if !v.References("orders") || v.References("lineitem") {
		t.Fatal("References is wrong")
	}
	if v.StorageBytes(cat) <= 0 {
		t.Fatal("views consume storage")
	}
	v2 := NewMaterializedView(
		[]string{"orders"},
		nil,
		nil,
		[]ColRef{{Table: "orders", Column: "O_CUSTKEY"}},
		[]Agg{{Func: "SUM", Col: NewColRef("orders", "o_orderkey")}, {Func: "COUNT"}},
		100_000,
	)
	if v.Key() != v2.Key() {
		t.Fatalf("canonicalization failed:\n%s\n%s", v.Key(), v2.Key())
	}
}

func TestConfiguration(t *testing.T) {
	cat := New()
	d := NewDatabase("db")
	d.AddTable(testTable())
	cat.AddDatabase(d)

	cfg := NewConfiguration()
	if !cfg.AddIndex(NewIndex("orders", "o_custkey")) {
		t.Fatal("first add should succeed")
	}
	if cfg.AddIndex(NewIndex("orders", "o_custkey")) {
		t.Fatal("duplicate add should fail")
	}
	c1 := NewIndex("orders", "o_orderdate")
	c1.Clustered = true
	c2 := NewIndex("orders", "o_custkey")
	c2.Clustered = true
	if !cfg.AddIndex(c1) {
		t.Fatal("clustered add should succeed")
	}
	if cfg.AddIndex(c2) {
		t.Fatal("second clustering on same table must be rejected")
	}
	if cfg.ClusteredIndex("orders") == nil {
		t.Fatal("clustered index lookup failed")
	}
	if n := len(cfg.IndexesOn("orders")); n != 2 {
		t.Fatalf("IndexesOn = %d, want 2", n)
	}
	if err := cfg.Validate(cat); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	bad := NewConfiguration()
	bad.AddIndex(NewIndex("orders", "mystery"))
	if err := bad.Validate(cat); err == nil {
		t.Fatal("index on unknown column must not validate")
	}

	bad2 := NewConfiguration()
	b1 := NewIndex("orders", "o_orderdate")
	b1.Clustered = true
	b2 := NewIndex("orders", "o_custkey")
	b2.Clustered = true
	bad2.Indexes = append(bad2.Indexes, b1, b2) // bypass AddIndex guard
	if err := bad2.Validate(cat); err == nil {
		t.Fatal("two clusterings on one table must not validate")
	}
}

func TestConfigurationAlignment(t *testing.T) {
	cfg := NewConfiguration()
	p := NewPartitionScheme("o_orderdate", 100, 200)
	cfg.SetTablePartitioning("orders", p)
	ix := NewIndex("orders", "o_custkey")
	cfg.AddIndex(ix)
	if cfg.Aligned() {
		t.Fatal("unpartitioned index on partitioned table is not aligned")
	}
	ix.Partitioning = p.Clone()
	if !cfg.Aligned() {
		t.Fatal("identically partitioned index should be aligned")
	}
	ix.Partitioning = NewPartitionScheme("o_orderdate", 100)
	if cfg.Aligned() {
		t.Fatal("different boundaries are not aligned")
	}
}

func TestConfigurationStorageAndKey(t *testing.T) {
	cat := New()
	d := NewDatabase("db")
	d.AddTable(testTable())
	cat.AddDatabase(d)

	cfg := NewConfiguration()
	cfg.AddIndex(NewIndex("orders", "o_custkey"))
	cfg.SetTablePartitioning("orders", NewPartitionScheme("o_orderdate", 1200))
	s1 := cfg.StorageBytes(cat)
	if s1 <= 0 {
		t.Fatal("storage should be positive")
	}
	cix := NewIndex("orders", "o_orderdate")
	cix.Clustered = true
	cfg.AddIndex(cix)
	if cfg.StorageBytes(cat) != s1 {
		t.Fatal("clustered index must not add storage")
	}

	other := NewConfiguration()
	other.SetTablePartitioning("orders", NewPartitionScheme("o_orderdate", 1200))
	other.AddIndex(cix.Clone())
	other.AddIndex(NewIndex("orders", "o_custkey"))
	if cfg.Key() != other.Key() {
		t.Fatalf("Key should be order independent:\n%s\n%s", cfg.Key(), other.Key())
	}
}

func TestStructureApply(t *testing.T) {
	cat := New()
	d := NewDatabase("db")
	d.AddTable(testTable())
	cat.AddDatabase(d)

	cfg := NewConfiguration()
	structs := []Structure{
		{Index: NewIndex("orders", "o_custkey")},
		{PartTable: "orders", Part: NewPartitionScheme("o_orderdate", 500)},
	}
	for _, s := range structs {
		if !s.ApplyTo(cfg) {
			t.Fatalf("ApplyTo(%s) should change config", s)
		}
		if s.ApplyTo(cfg) {
			t.Fatalf("second ApplyTo(%s) should be a no-op", s)
		}
	}
	if got := len(cfg.Structures()); got != 2 {
		t.Fatalf("Structures = %d, want 2", got)
	}
	for _, s := range cfg.Structures() {
		if s.Key() == "" || s.String() == "" {
			t.Fatal("structures must have identity and rendering")
		}
	}
}

func TestColumnGroup(t *testing.T) {
	g := NewColumnGroup("Orders", "B", "a", "b")
	if g.Key() != "orders(a,b)" {
		t.Fatalf("Key = %q", g.Key())
	}
	if !g.Contains("A") || g.Contains("c") {
		t.Fatal("Contains is wrong")
	}
	big := NewColumnGroup("orders", "a", "b", "c")
	if !big.Subsumes(g) || g.Subsumes(big) {
		t.Fatal("Subsumes is wrong")
	}
	if big.Subsumes(NewColumnGroup("lineitem", "a")) {
		t.Fatal("Subsumes must require same table")
	}
}

func TestColumnGroupCanonicalProperty(t *testing.T) {
	f := func(cols []string) bool {
		for i := range cols {
			if len(cols[i]) > 8 {
				cols[i] = cols[i][:8]
			}
		}
		g := NewColumnGroup("t", cols...)
		shuffled := append([]string(nil), cols...)
		sort.Sort(sort.Reverse(sort.StringSlice(shuffled)))
		h := NewColumnGroup("T", shuffled...)
		if g.Key() != h.Key() {
			return false
		}
		// Canonical list is sorted and deduplicated.
		for i := 1; i < len(g.Columns); i++ {
			if g.Columns[i-1] >= g.Columns[i] {
				return false
			}
		}
		for _, c := range g.Columns {
			if c != strings.ToLower(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigurationMergeAndClone(t *testing.T) {
	a := NewConfiguration()
	a.AddIndex(NewIndex("orders", "o_custkey"))
	b := NewConfiguration()
	b.AddIndex(NewIndex("orders", "o_custkey")) // duplicate
	b.AddIndex(NewIndex("orders", "o_orderdate"))
	b.SetTablePartitioning("orders", NewPartitionScheme("o_orderdate", 7))
	a.Merge(b)
	if len(a.Indexes) != 2 {
		t.Fatalf("merge should dedup: %d indexes", len(a.Indexes))
	}
	if a.TablePartitioning("orders") == nil {
		t.Fatal("merge should carry partitioning")
	}

	cl := a.Clone()
	cl.Indexes[0].KeyColumns[0] = "mutated"
	cl.SetTablePartitioning("orders", nil)
	if a.Indexes[0].KeyColumns[0] == "mutated" {
		t.Fatal("clone shares index slices")
	}
	if a.TablePartitioning("orders") == nil {
		t.Fatal("clone shares partition map")
	}
}
