package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// Configuration is a physical database design: a set of indexes, a set of
// materialized views, and a range-partitioning choice per table. DTA explores
// many configurations and recommends the one with the lowest
// optimizer-estimated workload cost (paper §2.2).
type Configuration struct {
	Indexes []*Index
	Views   []*MaterializedView
	// TableParts maps table name → heap/clustered partitioning of the table.
	TableParts map[string]*PartitionScheme
}

// NewConfiguration returns an empty configuration (the "raw" design when no
// constraint indexes exist).
func NewConfiguration() *Configuration {
	return &Configuration{TableParts: make(map[string]*PartitionScheme)}
}

// Clone deep-copies the configuration.
func (c *Configuration) Clone() *Configuration {
	out := NewConfiguration()
	for _, ix := range c.Indexes {
		out.Indexes = append(out.Indexes, ix.Clone())
	}
	for _, v := range c.Views {
		out.Views = append(out.Views, v.Clone())
	}
	for t, p := range c.TableParts {
		out.TableParts[t] = p.Clone()
	}
	return out
}

// AddIndex adds an index if an identical one is not already present.
// It returns true if the index was added.
func (c *Configuration) AddIndex(ix *Index) bool {
	key := ix.Key()
	for _, e := range c.Indexes {
		if e.Key() == key {
			return false
		}
	}
	if ix.Clustered {
		// At most one clustered index (one physical row order) per table.
		for _, e := range c.Indexes {
			if e.Clustered && e.Table == ix.Table {
				return false
			}
		}
	}
	c.Indexes = append(c.Indexes, ix)
	return true
}

// AddView adds a materialized view if not already present; reports whether
// it was added.
func (c *Configuration) AddView(v *MaterializedView) bool {
	key := v.Key()
	for _, e := range c.Views {
		if e.Key() == key {
			return false
		}
	}
	c.Views = append(c.Views, v)
	return true
}

// SetTablePartitioning sets (or clears, with nil) the partitioning of a table.
func (c *Configuration) SetTablePartitioning(table string, p *PartitionScheme) {
	lt := strings.ToLower(table)
	if p == nil {
		delete(c.TableParts, lt)
		return
	}
	c.TableParts[lt] = p
}

// TablePartitioning returns the partitioning of the table, or nil.
func (c *Configuration) TablePartitioning(table string) *PartitionScheme {
	return c.TableParts[strings.ToLower(table)]
}

// ClusteredIndex returns the clustered index on the table, or nil.
func (c *Configuration) ClusteredIndex(table string) *Index {
	lt := strings.ToLower(table)
	for _, ix := range c.Indexes {
		if ix.Clustered && ix.Table == lt {
			return ix
		}
	}
	return nil
}

// IndexesOn returns all indexes on the table.
func (c *Configuration) IndexesOn(table string) []*Index {
	lt := strings.ToLower(table)
	var out []*Index
	for _, ix := range c.Indexes {
		if ix.Table == lt {
			out = append(out, ix)
		}
	}
	return out
}

// ViewsOver returns all materialized views referencing the table.
func (c *Configuration) ViewsOver(table string) []*MaterializedView {
	var out []*MaterializedView
	for _, v := range c.Views {
		if v.References(table) {
			out = append(out, v)
		}
	}
	return out
}

// StorageBytes returns the additional storage the configuration consumes
// over the raw heaps: non-clustered index leaves plus materialized views.
// Clustered indexes and partitioning are non-redundant (paper §3).
func (c *Configuration) StorageBytes(cat *Catalog) int64 {
	var b int64
	for _, ix := range c.Indexes {
		t := cat.ResolveTable(ix.Table)
		if t == nil {
			continue
		}
		b += ix.StorageBytes(t)
	}
	for _, v := range c.Views {
		b += v.StorageBytes(cat)
	}
	return b
}

// Merge unions other into c (skipping duplicates). Table partitioning from
// other wins on conflict. Used to honor user-specified configurations.
func (c *Configuration) Merge(other *Configuration) {
	if other == nil {
		return
	}
	for _, ix := range other.Indexes {
		c.AddIndex(ix.Clone())
	}
	for _, v := range other.Views {
		c.AddView(v.Clone())
	}
	for t, p := range other.TableParts {
		c.TableParts[t] = p.Clone()
	}
}

// Aligned reports whether, for every table, the table and all of its indexes
// are partitioned identically (paper §4). Unpartitioned everywhere counts as
// aligned.
func (c *Configuration) Aligned() bool {
	for _, ix := range c.Indexes {
		tp := c.TableParts[ix.Table]
		if !tp.Same(ix.Partitioning) {
			return false
		}
	}
	return true
}

// Validate checks that the configuration is realizable: at most one
// clustering (clustered index) per table, tables exist, partitioning columns
// exist, indexes reference existing columns. This is the validity check a
// user-specified configuration must pass (paper §6.2).
func (c *Configuration) Validate(cat *Catalog) error {
	clusteredSeen := map[string]string{}
	for _, ix := range c.Indexes {
		t := cat.ResolveTable(ix.Table)
		if t == nil {
			return fmt.Errorf("catalog: index %s references unknown table %q", ix.Key(), ix.Table)
		}
		if len(ix.KeyColumns) == 0 {
			return fmt.Errorf("catalog: index on %q has no key columns", ix.Table)
		}
		for _, col := range ix.AllColumns() {
			if !t.HasColumn(col) {
				return fmt.Errorf("catalog: index %s references unknown column %q", ix.Key(), col)
			}
		}
		if ix.Clustered {
			if prev, dup := clusteredSeen[ix.Table]; dup {
				return fmt.Errorf("catalog: table %q has two clusterings (%s and %s)", ix.Table, prev, ix.Key())
			}
			clusteredSeen[ix.Table] = ix.Key()
		}
		if p := ix.Partitioning; p != nil && !t.HasColumn(p.Column) {
			return fmt.Errorf("catalog: index %s partitioned on unknown column %q", ix.Key(), p.Column)
		}
	}
	for table, p := range c.TableParts {
		t := cat.ResolveTable(table)
		if t == nil {
			return fmt.Errorf("catalog: partitioning references unknown table %q", table)
		}
		if p != nil && !t.HasColumn(p.Column) {
			return fmt.Errorf("catalog: table %q partitioned on unknown column %q", table, p.Column)
		}
	}
	for _, v := range c.Views {
		for _, tn := range v.Tables {
			if cat.ResolveTable(tn) == nil {
				return fmt.Errorf("catalog: view %s references unknown table %q", v.Name, tn)
			}
		}
	}
	return nil
}

// Key returns a canonical identity string for the whole configuration,
// usable as a cache key in what-if cost caching.
func (c *Configuration) Key() string {
	parts := make([]string, 0, len(c.Indexes)+len(c.Views)+len(c.TableParts))
	for _, ix := range c.Indexes {
		parts = append(parts, ix.Key())
	}
	for _, v := range c.Views {
		parts = append(parts, v.Key())
	}
	for t, p := range c.TableParts {
		parts = append(parts, "tp:"+t+"="+p.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// Structures returns every structure in the configuration as a uniform
// Structure slice (used by enumeration and reporting).
func (c *Configuration) Structures() []Structure {
	var out []Structure
	for _, ix := range c.Indexes {
		out = append(out, Structure{Index: ix})
	}
	for _, v := range c.Views {
		out = append(out, Structure{View: v})
	}
	for t, p := range c.TableParts {
		out = append(out, Structure{PartTable: t, Part: p})
	}
	return out
}

// Structure is a tagged union over the three physical design feature kinds.
// Exactly one of Index, View, or (PartTable, Part) is set.
type Structure struct {
	Index     *Index
	View      *MaterializedView
	PartTable string
	Part      *PartitionScheme
}

// Key returns the canonical identity of the structure.
func (s Structure) Key() string {
	switch {
	case s.Index != nil:
		return s.Index.Key()
	case s.View != nil:
		return s.View.Key()
	default:
		return "tp:" + s.PartTable + "=" + s.Part.String()
	}
}

// String renders the structure for reports.
func (s Structure) String() string {
	switch {
	case s.Index != nil:
		return s.Index.String()
	case s.View != nil:
		return s.View.String()
	default:
		return fmt.Sprintf("PARTITION TABLE %s BY %s", s.PartTable, s.Part.String())
	}
}

// StorageBytes returns the extra storage the structure consumes.
func (s Structure) StorageBytes(cat *Catalog) int64 {
	switch {
	case s.Index != nil:
		if t := cat.ResolveTable(s.Index.Table); t != nil {
			return s.Index.StorageBytes(t)
		}
		return 0
	case s.View != nil:
		return s.View.StorageBytes(cat)
	default:
		return 0 // repartitioning a heap is non-redundant
	}
}

// ApplyTo adds the structure to a configuration; reports whether the
// configuration changed.
func (s Structure) ApplyTo(c *Configuration) bool {
	switch {
	case s.Index != nil:
		return c.AddIndex(s.Index.Clone())
	case s.View != nil:
		return c.AddView(s.View.Clone())
	default:
		if c.TablePartitioning(s.PartTable).Same(s.Part) {
			return false
		}
		c.SetTablePartitioning(s.PartTable, s.Part.Clone())
		return true
	}
}

// TableOf returns the table the structure belongs to ("" for views, which
// span several tables).
func (s Structure) TableOf() string {
	switch {
	case s.Index != nil:
		return s.Index.Table
	case s.View != nil:
		return ""
	default:
		return s.PartTable
	}
}
