package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// PartitionScheme is a single-column horizontal range partitioning, the form
// supported by SQL Server 2005 and by this reproduction (paper §2.2). The
// boundary values split the domain into len(Boundaries)+1 ranges using
// RANGE RIGHT semantics: partition i holds values v with
// Boundaries[i-1] <= v < Boundaries[i].
type PartitionScheme struct {
	Column     string
	Boundaries []float64 // strictly increasing
}

// NewPartitionScheme builds a canonical scheme: boundaries sorted and
// deduplicated, column lower-cased.
func NewPartitionScheme(column string, boundaries ...float64) *PartitionScheme {
	b := append([]float64(nil), boundaries...)
	sort.Float64s(b)
	out := b[:0]
	for i, v := range b {
		if i == 0 || v != b[i-1] {
			out = append(out, v)
		}
	}
	return &PartitionScheme{Column: strings.ToLower(column), Boundaries: out}
}

// Partitions returns the number of ranges the scheme produces.
func (p *PartitionScheme) Partitions() int {
	if p == nil {
		return 1
	}
	return len(p.Boundaries) + 1
}

// Locate returns the partition ordinal holding value v.
func (p *PartitionScheme) Locate(v float64) int {
	if p == nil {
		return 0
	}
	return sort.SearchFloat64s(p.Boundaries, v+1e-12) // RANGE RIGHT: v < boundary stays left
}

// Same reports whether two schemes partition identically — the alignment
// relation of paper §4. Two nil schemes (both unpartitioned) are aligned.
func (p *PartitionScheme) Same(o *PartitionScheme) bool {
	if p == nil || o == nil {
		return p == nil && o == nil
	}
	if p.Column != o.Column || len(p.Boundaries) != len(o.Boundaries) {
		return false
	}
	for i := range p.Boundaries {
		if p.Boundaries[i] != o.Boundaries[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the scheme (nil-safe).
func (p *PartitionScheme) Clone() *PartitionScheme {
	if p == nil {
		return nil
	}
	return &PartitionScheme{Column: p.Column, Boundaries: append([]float64(nil), p.Boundaries...)}
}

// String renders the scheme for reports, e.g. "RANGE(col) [10, 20]".
func (p *PartitionScheme) String() string {
	if p == nil {
		return "NONE"
	}
	parts := make([]string, len(p.Boundaries))
	for i, b := range p.Boundaries {
		parts[i] = trimFloat(b)
	}
	return fmt.Sprintf("RANGE(%s) [%s]", p.Column, strings.Join(parts, ", "))
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// Index is a (possibly clustered, possibly partitioned) B-tree index.
// A clustered index is the table itself ordered by the key and therefore
// adds negligible storage; a non-clustered index stores key columns plus
// included columns in its leaves plus a row locator.
type Index struct {
	Table        string
	KeyColumns   []string // ordered; order matters for seeks and sorts
	IncludeCols  []string // leaf-only columns for covering
	Clustered    bool
	Partitioning *PartitionScheme // nil means non-partitioned
	// FromConstraint marks indexes that enforce referential integrity or
	// uniqueness; the "raw" configuration of the experiments (§7.1) keeps
	// exactly these.
	FromConstraint bool
}

// NewIndex builds an index with canonical lower-case identifiers.
func NewIndex(table string, keys ...string) *Index {
	k := make([]string, len(keys))
	for i, c := range keys {
		k[i] = strings.ToLower(c)
	}
	return &Index{Table: strings.ToLower(table), KeyColumns: k}
}

// WithInclude adds included (leaf-only) columns and returns the index.
func (ix *Index) WithInclude(cols ...string) *Index {
	for _, c := range cols {
		ix.IncludeCols = append(ix.IncludeCols, strings.ToLower(c))
	}
	return ix
}

// AllColumns returns key plus included columns (order preserved).
func (ix *Index) AllColumns() []string {
	out := make([]string, 0, len(ix.KeyColumns)+len(ix.IncludeCols))
	out = append(out, ix.KeyColumns...)
	out = append(out, ix.IncludeCols...)
	return out
}

// Covers reports whether the index leaf carries every column in need.
func (ix *Index) Covers(need []string) bool {
	if ix.Clustered {
		return true // clustered index is the table
	}
	have := make(map[string]bool, len(ix.KeyColumns)+len(ix.IncludeCols))
	for _, c := range ix.AllColumns() {
		have[c] = true
	}
	for _, c := range need {
		if !have[strings.ToLower(c)] {
			return false
		}
	}
	return true
}

// Key returns a canonical identity string: two indexes with the same key are
// the same physical design structure.
func (ix *Index) Key() string {
	var b strings.Builder
	if ix.Clustered {
		b.WriteString("cix:")
	} else {
		b.WriteString("ix:")
	}
	b.WriteString(ix.Table)
	b.WriteByte('(')
	b.WriteString(strings.Join(ix.KeyColumns, ","))
	b.WriteByte(')')
	if len(ix.IncludeCols) > 0 {
		inc := append([]string(nil), ix.IncludeCols...)
		sort.Strings(inc)
		b.WriteString(" include(")
		b.WriteString(strings.Join(inc, ","))
		b.WriteByte(')')
	}
	if ix.Partitioning != nil {
		b.WriteString(" part ")
		b.WriteString(ix.Partitioning.String())
	}
	return b.String()
}

// String renders a DDL-like description for reports.
func (ix *Index) String() string {
	kind := "INDEX"
	if ix.Clustered {
		kind = "CLUSTERED INDEX"
	}
	s := fmt.Sprintf("%s ON %s (%s)", kind, ix.Table, strings.Join(ix.KeyColumns, ", "))
	if len(ix.IncludeCols) > 0 {
		s += fmt.Sprintf(" INCLUDE (%s)", strings.Join(ix.IncludeCols, ", "))
	}
	if ix.Partitioning != nil {
		s += " PARTITION BY " + ix.Partitioning.String()
	}
	return s
}

// Clone deep-copies the index.
func (ix *Index) Clone() *Index {
	out := *ix
	out.KeyColumns = append([]string(nil), ix.KeyColumns...)
	out.IncludeCols = append([]string(nil), ix.IncludeCols...)
	out.Partitioning = ix.Partitioning.Clone()
	return &out
}

// LeafEntryWidth returns the width of one leaf entry of the index on t.
func (ix *Index) LeafEntryWidth(t *Table) int {
	const ridWidth = 8
	return t.ColumnWidth(ix.AllColumns()) + ridWidth
}

// Pages returns the number of leaf pages of the index on table t. Clustered
// indexes return the table's own pages (they are the table).
func (ix *Index) Pages(t *Table) int64 {
	if ix.Clustered {
		return t.Pages()
	}
	return pagesFor(t.Rows, ix.LeafEntryWidth(t))
}

// StorageBytes returns the extra storage the index consumes: zero for a
// clustered index or partitioning (non-redundant structures, §3), leaf pages
// for non-clustered indexes.
func (ix *Index) StorageBytes(t *Table) int64 {
	if ix.Clustered {
		return 0
	}
	return ix.Pages(t) * PageSize
}

// ColRef names a column of a table.
type ColRef struct {
	Table  string
	Column string
}

// NewColRef builds a lower-cased column reference.
func NewColRef(table, column string) ColRef {
	return ColRef{Table: strings.ToLower(table), Column: strings.ToLower(column)}
}

// String renders "table.column".
func (c ColRef) String() string { return c.Table + "." + c.Column }

// JoinPred is an equality join predicate between two columns.
type JoinPred struct {
	Left, Right ColRef
}

// Canon returns the predicate with sides ordered canonically.
func (j JoinPred) Canon() JoinPred {
	if j.Left.String() > j.Right.String() {
		return JoinPred{Left: j.Right, Right: j.Left}
	}
	return j
}

// String renders "a.x = b.y".
func (j JoinPred) String() string {
	c := j.Canon()
	return c.Left.String() + " = " + c.Right.String()
}

// Agg is an aggregate output of a materialized view.
type Agg struct {
	Func string // COUNT, SUM, AVG, MIN, MAX; COUNT(*) has empty Col.Column
	Col  ColRef
}

// String renders "SUM(t.c)".
func (a Agg) String() string {
	if a.Col.Column == "" {
		return strings.ToUpper(a.Func) + "(*)"
	}
	return strings.ToUpper(a.Func) + "(" + a.Col.String() + ")"
}

// MaterializedView is the structural description of a materialized view
// candidate: the join of Tables on JoinPreds, grouped by GroupBy with
// aggregates Aggs, carrying OutputColumns so residual predicates can still
// be applied on top of the view. A view with no GroupBy is an SPJ view.
type MaterializedView struct {
	Name      string
	Tables    []string // sorted, lower-case
	JoinPreds []JoinPred
	// OutputColumns are plain columns available in the view (selection /
	// residual-predicate columns). For grouped views these must appear in
	// GroupBy; the constructor enforces that by unioning them in.
	OutputColumns []ColRef
	GroupBy       []ColRef
	Aggs          []Agg
	Rows          int64 // estimated cardinality at creation time
	Partitioning  *PartitionScheme
}

// NewMaterializedView builds a canonical view descriptor.
func NewMaterializedView(tables []string, joins []JoinPred, out []ColRef, groupBy []ColRef, aggs []Agg, rows int64) *MaterializedView {
	v := &MaterializedView{Rows: rows}
	seen := map[string]bool{}
	for _, t := range tables {
		lt := strings.ToLower(t)
		if !seen[lt] {
			seen[lt] = true
			v.Tables = append(v.Tables, lt)
		}
	}
	sort.Strings(v.Tables)
	for _, j := range joins {
		v.JoinPreds = append(v.JoinPreds, j.Canon())
	}
	sort.Slice(v.JoinPreds, func(i, k int) bool { return v.JoinPreds[i].String() < v.JoinPreds[k].String() })
	if len(groupBy) > 0 {
		// Grouped views can only expose grouping columns as plain output, so
		// any extra output column (e.g. a predicate column) joins the
		// grouping: GroupBy and OutputColumns coincide.
		v.GroupBy = canonCols(append(append([]ColRef(nil), groupBy...), out...))
		v.OutputColumns = append([]ColRef(nil), v.GroupBy...)
	} else {
		v.OutputColumns = canonCols(out)
	}
	v.Aggs = append(v.Aggs, aggs...)
	sort.Slice(v.Aggs, func(i, k int) bool { return v.Aggs[i].String() < v.Aggs[k].String() })
	dedupAggs := v.Aggs[:0]
	var last string
	for _, a := range v.Aggs {
		if s := a.String(); s != last {
			dedupAggs = append(dedupAggs, a)
			last = s
		}
	}
	v.Aggs = dedupAggs
	v.Name = v.Key()
	return v
}

func canonCols(cols []ColRef) []ColRef {
	seen := map[string]bool{}
	var out []ColRef
	for _, c := range cols {
		c = NewColRef(c.Table, c.Column)
		if !seen[c.String()] {
			seen[c.String()] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].String() < out[k].String() })
	return out
}

// RowWidth returns the width of one view row.
func (v *MaterializedView) RowWidth(cat *Catalog) int {
	const rowHeader = 10
	w := rowHeader
	for _, c := range v.OutputColumns {
		if t := cat.ResolveTable(c.Table); t != nil {
			if col := t.Column(c.Column); col != nil {
				w += col.Width
				continue
			}
		}
		w += 8
	}
	w += 8 * len(v.Aggs)
	return w
}

// Pages returns the number of pages the materialized view occupies.
func (v *MaterializedView) Pages(cat *Catalog) int64 {
	return pagesFor(v.Rows, v.RowWidth(cat))
}

// StorageBytes returns the storage the view consumes.
func (v *MaterializedView) StorageBytes(cat *Catalog) int64 {
	return v.Pages(cat) * PageSize
}

// References reports whether the view reads the named table (and therefore
// must be maintained when that table is updated).
func (v *MaterializedView) References(table string) bool {
	lt := strings.ToLower(table)
	i := sort.SearchStrings(v.Tables, lt)
	return i < len(v.Tables) && v.Tables[i] == lt
}

// Key returns the canonical identity of the view.
func (v *MaterializedView) Key() string {
	var b strings.Builder
	b.WriteString("mv:")
	b.WriteString(strings.Join(v.Tables, ","))
	b.WriteString(" join{")
	for i, j := range v.JoinPreds {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(j.String())
	}
	b.WriteString("} out{")
	for i, c := range v.OutputColumns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(c.String())
	}
	b.WriteString("} grp{")
	for i, c := range v.GroupBy {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(c.String())
	}
	b.WriteString("} agg{")
	for i, a := range v.Aggs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.String())
	}
	b.WriteByte('}')
	if v.Partitioning != nil {
		b.WriteString(" part ")
		b.WriteString(v.Partitioning.String())
	}
	return b.String()
}

// String renders a short human-readable description.
func (v *MaterializedView) String() string {
	s := fmt.Sprintf("MATERIALIZED VIEW over (%s)", strings.Join(v.Tables, " ⋈ "))
	if len(v.GroupBy) > 0 {
		g := make([]string, len(v.GroupBy))
		for i, c := range v.GroupBy {
			g[i] = c.String()
		}
		s += " GROUP BY " + strings.Join(g, ", ")
	}
	if len(v.Aggs) > 0 {
		a := make([]string, len(v.Aggs))
		for i, ag := range v.Aggs {
			a[i] = ag.String()
		}
		s += " AGG " + strings.Join(a, ", ")
	}
	if v.Partitioning != nil {
		s += " PARTITION BY " + v.Partitioning.String()
	}
	return s
}

// Clone deep-copies the view.
func (v *MaterializedView) Clone() *MaterializedView {
	out := *v
	out.Tables = append([]string(nil), v.Tables...)
	out.JoinPreds = append([]JoinPred(nil), v.JoinPreds...)
	out.OutputColumns = append([]ColRef(nil), v.OutputColumns...)
	out.GroupBy = append([]ColRef(nil), v.GroupBy...)
	out.Aggs = append([]Agg(nil), v.Aggs...)
	out.Partitioning = v.Partitioning.Clone()
	return &out
}
