// Package core implements the Database Tuning Advisor itself: the
// architecture of paper §2.2 — column-group restriction, per-query candidate
// selection via Greedy(m,k) over what-if optimizer calls, merging, and
// global enumeration under storage, alignment, feature-set, and
// user-specified-configuration constraints — plus the staged-tuning and
// Index-Tuning-Wizard baselines the paper evaluates against.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/derive"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/sqlparser"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Tuner is the advisor's view of a database server: the what-if interfaces
// plus statistics management. *whatif.Server and *testsrv.Session satisfy it.
type Tuner interface {
	Catalog() *catalog.Catalog
	// WhatIfCost returns the optimizer-estimated cost of the statement as if
	// cfg were materialized, plus the keys of the structures the plan uses.
	WhatIfCost(stmt sqlparser.Statement, cfg *catalog.Configuration) (float64, []string, error)
	// EnsureStatistics creates missing statistics (reduced per §5.2 when
	// reduce is set) and returns how many were created.
	EnsureStatistics(reqs []stats.Request, reduce bool) (int, error)
	// WhatIfCallCount reports the cumulative number of what-if calls.
	WhatIfCallCount() int64
}

// AlternativesTuner is an optional Tuner extension: a backend that can
// return the plan skeleton of the optimized statement together with its cost
// (one optimization, charged as one what-if call). With Options.Derive
// enabled the evaluator probes for it and, when present, feeds the skeletons
// to the derivation engine so composite-configuration costs replay from a
// single atomic call per event instead of a lattice walk.
type AlternativesTuner interface {
	WhatIfAlternativesCost(stmt sqlparser.Statement, cfg *catalog.Configuration) (float64, []string, *optimizer.Alternatives, error)
}

// FeatureMask selects which physical design features to tune (paper §2.1:
// "DBAs may sometimes need to limit tuning to subsets of these features").
type FeatureMask uint8

// Feature bits.
const (
	FeatureIndexes FeatureMask = 1 << iota
	FeatureViews
	FeaturePartitioning
	FeatureAll = FeatureIndexes | FeatureViews | FeaturePartitioning
)

// Has reports whether the mask includes the feature.
func (m FeatureMask) Has(f FeatureMask) bool { return m&f != 0 }

// String renders the mask.
func (m FeatureMask) String() string {
	switch m {
	case FeatureAll:
		return "indexes+views+partitioning"
	}
	s := ""
	if m.Has(FeatureIndexes) {
		s += "+indexes"
	}
	if m.Has(FeatureViews) {
		s += "+views"
	}
	if m.Has(FeaturePartitioning) {
		s += "+partitioning"
	}
	if s == "" {
		return "none"
	}
	return s[1:]
}

// Options mirrors the inputs of paper §2.1.
type Options struct {
	// Features limits tuning to a subset of physical design features.
	// Zero means FeatureAll.
	Features FeatureMask
	// StorageBudget bounds the extra storage (bytes) the recommendation may
	// consume. Zero means unbounded.
	StorageBudget int64
	// Aligned requires every table and all of its indexes to be partitioned
	// identically (paper §4).
	Aligned bool
	// BaseConfig holds structures that already exist and always remain
	// (e.g. indexes enforcing referential integrity). Its storage does not
	// count against the budget.
	BaseConfig *catalog.Configuration
	// UserConfig is a user-specified partial configuration the
	// recommendation must include (paper §6.2). Its storage counts against
	// the budget.
	UserConfig *catalog.Configuration
	// EvaluateOnly skips tuning and only evaluates BaseConfig+UserConfig
	// against BaseConfig (exploratory analysis, paper §6.3).
	EvaluateOnly bool
	// AllowDrops lets the advisor recommend dropping existing BaseConfig
	// structures whose maintenance outweighs their benefit (the shipped
	// tool's "keep existing physical design" checkbox, unchecked).
	// Structures marked FromConstraint are never dropped.
	AllowDrops bool

	// CompressWorkload enables workload compression (paper §5.1). Default
	// is on for workloads above CompressThreshold events.
	CompressWorkload  bool
	NoCompression     bool // force compression off
	CompressThreshold int  // default 50
	MaxPerTemplate    int  // representatives per template (default 4)

	// ColGroupFrac is the minimum fraction of total workload cost a column
	// group must appear in to be interesting (paper §2.2). Default 0.02.
	ColGroupFrac float64
	// NoColGroupRestriction disables the restriction (ITW-style search).
	NoColGroupRestriction bool
	// MaxKeyColumns caps index key width (default 3).
	MaxKeyColumns int

	// GreedyM and GreedyK parameterize the enumeration step's Greedy(m,k)
	// (paper §2.2): the seed is chosen optimally among subsets of size ≤ m,
	// then grown greedily to at most k structures. Defaults: m=1, k=24.
	GreedyM int
	GreedyK int
	// PerQueryK bounds the per-query Greedy(m,k) of candidate selection
	// (default 6 — single queries rarely benefit from more structures).
	PerQueryK int
	// CandidatePoolCap bounds the enumeration pool to the highest-benefit
	// candidates (default 48; 0 keeps the default, negative disables).
	CandidatePoolCap int

	// Derive selects the cost-derivation layer's mode (off, on, verify).
	// When enabled, cost-cache misses are answered, where provably exact,
	// by algebraic derivation from previously observed plan facts instead
	// of a what-if optimizer call (INUM/CoPhy-style); recommendations are
	// byte-identical to derive-off runs, only the optimizer call count
	// drops. Verify cross-checks every derived cost against a real call
	// and fails the session on divergence beyond derive.VerifyTolerance.
	// The zero value is off.
	Derive derive.Mode

	// NoMerging disables the merging step (for ablation).
	NoMerging bool
	// EagerAlignment materializes aligned candidate variants up front
	// instead of lazily (for the §4 ablation).
	EagerAlignment bool

	// ReduceStatistics applies §5.2 when creating statistics. Default on;
	// set DisableStatReduction for ablation.
	DisableStatReduction bool

	// TimeLimit bounds tuning time (0 = unbounded).
	TimeLimit time.Duration

	// Parallelism bounds how many what-if evaluations run concurrently:
	// greedy frontiers, seed enumeration, workload costings, and merging all
	// fan out over a session-wide worker pool of this size. The default
	// (≤ 0) is runtime.GOMAXPROCS(0). Recommendations are byte-identical at
	// every level — parallel sweeps reduce deterministically — so the knob
	// trades only wall-clock time, never result quality.
	Parallelism int

	// Progress, when set, receives live progress snapshots: phase
	// transitions, per-query completions, and periodic what-if call counts.
	// The callback runs synchronously on the tuning goroutine; keep it
	// fast, and do your own locking if snapshots cross goroutines.
	Progress func(Progress)

	// SkipReports suppresses the per-event analysis reports (useful when
	// tuning traces of hundreds of thousands of events).
	SkipReports bool

	// Metrics, when set, receives the session's pipeline metrics: phase
	// durations, candidates per query, merge/enumeration pool sizes, greedy
	// steps. The what-if latency histograms live one layer down (the tuner's
	// server observes them; see whatif.Server.SetMetrics), and spans travel
	// on the context instead (obs.WithTrace). The tuning service shares one
	// registry across every backend and session.
	Metrics *obs.Registry

	// PartitionCount is the number of ranges partitioning candidates use
	// (default 12).
	PartitionCount int

	// Retry is the backoff policy wrapped around every what-if optimizer
	// call and statistics operation (zero fields get fault.Policy
	// defaults: 4 attempts, 2ms base backoff). Long tuning sessions
	// against production servers must ride out transient failures
	// (paper §2, §6) rather than abort hours in.
	Retry fault.Policy

	// Faults, when set, is a session-scoped fault injector consulted
	// before each what-if call (site "whatif") and statistics operation
	// (site "stats"), so failure paths are testable deterministically.
	// Server-scoped injection attaches to whatif.Server instead.
	Faults *fault.Injector

	// Breaker configures the session's failure-rate circuit breaker
	// (defaults: trip at a 5% attempt-failure rate after 64 attempts).
	// A tripped breaker flips the session into degraded mode: the search
	// stops, and the best-so-far design is returned with
	// Recommendation.StopReason = StopDegraded.
	Breaker fault.BreakerConfig

	// CheckpointSink, when set, receives periodic Checkpoint snapshots of
	// the session's restartable state (the cost cache plus progress
	// markers), every CheckpointEvery what-if calls (default 128). The
	// tuning service persists them under its -state-dir so a killed
	// server resumes in-flight sessions on restart.
	CheckpointSink  func(*Checkpoint)
	CheckpointEvery int

	// Ingest declares that the workload was already compressed online
	// during ingestion (workload.StreamTrace feeding a workload.Compressor)
	// and carries the raw-trace volume the compressor absorbed. When set,
	// the advisor skips its own compression pass — re-compressing the
	// representatives would double-fold weights — and stamps the ingest
	// counters into Progress snapshots and the Recommendation. The
	// workload handed to Tune must then be the Compressor's output.
	Ingest *IngestStats

	// Resume warm-starts the session from a previously captured
	// Checkpoint: replayed decisions are served from the restored cost
	// cache instead of optimizer calls, so the session re-reaches the
	// interruption point cheaply and then continues. With a deterministic
	// backend, a resumed session produces the same recommendation as an
	// uninterrupted one.
	Resume *Checkpoint

	// Vetoed lists structure keys the search may not recommend
	// (Constraints.Vetoed): matching candidates are filtered out of the
	// enumeration pool both before and after merging, so a vetoed
	// structure cannot re-enter as a merge of unvetoed parents. A
	// search-layer constraint — revisable against a costed pool without
	// new optimizer calls.
	Vetoed []string

	// SliceWeights rescales workload slices in the search layer's cost
	// folds: template signature → multiplier on every matching event's
	// weight (Constraints.SliceWeights). Per-event costs are
	// weight-independent, so reweighting never issues new optimizer calls.
	SliceWeights map[string]float64

	// PoolSink, when set, receives the session's sealed CostedPool after a
	// successful, uninterrupted run: the serializable costing-layer state
	// (candidates, costed atoms, derive facts, statistics log) that
	// Revise re-searches under new Constraints without re-costing. Not
	// invoked for EvaluateOnly or early-stopped sessions, whose costing
	// state is incomplete.
	PoolSink func(*CostedPool)
}

// IngestStats describes a workload compressed online while its trace was
// streamed in: how many raw events and bytes went through the compressor and
// how many statement templates it observed. The compressed workload itself
// (the representatives) is what gets tuned; these counters preserve the
// original trace's scale for progress reporting and the final recommendation.
type IngestStats struct {
	// Events is the number of raw trace events folded into the compressor.
	Events int64
	// Bytes is the number of trace bytes consumed.
	Bytes int64
	// Templates is the number of distinct statement templates observed.
	Templates int
}

func (o Options) features() FeatureMask {
	if o.Features == 0 {
		return FeatureAll
	}
	return o.Features
}

func (o Options) withDefaults() Options {
	if o.CompressThreshold <= 0 {
		o.CompressThreshold = 50
	}
	if o.MaxPerTemplate <= 0 {
		o.MaxPerTemplate = 4
	}
	if o.ColGroupFrac <= 0 {
		o.ColGroupFrac = 0.02
	}
	if o.MaxKeyColumns <= 0 {
		o.MaxKeyColumns = 3
	}
	if o.GreedyM <= 0 {
		o.GreedyM = 1
	}
	if o.GreedyK <= 0 {
		o.GreedyK = 24
	}
	if o.PartitionCount <= 0 {
		o.PartitionCount = 12
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// QueryReport describes one workload event's before/after costs.
type QueryReport struct {
	SQL            string
	Weight         float64
	CostBefore     float64
	CostAfter      float64
	UsedStructures []string
}

// UsageReport aggregates how one recommended (or existing) structure is used
// across the workload — part of the "rich set of analysis reports" of §6.3.
type UsageReport struct {
	Structure string // structure key
	// Queries is the number of distinct workload events whose plan uses the
	// structure; WeightedUses counts event weights.
	Queries      int
	WeightedUses float64
	// CostShare is the fraction of the recommended-configuration workload
	// cost spent in statements using this structure.
	CostShare float64
}

// Recommendation is the advisor's output (paper §2.1): a configuration plus
// analysis reports.
type Recommendation struct {
	// Config is the full recommended configuration (base + user + new).
	Config *catalog.Configuration
	// NewStructures are the structures DTA added beyond BaseConfig.
	NewStructures []catalog.Structure

	BaseCost    float64 // workload cost under BaseConfig
	Cost        float64 // workload cost under Config
	Improvement float64 // (BaseCost − Cost) / BaseCost
	// StorageBytes is the extra storage of the recommendation beyond
	// BaseConfig.
	StorageBytes int64

	// StopReason records why tuning stopped early (StopTimeLimit,
	// StopCancelled, or StopDegraded); empty when the search ran to
	// completion. An early-stopped session still returns the best design
	// found so far (anytime behaviour, paper §2.1).
	StopReason string

	EventsTuned    int
	TemplatesTuned int
	// SkippedEvents counts statements that did not resolve against the
	// catalog and were excluded (the tool tunes what it can, like the
	// shipped DTA, rather than failing the session).
	SkippedEvents int
	WhatIfCalls   int64
	// DerivedEvals counts cost evaluations answered by the derivation
	// layer (Options.Derive) instead of a what-if optimizer call; zero
	// with derivation off.
	DerivedEvals int64
	// DeriveFallbacks breaks down, by reason (dml, atom, stats-epoch,
	// eval-error, used-escape), the evaluations the derivation layer
	// declined and answered with a real optimizer call; nil with
	// derivation off.
	DeriveFallbacks map[string]int64
	StatsCreated    int
	Duration        time.Duration
	Compressed      bool
	// IngestedEvents and IngestedBytes record streaming-ingest volume
	// (Options.Ingest): how many raw trace events and bytes were folded
	// into the online compressor to produce the tuned workload. Zero for
	// sessions not created from a streamed trace.
	IngestedEvents int64
	IngestedBytes  int64

	Reports []QueryReport
	// Usage aggregates structure usage across the workload (§6.3), sorted
	// by descending weighted use count.
	Usage []UsageReport
	// DroppedStructures lists BaseConfig structures the advisor recommends
	// removing (only with Options.AllowDrops).
	DroppedStructures []catalog.Structure
}

// String summarizes the recommendation.
func (r *Recommendation) String() string {
	return fmt.Sprintf("recommendation: %d structures, improvement %.1f%%, storage %.1f MB, %d events tuned in %s",
		len(r.NewStructures), 100*r.Improvement, float64(r.StorageBytes)/(1<<20), r.EventsTuned, r.Duration.Round(time.Millisecond))
}

// Tune produces an integrated physical design recommendation for the
// workload (paper §2.2 pipeline).
func Tune(t Tuner, w *workload.Workload, opts Options) (*Recommendation, error) {
	return TuneContext(context.Background(), t, w, opts)
}

// TuneContext is Tune under a context: cancelling ctx stops the search
// within one what-if optimizer call and returns the best recommendation
// found so far, with StopReason set to StopCancelled. Only cancellation
// before the baseline workload costing completes returns an error (there is
// no meaningful partial result yet).
//
// Internally the pipeline runs as two explicit layers: buildCostedState
// (the costing layer — compression, baseline, column groups, candidate
// selection, statistics; everything expensive and constraint-independent)
// followed by runSearch (the search layer — drops, merging, enumeration
// under a Constraints value; cheap and re-runnable). Revise re-enters
// runSearch against a persisted CostedPool without re-running the first
// layer.
func TuneContext(ctx context.Context, t Tuner, w *workload.Workload, opts Options) (*Recommendation, error) {
	opts = opts.withDefaults()
	start := time.Now()
	// The tune span is the pipeline's root: under the service it nests in
	// the session span, standalone (dta -trace) it is the timeline itself.
	ctx, tuneSpan := obs.StartSpan(ctx, "pipeline", "tune")
	defer tuneSpan.End()
	tr := newTracker(ctx, opts, start)
	tr.attachSpans(ctx)

	cons := opts.constraints().normalize()
	if err := cons.validate(t.Catalog()); err != nil {
		return nil, err
	}

	st, rec, err := buildCostedState(ctx, t, w, opts, tr, tuneSpan)
	if err != nil {
		return nil, err
	}

	if opts.EvaluateOnly {
		mandatory := st.base.Clone()
		mandatory.Merge(opts.UserConfig)
		rec.Config = mandatory.Clone()
		return finishRecommendation(t, st.ev, tr, rec, st.base, mandatory, opts, start)
	}

	rec, err = runSearch(t, st, tr, rec, cons, opts, start)
	if err != nil {
		return nil, err
	}
	if opts.PoolSink != nil && rec.StopReason == "" {
		opts.PoolSink(st.seal(opts))
	}
	return rec, nil
}

// costedState is the in-memory form of the costing layer's output — what a
// CostedPool serializes. It is immutable under runSearch: the search layer
// works on clones and local maps, so the same state can be searched any
// number of times (fresh run, then revisions) with byte-identical results
// per Constraints value.
type costedState struct {
	ev    *evaluator
	tuned *workload.Workload
	// base is the validated base configuration candidate selection ran
	// against (before any drop analysis, which is a search-layer decision).
	base         *catalog.Configuration
	cands        []catalog.Structure
	gains        []QueryGain
	statBatches  []StatBatch
	statsCreated int
	compressed   bool
	ingestEvents int64
	ingestBytes  int64
}

// buildCostedState runs the costing layer: workload compression, baseline
// costing, column-group restriction, and per-query candidate selection
// (with statistics creation). Everything here is deliberately independent
// of every Constraints field — storage budget, alignment, pins, vetoes,
// slice weights — which is what makes the produced state reusable across
// revisions: the search layer can be re-run under any constraints and
// produce exactly what a fresh full run under those constraints would.
// With opts.EvaluateOnly the candidate stages are skipped (the caller only
// evaluates a fixed configuration).
func buildCostedState(ctx context.Context, t Tuner, w *workload.Workload, opts Options, tr *tracker, tuneSpan *obs.Span) (*costedState, *Recommendation, error) {
	base := opts.BaseConfig
	if base == nil {
		base = catalog.NewConfiguration()
	}
	if err := base.Validate(t.Catalog()); err != nil {
		return nil, nil, fmt.Errorf("core: base configuration invalid: %w", err)
	}

	// Workload compression (§5.1). A workload that arrived through the
	// streaming-ingest path (Options.Ingest) is already the online
	// compressor's output: re-compressing it would fold representative
	// weights a second time, so it is tuned as-is.
	tuned := w
	compressed := false
	switch {
	case opts.Ingest != nil:
		compressed = opts.Ingest.Events > int64(w.Len())
	case !opts.NoCompression && (opts.CompressWorkload || w.Len() > opts.CompressThreshold):
		tuned = workload.Compress(w, workload.CompressOptions{MaxPerTemplate: opts.MaxPerTemplate})
		compressed = tuned.Len() < w.Len()
	}
	tr.eventsTotal = tuned.Len()
	tuneSpan.SetArg("events", tuned.Len()).SetArg("compressed", compressed)

	ev := newEvaluator(t, tuned)
	if _, err := derive.ParseMode(string(opts.Derive)); err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	if opts.Derive.Enabled() {
		ev.enableDerive(opts.Derive)
	}
	if opts.Resume != nil {
		ev.warmStart(opts.Resume.Cache)
	}
	ev.attach(tr)
	tr.setPhase(PhaseBaseline)
	baseCost, err := ev.configCost(base)
	if err != nil {
		if stopping(err) {
			return nil, nil, fmt.Errorf("core: session cancelled before baseline costing completed: %w", ctx.Err())
		}
		return nil, nil, err
	}
	tr.baseCost = baseCost

	rec := &Recommendation{
		BaseCost:    baseCost,
		EventsTuned: tuned.Len(),
		Compressed:  compressed,
	}
	if opts.Ingest != nil {
		rec.IngestedEvents = opts.Ingest.Events
		rec.IngestedBytes = opts.Ingest.Bytes
	}
	rec.TemplatesTuned = len(tuned.Templates())
	rec.SkippedEvents = ev.skippedEvents()
	rec.EventsTuned -= rec.SkippedEvents

	st := &costedState{ev: ev, tuned: tuned, base: base, compressed: compressed}
	if opts.Ingest != nil {
		st.ingestEvents = opts.Ingest.Events
		st.ingestBytes = opts.Ingest.Bytes
	}
	if opts.EvaluateOnly {
		return st, rec, nil
	}

	if !tr.stopped() {
		// Column-group restriction (§2.2).
		tr.setPhase(PhaseColGroups)
		groups, err := interestingColumnGroups(t, ev, tuned, opts)
		if err != nil && !stopping(err) {
			return nil, nil, err
		}
		if err == nil {
			// Candidate selection (§2.2): per-query best configurations,
			// measured against the base configuration only — pins, budgets,
			// and weights are search-layer constraints and must not leak in.
			tr.setPhase(PhaseCandidates)
			st.cands, st.gains, st.statBatches, st.statsCreated, err = selectCandidates(t, ev, tr, tuned, base, groups, opts)
			if err != nil {
				return nil, nil, err
			}
			rec.StatsCreated = st.statsCreated
		}
	}
	return st, rec, nil
}

// runSearch is the search layer: drop analysis, benefit computation,
// merging, pool capping, and the enumeration Greedy(m,k), all under one
// Constraints value. It consumes the costed state read-only and never
// issues a what-if call the state's cache or derivation facts can't answer
// — except for configurations the constraints make newly reachable, which
// a fresh full run under the same constraints would also have to cost. The
// fresh pipeline and Revise both funnel through this one function, which is
// what makes revision equivalence hold by construction.
func runSearch(t Tuner, st *costedState, tr *tracker, rec *Recommendation, cons Constraints, opts Options, start time.Time) (*Recommendation, error) {
	// Graft the constraints onto the Options downstream consumers read, so
	// enumerate/merge/finish observe exactly a fresh run's view.
	opts.StorageBudget = cons.StorageBudget
	opts.Aligned = cons.Aligned
	opts.UserConfig = cons.Pinned

	ev := st.ev
	ev.applySliceWeights(cons.SliceWeights)

	// Baseline under the effective weights. Every per-event cost is already
	// cached, so this is a pure re-fold: without slice weights it
	// reproduces the costing layer's baseline bit-for-bit, and a revision
	// recomputes its own baseline without optimizer calls.
	baseCost, err := ev.configCost(st.base)
	if err != nil {
		if stopping(err) {
			return nil, fmt.Errorf("core: session cancelled before baseline costing completed: %w", tr.doCtx().Err())
		}
		return nil, err
	}
	tr.baseCost = baseCost
	rec.BaseCost = baseCost

	base := st.base
	// Drop existing structures that cost more than they help (improvement
	// is measured against the original base, so drops count as gains).
	// Pinned structures are never dropped.
	if opts.AllowDrops && !tr.stopped() {
		tr.setPhase(PhaseDrops)
		reduced, dropped, err := greedyDrop(ev, base, cons.pinnedKeys())
		switch {
		case err != nil && !stopping(err):
			return nil, err
		case err == nil && len(dropped) > 0:
			base = reduced
			rec.DroppedStructures = dropped
		}
	}

	// The mandatory part of every configuration: surviving base structures
	// plus the pinned partial design (paper §6.2).
	mandatory := base.Clone()
	mandatory.Merge(cons.Pinned)
	rec.Config = mandatory.Clone()

	// Per-structure benefits under the effective weights, recomputed from
	// the pool's unweighted per-query gains — identical to what candidate
	// selection accumulated when the weights are the workload's own.
	benefit := map[string]float64{}
	for _, g := range st.gains {
		wg := (g.BaseCost - g.BestCost) * ev.eventWeight(g.Query, ev.events[g.Query])
		for _, key := range g.Structures {
			benefit[key] += wg
		}
	}
	cands := cons.vetoFilter(st.cands)

	// Merging (§2.2). The veto filter runs again on the merged pool:
	// merging can synthesize a structure identical to a vetoed one from
	// unvetoed parents, and "vetoed" means the search may not recommend
	// that structure however it arises.
	if !opts.NoMerging && !tr.stopped() {
		tr.setPhase(PhaseMerging)
		before := len(cands)
		cands = cons.vetoFilter(mergeCandidates(t.Catalog(), cands, benefit, opts, tr))
		if opts.Metrics != nil {
			opts.Metrics.Histogram("dta_merge_pool_size",
				"Candidate pool size entering/leaving the merging step (§2.2).",
				obs.CountBuckets, "side", "in").Observe(float64(before))
			opts.Metrics.Histogram("dta_merge_pool_size",
				"Candidate pool size entering/leaving the merging step (§2.2).",
				obs.CountBuckets, "side", "out").Observe(float64(len(cands)))
		}
	}

	// Bound the enumeration pool by benefit.
	cap := opts.CandidatePoolCap
	if cap == 0 {
		cap = 48
	}
	cands = capCandidates(cands, benefit, cap)
	if opts.Metrics != nil {
		opts.Metrics.Histogram("dta_enumeration_pool_size",
			"Candidates entering the enumeration Greedy(m,k).",
			obs.CountBuckets).Observe(float64(len(cands)))
	}

	// Enumeration (§2.2, §4): Greedy(m,k) under storage and alignment.
	tr.setPhase(PhaseEnumeration)
	chosen, err := enumerate(ev, tr, mandatory, cands, opts)
	if err != nil {
		return nil, err
	}
	finalCfg := mandatory.Clone()
	for _, s := range chosen {
		s.ApplyTo(finalCfg)
	}
	rec.Config = finalCfg

	return finishRecommendation(t, ev, tr, rec, base, finalCfg, opts, start)
}

// finishRecommendation fills cost, storage, and per-query reports. The
// tracker enters finishing mode first: the final configuration's cost is
// (almost always) served from the evaluator cache, and the few residual
// what-if calls must complete even for a stopped session so the partial
// recommendation carries real costs.
func finishRecommendation(t Tuner, ev *evaluator, tr *tracker, rec *Recommendation, base, final *catalog.Configuration, opts Options, start time.Time) (*Recommendation, error) {
	rec.StopReason = tr.stopReason()
	if tr != nil {
		tr.finishing = true
	}
	cost, err := ev.configCost(final)
	if err != nil {
		return nil, err
	}
	// Never recommend a configuration worse than doing nothing: fall back
	// to the base configuration (this is what lets DTA correctly recommend
	// "no new structures" for update-hostile workloads, paper §7.1 CUST3).
	if cost > rec.BaseCost {
		final = base.Clone()
		final.Merge(opts.UserConfig)
		cost, err = ev.configCost(final)
		if err != nil {
			return nil, err
		}
		rec.Config = final
	}
	rec.Cost = cost
	if rec.BaseCost > 0 {
		rec.Improvement = (rec.BaseCost - cost) / rec.BaseCost
	}
	rec.NewStructures = newStructures(base, final)
	rec.StorageBytes = final.StorageBytes(t.Catalog()) - base.StorageBytes(t.Catalog())
	if rec.StorageBytes < 0 {
		rec.StorageBytes = 0
	}

	if tr != nil {
		tr.observeCost(cost)
	}

	// Per-query analysis reports (paper §6.3). A cancelled or degraded session skips
	// them: the caller asked the advisor to stop working, and the partial
	// recommendation's headline numbers are already in place.
	if opts.SkipReports || (tr != nil && (tr.cancelled.Load() || tr.degraded.Load())) {
		return sealRecommendation(ev, tr, rec, start), nil
	}
	if tr != nil {
		tr.setPhase(PhaseReports)
	}
	usage := map[string]*UsageReport{}
	var totalAfter float64
	pbase, pfinal := ev.prepareConfig(base), ev.prepareConfig(final)
	for i, e := range ev.events {
		if ev.analyzed(i) == nil {
			continue // skipped statement: no report
		}
		before, _, err := ev.eventCost(i, pbase)
		if err != nil {
			return nil, err
		}
		after, used, err := ev.eventCost(i, pfinal)
		if err != nil {
			return nil, err
		}
		rec.Reports = append(rec.Reports, QueryReport{
			SQL: e.SQL, Weight: e.Weight, CostBefore: before, CostAfter: after, UsedStructures: used,
		})
		totalAfter += e.Weight * after
		for _, key := range used {
			u := usage[key]
			if u == nil {
				u = &UsageReport{Structure: key}
				usage[key] = u
			}
			u.Queries++
			u.WeightedUses += e.Weight
			u.CostShare += e.Weight * after
		}
	}
	for _, u := range usage {
		if totalAfter > 0 {
			u.CostShare /= totalAfter
		}
		rec.Usage = append(rec.Usage, *u)
	}
	sort.Slice(rec.Usage, func(i, j int) bool {
		if rec.Usage[i].WeightedUses != rec.Usage[j].WeightedUses {
			return rec.Usage[i].WeightedUses > rec.Usage[j].WeightedUses
		}
		return rec.Usage[i].Structure < rec.Usage[j].Structure
	})
	return sealRecommendation(ev, tr, rec, start), nil
}

// sealRecommendation stamps the session totals. What-if calls are counted by
// the session's own evaluator — not as a server counter delta — so the
// number stays exact when several sessions share one what-if server.
func sealRecommendation(ev *evaluator, tr *tracker, rec *Recommendation, start time.Time) *Recommendation {
	rec.WhatIfCalls = ev.calls.Load()
	rec.DerivedEvals = ev.drv.Derivations()
	rec.DeriveFallbacks = ev.drv.FallbacksByReason()
	rec.Duration = time.Since(start)
	if rec.StopReason != "" && tr.journaling() {
		e := journal.Ev(journal.KindStop)
		e.Reason = rec.StopReason
		tr.record(e)
	}
	if tr != nil {
		tr.setPhase(PhaseDone)
	}
	return rec
}

// newStructures lists the structures in final that base lacks.
func newStructures(base, final *catalog.Configuration) []catalog.Structure {
	have := map[string]bool{}
	for _, s := range base.Structures() {
		have[s.Key()] = true
	}
	var out []catalog.Structure
	for _, s := range final.Structures() {
		if !have[s.Key()] {
			out = append(out, s)
		}
	}
	return out
}
