package core

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/optimizer"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// testServer builds a production server with a fact table t (200k rows) and
// dimension d (5k rows), data attached so statistics can be created.
func testServer(tb testing.TB) *whatif.Server {
	tb.Helper()
	cat := catalog.New()
	db := catalog.NewDatabase("db")
	db.AddTable(catalog.NewTable("db", "t", 0,
		&catalog.Column{Name: "id", Type: catalog.TypeInt, Width: 8, Distinct: 200000, Min: 0, Max: 199999},
		&catalog.Column{Name: "x", Type: catalog.TypeInt, Width: 8, Distinct: 10000, Min: 0, Max: 9999},
		&catalog.Column{Name: "a", Type: catalog.TypeInt, Width: 8, Distinct: 100, Min: 0, Max: 99},
		&catalog.Column{Name: "d_id", Type: catalog.TypeInt, Width: 8, Distinct: 5000, Min: 0, Max: 4999},
		&catalog.Column{Name: "amt", Type: catalog.TypeFloat, Width: 8, Distinct: 1000, Min: 0, Max: 999},
		&catalog.Column{Name: "pad", Type: catalog.TypeString, Width: 80, Distinct: 200000, Min: 0, Max: 199999},
	))
	db.AddTable(catalog.NewTable("db", "d", 0,
		&catalog.Column{Name: "d_id", Type: catalog.TypeInt, Width: 8, Distinct: 5000, Min: 0, Max: 4999},
		&catalog.Column{Name: "grp", Type: catalog.TypeInt, Width: 8, Distinct: 20, Min: 0, Max: 19},
		&catalog.Column{Name: "name", Type: catalog.TypeString, Width: 24, Distinct: 5000, Min: 0, Max: 4999},
	))
	cat.AddDatabase(db)

	data := engine.NewDatabase(cat)
	const rows = 200000
	trows := make([][]engine.Value, 0, rows)
	for i := 0; i < rows; i++ {
		trows = append(trows, []engine.Value{
			engine.Num(float64(i)),
			engine.Num(float64((i * 37) % 10000)),
			engine.Num(float64(i % 100)),
			engine.Num(float64(i % 5000)),
			engine.Num(float64((i * 13) % 1000)),
			engine.Str(fmt.Sprintf("pad%06d", i)),
		})
	}
	if err := data.Load("t", trows); err != nil {
		tb.Fatal(err)
	}
	drows := make([][]engine.Value, 0, 5000)
	for i := 0; i < 5000; i++ {
		drows = append(drows, []engine.Value{
			engine.Num(float64(i)), engine.Num(float64(i % 20)), engine.Str(fmt.Sprintf("dim%04d", i)),
		})
	}
	if err := data.Load("d", drows); err != nil {
		tb.Fatal(err)
	}

	s := whatif.NewServer("prod", cat, optimizer.DefaultHardware())
	s.AttachData(data)
	return s
}

func TestTuneRecommendsIndexForSelectiveLookup(t *testing.T) {
	s := testServer(t)
	w := workload.MustNew(
		"SELECT id FROM t WHERE x = 42",
		"SELECT id FROM t WHERE x = 99",
		"SELECT id FROM t WHERE x = 7",
	)
	rec, err := Tune(s, w, Options{Features: FeatureIndexes})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Improvement < 0.5 {
		t.Fatalf("expected big improvement, got %.2f%%: %v", 100*rec.Improvement, rec.NewStructures)
	}
	foundX := false
	for _, st := range rec.NewStructures {
		if st.Index != nil && st.Index.KeyColumns[0] == "x" {
			foundX = true
		}
		if st.View != nil || st.Part != nil {
			t.Fatalf("feature mask violated: %s", st)
		}
	}
	if !foundX {
		t.Fatalf("expected an index leading on x, got %v", rec.NewStructures)
	}
	if err := rec.Config.Validate(s.Cat); err != nil {
		t.Fatalf("recommendation invalid: %v", err)
	}
	if len(rec.Reports) != w.Len() {
		t.Fatalf("reports = %d", len(rec.Reports))
	}
}

func TestTuneIntegratedCoversPaperExample1(t *testing.T) {
	s := testServer(t)
	w := workload.MustNew("SELECT a, COUNT(*) FROM t WHERE x < 10 GROUP BY a")
	rec, err := Tune(s, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Improvement <= 0 {
		t.Fatalf("some structure must help Example 1: %+v", rec)
	}
	if len(rec.NewStructures) == 0 {
		t.Fatal("expected structures")
	}
}

func TestStorageBudgetRespected(t *testing.T) {
	s := testServer(t)
	w := workload.MustNew(
		"SELECT id, pad FROM t WHERE x BETWEEN 10 AND 4000",
		"SELECT a, SUM(amt) FROM t GROUP BY a",
		"SELECT id FROM t WHERE d_id = 7",
	)
	budget := int64(1 << 20) // 1 MB: essentially only non-redundant structures fit
	rec, err := Tune(s, w, Options{StorageBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if rec.StorageBytes > budget {
		t.Fatalf("budget violated: %d > %d", rec.StorageBytes, budget)
	}
	// Unbounded tuning on the same workload may use more storage.
	rec2, err := Tune(s, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Cost > rec.Cost {
		t.Fatalf("unbounded should be at least as good: %.1f vs %.1f", rec2.Cost, rec.Cost)
	}
}

func TestAlignmentConstraint(t *testing.T) {
	s := testServer(t)
	w := workload.MustNew(
		"SELECT id, amt FROM t WHERE x BETWEEN 100 AND 300",
		"SELECT a, COUNT(*) FROM t WHERE x < 2000 GROUP BY a",
		"SELECT id FROM t WHERE x = 5",
	)
	rec, err := Tune(s, w, Options{Features: FeatureIndexes | FeaturePartitioning, Aligned: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Config.Aligned() {
		t.Fatalf("aligned tuning must produce an aligned design: %v", rec.NewStructures)
	}
	// Unaligned tuning is at least as good (alignment constrains the space).
	rec2, err := Tune(s, w, Options{Features: FeatureIndexes | FeaturePartitioning})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Cost > rec.Cost*1.001 {
		t.Fatalf("unconstrained should not be worse: %.1f vs %.1f", rec2.Cost, rec.Cost)
	}
}

func TestUserConfigHonored(t *testing.T) {
	s := testServer(t)
	w := workload.MustNew("SELECT id FROM t WHERE x = 5")
	user := catalog.NewConfiguration()
	user.SetTablePartitioning("t", catalog.NewPartitionScheme("a", 50))
	rec, err := Tune(s, w, Options{UserConfig: user})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Config.TablePartitioning("t").Same(user.TablePartitioning("t")) {
		t.Fatal("user-specified partitioning must be honored")
	}

	bad := catalog.NewConfiguration()
	bad.AddIndex(catalog.NewIndex("t", "nosuchcol"))
	if _, err := Tune(s, w, Options{UserConfig: bad}); err == nil {
		t.Fatal("invalid user configuration must be rejected")
	}
}

func TestEvaluateMode(t *testing.T) {
	s := testServer(t)
	w := workload.MustNew(
		"UPDATE t SET amt = 1 WHERE id = 5",
		"UPDATE t SET amt = 2 WHERE id = 9",
	)
	// An index on id helps the updates find rows...
	good := catalog.NewConfiguration()
	good.AddIndex(catalog.NewIndex("t", "id"))
	rec, err := Evaluate(s, w, nil, good)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Improvement <= 0 {
		t.Fatalf("index on id should help updates: %+v", rec.Improvement)
	}
	// ...whereas a pile of irrelevant wide indexes only costs maintenance.
	bad := catalog.NewConfiguration()
	bad.AddIndex(catalog.NewIndex("t", "amt").WithInclude("pad", "x", "a"))
	rec2, err := Evaluate(s, w, nil, bad)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Improvement >= 0 {
		t.Fatalf("maintenance-only structures must evaluate negatively: %v", rec2.Improvement)
	}
}

func TestUpdateHeavyWorkloadGetsNoHarmfulStructures(t *testing.T) {
	s := testServer(t)
	// CUST3 shape (§7.1): updates dominate; DTA should recommend nothing
	// harmful and never be worse than raw.
	var sqls []string
	for i := 0; i < 30; i++ {
		sqls = append(sqls, fmt.Sprintf("UPDATE t SET amt = %d WHERE id = %d", i, i*100))
		sqls = append(sqls, fmt.Sprintf("INSERT INTO t VALUES (%d, 1, 2, 3, 4, 'p')", 500000+i))
	}
	w := workload.MustNew(sqls...)
	rec, err := Tune(s, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Improvement < 0 {
		t.Fatalf("recommendation must never be worse than raw: %v", rec.Improvement)
	}
	for _, st := range rec.NewStructures {
		if st.View != nil {
			t.Fatalf("views on an update-heavy workload: %s", st)
		}
	}
}

func TestCompressionReducesTuningWork(t *testing.T) {
	s := testServer(t)
	var sqls []string
	for i := 0; i < 300; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT id FROM t WHERE x = %d", i*3))
	}
	w := workload.MustNew(sqls...)

	recC, err := Tune(s, w, Options{Features: FeatureIndexes})
	if err != nil {
		t.Fatal(err)
	}
	if !recC.Compressed || recC.EventsTuned >= 50 {
		t.Fatalf("compression should kick in: %+v", recC.EventsTuned)
	}

	recN, err := Tune(s, w, Options{Features: FeatureIndexes, NoCompression: true})
	if err != nil {
		t.Fatal(err)
	}
	if recN.EventsTuned != 300 {
		t.Fatalf("uncompressed should tune all events: %d", recN.EventsTuned)
	}
	if recC.WhatIfCalls >= recN.WhatIfCalls {
		t.Fatalf("compression should save what-if calls: %d vs %d", recC.WhatIfCalls, recN.WhatIfCalls)
	}
	// Quality is essentially unchanged (§7.4): same improvement ±2%.
	if recN.Improvement-recC.Improvement > 0.02 {
		t.Fatalf("compression cost too much quality: %.3f vs %.3f", recC.Improvement, recN.Improvement)
	}
}

func TestIntegratedBeatsOrMatchesStaged(t *testing.T) {
	s := testServer(t)
	w := workload.MustNew(
		"SELECT a, COUNT(*) FROM t WHERE x < 5000 GROUP BY a",
		"SELECT id FROM t WHERE x BETWEEN 100 AND 200",
	)
	integrated, err := Tune(s, w, Options{Features: FeatureIndexes | FeaturePartitioning})
	if err != nil {
		t.Fatal(err)
	}
	staged, err := TuneStaged(s, w, Options{Features: FeatureIndexes | FeaturePartitioning},
		[]FeatureMask{FeatureIndexes, FeaturePartitioning})
	if err != nil {
		t.Fatal(err)
	}
	if integrated.Cost > staged.Cost*1.001 {
		t.Fatalf("integrated must not lose to staged: %.1f vs %.1f", integrated.Cost, staged.Cost)
	}
}

func TestITWBaseline(t *testing.T) {
	s := testServer(t)
	var sqls []string
	for i := 0; i < 60; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT id FROM t WHERE x = %d", i*7))
		sqls = append(sqls, fmt.Sprintf("SELECT a, SUM(amt) FROM t WHERE x < %d GROUP BY a", 100+i))
	}
	w := workload.MustNew(sqls...)

	dta, err := Tune(s, w, Options{Features: FeatureIndexes | FeatureViews})
	if err != nil {
		t.Fatal(err)
	}
	s2 := testServer(t)
	itw, err := TuneITW(s2, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if itw.EventsTuned != w.Len() {
		t.Fatalf("ITW must tune the whole workload: %d", itw.EventsTuned)
	}
	if dta.WhatIfCalls >= itw.WhatIfCalls {
		t.Fatalf("DTA should issue fewer what-if calls: %d vs %d", dta.WhatIfCalls, itw.WhatIfCalls)
	}
	if itw.Improvement-dta.Improvement > 0.05 {
		t.Fatalf("DTA quality should be comparable: dta=%.3f itw=%.3f", dta.Improvement, itw.Improvement)
	}
	for _, st := range itw.NewStructures {
		if st.Part != nil {
			t.Fatal("ITW cannot recommend partitioning")
		}
	}
}

func TestGreedyMKSeedOptimality(t *testing.T) {
	// With m = len(candidates), Greedy(m,k) is exhaustive; its result must
	// be at least as good as any single-seed greedy run.
	s := testServer(t)
	w := workload.MustNew("SELECT id, amt FROM t WHERE x = 3 AND a = 7")
	recSmall, err := Tune(s, w, Options{Features: FeatureIndexes, GreedyM: 1, GreedyK: 4})
	if err != nil {
		t.Fatal(err)
	}
	recBig, err := Tune(s, w, Options{Features: FeatureIndexes, GreedyM: 2, GreedyK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if recBig.Cost > recSmall.Cost*1.001 {
		t.Fatalf("larger seed must not hurt: %.2f vs %.2f", recBig.Cost, recSmall.Cost)
	}
}

func TestAllowDropsRemovesHarmfulStructures(t *testing.T) {
	s := testServer(t)
	// Update-only workload: every extra index is pure maintenance.
	var sqls []string
	for i := 0; i < 20; i++ {
		sqls = append(sqls, fmt.Sprintf("UPDATE t SET amt = %d, x = %d WHERE id = %d", i, i*2, i*50))
	}
	w := workload.MustNew(sqls...)

	base := catalog.NewConfiguration()
	pk := catalog.NewIndex("t", "id")
	pk.Clustered = true
	pk.FromConstraint = true
	base.AddIndex(pk)
	base.AddIndex(catalog.NewIndex("t", "x").WithInclude("pad", "amt")) // harmful
	base.AddIndex(catalog.NewIndex("t", "amt"))                         // harmful

	// Without AllowDrops the harmful indexes stay.
	recKeep, err := Tune(s, w, Options{BaseConfig: base})
	if err != nil {
		t.Fatal(err)
	}
	if len(recKeep.DroppedStructures) != 0 {
		t.Fatal("drops must be off by default")
	}
	if len(recKeep.Config.IndexesOn("t")) < 3 {
		t.Fatal("existing structures must be kept by default")
	}

	// With AllowDrops they go, and the improvement reflects it.
	recDrop, err := Tune(s, w, Options{BaseConfig: base, AllowDrops: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(recDrop.DroppedStructures) != 2 {
		t.Fatalf("expected both harmful indexes dropped, got %v", recDrop.DroppedStructures)
	}
	for _, d := range recDrop.DroppedStructures {
		if d.Index != nil && d.Index.FromConstraint {
			t.Fatal("constraint structures must never be dropped")
		}
	}
	if recDrop.Improvement <= 0 {
		t.Fatalf("dropping maintenance-only indexes must improve: %v", recDrop.Improvement)
	}
	if recDrop.Improvement <= recKeep.Improvement {
		t.Fatalf("drops should beat keep-everything: %.3f vs %.3f", recDrop.Improvement, recKeep.Improvement)
	}
	if recDrop.Config.ClusteredIndex("t") == nil {
		t.Fatal("the constraint clustered index must remain")
	}
}

func TestTuneAcrossMultipleDatabases(t *testing.T) {
	// Paper §2.1: "Many applications use more than one database, and
	// therefore, ability to tune multiple databases simultaneously is
	// important." One server, two databases, one workload touching both.
	cat := catalog.New()
	sales := catalog.NewDatabase("sales")
	sales.AddTable(catalog.NewTable("sales", "orders", 0,
		&catalog.Column{Name: "oid", Type: catalog.TypeInt, Width: 8, Distinct: 50000, Min: 1, Max: 50000},
		&catalog.Column{Name: "ocust", Type: catalog.TypeInt, Width: 8, Distinct: 5000, Min: 1, Max: 5000},
		&catalog.Column{Name: "ototal", Type: catalog.TypeFloat, Width: 8, Distinct: 1000, Min: 1, Max: 1000},
	))
	cat.AddDatabase(sales)
	hr := catalog.NewDatabase("hr")
	hr.AddTable(catalog.NewTable("hr", "staff", 0,
		&catalog.Column{Name: "sid", Type: catalog.TypeInt, Width: 8, Distinct: 2000, Min: 1, Max: 2000},
		&catalog.Column{Name: "dept", Type: catalog.TypeInt, Width: 8, Distinct: 40, Min: 1, Max: 40},
		&catalog.Column{Name: "pay", Type: catalog.TypeFloat, Width: 8, Distinct: 500, Min: 1, Max: 500},
	))
	cat.AddDatabase(hr)

	data := engine.NewDatabase(cat)
	var orows, srows [][]engine.Value
	for i := 0; i < 50000; i++ {
		orows = append(orows, []engine.Value{
			engine.Num(float64(i + 1)), engine.Num(float64(i%5000 + 1)), engine.Num(float64(i%1000 + 1)),
		})
	}
	for i := 0; i < 2000; i++ {
		srows = append(srows, []engine.Value{
			engine.Num(float64(i + 1)), engine.Num(float64(i%40 + 1)), engine.Num(float64(i%500 + 1)),
		})
	}
	if err := data.Load("orders", orows); err != nil {
		t.Fatal(err)
	}
	if err := data.Load("staff", srows); err != nil {
		t.Fatal(err)
	}
	s := whatif.NewServer("prod", cat, optimizer.DefaultHardware())
	s.AttachData(data)

	w := workload.MustNew(
		"SELECT oid FROM orders WHERE ocust = 99",
		"SELECT dept, SUM(pay) FROM staff GROUP BY dept",
		"SELECT oid FROM orders WHERE ocust = 7",
	)
	rec, err := Tune(s, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Improvement <= 0 {
		t.Fatal("cross-database tuning should find improvements")
	}
	tables := map[string]bool{}
	for _, st := range rec.NewStructures {
		if st.Index != nil {
			tables[st.Index.Table] = true
		}
		if st.View != nil {
			for _, tn := range st.View.Tables {
				tables[tn] = true
			}
		}
		if st.Part != nil {
			tables[st.PartTable] = true
		}
	}
	if !tables["orders"] || !tables["staff"] {
		t.Fatalf("both databases should receive structures: %v", tables)
	}
}

func TestSkippedEventsDoNotFailTuning(t *testing.T) {
	s := testServer(t)
	w := workload.MustNew(
		"SELECT id FROM t WHERE x = 7",
		"SELECT something FROM not_a_table WHERE q = 1", // unresolvable
		"SELECT id FROM t WHERE x = 9",
	)
	rec, err := Tune(s, w, Options{Features: FeatureIndexes})
	if err != nil {
		t.Fatalf("unresolvable statements must be skipped, not fatal: %v", err)
	}
	if rec.SkippedEvents != 1 {
		t.Fatalf("skipped = %d, want 1", rec.SkippedEvents)
	}
	if rec.EventsTuned != 2 {
		t.Fatalf("tuned = %d, want 2", rec.EventsTuned)
	}
	if rec.Improvement <= 0 {
		t.Fatal("the resolvable statements should still be tuned")
	}
	if len(rec.Reports) != 2 {
		t.Fatalf("reports = %d, want 2 (skipped events have no report)", len(rec.Reports))
	}
}

func TestUsageReport(t *testing.T) {
	s := testServer(t)
	w := workload.MustNew(
		"SELECT id FROM t WHERE x = 1",
		"SELECT id FROM t WHERE x = 2",
		"SELECT id FROM t WHERE a = 3",
	)
	rec, err := Tune(s, w, Options{Features: FeatureIndexes})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Usage) == 0 {
		t.Fatal("usage report missing")
	}
	// Sorted by weighted uses, shares within [0,1].
	for i, u := range rec.Usage {
		if u.CostShare < 0 || u.CostShare > 1 {
			t.Fatalf("cost share out of range: %+v", u)
		}
		if i > 0 && u.WeightedUses > rec.Usage[i-1].WeightedUses {
			t.Fatal("usage not sorted")
		}
	}
	// The x-index serves two events, the a-index one.
	if rec.Usage[0].Queries < 2 {
		t.Fatalf("top structure should serve ≥ 2 queries: %+v", rec.Usage[0])
	}
}

func TestViewRecommendedForAggregateWorkload(t *testing.T) {
	s := testServer(t)
	var sqls []string
	for i := 0; i < 5; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT d.grp, SUM(t.amt) FROM t JOIN d ON t.d_id = d.d_id WHERE d.grp = %d GROUP BY d.grp", i))
	}
	w := workload.MustNew(sqls...)
	rec, err := Tune(s, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hasView := false
	for _, st := range rec.NewStructures {
		if st.View != nil {
			hasView = true
		}
	}
	if !hasView {
		t.Fatalf("an aggregate join workload should get a view: %v (improvement %.2f)", rec.NewStructures, rec.Improvement)
	}
	if rec.Improvement < 0.9 {
		t.Fatalf("view should nearly eliminate the cost: %.3f", rec.Improvement)
	}
}
