package core

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/workload"
)

// TuneStaged is the staged-solution baseline of paper §3: instead of one
// integrated search, physical design features are chosen one feature at a
// time — e.g. first partitioning, then indexes, then materialized views —
// each stage keeping the previous stages' output fixed. The storage budget
// is split evenly across the storage-consuming stages, the ad-hoc decision
// the paper warns about. Example 2 of the paper shows why this can be
// strictly worse than the integrated search: committing to a clustered
// index on X in stage one forecloses (clustered on A + partitioned on X).
func TuneStaged(t Tuner, w *workload.Workload, opts Options, stages []FeatureMask) (*Recommendation, error) {
	if len(stages) == 0 {
		stages = []FeatureMask{FeaturePartitioning, FeatureIndexes, FeatureViews}
	}
	opts = opts.withDefaults()

	// Count the storage-consuming stages (partitioning is free).
	consuming := 0
	for _, st := range stages {
		if st.Has(FeatureIndexes) || st.Has(FeatureViews) {
			consuming++
		}
	}

	base := opts.BaseConfig
	if base == nil {
		base = catalog.NewConfiguration()
	}
	cur := base.Clone()
	var last *Recommendation
	totalCalls := int64(0)
	for i, stage := range stages {
		so := opts
		so.Features = stage
		so.BaseConfig = cur
		if opts.StorageBudget > 0 && consuming > 0 && (stage.Has(FeatureIndexes) || stage.Has(FeatureViews)) {
			so.StorageBudget = opts.StorageBudget / int64(consuming)
		}
		rec, err := Tune(t, w, so)
		if err != nil {
			return nil, fmt.Errorf("core: staged tuning stage %d (%s): %w", i+1, stage, err)
		}
		cur = rec.Config
		totalCalls += rec.WhatIfCalls
		last = rec
	}
	if last == nil {
		return nil, fmt.Errorf("core: no stages")
	}
	// Rebase the final report against the original base configuration.
	ev := newEvaluator(t, w)
	baseCost, err := ev.configCost(base)
	if err != nil {
		return nil, err
	}
	finalCost, err := ev.configCost(cur)
	if err != nil {
		return nil, err
	}
	last.Config = cur
	last.BaseCost = baseCost
	last.Cost = finalCost
	if baseCost > 0 {
		last.Improvement = (baseCost - finalCost) / baseCost
	}
	last.NewStructures = newStructures(base, cur)
	last.StorageBytes = cur.StorageBytes(t.Catalog()) - base.StorageBytes(t.Catalog())
	last.WhatIfCalls = totalCalls
	return last, nil
}

// TuneITW emulates the Index Tuning Wizard of SQL Server 2000 (paper §7.6),
// the predecessor DTA is compared against end-to-end: indexes and
// materialized views only (no partitioning), no workload compression, no
// column-group restriction, no reduced-statistics creation, and no merged
// view candidates — the published [3] architecture without DTA's
// scalability devices.
func TuneITW(t Tuner, w *workload.Workload, opts Options) (*Recommendation, error) {
	opts = opts.withDefaults()
	opts.Features = FeatureIndexes | FeatureViews
	opts.NoCompression = true
	opts.NoColGroupRestriction = true
	opts.DisableStatReduction = true
	opts.Aligned = false
	return Tune(t, w, opts)
}

// Evaluate runs exploratory what-if analysis (paper §6.3): it costs the
// workload under base and under base+user configurations and reports the
// expected percentage change without recommending anything.
func Evaluate(t Tuner, w *workload.Workload, base, user *catalog.Configuration) (*Recommendation, error) {
	return Tune(t, w, Options{
		BaseConfig:    base,
		UserConfig:    user,
		EvaluateOnly:  true,
		NoCompression: true,
	})
}
