package core

import (
	"sort"

	"repro/internal/catalog"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/stats"
	"repro/internal/workload"
)

// selectCandidates runs the Candidate Selection step (paper §2.2): for each
// query of the workload — one query at a time — it generates syntactically
// relevant structures, creates the statistics needed to simulate them
// (reduced per §5.2), and keeps the structures chosen by a per-query
// Greedy(m,k) search as candidates for the whole workload. Alongside the
// candidates it returns each query's unweighted selection outcome (the
// QueryGains the search layer turns into per-structure benefits under its
// effective weights) and the statistics-creation log (the StatBatches a
// revision replays on a fresh backend).
//
// This is the heart of the costing layer, and it is deliberately
// independent of every search-layer constraint: the per-query search runs
// against the base configuration only (no pinned structures), with no
// storage budget and the workload's own weights, so its output — and every
// cost it caches — is reusable under any Constraints value a revision
// chooses.
//
// Parallelism note: the per-query work is parallelized inside each query's
// Greedy(m,k) — its frontiers fan out over the session's worker pool — but
// the cross-query loop itself stays sequential, deliberately. Optimizer
// cost estimates depend on which statistics exist at call time (without a
// histogram the selectivity model falls back to uniform/density guesses),
// and this loop creates statistics query by query; running queries
// concurrently would make each cost depend on how far other queries had
// advanced statistics creation — scheduling-dependent results, which the
// determinism guarantee (identical recommendations at every Parallelism
// level) forbids. Within one query the statistics state is fixed, so its
// frontier evaluations are safely concurrent.
func selectCandidates(t Tuner, ev *evaluator, tr *tracker, w *workload.Workload, base *catalog.Configuration, groups *columnGroups, opts Options) ([]catalog.Structure, []QueryGain, []StatBatch, int, error) {
	pool := map[string]catalog.Structure{}
	var gains []QueryGain
	var batches []StatBatch
	var order []string
	statsCreated := 0
	perQueryK := opts.PerQueryK
	if perQueryK <= 0 {
		perQueryK = 6
	}

	for i := range w.Events {
		if tr.stopped() {
			break
		}
		qspan, endQuery := tr.span("query", "select-candidates")
		qspan.SetArg("event", i)
		gain, err := func() (float64, error) {
			q := ev.analyzed(i)
			if q == nil {
				return 0, nil
			}
			cands := generateForQuery(t.Catalog(), q, groups, opts)
			qspan.SetArg("candidates", len(cands))
			if opts.Metrics != nil {
				opts.Metrics.Histogram("dta_candidates_per_query",
					"Syntactically relevant structures generated per workload event (§2.2).",
					obs.CountBuckets).Observe(float64(len(cands)))
			}
			if len(cands) == 0 {
				return 0, nil
			}
			// Statistics for what-if structures (§5.2). The request batch is
			// logged in issue order so a revision can replay the exact
			// statistics state on a fresh backend.
			reqs := statRequests(cands)
			created, err := ensureStatistics(t, tr, reqs, !opts.DisableStatReduction)
			if err != nil {
				return 0, err
			}
			if len(reqs) > 0 {
				batches = append(batches, StatBatch{Requests: reqs})
			}
			statsCreated += created
			if created > 0 {
				// New statistics change optimizer estimates; plan facts
				// recorded before them no longer predict fresh calls.
				ev.bumpDeriveEpoch()
			}
			// This query's candidates are the structure pool its greedy
			// search draws from — the derivation lattice tops for the
			// evaluations about to run. Set sequentially here (like the
			// statistics), so tops never depend on scheduling.
			ev.setDerivePool(cands)

			idx := i
			perQueryCost := func(cfg *catalog.Configuration) (float64, error) {
				c, _, err := ev.eventCostByIndex(idx, cfg)
				return c, err
			}
			baseCost, err := perQueryCost(base)
			if err != nil {
				return 0, err
			}
			// journalQuery records the query's selection outcome: one summary
			// event plus one accept/reject event per generated candidate.
			journalQuery := func(bestCost, gain float64, chosen []catalog.Structure) {
				if !tr.journaling() {
					return
				}
				qe := journal.Ev(journal.KindQuery)
				qe.Query = i
				qe.SQL = w.Events[i].SQL
				qe.CostBefore, qe.CostAfter, qe.Gain = baseCost, bestCost, gain
				qe.Alternatives = len(cands)
				tr.record(qe)
				chosenKeys := map[string]bool{}
				for _, s := range chosen {
					chosenKeys[s.Key()] = true
				}
				for _, s := range cands {
					ce := journal.Ev(journal.KindCandidate)
					ce.Query = i
					ce.Structure = s.Key()
					ce.Accepted = chosenKeys[s.Key()]
					if ce.Accepted {
						ce.Gain = gain
					}
					tr.record(ce)
				}
			}
			// Deliberately unbudgeted: the storage bound is a search-layer
			// constraint, and pruning candidates here would make the costed
			// pool budget-specific — the enumeration greedy enforces the
			// bound where it belongs.
			chosen, err := greedySearch(base, cands, perQueryCost, greedyOptions{
				m: opts.GreedyM, k: perQueryK, cat: t.Catalog(), tr: tr,
				scope: journal.ScopeQuery, query: i,
			})
			if err != nil {
				return 0, err
			}
			if len(chosen) == 0 {
				journalQuery(baseCost, 0, nil)
				return 0, nil
			}
			bestCfg := base.Clone()
			for _, s := range chosen {
				s.ApplyTo(bestCfg)
			}
			bestCost, err := perQueryCost(bestCfg)
			if err != nil {
				return 0, err
			}
			gain := (baseCost - bestCost) * w.Events[i].Weight
			journalQuery(bestCost, gain, chosen)
			g := QueryGain{Query: i, BaseCost: baseCost, BestCost: bestCost}
			for _, s := range chosen {
				key := s.Key()
				if _, dup := pool[key]; !dup {
					pool[key] = s
					order = append(order, key)
				}
				g.Structures = append(g.Structures, key)
			}
			gains = append(gains, g)
			return gain, nil
		}()
		qspan.SetArg("gain", gain)
		endQuery()
		if err != nil {
			if stopping(err) {
				break // keep the candidates gathered so far
			}
			return nil, nil, nil, statsCreated, err
		}
		tr.eventDone(gain)
	}
	out := make([]catalog.Structure, 0, len(order))
	for _, k := range order {
		out = append(out, pool[k])
	}
	return out, gains, batches, statsCreated, nil
}

// capCandidates keeps the limit highest-benefit candidates (merged
// structures inherit the larger parent benefit plus a small bonus so they
// stay competitive). Bounding the pool keeps the enumeration step's
// Greedy(m,k) affordable on workloads with many templates.
func capCandidates(cands []catalog.Structure, benefit map[string]float64, limit int) []catalog.Structure {
	if limit <= 0 || len(cands) <= limit {
		return cands
	}
	sorted := append([]catalog.Structure(nil), cands...)
	sort.SliceStable(sorted, func(a, b int) bool {
		return benefit[sorted[a].Key()] > benefit[sorted[b].Key()]
	})
	return sorted[:limit]
}

// ensureStatistics runs the Tuner's statistics creation under the session's
// retry policy and fault injector (site "stats"). Statistics creation is
// idempotent on both backends — already-present statistics are skipped — so
// a retried call converges on the missing ones. A call that fails every
// retry outside a critical stage degrades the session (the candidates
// gathered so far still yield a best-so-far design) instead of failing it.
func ensureStatistics(t Tuner, tr *tracker, reqs []stats.Request, reduce bool) (int, error) {
	created, err := fault.Do(tr.doCtx(), tr.retryPolicy(), func() (int, error) {
		if err := tr.inject(fault.SiteStats); err != nil {
			return 0, err
		}
		return t.EnsureStatistics(reqs, reduce)
	}, func(_ int, err error) {
		tr.attemptDone(fault.SiteStats, err)
	})
	if err != nil {
		if tr.ctxStopped() {
			return 0, errStopped
		}
		if !tr.critical() {
			tr.degrade()
			return 0, errStopped
		}
	}
	return created, err
}

// statRequests lists the statistics needed to simulate the candidates: one
// per index key-column list, one per partitioning column.
func statRequests(cands []catalog.Structure) []stats.Request {
	var reqs []stats.Request
	for _, s := range cands {
		switch {
		case s.Index != nil:
			reqs = append(reqs, stats.Request{Table: s.Index.Table, Columns: s.Index.KeyColumns})
		case s.Part != nil:
			reqs = append(reqs, stats.Request{Table: s.PartTable, Columns: []string{s.Part.Column}})
		}
	}
	return reqs
}

// GenerateCandidates exposes the per-query candidate generation step for
// inspection and tooling: the syntactically relevant structures for one
// analyzed statement, without the column-group restriction.
func GenerateCandidates(cat *catalog.Catalog, q *optimizer.QueryInfo, opts Options) []catalog.Structure {
	opts = opts.withDefaults()
	return generateForQuery(cat, q, &columnGroups{disabled: true}, opts)
}

// generateForQuery produces the syntactically relevant structures for one
// analyzed statement, restricted to interesting column groups.
func generateForQuery(cat *catalog.Catalog, q *optimizer.QueryInfo, groups *columnGroups, opts Options) []catalog.Structure {
	g := &generator{cat: cat, q: q, groups: groups, opts: opts, seen: map[string]bool{}}
	feats := opts.features()

	for si, sc := range q.Scopes {
		eqCols, rangeCols := sargableColumns(sc)
		joinCols := joinColumnsOf(q, si)
		groupCols := scopedColsOf(q.GroupBy, si)
		orderCols := scopedColsOf(q.OrderBy, si)

		if feats.Has(FeatureIndexes) {
			g.indexCandidates(sc, eqCols, rangeCols, joinCols, groupCols, orderCols)
		}
		if feats.Has(FeaturePartitioning) {
			g.partitionCandidates(sc, eqCols, rangeCols, joinCols)
		}
	}
	if feats.Has(FeatureViews) && q.Kind == optimizer.KindSelect {
		g.viewCandidates()
	}
	return g.out
}

type generator struct {
	cat    *catalog.Catalog
	q      *optimizer.QueryInfo
	groups *columnGroups
	opts   Options
	out    []catalog.Structure
	seen   map[string]bool
}

func (g *generator) add(s catalog.Structure) {
	k := s.Key()
	if !g.seen[k] {
		g.seen[k] = true
		g.out = append(g.out, s)
	}
}

func (g *generator) addIndex(table string, keys []string, include []string, clustered bool) {
	if len(keys) == 0 || len(keys) > g.opts.MaxKeyColumns {
		return
	}
	if !g.groups.interesting(table, keys...) {
		return
	}
	ix := catalog.NewIndex(table, keys...)
	ix.Clustered = clustered
	if !clustered && len(include) > 0 {
		have := map[string]bool{}
		for _, k := range ix.KeyColumns {
			have[k] = true
		}
		var inc []string
		for _, c := range include {
			if !have[c] {
				have[c] = true
				inc = append(inc, c)
			}
		}
		ix = ix.WithInclude(inc...)
	}
	g.add(catalog.Structure{Index: ix})
}

// indexCandidates proposes indexes for one scope: seek indexes on equality
// chains and ranges, covering variants, join-column indexes, and indexes /
// clusterings supporting grouping and ordering (paper §3 Example 1's
// alternatives all arise here).
func (g *generator) indexCandidates(sc *optimizer.Scope, eqCols, rangeCols, joinCols, groupCols, orderCols []string) {
	table := sc.Table.Name
	required := sc.Required

	// Equality chain (most selective first), optionally closed by a range.
	if len(eqCols) > 0 {
		key := capCols(eqCols, g.opts.MaxKeyColumns)
		g.addIndex(table, key, nil, false)
		g.addIndex(table, key, required, false)
		if len(rangeCols) > 0 && len(key) < g.opts.MaxKeyColumns {
			withRange := append(append([]string(nil), key...), rangeCols[0])
			g.addIndex(table, withRange, nil, false)
			g.addIndex(table, withRange, required, false)
		}
	}
	// Pure range indexes, plain and covering.
	for _, rc := range rangeCols {
		g.addIndex(table, []string{rc}, nil, false)
		g.addIndex(table, []string{rc}, required, false)
		g.addIndex(table, []string{rc}, nil, true) // clustered on the range column
	}
	// Join columns (enable index nested loops), covering variants.
	for _, jc := range joinCols {
		g.addIndex(table, []string{jc}, nil, false)
		g.addIndex(table, []string{jc}, required, false)
	}
	// Grouping: an index ordered on the grouping columns enables stream
	// aggregation; covering it makes it self-sufficient.
	if len(groupCols) > 0 {
		g.addIndex(table, capCols(groupCols, g.opts.MaxKeyColumns), nil, false)
		g.addIndex(table, capCols(groupCols, g.opts.MaxKeyColumns), required, false)
		g.addIndex(table, groupCols[:1], nil, true) // clustered on the leading group column
		// Range + grouping covering index (Example 1's (X, A) index).
		if len(rangeCols) > 0 {
			key := append([]string{rangeCols[0]}, capCols(groupCols, g.opts.MaxKeyColumns-1)...)
			g.addIndex(table, key, required, false)
		}
	}
	// Ordering.
	if len(orderCols) > 0 {
		g.addIndex(table, capCols(orderCols, g.opts.MaxKeyColumns), nil, false)
		g.addIndex(table, capCols(orderCols, g.opts.MaxKeyColumns), required, false)
		g.addIndex(table, orderCols[:1], nil, true)
	}
	// Equality clustering (cheap, non-redundant).
	if len(eqCols) > 0 {
		g.addIndex(table, eqCols[:1], nil, true)
	}
}

// partitionCandidates proposes single-column range partitioning on predicate
// and join columns (paper §2.2: SQL Server 2005 supports single-column range
// partitioning).
func (g *generator) partitionCandidates(sc *optimizer.Scope, eqCols, rangeCols, joinCols []string) {
	table := sc.Table.Name
	for _, col := range dedupStrings(append(append(append([]string(nil), rangeCols...), eqCols...), joinCols...)) {
		if !g.groups.interesting(table, col) {
			continue
		}
		c := sc.Table.Column(col)
		if c == nil || !c.Type.Numeric() || c.Max <= c.Min {
			continue
		}
		n := g.opts.PartitionCount
		bounds := make([]float64, 0, n-1)
		span := c.Max - c.Min
		for i := 1; i < n; i++ {
			bounds = append(bounds, c.Min+span*float64(i)/float64(n))
		}
		g.add(catalog.Structure{PartTable: table, Part: catalog.NewPartitionScheme(col, bounds...)})
	}
}

// viewCandidates proposes materialized views matching the query: a grouped
// view materializing the query's joins, grouping and aggregates, and (for
// join queries) an SPJ denormalization. Every candidate is checked against
// the optimizer's own MatchView so only views that can actually answer the
// query survive.
func (g *generator) viewCandidates() {
	q := g.q
	seen := map[string]bool{}
	var tables []string
	for _, s := range q.Scopes {
		if seen[s.Table.Name] {
			return // self-join: no view candidates
		}
		seen[s.Table.Name] = true
		tables = append(tables, s.Table.Name)
	}
	var joins []catalog.JoinPred
	for _, e := range q.Joins {
		joins = append(joins, catalog.JoinPred{
			Left:  catalog.NewColRef(q.Scopes[e.L].Table.Name, e.LCol),
			Right: catalog.NewColRef(q.Scopes[e.R].Table.Name, e.RCol),
		})
	}

	// Columns the view must expose: predicate inputs, plain projections,
	// order-by columns.
	var outCols []catalog.ColRef
	for si, s := range q.Scopes {
		for _, p := range s.Preds {
			for _, c := range p.InputColumns() {
				outCols = append(outCols, catalog.NewColRef(q.Scopes[si].Table.Name, c))
			}
		}
	}
	for _, f := range q.PostFilters {
		for _, c := range f.Cols {
			outCols = append(outCols, catalog.NewColRef(q.Scopes[c.Scope].Table.Name, c.Column))
		}
	}
	for _, c := range q.PlainSelectCols {
		outCols = append(outCols, catalog.NewColRef(q.Scopes[c.Scope].Table.Name, c.Column))
	}
	for _, o := range q.OrderBy {
		if o.Scope >= 0 {
			outCols = append(outCols, catalog.NewColRef(q.Scopes[o.Scope].Table.Name, o.Column))
		}
	}

	if len(q.GroupBy) > 0 || len(q.Aggs) > 0 {
		var groupBy []catalog.ColRef
		for _, gc := range q.GroupBy {
			groupBy = append(groupBy, catalog.NewColRef(q.Scopes[gc.Scope].Table.Name, gc.Column))
		}
		aggs := append([]catalog.Agg(nil), q.Aggs...)
		// AVG re-derives from SUM and COUNT under regrouping; materialize
		// both so merged (coarser-matched) variants stay usable.
		for _, a := range q.Aggs {
			if a.Func == "AVG" {
				aggs = append(aggs, catalog.Agg{Func: "SUM", Col: a.Col}, catalog.Agg{Func: "COUNT"})
			}
		}
		if len(groupBy) == 0 {
			// Scalar aggregate: group by the predicate columns so the
			// filtered aggregate remains answerable.
			groupBy = append(groupBy, outCols...)
		}
		if len(groupBy) > 0 || len(outCols) > 0 {
			rows := estimateGroupedViewRows(g.cat, g.q, groupBy, outCols)
			v := catalog.NewMaterializedView(tables, joins, outCols, groupBy, aggs, rows)
			if _, ok := optimizer.MatchView(q, v); ok {
				g.add(catalog.Structure{View: v})
			}
		}
		return
	}

	// SPJ view for join queries: a denormalized join result.
	if len(tables) >= 2 {
		rows := estimateJoinRows(g.cat, q)
		v := catalog.NewMaterializedView(tables, joins, outCols, nil, nil, rows)
		if _, ok := optimizer.MatchView(q, v); ok {
			g.add(catalog.Structure{View: v})
		}
	}
}

// estimateJoinRows estimates the cardinality of the query's join using
// catalog distinct counts (1/max-distinct per join edge).
func estimateJoinRows(cat *catalog.Catalog, q *optimizer.QueryInfo) int64 {
	rows := 1.0
	for _, s := range q.Scopes {
		rows *= float64(s.Table.Rows)
	}
	for _, e := range q.Joins {
		dl := float64(q.Scopes[e.L].Table.DistinctOf(e.LCol))
		dr := float64(q.Scopes[e.R].Table.DistinctOf(e.RCol))
		d := dl
		if dr > d {
			d = dr
		}
		if d > 0 {
			rows /= d
		}
	}
	if rows < 1 {
		rows = 1
	}
	return int64(rows)
}

// estimateGroupedViewRows estimates group counts as the product of distinct
// counts of the grouping columns, capped by the join cardinality.
func estimateGroupedViewRows(cat *catalog.Catalog, q *optimizer.QueryInfo, groupBy, outCols []catalog.ColRef) int64 {
	distinct := 1.0
	seen := map[string]bool{}
	for _, c := range append(append([]catalog.ColRef(nil), groupBy...), outCols...) {
		if seen[c.String()] {
			continue
		}
		seen[c.String()] = true
		if t := cat.ResolveTable(c.Table); t != nil {
			distinct *= float64(t.DistinctOf(c.Column))
		}
	}
	join := float64(estimateJoinRows(cat, q))
	if distinct > join {
		distinct = join
	}
	if distinct < 1 {
		distinct = 1
	}
	return int64(distinct)
}

// sargableColumns splits a scope's sargable predicate columns into equality
// and range groups. Equality columns are ordered most-selective-first
// (highest distinct count first).
func sargableColumns(sc *optimizer.Scope) (eqCols, rangeCols []string) {
	seenEq := map[string]bool{}
	seenRange := map[string]bool{}
	for _, p := range sc.Preds {
		if !p.Sargable() {
			continue
		}
		switch p.Kind {
		case optimizer.PredEq:
			if !seenEq[p.Column] {
				seenEq[p.Column] = true
				eqCols = append(eqCols, p.Column)
			}
		default:
			if !seenRange[p.Column] {
				seenRange[p.Column] = true
				rangeCols = append(rangeCols, p.Column)
			}
		}
	}
	sort.Slice(eqCols, func(a, b int) bool {
		da, db := sc.Table.DistinctOf(eqCols[a]), sc.Table.DistinctOf(eqCols[b])
		if da != db {
			return da > db
		}
		return eqCols[a] < eqCols[b]
	})
	sort.Strings(rangeCols)
	return eqCols, rangeCols
}

func joinColumnsOf(q *optimizer.QueryInfo, si int) []string {
	var out []string
	for _, e := range q.Joins {
		if e.L == si {
			out = append(out, e.LCol)
		}
		if e.R == si {
			out = append(out, e.RCol)
		}
	}
	return dedupStrings(out)
}

func scopedColsOf(cols []optimizer.ScopedCol, si int) []string {
	var out []string
	for _, c := range cols {
		if c.Scope == si {
			out = append(out, c.Column)
		}
	}
	return dedupStrings(out)
}

func dedupStrings(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func capCols(cols []string, n int) []string {
	if len(cols) <= n {
		return cols
	}
	return cols[:n]
}
