package core

import (
	"sort"
	"sync/atomic"
)

// CachedCost is one persisted cost-cache entry: the evaluator's cache key
// (event index + relevant-structure subset) with the optimizer's answer.
type CachedCost struct {
	Key  string   `json:"key"`
	Cost float64  `json:"cost"`
	Used []string `json:"used,omitempty"`
}

// Checkpoint is a point-in-time snapshot of a tuning session's restartable
// state. The pipeline is deterministic given its optimizer costs (the
// parallel-evaluation design already guarantees identical recommendations
// at every parallelism level), so the cost cache — the product of the
// expensive what-if optimizer calls — is the only state worth persisting:
// a resumed session replays the search from the start, but every decision
// up to the crash point is re-derived from cached costs in microseconds
// instead of optimizer calls, and the run then continues where the
// interrupted one left off. Phase/progress fields are informational (they
// let an operator judge how far a checkpoint got).
//
// Checkpoints marshal to JSON; float64 costs survive the round trip
// exactly (encoding/json emits shortest-round-trip representations), which
// the resume-determinism guarantee depends on.
type Checkpoint struct {
	Phase       Phase        `json:"phase"`
	EventsTuned int          `json:"eventsTuned"`
	WhatIfCalls int64        `json:"whatIfCalls"`
	Cache       []CachedCost `json:"cache"`
}

// checkpointer drives periodic snapshots: every Options.CheckpointEvery
// what-if calls, the worker that crossed the boundary builds a Checkpoint
// from the evaluator's cache and hands it to the sink. A CAS flag keeps
// snapshots from overlapping; a worker that loses the race simply skips —
// the next boundary will snapshot again.
type checkpointer struct {
	sink  func(*Checkpoint)
	every int64
	busy  atomic.Bool
	tr    *tracker
	ev    *evaluator
}

// maybeSnapshot emits a checkpoint when the call count crosses an interval
// boundary. Called from tracker.countCall on whichever pool worker issued
// the call; the snapshot itself copies the cache under its lock and writes
// the file synchronously (a few ms every `every` optimizer calls).
func (c *checkpointer) maybeSnapshot(calls int64) {
	if c == nil || c.sink == nil || c.ev == nil || calls%c.every != 0 {
		return
	}
	if !c.busy.CompareAndSwap(false, true) {
		return
	}
	defer c.busy.Store(false)
	c.sink(c.snapshot())
}

// snapshot builds the checkpoint from the current tracker and cache state.
func (c *checkpointer) snapshot() *Checkpoint {
	ck := &Checkpoint{Cache: c.ev.snapshotCache()}
	if tr := c.tr; tr != nil {
		ck.Phase = tr.phase
		ck.EventsTuned = tr.eventsTuned
		ck.WhatIfCalls = tr.calls.Load()
	}
	return ck
}

// snapshotCache copies every completed, successful cache entry, sorted by
// key so checkpoint files are byte-stable for identical states. In-flight
// entries are skipped — their leaders will finish after the crash the
// checkpoint guards against, and a resumed run recomputes them.
func (ev *evaluator) snapshotCache() []CachedCost {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	out := make([]CachedCost, 0, len(ev.cache))
	for key, ce := range ev.cache {
		select {
		case <-ce.ready:
			if ce.err == nil {
				out = append(out, CachedCost{Key: key, Cost: ce.cost, Used: ce.used})
			}
		default: // in-flight: not yet a fact worth persisting
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// warmStart pre-populates the cost cache from a checkpoint, so a resumed
// session's replayed decisions hit the cache instead of the optimizer.
// Called before tuning starts, while the evaluator is still single-owner.
func (ev *evaluator) warmStart(cs []CachedCost) {
	for _, c := range cs {
		ready := make(chan struct{})
		close(ready)
		ev.cache[c.Key] = &cacheEntry{ready: ready, cost: c.Cost, used: c.Used}
	}
}
