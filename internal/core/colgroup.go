package core

import (
	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

// columnGroups is the output of the column-group restriction step: the set
// of "interesting" column groups for the workload. Indexes and partitioning
// considered by the advisor are limited to these groups (paper §2.2), which
// shrinks the structure space dramatically with little quality impact.
type columnGroups struct {
	frequent map[string]bool
	disabled bool
}

// interesting reports whether the column set may seed a physical design
// structure.
func (g *columnGroups) interesting(table string, cols ...string) bool {
	if g.disabled {
		return true
	}
	return g.frequent[catalog.NewColumnGroup(table, cols...).Key()]
}

// interestingColumnGroups mines the frequent column groups of the workload
// bottom-up in the style of frequent-itemset mining [5]: a column group is
// interesting when the events referencing all of its columns together
// account for at least ColGroupFrac of the total workload cost. Costs are
// the optimizer-estimated costs under the base configuration, so expensive
// queries weigh more than cheap ones.
func interestingColumnGroups(t Tuner, ev *evaluator, w *workload.Workload, opts Options) (*columnGroups, error) {
	if opts.NoColGroupRestriction {
		return &columnGroups{disabled: true}, nil
	}
	base := opts.BaseConfig
	if base == nil {
		base = catalog.NewConfiguration()
	}

	// Per event: cost weight and the referenced columns per table.
	type occurrence struct {
		table string
		cols  []string
		cost  float64
	}
	var occs []occurrence
	var totalCost float64
	pbase := ev.prepareConfig(base)
	for i, e := range w.Events {
		q := ev.analyzed(i)
		if q == nil {
			continue
		}
		c, _, err := ev.eventCost(i, pbase)
		if err != nil {
			return nil, err
		}
		cost := c * e.Weight
		totalCost += cost
		for _, cols := range referencedColumns(q) {
			occs = append(occs, occurrence{table: cols.table, cols: cols.cols, cost: cost})
		}
	}
	threshold := totalCost * opts.ColGroupFrac

	// Level 1: frequent single columns.
	costOf := map[string]float64{}
	for _, o := range occs {
		seen := map[string]bool{}
		for _, c := range o.cols {
			k := catalog.NewColumnGroup(o.table, c).Key()
			if !seen[k] {
				seen[k] = true
				costOf[k] += o.cost
			}
		}
	}
	frequent := map[string]bool{}
	for k, c := range costOf {
		if c >= threshold {
			frequent[k] = true
		}
	}

	// Levels 2..MaxKeyColumns, bottom-up: extend only groups whose members
	// are all individually frequent (the apriori property), counting the
	// co-occurrence cost.
	for size := 2; size <= opts.MaxKeyColumns; size++ {
		costOf = map[string]float64{}
		for _, o := range occs {
			// Columns of this occurrence that are frequent singletons.
			var freq []string
			for _, c := range o.cols {
				if frequent[catalog.NewColumnGroup(o.table, c).Key()] {
					freq = append(freq, c)
				}
			}
			if len(freq) < size {
				continue
			}
			forEachSubset(freq, size, func(sub []string) {
				// Apriori: all (size−1)-subsets must be frequent.
				if size > 2 {
					ok := true
					forEachSubset(sub, size-1, func(s2 []string) {
						if !frequent[catalog.NewColumnGroup(o.table, s2...).Key()] {
							ok = false
						}
					})
					if !ok {
						return
					}
				}
				costOf[catalog.NewColumnGroup(o.table, sub...).Key()] += o.cost
			})
		}
		added := false
		for k, c := range costOf {
			if c >= threshold {
				frequent[k] = true
				added = true
			}
		}
		if !added {
			break
		}
	}
	return &columnGroups{frequent: frequent}, nil
}

type tableCols struct {
	table string
	cols  []string
}

// referencedColumns lists, per table of the query, the columns relevant to
// physical design: sargable/residual predicate columns, join columns,
// grouping and ordering columns.
func referencedColumns(q *optimizer.QueryInfo) []tableCols {
	perScope := make([]map[string]bool, len(q.Scopes))
	add := func(si int, col string) {
		if si < 0 || si >= len(q.Scopes) || col == "" {
			return
		}
		if perScope[si] == nil {
			perScope[si] = map[string]bool{}
		}
		perScope[si][col] = true
	}
	for si, s := range q.Scopes {
		for _, p := range s.Preds {
			for _, c := range p.InputColumns() {
				add(si, c)
			}
		}
	}
	for _, j := range q.Joins {
		add(j.L, j.LCol)
		add(j.R, j.RCol)
	}
	for _, g := range q.GroupBy {
		add(g.Scope, g.Column)
	}
	for _, o := range q.OrderBy {
		add(o.Scope, o.Column)
	}
	var out []tableCols
	for si, set := range perScope {
		if len(set) == 0 {
			continue
		}
		tc := tableCols{table: q.Scopes[si].Table.Name}
		for c := range set {
			tc.cols = append(tc.cols, c)
		}
		out = append(out, tc)
	}
	return out
}

// forEachSubset calls fn for every size-k subset of items (items assumed
// small; k ≤ 3 in practice).
func forEachSubset(items []string, k int, fn func([]string)) {
	n := len(items)
	if k > n || k <= 0 {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		sub := make([]string, k)
		for i, x := range idx {
			sub[i] = items[x]
		}
		fn(sub)
		// Advance combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
