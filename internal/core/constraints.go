package core

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
)

// Constraints is the complete input of the search layer beyond the costed
// pool itself: everything a DBA can change between revisions of the same
// tuning session without invalidating a single costed atom. The costing
// layer (candidate generation, statistics, baseline costing, per-query
// Greedy(m,k)) is deliberately independent of every field here — that
// independence is what makes Revise(pool, C) byte-identical to a fresh
// full run under C, with the search layer never issuing a what-if call
// the pool can't answer or derive.
type Constraints struct {
	// StorageBudget bounds the extra storage (bytes beyond the base
	// configuration) the enumeration search may spend; 0 = unlimited
	// (paper §4).
	StorageBudget int64 `json:"storageBudget,omitempty"`
	// Aligned requires every recommended index to be partition-aligned
	// with its table (paper §4).
	Aligned bool `json:"aligned,omitempty"`
	// Pinned is a partial configuration the recommendation must include
	// (paper §6.2): its structures are merged into the base before the
	// search, charged no storage, and never removed by drop analysis.
	Pinned *catalog.Configuration `json:"pinned,omitempty"`
	// Vetoed lists structure keys the search may not recommend: matching
	// candidates are filtered out of the enumeration pool both before
	// and after merging, so a vetoed structure cannot re-enter as a
	// merge of unvetoed parents.
	Vetoed []string `json:"vetoed,omitempty"`
	// SliceWeights rescales workload slices: template signature →
	// multiplier applied to every matching event's weight in workload
	// cost folds. Missing signatures keep multiplier 1. Per-event costs
	// (and hence the pool's cached atoms) are weight-independent, so
	// reweighting is always answerable from the pool.
	SliceWeights map[string]float64 `json:"sliceWeights,omitempty"`
}

// SearchConstraints returns the Constraints value the options' search phase
// runs under. The service records it on each session so a revision can
// inherit the parent's constraints field-by-field.
func (o Options) SearchConstraints() Constraints { return o.constraints().normalize() }

// constraints maps a full-run Options to the Constraints value its search
// phase runs under, so the fresh path and the revision path share one
// search-layer entry point.
func (o Options) constraints() Constraints {
	return Constraints{
		StorageBudget: o.StorageBudget,
		Aligned:       o.Aligned,
		Pinned:        o.UserConfig,
		Vetoed:        o.Vetoed,
		SliceWeights:  o.SliceWeights,
	}
}

// validate rejects constraint values the search layer cannot honour.
func (c Constraints) validate(cat *catalog.Catalog) error {
	if c.Pinned != nil {
		if err := c.Pinned.Validate(cat); err != nil {
			return fmt.Errorf("core: pinned configuration invalid: %w", err)
		}
	}
	for sig, m := range c.SliceWeights {
		if m < 0 {
			return fmt.Errorf("core: negative slice-weight multiplier %g for template %q", m, sig)
		}
	}
	return nil
}

// pinnedKeys returns the structure keys of the pinned partial
// configuration, for drop analysis to skip.
func (c Constraints) pinnedKeys() map[string]bool {
	if c.Pinned == nil {
		return nil
	}
	return snapshotKeys(c.Pinned)
}

// vetoFilter returns cands minus the vetoed structure keys, preserving
// order. The input slice is never mutated.
func (c Constraints) vetoFilter(cands []catalog.Structure) []catalog.Structure {
	if len(c.Vetoed) == 0 {
		return cands
	}
	veto := map[string]bool{}
	for _, k := range c.Vetoed {
		veto[k] = true
	}
	out := make([]catalog.Structure, 0, len(cands))
	for _, s := range cands {
		if !veto[s.Key()] {
			out = append(out, s)
		}
	}
	return out
}

// normalize canonicalizes the value for serialization and comparison:
// vetoes sorted and deduplicated, empty containers nilled out.
func (c Constraints) normalize() Constraints {
	if len(c.Vetoed) > 0 {
		c.Vetoed = dedupStrings(append([]string(nil), c.Vetoed...))
		sort.Strings(c.Vetoed)
	} else {
		c.Vetoed = nil
	}
	if len(c.SliceWeights) == 0 {
		c.SliceWeights = nil
	}
	if c.Pinned != nil && len(c.Pinned.Indexes) == 0 && len(c.Pinned.Views) == 0 && len(c.Pinned.TableParts) == 0 {
		c.Pinned = nil
	}
	return c
}
