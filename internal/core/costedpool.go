package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/derive"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/workload"
)

// QueryGain is one workload event's candidate-selection outcome, kept in
// the costed pool so the search layer can recompute per-structure benefits
// under any workload-slice reweighting: the costs are unweighted (weights
// are a search-layer input), so gain × effective-weight reproduces exactly
// what a fresh run under the same weights would compute.
type QueryGain struct {
	// Query is the workload event index.
	Query int `json:"query"`
	// BaseCost is the event's unweighted cost under the base configuration.
	BaseCost float64 `json:"baseCost"`
	// BestCost is the event's unweighted cost under its best candidate
	// subset.
	BestCost float64 `json:"bestCost"`
	// Structures lists the structure keys the event's Greedy(m,k) chose.
	Structures []string `json:"structures,omitempty"`
}

// StatBatch is one statistics-creation call the costing layer issued, in
// issue order. A revision replays the batches before any evaluation so a
// fresh backend reaches the exact statistics state the pool's cached costs
// were computed under (statistics creation is idempotent and monotone, so
// replay on the original backend is a no-op).
type StatBatch struct {
	// Requests lists the statistics the batch requested.
	Requests []stats.Request `json:"requests"`
}

// PoolKnobs pins the pipeline parameters a pool was costed under. They are
// the non-revisable complement of Constraints: changing any of them changes
// which candidates exist or how the search explores them, so a revision
// inherits them from the pool verbatim rather than accepting overrides.
type PoolKnobs struct {
	// Features is the physical-design feature mask the pool was costed for.
	Features FeatureMask `json:"features,omitempty"`
	// GreedyM and GreedyK parameterize the enumeration Greedy(m,k).
	GreedyM int `json:"greedyM,omitempty"`
	// GreedyK bounds the enumeration configuration size.
	GreedyK int `json:"greedyK,omitempty"`
	// MaxKeyColumns caps index key width (merging reads it).
	MaxKeyColumns int `json:"maxKeyColumns,omitempty"`
	// CandidatePoolCap bounds the enumeration pool by benefit.
	CandidatePoolCap int `json:"candidatePoolCap,omitempty"`
	// NoMerging disables the merging step.
	NoMerging bool `json:"noMerging,omitempty"`
	// EagerAlignment materializes aligned variants up front (§4 ablation).
	EagerAlignment bool `json:"eagerAlignment,omitempty"`
	// AllowDrops lets the search recommend dropping base structures.
	AllowDrops bool `json:"allowDrops,omitempty"`
	// DisableStatReduction disables §5.2 statistics reduction; statistics
	// replay must use the same setting the pool was costed under.
	DisableStatReduction bool `json:"disableStatReduction,omitempty"`
	// Derive is the cost-derivation mode the pool's facts were recorded
	// under.
	Derive derive.Mode `json:"derive,omitempty"`
}

// knobs captures the pool-pinned pipeline parameters from a full-run
// Options (after withDefaults).
func (o Options) knobs() PoolKnobs {
	return PoolKnobs{
		Features:             o.features(),
		GreedyM:              o.GreedyM,
		GreedyK:              o.GreedyK,
		MaxKeyColumns:        o.MaxKeyColumns,
		CandidatePoolCap:     o.CandidatePoolCap,
		NoMerging:            o.NoMerging,
		EagerAlignment:       o.EagerAlignment,
		AllowDrops:           o.AllowDrops,
		DisableStatReduction: o.DisableStatReduction,
		Derive:               o.Derive,
	}
}

// apply grafts the pool-pinned knobs back onto a revision's Options.
func (k PoolKnobs) apply(o Options) Options {
	o.Features = k.Features
	o.GreedyM = k.GreedyM
	o.GreedyK = k.GreedyK
	o.MaxKeyColumns = k.MaxKeyColumns
	o.CandidatePoolCap = k.CandidatePoolCap
	o.NoMerging = k.NoMerging
	o.EagerAlignment = k.EagerAlignment
	o.AllowDrops = k.AllowDrops
	o.DisableStatReduction = k.DisableStatReduction
	o.Derive = k.Derive
	return o
}

// CostedPool is the serializable boundary between the pipeline's two
// layers: everything the costing layer produced — the compressed workload,
// the base configuration, the candidate structures with their per-query
// gains, the statistics-creation log, the cost cache's atoms, and the
// derivation engine's plan facts — and nothing the search layer decides.
// It is immutable once sealed and content-addressed by Fingerprint, like
// cost-cache checkpoints; Revise consumes one together with a Constraints
// value and re-runs only the search layer, never issuing a what-if call
// the pool can't answer or derive (beyond configurations the new
// constraints genuinely make reachable for the first time).
type CostedPool struct {
	// Statements is the tuned (post-compression) workload, with weights.
	Statements []workload.Statement `json:"statements"`
	// Base is the base configuration candidate selection ran against
	// (Options.BaseConfig; drop analysis re-runs per revision).
	Base *catalog.Configuration `json:"base,omitempty"`
	// Candidates is the deduplicated candidate pool, in selection order.
	Candidates []catalog.Structure `json:"candidates,omitempty"`
	// Gains holds each event's candidate-selection outcome.
	Gains []QueryGain `json:"gains,omitempty"`
	// StatBatches logs the statistics-creation calls, in issue order.
	StatBatches []StatBatch `json:"statBatches,omitempty"`
	// Cache holds the cost cache's completed entries (the costed atoms),
	// sorted by key — the same representation checkpoints persist.
	Cache []CachedCost `json:"cache,omitempty"`
	// Derive is the derivation engine's fact snapshot (nil with derive
	// off).
	Derive *derive.Snapshot `json:"derive,omitempty"`
	// Knobs pins the pipeline parameters the pool was costed under.
	Knobs PoolKnobs `json:"knobs"`
	// StatsCreated is how many statistics the costing layer created.
	StatsCreated int `json:"statsCreated,omitempty"`
	// TemplatesTuned is the tuned workload's distinct template count.
	TemplatesTuned int `json:"templatesTuned,omitempty"`
	// Compressed records whether the workload was compressed (§5.1).
	Compressed bool `json:"compressed,omitempty"`
	// IngestedEvents and IngestedBytes carry streaming-ingest volume
	// (Options.Ingest) into revised sessions' recommendations.
	IngestedEvents int64 `json:"ingestedEvents,omitempty"`
	// IngestedBytes is the raw trace volume consumed during ingest.
	IngestedBytes int64 `json:"ingestedBytes,omitempty"`
	// Fingerprint is the sha256 content address of the pool (computed over
	// its canonical JSON with this field empty).
	Fingerprint string `json:"fingerprint,omitempty"`
}

// ComputeFingerprint returns the pool's content address: the sha256 of its
// canonical JSON with the Fingerprint field blanked. Identical pools —
// byte-identical costing-layer output — hash identically; Seal stamps it
// and Check verifies it on load.
func (p *CostedPool) ComputeFingerprint() string {
	clone := *p
	clone.Fingerprint = ""
	b, err := json.Marshal(&clone)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Check verifies the pool's content address, guarding revisions against
// truncated or hand-edited pool files.
func (p *CostedPool) Check() error {
	if p.Fingerprint == "" {
		return fmt.Errorf("core: costed pool has no fingerprint")
	}
	if got := p.ComputeFingerprint(); got != p.Fingerprint {
		return fmt.Errorf("core: costed pool fingerprint mismatch: stamped %s, computed %s", p.Fingerprint, got)
	}
	return nil
}

// seal freezes the costing layer's state into a serializable, fingerprinted
// pool. Called after a successful, uninterrupted run, so the cache and
// derive snapshots also carry the search phase's facts — a superset of what
// the search started from, which can only turn a revision's real calls into
// hits, never change a value.
func (st *costedState) seal(opts Options) *CostedPool {
	p := &CostedPool{
		Base:           st.base.Clone(),
		Candidates:     st.cands,
		Gains:          st.gains,
		StatBatches:    st.statBatches,
		Cache:          st.ev.snapshotCache(),
		Derive:         st.ev.drv.Snapshot(),
		Knobs:          opts.knobs(),
		StatsCreated:   st.statsCreated,
		TemplatesTuned: len(st.tuned.Templates()),
		Compressed:     st.compressed,
	}
	for _, e := range st.tuned.Events {
		p.Statements = append(p.Statements, workload.Statement{SQL: e.SQL, Weight: e.Weight})
	}
	p.IngestedEvents = st.ingestEvents
	p.IngestedBytes = st.ingestBytes
	p.Fingerprint = p.ComputeFingerprint()
	return p
}

// Revise re-runs only the search layer against a previously sealed costed
// pool under new constraints (CoPhy-style interactive tuning): the costed
// atoms, derive facts, and candidate gains are reused verbatim, so a
// changed storage bound, alignment toggle, pinned/vetoed structure set, or
// workload-slice reweighting yields a fresh recommendation in search time
// — typically with zero new what-if optimizer calls. The result is
// byte-identical to a fresh full TuneContext run under the same
// constraints (and a revision to the pool's own constraints reproduces the
// original recommendation exactly); only the call/derive accounting and
// Duration differ, reflecting the work actually done.
//
// t must expose the same catalog (and data) the pool was costed against.
// Pipeline knobs come from pool.Knobs; opts contributes only session-level
// fields (Parallelism, Progress, Metrics, TimeLimit, Retry, Faults,
// Breaker, SkipReports, PoolSink for chained revisions).
func Revise(ctx context.Context, t Tuner, pool *CostedPool, cons Constraints, opts Options) (*Recommendation, error) {
	if pool == nil {
		return nil, fmt.Errorf("core: nil costed pool")
	}
	opts = pool.Knobs.apply(opts).withDefaults()
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "pipeline", "revise")
	defer span.End()
	tr := newTracker(ctx, opts, start)
	tr.revised = true
	tr.attachSpans(ctx)

	cons = cons.normalize()
	if err := cons.validate(t.Catalog()); err != nil {
		return nil, err
	}
	tr.setPhase(PhaseRevise)
	if tr.journaling() {
		e := journal.Ev(journal.KindRevise)
		e.Reason = pool.Fingerprint
		tr.record(e)
	}

	w, err := workload.FromStatements(pool.Statements)
	if err != nil {
		return nil, fmt.Errorf("core: costed pool workload invalid: %w", err)
	}
	base := pool.Base
	if base == nil {
		base = catalog.NewConfiguration()
	} else {
		base = base.Clone()
		if base.TableParts == nil {
			base.TableParts = map[string]*catalog.PartitionScheme{}
		}
	}
	if err := base.Validate(t.Catalog()); err != nil {
		return nil, fmt.Errorf("core: base configuration invalid: %w", err)
	}

	// Statistics replay: re-issue the costing layer's creation batches in
	// order so a fresh backend reaches the statistics state the cached
	// atoms were computed under. On the original backend every batch is a
	// no-op (creation is idempotent), so StatsCreated counts only the work
	// this revision actually did.
	statsCreated := 0
	for _, b := range pool.StatBatches {
		created, err := ensureStatistics(t, tr, b.Requests, !pool.Knobs.DisableStatReduction)
		if err != nil {
			if stopping(err) {
				return nil, fmt.Errorf("core: session cancelled during statistics replay: %w", tr.doCtx().Err())
			}
			return nil, err
		}
		statsCreated += created
	}

	ev := newEvaluator(t, w)
	if opts.Derive.Enabled() {
		ev.enableDerive(opts.Derive)
		ev.drv.Restore(pool.Derive)
	}
	ev.warmStart(pool.Cache)
	ev.attach(tr)
	tr.eventsTotal = w.Len()
	tr.eventsTuned = w.Len() - ev.skippedEvents()
	span.SetArg("events", w.Len()).SetArg("pool", pool.Fingerprint)

	rec := &Recommendation{
		EventsTuned:    w.Len() - ev.skippedEvents(),
		SkippedEvents:  ev.skippedEvents(),
		TemplatesTuned: pool.TemplatesTuned,
		StatsCreated:   statsCreated,
		Compressed:     pool.Compressed,
		IngestedEvents: pool.IngestedEvents,
		IngestedBytes:  pool.IngestedBytes,
	}
	st := &costedState{
		ev: ev, tuned: w, base: base,
		cands: pool.Candidates, gains: pool.Gains, statBatches: pool.StatBatches,
		statsCreated: pool.StatsCreated, compressed: pool.Compressed,
		ingestEvents: pool.IngestedEvents, ingestBytes: pool.IngestedBytes,
	}
	rec, err = runSearch(t, st, tr, rec, cons, opts, start)
	if err != nil {
		return nil, err
	}
	if opts.PoolSink != nil && rec.StopReason == "" {
		opts.PoolSink(st.seal(opts))
	}
	return rec, nil
}
