package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/catalog"
	"repro/internal/derive"
	"repro/internal/optimizer"
	"repro/internal/sqlparser"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// planFingerprint reduces a recommendation to what derivation must preserve:
// every cost, structure, and per-statement report — but not WhatIfCalls,
// which derivation exists to reduce.
func planFingerprint(rec *Recommendation) string {
	s := fmt.Sprintf("base=%v cost=%v improvement=%v storage=%d stop=%q\n",
		rec.BaseCost, rec.Cost, rec.Improvement, rec.StorageBytes, rec.StopReason)
	for _, st := range rec.NewStructures {
		s += "new " + st.Key() + "\n"
	}
	for _, st := range rec.DroppedStructures {
		s += "drop " + st.Key() + "\n"
	}
	for _, r := range rec.Reports {
		s += fmt.Sprintf("report %q before=%v after=%v used=%v\n", r.SQL, r.CostBefore, r.CostAfter, r.UsedStructures)
	}
	return s
}

// TestDeriveModeEquivalence runs the full advisor over a mixed workload
// (selective lookups, aggregations, a join, an update) with derivation off,
// on, and verifying, each at parallelism 1 and 4. Every mode and level must
// produce the identical recommendation; within a mode the what-if call count
// must not depend on parallelism; and derivation must actually cut calls.
func TestDeriveModeEquivalence(t *testing.T) {
	type leg struct {
		mode derive.Mode
		par  int
	}
	legs := []leg{
		{derive.Off, 1}, {derive.Off, 4},
		{derive.On, 1}, {derive.On, 4},
		{derive.Verify, 1}, {derive.Verify, 4},
	}
	prints := map[leg]string{}
	calls := map[leg]int64{}
	derived := map[leg]int64{}
	for _, l := range legs {
		s := testServer(t)
		rec, err := Tune(s, parallelWorkload(t), Options{Parallelism: l.par, Derive: l.mode})
		if err != nil {
			t.Fatalf("%v/P%d: %v", l.mode, l.par, err)
		}
		prints[l] = planFingerprint(rec)
		calls[l] = rec.WhatIfCalls
		derived[l] = rec.DerivedEvals
	}
	ref := prints[legs[0]]
	for _, l := range legs[1:] {
		if prints[l] != ref {
			t.Errorf("recommendation drifts under %v/P%d:\n--- off/P1 ---\n%s--- %v/P%d ---\n%s",
				l.mode, l.par, ref, l.mode, l.par, prints[l])
		}
	}
	for _, m := range []derive.Mode{derive.Off, derive.On, derive.Verify} {
		if calls[leg{m, 1}] != calls[leg{m, 4}] {
			t.Errorf("%v: WhatIfCalls depends on parallelism: P1=%d P4=%d", m, calls[leg{m, 1}], calls[leg{m, 4}])
		}
	}
	if calls[leg{derive.On, 1}] >= calls[leg{derive.Off, 1}] {
		t.Errorf("derivation must reduce what-if calls: on=%d off=%d", calls[leg{derive.On, 1}], calls[leg{derive.Off, 1}])
	}
	if derived[leg{derive.On, 1}] == 0 || derived[leg{derive.Verify, 1}] == 0 {
		t.Error("DerivedEvals must be > 0 with derivation enabled")
	}
	if derived[leg{derive.Off, 1}] != 0 {
		t.Error("DerivedEvals must be 0 with derivation off")
	}
}

// TestDeriveMatchesRealCostsOnRandomConfigs is the equivalence property at
// the evaluator level: over seeded-random configurations drawn from a pool
// of indexes and views, every derived (cost, used) pair equals the pair a
// derivation-free evaluator computes with real optimizer calls — exactly,
// not within a tolerance. The workload mixes single-scope statements with
// multi-scope join templates (selective join, grouped join, ordered join)
// so both flat replay and composed join-skeleton replay are exercised, and
// the pool includes a grouped multi-table view that substitutes for the
// grouped join.
func TestDeriveMatchesRealCostsOnRandomConfigs(t *testing.T) {
	s := testServer(t)
	w := workload.MustNew(
		"SELECT id FROM t WHERE x = 42",
		"SELECT a, COUNT(*) FROM t WHERE x < 100 GROUP BY a",
		"SELECT SUM(amt) FROM t WHERE a = 7",
		"SELECT id FROM t WHERE amt > 900 ORDER BY amt",
		"SELECT t.id, d.grp FROM t, d WHERE t.d_id = d.d_id AND d.grp = 3",
		"SELECT t.id, d.name FROM t, d WHERE t.d_id = d.d_id AND t.x = 42",
		"SELECT d.grp, COUNT(*) FROM t, d WHERE t.d_id = d.d_id GROUP BY d.grp",
		"SELECT t.id FROM t, d WHERE t.d_id = d.d_id AND d.grp = 5 ORDER BY t.amt",
		"UPDATE t SET amt = 0 WHERE id = 17",
	)
	pool := []catalog.Structure{
		{Index: catalog.NewIndex("t", "x")},
		{Index: catalog.NewIndex("t", "x", "a")},
		{Index: catalog.NewIndex("t", "a").WithInclude("amt")},
		{Index: catalog.NewIndex("t", "amt").WithInclude("id")},
		{Index: catalog.NewIndex("t", "d_id")},
		{Index: catalog.NewIndex("d", "d_id").WithInclude("grp")},
		{Index: catalog.NewIndex("d", "grp").WithInclude("d_id", "name")},
		{View: catalog.NewMaterializedView(
			[]string{"t"}, nil, nil,
			[]catalog.ColRef{catalog.NewColRef("t", "a")},
			[]catalog.Agg{{Func: "COUNT"}},
			100,
		)},
		{View: catalog.NewMaterializedView(
			[]string{"t", "d"},
			[]catalog.JoinPred{{Left: catalog.NewColRef("t", "d_id"), Right: catalog.NewColRef("d", "d_id")}},
			nil,
			[]catalog.ColRef{catalog.NewColRef("d", "grp")},
			[]catalog.Agg{{Func: "COUNT"}},
			20,
		)},
	}

	evOn := newEvaluator(s, w)
	evOn.enableDerive(derive.On)
	evOn.setDerivePool(pool)
	evOff := newEvaluator(s, w)

	rnd := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 150; trial++ {
		cfg := catalog.NewConfiguration()
		for _, st := range pool {
			if rnd.Intn(2) == 1 {
				st.ApplyTo(cfg)
			}
		}
		for i := range w.Events {
			cOn, uOn, err := evOn.eventCostByIndex(i, cfg)
			if err != nil {
				t.Fatalf("trial %d event %d (derive on): %v", trial, i, err)
			}
			cOff, uOff, err := evOff.eventCostByIndex(i, cfg)
			if err != nil {
				t.Fatalf("trial %d event %d (derive off): %v", trial, i, err)
			}
			if cOn != cOff {
				t.Fatalf("trial %d event %d: derived cost %v != real cost %v", trial, i, cOn, cOff)
			}
			if strings.Join(uOn, ",") != strings.Join(uOff, ",") {
				t.Fatalf("trial %d event %d: derived used %v != real used %v", trial, i, uOn, uOff)
			}
		}
	}
	if evOn.drv.Derivations() == 0 {
		t.Fatal("no derivations happened; the property test is vacuous")
	}
	if evOn.calls.Load() >= evOff.calls.Load() {
		t.Fatalf("derivation must cut real calls: on=%d off=%d", evOn.calls.Load(), evOff.calls.Load())
	}
}

// altCountingTuner counts every what-if optimization the backend actually
// serves, including skeleton calls, to pin session-exact call accounting.
type altCountingTuner struct {
	*whatif.Server
	served atomic.Int64
}

func (a *altCountingTuner) WhatIfCost(stmt sqlparser.Statement, cfg *catalog.Configuration) (float64, []string, error) {
	a.served.Add(1)
	return a.Server.WhatIfCost(stmt, cfg)
}

func (a *altCountingTuner) WhatIfAlternativesCost(stmt sqlparser.Statement, cfg *catalog.Configuration) (float64, []string, *optimizer.Alternatives, error) {
	a.served.Add(1)
	return a.Server.WhatIfAlternativesCost(stmt, cfg)
}

// TestDeriveCallAccountingSessionExact: with derivation on,
// Recommendation.WhatIfCalls still equals the number of optimizations the
// backend served — derived evaluations are not calls and must not be
// counted, and skeleton calls count once like any other call.
func TestDeriveCallAccountingSessionExact(t *testing.T) {
	a := &altCountingTuner{Server: testServer(t)}
	rec, err := Tune(a, parallelWorkload(t), Options{Parallelism: 4, Derive: derive.On})
	if err != nil {
		t.Fatal(err)
	}
	if rec.WhatIfCalls != a.served.Load() {
		t.Fatalf("rec.WhatIfCalls = %d, backend served %d", rec.WhatIfCalls, a.served.Load())
	}
	if rec.DerivedEvals == 0 {
		t.Fatal("expected derived evaluations")
	}
}

// corruptAltTuner doubles every end-to-end cost in the skeletons it returns,
// simulating a backend whose decomposition disagrees with its optimizer.
type corruptAltTuner struct {
	*whatif.Server
}

func (c *corruptAltTuner) WhatIfAlternativesCost(stmt sqlparser.Statement, cfg *catalog.Configuration) (float64, []string, *optimizer.Alternatives, error) {
	cost, used, alts, err := c.Server.WhatIfAlternativesCost(stmt, cfg)
	if alts != nil {
		for i := range alts.Components {
			alts.Components[i].Final *= 2
		}
	}
	return cost, used, alts, err
}

// TestDeriveVerifyCatchesBadSkeleton: verify mode must fail the session when
// a derived cost diverges from the real optimizer's answer beyond
// derive.VerifyTolerance.
func TestDeriveVerifyCatchesBadSkeleton(t *testing.T) {
	c := &corruptAltTuner{Server: testServer(t)}
	w := workload.MustNew(
		"SELECT id FROM t WHERE x = 42",
		"SELECT a, COUNT(*) FROM t WHERE x < 100 GROUP BY a",
	)
	_, err := Tune(c, w, Options{Derive: derive.Verify})
	if err == nil {
		t.Fatal("verify mode must reject a skeleton that disagrees with the optimizer")
	}
	if !strings.Contains(err.Error(), "verify mismatch") {
		t.Fatalf("expected a verify mismatch error, got: %v", err)
	}
}

// corruptJoinTuner rescales every per-scope access-path cost inside the
// composed join skeletons it returns, leaving single-scope skeletons intact
// — the join analogue of corruptAltTuner.
type corruptJoinTuner struct {
	*whatif.Server
}

func (c *corruptJoinTuner) WhatIfAlternativesCost(stmt sqlparser.Statement, cfg *catalog.Configuration) (float64, []string, *optimizer.Alternatives, error) {
	cost, used, alts, err := c.Server.WhatIfAlternativesCost(stmt, cfg)
	if alts != nil && alts.Join != nil {
		for i := range alts.Join.Scopes {
			for k := range alts.Join.Scopes[i].Alts {
				alts.Join.Scopes[i].Alts[k].Pre *= 2
			}
		}
	}
	return cost, used, alts, err
}

// TestDeriveVerifyCatchesBadJoinSkeleton: a corrupted join skeleton must be
// caught the same way a corrupted flat skeleton is — replayed join-plan
// arithmetic that disagrees with the real optimizer fails the session in
// verify mode.
func TestDeriveVerifyCatchesBadJoinSkeleton(t *testing.T) {
	c := &corruptJoinTuner{Server: testServer(t)}
	w := workload.MustNew(
		"SELECT t.id, d.grp FROM t, d WHERE t.d_id = d.d_id AND d.grp = 3",
		"SELECT d.grp, COUNT(*) FROM t, d WHERE t.d_id = d.d_id GROUP BY d.grp",
	)
	_, err := Tune(c, w, Options{Derive: derive.Verify})
	if err == nil {
		t.Fatal("verify mode must reject a join skeleton that disagrees with the optimizer")
	}
	if !strings.Contains(err.Error(), "verify mismatch") {
		t.Fatalf("expected a verify mismatch error, got: %v", err)
	}
}
