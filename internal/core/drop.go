package core

import (
	"repro/internal/catalog"
)

// greedyDrop removes existing structures whose maintenance cost outweighs
// their benefit for the workload: repeatedly drop the structure whose
// removal lowers the workload cost most, until nothing improves. Constraint
// structures are never considered. Returns the reduced configuration and
// the drops in order.
func greedyDrop(ev *evaluator, base *catalog.Configuration) (*catalog.Configuration, []catalog.Structure, error) {
	cur := base.Clone()
	curCost, err := ev.configCost(cur)
	if err != nil {
		return nil, nil, err
	}
	var dropped []catalog.Structure
	for {
		type removal struct {
			cfg  *catalog.Configuration
			cost float64
			s    catalog.Structure
		}
		var best *removal
		consider := func(cfg *catalog.Configuration, s catalog.Structure) error {
			cost, err := ev.configCost(cfg)
			if err != nil {
				return err
			}
			if best == nil || cost < best.cost {
				best = &removal{cfg: cfg, cost: cost, s: s}
			}
			return nil
		}
		for i, ix := range cur.Indexes {
			if ix.FromConstraint {
				continue
			}
			cfg := cur.Clone()
			cfg.Indexes = append(cfg.Indexes[:i:i], cfg.Indexes[i+1:]...)
			if err := consider(cfg, catalog.Structure{Index: ix}); err != nil {
				return nil, nil, err
			}
		}
		for i, v := range cur.Views {
			cfg := cur.Clone()
			cfg.Views = append(cfg.Views[:i:i], cfg.Views[i+1:]...)
			if err := consider(cfg, catalog.Structure{View: v}); err != nil {
				return nil, nil, err
			}
		}
		for table, p := range cur.TableParts {
			cfg := cur.Clone()
			cfg.SetTablePartitioning(table, nil)
			if err := consider(cfg, catalog.Structure{PartTable: table, Part: p}); err != nil {
				return nil, nil, err
			}
		}
		if best == nil || best.cost >= curCost {
			return cur, dropped, nil
		}
		cur, curCost = best.cfg, best.cost
		dropped = append(dropped, best.s)
	}
}
