package core

import (
	"sort"

	"repro/internal/catalog"
	"repro/internal/journal"
)

// greedyDrop removes existing structures whose maintenance cost outweighs
// their benefit for the workload: repeatedly drop the structure whose
// removal lowers the workload cost most, until nothing improves. Constraint
// structures — and any structure whose key is pinned by the session's
// Constraints — are never considered. Returns the reduced configuration and
// the drops in order.
//
// Each round's removal frontier is enumerated in a fixed order — indexes,
// views, then table partitionings by sorted table name (a map iteration
// would make drop order, and with it the whole session, nondeterministic) —
// costed in parallel, and reduced sequentially in that order.
func greedyDrop(ev *evaluator, base *catalog.Configuration, pinned map[string]bool) (*catalog.Configuration, []catalog.Structure, error) {
	cur := base.Clone()
	curCost, err := ev.configCost(cur)
	if err != nil {
		return nil, nil, err
	}
	var dropped []catalog.Structure
	for {
		type removal struct {
			cfg  *catalog.Configuration
			cost float64
			err  error
			s    catalog.Structure
		}
		var frontier []*removal
		for i, ix := range cur.Indexes {
			if ix.FromConstraint || pinned[ix.Key()] {
				continue
			}
			cfg := cur.Clone()
			cfg.Indexes = append(cfg.Indexes[:i:i], cfg.Indexes[i+1:]...)
			frontier = append(frontier, &removal{cfg: cfg, s: catalog.Structure{Index: ix}})
		}
		for i, v := range cur.Views {
			if pinned[v.Key()] {
				continue
			}
			cfg := cur.Clone()
			cfg.Views = append(cfg.Views[:i:i], cfg.Views[i+1:]...)
			frontier = append(frontier, &removal{cfg: cfg, s: catalog.Structure{View: v}})
		}
		tables := make([]string, 0, len(cur.TableParts))
		for table := range cur.TableParts {
			tables = append(tables, table)
		}
		sort.Strings(tables)
		for _, table := range tables {
			s := catalog.Structure{PartTable: table, Part: cur.TableParts[table]}
			if pinned[s.Key()] {
				continue
			}
			cfg := cur.Clone()
			cfg.SetTablePartitioning(table, nil)
			frontier = append(frontier, &removal{cfg: cfg, s: s})
		}

		ev.pool().each(len(frontier), func(i int) {
			frontier[i].cost, frontier[i].err = ev.configCost(frontier[i].cfg)
		})
		var best *removal
		for _, r := range frontier {
			if r.err != nil {
				return nil, nil, r.err
			}
			if best == nil || r.cost < best.cost {
				best = r
			}
		}
		if best != nil && ev.tr.journaling() {
			// One event per round: the cheapest removal and whether it was
			// actually taken (the final round's best is a rejection).
			e := journal.Ev(journal.KindDrop)
			e.Structure = best.s.Key()
			e.Accepted = best.cost < curCost
			e.CostBefore, e.CostAfter = curCost, best.cost
			ev.tr.record(e)
		}
		if best == nil || best.cost >= curCost {
			return cur, dropped, nil
		}
		cur, curCost = best.cfg, best.cost
		dropped = append(dropped, best.s)
	}
}
