package core

import (
	"repro/internal/catalog"
)

// enumerate runs the Enumeration step (paper §2.2): a Greedy(m,k) search
// over the union of candidates (including merged ones) with the full
// workload cost function, under the storage budget and, when requested, the
// alignment constraint of §4.
//
// Alignment is enforced lazily: instead of eagerly populating the candidate
// pool with every (index × partitioning) aligned variant — which is
// unscalable — the search keeps the plain candidates and adapts them at
// application time: an index added to a configuration adopts the table's
// current partitioning, and choosing a partitioning for a table
// repartitions the indexes already chosen on it. This is the lazy
// introduction of alignment candidates described in [4].
//
// The evaluation loops run concurrently through greedySearch's worker-pool
// frontiers (the tracker carries the session pool); applyAligned stays safe
// there because it mutates only the candidate's own cloned configuration —
// Configuration.Clone is a deep copy — never shared state. The alignment
// replay below is bookkeeping over cached decisions and stays sequential.
func enumerate(ev *evaluator, tr *tracker, mandatory *catalog.Configuration, cands []catalog.Structure, opts Options) ([]catalog.Structure, error) {
	// The enumeration pool is the last candidate set of the session; it
	// also serves the final configuration costing and the analysis reports.
	ev.setDerivePool(cands)
	cost := func(cfg *catalog.Configuration) (float64, error) { return ev.configCost(cfg) }
	g := greedyOptions{
		m: opts.GreedyM, k: opts.GreedyK,
		budget: opts.StorageBudget, cat: ev.t.Catalog(), tr: tr,
		onStep: func(c float64) { tr.observeCost(c) },
		scope:  "enumeration", query: -1,
	}

	if !opts.Aligned {
		return greedySearch(mandatory, cands, cost, g)
	}

	if opts.EagerAlignment {
		// Ablation mode: expand the pool with every aligned variant up
		// front and reject unaligned configurations during search.
		cands = expandAlignedVariants(cands)
		g.valid = func(cfg *catalog.Configuration) bool { return cfg.Aligned() }
		base := alignConfiguration(mandatory)
		return greedySearch(base, cands, cost, g)
	}

	// Lazy alignment.
	g.apply = applyAligned
	base := alignConfiguration(mandatory)
	chosen, err := greedySearch(base, cands, cost, g)
	if err != nil {
		return nil, err
	}
	// The chosen structures are re-applied by the caller with plain
	// ApplyTo; return their aligned forms by replaying the applications.
	cfg := base.Clone()
	var aligned []catalog.Structure
	for _, s := range chosen {
		before := snapshotKeys(cfg)
		applyAligned(cfg, s)
		for _, ns := range cfg.Structures() {
			if !before[ns.Key()] {
				aligned = append(aligned, ns)
			}
		}
	}
	// Replaying also surfaces repartitioned versions of earlier picks; the
	// final configuration is authoritative, so rebuild from it.
	final := cfg
	mandKeys := snapshotKeys(alignConfiguration(mandatory))
	aligned = aligned[:0]
	for _, s := range final.Structures() {
		if !mandKeys[s.Key()] {
			aligned = append(aligned, s)
		}
	}
	return aligned, nil
}

func snapshotKeys(cfg *catalog.Configuration) map[string]bool {
	out := map[string]bool{}
	for _, s := range cfg.Structures() {
		out[s.Key()] = true
	}
	return out
}

// applyAligned adds a structure maintaining the alignment invariant.
func applyAligned(cfg *catalog.Configuration, s catalog.Structure) bool {
	switch {
	case s.Index != nil:
		ix := s.Index.Clone()
		ix.Partitioning = cfg.TablePartitioning(ix.Table).Clone()
		return cfg.AddIndex(ix)
	case s.Part != nil:
		if cfg.TablePartitioning(s.PartTable).Same(s.Part) {
			return false
		}
		cfg.SetTablePartitioning(s.PartTable, s.Part.Clone())
		// Repartition every index already chosen on the table.
		for _, ix := range cfg.IndexesOn(s.PartTable) {
			ix.Partitioning = s.Part.Clone()
		}
		return true
	default:
		return s.ApplyTo(cfg)
	}
}

// alignConfiguration clones cfg with every index repartitioned to match its
// table (the mandatory part of the design must satisfy the constraint too).
func alignConfiguration(cfg *catalog.Configuration) *catalog.Configuration {
	out := cfg.Clone()
	for _, ix := range out.Indexes {
		ix.Partitioning = out.TablePartitioning(ix.Table).Clone()
	}
	return out
}

// expandAlignedVariants eagerly generates, for every (index candidate,
// partitioning candidate) pair on the same table, the partitioned variant of
// the index. The pool can grow multiplicatively — the cost the lazy scheme
// avoids.
func expandAlignedVariants(cands []catalog.Structure) []catalog.Structure {
	out := append([]catalog.Structure(nil), cands...)
	seen := map[string]bool{}
	for _, s := range cands {
		seen[s.Key()] = true
	}
	for _, p := range cands {
		if p.Part == nil {
			continue
		}
		for _, s := range cands {
			if s.Index == nil || s.Index.Table != p.PartTable {
				continue
			}
			v := s.Index.Clone()
			v.Partitioning = p.Part.Clone()
			st := catalog.Structure{Index: v}
			if !seen[st.Key()] {
				seen[st.Key()] = true
				out = append(out, st)
			}
		}
	}
	return out
}
