package core

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

// evaluator computes workload costs under configurations, caching per-event
// costs keyed by the subset of configuration structures that can possibly
// affect the event. Two configurations differing only in structures
// irrelevant to an event share the event's cached cost, which is what makes
// Greedy(m,k) over thousands of configurations affordable.
//
// The cache is concurrency-safe and single-flight: when several pool
// workers ask for the same key, the first becomes the leader and issues the
// one optimizer call while the rest wait on the entry's ready channel — so
// the what-if call count of a run is independent of its parallelism. The
// immutable per-event analysis (eventInfo) is precomputed at construction
// and only read afterwards.
type evaluator struct {
	t      Tuner
	events []*workload.Event
	infos  []*eventInfo

	mu    sync.Mutex
	cache map[string]*cacheEntry

	// tr, when set, carries the session's cancellation signal, progress
	// accounting, and worker pool; cache misses check it before reaching the
	// optimizer so a cancelled session stops within one what-if call per
	// worker.
	tr *tracker
	// calls counts the what-if optimizer calls this evaluator issued — the
	// session-exact figure reported in Recommendation.WhatIfCalls (a shared
	// server's global counter would mix concurrent sessions together). Only
	// a cache-miss leader increments it, so it also stays exact under
	// parallelism.
	calls atomic.Int64

	// Cache-behaviour counters (attach caches the registry series once so
	// the hot path never takes registry locks); all nil without metrics.
	mHits, mMisses, mCoalesced *obs.Counter
}

// cacheEntry is one single-flight cost slot. The leader that created the
// entry fills cost/used/err and then closes ready; concurrent readers of
// the same key block on ready instead of issuing a duplicate optimizer
// call. A failed entry is removed from the map before ready closes, so a
// later call (the finishing-mode retry after a cancelled search) computes
// it afresh.
type cacheEntry struct {
	ready chan struct{}
	cost  float64
	used  []string
	err   error
}

type eventInfo struct {
	q      *optimizer.QueryInfo
	tables map[string]bool
	isDML  bool
	target string // DML target table
	// refCols holds "table.column" for every predicate/join/group/order
	// column the statement touches; an index whose leading key column is
	// not among them (and which does not cover a scope) cannot change the
	// statement's plan, so it is irrelevant for caching purposes.
	refCols map[string]bool
	// required holds, per table, each scope's required column list for
	// covering checks (self-joins contribute several lists).
	required map[string][][]string
}

// coversAnyScope reports whether the index covers some scope of the event
// on its table.
func (info *eventInfo) coversAnyScope(ix *catalog.Index) bool {
	for _, req := range info.required[ix.Table] {
		if ix.Covers(req) {
			return true
		}
	}
	return false
}

func newEvaluator(t Tuner, w *workload.Workload) *evaluator {
	ev := &evaluator{t: t, events: w.Events, cache: map[string]*cacheEntry{}}
	for _, e := range w.Events {
		info := &eventInfo{tables: map[string]bool{}, refCols: map[string]bool{}, required: map[string][][]string{}}
		if q, err := optimizer.Analyze(t.Catalog(), e.Stmt); err == nil {
			info.q = q
			for _, s := range q.Scopes {
				info.tables[s.Table.Name] = true
				info.required[s.Table.Name] = append(info.required[s.Table.Name], s.Required)
			}
			if q.Kind != optimizer.KindSelect {
				info.isDML = true
				info.target = q.Scopes[0].Table.Name
			}
			for _, tc := range referencedColumns(q) {
				for _, c := range tc.cols {
					info.refCols[tc.table+"."+c] = true
				}
			}
		}
		ev.infos = append(ev.infos, info)
	}
	return ev
}

// attach binds the session tracker (cancellation, accounting, worker pool)
// and caches the cost-cache metric series. Entry points that predate
// TuneContext (TuneStaged) never attach one; the evaluator then runs
// sequentially with no metrics.
func (ev *evaluator) attach(tr *tracker) {
	ev.tr = tr
	if tr == nil {
		return
	}
	if tr.ckpt != nil {
		tr.ckpt.ev = ev
	}
	if tr.metrics == nil {
		return
	}
	const help = "What-if cost cache behaviour: served hits, leader misses (one optimizer call each), and waits coalesced onto another worker's in-flight call."
	ev.mHits = tr.metrics.Counter("dta_cost_cache_requests_total", help, "outcome", "hit")
	ev.mMisses = tr.metrics.Counter("dta_cost_cache_requests_total", help, "outcome", "miss")
	ev.mCoalesced = tr.metrics.Counter("dta_cost_cache_requests_total", help, "outcome", "coalesced")
}

// pool returns the session's worker pool (nil → sequential).
func (ev *evaluator) pool() *workerPool {
	if ev.tr == nil {
		return nil
	}
	return ev.tr.pool
}

// analyzed returns the analysis of event i (nil if the statement does not
// resolve against the catalog).
func (ev *evaluator) analyzed(i int) *optimizer.QueryInfo { return ev.infos[i].q }

// relevantKey builds the cache key component: the sorted keys of cfg
// structures that can affect the event.
func (ev *evaluator) relevantKey(info *eventInfo, cfg *catalog.Configuration) string {
	var keys []string
	for _, ix := range cfg.Indexes {
		if !info.tables[ix.Table] {
			continue
		}
		if !info.isDML {
			// A query plan can only change if the index is seekable on a
			// referenced column, covers a scope, or is clustered (the
			// clustered index is the table itself).
			if !ix.Clustered && !info.refCols[ix.Table+"."+ix.KeyColumns[0]] && !info.coversAnyScope(ix) {
				continue
			}
		}
		keys = append(keys, ix.Key())
	}
	for table, p := range cfg.TableParts {
		if !info.tables[table] {
			continue
		}
		// Partitioning affects query plans through elimination on a
		// referenced column, or by destroying a clustered index's output
		// order (the aligned clustered index is partitioned with the table).
		if !info.refCols[table+"."+p.Column] && cfg.ClusteredIndex(table) == nil {
			continue
		}
		keys = append(keys, "tp:"+table+"="+p.String())
	}
	for _, v := range cfg.Views {
		if info.isDML {
			if v.References(info.target) {
				keys = append(keys, v.Key())
			}
			continue
		}
		// A view can only answer a query over exactly its table set.
		if len(v.Tables) == len(info.tables) {
			all := true
			for _, tn := range v.Tables {
				if !info.tables[tn] {
					all = false
					break
				}
			}
			if all {
				keys = append(keys, v.Key())
			}
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

func (ev *evaluator) eventCostByIndex(i int, cfg *catalog.Configuration) (float64, []string, error) {
	if ev.infos[i].q == nil {
		// The statement does not resolve against the catalog (e.g. it
		// references objects of a database not being tuned); it is skipped
		// rather than failing the whole tuning session.
		return 0, nil, nil
	}
	key := itoa(i) + "\x00" + ev.relevantKey(ev.infos[i], cfg)
	ev.mu.Lock()
	if ce, ok := ev.cache[key]; ok {
		ev.mu.Unlock()
		select {
		case <-ce.ready:
			ev.count(ev.mHits)
		default:
			// Another worker is mid-flight on this key: wait for its result
			// instead of issuing a duplicate optimizer call.
			ev.count(ev.mCoalesced)
			<-ce.ready
		}
		return ce.cost, ce.used, ce.err
	}
	ce := &cacheEntry{ready: make(chan struct{})}
	ev.cache[key] = ce
	ev.mu.Unlock()

	// Leader path: this goroutine owns the key and issues the one call.
	fail := func(err error) (float64, []string, error) {
		ce.err = err
		ev.mu.Lock()
		delete(ev.cache, key)
		ev.mu.Unlock()
		close(ce.ready)
		return 0, nil, err
	}
	if ev.tr.ctxStopped() {
		return fail(errStopped)
	}
	ev.count(ev.mMisses)
	_, sp := obs.StartSpan(ev.tr.spanCtx(), "whatif", "what-if")
	c, used, err := ev.whatIfCall(i, cfg)
	if err != nil {
		sp.SetArg("event", i).SetArg("error", err.Error()).End()
		if ev.tr.ctxStopped() {
			// Cancelled (or already degraded) mid-retry: wind down without
			// charging the failure to the backend.
			return fail(errStopped)
		}
		if !ev.tr.critical() {
			// A call that failed every retry during the search proper
			// degrades the session — the best-so-far design is still worth
			// returning — instead of failing it outright.
			ev.tr.degrade()
			return fail(errStopped)
		}
		return fail(err)
	}
	sp.SetArg("event", i).SetArg("cost", c).End()
	ce.cost, ce.used = c, used
	close(ce.ready)
	return c, used, nil
}

// whatIfCall issues a cache-miss leader's optimizer call under the session's
// retry policy and fault injector. Every attempt — retries included — is
// charged to the session's what-if accounting (ev.calls and the tracker),
// feeds the circuit breaker, and increments dta_retries_total, so the
// reported call count reflects the real load placed on the backend.
func (ev *evaluator) whatIfCall(i int, cfg *catalog.Configuration) (float64, []string, error) {
	type res struct {
		cost float64
		used []string
	}
	tr := ev.tr
	r, err := fault.Do(tr.doCtx(), tr.retryPolicy(), func() (res, error) {
		ev.calls.Add(1)
		tr.countCall()
		if err := tr.inject(fault.SiteWhatIf); err != nil {
			return res{}, err
		}
		c, used, err := ev.t.WhatIfCost(ev.events[i].Stmt, cfg)
		return res{cost: c, used: used}, err
	}, func(_ int, err error) {
		tr.attemptDone(fault.SiteWhatIf, err)
	})
	return r.cost, r.used, err
}

// count increments a cached cache-behaviour counter (nil without metrics).
func (ev *evaluator) count(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// skippedEvents counts workload events that could not be analyzed against
// the catalog and are therefore excluded from tuning.
func (ev *evaluator) skippedEvents() int {
	n := 0
	for _, info := range ev.infos {
		if info.q == nil {
			n++
		}
	}
	return n
}

// configCost returns the weighted workload cost under cfg. The per-event
// costs are independent, so they are evaluated on the worker pool; the sum
// is then folded sequentially in event order, because float addition is not
// associative and the total must not depend on scheduling.
func (ev *evaluator) configCost(cfg *catalog.Configuration) (float64, error) {
	n := len(ev.events)
	costs := make([]float64, n)
	errs := make([]error, n)
	ev.pool().each(n, func(i int) {
		costs[i], _, errs[i] = ev.eventCostByIndex(i, cfg)
	})
	var total float64
	for i, e := range ev.events {
		if errs[i] != nil {
			return 0, errs[i]
		}
		total += e.Weight * costs[i]
	}
	return total, nil
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	neg := i < 0
	if neg {
		i = -i
	}
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		b[pos] = '-'
	}
	return string(b[pos:])
}
