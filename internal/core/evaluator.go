package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/derive"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

// evaluator computes workload costs under configurations, caching per-event
// costs keyed by the subset of configuration structures that can possibly
// affect the event. Two configurations differing only in structures
// irrelevant to an event share the event's cached cost, which is what makes
// Greedy(m,k) over thousands of configurations affordable.
//
// The cache is concurrency-safe and single-flight: when several pool
// workers ask for the same key, the first becomes the leader and issues the
// one optimizer call while the rest wait on the entry's ready channel — so
// the what-if call count of a run is independent of its parallelism. The
// immutable per-event analysis (eventInfo) is precomputed at construction
// and only read afterwards.
type evaluator struct {
	t      Tuner
	events []*workload.Event
	infos  []*eventInfo

	mu    sync.Mutex
	cache map[string]*cacheEntry

	// tr, when set, carries the session's cancellation signal, progress
	// accounting, and worker pool; cache misses check it before reaching the
	// optimizer so a cancelled session stops within one what-if call per
	// worker.
	tr *tracker
	// calls counts the what-if optimizer calls this evaluator issued — the
	// session-exact figure reported in Recommendation.WhatIfCalls (a shared
	// server's global counter would mix concurrent sessions together). Only
	// a cache-miss leader increments it, so it also stays exact under
	// parallelism.
	calls atomic.Int64

	// drv, when non-nil, is the session's cost-derivation engine
	// (Options.Derive): cache-miss leaders consult it before reaching the
	// optimizer, and every successful real call feeds it a plan fact.
	drv *derive.Engine

	// weights, when non-nil, overrides each event's workload weight in
	// configCost's fold (Constraints.SliceWeights). Per-event costs — and
	// therefore cache keys, derive facts, and call counts — never depend
	// on it; only the sequential weighted sum does, which is what lets a
	// revision reweight workload slices without a single new optimizer
	// call. Written only between parallel sections.
	weights []float64

	// Cache-behaviour counters (attach caches the registry series once so
	// the hot path never takes registry locks); all nil without metrics.
	mHits, mMisses, mCoalesced, mDerived *obs.Counter
}

// cacheEntry is one single-flight cost slot. The leader that created the
// entry fills cost/used/err and then closes ready; concurrent readers of
// the same key block on ready instead of issuing a duplicate optimizer
// call. A failed entry is removed from the map before ready closes, so a
// later call (the finishing-mode retry after a cancelled search) computes
// it afresh.
type cacheEntry struct {
	ready chan struct{}
	cost  float64
	used  []string
	err   error
}

type eventInfo struct {
	q      *optimizer.QueryInfo
	tables map[string]bool
	isDML  bool
	target string // DML target table
	// refCols holds "table.column" for every predicate/join/group/order
	// column the statement touches; an index whose leading key column is
	// not among them (and which does not cover a scope) cannot change the
	// statement's plan, so it is irrelevant for caching purposes.
	refCols map[string]bool
	// required holds, per table, each scope's required column list for
	// covering checks (self-joins contribute several lists).
	required map[string][][]string
}

// coversAnyScope reports whether the index covers some scope of the event
// on its table.
func (info *eventInfo) coversAnyScope(ix *catalog.Index) bool {
	for _, req := range info.required[ix.Table] {
		if ix.Covers(req) {
			return true
		}
	}
	return false
}

func newEvaluator(t Tuner, w *workload.Workload) *evaluator {
	ev := &evaluator{t: t, events: w.Events, cache: map[string]*cacheEntry{}}
	for _, e := range w.Events {
		info := &eventInfo{tables: map[string]bool{}, refCols: map[string]bool{}, required: map[string][][]string{}}
		if q, err := optimizer.Analyze(t.Catalog(), e.Stmt); err == nil {
			info.q = q
			for _, s := range q.Scopes {
				info.tables[s.Table.Name] = true
				info.required[s.Table.Name] = append(info.required[s.Table.Name], s.Required)
			}
			if q.Kind != optimizer.KindSelect {
				info.isDML = true
				info.target = q.Scopes[0].Table.Name
			}
			for _, tc := range referencedColumns(q) {
				for _, c := range tc.cols {
					info.refCols[tc.table+"."+c] = true
				}
			}
		}
		ev.infos = append(ev.infos, info)
	}
	return ev
}

// attach binds the session tracker (cancellation, accounting, worker pool)
// and caches the cost-cache metric series. Entry points that predate
// TuneContext (TuneStaged) never attach one; the evaluator then runs
// sequentially with no metrics.
func (ev *evaluator) attach(tr *tracker) {
	ev.tr = tr
	if tr == nil {
		return
	}
	if tr.ckpt != nil {
		tr.ckpt.ev = ev
	}
	if ev.drv != nil {
		// The derivation engine journals its per-evaluation fallbacks and
		// feeds the live Progress breakdown through the tracker.
		ev.drv.SetJournal(tr.jnl)
		tr.deriveStats = ev.drv.Stats
	}
	if tr.metrics == nil {
		return
	}
	const help = "What-if cost cache behaviour: served hits, leader misses (one optimizer call each), waits coalesced onto another worker's in-flight call, and misses answered by cost derivation (no optimizer call)."
	ev.mHits = tr.metrics.Counter("dta_cost_cache_requests_total", help, "outcome", "hit")
	ev.mMisses = tr.metrics.Counter("dta_cost_cache_requests_total", help, "outcome", "miss")
	ev.mCoalesced = tr.metrics.Counter("dta_cost_cache_requests_total", help, "outcome", "coalesced")
	ev.mDerived = tr.metrics.Counter("dta_cost_cache_requests_total", help, "outcome", "derived")
	ev.drv.AttachMetrics(tr.metrics)
}

// pool returns the session's worker pool (nil → sequential).
func (ev *evaluator) pool() *workerPool {
	if ev.tr == nil {
		return nil
	}
	return ev.tr.pool
}

// analyzed returns the analysis of event i (nil if the statement does not
// resolve against the catalog).
func (ev *evaluator) analyzed(i int) *optimizer.QueryInfo { return ev.infos[i].q }

// preparedStructure is one configuration structure with the per-
// configuration half of the relevance computation done up front: the
// canonical key (built once per configuration instead of once per event),
// the "table.column" probe string the refCols test needs, and — for
// partitionings — whether the table carries a clustered index.
type preparedStructure struct {
	keyed derive.Keyed
	table string // owning table; "" for views
	probe string // refCols probe: leading key column / partitioning column
	ix    *catalog.Index
	view  *catalog.MaterializedView
	part  bool // partitioning record
	// partClustered: the table has a clustered index in this configuration,
	// so its partitioning affects any event touching the table.
	partClustered bool
}

// preparedConfig is a configuration with its structures rendered into
// pre-sorted preparedStructure records. The per-event relevance filter —
// the innermost loop of every Greedy(m,k) frontier — then walks the records
// without building a key string, concatenating a probe, or sorting: a
// filtered subsequence of a key-sorted slice is itself key-sorted.
// configCost prepares its configuration once and shares it, read-only,
// across all events and worker goroutines.
type preparedConfig struct {
	cfg  *catalog.Configuration
	recs []preparedStructure
}

func (ev *evaluator) prepareConfig(cfg *catalog.Configuration) *preparedConfig {
	pc := &preparedConfig{cfg: cfg}
	pc.recs = make([]preparedStructure, 0, len(cfg.Indexes)+len(cfg.TableParts)+len(cfg.Views))
	for _, ix := range cfg.Indexes {
		pc.recs = append(pc.recs, preparedStructure{
			keyed: derive.Keyed{Key: ix.Key(), Structure: catalog.Structure{Index: ix}},
			table: ix.Table,
			probe: ix.Table + "." + ix.KeyColumns[0],
			ix:    ix,
		})
	}
	for table, p := range cfg.TableParts {
		pc.recs = append(pc.recs, preparedStructure{
			keyed:         derive.Keyed{Key: "tp:" + table + "=" + p.String(), Structure: catalog.Structure{PartTable: table, Part: p}},
			table:         table,
			probe:         table + "." + p.Column,
			part:          true,
			partClustered: cfg.ClusteredIndex(table) != nil,
		})
	}
	for _, v := range cfg.Views {
		pc.recs = append(pc.recs, preparedStructure{
			keyed: derive.Keyed{Key: v.Key(), Structure: catalog.Structure{View: v}},
			view:  v,
		})
	}
	sort.Slice(pc.recs, func(a, b int) bool { return pc.recs[a].keyed.Key < pc.recs[b].keyed.Key })
	return pc
}

// relevant returns the configuration structures that can affect the event,
// sorted by key — the set behind both the cost-cache key and the derivation
// engine's lattice nodes.
func (pc *preparedConfig) relevant(info *eventInfo) []derive.Keyed {
	var out []derive.Keyed
	for i := range pc.recs {
		r := &pc.recs[i]
		switch {
		case r.ix != nil:
			if !info.tables[r.table] {
				continue
			}
			// A query plan can only change if the index is seekable on a
			// referenced column, covers a scope, or is clustered (the
			// clustered index is the table itself). DML statements feel
			// every index on the target table through update overhead.
			if !info.isDML && !r.ix.Clustered && !info.refCols[r.probe] && !info.coversAnyScope(r.ix) {
				continue
			}
		case r.part:
			if !info.tables[r.table] {
				continue
			}
			// Partitioning affects query plans through elimination on a
			// referenced column, or by destroying a clustered index's output
			// order (the aligned clustered index is partitioned with the
			// table).
			if !info.refCols[r.probe] && !r.partClustered {
				continue
			}
		default:
			if info.isDML {
				if !r.view.References(info.target) {
					continue
				}
			} else if !info.viewRelevant(r.view) {
				continue
			}
		}
		out = append(out, r.keyed)
	}
	return out
}

// viewRelevant reports whether a view can answer the (SELECT) event: a view
// can only answer a query over exactly its table set.
func (info *eventInfo) viewRelevant(v *catalog.MaterializedView) bool {
	if len(v.Tables) != len(info.tables) {
		return false
	}
	for _, tn := range v.Tables {
		if !info.tables[tn] {
			return false
		}
	}
	return true
}

// additiveRelevant reports whether a candidate-pool structure is an additive
// plan alternative for this (SELECT) event — the filter behind the
// derivation engine's lattice tops. It mirrors relevantStructures' query
// branch for non-clustered indexes and views; clustered indexes and
// partitionings reshape base tables and are never pool-added to a lattice.
func (info *eventInfo) additiveRelevant(s catalog.Structure) bool {
	switch {
	case s.Index != nil:
		ix := s.Index
		if ix.Clustered || !info.tables[ix.Table] {
			return false
		}
		return info.refCols[ix.Table+"."+ix.KeyColumns[0]] || info.coversAnyScope(ix)
	case s.View != nil:
		return info.viewRelevant(s.View)
	default:
		return false
	}
}

// relevantKey builds the cache key component: the sorted keys of cfg
// structures that can affect the event.
func (ev *evaluator) relevantKey(rel []derive.Keyed) string {
	var b strings.Builder
	for i, k := range rel {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(k.Key)
	}
	return b.String()
}

// eventCostByIndex evaluates one event under cfg, preparing the
// configuration on the spot. Loops that evaluate many events under the same
// configuration should prepare once and call eventCost directly.
func (ev *evaluator) eventCostByIndex(i int, cfg *catalog.Configuration) (float64, []string, error) {
	return ev.eventCost(i, ev.prepareConfig(cfg))
}

func (ev *evaluator) eventCost(i int, pc *preparedConfig) (float64, []string, error) {
	info := ev.infos[i]
	if info.q == nil {
		// The statement does not resolve against the catalog (e.g. it
		// references objects of a database not being tuned); it is skipped
		// rather than failing the whole tuning session.
		return 0, nil, nil
	}
	cfg := pc.cfg
	rel := pc.relevant(info)
	key := itoa(i) + "\x00" + ev.relevantKey(rel)
	ev.mu.Lock()
	if ce, ok := ev.cache[key]; ok {
		ev.mu.Unlock()
		select {
		case <-ce.ready:
			ev.count(ev.mHits)
		default:
			// Another worker is mid-flight on this key: wait for its result
			// instead of issuing a duplicate optimizer call.
			ev.count(ev.mCoalesced)
			<-ce.ready
		}
		return ce.cost, ce.used, ce.err
	}
	ce := &cacheEntry{ready: make(chan struct{})}
	ev.cache[key] = ce
	ev.mu.Unlock()

	// Leader path: this goroutine owns the key and issues the one call.
	fail := func(err error) (float64, []string, error) {
		ce.err = err
		ev.mu.Lock()
		delete(ev.cache, key)
		ev.mu.Unlock()
		close(ce.ready)
		return 0, nil, err
	}
	if ev.tr.ctxStopped() {
		return fail(errStopped)
	}
	if ev.drv != nil {
		if info.isDML {
			// Update overhead depends on the full index set — costs are not
			// plan-set monotone — so DML always takes the real call.
			ev.drv.FallbackDML(i)
		} else if res, ok := ev.drv.Resolve(i, len(info.q.Scopes) > 1, rel, info.additiveRelevant, func(node *catalog.Configuration, fresh bool) (float64, []string, error) {
			if fresh {
				return ev.freshNodeCost(i, node)
			}
			return ev.eventCostByIndex(i, node)
		}); ok {
			if err := ev.verifyDerived(i, cfg, res); err != nil {
				return fail(err)
			}
			// A derived answer is a fourth cache outcome: no optimizer call
			// happened, so neither ev.calls, the tracker's call accounting,
			// nor the circuit breaker hears about it.
			ev.count(ev.mDerived)
			ce.cost, ce.used = res.Cost, res.Used
			close(ce.ready)
			return ce.cost, ce.used, nil
		}
	}
	ev.count(ev.mMisses)
	_, sp := obs.StartSpan(ev.tr.spanCtx(), "whatif", "what-if")
	c, used, alts, err := ev.whatIfCall(i, cfg, ev.drv != nil && !info.isDML)
	if err != nil {
		sp.SetArg("event", i).SetArg("error", err.Error()).End()
		if ev.tr.ctxStopped() {
			// Cancelled (or already degraded) mid-retry: wind down without
			// charging the failure to the backend.
			return fail(errStopped)
		}
		if !ev.tr.critical() {
			// A call that failed every retry during the search proper
			// degrades the session — the best-so-far design is still worth
			// returning — instead of failing it outright.
			ev.tr.degrade()
			return fail(errStopped)
		}
		return fail(err)
	}
	sp.SetArg("event", i).SetArg("cost", c).End()
	if ev.drv != nil && !info.isDML {
		// Every successful real call doubles as an atomic plan fact other
		// configurations of this event can derive from; when the backend
		// returned a plan skeleton, the fact answers every sub-configuration
		// by selection replay.
		ev.drv.Record(i, rel, c, used, alts)
	}
	ce.cost, ce.used = c, used
	close(ce.ready)
	return c, used, nil
}

// freshNodeCost issues a current-epoch real call for a walk node whose
// normal cache entry predates the statistics epoch, without touching that
// entry: a derive-off evaluator would keep serving the stale first-touch
// cost for the node itself, and derivation must reproduce exactly that
// behaviour, so the repair result is visible only to the derive fact
// database. The call is single-flighted under a (event, epoch, node) key
// disjoint from normal cache keys, keeping repair call counts independent
// of parallelism.
func (ev *evaluator) freshNodeCost(i int, cfg *catalog.Configuration) (float64, []string, error) {
	pc := ev.prepareConfig(cfg)
	info := ev.infos[i]
	rel := pc.relevant(info)
	key := "fresh\x00" + itoa(i) + "\x00" + itoa(int(ev.drv.Epoch())) + "\x00" + ev.relevantKey(rel)
	ev.mu.Lock()
	if ce, ok := ev.cache[key]; ok {
		ev.mu.Unlock()
		<-ce.ready
		return ce.cost, ce.used, ce.err
	}
	ce := &cacheEntry{ready: make(chan struct{})}
	ev.cache[key] = ce
	ev.mu.Unlock()
	fail := func(err error) (float64, []string, error) {
		ce.err = err
		ev.mu.Lock()
		delete(ev.cache, key)
		ev.mu.Unlock()
		close(ce.ready)
		return 0, nil, err
	}
	if ev.tr.ctxStopped() {
		return fail(errStopped)
	}
	c, used, alts, err := ev.whatIfCall(i, pc.cfg, true)
	if err != nil {
		return fail(err)
	}
	ev.drv.Record(i, rel, c, used, alts)
	ce.cost, ce.used = c, used
	close(ce.ready)
	return c, used, nil
}

// enableDerive installs a cost-derivation engine (Options.Derive). Must be
// called before any evaluation so the fact database covers every real call.
func (ev *evaluator) enableDerive(mode derive.Mode) {
	ev.drv = derive.New(mode)
}

// setDerivePool hands the derivation engine the candidate pool of the
// search phase about to run; a no-op with derivation off.
func (ev *evaluator) setDerivePool(cands []catalog.Structure) {
	if ev.drv == nil {
		return
	}
	pool := make([]derive.Keyed, 0, len(cands))
	for _, s := range cands {
		pool = append(pool, derive.Keyed{Key: s.Key(), Structure: s})
	}
	ev.drv.SetPool(pool)
}

// bumpDeriveEpoch invalidates derivation facts after statistics creation; a
// no-op with derivation off.
func (ev *evaluator) bumpDeriveEpoch() { ev.drv.BumpEpoch() }

// verifyDerived cross-checks a derived cost against a real optimizer call
// (Mode Verify only). The cross-check call runs under the session's retry
// policy but outside its what-if accounting: it is diagnostic load, not
// part of producing the recommendation, so ev.calls, the tracker, and the
// circuit breaker stay untouched — dta_derive_verify_total records it. A
// cross-check the backend cannot answer (faults exhausted retries) is
// counted and skipped; a cost divergence beyond derive.VerifyTolerance
// fails the evaluation.
func (ev *evaluator) verifyDerived(i int, cfg *catalog.Configuration, res derive.Result) error {
	if ev.drv.Mode() != derive.Verify {
		return nil
	}
	tr := ev.tr
	real, err := fault.Do(tr.doCtx(), tr.retryPolicy(), func() (float64, error) {
		if err := tr.inject(fault.SiteWhatIf); err != nil {
			return 0, err
		}
		c, _, err := ev.t.WhatIfCost(ev.events[i].Stmt, cfg)
		return c, err
	}, nil)
	if err != nil {
		ev.drv.VerifyOutcome(false, err)
		return nil
	}
	diff := math.Abs(real - res.Cost)
	scale := math.Max(math.Abs(real), math.Abs(res.Cost))
	if diff > derive.VerifyTolerance*math.Max(scale, 1) {
		ev.drv.VerifyOutcome(false, nil)
		return fmt.Errorf("derive: verify mismatch on event %d: derived cost %.9g, real what-if cost %.9g", i, res.Cost, real)
	}
	ev.drv.VerifyOutcome(true, nil)
	return nil
}

// whatIfCall issues a cache-miss leader's optimizer call under the session's
// retry policy and fault injector. Every attempt — retries included — is
// charged to the session's what-if accounting (ev.calls and the tracker),
// feeds the circuit breaker, and increments dta_retries_total, so the
// reported call count reflects the real load placed on the backend. With
// wantAlts set and a backend that supports it, the same single call also
// returns the statement's plan skeleton for the derivation engine.
func (ev *evaluator) whatIfCall(i int, cfg *catalog.Configuration, wantAlts bool) (float64, []string, *optimizer.Alternatives, error) {
	type res struct {
		cost float64
		used []string
		alts *optimizer.Alternatives
	}
	at, haveAlts := ev.t.(AlternativesTuner)
	tr := ev.tr
	r, err := fault.Do(tr.doCtx(), tr.retryPolicy(), func() (res, error) {
		ev.calls.Add(1)
		tr.countCall()
		if err := tr.inject(fault.SiteWhatIf); err != nil {
			return res{}, err
		}
		if wantAlts && haveAlts {
			c, used, alts, err := at.WhatIfAlternativesCost(ev.events[i].Stmt, cfg)
			return res{cost: c, used: used, alts: alts}, err
		}
		c, used, err := ev.t.WhatIfCost(ev.events[i].Stmt, cfg)
		return res{cost: c, used: used}, err
	}, func(_ int, err error) {
		tr.attemptDone(fault.SiteWhatIf, err)
	})
	return r.cost, r.used, r.alts, err
}

// count increments a cached cache-behaviour counter (nil without metrics).
func (ev *evaluator) count(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// skippedEvents counts workload events that could not be analyzed against
// the catalog and are therefore excluded from tuning.
func (ev *evaluator) skippedEvents() int {
	n := 0
	for _, info := range ev.infos {
		if info.q == nil {
			n++
		}
	}
	return n
}

// configCost returns the weighted workload cost under cfg. The per-event
// costs are independent, so they are evaluated on the worker pool; the sum
// is then folded sequentially in event order, because float addition is not
// associative and the total must not depend on scheduling.
func (ev *evaluator) configCost(cfg *catalog.Configuration) (float64, error) {
	pc := ev.prepareConfig(cfg)
	n := len(ev.events)
	costs := make([]float64, n)
	errs := make([]error, n)
	ev.pool().each(n, func(i int) {
		costs[i], _, errs[i] = ev.eventCost(i, pc)
	})
	var total float64
	for i, e := range ev.events {
		if errs[i] != nil {
			return 0, errs[i]
		}
		total += ev.eventWeight(i, e) * costs[i]
	}
	return total, nil
}

// eventWeight returns event i's effective weight: its workload weight,
// scaled by the session's slice multiplier when one is set.
func (ev *evaluator) eventWeight(i int, e *workload.Event) float64 {
	if ev.weights != nil {
		return ev.weights[i]
	}
	return e.Weight
}

// applySliceWeights installs per-event effective weights from a
// template-signature → multiplier map (Constraints.SliceWeights). A nil or
// empty map clears the override. Must be called between parallel sections,
// before the search phase that should observe the new weights.
func (ev *evaluator) applySliceWeights(mult map[string]float64) {
	if len(mult) == 0 {
		ev.weights = nil
		return
	}
	ev.weights = make([]float64, len(ev.events))
	for i, e := range ev.events {
		w := e.Weight
		if m, ok := mult[e.Signature()]; ok {
			w *= m
		}
		ev.weights[i] = w
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	neg := i < 0
	if neg {
		i = -i
	}
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		b[pos] = '-'
	}
	return string(b[pos:])
}
