package core

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/journal"
	"repro/internal/obs"
)

// costFn evaluates a configuration's (workload or single-query) cost.
type costFn func(cfg *catalog.Configuration) (float64, error)

// applier adds a structure to a configuration; the default is plain
// Structure.ApplyTo, and the aligned search substitutes a lazy-alignment
// variant (paper §4). It reports whether the configuration changed.
type applier func(cfg *catalog.Configuration, s catalog.Structure) bool

// validFn rejects configurations the search may not consider (e.g. the
// eager-alignment ablation filters unaligned configurations).
type validFn func(cfg *catalog.Configuration) bool

// greedyOptions parameterizes one Greedy(m,k) search.
type greedyOptions struct {
	m, k   int
	budget int64 // extra storage allowed beyond base (0 = unlimited)
	cat    *catalog.Catalog
	apply  applier
	valid  validFn
	// tr carries the session's cancellation and time budget; the search
	// checks it between candidate evaluations and returns its best subset
	// so far when stopped (anytime behaviour).
	tr *tracker
	// onStep, when set, observes the best configuration's cost after each
	// completed greedy growth step (progress reporting).
	onStep func(cost float64)
	// minImprove is the minimum relative improvement a greedy step must
	// deliver to continue.
	minImprove float64
	// scope labels this search's decision-journal events ("query" for a
	// per-query candidate selection, "enumeration" for the global
	// search); empty means the search does not journal. query is the
	// workload event index for per-query searches (-1 otherwise).
	scope string
	query int
}

// frontierEval is one candidate's evaluation within a parallel frontier:
// the configuration grown by the candidate and its cost, or the evaluation
// error, or ok=false when the candidate did not apply (no change, over
// budget, invalid, or skipped because the session stopped).
type frontierEval struct {
	cfg  *catalog.Configuration
	cost float64
	err  error
	ok   bool
}

// evalFrontier clones base, applies, admits, and costs each listed
// candidate on the session's worker pool. Results come back indexed by
// candidate so callers can reduce them sequentially in candidate order —
// the property that makes a parallel sweep pick the same winner as a
// sequential one. It reports the worker count for observability.
func evalFrontier(o greedyOptions, base *catalog.Configuration, cands []catalog.Structure, fits func(*catalog.Configuration) bool, cost costFn) ([]frontierEval, int) {
	res := make([]frontierEval, len(cands))
	var pool *workerPool
	if o.tr != nil {
		pool = o.tr.pool
	}
	workers := pool.each(len(cands), func(i int) {
		if o.tr.stopped() {
			return
		}
		cfg := base.Clone()
		if !o.apply(cfg, cands[i]) {
			return
		}
		if !fits(cfg) || (o.valid != nil && !o.valid(cfg)) {
			return
		}
		c, err := cost(cfg)
		if err != nil {
			res[i] = frontierEval{err: err}
			return
		}
		res[i] = frontierEval{cfg: cfg, cost: c, ok: true}
	})
	if o.tr != nil && o.tr.metrics != nil && len(cands) > 0 {
		o.tr.metrics.Histogram("dta_greedy_frontier_size",
			"Candidate configurations evaluated per greedy frontier sweep.",
			obs.CountBuckets).Observe(float64(len(cands)))
		o.tr.metrics.Histogram("dta_pool_workers_used",
			"Workers participating in one parallel frontier sweep.",
			obs.CountBuckets).Observe(float64(workers))
	}
	return res, workers
}

// better reports whether a frontier candidate (cost c, structure s) beats
// the incumbent (cost bc, structure key bk, "" = none yet). The tie-break —
// lower cost first, then lexicographically smaller structure key — is
// applied at every parallelism level including 1, so parallel and
// sequential runs pick identical winners.
func better(c float64, s catalog.Structure, bc float64, bk string) bool {
	if c != bc {
		return c < bc
	}
	return bk != "" && s.Key() < bk
}

// greedySearch implements the Greedy(m,k) algorithm of [8] (paper §2.2):
// the optimal subset of at most m structures is found by exhaustive
// enumeration, then structures are added greedily up to k total, as long as
// cost improves and the storage budget holds. It returns the chosen
// structures (possibly none).
//
// Each frontier — the candidates considered at one seed-enumeration level
// or in one greedy growth step — is evaluated concurrently on the session's
// worker pool, then reduced sequentially in candidate order with a
// deterministic tie-break (cost, then structure key), so the chosen subset
// is independent of Options.Parallelism.
//
// The search is an anytime algorithm: when the session's tracker reports
// cancellation or an exhausted time budget — checked between candidate
// evaluations, and surfaced as errStopped from within a cost evaluation —
// the best subset found so far is returned with a nil error.
func greedySearch(base *catalog.Configuration, cands []catalog.Structure, cost costFn, o greedyOptions) ([]catalog.Structure, error) {
	if o.apply == nil {
		o.apply = func(cfg *catalog.Configuration, s catalog.Structure) bool { return s.ApplyTo(cfg) }
	}
	if o.m < 1 {
		o.m = 1
	}
	if o.k < o.m {
		o.k = o.m
	}
	if o.minImprove <= 0 {
		o.minImprove = 1e-4
	}
	baseCost, err := cost(base)
	if err != nil {
		if stopping(err) {
			return nil, nil // stopped before the search began: choose nothing
		}
		return nil, err
	}
	baseStorage := base.StorageBytes(o.cat)

	fits := func(cfg *catalog.Configuration) bool {
		if o.budget <= 0 {
			return true
		}
		return cfg.StorageBytes(o.cat)-baseStorage <= o.budget
	}
	expired := func() bool { return o.tr.stopped() }

	type state struct {
		chosen []catalog.Structure
		cfg    *catalog.Configuration
		cost   float64
	}
	best := state{cfg: base.Clone(), cost: baseCost}

	// Seed: exhaustively evaluate subsets of size ≤ m. Each enumeration
	// level's extensions are costed in parallel up front, then the fold —
	// best updates and recursion into each extension's subtree — runs
	// sequentially in candidate order, which is exactly the sequential DFS's
	// preorder update sequence (costs are deterministic, so prefetching them
	// concurrently changes nothing but wall-clock).
	var trySubset func(start int, cur state, size int) error
	trySubset = func(start int, cur state, size int) error {
		if size == o.m || expired() {
			return nil
		}
		res, _ := evalFrontier(o, cur.cfg, cands[start:], fits, cost)
		for j, r := range res {
			if expired() {
				return nil
			}
			if r.err != nil {
				return r.err
			}
			if !r.ok {
				continue
			}
			i := start + j
			next := state{
				chosen: append(append([]catalog.Structure(nil), cur.chosen...), cands[i]),
				cfg:    r.cfg,
				cost:   r.cost,
			}
			if r.cost < best.cost {
				best = next
			}
			if err := trySubset(i+1, next, size+1); err != nil {
				return err
			}
		}
		return nil
	}
	seedSpan, endSeed := o.tr.span("greedy", "greedy-seed")
	seedSpan.SetArg("m", o.m).SetArg("candidates", len(cands))
	err = trySubset(0, state{cfg: base.Clone(), cost: baseCost}, 0)
	endSeed()
	if o.scope != "" && o.tr.journaling() && len(best.chosen) > 0 {
		ev := journal.Ev(journal.KindSeed)
		ev.Scope, ev.Query = o.scope, o.query
		for _, s := range best.chosen {
			ev.Structures = append(ev.Structures, s.Key())
		}
		ev.Accepted = true
		ev.CostBefore, ev.CostAfter = baseCost, best.cost
		ev.Alternatives = len(cands)
		o.tr.record(ev)
	}
	if err != nil {
		if stopping(err) {
			return best.chosen, nil
		}
		return nil, err
	}

	// Greedy growth to k. Each growth step — one sweep over the candidate
	// pool picking the structure that lowers cost most — is a span, so a
	// timeline shows how the per-step what-if cost shrinks as the evaluator
	// cache warms up.
	usedKeys := map[string]bool{}
	for _, s := range best.chosen {
		usedKeys[s.Key()] = true
	}
	for step := 0; len(best.chosen) < o.k && !expired(); step++ {
		stepSpan, endStep := o.tr.span("greedy", "greedy-step")
		stepSpan.SetArg("step", step).SetArg("chosen", len(best.chosen))
		grew, err := func() (bool, error) {
			// One sweep over the candidate pool: evaluate the whole frontier
			// in parallel, then pick the winner sequentially in candidate
			// order (ties broken by structure key — see better).
			res, workers := evalFrontier(o, best.cfg, cands, fits, cost)
			stepSpan.SetArg("workers", workers)
			bestIdx := -1
			bestCost := math.Inf(1)
			bestKey := ""
			var bestCfg *catalog.Configuration
			// The runner-up — the structure the step would have taken had the
			// winner not existed — is tracked through the same deterministic
			// reduction purely for the decision journal.
			runnerCost := math.Inf(1)
			runnerKey := ""
			alternatives := 0
			for i, r := range res {
				if r.err != nil {
					return false, r.err
				}
				if !r.ok {
					continue
				}
				alternatives++
				if bestIdx < 0 || better(r.cost, cands[i], bestCost, bestKey) {
					runnerCost, runnerKey = bestCost, bestKey
					bestIdx, bestCost, bestCfg, bestKey = i, r.cost, r.cfg, cands[i].Key()
				} else if runnerKey == "" || better(r.cost, cands[i], runnerCost, runnerKey) {
					runnerCost, runnerKey = r.cost, cands[i].Key()
				}
			}
			if expired() {
				return false, nil
			}
			journalStep := func(accepted bool) {
				if o.scope == "" || !o.tr.journaling() || bestIdx < 0 {
					return
				}
				ev := journal.Ev(journal.KindStep)
				ev.Scope, ev.Query, ev.Step = o.scope, o.query, step
				ev.Structure = bestKey
				ev.Accepted = accepted
				ev.CostBefore, ev.CostAfter = best.cost, bestCost
				ev.Alternatives = alternatives
				if runnerKey != "" {
					ev.RunnerUp, ev.RunnerUpCost = runnerKey, runnerCost
				}
				o.tr.record(ev)
			}
			if bestIdx < 0 || bestCost >= best.cost*(1-o.minImprove) {
				journalStep(false)
				return false, nil
			}
			journalStep(true)
			usedKeys[cands[bestIdx].Key()] = true
			best = state{
				chosen: append(best.chosen, cands[bestIdx]),
				cfg:    bestCfg,
				cost:   bestCost,
			}
			stepSpan.SetArg("picked", cands[bestIdx].Key()).SetArg("cost", bestCost)
			if o.tr != nil && o.tr.metrics != nil {
				o.tr.metrics.Counter("dta_greedy_steps_total",
					"Completed Greedy(m,k) growth steps.").Inc()
			}
			if o.onStep != nil {
				o.onStep(best.cost)
			}
			return true, nil
		}()
		endStep()
		if err != nil {
			if stopping(err) {
				return best.chosen, nil
			}
			return nil, err
		}
		if !grew {
			break
		}
	}
	return best.chosen, nil
}
