package core

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

// ingestWorkload builds a templated trace-shaped workload over the test
// server's fact table.
func ingestWorkload(tb testing.TB, events int) *workload.Workload {
	tb.Helper()
	w := &workload.Workload{}
	for i := 0; i < events; i++ {
		var sql string
		if i%2 == 0 {
			sql = fmt.Sprintf("SELECT id FROM t WHERE x = %d", (i*37)%10000)
		} else {
			sql = fmt.Sprintf("SELECT amt FROM t WHERE a = %d", i%100)
		}
		if err := w.Add(sql, 1); err != nil {
			tb.Fatal(err)
		}
	}
	return w
}

func TestTunePreCompressedIngestMatchesBatchPath(t *testing.T) {
	const events = 200
	raw := ingestWorkload(t, events)

	// Batch path: the advisor compresses internally.
	batchRec, err := Tune(testServer(t), raw, Options{Features: FeatureIndexes, CompressWorkload: true, SkipReports: true})
	if err != nil {
		t.Fatal(err)
	}
	if !batchRec.Compressed {
		t.Fatal("batch path should have compressed")
	}

	// Streaming path: the same events go through the online compressor
	// first, and the advisor is told not to compress again.
	c := workload.NewCompressor(workload.CompressOptions{})
	for _, e := range raw.Events {
		if err := c.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	compressed := c.Workload()
	var snaps []Progress
	ingestRec, err := Tune(testServer(t), compressed, Options{
		Features:    FeatureIndexes,
		SkipReports: true,
		Ingest:      &IngestStats{Events: c.Events(), Bytes: 12345, Templates: c.Templates()},
		Progress:    func(p Progress) { snaps = append(snaps, p) },
	})
	if err != nil {
		t.Fatal(err)
	}

	if !ingestRec.Compressed {
		t.Fatal("ingest path must report Compressed (raw events > representatives)")
	}
	if ingestRec.IngestedEvents != events || ingestRec.IngestedBytes != 12345 {
		t.Fatalf("ingest counters not stamped: events=%d bytes=%d", ingestRec.IngestedEvents, ingestRec.IngestedBytes)
	}
	if len(snaps) == 0 || snaps[len(snaps)-1].IngestedEvents != events {
		t.Fatalf("progress snapshots must carry ingest volume, got %+v", snaps[len(snaps)-1])
	}

	// Same events in the same order through the same compressor: the two
	// paths tune identical workloads and must agree.
	if got, want := structureKeys(ingestRec), structureKeys(batchRec); got != want {
		t.Fatalf("paths disagree on structures:\ningest: %s\nbatch:  %s", got, want)
	}
	if ingestRec.Improvement != batchRec.Improvement {
		t.Fatalf("improvement drifted: ingest %.6f vs batch %.6f", ingestRec.Improvement, batchRec.Improvement)
	}
	if ingestRec.EventsTuned != batchRec.EventsTuned {
		t.Fatalf("events tuned drifted: %d vs %d", ingestRec.EventsTuned, batchRec.EventsTuned)
	}
}

// structureKeys renders a recommendation's new structures as one string.
func structureKeys(rec *Recommendation) string {
	s := ""
	for _, st := range rec.NewStructures {
		s += st.Key() + "\n"
	}
	return s
}

func TestTuneIngestSkipsRecompression(t *testing.T) {
	// A pre-compressed workload whose representatives carry folded weights:
	// if the advisor re-compressed it, TotalWeight of what it tunes would
	// still match but the tuned event count could shrink further and the
	// Compressed flag logic would double-count. Guard the observable: with
	// Ingest set and events == representatives, Compressed must be false.
	w := ingestWorkload(t, 8) // below any compression threshold
	rec, err := Tune(testServer(t), w, Options{
		Features:    FeatureIndexes,
		SkipReports: true,
		Ingest:      &IngestStats{Events: 8, Bytes: 100, Templates: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Compressed {
		t.Fatal("events == representatives means nothing folded; Compressed must be false")
	}
	if rec.EventsTuned != 8 {
		t.Fatalf("all 8 representatives must be tuned, got %d", rec.EventsTuned)
	}
}
