package core

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/demo"
	"repro/internal/journal"
)

// TestJournalingDeterminism is the observability contract: attaching a
// decision journal must not change the recommendation in any way — same
// structures, costs, stop reason, and exact what-if call count.
func TestJournalingDeterminism(t *testing.T) {
	w := parallelWorkload(t)

	plain, err := Tune(testServer(t), w, Options{})
	if err != nil {
		t.Fatal(err)
	}

	jnl := journal.New("test")
	ctx := journal.WithContext(context.Background(), jnl)
	journaled, err := TuneContext(ctx, testServer(t), w, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := fingerprint(journaled), fingerprint(plain); got != want {
		t.Fatalf("journaling changed the recommendation:\n--- journaled ---\n%s--- plain ---\n%s", got, want)
	}
	if jnl.Len() == 0 {
		t.Fatal("journal stayed empty; the pipeline emitted nothing")
	}
}

// TestJournalCoversDecisionPoints runs a workload that exercises every
// pipeline stage and checks each decision point left events of its kind.
func TestJournalCoversDecisionPoints(t *testing.T) {
	jnl := journal.New("test")
	ctx := journal.WithContext(context.Background(), jnl)
	rec, err := TuneContext(ctx, testServer(t), parallelWorkload(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.NewStructures) == 0 {
		t.Fatal("nothing recommended; the test exercises nothing")
	}
	for _, k := range []journal.Kind{
		journal.KindPhase, journal.KindQuery, journal.KindCandidate,
		journal.KindStep, journal.KindMerge,
	} {
		if n := len(jnl.Events(k)); n == 0 {
			t.Errorf("no %s events journaled", k)
		}
	}
	// Events must serialize cleanly (no Inf/NaN smuggled into costs).
	for _, e := range jnl.Events() {
		if _, err := json.Marshal(e); err != nil {
			t.Fatalf("event %+v does not marshal: %v", e, err)
		}
	}
}

// explainForRec reconstructs provenance for every recommended structure
// purely from the journal.
func explainForRec(rec *Recommendation, jnl *journal.Journal) *journal.Explanation {
	keys := make([]string, 0, len(rec.NewStructures))
	for _, s := range rec.NewStructures {
		keys = append(keys, s.Key())
	}
	return journal.Explain(jnl.Events(), keys)
}

// requireExplained asserts the acceptance criterion: every recommended
// structure's provenance is reconstructable from the journal alone —
// an admitting enumeration decision and at least one benefiting query.
func requireExplained(t *testing.T, name string, rec *Recommendation, jnl *journal.Journal) {
	t.Helper()
	if len(rec.NewStructures) == 0 {
		t.Fatalf("%s: no structures recommended; acceptance test exercises nothing", name)
	}
	if jnl.Dropped() != 0 {
		t.Fatalf("%s: journal dropped %d events on a normal-size workload", name, jnl.Dropped())
	}
	exp := explainForRec(rec, jnl)
	for _, p := range exp.Structures {
		if p.AdmittedBy == "" {
			t.Errorf("%s: structure %s has no recorded admission", name, p.Structure)
			continue
		}
		if p.AdmittedBy == "greedy-step" {
			if p.Step < 0 || p.CostAfter <= 0 || p.CostAfter >= p.CostBefore {
				t.Errorf("%s: structure %s step admission incoherent: step=%d cost %v -> %v",
					name, p.Structure, p.Step, p.CostBefore, p.CostAfter)
			}
		}
		if len(p.BenefitingQueries) == 0 {
			t.Errorf("%s: structure %s has no benefiting queries", name, p.Structure)
		}
		for _, q := range p.BenefitingQueries {
			if q.SQL == "" {
				t.Errorf("%s: structure %s benefiting query #%d lost its SQL", name, p.Structure, q.Query)
			}
		}
	}
}

// TestExplainTPCH is the paper-workload acceptance test: tune the demo
// TPC-H database and reconstruct every recommended structure's provenance
// from the journal alone.
func TestExplainTPCH(t *testing.T) {
	srv, w, err := demo.Build("tpch", 0.005)
	if err != nil {
		t.Fatal(err)
	}
	jnl := journal.New("tpch")
	ctx := journal.WithContext(context.Background(), jnl)
	rec, err := TuneContext(ctx, srv, w, Options{
		StorageBudget: 3 * srv.Cat.Bytes(),
		BaseConfig:    demo.ConstraintConfig("tpch", srv.Cat),
	})
	if err != nil {
		t.Fatal(err)
	}
	requireExplained(t, "tpch", rec, jnl)
}

// TestExplainSYNT1 repeats the acceptance test on the synthetic SYNT1
// workload (the paper's §7 set-query database).
func TestExplainSYNT1(t *testing.T) {
	srv, w, err := demo.Build("synt1", 0.001)
	if err != nil {
		t.Fatal(err)
	}
	jnl := journal.New("synt1")
	ctx := journal.WithContext(context.Background(), jnl)
	rec, err := TuneContext(ctx, srv, w, Options{
		StorageBudget: 3 * srv.Cat.Bytes(),
		BaseConfig:    demo.ConstraintConfig("synt1", srv.Cat),
		Derive:        testDeriveMode(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	requireExplained(t, "synt1", rec, jnl)
}

// TestExplainAfterResume verifies the journal's derived-state contract:
// the journal is not checkpointed, but a resumed session deterministically
// replays its decisions, so explain output after resume matches an
// uninterrupted run's.
func TestExplainAfterResume(t *testing.T) {
	w := lookupWorkload(10)

	fullJnl := journal.New("full")
	var first *Checkpoint
	full, err := TuneContext(journal.WithContext(context.Background(), fullJnl),
		testServer(t), w, Options{
			NoCompression:   true,
			CheckpointEvery: 25,
			CheckpointSink: func(ck *Checkpoint) {
				if first == nil {
					first = ck
				}
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("no checkpoint emitted")
	}

	// Round-trip the checkpoint as the service's state files do, then
	// resume on a fresh server with a fresh journal.
	data, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	var restored Checkpoint
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	resJnl := journal.New("resumed")
	resumed, err := TuneContext(journal.WithContext(context.Background(), resJnl),
		testServer(t), w, Options{NoCompression: true, Resume: &restored})
	if err != nil {
		t.Fatal(err)
	}

	fullExp, err := json.Marshal(explainForRec(full, fullJnl).Structures)
	if err != nil {
		t.Fatal(err)
	}
	resExp, err := json.Marshal(explainForRec(resumed, resJnl).Structures)
	if err != nil {
		t.Fatal(err)
	}
	if string(fullExp) != string(resExp) {
		t.Fatalf("explain diverged after resume:\n--- full ---\n%s\n--- resumed ---\n%s", fullExp, resExp)
	}
}

// TestJournalBoundedUnderFlood checks per-session memory stays bounded:
// with a tiny limit the journal never exceeds kinds x limit events even
// though the pipeline emits far more.
func TestJournalBoundedUnderFlood(t *testing.T) {
	jnl := journal.New("bounded")
	jnl.SetLimit(8)
	ctx := journal.WithContext(context.Background(), jnl)
	if _, err := TuneContext(ctx, testServer(t), parallelWorkload(t), Options{}); err != nil {
		t.Fatal(err)
	}
	if max := 8 * len(journal.Kinds()); jnl.Len() > max {
		t.Fatalf("journal holds %d events, limit admits at most %d", jnl.Len(), max)
	}
	if jnl.Dropped() == 0 {
		t.Fatal("flood never overflowed the tiny rings; the bound was not exercised")
	}
}
