package core

import (
	"repro/internal/catalog"
	"repro/internal/journal"
)

// mergeCandidates implements the Merging step (paper §2.2): candidate
// selection works one query at a time, so its output can be over-specialized
// — excellent for single queries, wasteful for the workload under storage
// pressure or updates. Merging augments the candidate set with structures
// derived from pairs of candidates that can each serve several queries:
//
//   - index merging [8]: two indexes on a table merge into one whose key is
//     the first index's key followed by the second's unmatched key columns,
//     with included columns unioned;
//   - view merging [3]: two views over the same join merge by unioning
//     grouping columns, outputs and aggregates;
//   - partitioned-structure merging [4]: two range partitionings of a table
//     on the same column merge by unioning their boundary sets.
func mergeCandidates(cat *catalog.Catalog, cands []catalog.Structure, benefit map[string]float64, opts Options, tr *tracker) []catalog.Structure {
	var pool *workerPool
	if tr != nil {
		pool = tr.pool
	}
	// mergePair computes the merged structures one (a, b) candidate pair
	// yields — pure CPU over the catalog, no shared state — so all pairs
	// run on the worker pool.
	mergePair := func(a, b catalog.Structure) []catalog.Structure {
		switch {
		case a.Index != nil && b.Index != nil && a.Index.Table == b.Index.Table &&
			a.Index.Clustered == b.Index.Clustered:
			var ms []catalog.Structure
			if m := mergeIndexes(a.Index, b.Index, opts.MaxKeyColumns+2); m != nil {
				ms = append(ms, catalog.Structure{Index: m})
			}
			if m := mergeIndexes(b.Index, a.Index, opts.MaxKeyColumns+2); m != nil {
				ms = append(ms, catalog.Structure{Index: m})
			}
			return ms
		case a.View != nil && b.View != nil:
			if m := mergeViews(cat, a.View, b.View); m != nil {
				return []catalog.Structure{{View: m}}
			}
		case a.Part != nil && b.Part != nil && a.PartTable == b.PartTable &&
			a.Part.Column == b.Part.Column:
			merged := catalog.NewPartitionScheme(a.Part.Column,
				append(append([]float64(nil), a.Part.Boundaries...), b.Part.Boundaries...)...)
			return []catalog.Structure{{PartTable: a.PartTable, Part: merged}}
		}
		return nil
	}

	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	merged := make([][]catalog.Structure, len(pairs))
	pool.each(len(pairs), func(p int) {
		merged[p] = mergePair(cands[pairs[p].i], cands[pairs[p].j])
	})

	// Fold sequentially in pair order: dedup against the pool and inherit
	// parent benefits exactly as the sequential pairwise loop did, so the
	// output order (and therefore everything downstream) is independent of
	// parallelism.
	out := append([]catalog.Structure(nil), cands...)
	seen := map[string]bool{}
	for _, s := range cands {
		seen[s.Key()] = true
	}
	for p, ms := range merged {
		a, b := cands[pairs[p].i], cands[pairs[p].j]
		for _, s := range ms {
			k := s.Key()
			if tr.journaling() {
				// Journal every merge attempt at the sequential fold — kept
				// merges and duplicates alike — so explain can walk a
				// recommended structure back to its pre-merging leaves.
				ev := journal.Ev(journal.KindMerge)
				ev.Structure = k
				ev.Parents = []string{a.Key(), b.Key()}
				ev.Accepted = !seen[k]
				tr.record(ev)
			}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, s)
			if benefit != nil {
				// A merged structure inherits the larger parent benefit so
				// pool capping does not starve it.
				ba, bb := benefit[a.Key()], benefit[b.Key()]
				if bb > ba {
					ba = bb
				}
				benefit[k] = ba
			}
		}
	}
	return out
}

// mergeIndexes builds first ⊕ second: first's key, then second's key columns
// not already present, with included columns unioned (minus key columns).
// Returns nil when the merge degenerates (identical key, or too wide).
func mergeIndexes(first, second *catalog.Index, maxKey int) *catalog.Index {
	key := append([]string(nil), first.KeyColumns...)
	have := map[string]bool{}
	for _, c := range key {
		have[c] = true
	}
	for _, c := range second.KeyColumns {
		if !have[c] {
			have[c] = true
			key = append(key, c)
		}
	}
	if len(key) == len(first.KeyColumns) && len(second.IncludeCols) == 0 {
		return nil // second adds nothing
	}
	if len(key) > maxKey {
		return nil
	}
	var include []string
	incSeen := map[string]bool{}
	for _, c := range append(append([]string(nil), first.IncludeCols...), second.IncludeCols...) {
		if !have[c] && !incSeen[c] {
			incSeen[c] = true
			include = append(include, c)
		}
	}
	m := catalog.NewIndex(first.Table, key...)
	m.Clustered = first.Clustered
	if len(include) > 0 && !m.Clustered {
		m = m.WithInclude(include...)
	}
	return m
}

// mergeViews merges two views over the identical join (same tables, same
// join predicates): grouping columns, outputs and aggregates are unioned.
// The merged view answers every query either parent answers, at the price of
// a finer (larger) grouping. Returns nil when the views join differently.
func mergeViews(cat *catalog.Catalog, a, b *catalog.MaterializedView) *catalog.MaterializedView {
	if len(a.Tables) != len(b.Tables) {
		return nil
	}
	for i := range a.Tables {
		if a.Tables[i] != b.Tables[i] {
			return nil
		}
	}
	if len(a.JoinPreds) != len(b.JoinPreds) {
		return nil
	}
	jset := map[string]bool{}
	for _, j := range a.JoinPreds {
		jset[j.String()] = true
	}
	for _, j := range b.JoinPreds {
		if !jset[j.String()] {
			return nil
		}
	}
	// Grouped ⊕ ungrouped does not merge: the SPJ parent needs raw rows.
	if (len(a.GroupBy) > 0) != (len(b.GroupBy) > 0) {
		return nil
	}
	groupBy := append(append([]catalog.ColRef(nil), a.GroupBy...), b.GroupBy...)
	out := append(append([]catalog.ColRef(nil), a.OutputColumns...), b.OutputColumns...)
	aggs := append(append([]catalog.Agg(nil), a.Aggs...), b.Aggs...)

	rows := estimateMergedRows(cat, a, b, groupBy)
	return catalog.NewMaterializedView(a.Tables, a.JoinPreds, out, groupBy, aggs, rows)
}

// estimateMergedRows estimates the merged view's cardinality: the product of
// the distinct counts of the merged grouping columns, capped by the sum of
// the parents' cardinalities times a small blow-up bound.
func estimateMergedRows(cat *catalog.Catalog, a, b *catalog.MaterializedView, groupBy []catalog.ColRef) int64 {
	if len(groupBy) == 0 {
		if a.Rows > b.Rows {
			return a.Rows
		}
		return b.Rows
	}
	distinct := 1.0
	seen := map[string]bool{}
	for _, c := range groupBy {
		if seen[c.String()] {
			continue
		}
		seen[c.String()] = true
		if t := cat.ResolveTable(c.Table); t != nil {
			distinct *= float64(t.DistinctOf(c.Column))
		}
	}
	cap := float64(a.Rows) * float64(b.Rows)
	if cap <= 0 {
		cap = distinct
	}
	if distinct > cap {
		distinct = cap
	}
	if distinct < 1 {
		distinct = 1
	}
	return int64(distinct)
}
