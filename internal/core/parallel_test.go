package core

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestWorkerPoolEachCoversAllIndices(t *testing.T) {
	for _, par := range []int{0, 1, 2, 8} {
		for _, n := range []int{0, 1, 3, 100} {
			p := newWorkerPool(par)
			var visited sync.Map
			var count atomic.Int64
			workers := p.each(n, func(i int) {
				if _, dup := visited.LoadOrStore(i, true); dup {
					t.Errorf("par=%d n=%d: index %d ran twice", par, n, i)
				}
				count.Add(1)
			})
			if got := int(count.Load()); got != n {
				t.Fatalf("par=%d n=%d: ran %d indices", par, n, got)
			}
			if n > 0 && workers < 1 {
				t.Fatalf("par=%d n=%d: workers=%d", par, n, workers)
			}
			if max := p.parallelism(); workers > max {
				t.Fatalf("par=%d n=%d: workers=%d exceeds pool size %d", par, n, workers, max)
			}
		}
	}
}

func TestWorkerPoolNilIsSequential(t *testing.T) {
	var p *workerPool
	order := []int{}
	if w := p.each(4, func(i int) { order = append(order, i) }); w != 1 {
		t.Fatalf("nil pool workers = %d", w)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3}) {
		t.Fatalf("nil pool order = %v", order)
	}
}

// TestWorkerPoolNestedNoDeadlock drives nested each calls far beyond the
// pool size: inner levels must degrade to inline execution instead of
// waiting for tokens the outer levels hold.
func TestWorkerPoolNestedNoDeadlock(t *testing.T) {
	p := newWorkerPool(3)
	var leaves atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.each(5, func(i int) {
			p.each(5, func(j int) {
				p.each(5, func(k int) { leaves.Add(1) })
			})
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested each deadlocked")
	}
	if got := leaves.Load(); got != 125 {
		t.Fatalf("leaves = %d, want 125", got)
	}
}

// countingTuner wraps a Tuner, tracking total and concurrent WhatIfCost
// calls; a slow call window widens the race between would-be duplicate
// callers so the single-flight cache is actually exercised.
type countingTuner struct {
	Tuner
	delay      time.Duration
	calls      atomic.Int64
	inFlight   atomic.Int64
	maxSeen    atomic.Int64
	statsCalls atomic.Int64
}

func (c *countingTuner) WhatIfCost(stmt sqlparser.Statement, cfg *catalog.Configuration) (float64, []string, error) {
	c.calls.Add(1)
	n := c.inFlight.Add(1)
	for {
		m := c.maxSeen.Load()
		if n <= m || c.maxSeen.CompareAndSwap(m, n) {
			break
		}
	}
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	defer c.inFlight.Add(-1)
	return c.Tuner.WhatIfCost(stmt, cfg)
}

func (c *countingTuner) EnsureStatistics(reqs []stats.Request, reduce bool) (int, error) {
	c.statsCalls.Add(1)
	return c.Tuner.EnsureStatistics(reqs, reduce)
}

// parallelWorkload is varied enough to exercise candidate selection,
// merging, and a multi-step enumeration greedy.
func parallelWorkload(tb testing.TB) *workload.Workload {
	tb.Helper()
	w := &workload.Workload{}
	stmts := []string{
		"SELECT id FROM t WHERE x = 42",
		"SELECT a, COUNT(*) FROM t WHERE x < 100 GROUP BY a",
		"SELECT SUM(amt) FROM t WHERE a = 7",
		"SELECT t.id, d.grp FROM t, d WHERE t.d_id = d.d_id AND d.grp = 3",
		"SELECT id FROM t WHERE amt > 900 ORDER BY amt",
		"SELECT d_id, SUM(amt) FROM t GROUP BY d_id",
		"UPDATE t SET amt = 0 WHERE id = 17",
	}
	for i, q := range stmts {
		if err := w.Add(q, float64(1+i%3)); err != nil {
			tb.Fatal(err)
		}
	}
	return w
}

// fingerprint reduces a recommendation to everything the determinism
// guarantee promises: the chosen structures (in order), the costs, the
// stop reason, and the exact what-if call count.
func fingerprint(rec *Recommendation) string {
	s := fmt.Sprintf("base=%v cost=%v improvement=%v storage=%d stop=%q calls=%d stats=%d\n",
		rec.BaseCost, rec.Cost, rec.Improvement, rec.StorageBytes, rec.StopReason, rec.WhatIfCalls, rec.StatsCreated)
	for _, st := range rec.NewStructures {
		s += "new " + st.Key() + "\n"
	}
	for _, st := range rec.DroppedStructures {
		s += "drop " + st.Key() + "\n"
	}
	for _, r := range rec.Reports {
		s += fmt.Sprintf("report %q before=%v after=%v used=%v\n", r.SQL, r.CostBefore, r.CostAfter, r.UsedStructures)
	}
	return s
}

// TestParallelismDeterminism runs the full advisor at Parallelism 1, 4, and
// 16 and requires identical recommendations: same structures, same costs,
// same StopReason, and — because the cost cache is single-flight — the same
// what-if call count.
func TestParallelismDeterminism(t *testing.T) {
	var prints []string
	for _, par := range []int{1, 4, 16} {
		s := testServer(t)
		rec, err := Tune(s, parallelWorkload(t), Options{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if rec.StopReason != "" {
			t.Fatalf("parallelism %d: unexpected stop reason %q", par, rec.StopReason)
		}
		prints = append(prints, fingerprint(rec))
	}
	for i := 1; i < len(prints); i++ {
		if prints[i] != prints[0] {
			t.Errorf("recommendation differs between parallelism levels:\n--- parallelism 1 ---\n%s--- other level ---\n%s", prints[0], prints[i])
		}
	}
}

// TestSingleFlightCoalescesDuplicateCosts hammers one evaluator with many
// goroutines asking for the same configurations: the optimizer must see
// exactly one call per distinct (event, relevant-structures) key, however
// many workers race for it.
func TestSingleFlightCoalescesDuplicateCosts(t *testing.T) {
	ct := &countingTuner{Tuner: testServer(t), delay: time.Millisecond}
	w := workload.MustNew(
		"SELECT id FROM t WHERE x = 42",
		"SELECT SUM(amt) FROM t WHERE a = 7",
	)
	ev := newEvaluator(ct, w)
	base := catalog.NewConfiguration()
	withIx := catalog.NewConfiguration()
	withIx.AddIndex(catalog.NewIndex("t", "x"))

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				for _, cfg := range []*catalog.Configuration{base, withIx} {
					if _, err := ev.configCost(cfg); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()

	// Distinct keys: 2 events × base, plus the event(s) whose relevant set
	// changes under the index. The exact count matters less than equality
	// with the evaluator's own accounting and the absence of duplicates.
	if got, issued := ct.calls.Load(), ev.calls.Load(); got != issued {
		t.Fatalf("tuner saw %d calls, evaluator accounted %d", got, issued)
	}
	if got := ct.calls.Load(); got > 4 {
		t.Fatalf("expected at most 4 distinct cost keys, optimizer saw %d calls (single-flight broken)", got)
	}
	if ct.maxSeen.Load() < 1 {
		t.Fatal("no call observed")
	}
}

// TestParallelTuneMatchesCallAccounting runs a parallel session against a
// wrapped tuner and checks Recommendation.WhatIfCalls is session-exact:
// equal to the number of calls the tuner actually served.
func TestParallelTuneMatchesCallAccounting(t *testing.T) {
	ct := &countingTuner{Tuner: testServer(t)}
	rec, err := Tune(ct, parallelWorkload(t), Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rec.WhatIfCalls != ct.calls.Load() {
		t.Fatalf("rec.WhatIfCalls = %d, tuner served %d", rec.WhatIfCalls, ct.calls.Load())
	}
	if rec.WhatIfCalls == 0 {
		t.Fatal("no what-if calls issued")
	}
}
