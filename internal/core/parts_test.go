package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

func TestMergeIndexes(t *testing.T) {
	a := catalog.NewIndex("t", "a", "b").WithInclude("x")
	b := catalog.NewIndex("t", "a", "c").WithInclude("y")
	m := mergeIndexes(a, b, 5)
	if m == nil {
		t.Fatal("merge should succeed")
	}
	if got := m.Key(); got != "ix:t(a,b,c) include(x,y)" {
		t.Fatalf("merged = %q", got)
	}
	// The merged index serves any seek the first parent serves (same key
	// prefix) and covers the union of both parents' columns.
	if m.KeyColumns[0] != a.KeyColumns[0] || m.KeyColumns[1] != a.KeyColumns[1] {
		t.Fatal("first parent's key must be a prefix of the merged key")
	}
	for _, col := range append(a.AllColumns(), b.AllColumns()...) {
		if !m.Covers([]string{col}) {
			t.Fatalf("merged index must cover %q", col)
		}
	}
	// Degenerate merges return nil.
	if mergeIndexes(a, catalog.NewIndex("t", "a", "b"), 5) != nil {
		t.Fatal("second index adding nothing should not merge")
	}
	if mergeIndexes(a, catalog.NewIndex("t", "c", "d", "e", "f"), 4) != nil {
		t.Fatal("too-wide merges must be rejected")
	}
}

func TestMergeIndexesCoverageProperty(t *testing.T) {
	cols := []string{"a", "b", "c", "d", "e"}
	f := func(ka, kb, ia, ib uint8) bool {
		mk := func(k, inc uint8) *catalog.Index {
			key := []string{cols[int(k)%len(cols)], cols[(int(k)+1)%len(cols)]}
			ix := catalog.NewIndex("t", key...)
			return ix.WithInclude(cols[int(inc)%len(cols)])
		}
		a, b := mk(ka, ia), mk(kb, ib)
		m := mergeIndexes(a, b, 10)
		if m == nil {
			return true // degenerate merge is allowed
		}
		for _, c := range append(a.AllColumns(), b.AllColumns()...) {
			if !m.Covers([]string{c}) {
				return false
			}
		}
		// Key columns must be unique.
		seen := map[string]bool{}
		for _, c := range m.KeyColumns {
			if seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeViews(t *testing.T) {
	cat := catalog.New()
	d := catalog.NewDatabase("db")
	d.AddTable(catalog.NewTable("db", "t", 100000,
		&catalog.Column{Name: "a", Type: catalog.TypeInt, Width: 8, Distinct: 10, Min: 0, Max: 9},
		&catalog.Column{Name: "b", Type: catalog.TypeInt, Width: 8, Distinct: 20, Min: 0, Max: 19},
		&catalog.Column{Name: "x", Type: catalog.TypeFloat, Width: 8, Distinct: 1000, Min: 0, Max: 999},
	))
	cat.AddDatabase(d)

	va := catalog.NewMaterializedView([]string{"t"}, nil, nil,
		[]catalog.ColRef{catalog.NewColRef("t", "a")},
		[]catalog.Agg{{Func: "SUM", Col: catalog.NewColRef("t", "x")}}, 10)
	vb := catalog.NewMaterializedView([]string{"t"}, nil, nil,
		[]catalog.ColRef{catalog.NewColRef("t", "b")},
		[]catalog.Agg{{Func: "COUNT"}}, 20)
	m := mergeViews(cat, va, vb)
	if m == nil {
		t.Fatal("same-join grouped views must merge")
	}
	if len(m.GroupBy) != 2 || len(m.Aggs) != 2 {
		t.Fatalf("merged view = %s", m)
	}
	if m.Rows != 200 { // 10 × 20 distinct combinations
		t.Fatalf("merged rows = %d, want 200", m.Rows)
	}
	// The merged view answers both parents' queries.
	for _, q := range []string{
		"SELECT a, SUM(x) FROM t GROUP BY a",
		"SELECT b, COUNT(*) FROM t GROUP BY b",
	} {
		qi, err := optimizer.Analyze(cat, sqlparser.MustParse(q))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := optimizer.MatchView(qi, m); !ok {
			t.Fatalf("merged view must answer %q", q)
		}
	}

	// Views over different joins do not merge.
	d.AddTable(catalog.NewTable("db", "u", 10,
		&catalog.Column{Name: "a", Type: catalog.TypeInt, Width: 8, Distinct: 10, Min: 0, Max: 9}))
	vu := catalog.NewMaterializedView([]string{"t", "u"},
		[]catalog.JoinPred{{Left: catalog.NewColRef("t", "a"), Right: catalog.NewColRef("u", "a")}},
		nil, []catalog.ColRef{catalog.NewColRef("t", "a")}, []catalog.Agg{{Func: "COUNT"}}, 10)
	if mergeViews(cat, va, vu) != nil {
		t.Fatal("different table sets must not merge")
	}
}

func TestMergePartitionings(t *testing.T) {
	cat := catalog.New()
	cands := []catalog.Structure{
		{PartTable: "t", Part: catalog.NewPartitionScheme("x", 10, 20)},
		{PartTable: "t", Part: catalog.NewPartitionScheme("x", 15, 30)},
	}
	out := mergeCandidates(cat, cands, map[string]float64{}, Options{}.withDefaults(), nil)
	if len(out) != 3 {
		t.Fatalf("expected one merged scheme, got %d structures", len(out))
	}
	merged := out[2].Part
	if merged.Partitions() != 5 { // boundaries {10,15,20,30}
		t.Fatalf("merged partitions = %d", merged.Partitions())
	}
}

func TestCapCandidates(t *testing.T) {
	var cands []catalog.Structure
	benefit := map[string]float64{}
	for i, col := range []string{"a", "b", "c", "d", "e"} {
		s := catalog.Structure{Index: catalog.NewIndex("t", col)}
		cands = append(cands, s)
		benefit[s.Key()] = float64(i)
	}
	capped := capCandidates(cands, benefit, 2)
	if len(capped) != 2 {
		t.Fatalf("capped = %d", len(capped))
	}
	if capped[0].Index.KeyColumns[0] != "e" || capped[1].Index.KeyColumns[0] != "d" {
		t.Fatalf("highest benefit must survive: %v", capped)
	}
	if got := capCandidates(cands, benefit, -1); len(got) != len(cands) {
		t.Fatal("negative cap disables capping")
	}
}

// costByStorage is a synthetic cost function: each chosen structure reduces
// cost by a known amount, letting us verify Greedy(m,k) behaviour exactly.
func TestGreedySearchRespectsBudgetAndK(t *testing.T) {
	cat := catalog.New()
	d := catalog.NewDatabase("db")
	cols := []*catalog.Column{}
	for _, c := range []string{"a", "b", "c", "d"} {
		cols = append(cols, &catalog.Column{Name: c, Type: catalog.TypeInt, Width: 8, Distinct: 1000, Min: 0, Max: 999})
	}
	d.AddTable(catalog.NewTable("db", "t", 1_000_000, cols...))
	cat.AddDatabase(d)

	gains := map[string]float64{}
	var cands []catalog.Structure
	for i, c := range []string{"a", "b", "c", "d"} {
		s := catalog.Structure{Index: catalog.NewIndex("t", c)}
		cands = append(cands, s)
		gains[s.Key()] = float64(10 * (i + 1))
	}
	cost := func(cfg *catalog.Configuration) (float64, error) {
		total := 1000.0
		for _, ix := range cfg.Indexes {
			total -= gains[ix.Key()]
		}
		return total, nil
	}

	base := catalog.NewConfiguration()
	// k = 2: picks the two largest gains (d then c).
	chosen, err := greedySearch(base, cands, cost, greedyOptions{m: 1, k: 2, cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 2 {
		t.Fatalf("chosen = %d", len(chosen))
	}
	if chosen[0].Index.KeyColumns[0] != "d" || chosen[1].Index.KeyColumns[0] != "c" {
		t.Fatalf("greedy order wrong: %v", chosen)
	}

	// A one-index storage budget limits the pick count.
	oneIndex := cands[0].StorageBytes(cat) + 1
	chosen, err = greedySearch(base, cands, cost, greedyOptions{m: 1, k: 4, budget: oneIndex, cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 1 {
		t.Fatalf("budget must limit picks: %d", len(chosen))
	}

	// No candidate improves: nothing chosen.
	flat := func(cfg *catalog.Configuration) (float64, error) { return 5, nil }
	chosen, err = greedySearch(base, cands, flat, greedyOptions{m: 1, k: 4, cat: cat})
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 0 {
		t.Fatalf("flat cost must choose nothing, got %v", chosen)
	}
}

func TestGreedySeedOptimalWithInteraction(t *testing.T) {
	// Two structures are only useful together; singletons are useless.
	// Greedy(1,k) misses them, Greedy(2,k) finds them.
	cat := catalog.New()
	d := catalog.NewDatabase("db")
	d.AddTable(catalog.NewTable("db", "t", 1000,
		&catalog.Column{Name: "a", Type: catalog.TypeInt, Width: 8, Distinct: 10, Min: 0, Max: 9},
		&catalog.Column{Name: "b", Type: catalog.TypeInt, Width: 8, Distinct: 10, Min: 0, Max: 9}))
	cat.AddDatabase(d)
	sa := catalog.Structure{Index: catalog.NewIndex("t", "a")}
	sb := catalog.Structure{Index: catalog.NewIndex("t", "b")}
	cost := func(cfg *catalog.Configuration) (float64, error) {
		if len(cfg.Indexes) == 2 {
			return 10, nil
		}
		return 100, nil
	}
	base := catalog.NewConfiguration()
	c1, _ := greedySearch(base, []catalog.Structure{sa, sb}, cost, greedyOptions{m: 1, k: 2, cat: cat})
	c2, _ := greedySearch(base, []catalog.Structure{sa, sb}, cost, greedyOptions{m: 2, k: 2, cat: cat})
	if len(c1) != 0 {
		t.Fatalf("Greedy(1,2) should find nothing here, got %v", c1)
	}
	if len(c2) != 2 {
		t.Fatalf("Greedy(2,2) must find the interacting pair, got %v", c2)
	}
}

func TestInterestingColumnGroups(t *testing.T) {
	s := testServer(t)
	var sqls []string
	// Column x dominates the workload; column amt appears once, cheaply.
	for i := 0; i < 30; i++ {
		sqls = append(sqls, "SELECT id FROM t WHERE x = 5 AND a = 3")
	}
	sqls = append(sqls, "SELECT id FROM t WHERE amt = 1")
	w := workload.MustNew(sqls...)
	ev := newEvaluator(s, w)
	groups, err := interestingColumnGroups(s, ev, w, Options{ColGroupFrac: 0.05}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if !groups.interesting("t", "x") || !groups.interesting("t", "a") {
		t.Fatal("dominant columns must be interesting")
	}
	if !groups.interesting("t", "x", "a") {
		t.Fatal("co-occurring pair must be interesting")
	}
	if groups.interesting("t", "amt") {
		t.Fatal("rare cheap column must be pruned")
	}
	if groups.interesting("t", "x", "amt") {
		t.Fatal("pair with a pruned member must be pruned (apriori)")
	}

	// Disabled restriction admits everything.
	open, err := interestingColumnGroups(s, ev, w, Options{NoColGroupRestriction: true}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if !open.interesting("t", "amt") {
		t.Fatal("disabled restriction must admit everything")
	}
}

func TestForEachSubset(t *testing.T) {
	var got [][]string
	forEachSubset([]string{"a", "b", "c"}, 2, func(s []string) {
		got = append(got, append([]string(nil), s...))
	})
	if len(got) != 3 {
		t.Fatalf("subsets = %d", len(got))
	}
	forEachSubset([]string{"a"}, 2, func([]string) { t.Fatal("k > n yields nothing") })
	forEachSubset(nil, 0, func([]string) { t.Fatal("k = 0 yields nothing") })
}

func TestEnumerateLazyAlignmentPostcondition(t *testing.T) {
	s := testServer(t)
	w := workload.MustNew(
		"SELECT id FROM t WHERE x BETWEEN 5 AND 50",
		"SELECT a, COUNT(*) FROM t WHERE x < 500 GROUP BY a",
	)
	for _, eager := range []bool{false, true} {
		rec, err := Tune(s, w, Options{
			Features:       FeatureIndexes | FeaturePartitioning,
			Aligned:        true,
			EagerAlignment: eager,
		})
		if err != nil {
			t.Fatalf("eager=%v: %v", eager, err)
		}
		if !rec.Config.Aligned() {
			t.Fatalf("eager=%v: final configuration not aligned", eager)
		}
		if err := rec.Config.Validate(s.Cat); err != nil {
			t.Fatalf("eager=%v: %v", eager, err)
		}
	}
}
