package core

import (
	"sync"
	"sync/atomic"
)

// workerPool bounds the tuning pipeline's evaluation concurrency at one
// session-wide degree of parallelism (Options.Parallelism). Independent
// what-if evaluations — a greedy step's candidate frontier, the seed
// enumeration's subsets, the per-event terms of a workload costing — are
// fanned out over it; everything order-sensitive (best-pick reduction,
// float-cost summation) happens afterwards on the calling goroutine, in
// index order, which is what keeps parallel and sequential runs
// byte-identical.
type workerPool struct {
	// slots holds size-1 helper tokens. Helpers are recruited non-blockingly:
	// a nested each (the greedy seed recursing while its parent level still
	// holds workers) simply finds no free token and runs inline, so the
	// session never exceeds size goroutines and never deadlocks on itself.
	slots chan struct{}
	size  int
}

// newWorkerPool creates a pool of the given total parallelism (minimum 1:
// the calling goroutine always participates).
func newWorkerPool(parallelism int) *workerPool {
	if parallelism < 1 {
		parallelism = 1
	}
	return &workerPool{slots: make(chan struct{}, parallelism-1), size: parallelism}
}

// parallelism reports the pool's degree (1 for a nil pool: the sequential
// paths that predate Options.Parallelism pass no pool).
func (p *workerPool) parallelism() int {
	if p == nil {
		return 1
	}
	return p.size
}

// each runs fn(i) for every i in [0, n), distributing the indices over the
// calling goroutine plus as many helper goroutines as are free (at most
// size-1, at most n-1). It returns once every index has run, reporting how
// many goroutines participated (the greedy-step span's workers attribute
// and the pool-utilization histogram). fn must write its result into a
// caller-provided slot at index i; each itself imposes no result ordering.
func (p *workerPool) each(n int, fn func(i int)) int {
	if n <= 0 {
		return 0
	}
	if p == nil || p.size <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return 1
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	workers := 1
recruit:
	for workers < n && workers < p.size {
		select {
		case p.slots <- struct{}{}:
			wg.Add(1)
			workers++
			go func() {
				defer func() {
					<-p.slots
					wg.Done()
				}()
				work()
			}()
		default:
			// No free helper token: another level of the pipeline holds the
			// workers (a nested each). Run with what we have.
			break recruit
		}
	}
	work()
	wg.Wait()
	return workers
}
