package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/obs"
)

// Phase identifies one stage of the tuning pipeline (paper §2.2). Phases are
// reported through the Progress callback so a DBA watching a long session
// can see where the advisor is spending its time budget.
type Phase string

// Pipeline phases, in execution order.
const (
	// PhaseIngest is reported while a streamed trace is still being read
	// and compressed online (before the search pipeline starts). Only
	// sessions created from a streamed trace pass through it; snapshots in
	// this phase carry IngestedEvents/IngestedBytes instead of search
	// counters.
	PhaseIngest Phase = "ingest"
	// PhaseRevise is reported while a revision session rebuilds its
	// evaluator state from a persisted CostedPool (workload re-parse,
	// statistics replay, cache and derive-fact restore) before the
	// search layer re-runs. Only sessions started by Revise pass
	// through it; it replaces PhaseBaseline/PhaseColGroups/
	// PhaseCandidates, whose work the pool already carries.
	PhaseRevise      Phase = "revise"
	PhaseBaseline    Phase = "baseline-costing"
	PhaseDrops       Phase = "drop-analysis"
	PhaseColGroups   Phase = "column-groups"
	PhaseCandidates  Phase = "candidate-selection"
	PhaseMerging     Phase = "merging"
	PhaseEnumeration Phase = "enumeration"
	PhaseReports     Phase = "reports"
	PhaseDone        Phase = "done"
)

// Phases lists every pipeline phase in execution order — the one exported
// constant set progress displays, obs spans, journal events, and the
// service all share.
func Phases() []Phase {
	return []Phase{PhaseIngest, PhaseRevise, PhaseBaseline, PhaseDrops,
		PhaseColGroups, PhaseCandidates, PhaseMerging, PhaseEnumeration,
		PhaseReports, PhaseDone}
}

// Stop reasons recorded in Recommendation.StopReason when tuning ends before
// the search space is exhausted. Either way the recommendation returned is
// the best design found so far (the anytime behaviour of paper §2.1).
const (
	// StopTimeLimit: the Options.TimeLimit budget ran out.
	StopTimeLimit = "time-limit"
	// StopCancelled: the session's context was cancelled.
	StopCancelled = "cancelled"
	// StopDegraded: the circuit breaker tripped — the backend's what-if
	// failure rate crossed the threshold, or a call kept failing after
	// every retry — so the session stopped searching (skipping merging,
	// refinement, and further enumeration) and returned the best design
	// found so far rather than hammering a flaky backend or crashing.
	StopDegraded = "degraded"
)

// Progress is a live snapshot of a running tuning session: the current
// phase, how much of the workload has been through candidate selection, the
// cumulative what-if optimizer calls the session has issued, the best
// improvement discovered so far, and elapsed time against the time budget.
// Snapshots are delivered synchronously on the tuning goroutine via
// Options.Progress; both the CLI progress display and the tuning service's
// event stream are fed from this one code path.
type Progress struct {
	Phase           Phase         `json:"phase"`
	EventsTotal     int           `json:"eventsTotal"`
	EventsTuned     int           `json:"eventsTuned"`
	WhatIfCalls     int64         `json:"whatIfCalls"`
	BestImprovement float64       `json:"bestImprovement"`
	Elapsed         time.Duration `json:"elapsed"`
	TimeLimit       time.Duration `json:"timeLimit,omitempty"`
	// Degraded reports that the session's circuit breaker has tripped: the
	// search is winding down and will return the best-so-far design with
	// StopReason StopDegraded. Streamed so operators watching a session
	// see the degradation the moment it happens, not at the end.
	Degraded bool `json:"degraded,omitempty"`
	// IngestedEvents and IngestedBytes report streaming-ingest volume: raw
	// trace events folded into the online compressor and trace bytes
	// consumed. They grow during PhaseIngest and then stay at their final
	// values for the rest of the session (zero for sessions that were not
	// created from a streamed trace).
	IngestedEvents int64 `json:"ingestedEvents,omitempty"`
	IngestedBytes  int64 `json:"ingestedBytes,omitempty"`
	// DerivedEvals counts configuration costs answered algebraically by
	// the derivation layer instead of a real optimizer call (zero with
	// Options.Derive off). Streamed live so the calls-saved ratio is
	// visible while the session runs, not only in the final Result.
	DerivedEvals int64 `json:"derivedEvals,omitempty"`
	// DeriveFallbacks breaks down, by reason (dml, atom, stats-epoch,
	// eval-error, used-escape), the evaluations the derivation layer
	// bailed out of and answered with a real optimizer call.
	DeriveFallbacks map[string]int64 `json:"deriveFallbacks,omitempty"`
	// Revised reports that this session is a search-only revision of a
	// persisted costed pool: WhatIfCalls counts only the calls the search
	// layer issued beyond what the pool could answer or derive.
	Revised bool `json:"revised,omitempty"`
}

// String renders the snapshot as a one-line status.
func (p Progress) String() string {
	if p.Phase == PhaseIngest {
		return fmt.Sprintf("[%s] %d events · %.1f MB · %s",
			p.Phase, p.IngestedEvents, float64(p.IngestedBytes)/(1<<20),
			p.Elapsed.Round(time.Millisecond))
	}
	s := fmt.Sprintf("[%s] %d/%d events · %d what-if calls · best %.1f%% · %s",
		p.Phase, p.EventsTuned, p.EventsTotal, p.WhatIfCalls,
		100*p.BestImprovement, p.Elapsed.Round(time.Millisecond))
	if p.TimeLimit > 0 {
		s += " / " + p.TimeLimit.String()
	}
	if p.Degraded {
		s += " · DEGRADED"
	}
	return s
}

// errStopped is the internal signal that the session's context was cancelled
// or its time budget exhausted. Search loops translate it into "return the
// best configuration found so far" rather than an error to the caller.
var errStopped = errors.New("core: tuning stopped")

// stopping reports whether err is the early-stop signal.
func stopping(err error) bool { return errors.Is(err, errStopped) }

// tracker threads cancellation, the time budget, the worker pool, and
// progress reporting through the tuning pipeline. The coordinator (the
// tuning goroutine) owns the phase/progress fields, which it only writes
// outside parallel sections; pool workers touch just the concurrency-safe
// parts — the stop flags, the atomic call counter, and emit (serialized by
// cbMu so the Progress callback never runs twice at once).
//
// A nil tracker is valid everywhere and means "never stop, never report,
// run sequentially" — internal entry points that predate TuneContext pass
// nil.
type tracker struct {
	ctx       context.Context
	cb        func(Progress)
	start     time.Time
	deadline  time.Time
	timeLimit time.Duration

	// pool bounds the session's evaluation concurrency
	// (Options.Parallelism); nil means sequential.
	pool *workerPool

	// finishing marks the report-building stage: once the search has
	// stopped, the final configuration still has to be costed (almost
	// always from cache), so stop checks are suspended. Written by the
	// coordinator between parallel sections only.
	finishing bool
	cancelled atomic.Bool
	timedOut  atomic.Bool
	degraded  atomic.Bool

	// Robustness: the resolved retry policy every what-if optimizer call
	// and statistics operation runs under, the session-scoped fault
	// injector (nil outside fault-testing), the circuit breaker fed by
	// every attempt outcome, and the periodic checkpointer (nil without a
	// sink). All written once at construction, read by pool workers.
	retry   fault.Policy
	faults  *fault.Injector
	breaker *fault.Breaker
	ckpt    *checkpointer

	// Cached dta_retries_total series by call site (nil maps without
	// metrics; indexing a nil map is a safe zero read).
	mRetryOK  map[string]*obs.Counter
	mRetryErr map[string]*obs.Counter

	phase           Phase
	eventsTotal     int
	eventsTuned     int
	calls           atomic.Int64
	baseCost        float64
	bestImprovement float64

	// Streaming-ingest volume (Options.Ingest), echoed into every snapshot
	// so watchers joining after the ingest phase still see how much trace
	// the session consumed. Written once at construction.
	ingestEvents int64
	ingestBytes  int64

	// revised marks a search-only revision session (core.Revise); echoed
	// into every Progress snapshot. Written once before tuning starts.
	revised bool

	// jnl is the session's decision journal (nil = journaling off). It
	// is picked up from the context like the trace, and emission happens
	// only at sequential reduction points or through the journal's own
	// lock, so journaling never perturbs the search: recommendations are
	// byte-identical with it on or off.
	jnl *journal.Journal

	// deriveStats, when derivation is enabled, snapshots the engine's
	// derived-eval count and per-reason fallback breakdown for Progress.
	// Set once by evaluator.attach before tuning starts.
	deriveStats func() (int64, map[string]int64)

	// cbMu serializes Progress callback invocations: countCall emits
	// periodic snapshots from pool workers, and callbacks (the service's
	// session lock, the CLI's stderr writer) expect one caller at a time.
	cbMu sync.Mutex

	// Observability. tuneCtx carries the session's tune-level span; sctx is
	// the context of the innermost open span (phase, query, greedy step) so
	// deeper spans nest under it. Both are written only by the coordinator
	// outside parallel sections; workers read sctx to parent their what-if
	// spans. metrics, when set, receives the pipeline-shape histograms
	// (phase durations, candidates per query, pool sizes).
	tuneCtx   context.Context
	sctx      context.Context
	phaseSpan *obs.Span
	phaseAt   time.Time
	metrics   *obs.Registry
}

func newTracker(ctx context.Context, opts Options, start time.Time) *tracker {
	tr := &tracker{ctx: ctx, cb: opts.Progress, start: start, timeLimit: opts.TimeLimit, phase: PhaseBaseline, metrics: opts.Metrics}
	tr.jnl = journal.FromContext(ctx)
	if opts.Ingest != nil {
		tr.ingestEvents = opts.Ingest.Events
		tr.ingestBytes = opts.Ingest.Bytes
	}
	if opts.TimeLimit > 0 {
		tr.deadline = start.Add(opts.TimeLimit)
	}
	tr.pool = newWorkerPool(opts.Parallelism)
	tr.retry = opts.Retry.WithDefaults()
	tr.faults = opts.Faults
	tr.breaker = fault.NewBreaker(opts.Breaker)
	if opts.CheckpointSink != nil {
		every := int64(opts.CheckpointEvery)
		if every <= 0 {
			every = 128
		}
		tr.ckpt = &checkpointer{sink: opts.CheckpointSink, every: every, tr: tr}
	}
	if tr.metrics != nil {
		const rhelp = "Backend call attempts made under the session retry policy, by call site and outcome."
		tr.mRetryOK = map[string]*obs.Counter{}
		tr.mRetryErr = map[string]*obs.Counter{}
		for _, site := range []string{fault.SiteWhatIf, fault.SiteStats, fault.SiteImport} {
			tr.mRetryOK[site] = tr.metrics.Counter("dta_retries_total", rhelp, "site", site, "outcome", "success")
			tr.mRetryErr[site] = tr.metrics.Counter("dta_retries_total", rhelp, "site", site, "outcome", "failure")
		}
	}
	return tr
}

// journaling reports whether the session has a decision journal attached,
// so emit sites can skip building events entirely when it is off.
func (tr *tracker) journaling() bool { return tr != nil && tr.jnl != nil }

// record appends one decision event to the session's journal (no-op
// without one). Callers construct events with journal.Ev so Query/Step
// default to -1 rather than a misleading zero.
func (tr *tracker) record(e journal.Event) {
	if tr == nil {
		return
	}
	tr.jnl.Append(e)
}

// retryPolicy returns the resolved per-call retry policy. Critical stages
// escalate the attempt budget: a permanent failure there fails the whole
// session, so it is first made astronomically unlikely (at a 10% transient
// failure rate, ten attempts put permanent failure around 1e-10 per call).
func (tr *tracker) retryPolicy() fault.Policy {
	if tr == nil {
		return fault.Policy{}.WithDefaults()
	}
	p := tr.retry
	if tr.critical() && p.MaxAttempts < 10 {
		p.MaxAttempts = 10
	}
	return p
}

// inject consults the session's fault injector (no-op without one).
func (tr *tracker) inject(site string) error {
	if tr == nil {
		return nil
	}
	return tr.faults.Inject(site)
}

// attemptDone observes one backend attempt outcome: it updates the retry
// metrics, feeds the circuit breaker, and trips the session into degraded
// mode the moment the breaker opens (outside critical stages, which must
// run to completion).
func (tr *tracker) attemptDone(site string, err error) {
	if tr == nil {
		return
	}
	tr.breaker.Record(err == nil)
	if err == nil {
		if c := tr.mRetryOK[site]; c != nil {
			c.Inc()
		}
	} else {
		if c := tr.mRetryErr[site]; c != nil {
			c.Inc()
		}
		if tr.journaling() {
			ev := journal.Ev(journal.KindRetry)
			ev.Site = site
			ev.Err = err.Error()
			tr.record(ev)
		}
	}
	if !tr.critical() && tr.breaker.Tripped() {
		tr.degrade()
	}
}

// doCtx returns the context retries run under (Background for the nil
// tracker and for entry points that predate TuneContext).
func (tr *tracker) doCtx() context.Context {
	if tr == nil || tr.ctx == nil {
		return context.Background()
	}
	return tr.ctx
}

// critical reports whether the pipeline is in a stage that must complete
// for the session to return anything useful — the baseline costing (no
// improvement baseline, no result) and the finishing stage (the final
// configuration must carry real costs even for a stopped session). In
// these stages retries escalate instead of degrading: a permanent failure
// there fails the session, so it is made astronomically unlikely first.
func (tr *tracker) critical() bool {
	return tr == nil || tr.finishing || tr.phase == PhaseBaseline || tr.phase == PhaseRevise
}

// degrade trips the session into degraded mode: the search winds down at
// the next stop check and the session returns its best-so-far design with
// StopReason StopDegraded. Called by pool workers when the breaker trips
// or a call keeps failing after every retry; safe to call repeatedly.
func (tr *tracker) degrade() {
	if tr == nil {
		return
	}
	if tr.degraded.CompareAndSwap(false, true) {
		if tr.metrics != nil {
			tr.metrics.Counter("dta_sessions_degraded_total",
				"Tuning sessions that tripped their circuit breaker and returned a best-so-far (degraded) recommendation.").Inc()
		}
		if tr.journaling() {
			ev := journal.Ev(journal.KindBreaker)
			ev.Reason = "breaker-open"
			tr.record(ev)
		}
		tr.emit()
	}
}

// attachSpans records the tune-level span context spans nest under.
func (tr *tracker) attachSpans(ctx context.Context) {
	if tr == nil {
		return
	}
	tr.tuneCtx = ctx
	tr.sctx = ctx
}

// spanCtx returns the context of the innermost open span (for code that
// starts spans outside the tracker's own helpers, like the evaluator's
// per-what-if-call spans).
func (tr *tracker) spanCtx() context.Context {
	if tr == nil || tr.sctx == nil {
		return context.Background()
	}
	return tr.sctx
}

// span opens a child span of the tracker's innermost open span. The returned
// func ends it and restores the previous nesting level; with tracing off
// both the span and the work are nil/no-op.
func (tr *tracker) span(cat, name string) (*obs.Span, func()) {
	if tr == nil || tr.sctx == nil {
		return nil, func() {}
	}
	prev := tr.sctx
	ctx, sp := obs.StartSpan(prev, cat, name)
	if sp == nil {
		return nil, func() {}
	}
	tr.sctx = ctx
	return sp, func() {
		sp.End()
		tr.sctx = prev
	}
}

// closePhase ends the open phase span and observes the phase's duration.
func (tr *tracker) closePhase() {
	if tr == nil {
		return
	}
	if tr.phaseSpan != nil {
		tr.phaseSpan.End()
		tr.phaseSpan = nil
		tr.sctx = tr.tuneCtx
	}
	if tr.metrics != nil && !tr.phaseAt.IsZero() && tr.phase != "" {
		tr.metrics.Histogram("dta_phase_duration_seconds",
			"Wall time per tuning pipeline phase (paper §2.2).",
			obs.LatencyBuckets, "phase", string(tr.phase)).Observe(time.Since(tr.phaseAt).Seconds())
	}
	tr.phaseAt = time.Time{}
}

// ctxStopped reports whether the session's context was cancelled. It is the
// fine-grained check the evaluator performs before every what-if optimizer
// call: a cancelled session stops within one call. The deadline is
// deliberately not checked here — time-limited sessions stop at search-step
// granularity (between greedy steps and per-query selections), matching the
// original coarse behaviour, while baseline costing and report building
// always complete.
func (tr *tracker) ctxStopped() bool {
	if tr == nil || tr.finishing {
		return false
	}
	if tr.cancelled.Load() || tr.degraded.Load() {
		return true
	}
	if tr.ctx != nil {
		select {
		case <-tr.ctx.Done():
			tr.cancelled.Store(true)
			return true
		default:
		}
	}
	return false
}

// stopped reports whether the search should stop: context cancelled or time
// budget exhausted. Checked between search steps (and by every pool worker
// before it starts a candidate).
func (tr *tracker) stopped() bool {
	if tr == nil || tr.finishing {
		return false
	}
	if tr.ctxStopped() || tr.timedOut.Load() {
		return true
	}
	if !tr.deadline.IsZero() && time.Now().After(tr.deadline) {
		tr.timedOut.Store(true)
		return true
	}
	return false
}

// stopReason renders why the session stopped early ("" = ran to completion).
func (tr *tracker) stopReason() string {
	switch {
	case tr == nil:
		return ""
	case tr.cancelled.Load():
		return StopCancelled
	case tr.degraded.Load():
		return StopDegraded
	case tr.timedOut.Load():
		return StopTimeLimit
	}
	return ""
}

func (tr *tracker) setPhase(p Phase) {
	if tr == nil {
		return
	}
	tr.closePhase()
	tr.phase = p
	if p != PhaseDone && tr.tuneCtx != nil {
		ctx, sp := obs.StartSpan(tr.tuneCtx, "phase", string(p))
		if sp != nil {
			tr.phaseSpan = sp
			tr.sctx = ctx
		}
	}
	if p != PhaseDone {
		tr.phaseAt = time.Now()
	}
	if tr.journaling() {
		ev := journal.Ev(journal.KindPhase)
		ev.Phase = string(p)
		tr.record(ev)
	}
	tr.emit()
}

// countCall charges one what-if optimizer call to the session and emits a
// periodic progress snapshot so long costing loops stay observable. Called
// by whichever pool worker leads a cache miss.
func (tr *tracker) countCall() {
	if tr == nil {
		return
	}
	n := tr.calls.Add(1)
	if tr.cb != nil && n%64 == 0 {
		tr.emit()
	}
	tr.ckpt.maybeSnapshot(n)
}

// eventDone records one workload event through candidate selection; gain is
// the event's weighted cost reduction, accumulated into an estimate of the
// improvement available so far.
func (tr *tracker) eventDone(gain float64) {
	if tr == nil {
		return
	}
	tr.eventsTuned++
	if tr.baseCost > 0 && gain > 0 {
		tr.bestImprovement += gain / tr.baseCost
	}
	tr.emit()
}

// observeCost replaces the candidate-selection estimate with the measured
// workload cost of the enumeration search's current best configuration.
func (tr *tracker) observeCost(cost float64) {
	if tr == nil || tr.baseCost <= 0 {
		return
	}
	if imp := (tr.baseCost - cost) / tr.baseCost; imp >= 0 {
		tr.bestImprovement = imp
	}
	tr.emit()
}

func (tr *tracker) emit() {
	if tr == nil || tr.cb == nil {
		return
	}
	var derived int64
	var fallbacks map[string]int64
	if tr.deriveStats != nil {
		derived, fallbacks = tr.deriveStats()
	}
	tr.cbMu.Lock()
	defer tr.cbMu.Unlock()
	tr.cb(Progress{
		Phase:           tr.phase,
		EventsTotal:     tr.eventsTotal,
		EventsTuned:     tr.eventsTuned,
		WhatIfCalls:     tr.calls.Load(),
		BestImprovement: tr.bestImprovement,
		Elapsed:         time.Since(tr.start),
		TimeLimit:       tr.timeLimit,
		Degraded:        tr.degraded.Load(),
		IngestedEvents:  tr.ingestEvents,
		IngestedBytes:   tr.ingestBytes,
		DerivedEvals:    derived,
		DeriveFallbacks: fallbacks,
		Revised:         tr.revised,
	})
}
