package core

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/derive"
	"repro/internal/engine"
	"repro/internal/optimizer"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// reviseServer builds a small two-table server (20k-row fact, 1k-row
// dimension) with data attached. Each call builds an identical, independent
// server, so fresh-run comparisons start from first-touch statistics state.
func reviseServer(tb testing.TB) *whatif.Server {
	tb.Helper()
	cat := catalog.New()
	db := catalog.NewDatabase("db")
	db.AddTable(catalog.NewTable("db", "t", 0,
		&catalog.Column{Name: "id", Type: catalog.TypeInt, Width: 8, Distinct: 20000, Min: 0, Max: 19999},
		&catalog.Column{Name: "x", Type: catalog.TypeInt, Width: 8, Distinct: 2000, Min: 0, Max: 1999},
		&catalog.Column{Name: "a", Type: catalog.TypeInt, Width: 8, Distinct: 50, Min: 0, Max: 49},
		&catalog.Column{Name: "d_id", Type: catalog.TypeInt, Width: 8, Distinct: 1000, Min: 0, Max: 999},
		&catalog.Column{Name: "amt", Type: catalog.TypeFloat, Width: 8, Distinct: 500, Min: 0, Max: 499},
		&catalog.Column{Name: "pad", Type: catalog.TypeString, Width: 60, Distinct: 20000, Min: 0, Max: 19999},
	))
	db.AddTable(catalog.NewTable("db", "d", 0,
		&catalog.Column{Name: "d_id", Type: catalog.TypeInt, Width: 8, Distinct: 1000, Min: 0, Max: 999},
		&catalog.Column{Name: "grp", Type: catalog.TypeInt, Width: 8, Distinct: 10, Min: 0, Max: 9},
	))
	cat.AddDatabase(db)

	data := engine.NewDatabase(cat)
	const rows = 20000
	trows := make([][]engine.Value, 0, rows)
	for i := 0; i < rows; i++ {
		trows = append(trows, []engine.Value{
			engine.Num(float64(i)),
			engine.Num(float64((i * 37) % 2000)),
			engine.Num(float64(i % 50)),
			engine.Num(float64(i % 1000)),
			engine.Num(float64((i * 13) % 500)),
			engine.Str(fmt.Sprintf("pad%05d", i)),
		})
	}
	if err := data.Load("t", trows); err != nil {
		tb.Fatal(err)
	}
	drows := make([][]engine.Value, 0, 1000)
	for i := 0; i < 1000; i++ {
		drows = append(drows, []engine.Value{engine.Num(float64(i)), engine.Num(float64(i % 10))})
	}
	if err := data.Load("d", drows); err != nil {
		tb.Fatal(err)
	}
	s := whatif.NewServer("db", cat, optimizer.DefaultHardware())
	s.AttachData(data)
	return s
}

func reviseWorkload(tb testing.TB) *workload.Workload {
	tb.Helper()
	return workload.MustNew(
		"SELECT id FROM t WHERE x = 42",
		"SELECT id FROM t WHERE x = 99",
		"SELECT amt FROM t WHERE a = 7 AND x > 100",
		"SELECT t.id FROM t, d WHERE t.d_id = d.d_id AND d.grp = 3",
		"SELECT a, SUM(amt) FROM t GROUP BY a",
		"SELECT id FROM t WHERE amt = 250",
		"UPDATE t SET amt = 0 WHERE x = 5",
	)
}

// normalizeRec serializes a recommendation with its run-accounting fields
// (call counts, derive stats, stats created, duration) blanked: everything
// else — configuration, costs, improvement, storage, reports, usage, drops
// — must be byte-identical between a revision and a fresh run.
func normalizeRec(tb testing.TB, r *Recommendation) string {
	tb.Helper()
	c := *r
	c.WhatIfCalls = 0
	c.DerivedEvals = 0
	c.DeriveFallbacks = nil
	c.StatsCreated = 0
	c.Duration = 0
	b, err := json.MarshalIndent(&c, "", " ")
	if err != nil {
		tb.Fatal(err)
	}
	return string(b)
}

// reviseBase returns the existing physical design the equivalence matrix
// runs against: one useful index and one useless one, so drop analysis has
// a real decision to make per constraint set.
func reviseBase() *catalog.Configuration {
	base := catalog.NewConfiguration()
	base.AddIndex(catalog.NewIndex("t", "a", "pad"))
	base.AddIndex(catalog.NewIndex("d", "grp"))
	return base
}

// TestReviseEquivalence is the revision-equivalence property test: for a
// matrix of derive modes and parallelism levels, Revise(pool, C) must
// produce a byte-identical recommendation to a fresh full TuneContext run
// under constraints C (on an identically built fresh server), with
// search-only what-if calls never exceeding the full run's — across
// storage-bound changes, pinned and vetoed structures, and workload-slice
// reweighting. A revision to the pool's own constraints must reproduce the
// original recommendation exactly.
func TestReviseEquivalence(t *testing.T) {
	for _, mode := range []derive.Mode{derive.Off, derive.On, derive.Verify} {
		for _, par := range []int{1, 4} {
			if mode == derive.Verify && par != 1 {
				continue // verify doubles backend load; one level covers it
			}
			t.Run(fmt.Sprintf("derive=%s/P=%d", mode, par), func(t *testing.T) {
				w := reviseWorkload(t)
				origOpts := Options{
					Features:      FeatureIndexes | FeaturePartitioning,
					BaseConfig:    reviseBase(),
					AllowDrops:    true,
					StorageBudget: 64 << 20,
					Derive:        mode,
					Parallelism:   par,
					SkipReports:   false,
				}

				var pool *CostedPool
				origOpts.PoolSink = func(p *CostedPool) { pool = p }
				srv := reviseServer(t)
				orig, err := TuneContext(context.Background(), srv, w, origOpts)
				if err != nil {
					t.Fatal(err)
				}
				if pool == nil {
					t.Fatal("PoolSink never received a costed pool")
				}
				if err := pool.Check(); err != nil {
					t.Fatal(err)
				}
				// Serialize and reload: Revise must work from the persisted
				// form, exactly as dta -revise and the service use it.
				raw, err := json.Marshal(pool)
				if err != nil {
					t.Fatal(err)
				}
				var loaded CostedPool
				if err := json.Unmarshal(raw, &loaded); err != nil {
					t.Fatal(err)
				}
				if err := loaded.Check(); err != nil {
					t.Fatalf("pool fingerprint broken by JSON round trip: %v", err)
				}

				if len(orig.NewStructures) == 0 {
					t.Fatal("original run recommended nothing; constraint variants need a structure to pin/veto")
				}
				pin := catalog.NewConfiguration()
				orig.NewStructures[0].ApplyTo(pin)
				vetoKey := orig.NewStructures[0].Key()
				sig := w.Events[0].Signature()

				variants := []struct {
					name string
					cons Constraints
					// mutate builds the fresh-run Options for the same
					// constraints from the original ones.
					mutate func(o Options) Options
				}{
					{"same", Constraints{StorageBudget: origOpts.StorageBudget},
						func(o Options) Options { return o }},
					{"half-budget", Constraints{StorageBudget: origOpts.StorageBudget / 8},
						func(o Options) Options { o.StorageBudget = origOpts.StorageBudget / 8; return o }},
					{"pin", Constraints{StorageBudget: origOpts.StorageBudget, Pinned: pin},
						func(o Options) Options { o.UserConfig = pin; return o }},
					{"veto", Constraints{StorageBudget: origOpts.StorageBudget, Vetoed: []string{vetoKey}},
						func(o Options) Options { o.Vetoed = []string{vetoKey}; return o }},
					{"reweight", Constraints{StorageBudget: origOpts.StorageBudget, SliceWeights: map[string]float64{sig: 25}},
						func(o Options) Options { o.SliceWeights = map[string]float64{sig: 25}; return o }},
				}
				for _, v := range variants {
					t.Run(v.name, func(t *testing.T) {
						revised, err := Revise(context.Background(), srv, &loaded, v.cons, Options{Parallelism: par})
						if err != nil {
							t.Fatal(err)
						}
						freshOpts := v.mutate(origOpts)
						freshOpts.PoolSink = nil
						fresh, err := TuneContext(context.Background(), reviseServer(t), w, freshOpts)
						if err != nil {
							t.Fatal(err)
						}
						if got, want := normalizeRec(t, revised), normalizeRec(t, fresh); got != want {
							t.Errorf("revised recommendation differs from fresh run under same constraints\nrevised: %s\nfresh: %s", got, want)
						}
						if revised.WhatIfCalls > fresh.WhatIfCalls {
							t.Errorf("revision issued more what-if calls (%d) than the fresh run (%d)", revised.WhatIfCalls, fresh.WhatIfCalls)
						}
						if v.name == "same" {
							if got, want := normalizeRec(t, revised), normalizeRec(t, orig); got != want {
								t.Errorf("same-constraints revision differs from the original recommendation\nrevised: %s\noriginal: %s", got, want)
							}
						}
					})
				}
			})
		}
	}
}

// TestVetoExcludesMergedStructures: a vetoed structure must not reappear
// in a revision even when it is a *merged* structure — one synthesized by
// candidate merging and therefore absent from the pool's sealed candidate
// list. The veto filter used to run only before merging, so merging could
// rebuild the vetoed structure from unvetoed parents and re-recommend it
// (first seen live as a daemon re-proposing a vetoed index).
func TestVetoExcludesMergedStructures(t *testing.T) {
	w := reviseWorkload(t)
	opts := Options{Features: FeatureIndexes, StorageBudget: 64 << 20, AllowDrops: true}
	var pool *CostedPool
	opts.PoolSink = func(p *CostedPool) { pool = p }
	srv := reviseServer(t)
	rec, err := TuneContext(context.Background(), srv, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	inPool := map[string]bool{}
	for _, c := range pool.Candidates {
		inPool[c.Key()] = true
	}
	var merged string
	for _, s := range rec.NewStructures {
		if !inPool[s.Key()] {
			merged = s.Key()
			break
		}
	}
	if merged == "" {
		t.Fatal("no recommended structure is a merged one; the harness no longer covers the post-merge veto path — adjust the workload")
	}
	cons := Constraints{StorageBudget: opts.StorageBudget, Vetoed: []string{merged}}
	revised, err := Revise(context.Background(), srv, pool, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range revised.NewStructures {
		if s.Key() == merged {
			t.Fatalf("vetoed merged structure %q re-recommended by revision", merged)
		}
	}
	// The revision must still match a fresh full run under the same veto.
	freshOpts := opts
	freshOpts.PoolSink = nil
	freshOpts.Vetoed = []string{merged}
	fresh, err := TuneContext(context.Background(), reviseServer(t), w, freshOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := normalizeRec(t, revised), normalizeRec(t, fresh); got != want {
		t.Errorf("veto revision differs from fresh run under the same veto\nrevised: %s\nfresh: %s", got, want)
	}
}

// TestReviseZeroCallsOnSelectOnlyWorkload checks the CoPhy headline on a
// SELECT-only workload with derivation on: a storage-bound revision against
// the pool answers every evaluation from cached atoms or derived facts —
// zero new what-if optimizer calls.
func TestReviseZeroCallsOnSelectOnlyWorkload(t *testing.T) {
	w := workload.MustNew(
		"SELECT id FROM t WHERE x = 42",
		"SELECT amt FROM t WHERE a = 7 AND x > 100",
		"SELECT t.id FROM t, d WHERE t.d_id = d.d_id AND d.grp = 3",
		"SELECT a, SUM(amt) FROM t GROUP BY a",
		"SELECT id FROM t WHERE amt = 250",
	)
	var pool *CostedPool
	srv := reviseServer(t)
	_, err := TuneContext(context.Background(), srv, w, Options{
		Features:      FeatureIndexes,
		StorageBudget: 64 << 20,
		Derive:        derive.On,
		PoolSink:      func(p *CostedPool) { pool = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if pool == nil {
		t.Fatal("no pool captured")
	}
	for _, budget := range []int64{8 << 20, 32 << 20, 128 << 20} {
		rec, err := Revise(context.Background(), srv, pool, Constraints{StorageBudget: budget}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rec.WhatIfCalls != 0 {
			t.Errorf("budget %d: revision issued %d what-if calls, want 0", budget, rec.WhatIfCalls)
		}
	}
}

// TestRevisePoolCheck ensures tampered pools are rejected.
func TestRevisePoolCheck(t *testing.T) {
	p := &CostedPool{Statements: []workload.Statement{{SQL: "SELECT 1", Weight: 1}}}
	if err := p.Check(); err == nil {
		t.Fatal("unstamped pool passed Check")
	}
	p.Fingerprint = p.ComputeFingerprint()
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	p.Statements[0].Weight = 2
	if err := p.Check(); err == nil {
		t.Fatal("tampered pool passed Check")
	}
}
