package core

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/derive"
	"repro/internal/fault"
	"repro/internal/workload"
)

// testDeriveMode returns the Options.Derive mode the robustness suite runs
// under: CI's fault-matrix job pins "verify" in one leg via DTA_DERIVE, so
// every derived cost is cross-checked while faults fire; unset keeps
// derivation off.
func testDeriveMode(tb testing.TB) derive.Mode {
	tb.Helper()
	s := os.Getenv("DTA_DERIVE")
	if s == "" {
		return derive.Off
	}
	m, err := derive.ParseMode(s)
	if err != nil {
		tb.Fatalf("bad DTA_DERIVE: %v", err)
	}
	return m
}

// lookupWorkload builds n selective lookups with varying literals, enough
// distinct events to keep a session busy through candidate selection.
func lookupWorkload(n int) *workload.Workload {
	var sqls []string
	for i := 0; i < n; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT id, amt FROM t WHERE x = %d AND a = %d", i*37%10000, i%100))
	}
	return workload.MustNew(sqls...)
}

// structureSet renders a recommendation's structures for comparison.
func structureSet(rec *Recommendation) string {
	var out []string
	for _, st := range rec.NewStructures {
		out = append(out, st.String())
	}
	return strings.Join(out, "\n")
}

// TestStopReasonTransitions drives one session into each terminal
// StopReason — completed, cancelled, time-limit, degraded — and asserts the
// anytime contract holds in every case: a non-nil recommendation with a
// real baseline cost and no regression, whatever stopped the search.
func TestStopReasonTransitions(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T) (*Recommendation, error)
		want string
	}{
		{
			name: "completed",
			want: "",
			run: func(t *testing.T) (*Recommendation, error) {
				return Tune(testServer(t), lookupWorkload(3), Options{Features: FeatureIndexes, Derive: testDeriveMode(t)})
			},
		},
		{
			name: "cancelled",
			want: StopCancelled,
			run: func(t *testing.T) (*Recommendation, error) {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				ct := &cancellingTuner{Tuner: testServer(t), limit: 150, cancel: cancel}
				return TuneContext(ctx, ct, lookupWorkload(40), Options{NoCompression: true, Derive: testDeriveMode(t)})
			},
		},
		{
			name: "time-limit",
			want: StopTimeLimit,
			run: func(t *testing.T) (*Recommendation, error) {
				return Tune(testServer(t), lookupWorkload(60), Options{
					NoCompression: true, TimeLimit: 25 * time.Millisecond,
					Derive: testDeriveMode(t),
				})
			},
		},
		{
			name: "degraded",
			want: StopDegraded,
			run: func(t *testing.T) (*Recommendation, error) {
				// A 10% what-if failure rate is transient enough for the
				// escalated critical-stage retries to ride out, but double
				// the breaker's 5% threshold: the session must degrade, not
				// crash and not fail.
				spec, err := fault.ParseSpec("seed=11;whatif:error:0.10")
				if err != nil {
					t.Fatal(err)
				}
				return Tune(testServer(t), lookupWorkload(40), Options{
					NoCompression: true, Faults: fault.NewInjector(spec),
					Derive: testDeriveMode(t),
				})
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, err := tc.run(t)
			if err != nil {
				t.Fatalf("session must not fail: %v", err)
			}
			if rec == nil {
				t.Fatal("nil recommendation")
			}
			if rec.StopReason != tc.want {
				t.Fatalf("StopReason = %q, want %q", rec.StopReason, tc.want)
			}
			if rec.BaseCost <= 0 {
				t.Fatalf("best-so-far recommendation carries no baseline: %+v", rec)
			}
			if rec.Improvement < 0 {
				t.Fatalf("recommendation regresses: %.3f", rec.Improvement)
			}
			if rec.Config == nil {
				t.Fatal("nil configuration")
			}
		})
	}
}

// TestRetryMasksTransientFaults verifies the retry layer makes a mildly
// flaky backend indistinguishable from a healthy one: at a 2% injected
// failure rate (below the breaker's 5% threshold), the session completes
// without degrading and recommends exactly what a fault-free run does.
func TestRetryMasksTransientFaults(t *testing.T) {
	w := lookupWorkload(8)
	clean, err := Tune(testServer(t), w, Options{NoCompression: true, Derive: testDeriveMode(t)})
	if err != nil {
		t.Fatal(err)
	}

	spec, err := fault.ParseSpec("seed=3;whatif:error:0.02;stats:latency:0.05:100us")
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(spec)
	flaky, err := Tune(testServer(t), w, Options{NoCompression: true, Faults: in, Derive: testDeriveMode(t)})
	if err != nil {
		t.Fatalf("retries should have absorbed the faults: %v", err)
	}
	if flaky.StopReason != "" {
		t.Fatalf("session should not degrade at 2%% faults: %q", flaky.StopReason)
	}
	if got, want := structureSet(flaky), structureSet(clean); got != want {
		t.Fatalf("flaky backend changed the recommendation:\n%s\nvs\n%s", got, want)
	}
	if flaky.Cost != clean.Cost || flaky.BaseCost != clean.BaseCost {
		t.Fatalf("costs diverged: %.6f/%.6f vs %.6f/%.6f",
			flaky.BaseCost, flaky.Cost, clean.BaseCost, clean.Cost)
	}
	if counts := in.Counts(); counts["whatif/error"] == 0 {
		t.Fatal("injector never fired; the test exercised nothing")
	}
	// Retries re-issue the failed calls, so the flaky run must report at
	// least as many what-if calls as the clean one.
	if flaky.WhatIfCalls < clean.WhatIfCalls {
		t.Fatalf("retry accounting lost calls: %d < %d", flaky.WhatIfCalls, clean.WhatIfCalls)
	}
}

// TestCheckpointResume verifies the checkpoint/resume contract: a session
// resumed from a mid-run checkpoint (round-tripped through JSON, as the
// service persists it) produces the identical recommendation to an
// uninterrupted run, while issuing fewer optimizer calls.
func TestCheckpointResume(t *testing.T) {
	w := lookupWorkload(10)
	var first *Checkpoint
	snaps := 0
	// CheckpointEvery counts real optimizer calls; keep it small enough that
	// a checkpoint lands even when derivation (DTA_DERIVE=verify in CI's
	// fault matrix) answers most evaluations without a call.
	full, err := Tune(testServer(t), w, Options{
		NoCompression:   true,
		Derive:          testDeriveMode(t),
		CheckpointEvery: 25,
		CheckpointSink: func(ck *Checkpoint) {
			snaps++
			if first == nil {
				first = ck
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatalf("no checkpoint emitted over %d what-if calls", full.WhatIfCalls)
	}
	if len(first.Cache) == 0 {
		t.Fatal("checkpoint carries no cached costs")
	}
	t.Logf("checkpoints=%d firstCache=%d fullCalls=%d", snaps, len(first.Cache), full.WhatIfCalls)

	// Round-trip through JSON exactly as the service's state files do;
	// float costs must survive bit-exactly.
	data, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	var restored Checkpoint
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}

	// Resume on a fresh server — the post-crash world: no statistics, cold
	// caches, only the checkpoint file.
	resumed, err := Tune(testServer(t), w, Options{NoCompression: true, Resume: &restored, Derive: testDeriveMode(t)})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := structureSet(resumed), structureSet(full); got != want {
		t.Fatalf("resumed recommendation differs:\n%s\nvs\n%s", got, want)
	}
	if resumed.Cost != full.Cost || resumed.BaseCost != full.BaseCost {
		t.Fatalf("resumed costs differ: %.9f/%.9f vs %.9f/%.9f",
			resumed.BaseCost, resumed.Cost, full.BaseCost, full.Cost)
	}
	if resumed.WhatIfCalls >= full.WhatIfCalls {
		t.Fatalf("resume saved no optimizer calls: %d vs %d", resumed.WhatIfCalls, full.WhatIfCalls)
	}
}

// TestDegradedSkipsReports verifies a degraded session behaves like a
// cancelled one at the reporting stage: headline numbers are in place but
// the per-query reports are skipped — the backend already proved flaky and
// each report line would hammer it further.
func TestDegradedSkipsReports(t *testing.T) {
	spec, err := fault.ParseSpec("seed=19;whatif:error:0.10")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Tune(testServer(t), lookupWorkload(40), Options{
		NoCompression: true, Faults: fault.NewInjector(spec),
		Derive: testDeriveMode(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.StopReason != StopDegraded {
		t.Skipf("session did not degrade (StopReason %q); nothing to assert", rec.StopReason)
	}
	if len(rec.Reports) != 0 {
		t.Fatalf("degraded session built %d per-query reports", len(rec.Reports))
	}
}
