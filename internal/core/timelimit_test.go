package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestTimeLimit verifies time-bound tuning (paper §2.1: "an upper bound on
// the time that DTA is allowed to run"): with a tiny budget the advisor
// still terminates promptly and returns a valid (possibly empty)
// recommendation that is never worse than doing nothing.
func TestTimeLimit(t *testing.T) {
	s := testServer(t)
	var sqls []string
	for i := 0; i < 120; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT id, amt FROM t WHERE x = %d AND a = %d", i*3, i%100))
	}
	w := workload.MustNew(sqls...)

	start := time.Now()
	rec, err := Tune(s, w, Options{TimeLimit: 30 * time.Millisecond, NoCompression: true})
	if err != nil {
		t.Fatal(err)
	}
	// Termination is prompt: the deadline is checked between per-query
	// selections and greedy steps, so allow a generous multiple.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("time-bound tuning took %s", elapsed)
	}
	if rec.Improvement < 0 {
		t.Fatalf("bounded tuning must not recommend a regression: %v", rec.Improvement)
	}
	if err := rec.Config.Validate(s.Cat); err != nil {
		t.Fatal(err)
	}

	// An ample budget finds at least as much.
	rec2, err := Tune(s, w, Options{NoCompression: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Improvement < rec.Improvement-1e-9 {
		t.Fatalf("unbounded tuning should not be worse: %.3f vs %.3f", rec2.Improvement, rec.Improvement)
	}
}
