package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

// TestTimeLimit verifies time-bound tuning (paper §2.1: "an upper bound on
// the time that DTA is allowed to run"): with a tiny budget the advisor
// still terminates promptly and returns a valid (possibly empty)
// recommendation that is never worse than doing nothing.
func TestTimeLimit(t *testing.T) {
	s := testServer(t)
	var sqls []string
	for i := 0; i < 120; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT id, amt FROM t WHERE x = %d AND a = %d", i*3, i%100))
	}
	w := workload.MustNew(sqls...)

	start := time.Now()
	rec, err := Tune(s, w, Options{TimeLimit: 30 * time.Millisecond, NoCompression: true})
	if err != nil {
		t.Fatal(err)
	}
	// Termination is prompt: the deadline is checked between per-query
	// selections and greedy steps, so allow a generous multiple.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("time-bound tuning took %s", elapsed)
	}
	if rec.Improvement < 0 {
		t.Fatalf("bounded tuning must not recommend a regression: %v", rec.Improvement)
	}
	if err := rec.Config.Validate(s.Cat); err != nil {
		t.Fatal(err)
	}
	if rec.StopReason != StopTimeLimit {
		t.Fatalf("StopReason = %q, want %q", rec.StopReason, StopTimeLimit)
	}

	// An ample budget finds at least as much.
	rec2, err := Tune(s, w, Options{NoCompression: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Improvement < rec.Improvement-1e-9 {
		t.Fatalf("unbounded tuning should not be worse: %.3f vs %.3f", rec2.Improvement, rec.Improvement)
	}
	if rec2.StopReason != "" {
		t.Fatalf("unbounded tuning stopped early: %q", rec2.StopReason)
	}
}

// cancellingTuner wraps a Tuner and cancels a context when the what-if call
// counter reaches limit, simulating a DBA hitting "stop" mid-search.
type cancellingTuner struct {
	Tuner
	calls  atomic.Int64
	limit  int64
	cancel context.CancelFunc
}

func (c *cancellingTuner) WhatIfCost(stmt sqlparser.Statement, cfg *catalog.Configuration) (float64, []string, error) {
	if c.calls.Add(1) == c.limit {
		c.cancel()
	}
	return c.Tuner.WhatIfCost(stmt, cfg)
}

// TestCancelMidGreedy verifies the anytime contract under cancellation
// (paper §2.1): cancelling mid-Greedy(m,k) stops the search within one
// what-if call and still returns a valid best-so-far recommendation with
// exact call accounting.
func TestCancelMidGreedy(t *testing.T) {
	s := testServer(t)
	var sqls []string
	for i := 0; i < 120; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT id, amt FROM t WHERE x = %d AND a = %d", i*3, i%100))
	}
	w := workload.MustNew(sqls...)

	// Baseline costing alone takes 120 calls; a limit of 200 lands the
	// cancellation inside candidate selection's per-query greedy searches.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ct := &cancellingTuner{Tuner: s, limit: 200, cancel: cancel}
	rec, err := TuneContext(ctx, ct, w, Options{NoCompression: true, SkipReports: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.StopReason != StopCancelled {
		t.Fatalf("StopReason = %q, want %q", rec.StopReason, StopCancelled)
	}
	// The search stops within one what-if call of the cancellation; only
	// sealing the final configuration's cost may add the odd residual call
	// (it is almost always served from the evaluator cache).
	calls := ct.calls.Load()
	if calls < ct.limit || calls > ct.limit+2 {
		t.Fatalf("cancellation at call %d stopped after %d calls", ct.limit, calls)
	}
	if rec.WhatIfCalls != calls {
		t.Fatalf("recommendation accounts %d calls, tuner saw %d", rec.WhatIfCalls, calls)
	}
	if rec.Improvement < 0 {
		t.Fatalf("partial recommendation worse than base: %v", rec.Improvement)
	}
	if err := rec.Config.Validate(s.Cat); err != nil {
		t.Fatalf("partial recommendation invalid: %v", err)
	}

	// Cancellation before baseline costing completes is the one case with
	// no meaningful partial result: an error, not a recommendation.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := TuneContext(done, s, w, Options{NoCompression: true}); err == nil {
		t.Fatal("expected an error when cancelled before baseline costing")
	}
}
