// Package cust generates the four customer scenarios of paper §7.1
// (Tables 1 and 2). The originals were internal Microsoft SQL Server
// customer databases; this package substitutes synthetic databases and
// workloads reproducing the published characteristics:
//
//	CUST1 — a well-administered OLTP/reporting mix (15K events). The DBA's
//	        hand-tuned design is good (82%); DTA edges it out (87%).
//	CUST2 — a large reporting workload (252K events) whose hand-tuned
//	        design helps little (6%); DTA finds much more (41%).
//	CUST3 — an update-dominated workload (176K events) where the hand-tuned
//	        extra structures actively hurt (−5%); DTA correctly recommends
//	        no new structures (0%).
//	CUST4 — a small database (9K events) hand-tuned with only primary-key
//	        and unique indexes (0%); DTA improves considerably (50%).
package cust

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/workload"
)

// Scenario bundles one customer case: catalog, data loader, trace, the
// hand-tuned configuration, and the published workload size.
type Scenario struct {
	Name string
	// Databases / Tables / DataGB describe Table 1's overview row.
	Databases int
	TablesN   int
	DataGB    float64
	// Events is the published number of workload events (Table 2).
	Events int

	Catalog   *catalog.Catalog
	HandTuned *catalog.Configuration
	// workloadFn builds the trace at a given event count.
	workloadFn func(cat *catalog.Catalog, events int, seed int64) *workload.Workload
}

// Workload builds the scenario's trace with the given size (use s.Events
// for the published size; tests use smaller sizes).
func (s *Scenario) Workload(events int, seed int64) *workload.Workload {
	return s.workloadFn(s.Catalog, events, seed)
}

// Load generates data for the scenario at the catalog's row counts.
func (s *Scenario) Load(seed int64) (*engine.Database, error) {
	return genericLoad(s.Catalog, seed)
}

// ConstraintConfig returns the raw configuration: primary-key indexes only.
func (s *Scenario) ConstraintConfig() *catalog.Configuration {
	cfg := catalog.NewConfiguration()
	for _, t := range s.Catalog.Tables() {
		if len(t.PrimaryKey) > 0 {
			ix := catalog.NewIndex(t.Name, t.PrimaryKey...)
			ix.Clustered = true // SQL Server primary keys cluster by default
			ix.FromConstraint = true
			cfg.AddIndex(ix)
		}
	}
	return cfg
}

// Scale shrinks the scenario's data (and distinct counts) for fast runs.
func scaleRows(cat *catalog.Catalog, factor float64) {
	for _, t := range cat.Tables() {
		t.Rows = int64(float64(t.Rows) * factor)
		if t.Rows < 10 {
			t.Rows = 10
		}
		for _, c := range t.Columns {
			if c.Distinct > t.Rows {
				c.Distinct = t.Rows
			}
			if c.Max > float64(t.Rows)*10 && c.Distinct == t.Rows {
				c.Max = float64(t.Rows)
			}
		}
	}
}

// All returns the four scenarios at the given data scale (1.0 = published
// sizes; tests and benchmarks pass much smaller factors).
func All(scale float64) []*Scenario {
	return []*Scenario{Cust1(scale), Cust2(scale), Cust3(scale), Cust4(scale)}
}

// opTable adds an OLTP-ish table with a sequential key.
func opTable(db *catalog.Database, name string, rows int64, extra ...*catalog.Column) {
	cols := []*catalog.Column{
		{Name: "id", Type: catalog.TypeInt, Width: 8, Distinct: rows, Min: 1, Max: float64(rows)},
	}
	cols = append(cols, extra...)
	t := catalog.NewTable(db.Name, name, rows, cols...)
	t.PrimaryKey = []string{"id"}
	db.AddTable(t)
}

func col(name string, typ catalog.Type, width int, distinct int64, min, max float64) *catalog.Column {
	return &catalog.Column{Name: name, Type: typ, Width: width, Distinct: distinct, Min: min, Max: max}
}

// Cust1 is the well-administered case: order management with a reporting
// tail. The hand-tuned design indexes the hot lookup paths well.
func Cust1(scale float64) *Scenario {
	cat := catalog.New()
	db := catalog.NewDatabase("cust1")
	opTable(db, "c1_orders", 800000,
		col("customer_id", catalog.TypeInt, 8, 120000, 1, 120000),
		col("order_date", catalog.TypeDate, 8, 1500, 0, 1500),
		col("status", catalog.TypeString, 4, 6, 0, 5),
		col("total", catalog.TypeFloat, 8, 40000, 1, 9000),
		col("region", catalog.TypeInt, 8, 40, 1, 40),
	)
	opTable(db, "c1_items", 3200000,
		col("order_id", catalog.TypeInt, 8, 800000, 1, 800000),
		col("product_id", catalog.TypeInt, 8, 25000, 1, 25000),
		col("qty", catalog.TypeInt, 8, 100, 1, 100),
		col("price", catalog.TypeFloat, 8, 20000, 1, 2000),
	)
	opTable(db, "c1_customers", 120000,
		col("name", catalog.TypeString, 32, 120000, 0, 119999),
		col("segment", catalog.TypeInt, 8, 8, 1, 8),
		col("city", catalog.TypeInt, 8, 400, 1, 400),
	)
	opTable(db, "c1_products", 25000,
		col("category", catalog.TypeInt, 8, 60, 1, 60),
		col("list_price", catalog.TypeFloat, 8, 5000, 1, 2000),
	)
	cat.AddDatabase(db)
	scaleRows(cat, scale)

	hand := catalog.NewConfiguration()
	// A competent DBA: indexes on the hot foreign keys and dates.
	hand.AddIndex(catalog.NewIndex("c1_orders", "customer_id"))
	hand.AddIndex(catalog.NewIndex("c1_orders", "order_date"))
	hand.AddIndex(catalog.NewIndex("c1_items", "order_id"))
	hand.AddIndex(catalog.NewIndex("c1_items", "product_id"))

	s := &Scenario{
		Name: "CUST1", Databases: 1, TablesN: 113, DataGB: 1.4, Events: 15000,
		Catalog: cat, HandTuned: hand,
	}
	s.workloadFn = func(cat *catalog.Catalog, events int, seed int64) *workload.Workload {
		rng := rand.New(rand.NewSource(seed))
		w := &workload.Workload{}
		mustAdd := func(sql string) { mustAddSQL(w, sql) }
		for i := 0; i < events; i++ {
			switch i % 10 {
			case 0, 1, 2:
				mustAdd(fmt.Sprintf("SELECT id, total FROM c1_orders WHERE customer_id = %d", rng.Intn(100000)+1))
			case 3, 4:
				mustAdd(fmt.Sprintf("SELECT order_id, qty, price FROM c1_items WHERE order_id = %d", rng.Intn(700000)+1))
			case 5:
				mustAdd(fmt.Sprintf("SELECT region, COUNT(*), SUM(total) FROM c1_orders WHERE order_date BETWEEN %d AND %d GROUP BY region", rng.Intn(1200), rng.Intn(1200)+90))
			case 6:
				mustAdd(fmt.Sprintf("SELECT p.category, SUM(i.price * i.qty) FROM c1_items i, c1_products p WHERE i.product_id = p.id AND p.category = %d GROUP BY p.category", rng.Intn(60)+1))
			case 7:
				mustAdd(fmt.Sprintf("SELECT c.name FROM c1_customers c, c1_orders o WHERE c.id = o.customer_id AND o.id = %d", rng.Intn(700000)+1))
			case 8:
				mustAdd(fmt.Sprintf("UPDATE c1_orders SET status = 'S' WHERE id = %d", rng.Intn(700000)+1))
			case 9:
				mustAdd(fmt.Sprintf("INSERT INTO c1_items VALUES (%d, %d, %d, %d, %d)", 9000000+i, rng.Intn(700000)+1, rng.Intn(25000)+1, rng.Intn(100)+1, rng.Intn(2000)+1))
			}
		}
		return w
	}
	return s
}

// Cust2 is the reporting-heavy case: the hand-tuned design (a couple of
// single-column indexes that the reporting queries barely use) achieves
// little; wide covering indexes and views have much more to give.
func Cust2(scale float64) *Scenario {
	cat := catalog.New()
	db := catalog.NewDatabase("cust2")
	opTable(db, "c2_facts", 5000000,
		col("dim1", catalog.TypeInt, 8, 500, 1, 500),
		col("dim2", catalog.TypeInt, 8, 2000, 1, 2000),
		col("dim3", catalog.TypeInt, 8, 50, 1, 50),
		col("ts", catalog.TypeDate, 8, 3000, 0, 3000),
		col("metric1", catalog.TypeFloat, 8, 100000, 0, 100000),
		col("metric2", catalog.TypeFloat, 8, 100000, 0, 100000),
		col("payload", catalog.TypeString, 64, 5000000, 0, 4999999),
	)
	opTable(db, "c2_dim1", 500, col("name", catalog.TypeString, 24, 500, 0, 499), col("grp", catalog.TypeInt, 8, 20, 1, 20))
	opTable(db, "c2_dim2", 2000, col("name", catalog.TypeString, 24, 2000, 0, 1999), col("kind", catalog.TypeInt, 8, 12, 1, 12))
	cat.AddDatabase(db)
	scaleRows(cat, scale)

	hand := catalog.NewConfiguration()
	// The DBA indexed the raw timestamp — the reports aggregate by
	// dimensions, so this rarely pays off.
	hand.AddIndex(catalog.NewIndex("c2_facts", "ts"))

	s := &Scenario{
		Name: "CUST2", Databases: 1, TablesN: 157, DataGB: 4.1, Events: 252000,
		Catalog: cat, HandTuned: hand,
	}
	s.workloadFn = func(cat *catalog.Catalog, events int, seed int64) *workload.Workload {
		rng := rand.New(rand.NewSource(seed))
		w := &workload.Workload{}
		for i := 0; i < events; i++ {
			var sql string
			switch i % 6 {
			case 0:
				sql = fmt.Sprintf("SELECT dim1, SUM(metric1) FROM c2_facts WHERE dim3 = %d GROUP BY dim1", rng.Intn(50)+1)
			case 1:
				sql = fmt.Sprintf("SELECT dim2, COUNT(*), AVG(metric2) FROM c2_facts WHERE dim1 = %d GROUP BY dim2", rng.Intn(500)+1)
			case 2:
				sql = fmt.Sprintf("SELECT d.grp, SUM(f.metric1) FROM c2_facts f, c2_dim1 d WHERE f.dim1 = d.id AND d.grp = %d GROUP BY d.grp", rng.Intn(20)+1)
			case 3:
				sql = fmt.Sprintf("SELECT dim3, SUM(metric1), SUM(metric2) FROM c2_facts WHERE ts BETWEEN %d AND %d GROUP BY dim3", rng.Intn(2500), rng.Intn(2500)+200)
			case 4:
				sql = fmt.Sprintf("SELECT d.kind, COUNT(*) FROM c2_facts f, c2_dim2 d WHERE f.dim2 = d.id AND f.dim3 = %d GROUP BY d.kind", rng.Intn(50)+1)
			case 5:
				sql = fmt.Sprintf("SELECT metric1, metric2 FROM c2_facts WHERE dim2 = %d AND dim3 = %d", rng.Intn(2000)+1, rng.Intn(50)+1)
			}
			mustAddSQL(w, sql)
		}
		return w
	}
	return s
}

// Cust3 is the update-dominated case (paper: "the hand-tuned design was
// worse than the raw configuration due to presence of updates. For this
// workload, DTA correctly recommended no new physical design structures").
func Cust3(scale float64) *Scenario {
	cat := catalog.New()
	db := catalog.NewDatabase("cust3")
	opTable(db, "c3_sessions", 2000000,
		col("user_id", catalog.TypeInt, 8, 300000, 1, 300000),
		col("started", catalog.TypeDate, 8, 365, 0, 365),
		col("state", catalog.TypeInt, 8, 5, 0, 4),
		col("bytes", catalog.TypeFloat, 8, 100000, 0, 1000000),
	)
	opTable(db, "c3_events", 6000000,
		col("session_id", catalog.TypeInt, 8, 2000000, 1, 2000000),
		col("etype", catalog.TypeInt, 8, 40, 1, 40),
		col("val", catalog.TypeFloat, 8, 10000, 0, 10000),
	)
	cat.AddDatabase(db)
	scaleRows(cat, scale)

	hand := catalog.NewConfiguration()
	// The DBA added wide redundant indexes that mostly pay maintenance.
	hand.AddIndex(catalog.NewIndex("c3_sessions", "started").WithInclude("user_id", "state", "bytes"))
	hand.AddIndex(catalog.NewIndex("c3_events", "etype").WithInclude("val", "session_id"))
	hand.AddIndex(catalog.NewIndex("c3_events", "val"))

	s := &Scenario{
		Name: "CUST3", Databases: 2, TablesN: 89, DataGB: 2.9, Events: 176000,
		Catalog: cat, HandTuned: hand,
	}
	s.workloadFn = func(cat *catalog.Catalog, events int, seed int64) *workload.Workload {
		rng := rand.New(rand.NewSource(seed))
		maxSession := int(cat.ResolveTable("c3_sessions").Rows)
		w := &workload.Workload{}
		nextID := int(cat.ResolveTable("c3_events").Rows) + 1
		for i := 0; i < events; i++ {
			var sql string
			switch i % 8 {
			case 0, 1:
				sql = fmt.Sprintf("INSERT INTO c3_events VALUES (%d, %d, %d, %d)", nextID, rng.Intn(maxSession)+1, rng.Intn(40)+1, rng.Intn(10000))
				nextID++
			case 2, 3:
				sql = fmt.Sprintf("UPDATE c3_sessions SET state = %d, bytes = %d WHERE id = %d", rng.Intn(5), rng.Intn(1000000), rng.Intn(maxSession)+1)
			case 4:
				sql = fmt.Sprintf("UPDATE c3_events SET val = %d WHERE id = %d", rng.Intn(10000), rng.Intn(nextID-1)+1)
			case 5:
				sql = fmt.Sprintf("DELETE FROM c3_events WHERE id = %d", rng.Intn(nextID-1)+1)
			case 6:
				sql = fmt.Sprintf("SELECT state, bytes FROM c3_sessions WHERE id = %d", rng.Intn(maxSession)+1)
			case 7:
				sql = fmt.Sprintf("SELECT val FROM c3_events WHERE id = %d", rng.Intn(nextID-1)+1)
			}
			mustAddSQL(w, sql)
		}
		return w
	}
	return s
}

// Cust4 is the small under-tuned database: the hand-tuned design consists of
// only the primary-key and unique indexes, so DTA improves considerably.
func Cust4(scale float64) *Scenario {
	cat := catalog.New()
	db := catalog.NewDatabase("cust4")
	opTable(db, "c4_tickets", 400000,
		col("assignee", catalog.TypeInt, 8, 200, 1, 200),
		col("queue", catalog.TypeInt, 8, 30, 1, 30),
		col("opened", catalog.TypeDate, 8, 1000, 0, 1000),
		col("priority", catalog.TypeInt, 8, 5, 1, 5),
		col("body", catalog.TypeString, 120, 400000, 0, 399999),
	)
	opTable(db, "c4_comments", 1200000,
		col("ticket_id", catalog.TypeInt, 8, 400000, 1, 400000),
		col("author", catalog.TypeInt, 8, 1500, 1, 1500),
		col("posted", catalog.TypeDate, 8, 1000, 0, 1000),
	)
	cat.AddDatabase(db)
	scaleRows(cat, scale)

	// Hand-tuned = nothing beyond constraints (quality 0% by definition).
	hand := catalog.NewConfiguration()

	s := &Scenario{
		Name: "CUST4", Databases: 1, TablesN: 131, DataGB: 0.4, Events: 9000,
		Catalog: cat, HandTuned: hand,
	}
	s.workloadFn = func(cat *catalog.Catalog, events int, seed int64) *workload.Workload {
		rng := rand.New(rand.NewSource(seed))
		maxTicket := int(cat.ResolveTable("c4_tickets").Rows)
		w := &workload.Workload{}
		for i := 0; i < events; i++ {
			var sql string
			switch i % 7 {
			case 0, 1:
				sql = fmt.Sprintf("SELECT id, priority FROM c4_tickets WHERE assignee = %d AND queue = %d", rng.Intn(200)+1, rng.Intn(30)+1)
			case 2:
				sql = fmt.Sprintf("SELECT queue, COUNT(*) FROM c4_tickets WHERE opened > %d GROUP BY queue", rng.Intn(900))
			case 3:
				sql = fmt.Sprintf("SELECT id FROM c4_comments WHERE ticket_id = %d ORDER BY posted", rng.Intn(maxTicket)+1)
			case 4:
				sql = fmt.Sprintf("SELECT author, COUNT(*) FROM c4_comments WHERE posted BETWEEN %d AND %d GROUP BY author", rng.Intn(900), rng.Intn(900)+30)
			case 5:
				sql = fmt.Sprintf("SELECT t.priority, COUNT(*) FROM c4_tickets t, c4_comments c WHERE t.id = c.ticket_id AND t.queue = %d GROUP BY t.priority", rng.Intn(30)+1)
			case 6:
				sql = fmt.Sprintf("UPDATE c4_tickets SET priority = %d WHERE id = %d", rng.Intn(5)+1, rng.Intn(maxTicket)+1)
			}
			mustAddSQL(w, sql)
		}
		return w
	}
	return s
}

func mustAddSQL(w *workload.Workload, sql string) {
	if err := w.Add(sql, 1); err != nil {
		panic(fmt.Sprintf("cust: bad generated SQL %q: %v", sql, err))
	}
}

// genericLoad fills every table with deterministic rows matching its column
// metadata (sequential keys, uniform draws elsewhere).
func genericLoad(cat *catalog.Catalog, seed int64) (*engine.Database, error) {
	rng := rand.New(rand.NewSource(seed))
	db := engine.NewDatabase(cat)
	for _, t := range cat.Tables() {
		rows := make([][]engine.Value, 0, t.Rows)
		for i := int64(1); i <= t.Rows; i++ {
			row := make([]engine.Value, 0, len(t.Columns))
			for ci, c := range t.Columns {
				switch {
				case ci == 0:
					row = append(row, engine.Num(float64(i)))
				case c.Type == catalog.TypeString:
					row = append(row, engine.Str(fmt.Sprintf("%s-%08d", c.Name, rng.Int63n(maxI64(c.Distinct, 1)))))
				default:
					span := c.Max - c.Min
					if span <= 0 {
						row = append(row, engine.Num(c.Min))
						continue
					}
					d := maxI64(c.Distinct, 1)
					row = append(row, engine.Num(c.Min+float64(rng.Int63n(d))*span/float64(d)))
				}
			}
			rows = append(rows, row)
		}
		if err := db.Load(t.Name, rows); err != nil {
			return nil, err
		}
	}
	db.SyncRowCounts()
	return db, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
