package cust

import (
	"testing"

	"repro/internal/optimizer"
)

func TestScenarios(t *testing.T) {
	for _, s := range All(0.01) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			if err := s.ConstraintConfig().Validate(s.Catalog); err != nil {
				t.Fatalf("constraint config: %v", err)
			}
			if err := s.HandTuned.Validate(s.Catalog); err != nil {
				t.Fatalf("hand-tuned config: %v", err)
			}
			w := s.Workload(200, 5)
			if w.Len() < 190 {
				t.Fatalf("events = %d", w.Len())
			}
			for _, e := range w.Events {
				if _, err := optimizer.Analyze(s.Catalog, e.Stmt); err != nil {
					t.Fatalf("%s: %v", e.SQL, err)
				}
			}
		})
	}
}

func TestCust3IsUpdateHeavy(t *testing.T) {
	s := Cust3(0.01)
	w := s.Workload(400, 9)
	dml := 0
	for _, e := range w.Events {
		q, err := optimizer.Analyze(s.Catalog, e.Stmt)
		if err != nil {
			t.Fatal(err)
		}
		if q.Kind != optimizer.KindSelect {
			dml++
		}
	}
	if frac := float64(dml) / float64(w.Len()); frac < 0.5 {
		t.Fatalf("CUST3 must be update-dominated, dml fraction = %.2f", frac)
	}
}

func TestScenarioLoad(t *testing.T) {
	s := Cust4(0.005)
	db, err := s.Load(3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := db.Materialize(s.ConstraintConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ExecSQL("SELECT COUNT(*) FROM c4_tickets")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].F <= 0 {
		t.Fatal("no data loaded")
	}
}
