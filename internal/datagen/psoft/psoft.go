// Package psoft generates the PSOFT scenario of paper §7.4: a customer
// database running a PeopleSoft-style ERP application — about 0.75 GB of
// data — with a trace of roughly 6000 events (queries, inserts, updates and
// deletes) that is heavily templatized, as real packaged-application
// workloads are: statements come from stored procedures, so thousands of
// events share a few hundred signatures. DTA ends up tuning about 10% of
// the events after workload compression, for a ~5.8x speedup.
package psoft

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/workload"
)

// Scale multiplies the default row counts (1.0 ≈ the paper's 0.75 GB).
// Benchmarks and tests use smaller scales.

// Catalog builds the ERP schema.
func Catalog(scale float64) *catalog.Catalog {
	n := func(base int) int64 {
		v := int64(float64(base) * scale)
		if v < 10 {
			v = 10
		}
		return v
	}
	cat := catalog.New()
	db := catalog.NewDatabase("psoft")

	db.AddTable(catalog.NewTable("psoft", "ps_employee", n(60000),
		&catalog.Column{Name: "emplid", Type: catalog.TypeInt, Width: 8, Distinct: n(60000), Min: 1, Max: float64(n(60000))},
		&catalog.Column{Name: "deptid", Type: catalog.TypeInt, Width: 8, Distinct: n(800), Min: 1, Max: float64(n(800))},
		&catalog.Column{Name: "jobcode", Type: catalog.TypeInt, Width: 8, Distinct: 300, Min: 1, Max: 300},
		&catalog.Column{Name: "status", Type: catalog.TypeString, Width: 2, Distinct: 4, Min: 0, Max: 3},
		&catalog.Column{Name: "salary", Type: catalog.TypeFloat, Width: 8, Distinct: 5000, Min: 20000, Max: 250000},
		&catalog.Column{Name: "hire_dt", Type: catalog.TypeDate, Width: 8, Distinct: 7300, Min: 0, Max: 7300},
		&catalog.Column{Name: "name", Type: catalog.TypeString, Width: 40, Distinct: n(60000), Min: 0, Max: float64(n(60000) - 1)},
	))
	db.AddTable(catalog.NewTable("psoft", "ps_department", n(800),
		&catalog.Column{Name: "deptid", Type: catalog.TypeInt, Width: 8, Distinct: n(800), Min: 1, Max: float64(n(800))},
		&catalog.Column{Name: "descr", Type: catalog.TypeString, Width: 30, Distinct: n(800), Min: 0, Max: float64(n(800) - 1)},
		&catalog.Column{Name: "company", Type: catalog.TypeInt, Width: 8, Distinct: 12, Min: 1, Max: 12},
		&catalog.Column{Name: "location", Type: catalog.TypeInt, Width: 8, Distinct: 50, Min: 1, Max: 50},
	))
	db.AddTable(catalog.NewTable("psoft", "ps_job", n(120000),
		&catalog.Column{Name: "emplid", Type: catalog.TypeInt, Width: 8, Distinct: n(60000), Min: 1, Max: float64(n(60000))},
		&catalog.Column{Name: "effdt", Type: catalog.TypeDate, Width: 8, Distinct: 7300, Min: 0, Max: 7300},
		&catalog.Column{Name: "jobcode", Type: catalog.TypeInt, Width: 8, Distinct: 300, Min: 1, Max: 300},
		&catalog.Column{Name: "deptid", Type: catalog.TypeInt, Width: 8, Distinct: n(800), Min: 1, Max: float64(n(800))},
		&catalog.Column{Name: "action", Type: catalog.TypeString, Width: 4, Distinct: 10, Min: 0, Max: 9},
		&catalog.Column{Name: "comprate", Type: catalog.TypeFloat, Width: 8, Distinct: 4000, Min: 10, Max: 500},
	))
	db.AddTable(catalog.NewTable("psoft", "ps_voucher", n(250000),
		&catalog.Column{Name: "voucher_id", Type: catalog.TypeInt, Width: 8, Distinct: n(250000), Min: 1, Max: float64(n(250000))},
		&catalog.Column{Name: "vendor_id", Type: catalog.TypeInt, Width: 8, Distinct: n(5000), Min: 1, Max: float64(n(5000))},
		&catalog.Column{Name: "invoice_dt", Type: catalog.TypeDate, Width: 8, Distinct: 2000, Min: 0, Max: 2000},
		&catalog.Column{Name: "gross_amt", Type: catalog.TypeFloat, Width: 8, Distinct: 50000, Min: 1, Max: 100000},
		&catalog.Column{Name: "status", Type: catalog.TypeString, Width: 2, Distinct: 5, Min: 0, Max: 4},
		&catalog.Column{Name: "business_unit", Type: catalog.TypeInt, Width: 8, Distinct: 20, Min: 1, Max: 20},
	))
	db.AddTable(catalog.NewTable("psoft", "ps_vendor", n(5000),
		&catalog.Column{Name: "vendor_id", Type: catalog.TypeInt, Width: 8, Distinct: n(5000), Min: 1, Max: float64(n(5000))},
		&catalog.Column{Name: "vendor_name", Type: catalog.TypeString, Width: 40, Distinct: n(5000), Min: 0, Max: float64(n(5000) - 1)},
		&catalog.Column{Name: "vendor_class", Type: catalog.TypeString, Width: 4, Distinct: 8, Min: 0, Max: 7},
	))
	db.AddTable(catalog.NewTable("psoft", "ps_ledger", n(900000),
		&catalog.Column{Name: "ledger_id", Type: catalog.TypeInt, Width: 8, Distinct: n(900000), Min: 1, Max: float64(n(900000))},
		&catalog.Column{Name: "account", Type: catalog.TypeInt, Width: 8, Distinct: 2000, Min: 1000, Max: 3000},
		&catalog.Column{Name: "deptid", Type: catalog.TypeInt, Width: 8, Distinct: n(800), Min: 1, Max: float64(n(800))},
		&catalog.Column{Name: "fiscal_year", Type: catalog.TypeInt, Width: 8, Distinct: 8, Min: 1998, Max: 2005},
		&catalog.Column{Name: "period", Type: catalog.TypeInt, Width: 8, Distinct: 12, Min: 1, Max: 12},
		&catalog.Column{Name: "amount", Type: catalog.TypeFloat, Width: 8, Distinct: 100000, Min: -50000, Max: 50000},
	))
	cat.AddDatabase(db)
	db.Table("ps_employee").PrimaryKey = []string{"emplid"}
	db.Table("ps_department").PrimaryKey = []string{"deptid"}
	db.Table("ps_voucher").PrimaryKey = []string{"voucher_id"}
	db.Table("ps_vendor").PrimaryKey = []string{"vendor_id"}
	db.Table("ps_ledger").PrimaryKey = []string{"ledger_id"}
	return cat
}

// Load generates deterministic data for the schema.
func Load(cat *catalog.Catalog, seed int64) (*engine.Database, error) {
	rng := rand.New(rand.NewSource(seed))
	db := engine.NewDatabase(cat)
	for _, t := range cat.Tables() {
		rows := make([][]engine.Value, 0, t.Rows)
		for i := int64(1); i <= t.Rows; i++ {
			row := make([]engine.Value, 0, len(t.Columns))
			for ci, c := range t.Columns {
				switch {
				case ci == 0: // key column: sequential
					row = append(row, engine.Num(float64(i)))
				case c.Type == catalog.TypeString:
					d := c.Distinct
					if d < 1 {
						d = 1
					}
					row = append(row, engine.Str(fmt.Sprintf("%s-%07d", c.Name, rng.Int63n(d))))
				default:
					span := c.Max - c.Min
					if span <= 0 {
						row = append(row, engine.Num(c.Min))
						continue
					}
					d := c.Distinct
					if d < 1 {
						d = 1
					}
					v := c.Min + float64(rng.Int63n(d))*span/float64(d)
					row = append(row, engine.Num(v))
				}
			}
			rows = append(rows, row)
		}
		if err := db.Load(t.Name, rows); err != nil {
			return nil, err
		}
	}
	db.SyncRowCounts()
	return db, nil
}

// templates are the application's statement shapes (stored-procedure style);
// %d / %g placeholders take per-instance constants.
var templateSpecs = []struct {
	sql    string
	args   int
	weight int // relative frequency in the trace
}{
	{"SELECT name, deptid, salary FROM ps_employee WHERE emplid = %d", 1, 14},
	{"SELECT emplid, effdt, jobcode FROM ps_job WHERE emplid = %d ORDER BY effdt DESC", 1, 10},
	{"SELECT e.name, d.descr FROM ps_employee e, ps_department d WHERE e.deptid = d.deptid AND e.emplid = %d", 1, 8},
	{"SELECT deptid, COUNT(*), AVG(salary) FROM ps_employee WHERE status = 'A' AND deptid = %d GROUP BY deptid", 1, 5},
	{"SELECT voucher_id, gross_amt FROM ps_voucher WHERE vendor_id = %d AND status = 'P'", 1, 7},
	{"SELECT v.vendor_name, SUM(vo.gross_amt) FROM ps_voucher vo, ps_vendor v WHERE vo.vendor_id = v.vendor_id AND vo.invoice_dt BETWEEN %d AND %d GROUP BY v.vendor_name", 2, 3},
	{"SELECT account, SUM(amount) FROM ps_ledger WHERE fiscal_year = %d AND period = %d GROUP BY account", 2, 4},
	{"SELECT deptid, SUM(amount) FROM ps_ledger WHERE account = %d AND fiscal_year = %d GROUP BY deptid", 2, 4},
	{"SELECT emplid, comprate FROM ps_job WHERE deptid = %d AND action = 'PAY'", 1, 4},
	{"SELECT jobcode, COUNT(*) FROM ps_employee WHERE hire_dt > %d GROUP BY jobcode", 1, 2},
	{"SELECT business_unit, COUNT(*), SUM(gross_amt) FROM ps_voucher WHERE invoice_dt > %d GROUP BY business_unit", 1, 2},
	{"SELECT e.name FROM ps_employee e, ps_job j WHERE e.emplid = j.emplid AND j.jobcode = %d AND j.effdt > %d", 2, 3},
	{"UPDATE ps_employee SET salary = %d WHERE emplid = %d", 2, 5},
	{"UPDATE ps_voucher SET status = 'P' WHERE voucher_id = %d", 1, 6},
	{"UPDATE ps_ledger SET amount = %d WHERE ledger_id = %d", 2, 3},
	{"INSERT INTO ps_ledger VALUES (%d, %d, %d, %d, %d, %d)", 6, 5},
	{"INSERT INTO ps_voucher VALUES (%d, %d, %d, %d, 'O', %d)", 5, 3},
	{"DELETE FROM ps_voucher WHERE voucher_id = %d", 1, 2},
	{"SELECT d.descr, COUNT(*) FROM ps_employee e, ps_department d WHERE e.deptid = d.deptid AND d.company = %d GROUP BY d.descr", 1, 2},
	{"SELECT vendor_class, COUNT(*) FROM ps_vendor GROUP BY vendor_class", 0, 1},
}

// generatedTemplates derives additional ad-hoc report templates (the
// application also issues generated SQL), bringing the distinct-template
// count to the "few hundred" regime the paper describes for PSOFT.
func generatedTemplates(cat *catalog.Catalog, count int, rng *rand.Rand) []string {
	type tcols struct {
		table             string
		numeric, grouping []string
	}
	shapes := []tcols{
		{"ps_employee", []string{"deptid", "jobcode", "salary", "hire_dt"}, []string{"deptid", "jobcode", "status"}},
		{"ps_job", []string{"jobcode", "deptid", "effdt", "comprate"}, []string{"jobcode", "deptid", "action"}},
		{"ps_voucher", []string{"vendor_id", "invoice_dt", "gross_amt", "business_unit"}, []string{"business_unit", "status", "vendor_id"}},
		{"ps_ledger", []string{"account", "deptid", "fiscal_year", "period"}, []string{"account", "deptid", "fiscal_year", "period"}},
	}
	var out []string
	for len(out) < count {
		sh := shapes[rng.Intn(len(shapes))]
		sel := sh.numeric[rng.Intn(len(sh.numeric))]
		grp := sh.grouping[rng.Intn(len(sh.grouping))]
		agg := sh.numeric[rng.Intn(len(sh.numeric))]
		op := "="
		if rng.Intn(2) == 0 {
			op = ">"
		}
		fn := []string{"COUNT", "SUM", "AVG"}[rng.Intn(3)]
		arg := agg
		if fn == "COUNT" {
			arg = "*"
		}
		sql := fmt.Sprintf("SELECT %s, %s(%s) FROM %s WHERE %s %s %%d GROUP BY %s",
			grp, fn, arg, sh.table, sel, op, grp)
		dup := false
		for _, o := range out {
			if o == sql {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, sql)
		}
	}
	return out
}

// Workload generates a trace of approximately the requested number of
// events. Statements instantiate the template specs with random constants;
// instance counts follow the spec weights, reproducing the heavy
// templatization of a packaged ERP application. Beyond the stored-procedure
// specs, generated report templates bring the distinct-template count to a
// few hundred for realistic traces.
func Workload(cat *catalog.Catalog, events int, seed int64) *workload.Workload {
	rng := rand.New(rand.NewSource(seed))
	totalWeight := 0
	for _, t := range templateSpecs {
		totalWeight += t.weight
	}
	// The number of distinct generated templates scales with the trace
	// length (a short trace simply has not exercised as many report shapes),
	// keeping the events-per-template ratio — the property compression
	// exploits — realistic at every scale.
	genCount := events / 15
	if genCount < 12 {
		genCount = 12
	}
	if genCount > 130 {
		genCount = 130
	}
	gen := generatedTemplates(cat, genCount, rng)
	genEvents := events * 2 / 5 // ~40% of the trace is generated SQL
	events -= genEvents
	w := &workload.Workload{}
	for i := 0; i < genEvents; i++ {
		sql := fmt.Sprintf(gen[i%len(gen)], rng.Intn(5000)+1)
		if err := w.Add(sql, 1); err != nil {
			panic(err)
		}
	}
	nextLedger := cat.ResolveTable("ps_ledger").Rows + 1
	nextVoucher := cat.ResolveTable("ps_voucher").Rows + 1
	for _, spec := range templateSpecs {
		n := events * spec.weight / totalWeight
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			args := make([]interface{}, spec.args)
			for a := range args {
				args[a] = rng.Intn(5000) + 1
			}
			// INSERTs need fresh keys in their first argument.
			if spec.args >= 1 && len(spec.sql) > 6 && spec.sql[:6] == "INSERT" {
				if spec.args == 6 {
					args[0] = nextLedger
					nextLedger++
					args[3] = 1998 + rng.Intn(8)
					args[4] = 1 + rng.Intn(12)
				} else {
					args[0] = nextVoucher
					nextVoucher++
				}
			}
			if err := w.Add(fmt.Sprintf(spec.sql, args...), 1); err != nil {
				panic(err) // templates are static; instantiation cannot fail
			}
		}
	}
	return w
}
