package psoft

import (
	"testing"

	"repro/internal/optimizer"
)

func TestWorkloadShape(t *testing.T) {
	cat := Catalog(0.01)
	w := Workload(cat, 1200, 3)
	if w.Len() < 1000 {
		t.Fatalf("events = %d, want ≈1200", w.Len())
	}
	tmpls := w.Templates()
	// A few hundred templates relative to thousands of events: heavy
	// templatization, the property compression exploits.
	if len(tmpls) < 60 || len(tmpls) > 250 {
		t.Fatalf("templates = %d, want a few hundred", len(tmpls))
	}
	if float64(len(tmpls)) > 0.25*float64(w.Len()) {
		t.Fatalf("not templatized enough: %d templates for %d events", len(tmpls), w.Len())
	}
	var dml int
	for _, e := range w.Events {
		if _, err := optimizer.Analyze(cat, e.Stmt); err != nil {
			t.Fatalf("%s: %v", e.SQL, err)
		}
		q, _ := optimizer.Analyze(cat, e.Stmt)
		if q.Kind != optimizer.KindSelect {
			dml++
		}
	}
	// The trace mixes queries with inserts/updates/deletes.
	if dml == 0 || dml == w.Len() {
		t.Fatalf("dml events = %d of %d, want a mix", dml, w.Len())
	}
}

func TestLoadSmall(t *testing.T) {
	cat := Catalog(0.003)
	db, err := Load(cat, 11)
	if err != nil {
		t.Fatal(err)
	}
	p, err := db.Materialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ExecSQL("SELECT COUNT(*) FROM ps_employee")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].F != float64(cat.ResolveTable("ps_employee").Rows) {
		t.Fatal("load count mismatch")
	}
}
