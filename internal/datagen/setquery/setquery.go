// Package setquery generates the SYNT1 synthetic database and workload of
// paper §7.4: a database conforming to the Set Query benchmark schema (one
// BENCH table whose kN columns have exactly N distinct values) and a
// workload of 8000 SPJ queries with grouping and aggregation drawn from
// approximately 100 distinct templates, each instance differing only in its
// constants. The heavy templatization is what makes workload compression
// shine (the paper reports a 43x tuning speedup at ~1% quality loss).
package setquery

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/workload"
)

// kCols lists the classic Set Query benchmark selectivity columns and their
// distinct counts.
var kCols = []struct {
	name     string
	distinct int64
}{
	{"k2", 2}, {"k4", 4}, {"k5", 5}, {"k10", 10}, {"k25", 25},
	{"k100", 100}, {"k1k", 1000}, {"k10k", 10000}, {"k40k", 40000},
	{"k100k", 100000}, {"k250k", 250000}, {"k500k", 500000},
}

// Catalog builds the BENCH schema with the given row count (the benchmark's
// canonical size is 1M rows; the paper's SYNT1 database is sized in the
// hundreds of MB).
func Catalog(rows int64) *catalog.Catalog {
	cat := catalog.New()
	db := catalog.NewDatabase("synt1")
	cols := []*catalog.Column{
		{Name: "kseq", Type: catalog.TypeInt, Width: 8, Distinct: rows, Min: 1, Max: float64(rows)},
	}
	for _, k := range kCols {
		d := k.distinct
		if d > rows {
			d = rows
		}
		cols = append(cols, &catalog.Column{
			Name: k.name, Type: catalog.TypeInt, Width: 8, Distinct: d, Min: 1, Max: float64(d),
		})
	}
	for i := 1; i <= 8; i++ {
		cols = append(cols, &catalog.Column{
			Name: fmt.Sprintf("s%d", i), Type: catalog.TypeString, Width: 20,
			Distinct: rows, Min: 0, Max: float64(rows - 1),
		})
	}
	db.AddTable(catalog.NewTable("synt1", "bench", rows, cols...))
	cat.AddDatabase(db)
	db.Table("bench").PrimaryKey = []string{"kseq"}
	return cat
}

// Load generates deterministic BENCH rows.
func Load(cat *catalog.Catalog, seed int64) (*engine.Database, error) {
	rng := rand.New(rand.NewSource(seed))
	db := engine.NewDatabase(cat)
	t := cat.ResolveTable("bench")
	rows := make([][]engine.Value, 0, t.Rows)
	for i := int64(1); i <= t.Rows; i++ {
		row := []engine.Value{engine.Num(float64(i))}
		for _, k := range kCols {
			d := k.distinct
			if d > t.Rows {
				d = t.Rows
			}
			row = append(row, engine.Num(float64(rng.Int63n(d)+1)))
		}
		for s := 1; s <= 8; s++ {
			row = append(row, engine.Str(fmt.Sprintf("s%d-%010d", s, i)))
		}
		rows = append(rows, row)
	}
	if err := db.Load("bench", rows); err != nil {
		return nil, err
	}
	db.SyncRowCounts()
	return db, nil
}

// template is one randomly structured query shape.
type template struct {
	selCols  []string // equality/range selection columns
	selRange []bool   // range vs equality per selection column
	groupBy  []string
	aggFunc  []string
	aggCol   []string
}

var aggFuncs = []string{"SUM", "COUNT", "AVG", "MIN", "MAX"}

// Templates generates n deterministic query templates by randomly selecting
// selection columns, grouping columns and aggregation columns/functions
// (the construction of paper §7.4).
func templates(n int, rng *rand.Rand) []template {
	out := make([]template, 0, n)
	for len(out) < n {
		var t template
		nSel := 1 + rng.Intn(2)
		perm := rng.Perm(len(kCols))
		for i := 0; i < nSel; i++ {
			t.selCols = append(t.selCols, kCols[perm[i]].name)
			t.selRange = append(t.selRange, rng.Intn(3) == 0)
		}
		nGrp := rng.Intn(3)
		for i := 0; i < nGrp; i++ {
			t.groupBy = append(t.groupBy, kCols[perm[nSel+i]].name)
		}
		nAgg := 1 + rng.Intn(2)
		for i := 0; i < nAgg; i++ {
			t.aggFunc = append(t.aggFunc, aggFuncs[rng.Intn(len(aggFuncs))])
			t.aggCol = append(t.aggCol, kCols[perm[(nSel+nGrp+i)%len(kCols)]].name)
		}
		out = append(out, t)
	}
	return out
}

// instantiate renders one instance of the template with fresh constants.
func (t template) instantiate(cat *catalog.Catalog, rng *rand.Rand) string {
	bench := cat.ResolveTable("bench")
	sql := "SELECT "
	for i, g := range t.groupBy {
		if i > 0 {
			sql += ", "
		}
		sql += g
	}
	for i := range t.aggFunc {
		if i > 0 || len(t.groupBy) > 0 {
			sql += ", "
		}
		sql += fmt.Sprintf("%s(%s)", t.aggFunc[i], t.aggCol[i])
	}
	sql += " FROM bench WHERE "
	for i, c := range t.selCols {
		if i > 0 {
			sql += " AND "
		}
		d := bench.DistinctOf(c)
		v := rng.Int63n(d) + 1
		if t.selRange[i] {
			span := d/10 + 1
			sql += fmt.Sprintf("%s BETWEEN %d AND %d", c, v, v+span)
		} else {
			sql += fmt.Sprintf("%s = %d", c, v)
		}
	}
	if len(t.groupBy) > 0 {
		sql += " GROUP BY "
		for i, g := range t.groupBy {
			if i > 0 {
				sql += ", "
			}
			sql += g
		}
	}
	return sql
}

// Trace returns a reader that lazily renders the SYNT1 workload as a
// profiler trace in the workload.ReadTrace line format ("1<TAB>SQL", one
// event per line). The statement sequence is exactly what Workload produces
// for the same arguments — same seed, same template draw, same constants —
// so batch and streaming ingestion of matching parameters tune identical
// events. Lines are generated on demand as the reader is drained: memory
// stays O(1) in events, which is what lets the scale sweep push million-event
// traces through the streaming path without materializing them.
func Trace(cat *catalog.Catalog, events, templateCount int, seed int64) io.Reader {
	rng := rand.New(rand.NewSource(seed))
	return &traceReader{cat: cat, tmpls: templates(templateCount, rng), rng: rng, events: events}
}

// traceReader lazily renders trace lines; see Trace.
type traceReader struct {
	cat    *catalog.Catalog
	tmpls  []template
	rng    *rand.Rand
	events int
	next   int
	buf    []byte
}

func (t *traceReader) Read(p []byte) (int, error) {
	for len(t.buf) == 0 {
		if t.next >= t.events {
			return 0, io.EOF
		}
		tm := t.tmpls[t.next%len(t.tmpls)]
		t.buf = append(t.buf[:0], "1\t"...)
		t.buf = append(t.buf, tm.instantiate(t.cat, t.rng)...)
		t.buf = append(t.buf, '\n')
		t.next++
	}
	n := copy(p, t.buf)
	t.buf = t.buf[n:]
	return n, nil
}

// Workload generates the SYNT1 workload: events queries drawn from
// templateCount templates.
func Workload(cat *catalog.Catalog, events, templateCount int, seed int64) *workload.Workload {
	rng := rand.New(rand.NewSource(seed))
	tmpls := templates(templateCount, rng)
	w := &workload.Workload{}
	for i := 0; i < events; i++ {
		t := tmpls[i%len(tmpls)]
		if err := w.Add(t.instantiate(cat, rng), 1); err != nil {
			// Templates are generated from the schema; instantiation cannot
			// produce invalid SQL.
			panic(err)
		}
	}
	return w
}
