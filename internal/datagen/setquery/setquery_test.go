package setquery

import (
	"testing"

	"repro/internal/optimizer"
)

func TestCatalogAndWorkload(t *testing.T) {
	cat := Catalog(100000)
	bench := cat.ResolveTable("bench")
	if bench == nil || bench.Rows != 100000 {
		t.Fatal("bench table wrong")
	}
	if bench.DistinctOf("k500k") != 100000 {
		t.Fatal("distinct counts must cap at row count")
	}
	if bench.DistinctOf("k25") != 25 {
		t.Fatal("k25 distinct wrong")
	}

	w := Workload(cat, 800, 100, 7)
	if w.Len() != 800 {
		t.Fatalf("events = %d", w.Len())
	}
	// ~100 distinct templates.
	tmpls := w.Templates()
	if len(tmpls) < 80 || len(tmpls) > 100 {
		t.Fatalf("templates = %d, want ~100", len(tmpls))
	}
	// All events analyze against the catalog.
	for _, e := range w.Events {
		if _, err := optimizer.Analyze(cat, e.Stmt); err != nil {
			t.Fatalf("%s: %v", e.SQL, err)
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	cat := Catalog(10000)
	a := Workload(cat, 50, 10, 3)
	b := Workload(cat, 50, 10, 3)
	for i := range a.Events {
		if a.Events[i].SQL != b.Events[i].SQL {
			t.Fatal("workload generation must be deterministic")
		}
	}
}

func TestLoad(t *testing.T) {
	cat := Catalog(2000)
	db, err := Load(cat, 5)
	if err != nil {
		t.Fatal(err)
	}
	if db.Table("bench").LiveRows() != 2000 {
		t.Fatal("row count wrong")
	}
	p, err := db.Materialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ExecSQL("SELECT COUNT(*) FROM bench WHERE k2 = 1")
	if err != nil {
		t.Fatal(err)
	}
	// k2 has two values; roughly half the rows match.
	if c := res.Rows[0][0].F; c < 800 || c > 1200 {
		t.Fatalf("k2=1 count = %g, want ~1000", c)
	}
}
