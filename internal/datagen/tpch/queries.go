package tpch

import "repro/internal/workload"

// Queries returns parser-compatible paraphrases of the 22 TPC-H benchmark
// queries. Constructs outside the reproduced SQL subset (correlated
// subqueries, EXISTS, CASE, EXTRACT, LEFT JOIN) are paraphrased into joins
// and filters that preserve each query's table set, join graph, selection
// predicates, grouping and ordering — the properties physical design tuning
// responds to. Dates appear as day ordinals (days since 1992-01-01).
func Queries() []string {
	return []string{
		// Q1: pricing summary report.
		`SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty,
		  SUM(l_extendedprice) AS sum_base_price,
		  SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
		  SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
		  AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price,
		  AVG(l_discount) AS avg_disc, COUNT(*) AS count_order
		 FROM lineitem
		 WHERE l_shipdate <= 2465
		 GROUP BY l_returnflag, l_linestatus
		 ORDER BY l_returnflag, l_linestatus`,

		// Q2: minimum cost supplier (paraphrase: the min-cost correlated
		// subquery becomes a filtered join ordered by cost).
		`SELECT TOP 100 s_acctbal, s_name, n_name, p_partkey, ps_supplycost
		 FROM part, supplier, partsupp, nation, region
		 WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
		   AND p_size = 15 AND p_type LIKE '%BRASS'
		   AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
		   AND r_name = 'EUROPE'
		 ORDER BY ps_supplycost, s_acctbal DESC, n_name, s_name, p_partkey`,

		// Q3: shipping priority.
		`SELECT TOP 10 l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
		  o_orderdate, o_shippriority
		 FROM customer, orders, lineitem
		 WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
		   AND l_orderkey = o_orderkey AND o_orderdate < 1170 AND l_shipdate > 1170
		 GROUP BY l_orderkey, o_orderdate, o_shippriority
		 ORDER BY revenue DESC, o_orderdate`,

		// Q4: order priority checking (EXISTS paraphrased as a join with the
		// late-lineitem condition).
		`SELECT o_orderpriority, COUNT(*) AS order_count
		 FROM orders, lineitem
		 WHERE o_orderkey = l_orderkey
		   AND o_orderdate >= 820 AND o_orderdate < 910
		   AND l_commitdate < l_receiptdate
		 GROUP BY o_orderpriority
		 ORDER BY o_orderpriority`,

		// Q5: local supplier volume.
		`SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
		 FROM customer, orders, lineitem, supplier, nation, region
		 WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		   AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
		   AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
		   AND r_name = 'ASIA' AND o_orderdate >= 730 AND o_orderdate < 1095
		 GROUP BY n_name
		 ORDER BY revenue DESC`,

		// Q6: forecasting revenue change.
		`SELECT SUM(l_extendedprice * l_discount) AS revenue
		 FROM lineitem
		 WHERE l_shipdate >= 730 AND l_shipdate < 1095
		   AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24`,

		// Q7: volume shipping (the nation pair disjunction is kept; the
		// year extraction becomes a ship-date range).
		`SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
		 FROM supplier, lineitem, orders, customer, nation
		 WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey
		   AND c_custkey = o_custkey AND s_nationkey = n_nationkey
		   AND (n_name = 'FRANCE' OR n_name = 'GERMANY')
		   AND l_shipdate BETWEEN 1095 AND 1825
		 GROUP BY n_name
		 ORDER BY n_name`,

		// Q8: national market share (paraphrase: the share CASE becomes the
		// numerator volume per nation).
		`SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS volume
		 FROM part, supplier, lineitem, orders, customer, nation, region
		 WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey
		   AND l_orderkey = o_orderkey AND o_custkey = c_custkey
		   AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey
		   AND r_name = 'AMERICA' AND o_orderdate BETWEEN 1095 AND 1825
		   AND p_type = 'ECONOMY ANODIZED STEEL'
		 GROUP BY n_name
		 ORDER BY n_name`,

		// Q9: product type profit measure (year grouping becomes nation
		// grouping over the same join).
		`SELECT n_name, SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS sum_profit
		 FROM part, supplier, lineitem, partsupp, orders, nation
		 WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey
		   AND ps_partkey = l_partkey AND p_partkey = l_partkey
		   AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
		   AND p_name LIKE '%green%'
		 GROUP BY n_name
		 ORDER BY n_name DESC`,

		// Q10: returned item reporting.
		`SELECT TOP 20 c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
		  c_acctbal, n_name
		 FROM customer, orders, lineitem, nation
		 WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		   AND o_orderdate >= 640 AND o_orderdate < 730
		   AND l_returnflag = 'R' AND c_nationkey = n_nationkey
		 GROUP BY c_custkey, c_name, c_acctbal, n_name
		 ORDER BY revenue DESC`,

		// Q11: important stock identification (the global-threshold HAVING
		// becomes a constant threshold).
		`SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value
		 FROM partsupp, supplier, nation
		 WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
		   AND n_name = 'GERMANY'
		 GROUP BY ps_partkey
		 HAVING SUM(ps_supplycost * ps_availqty) > 7700000
		 ORDER BY value DESC`,

		// Q12: shipping modes and order priority (the CASE sums become a
		// count per priority within the mode filter).
		`SELECT l_shipmode, o_orderpriority, COUNT(*) AS line_count
		 FROM orders, lineitem
		 WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP')
		   AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
		   AND l_receiptdate >= 730 AND l_receiptdate < 1095
		 GROUP BY l_shipmode, o_orderpriority
		 ORDER BY l_shipmode, o_orderpriority`,

		// Q13: customer distribution (LEFT JOIN paraphrased as inner join).
		`SELECT c_custkey, COUNT(*) AS c_count
		 FROM customer, orders
		 WHERE c_custkey = o_custkey AND o_orderpriority <> '1-URGENT'
		 GROUP BY c_custkey
		 ORDER BY c_count DESC, c_custkey`,

		// Q14: promotion effect (the CASE numerator becomes a PROMO filter).
		`SELECT SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
		 FROM lineitem, part
		 WHERE l_partkey = p_partkey AND p_type LIKE 'PROMO%'
		   AND l_shipdate >= 1339 AND l_shipdate < 1369`,

		// Q15: top supplier (the revenue view becomes a direct grouping).
		`SELECT TOP 1 l_suppkey, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
		 FROM lineitem
		 WHERE l_shipdate >= 1461 AND l_shipdate < 1551
		 GROUP BY l_suppkey
		 ORDER BY total_revenue DESC`,

		// Q16: parts/supplier relationship.
		`SELECT p_brand, p_type, p_size, COUNT(*) AS supplier_cnt
		 FROM partsupp, part
		 WHERE p_partkey = ps_partkey AND p_brand <> 'Brand#45'
		   AND p_type NOT LIKE 'MEDIUM POLISHED%'
		   AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
		 GROUP BY p_brand, p_type, p_size
		 ORDER BY supplier_cnt DESC, p_brand, p_type, p_size`,

		// Q17: small-quantity-order revenue (the avg-quantity subquery
		// becomes a constant quantity bound).
		`SELECT SUM(l_extendedprice) AS avg_yearly
		 FROM lineitem, part
		 WHERE p_partkey = l_partkey AND p_brand = 'Brand#23'
		   AND p_container = 'MED BOX' AND l_quantity < 5`,

		// Q18: large volume customer.
		`SELECT TOP 100 c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, SUM(l_quantity) AS total_qty
		 FROM customer, orders, lineitem
		 WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
		 GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
		 HAVING SUM(l_quantity) > 300
		 ORDER BY o_totalprice DESC, o_orderdate`,

		// Q19: discounted revenue (the three-way OR of bracketed predicates
		// is preserved structurally).
		`SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
		 FROM lineitem, part
		 WHERE p_partkey = l_partkey
		   AND l_shipinstruct = 'DELIVER IN PERSON'
		   AND (l_shipmode = 'AIR' OR l_shipmode = 'REG AIR')
		   AND ((p_brand = 'Brand#12' AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5)
		     OR (p_brand = 'Brand#23' AND l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 10)
		     OR (p_brand = 'Brand#33' AND l_quantity BETWEEN 20 AND 30 AND p_size BETWEEN 1 AND 15))`,

		// Q20: potential part promotion (the nested EXISTS chain becomes a
		// filtered join).
		`SELECT DISTINCT s_name
		 FROM supplier, nation, partsupp, part
		 WHERE s_suppkey = ps_suppkey AND ps_partkey = p_partkey
		   AND p_name LIKE 'forest%' AND s_nationkey = n_nationkey
		   AND n_name = 'CANADA' AND ps_availqty > 5000
		 ORDER BY s_name`,

		// Q21: suppliers who kept orders waiting (the anti-join paraphrased
		// as the late-supplier join).
		`SELECT TOP 100 s_name, COUNT(*) AS numwait
		 FROM supplier, lineitem, orders, nation
		 WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey
		   AND o_orderstatus = 'F' AND l_receiptdate > l_commitdate
		   AND s_nationkey = n_nationkey AND n_name = 'SAUDI ARABIA'
		 GROUP BY s_name
		 ORDER BY numwait DESC, s_name`,

		// Q22: global sales opportunity (the country-code substring becomes
		// a nation-key filter; the avg-balance subquery a constant bound).
		`SELECT c_nationkey, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal
		 FROM customer
		 WHERE c_acctbal > 4500 AND c_nationkey IN (13, 21, 23, 9, 20, 18, 17)
		 GROUP BY c_nationkey
		 ORDER BY c_nationkey`,
	}
}

// Workload returns the 22-query benchmark workload.
func Workload() *workload.Workload {
	return workload.MustNew(Queries()...)
}
