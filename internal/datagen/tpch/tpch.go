// Package tpch generates a TPC-H-like database: the eight-table schema, a
// deterministic scaled-down dbgen equivalent, and parser-compatible
// paraphrases of the 22 benchmark queries. The paper evaluates DTA on TPC-H
// 10GB (§7.2) and 1GB (§7.3, §7.4); this package reproduces the schema,
// relative table sizes, predicates and join structure at configurable scale
// so improvement percentages and plan choices carry over.
//
// Dates are encoded as days since 1992-01-01 (domain 0..2557, covering
// 1992-01-01 through 1998-12-31), matching the dbgen date range.
package tpch

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/engine"
)

// Date range in days since 1992-01-01.
const (
	DateMin = 0
	DateMax = 2557
	// Day1994 and friends anchor the paraphrased query constants.
	Day1993 = 365
	Day1994 = 730
	Day1995 = 1095
	Day1996 = 1461
	Day1997 = 1826
	Day1998 = 2191
)

// Rows at scale factor 1.
const (
	sfSupplier = 10000
	sfCustomer = 150000
	sfPart     = 200000
	sfPartsupp = 800000
	sfOrders   = 1500000
	sfLineitem = 6000000
)

var (
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipmodes  = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	instructs  = []string{"COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"}
	containers = []string{"JUMBO BOX", "LG CASE", "MED BAG", "MED BOX", "SM CASE", "SM PKG", "WRAP BAG", "WRAP CASE"}
	brands     = []string{"Brand#11", "Brand#12", "Brand#13", "Brand#21", "Brand#22", "Brand#23", "Brand#31", "Brand#32", "Brand#33", "Brand#41", "Brand#42", "Brand#43", "Brand#51", "Brand#52", "Brand#53"}
	types      = []string{"ECONOMY ANODIZED STEEL", "ECONOMY BRUSHED COPPER", "LARGE POLISHED NICKEL", "MEDIUM BURNISHED TIN", "PROMO BURNISHED COPPER", "PROMO PLATED STEEL", "SMALL ANODIZED BRASS", "STANDARD POLISHED BRASS"}
	nations    = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	regions    = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	flags      = []string{"A", "N", "R"}
	statusesL  = []string{"F", "O"}
)

// nationRegion maps nation ordinal to region ordinal (per TPC-H spec).
var nationRegion = []int{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}

// Catalog builds the TPC-H schema at the given scale factor. Row counts and
// distinct counts scale with sf; columns carry their real domains.
func Catalog(sf float64) *catalog.Catalog {
	n := func(base int) int64 {
		v := int64(float64(base) * sf)
		if v < 1 {
			v = 1
		}
		return v
	}
	cat := catalog.New()
	db := catalog.NewDatabase("tpch")

	db.AddTable(catalog.NewTable("tpch", "region", 5,
		&catalog.Column{Name: "r_regionkey", Type: catalog.TypeInt, Width: 8, Distinct: 5, Min: 0, Max: 4},
		&catalog.Column{Name: "r_name", Type: catalog.TypeString, Width: 12, Distinct: 5, Min: 0, Max: 4},
	))
	db.AddTable(catalog.NewTable("tpch", "nation", 25,
		&catalog.Column{Name: "n_nationkey", Type: catalog.TypeInt, Width: 8, Distinct: 25, Min: 0, Max: 24},
		&catalog.Column{Name: "n_name", Type: catalog.TypeString, Width: 16, Distinct: 25, Min: 0, Max: 24},
		&catalog.Column{Name: "n_regionkey", Type: catalog.TypeInt, Width: 8, Distinct: 5, Min: 0, Max: 4},
	))
	db.AddTable(catalog.NewTable("tpch", "supplier", n(sfSupplier),
		&catalog.Column{Name: "s_suppkey", Type: catalog.TypeInt, Width: 8, Distinct: n(sfSupplier), Min: 1, Max: float64(n(sfSupplier))},
		&catalog.Column{Name: "s_name", Type: catalog.TypeString, Width: 26, Distinct: n(sfSupplier), Min: 0, Max: float64(n(sfSupplier) - 1)},
		&catalog.Column{Name: "s_nationkey", Type: catalog.TypeInt, Width: 8, Distinct: 25, Min: 0, Max: 24},
		&catalog.Column{Name: "s_acctbal", Type: catalog.TypeFloat, Width: 8, Distinct: n(sfSupplier) / 2, Min: -999, Max: 9999},
	))
	db.AddTable(catalog.NewTable("tpch", "customer", n(sfCustomer),
		&catalog.Column{Name: "c_custkey", Type: catalog.TypeInt, Width: 8, Distinct: n(sfCustomer), Min: 1, Max: float64(n(sfCustomer))},
		&catalog.Column{Name: "c_name", Type: catalog.TypeString, Width: 26, Distinct: n(sfCustomer), Min: 0, Max: float64(n(sfCustomer) - 1)},
		&catalog.Column{Name: "c_nationkey", Type: catalog.TypeInt, Width: 8, Distinct: 25, Min: 0, Max: 24},
		&catalog.Column{Name: "c_acctbal", Type: catalog.TypeFloat, Width: 8, Distinct: n(sfCustomer) / 2, Min: -999, Max: 9999},
		&catalog.Column{Name: "c_mktsegment", Type: catalog.TypeString, Width: 12, Distinct: 5, Min: 0, Max: 4},
		&catalog.Column{Name: "c_phone", Type: catalog.TypeString, Width: 16, Distinct: n(sfCustomer), Min: 0, Max: float64(n(sfCustomer) - 1)},
	))
	db.AddTable(catalog.NewTable("tpch", "part", n(sfPart),
		&catalog.Column{Name: "p_partkey", Type: catalog.TypeInt, Width: 8, Distinct: n(sfPart), Min: 1, Max: float64(n(sfPart))},
		&catalog.Column{Name: "p_name", Type: catalog.TypeString, Width: 36, Distinct: n(sfPart), Min: 0, Max: float64(n(sfPart) - 1)},
		&catalog.Column{Name: "p_brand", Type: catalog.TypeString, Width: 10, Distinct: int64(len(brands)), Min: 0, Max: float64(len(brands) - 1)},
		&catalog.Column{Name: "p_type", Type: catalog.TypeString, Width: 26, Distinct: int64(len(types)), Min: 0, Max: float64(len(types) - 1)},
		&catalog.Column{Name: "p_size", Type: catalog.TypeInt, Width: 8, Distinct: 50, Min: 1, Max: 50},
		&catalog.Column{Name: "p_container", Type: catalog.TypeString, Width: 12, Distinct: int64(len(containers)), Min: 0, Max: float64(len(containers) - 1)},
		&catalog.Column{Name: "p_retailprice", Type: catalog.TypeFloat, Width: 8, Distinct: n(sfPart) / 4, Min: 900, Max: 2000},
	))
	db.AddTable(catalog.NewTable("tpch", "partsupp", n(sfPartsupp),
		&catalog.Column{Name: "ps_partkey", Type: catalog.TypeInt, Width: 8, Distinct: n(sfPart), Min: 1, Max: float64(n(sfPart))},
		&catalog.Column{Name: "ps_suppkey", Type: catalog.TypeInt, Width: 8, Distinct: n(sfSupplier), Min: 1, Max: float64(n(sfSupplier))},
		&catalog.Column{Name: "ps_availqty", Type: catalog.TypeInt, Width: 8, Distinct: 9999, Min: 1, Max: 9999},
		&catalog.Column{Name: "ps_supplycost", Type: catalog.TypeFloat, Width: 8, Distinct: 1000, Min: 1, Max: 1000},
	))
	db.AddTable(catalog.NewTable("tpch", "orders", n(sfOrders),
		&catalog.Column{Name: "o_orderkey", Type: catalog.TypeInt, Width: 8, Distinct: n(sfOrders), Min: 1, Max: float64(n(sfOrders))},
		&catalog.Column{Name: "o_custkey", Type: catalog.TypeInt, Width: 8, Distinct: n(sfCustomer), Min: 1, Max: float64(n(sfCustomer))},
		&catalog.Column{Name: "o_orderstatus", Type: catalog.TypeString, Width: 2, Distinct: 3, Min: 0, Max: 2},
		&catalog.Column{Name: "o_totalprice", Type: catalog.TypeFloat, Width: 8, Distinct: n(sfOrders) / 2, Min: 800, Max: 550000},
		&catalog.Column{Name: "o_orderdate", Type: catalog.TypeDate, Width: 8, Distinct: 2406, Min: DateMin, Max: DateMax - 151},
		&catalog.Column{Name: "o_orderpriority", Type: catalog.TypeString, Width: 16, Distinct: 5, Min: 0, Max: 4},
		&catalog.Column{Name: "o_shippriority", Type: catalog.TypeInt, Width: 8, Distinct: 1, Min: 0, Max: 0},
	))
	db.AddTable(catalog.NewTable("tpch", "lineitem", n(sfLineitem),
		&catalog.Column{Name: "l_orderkey", Type: catalog.TypeInt, Width: 8, Distinct: n(sfOrders), Min: 1, Max: float64(n(sfOrders))},
		&catalog.Column{Name: "l_partkey", Type: catalog.TypeInt, Width: 8, Distinct: n(sfPart), Min: 1, Max: float64(n(sfPart))},
		&catalog.Column{Name: "l_suppkey", Type: catalog.TypeInt, Width: 8, Distinct: n(sfSupplier), Min: 1, Max: float64(n(sfSupplier))},
		&catalog.Column{Name: "l_linenumber", Type: catalog.TypeInt, Width: 8, Distinct: 7, Min: 1, Max: 7},
		&catalog.Column{Name: "l_quantity", Type: catalog.TypeFloat, Width: 8, Distinct: 50, Min: 1, Max: 50},
		&catalog.Column{Name: "l_extendedprice", Type: catalog.TypeFloat, Width: 8, Distinct: n(sfLineitem) / 8, Min: 900, Max: 100000},
		&catalog.Column{Name: "l_discount", Type: catalog.TypeFloat, Width: 8, Distinct: 11, Min: 0, Max: 0.10},
		&catalog.Column{Name: "l_tax", Type: catalog.TypeFloat, Width: 8, Distinct: 9, Min: 0, Max: 0.08},
		&catalog.Column{Name: "l_returnflag", Type: catalog.TypeString, Width: 2, Distinct: 3, Min: 0, Max: 2},
		&catalog.Column{Name: "l_linestatus", Type: catalog.TypeString, Width: 2, Distinct: 2, Min: 0, Max: 1},
		&catalog.Column{Name: "l_shipdate", Type: catalog.TypeDate, Width: 8, Distinct: 2526, Min: DateMin, Max: DateMax},
		&catalog.Column{Name: "l_commitdate", Type: catalog.TypeDate, Width: 8, Distinct: 2466, Min: DateMin, Max: DateMax},
		&catalog.Column{Name: "l_receiptdate", Type: catalog.TypeDate, Width: 8, Distinct: 2554, Min: DateMin, Max: DateMax},
		&catalog.Column{Name: "l_shipmode", Type: catalog.TypeString, Width: 10, Distinct: 7, Min: 0, Max: 6},
		&catalog.Column{Name: "l_shipinstruct", Type: catalog.TypeString, Width: 18, Distinct: 4, Min: 0, Max: 3},
	))
	cat.AddDatabase(db)
	pk := func(table string, cols ...string) {
		db.Table(table).PrimaryKey = cols
	}
	pk("region", "r_regionkey")
	pk("nation", "n_nationkey")
	pk("supplier", "s_suppkey")
	pk("customer", "c_custkey")
	pk("part", "p_partkey")
	pk("partsupp", "ps_partkey", "ps_suppkey")
	pk("orders", "o_orderkey")
	pk("lineitem", "l_orderkey", "l_linenumber")
	return cat
}

// ConstraintConfig returns the "raw" configuration of the experiments:
// only the indexes that enforce referential-integrity / primary-key
// constraints (§7.1 drops everything else).
func ConstraintConfig(cat *catalog.Catalog) *catalog.Configuration {
	cfg := catalog.NewConfiguration()
	for _, t := range cat.Tables() {
		if len(t.PrimaryKey) == 0 {
			continue
		}
		ix := catalog.NewIndex(t.Name, t.PrimaryKey...)
		ix.Clustered = true // SQL Server primary keys cluster by default
		ix.FromConstraint = true
		cfg.AddIndex(ix)
	}
	return cfg
}

// Load generates deterministic data for the catalog's row counts and loads
// it into a fresh engine database.
func Load(cat *catalog.Catalog, seed int64) (*engine.Database, error) {
	rng := rand.New(rand.NewSource(seed))
	db := engine.NewDatabase(cat)
	num := engine.Num
	str := engine.Str

	rowsOf := func(table string) int {
		return int(cat.ResolveTable(table).Rows)
	}

	// region, nation.
	var rrows, nrows [][]engine.Value
	for i, r := range regions {
		rrows = append(rrows, []engine.Value{num(float64(i)), str(r)})
	}
	for i, n := range nations {
		nrows = append(nrows, []engine.Value{num(float64(i)), str(n), num(float64(nationRegion[i]))})
	}
	if err := db.Load("region", rrows); err != nil {
		return nil, err
	}
	if err := db.Load("nation", nrows); err != nil {
		return nil, err
	}

	// supplier.
	nSupp := rowsOf("supplier")
	srows := make([][]engine.Value, 0, nSupp)
	for i := 1; i <= nSupp; i++ {
		srows = append(srows, []engine.Value{
			num(float64(i)),
			str(fmt.Sprintf("Supplier#%09d", i)),
			num(float64(rng.Intn(25))),
			num(float64(rng.Intn(10999)) - 999),
		})
	}
	if err := db.Load("supplier", srows); err != nil {
		return nil, err
	}

	// customer.
	nCust := rowsOf("customer")
	crows := make([][]engine.Value, 0, nCust)
	for i := 1; i <= nCust; i++ {
		crows = append(crows, []engine.Value{
			num(float64(i)),
			str(fmt.Sprintf("Customer#%09d", i)),
			num(float64(rng.Intn(25))),
			num(float64(rng.Intn(10999)) - 999),
			str(segments[rng.Intn(len(segments))]),
			str(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+rng.Intn(25), rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))),
		})
	}
	if err := db.Load("customer", crows); err != nil {
		return nil, err
	}

	// part.
	nPart := rowsOf("part")
	prows := make([][]engine.Value, 0, nPart)
	for i := 1; i <= nPart; i++ {
		prows = append(prows, []engine.Value{
			num(float64(i)),
			str(fmt.Sprintf("part name %06d", i)),
			str(brands[rng.Intn(len(brands))]),
			str(types[rng.Intn(len(types))]),
			num(float64(1 + rng.Intn(50))),
			str(containers[rng.Intn(len(containers))]),
			num(900 + float64(rng.Intn(1100))),
		})
	}
	if err := db.Load("part", prows); err != nil {
		return nil, err
	}

	// partsupp: 4 suppliers per part (scaled).
	nPS := rowsOf("partsupp")
	psrows := make([][]engine.Value, 0, nPS)
	for i := 0; i < nPS; i++ {
		psrows = append(psrows, []engine.Value{
			num(float64(i%nPart + 1)),
			num(float64(rng.Intn(nSupp) + 1)),
			num(float64(1 + rng.Intn(9999))),
			num(float64(1 + rng.Intn(1000))),
		})
	}
	if err := db.Load("partsupp", psrows); err != nil {
		return nil, err
	}

	// orders.
	nOrd := rowsOf("orders")
	orows := make([][]engine.Value, 0, nOrd)
	orderDate := make([]int, nOrd+1)
	for i := 1; i <= nOrd; i++ {
		od := rng.Intn(DateMax - 151)
		orderDate[i] = od
		status := "O"
		if od < Day1995 {
			status = "F"
		} else if rng.Intn(10) == 0 {
			status = "P"
		}
		orows = append(orows, []engine.Value{
			num(float64(i)),
			num(float64(rng.Intn(nCust) + 1)),
			str(status),
			num(800 + float64(rng.Intn(549200))),
			num(float64(od)),
			str(priorities[rng.Intn(len(priorities))]),
			num(0),
		})
	}
	if err := db.Load("orders", orows); err != nil {
		return nil, err
	}

	// lineitem: lines per order to reach the target count.
	nLine := rowsOf("lineitem")
	lrows := make([][]engine.Value, 0, nLine)
	for i := 0; i < nLine; i++ {
		ok := i%nOrd + 1
		od := orderDate[ok]
		ship := od + 1 + rng.Intn(121)
		commit := od + 30 + rng.Intn(60)
		receipt := ship + 1 + rng.Intn(30)
		if ship > DateMax {
			ship = DateMax
		}
		if commit > DateMax {
			commit = DateMax
		}
		if receipt > DateMax {
			receipt = DateMax
		}
		qty := float64(1 + rng.Intn(50))
		price := qty * (900 + float64(rng.Intn(1100)))
		rf := "N"
		if receipt < Day1995 {
			rf = flags[rng.Intn(2)] // A or N... spec: A/R for old, N for recent
			if rng.Intn(2) == 0 {
				rf = "R"
			} else {
				rf = "A"
			}
		}
		ls := statusesL[1]
		if ship < Day1995+170 {
			ls = statusesL[0]
		}
		lrows = append(lrows, []engine.Value{
			num(float64(ok)),
			num(float64(rng.Intn(nPart) + 1)),
			num(float64(rng.Intn(nSupp) + 1)),
			num(float64(i/nOrd + 1)),
			num(qty),
			num(price),
			num(float64(rng.Intn(11)) / 100),
			num(float64(rng.Intn(9)) / 100),
			str(rf),
			str(ls),
			num(float64(ship)),
			num(float64(commit)),
			num(float64(receipt)),
			str(shipmodes[rng.Intn(len(shipmodes))]),
			str(instructs[rng.Intn(len(instructs))]),
		})
	}
	if err := db.Load("lineitem", lrows); err != nil {
		return nil, err
	}
	db.SyncRowCounts()
	return db, nil
}
