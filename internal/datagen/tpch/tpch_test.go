package tpch

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/optimizer"
	"repro/internal/sqlparser"
)

func TestCatalogShape(t *testing.T) {
	cat := Catalog(1)
	li := cat.ResolveTable("lineitem")
	ord := cat.ResolveTable("orders")
	if li == nil || ord == nil {
		t.Fatal("schema incomplete")
	}
	if li.Rows != 6000000 || ord.Rows != 1500000 {
		t.Fatalf("SF1 rows: lineitem=%d orders=%d", li.Rows, ord.Rows)
	}
	// Relative sizes preserved at smaller scales.
	small := Catalog(0.01)
	if small.ResolveTable("lineitem").Rows != 60000 {
		t.Fatalf("SF0.01 lineitem = %d", small.ResolveTable("lineitem").Rows)
	}
	if small.ResolveTable("region").Rows != 5 || small.ResolveTable("nation").Rows != 25 {
		t.Fatal("fixed tables must not scale")
	}
}

func TestAll22QueriesParseAndAnalyze(t *testing.T) {
	cat := Catalog(0.01)
	qs := Queries()
	if len(qs) != 22 {
		t.Fatalf("queries = %d, want 22", len(qs))
	}
	for i, q := range qs {
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatalf("Q%d does not parse: %v", i+1, err)
		}
		if _, err := optimizer.Analyze(cat, stmt); err != nil {
			t.Fatalf("Q%d does not analyze: %v", i+1, err)
		}
	}
}

func TestAll22QueriesOptimize(t *testing.T) {
	cat := Catalog(0.01)
	opt := optimizer.New(cat, nil, optimizer.DefaultHardware())
	raw := ConstraintConfig(cat)
	for i, q := range Queries() {
		res, err := opt.Optimize(sqlparser.MustParse(q), raw)
		if err != nil {
			t.Fatalf("Q%d: %v", i+1, err)
		}
		if res.Cost <= 0 {
			t.Fatalf("Q%d: cost %v", i+1, res.Cost)
		}
	}
}

func TestLoadAndExecute(t *testing.T) {
	if testing.Short() {
		t.Skip("data generation")
	}
	cat := Catalog(0.002)
	db, err := Load(cat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Table("lineitem").LiveRows(); got != 12000 {
		t.Fatalf("lineitem rows = %d", got)
	}
	p, err := db.Materialize(ConstraintConfig(cat))
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range Queries() {
		res, err := p.ExecSQL(q)
		if err != nil {
			t.Fatalf("Q%d execution: %v", i+1, err)
		}
		_ = res
	}
	// Q1 sanity: grouping by (returnflag, linestatus) yields ≤ 6 groups and
	// counts sum to the qualifying rows.
	res, err := p.ExecSQL(Queries()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Rows) > 6 {
		t.Fatalf("Q1 groups = %d", len(res.Rows))
	}
	var totalCount float64
	for _, r := range res.Rows {
		totalCount += r[len(r)-1].F
	}
	cnt, err := p.ExecSQL("SELECT COUNT(*) FROM lineitem WHERE l_shipdate <= 2465")
	if err != nil {
		t.Fatal(err)
	}
	if totalCount != cnt.Rows[0][0].F {
		t.Fatalf("Q1 counts: %g vs %g", totalCount, cnt.Rows[0][0].F)
	}
}

func TestConstraintConfig(t *testing.T) {
	cat := Catalog(0.01)
	cfg := ConstraintConfig(cat)
	if len(cfg.Indexes) != 8 {
		t.Fatalf("constraint indexes = %d, want 8", len(cfg.Indexes))
	}
	for _, ix := range cfg.Indexes {
		if !ix.FromConstraint {
			t.Fatal("constraint flag missing")
		}
	}
	if err := cfg.Validate(cat); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicLoad(t *testing.T) {
	cat1 := Catalog(0.001)
	db1, err := Load(cat1, 42)
	if err != nil {
		t.Fatal(err)
	}
	cat2 := Catalog(0.001)
	db2, err := Load(cat2, 42)
	if err != nil {
		t.Fatal(err)
	}
	r1 := db1.Table("orders").Rows[100]
	r2 := db2.Table("orders").Rows[100]
	for i := range r1 {
		if !r1[i].Equal(r2[i]) {
			t.Fatalf("row mismatch at col %d: %v vs %v", i, r1[i], r2[i])
		}
	}
	_ = engine.Value{}
}
