// Package demo builds the built-in demonstration servers the command-line
// tools tune: the TPC-H and PSoft-style benchmark databases and the SetQuery
// synthetic of the paper's §7 evaluation, each with data loaded and its
// built-in workload. Both cmd/dta (one-shot sessions) and cmd/dtaserver
// (the tuning service) register their tunable databases through this
// package, so a database behaves identically whichever front end drives it.
package demo

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/datagen/psoft"
	"repro/internal/datagen/setquery"
	"repro/internal/datagen/tpch"
	"repro/internal/optimizer"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// Names lists the available demonstration databases.
func Names() []string { return []string{"tpch", "psoft", "synt1"} }

// Build creates one of the demonstration servers with data loaded and
// returns it with the database's built-in workload.
func Build(name string, sf float64) (*whatif.Server, *workload.Workload, error) {
	switch name {
	case "tpch":
		cat := tpch.Catalog(sf)
		db, err := tpch.Load(cat, 1)
		if err != nil {
			return nil, nil, err
		}
		s := whatif.NewServer("tpch", cat, optimizer.DefaultHardware())
		s.AttachData(db)
		return s, tpch.Workload(), nil
	case "psoft":
		cat := psoft.Catalog(sf)
		db, err := psoft.Load(cat, 1)
		if err != nil {
			return nil, nil, err
		}
		s := whatif.NewServer("psoft", cat, optimizer.DefaultHardware())
		s.AttachData(db)
		return s, psoft.Workload(cat, 2000, 1), nil
	case "synt1":
		rows := int64(sf * 1000000)
		if rows < 1000 {
			rows = 1000
		}
		cat := setquery.Catalog(rows)
		db, err := setquery.Load(cat, 1)
		if err != nil {
			return nil, nil, err
		}
		s := whatif.NewServer("synt1", cat, optimizer.DefaultHardware())
		s.AttachData(db)
		return s, setquery.Workload(cat, 2000, 100, 1), nil
	default:
		return nil, nil, fmt.Errorf("unknown database %q (want tpch, psoft, or synt1)", name)
	}
}

// ConstraintConfig returns the database's constraint-enforcing base
// configuration: the structures that exist before tuning and are never
// dropped (primary-key clustered indexes).
func ConstraintConfig(name string, cat *catalog.Catalog) *catalog.Configuration {
	if name == "tpch" {
		return tpch.ConstraintConfig(cat)
	}
	cfg := catalog.NewConfiguration()
	for _, t := range cat.Tables() {
		if len(t.PrimaryKey) > 0 {
			ix := catalog.NewIndex(t.Name, t.PrimaryKey...)
			ix.Clustered = true
			ix.FromConstraint = true
			cfg.AddIndex(ix)
		}
	}
	return cfg
}
