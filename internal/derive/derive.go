// Package derive implements the cost-derivation layer between the advisor's
// single-flight cost cache and the what-if backend, in the spirit of INUM
// and CoPhy (Dash et al.): instead of issuing one optimizer call per
// (event, relevant-structure-subset), it issues real calls only for a small
// number of *atomic* configurations per event and derives every other
// configuration's cost algebraically from the cached plan facts.
//
// The derivation rule is a sandwich argument over the plan-set lattice.
// Split an event's relevant structures into a *base* part (clustered
// indexes and table partitionings, which reshape the base tables) and an
// *additive* part (non-clustered indexes and materialized views, which only
// add plan alternatives). For a SELECT event, if a real optimizer fact is
// known for a superset configuration T ⊇ S with the same base and the same
// statistics state, and the fact's used-structure set is contained in S,
// then cost(S) = cost(T) exactly: T's winning plan needs nothing outside S,
// so it is available under S, and every plan available under S is also
// available under T (S adds no alternatives T lacks), so nothing under S
// can beat it. No interpolation and no model assumptions are involved — the
// derived cost is the number the optimizer itself would return.
//
// Resolution starts at the canonical *top* of S (S plus every additive pool
// candidate relevant to the event) and costs it for real once. For SELECTs
// that one call also returns the *plan skeleton* (optimizer.Alternatives):
// for a single-scope query, every plan alternative costed end-to-end, each
// gated by the single additive structure it needs; for a join, per-scope
// access and probe alternatives plus edge selectivities and the finish chain
// (optimizer.JoinSkeleton), which replay composes through the optimizer's
// own join cost function. Any subset's cost then follows by replaying the
// optimizer's selection arithmetic over the alternatives the subset makes
// available — the INUM observation — so one atomic call per (event, pool,
// epoch) answers every configuration the search explores. The sandwich walk
// is the residual fallback for facts without a skeleton: while the top's
// plan uses structures outside S, strip exactly those structures and cost
// the smaller node; each stripped node is shared by every other subset
// resolution of the same event. A walk node served from a cache entry of an
// older statistics epoch is repaired in place by one fresh-epoch real call
// rather than demoting the event. Whenever no path can produce an
// applicable answer — DML events (maintenance cost depends on the whole
// index set and is not plan-set monotone), an empty pool, or S being its
// own top — the engine reports a fallback (split single-scope vs join per
// reason) and the caller issues the ordinary real call.
package derive

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/optimizer"
)

// Mode selects how the derivation layer participates in cost evaluation.
type Mode string

// Modes. The zero value ("") means Off: callers that never looked at the
// knob keep the exact pre-derivation behaviour.
const (
	// Off disables derivation: every cost-cache miss issues a real call.
	Off Mode = "off"
	// On answers cache misses by derivation when an applicable fact exists.
	On Mode = "on"
	// Verify derives like On but cross-checks every derived cost against a
	// real optimizer call; divergence beyond VerifyTolerance is an error.
	Verify Mode = "verify"
)

// ParseMode parses a wire/CLI mode string ("" and "off" → Off).
func ParseMode(s string) (Mode, error) {
	switch Mode(strings.ToLower(s)) {
	case "", Off:
		return Off, nil
	case On:
		return On, nil
	case Verify:
		return Verify, nil
	}
	return Off, fmt.Errorf("derive: unknown mode %q (want off, on, or verify)", s)
}

// Enabled reports whether the mode performs derivation.
func (m Mode) Enabled() bool { return m == On || m == Verify }

// VerifyTolerance is the maximum relative divergence Verify mode accepts
// between a derived cost and the real optimizer's answer. Derivation is
// mathematically exact — the derived number is a previously returned
// optimizer cost, not a model estimate — so the tolerance only absorbs
// float formatting round-trips, not approximation error.
const VerifyTolerance = 1e-9

// Fallback reasons. Each non-DML reason splits by event shape into a
// single-scope key (the bare reason) and a join key (reason + "-join"), the
// currency of FallbacksByReason; the metric series carries them as separate
// reason/shape labels.
const (
	// ReasonDML marks INSERT/UPDATE/DELETE events: their update overhead
	// grows with every index present, so costs are not plan-set monotone
	// and every DML evaluation stays a real call.
	ReasonDML = "dml"
	// ReasonAtom marks a configuration that is its own top — no additive
	// pool candidate extends it — and is therefore costed for real as an
	// atomic configuration.
	ReasonAtom = "atom"
	// ReasonStale marks a lattice walk that hit a node whose cached cost
	// was computed under an older statistics epoch and whose fresh-epoch
	// repair call could not record a fact either; deriving from it could
	// diverge from what a fresh optimizer call would return, so the caller
	// re-costs for real.
	ReasonStale = "stats-epoch"
	// ReasonError marks a walk abandoned because a node evaluation failed
	// (cancellation, degradation, backend error); the caller's own real
	// call reports the definitive error.
	ReasonError = "eval-error"
	// ReasonEscape marks a defensive impossibility guard: a node's plan
	// reported a used structure outside the node, or a plan skeleton offered
	// no selectable alternative. It indicates a backend relevance-filter or
	// skeleton bug, never normal operation.
	ReasonEscape = "used-escape"

	// joinSuffix distinguishes join-event fallbacks from single-scope ones
	// in the per-reason accounting.
	joinSuffix = "-join"
)

// reasonKey returns the accounting key of a fallback: the bare reason for
// single-scope events, reason + joinSuffix for joins (DML has no join shape).
func reasonKey(reason string, join bool) string {
	if join && reason != ReasonDML {
		return reason + joinSuffix
	}
	return reason
}

// Keyed pairs a structure with its canonical key, the currency the engine
// and the evaluator exchange (the evaluator already has both on hand, and
// the engine must not recompute keys on hot paths).
type Keyed struct {
	// Key is Structure.Key(), precomputed.
	Key string
	// Structure is the physical design structure itself.
	Structure catalog.Structure
}

// Result is a derived cost evaluation: the exact cost and used-structure
// set a real optimizer call on the configuration would have returned.
type Result struct {
	// Cost is the optimizer-estimated cost.
	Cost float64
	// Used holds the keys of the structures the plan uses.
	Used []string
}

// Eval evaluates one atomic node configuration on behalf of a lattice walk.
// With fresh false the advisor routes it through its single-flight cost
// cache, so concurrent walks over shared nodes coalesce onto one real call
// and node facts are recorded exactly once per statistics epoch. With fresh
// true the call must bypass the normal cache and issue a current-epoch real
// call (still single-flighted per epoch, and still recorded as a fact) —
// the engine uses it to repair a walk node whose cached cost predates the
// current statistics epoch. A fresh call must not overwrite the normal
// cache entry: the stale entry's first-touch semantics are exactly what a
// derive-off evaluator would keep serving.
type Eval func(cfg *catalog.Configuration, fresh bool) (float64, []string, error)

// fact is one recorded real-call outcome: the configuration's relevant key
// set (joined), its cost, the used-structure keys of the winning plan, and —
// for single-scope SELECTs — the plan skeleton, from which any
// sub-configuration's cost follows by replaying the optimizer's selection
// arithmetic (alts.Select) without touching the lattice walk at all.
type fact struct {
	cost float64
	used []string
	alts *optimizer.Alternatives
}

// factScope scopes facts to one (event, statistics epoch, base part): the
// sandwich argument needs identical statements, identical statistics, and
// identical base-table shapes on both sides.
type factScope struct {
	event int
	epoch int64
	base  string
}

// Engine is one tuning session's derivation state: the structure registry,
// the current candidate pool, the statistics epoch, and the per-event fact
// database. All methods are safe for concurrent use and all are nil-safe,
// so an advisor with derivation off carries a nil *Engine at zero cost.
type Engine struct {
	mode Mode

	mu      sync.Mutex
	structs map[string]catalog.Structure
	pool    []Keyed
	epoch   int64
	facts   map[factScope]map[string]*fact

	atoms        atomic.Int64
	derivations  atomic.Int64
	fallbacks    atomic.Int64
	staleRepairs atomic.Int64
	// byReason holds one per-reason fallback counter, fixed at New over
	// the closed reason-key set so workers index it without locking.
	byReason map[string]*atomic.Int64

	// jnl, when set, receives one derive-fallback journal event per
	// bailout (nil = journaling off). Set once before tuning starts.
	jnl *journal.Journal

	mAtoms, mDerivations              *obs.Counter
	mFallback                         map[string]*obs.Counter
	mStaleRepairs                     *obs.Counter
	hWalkWidth                        *obs.Histogram
	mVerifyOK, mVerifyBad, mVerifyErr *obs.Counter
}

// reasons is the closed fallback-reason-key set, in reporting order: each
// non-DML reason once per shape (single-scope, join).
var reasons = []string{
	ReasonDML,
	ReasonAtom, ReasonAtom + joinSuffix,
	ReasonStale, ReasonStale + joinSuffix,
	ReasonError, ReasonError + joinSuffix,
	ReasonEscape, ReasonEscape + joinSuffix,
}

// New returns an engine in the given mode (nil when the mode is Off, so
// callers can gate on the pointer alone).
func New(mode Mode) *Engine {
	if !mode.Enabled() {
		return nil
	}
	e := &Engine{
		mode:     mode,
		structs:  map[string]catalog.Structure{},
		facts:    map[factScope]map[string]*fact{},
		byReason: map[string]*atomic.Int64{},
	}
	for _, r := range reasons {
		e.byReason[r] = &atomic.Int64{}
	}
	return e
}

// Mode reports the engine's mode (Off for a nil engine).
func (e *Engine) Mode() Mode {
	if e == nil {
		return Off
	}
	return e.mode
}

// AttachMetrics caches the dta_derive_* series so hot paths never take
// registry locks. Safe on a nil engine or nil registry.
func (e *Engine) AttachMetrics(reg *obs.Registry) {
	if e == nil || reg == nil {
		return
	}
	e.mAtoms = reg.Counter("dta_derive_atoms_total",
		"Atomic plan facts recorded, one per successful real what-if call with derivation active.")
	e.mDerivations = reg.Counter("dta_derive_derivations_total",
		"Cost evaluations answered by algebraic derivation instead of an optimizer call.")
	const fbHelp = "Derivation fallbacks to a real what-if call, by reason and event shape."
	e.mFallback = map[string]*obs.Counter{}
	for _, r := range reasons {
		base, shape := r, "single"
		if strings.HasSuffix(r, joinSuffix) {
			base, shape = strings.TrimSuffix(r, joinSuffix), "join"
		}
		e.mFallback[r] = reg.Counter("dta_derive_fallbacks_total", fbHelp, "reason", base, "shape", shape)
	}
	e.mStaleRepairs = reg.Counter("dta_derive_stale_repairs_total",
		"Sandwich-walk nodes whose stale-epoch cache entry was repaired by one fresh-epoch real call, keeping the resolution derivable.")
	e.hWalkWidth = reg.Histogram("dta_derive_walk_width",
		"Structure count of lattice nodes the sandwich walk actually costs for real; replay-answered resolutions never observe (the derive-on bottleneck ROADMAP tracked).",
		obs.CountBuckets)
	const vHelp = "Verify-mode cross-checks of derived costs against real optimizer calls."
	e.mVerifyOK = reg.Counter("dta_derive_verify_total", vHelp, "result", "match")
	e.mVerifyBad = reg.Counter("dta_derive_verify_total", vHelp, "result", "mismatch")
	e.mVerifyErr = reg.Counter("dta_derive_verify_total", vHelp, "result", "error")
}

// SetPool installs the current candidate pool — the structures the search
// phase may add to configurations — replacing the previous pool. The
// advisor calls it at deterministic phase boundaries (per-query candidate
// selection, global enumeration), which keeps every lattice top, and hence
// the set of real calls issued, independent of scheduling. Safe on nil.
func (e *Engine) SetPool(pool []Keyed) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pool = append(e.pool[:0:0], pool...)
	for _, p := range e.pool {
		if _, ok := e.structs[p.Key]; !ok {
			e.structs[p.Key] = p.Structure
		}
	}
}

// BumpEpoch invalidates derivation facts after statistics creation: costs
// computed under different statistics states are not comparable, and the
// sandwich argument requires both sides at the same epoch. The cost cache
// itself is untouched — first-touch semantics there are exactly what
// derivation must reproduce. Safe on nil.
func (e *Engine) BumpEpoch() {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.epoch++
	e.mu.Unlock()
}

// Record stores the plan fact of a completed real what-if call: rel is the
// configuration's relevant structure set (sorted by key, as the evaluator's
// cache key builder produces it), cost and used the optimizer's answer, and
// alts the plan skeleton when the backend produced one (nil otherwise).
// Safe on nil.
func (e *Engine) Record(event int, rel []Keyed, cost float64, used []string, alts *optimizer.Alternatives) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, k := range rel {
		if _, ok := e.structs[k.Key]; !ok {
			e.structs[k.Key] = k.Structure
		}
	}
	scope := factScope{event: event, epoch: e.epoch, base: baseOf(rel)}
	byNode := e.facts[scope]
	if byNode == nil {
		byNode = map[string]*fact{}
		e.facts[scope] = byNode
	}
	node := joinKeys(rel)
	if _, ok := byNode[node]; !ok {
		byNode[node] = &fact{cost: cost, used: append([]string(nil), used...), alts: alts}
		e.atoms.Add(1)
		count(e.mAtoms)
	}
}

// Resolve attempts to derive the cost of the configuration whose relevant
// structure set is rel (sorted by key). join reports whether the event is a
// multi-scope SELECT (per-reason fallback accounting splits by shape);
// additive reports whether a pool structure is an additive plan alternative
// for this event; eval costs atomic node configurations (through the
// caller's cache). The boolean reports success; on false the caller issues
// its ordinary real call. Safe on nil (always false).
func (e *Engine) Resolve(event int, join bool, rel []Keyed, additive func(catalog.Structure) bool, eval Eval) (Result, bool) {
	if e == nil {
		return Result{}, false
	}

	inS := make(map[string]bool, len(rel))
	for _, k := range rel {
		inS[k.Key] = true
	}

	e.mu.Lock()
	for _, k := range rel {
		if _, ok := e.structs[k.Key]; !ok {
			e.structs[k.Key] = k.Structure
		}
	}
	epoch := e.epoch
	top := append([]string(nil), keysOf(rel)...)
	for _, p := range e.pool {
		if inS[p.Key] || isBase(p.Structure) || !additive(p.Structure) {
			continue
		}
		top = append(top, p.Key)
		inS[p.Key] = false // known key, not in S
	}
	e.mu.Unlock()

	if len(top) == len(rel) {
		e.fallback(event, ReasonAtom, join)
		return Result{}, false
	}
	sort.Strings(top)
	scope := factScope{event: event, epoch: epoch, base: baseOf(rel)}

	// Walk the lattice downward from the canonical top. Every node strictly
	// contains S until the loop exits, so nested evaluations (which re-enter
	// Resolve through the caller's cache) only ever wait on strictly larger
	// keys — the wait graph is acyclic and the walk cannot deadlock.
	node := top
	for {
		if len(node) == len(rel) {
			// The walk stripped everything outside S without finding an
			// applicable fact: S itself is the remaining atom.
			e.fallback(event, ReasonAtom, join)
			return Result{}, false
		}
		f := e.lookup(scope, node)
		if f == nil {
			cfg, ok := e.buildConfig(node)
			if !ok {
				e.fallback(event, ReasonEscape, join)
				return Result{}, false
			}
			if e.hWalkWidth != nil {
				// One observation per node the walk costs for real — the
				// in-process bottleneck of derive-on runs. Resolutions
				// answered from existing facts or by skeleton replay never
				// reach here and never observe.
				e.hWalkWidth.Observe(float64(len(node)))
			}
			if _, _, err := eval(cfg, false); err != nil {
				e.fallback(event, ReasonError, join)
				return Result{}, false
			}
			if f = e.lookup(scope, node); f == nil {
				// The evaluation was served from a cache entry recorded
				// under an older statistics epoch; its cost is not valid at
				// the current epoch. Repair the node with one fresh-epoch
				// real call (bypassing the normal cache) so a single stale
				// entry cannot demote a resolvable event to a real call.
				if _, _, err := eval(cfg, true); err != nil {
					e.fallback(event, ReasonError, join)
					return Result{}, false
				}
				if f = e.lookup(scope, node); f == nil {
					e.fallback(event, ReasonStale, join)
					return Result{}, false
				}
				e.staleRepairs.Add(1)
				count(e.mStaleRepairs)
			}
		}
		if f.alts != nil {
			// Plan-skeleton replay (INUM): the node's skeleton holds every
			// plan alternative costed end-to-end, so S's cost is the result
			// of the optimizer's own selection arithmetic restricted to the
			// alternatives S makes available — no walk, no further calls.
			if cost, used, ok := f.alts.Select(func(k string) bool { return inS[k] }); ok {
				e.derivations.Add(1)
				count(e.mDerivations)
				return Result{Cost: cost, Used: used}, true
			}
			// A skeleton with no selectable alternative is impossible for a
			// well-formed backend (a base access always exists); re-cost for
			// real rather than guess.
			e.fallback(event, ReasonEscape, join)
			return Result{}, false
		}
		var outside []string
		for _, u := range f.used {
			if _, ok := inS[u]; !ok || !inS[u] {
				outside = append(outside, u)
			}
		}
		if len(outside) == 0 {
			// The winning plan of the superset needs nothing outside S:
			// its cost and used set transfer to S exactly.
			e.derivations.Add(1)
			count(e.mDerivations)
			return Result{Cost: f.cost, Used: append([]string(nil), f.used...)}, true
		}
		next := subtract(node, outside)
		if len(next) >= len(node) {
			e.fallback(event, ReasonEscape, join)
			return Result{}, false
		}
		if len(next) < len(rel) {
			// Impossible if used ⊆ node and base(S) ⊆ S, guarded anyway.
			e.fallback(event, ReasonEscape, join)
			return Result{}, false
		}
		node = next
	}
}

// FactRecord is one serialized plan fact: the event it belongs to, the base
// part of its scope, the node's canonical joined key set, and the recorded
// optimizer answer (cost, used structures, and — when the backend produced
// one — the plan skeleton). Facts serialize only for the current statistics
// epoch, so a restored engine never mixes epochs.
type FactRecord struct {
	// Event is the workload event index the fact belongs to.
	Event int `json:"event"`
	// Base is the joined base-part key of the fact's scope.
	Base string `json:"base,omitempty"`
	// Node is the canonical joined key set of the fact's configuration.
	Node string `json:"node"`
	// Cost is the recorded optimizer cost.
	Cost float64 `json:"cost"`
	// Used holds the used-structure keys of the winning plan.
	Used []string `json:"used,omitempty"`
	// Alts is the plan skeleton, when the backend produced one.
	Alts *optimizer.Alternatives `json:"alts,omitempty"`
}

// Snapshot is the engine's serializable state at one statistics epoch: the
// structure registry and every fact recorded at the current epoch, both
// sorted so identical states produce byte-identical JSON. It is the derive
// half of a core.CostedPool: a restored engine answers exactly the
// evaluations the original engine could answer at its final epoch.
type Snapshot struct {
	// Mode is the engine's derivation mode.
	Mode Mode `json:"mode"`
	// Structs is the structure registry, sorted by key.
	Structs []Keyed `json:"structs,omitempty"`
	// Facts holds the current-epoch facts, sorted by (event, base, node).
	Facts []FactRecord `json:"facts,omitempty"`
}

// Snapshot captures the engine's current-epoch state for persistence. Facts
// recorded under older statistics epochs are deliberately dropped: they can
// never answer a resolution at the final epoch, and omitting them keeps the
// snapshot's fingerprint a pure function of the reusable state. Safe on nil
// (returns nil).
func (e *Engine) Snapshot() *Snapshot {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s := &Snapshot{Mode: e.mode}
	keys := make([]string, 0, len(e.structs))
	for k := range e.structs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.Structs = append(s.Structs, Keyed{Key: k, Structure: e.structs[k]})
	}
	for scope, byNode := range e.facts {
		if scope.epoch != e.epoch {
			continue
		}
		for node, f := range byNode {
			s.Facts = append(s.Facts, FactRecord{
				Event: scope.event, Base: scope.base, Node: node,
				Cost: f.cost, Used: append([]string(nil), f.used...), Alts: f.alts,
			})
		}
	}
	sort.Slice(s.Facts, func(i, j int) bool {
		a, b := s.Facts[i], s.Facts[j]
		if a.Event != b.Event {
			return a.Event < b.Event
		}
		if a.Base != b.Base {
			return a.Base < b.Base
		}
		return a.Node < b.Node
	})
	return s
}

// Restore loads a snapshot into the engine at epoch zero, replacing any
// existing state. As long as no statistics are created afterwards (the
// search layer never creates statistics), every restored fact stays valid
// and resolutions behave exactly as they would have on the original engine
// at its final epoch. Safe on nil (either side).
func (e *Engine) Restore(s *Snapshot) {
	if e == nil || s == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.epoch = 0
	e.structs = make(map[string]catalog.Structure, len(s.Structs))
	for _, k := range s.Structs {
		e.structs[k.Key] = k.Structure
	}
	e.facts = make(map[factScope]map[string]*fact, len(s.Facts))
	for _, f := range s.Facts {
		scope := factScope{event: f.Event, epoch: 0, base: f.Base}
		byNode := e.facts[scope]
		if byNode == nil {
			byNode = map[string]*fact{}
			e.facts[scope] = byNode
		}
		byNode[f.Node] = &fact{cost: f.Cost, used: append([]string(nil), f.Used...), alts: f.Alts}
	}
}

// VerifyOutcome feeds one Verify-mode cross-check result into the engine's
// accounting: match, mismatch, or backend error (err). Safe on nil.
func (e *Engine) VerifyOutcome(match bool, err error) {
	if e == nil {
		return
	}
	switch {
	case err != nil:
		count(e.mVerifyErr)
	case match:
		count(e.mVerifyOK)
	default:
		count(e.mVerifyBad)
	}
}

// Atoms reports how many atomic plan facts were recorded. Safe on nil.
func (e *Engine) Atoms() int64 {
	if e == nil {
		return 0
	}
	return e.atoms.Load()
}

// Derivations reports how many evaluations were answered by derivation.
// Safe on nil.
func (e *Engine) Derivations() int64 {
	if e == nil {
		return 0
	}
	return e.derivations.Load()
}

// Fallbacks reports how many resolutions fell back to a real call. Safe on
// nil.
func (e *Engine) Fallbacks() int64 {
	if e == nil {
		return 0
	}
	return e.fallbacks.Load()
}

// StaleRepairs reports how many stale walk nodes were repaired by a
// fresh-epoch call. Safe on nil.
func (e *Engine) StaleRepairs() int64 {
	if e == nil {
		return 0
	}
	return e.staleRepairs.Load()
}

// Epoch reports the current statistics epoch, the evaluator's key component
// for single-flighting fresh repair calls. Safe on nil.
func (e *Engine) Epoch() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epoch
}

// FallbacksByReason snapshots the per-reason fallback breakdown (only
// reasons with non-zero counts; nil when none, and on a nil engine).
func (e *Engine) FallbacksByReason() map[string]int64 {
	if e == nil {
		return nil
	}
	var out map[string]int64
	for _, r := range reasons {
		if n := e.byReason[r].Load(); n > 0 {
			if out == nil {
				out = map[string]int64{}
			}
			out[r] = n
		}
	}
	return out
}

// Stats snapshots the derivation counters for progress reporting: the
// derived-eval count and the per-reason fallback breakdown. Safe on nil.
func (e *Engine) Stats() (int64, map[string]int64) {
	return e.Derivations(), e.FallbacksByReason()
}

// SetJournal attaches the session's decision journal, so every fallback
// is recorded as a derive-fallback event with the event index and
// reason. Call before tuning starts; safe on nil (either side).
func (e *Engine) SetJournal(j *journal.Journal) {
	if e == nil {
		return
	}
	e.jnl = j
}

// FallbackDML counts a DML evaluation of the given workload event that
// bypassed derivation. Safe on nil.
func (e *Engine) FallbackDML(event int) { e.fallback(event, ReasonDML, false) }

// fallback counts one fallback of the given workload event under the given
// reason and shape, and journals it when a journal is attached.
func (e *Engine) fallback(event int, reason string, join bool) {
	if e == nil {
		return
	}
	key := reasonKey(reason, join)
	e.fallbacks.Add(1)
	if c := e.byReason[key]; c != nil {
		c.Add(1)
	}
	if e.mFallback != nil {
		count(e.mFallback[key])
	}
	if e.jnl != nil {
		ev := journal.Ev(journal.KindDeriveFallback)
		ev.Query = event
		ev.Reason = key
		e.jnl.Append(ev)
	}
}

// lookup finds the fact for the exact node key set, or nil.
func (e *Engine) lookup(scope factScope, node []string) *fact {
	e.mu.Lock()
	defer e.mu.Unlock()
	byNode := e.facts[scope]
	if byNode == nil {
		return nil
	}
	return byNode[strings.Join(node, "|")]
}

// buildConfig materializes a node's configuration from the structure
// registry, applying structures in sorted key order so identical node sets
// always produce identical configurations.
func (e *Engine) buildConfig(node []string) (*catalog.Configuration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cfg := catalog.NewConfiguration()
	for _, k := range node {
		s, ok := e.structs[k]
		if !ok {
			return nil, false
		}
		s.ApplyTo(cfg)
	}
	return cfg, true
}

// isBase reports whether the structure belongs to the base (shaping) part
// of a configuration: clustered indexes and table partitionings alter the
// base tables themselves and are never added or stripped by lattice walks.
func isBase(s catalog.Structure) bool {
	if s.Index != nil {
		return s.Index.Clustered
	}
	return s.Index == nil && s.View == nil
}

// baseOf joins the base-part keys of a sorted relevant set.
func baseOf(rel []Keyed) string {
	var b strings.Builder
	for _, k := range rel {
		if isBase(k.Structure) {
			if b.Len() > 0 {
				b.WriteByte('|')
			}
			b.WriteString(k.Key)
		}
	}
	return b.String()
}

// keysOf extracts the key column of a Keyed slice.
func keysOf(rel []Keyed) []string {
	out := make([]string, len(rel))
	for i, k := range rel {
		out[i] = k.Key
	}
	return out
}

// joinKeys joins a sorted Keyed slice into the canonical node string.
func joinKeys(rel []Keyed) string {
	var b strings.Builder
	for i, k := range rel {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(k.Key)
	}
	return b.String()
}

// subtract returns sorted \ removed, preserving order.
func subtract(sorted, removed []string) []string {
	drop := make(map[string]bool, len(removed))
	for _, r := range removed {
		drop[r] = true
	}
	out := make([]string, 0, len(sorted))
	for _, k := range sorted {
		if !drop[k] {
			out = append(out, k)
		}
	}
	return out
}

// count increments a cached counter (nil without metrics).
func count(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}
