package derive

import (
	"errors"
	"testing"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/optimizer"
)

func keyed(s catalog.Structure) Keyed { return Keyed{Key: s.Key(), Structure: s} }

func ixKeyed(table string, cols ...string) Keyed {
	return keyed(catalog.Structure{Index: catalog.NewIndex(table, cols...)})
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{
		"": Off, "off": Off, "on": On, "verify": Verify, "ON": On, "Verify": Verify,
	} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("sometimes"); err == nil {
		t.Fatal("ParseMode must reject unknown modes")
	}
	if Off.Enabled() || !On.Enabled() || !Verify.Enabled() {
		t.Fatal("Enabled: off must be false, on/verify true")
	}
}

func TestNilEngineIsInert(t *testing.T) {
	var e *Engine
	if e := New(Off); e != nil {
		t.Fatal("New(Off) must return nil so callers gate on the pointer")
	}
	e.SetPool([]Keyed{ixKeyed("t", "x")})
	e.BumpEpoch()
	e.Record(0, nil, 1, nil, nil)
	e.FallbackDML(0)
	e.VerifyOutcome(true, nil)
	e.AttachMetrics(nil)
	if e.Mode() != Off || e.Atoms() != 0 || e.Derivations() != 0 || e.Fallbacks() != 0 {
		t.Fatal("nil engine must report zeros and Off")
	}
	if _, ok := e.Resolve(0, false, nil, nil, nil); ok {
		t.Fatal("nil engine must never derive")
	}
	if e.StaleRepairs() != 0 || e.Epoch() != 0 {
		t.Fatal("nil engine must report zero repairs and epoch")
	}
}

// evalRecorder simulates the evaluator's cache-miss path: each eval records
// a fact for the node through the engine, as a real call would.
type evalRecorder struct {
	e     *Engine
	event int
	// used maps a node's joined key to the used set its "optimizer" returns.
	used  map[string][]string
	calls []string // cached-path evals, by node key
	fresh []string // fresh repair evals, by node key
	fail  bool
	skip  bool // cached-path evals do not record (simulates a stale cache hit)
	// skipFresh makes fresh evals skip recording too (a broken repair);
	// by default a fresh eval records like the real evaluator's repair call.
	skipFresh bool
}

func (r *evalRecorder) eval(cfg *catalog.Configuration, fresh bool) (float64, []string, error) {
	var rel []Keyed
	for _, ix := range cfg.Indexes {
		rel = append(rel, keyed(catalog.Structure{Index: ix}))
	}
	node := joinKeys(rel)
	if fresh {
		r.fresh = append(r.fresh, node)
	} else {
		r.calls = append(r.calls, node)
	}
	if r.fail {
		return 0, nil, errors.New("backend down")
	}
	used := r.used[node]
	record := !r.skip || (fresh && !r.skipFresh)
	if record {
		r.e.Record(r.event, rel, float64(100+len(node)), used, nil)
	}
	return float64(100 + len(node)), used, nil
}

func additiveAll(catalog.Structure) bool { return true }

func TestResolveSandwichWalk(t *testing.T) {
	e := New(On)
	i1, i2 := ixKeyed("t", "x"), ixKeyed("t", "a")
	e.SetPool([]Keyed{i1, i2})

	rec := &evalRecorder{e: e, event: 7, used: map[string][]string{
		joinKeys([]Keyed{i2, i1}): {i1.Key}, // sorted: ix:t(a) < ix:t(x)
	}}

	// S = {i1}: the top {i1,i2} is costed once; its plan uses only i1 ⊆ S,
	// so the cost transfers without further calls.
	res, ok := e.Resolve(7, false, []Keyed{i1}, additiveAll, rec.eval)
	if !ok {
		t.Fatalf("expected derivation, calls: %v", rec.calls)
	}
	if len(rec.calls) != 1 {
		t.Fatalf("want exactly one real call for the top, got %v", rec.calls)
	}
	if len(res.Used) != 1 || res.Used[0] != i1.Key {
		t.Fatalf("derived used = %v, want [%s]", res.Used, i1.Key)
	}

	// S = {i2}: the top fact's plan uses i1 ∉ S, so the walk strips i1 and
	// costs {i2} — which is S itself, the remaining atom → fallback.
	rec.calls = nil
	if _, ok := e.Resolve(7, false, []Keyed{i2}, additiveAll, rec.eval); ok {
		t.Fatal("walk ending at S itself must fall back")
	}
	if e.Fallbacks() == 0 {
		t.Fatal("fallback must be counted")
	}

	// Different event: facts must not leak across events.
	rec.calls = nil
	e.Resolve(8, false, []Keyed{i1}, additiveAll, rec.eval)
	if len(rec.calls) == 0 {
		t.Fatal("another event must not reuse event 7's facts")
	}
}

func TestResolveFallbackReasons(t *testing.T) {
	i1, i2 := ixKeyed("t", "x"), ixKeyed("t", "a")

	// Atom: S is its own top (empty pool). Join events count under the
	// shape-split key.
	e := New(On)
	if _, ok := e.Resolve(0, false, []Keyed{i1}, additiveAll, nil); ok {
		t.Fatal("empty pool: S is its own top, must fall back")
	}
	if _, ok := e.Resolve(0, true, []Keyed{i1}, additiveAll, nil); ok {
		t.Fatal("join event: empty pool must fall back too")
	}
	by := e.FallbacksByReason()
	if by[ReasonAtom] != 1 || by[ReasonAtom+joinSuffix] != 1 {
		t.Fatalf("atom fallbacks must split by shape, got %v", by)
	}

	// Error: the top evaluation fails.
	e = New(On)
	e.SetPool([]Keyed{i1, i2})
	rec := &evalRecorder{e: e, event: 0, fail: true}
	if _, ok := e.Resolve(0, false, []Keyed{i1}, additiveAll, rec.eval); ok {
		t.Fatal("failed node evaluation must fall back")
	}
	if by := e.FallbacksByReason(); by[ReasonError] != 1 {
		t.Fatalf("error fallback must be counted, got %v", by)
	}

	// Stale: neither the cached-path evaluation nor the fresh repair call
	// records a current-epoch fact.
	e = New(On)
	e.SetPool([]Keyed{i1, i2})
	rec = &evalRecorder{e: e, event: 0, skip: true, skipFresh: true}
	if _, ok := e.Resolve(0, false, []Keyed{i1}, additiveAll, rec.eval); ok {
		t.Fatal("evaluation without a current-epoch fact must fall back")
	}
	if len(rec.fresh) != 1 {
		t.Fatalf("the stale path must attempt exactly one fresh repair call, got %v", rec.fresh)
	}
	if by := e.FallbacksByReason(); by[ReasonStale] != 1 {
		t.Fatalf("stale fallback must be counted, got %v", by)
	}
	if e.StaleRepairs() != 0 {
		t.Fatal("a failed repair must not count as a repair")
	}

	// DML accounting.
	e = New(On)
	before := e.Fallbacks()
	e.FallbackDML(0)
	if e.Fallbacks() != before+1 {
		t.Fatal("FallbackDML must count")
	}
	if by := e.FallbacksByReason(); by[ReasonDML] != 1 {
		t.Fatalf("dml fallback key must stay unsplit, got %v", by)
	}
}

func TestEpochInvalidatesFacts(t *testing.T) {
	e := New(On)
	i1, i2 := ixKeyed("t", "x"), ixKeyed("t", "a")
	e.SetPool([]Keyed{i1, i2})
	rec := &evalRecorder{e: e, event: 0, used: map[string][]string{
		joinKeys([]Keyed{i2, i1}): {i1.Key}, // sorted: ix:t(a) < ix:t(x)
	}}

	if _, ok := e.Resolve(0, false, []Keyed{i1}, additiveAll, rec.eval); !ok {
		t.Fatal("first resolve should derive")
	}
	e.BumpEpoch()
	rec.skip = true      // post-bump cached evaluations come from the stale cache
	rec.skipFresh = true // and the repair path records nothing either
	if _, ok := e.Resolve(0, false, []Keyed{i1}, additiveAll, rec.eval); ok {
		t.Fatal("facts from the previous epoch must not derive")
	}
}

// TestStaleRepair is the regression test for the stale-entry bug: one walk
// node served from an older-epoch cache entry used to abandon the whole
// derivation. The engine must instead force one fresh-epoch real call for
// that node, record the repair, and finish deriving.
func TestStaleRepair(t *testing.T) {
	e := New(On)
	i1, i2 := ixKeyed("t", "x"), ixKeyed("t", "a")
	e.SetPool([]Keyed{i1, i2})
	top := joinKeys([]Keyed{i2, i1}) // sorted: ix:t(a) < ix:t(x)
	rec := &evalRecorder{e: e, event: 0, used: map[string][]string{top: {i1.Key}}}

	if _, ok := e.Resolve(0, false, []Keyed{i1}, additiveAll, rec.eval); !ok {
		t.Fatal("first resolve should derive")
	}
	e.BumpEpoch()
	rec.skip = true // post-bump cached evaluations come from the stale cache
	rec.calls, rec.fresh = nil, nil

	res, ok := e.Resolve(0, false, []Keyed{i1}, additiveAll, rec.eval)
	if !ok {
		t.Fatalf("stale node must be repaired, not demoted (calls %v fresh %v)", rec.calls, rec.fresh)
	}
	if len(rec.fresh) != 1 || rec.fresh[0] != top {
		t.Fatalf("want exactly one fresh repair call for the top, got %v", rec.fresh)
	}
	if e.StaleRepairs() != 1 {
		t.Fatalf("StaleRepairs = %d, want 1", e.StaleRepairs())
	}
	if len(res.Used) != 1 || res.Used[0] != i1.Key {
		t.Fatalf("repaired derivation used = %v, want [%s]", res.Used, i1.Key)
	}
	if e.Fallbacks() != 0 {
		t.Fatalf("a successful repair must not count a fallback, got %d", e.Fallbacks())
	}
}

// TestWalkWidthObservedOnlyOnRealWalk is the regression test for the
// walk-width metric bug: the histogram used to observe once per resolution
// that reached the lattice top, including resolutions answered by skeleton
// replay or an existing fact with zero real calls. It must observe only
// nodes the walk actually costs for real.
func TestWalkWidthObservedOnlyOnRealWalk(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(On)
	e.AttachMetrics(reg)
	h := reg.Histogram("dta_derive_walk_width", "", obs.CountBuckets)

	i1, i2 := ixKeyed("t", "x"), ixKeyed("t", "a")
	e.SetPool([]Keyed{i1, i2})

	// Replay-answered resolution: a skeleton fact for the top exists, so no
	// node is ever costed and the histogram must stay empty.
	alts := &optimizer.Alternatives{Components: []optimizer.AltComponent{
		{Structure: "", Op: "HeapScan", Pre: 480, Final: 500},
		{Structure: i1.Key, Op: "IndexSeek", Pre: 100, Final: 120, Used: []string{i1.Key}},
	}}
	e.Record(0, []Keyed{i2, i1}, 90, []string{i1.Key}, alts)
	if _, ok := e.Resolve(0, false, []Keyed{i1}, additiveAll, nil); !ok {
		t.Fatal("skeleton replay should answer")
	}
	if h.Count() != 0 {
		t.Fatalf("replay-answered resolution must not observe walk width, count %d", h.Count())
	}

	// Walk resolution (no skeleton): the top is costed for real — exactly
	// one observation.
	rec := &evalRecorder{e: e, event: 1, used: map[string][]string{
		joinKeys([]Keyed{i2, i1}): {i1.Key},
	}}
	if _, ok := e.Resolve(1, false, []Keyed{i1}, additiveAll, rec.eval); !ok {
		t.Fatal("walk should derive")
	}
	if h.Count() != 1 {
		t.Fatalf("one real node evaluation must observe exactly once, count %d", h.Count())
	}

	// Re-resolving the same subset is answered from the recorded fact
	// without costing any node: no new observation.
	if _, ok := e.Resolve(1, false, []Keyed{i1}, additiveAll, rec.eval); !ok {
		t.Fatal("transfer from the existing fact should derive")
	}
	if h.Count() != 1 {
		t.Fatalf("fact-answered resolution must not observe, count %d", h.Count())
	}
}

func TestSkeletonReplayAnswersWithoutWalking(t *testing.T) {
	e := New(On)
	i1, i2 := ixKeyed("t", "x"), ixKeyed("t", "a")
	e.SetPool([]Keyed{i1, i2})

	// The top fact carries a skeleton: base scan at 500, i1 plan at 120,
	// i2 plan at 90. Subsets then replay without any further eval.
	alts := &optimizer.Alternatives{Components: []optimizer.AltComponent{
		{Structure: "", Op: "HeapScan", Pre: 480, Final: 500},
		{Structure: i1.Key, Op: "IndexSeek", Pre: 100, Final: 120, Used: []string{i1.Key}},
		{Structure: i2.Key, Op: "IndexSeek", Pre: 70, Final: 90, Used: []string{i2.Key}},
	}}
	e.Record(0, []Keyed{i2, i1}, 90, []string{i2.Key}, alts) // sorted rel, as the evaluator passes it

	evalCalled := false
	failEval := func(*catalog.Configuration, bool) (float64, []string, error) {
		evalCalled = true
		return 0, nil, errors.New("no eval expected")
	}

	res, ok := e.Resolve(0, false, []Keyed{i1}, additiveAll, failEval)
	if !ok || evalCalled {
		t.Fatalf("skeleton must answer {i1} without eval (ok=%v called=%v)", ok, evalCalled)
	}
	if res.Cost != 120 || len(res.Used) != 1 || res.Used[0] != i1.Key {
		t.Fatalf("replay for {i1}: got %+v", res)
	}

	res, ok = e.Resolve(0, false, nil, additiveAll, failEval)
	if !ok || evalCalled {
		t.Fatal("skeleton must answer the empty subset without eval")
	}
	if res.Cost != 500 || len(res.Used) != 0 {
		t.Fatalf("replay for {}: got %+v", res)
	}
}

func TestCountersAndVerifyOutcome(t *testing.T) {
	e := New(Verify)
	if e.Mode() != Verify {
		t.Fatal("mode must round-trip")
	}
	e.VerifyOutcome(true, nil)
	e.VerifyOutcome(false, nil)
	e.VerifyOutcome(false, errors.New("x"))
	// Counters only exist with metrics attached; the calls must not panic
	// without them. Atoms/derivations counters are exercised above.
	e.Record(1, []Keyed{ixKeyed("t", "x")}, 5, nil, nil)
	if e.Atoms() != 1 {
		t.Fatalf("atoms = %d, want 1", e.Atoms())
	}
	// Re-recording the same node must not double-count.
	e.Record(1, []Keyed{ixKeyed("t", "x")}, 5, nil, nil)
	if e.Atoms() != 1 {
		t.Fatalf("atoms after duplicate record = %d, want 1", e.Atoms())
	}
}
