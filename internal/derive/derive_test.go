package derive

import (
	"errors"
	"testing"

	"repro/internal/catalog"
	"repro/internal/optimizer"
)

func keyed(s catalog.Structure) Keyed { return Keyed{Key: s.Key(), Structure: s} }

func ixKeyed(table string, cols ...string) Keyed {
	return keyed(catalog.Structure{Index: catalog.NewIndex(table, cols...)})
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{
		"": Off, "off": Off, "on": On, "verify": Verify, "ON": On, "Verify": Verify,
	} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("sometimes"); err == nil {
		t.Fatal("ParseMode must reject unknown modes")
	}
	if Off.Enabled() || !On.Enabled() || !Verify.Enabled() {
		t.Fatal("Enabled: off must be false, on/verify true")
	}
}

func TestNilEngineIsInert(t *testing.T) {
	var e *Engine
	if e := New(Off); e != nil {
		t.Fatal("New(Off) must return nil so callers gate on the pointer")
	}
	e.SetPool([]Keyed{ixKeyed("t", "x")})
	e.BumpEpoch()
	e.Record(0, nil, 1, nil, nil)
	e.FallbackDML(0)
	e.VerifyOutcome(true, nil)
	e.AttachMetrics(nil)
	if e.Mode() != Off || e.Atoms() != 0 || e.Derivations() != 0 || e.Fallbacks() != 0 {
		t.Fatal("nil engine must report zeros and Off")
	}
	if _, ok := e.Resolve(0, nil, nil, nil); ok {
		t.Fatal("nil engine must never derive")
	}
}

// evalRecorder simulates the evaluator's cache-miss path: each eval records
// a fact for the node through the engine, as a real call would.
type evalRecorder struct {
	e     *Engine
	event int
	// used maps a node's joined key to the used set its "optimizer" returns.
	used  map[string][]string
	calls []string
	fail  bool
	skip  bool // do not record (simulates a stale cache hit)
}

func (r *evalRecorder) eval(cfg *catalog.Configuration) (float64, []string, error) {
	var rel []Keyed
	for _, ix := range cfg.Indexes {
		rel = append(rel, keyed(catalog.Structure{Index: ix}))
	}
	node := joinKeys(rel)
	r.calls = append(r.calls, node)
	if r.fail {
		return 0, nil, errors.New("backend down")
	}
	used := r.used[node]
	if !r.skip {
		r.e.Record(r.event, rel, float64(100+len(node)), used, nil)
	}
	return float64(100 + len(node)), used, nil
}

func additiveAll(catalog.Structure) bool { return true }

func TestResolveSandwichWalk(t *testing.T) {
	e := New(On)
	i1, i2 := ixKeyed("t", "x"), ixKeyed("t", "a")
	e.SetPool([]Keyed{i1, i2})

	rec := &evalRecorder{e: e, event: 7, used: map[string][]string{
		joinKeys([]Keyed{i2, i1}): {i1.Key}, // sorted: ix:t(a) < ix:t(x)
	}}

	// S = {i1}: the top {i1,i2} is costed once; its plan uses only i1 ⊆ S,
	// so the cost transfers without further calls.
	res, ok := e.Resolve(7, []Keyed{i1}, additiveAll, rec.eval)
	if !ok {
		t.Fatalf("expected derivation, calls: %v", rec.calls)
	}
	if len(rec.calls) != 1 {
		t.Fatalf("want exactly one real call for the top, got %v", rec.calls)
	}
	if len(res.Used) != 1 || res.Used[0] != i1.Key {
		t.Fatalf("derived used = %v, want [%s]", res.Used, i1.Key)
	}

	// S = {i2}: the top fact's plan uses i1 ∉ S, so the walk strips i1 and
	// costs {i2} — which is S itself, the remaining atom → fallback.
	rec.calls = nil
	if _, ok := e.Resolve(7, []Keyed{i2}, additiveAll, rec.eval); ok {
		t.Fatal("walk ending at S itself must fall back")
	}
	if e.Fallbacks() == 0 {
		t.Fatal("fallback must be counted")
	}

	// Different event: facts must not leak across events.
	rec.calls = nil
	e.Resolve(8, []Keyed{i1}, additiveAll, rec.eval)
	if len(rec.calls) == 0 {
		t.Fatal("another event must not reuse event 7's facts")
	}
}

func TestResolveFallbackReasons(t *testing.T) {
	i1, i2 := ixKeyed("t", "x"), ixKeyed("t", "a")

	// Atom: S is its own top (empty pool).
	e := New(On)
	if _, ok := e.Resolve(0, []Keyed{i1}, additiveAll, nil); ok {
		t.Fatal("empty pool: S is its own top, must fall back")
	}

	// Error: the top evaluation fails.
	e = New(On)
	e.SetPool([]Keyed{i1, i2})
	rec := &evalRecorder{e: e, event: 0, fail: true}
	if _, ok := e.Resolve(0, []Keyed{i1}, additiveAll, rec.eval); ok {
		t.Fatal("failed node evaluation must fall back")
	}

	// Stale: the evaluation returns (cache hit from an older epoch) without
	// recording a fresh fact.
	e = New(On)
	e.SetPool([]Keyed{i1, i2})
	rec = &evalRecorder{e: e, event: 0, skip: true}
	if _, ok := e.Resolve(0, []Keyed{i1}, additiveAll, rec.eval); ok {
		t.Fatal("evaluation without a current-epoch fact must fall back")
	}

	// DML accounting.
	e = New(On)
	before := e.Fallbacks()
	e.FallbackDML(0)
	if e.Fallbacks() != before+1 {
		t.Fatal("FallbackDML must count")
	}
}

func TestEpochInvalidatesFacts(t *testing.T) {
	e := New(On)
	i1, i2 := ixKeyed("t", "x"), ixKeyed("t", "a")
	e.SetPool([]Keyed{i1, i2})
	rec := &evalRecorder{e: e, event: 0, used: map[string][]string{
		joinKeys([]Keyed{i2, i1}): {i1.Key}, // sorted: ix:t(a) < ix:t(x)
	}}

	if _, ok := e.Resolve(0, []Keyed{i1}, additiveAll, rec.eval); !ok {
		t.Fatal("first resolve should derive")
	}
	e.BumpEpoch()
	rec.skip = true // post-bump evaluations come from the stale cache
	if _, ok := e.Resolve(0, []Keyed{i1}, additiveAll, rec.eval); ok {
		t.Fatal("facts from the previous epoch must not derive")
	}
}

func TestSkeletonReplayAnswersWithoutWalking(t *testing.T) {
	e := New(On)
	i1, i2 := ixKeyed("t", "x"), ixKeyed("t", "a")
	e.SetPool([]Keyed{i1, i2})

	// The top fact carries a skeleton: base scan at 500, i1 plan at 120,
	// i2 plan at 90. Subsets then replay without any further eval.
	alts := &optimizer.Alternatives{Components: []optimizer.AltComponent{
		{Structure: "", Op: "HeapScan", Pre: 480, Final: 500},
		{Structure: i1.Key, Op: "IndexSeek", Pre: 100, Final: 120, Used: []string{i1.Key}},
		{Structure: i2.Key, Op: "IndexSeek", Pre: 70, Final: 90, Used: []string{i2.Key}},
	}}
	e.Record(0, []Keyed{i2, i1}, 90, []string{i2.Key}, alts) // sorted rel, as the evaluator passes it

	evalCalled := false
	failEval := func(*catalog.Configuration) (float64, []string, error) {
		evalCalled = true
		return 0, nil, errors.New("no eval expected")
	}

	res, ok := e.Resolve(0, []Keyed{i1}, additiveAll, failEval)
	if !ok || evalCalled {
		t.Fatalf("skeleton must answer {i1} without eval (ok=%v called=%v)", ok, evalCalled)
	}
	if res.Cost != 120 || len(res.Used) != 1 || res.Used[0] != i1.Key {
		t.Fatalf("replay for {i1}: got %+v", res)
	}

	res, ok = e.Resolve(0, nil, additiveAll, failEval)
	if !ok || evalCalled {
		t.Fatal("skeleton must answer the empty subset without eval")
	}
	if res.Cost != 500 || len(res.Used) != 0 {
		t.Fatalf("replay for {}: got %+v", res)
	}
}

func TestCountersAndVerifyOutcome(t *testing.T) {
	e := New(Verify)
	if e.Mode() != Verify {
		t.Fatal("mode must round-trip")
	}
	e.VerifyOutcome(true, nil)
	e.VerifyOutcome(false, nil)
	e.VerifyOutcome(false, errors.New("x"))
	// Counters only exist with metrics attached; the calls must not panic
	// without them. Atoms/derivations counters are exercised above.
	e.Record(1, []Keyed{ixKeyed("t", "x")}, 5, nil, nil)
	if e.Atoms() != 1 {
		t.Fatalf("atoms = %d, want 1", e.Atoms())
	}
	// Re-recording the same node must not double-count.
	e.Record(1, []Keyed{ixKeyed("t", "x")}, 5, nil, nil)
	if e.Atoms() != 1 {
		t.Fatalf("atoms after duplicate record = %d, want 1", e.Atoms())
	}
}
