// Package drift scores workload drift between compressor epochs for the
// continuous tuning daemon: how far the live trace's weighted
// template distribution has moved since the last re-tune. The score is the
// total-variation distance between the two normalized distributions —
// 0 for identical template mixes, 1 for disjoint ones — computed over
// sorted signatures so it is bit-deterministic regardless of map iteration
// order, and symmetric in its arguments. Because a template's weight is the
// sum of its events' weights, the score is also independent of the order
// events arrived in.
package drift

import "sort"

// Distribution is a weighted template distribution: statement template
// signature → total folded weight. workload.Compressor.TemplateWeights
// produces one from live compressor state.
type Distribution map[string]float64

// Total returns the summed weight, accumulated in sorted-signature order so
// the float result is deterministic.
func (d Distribution) Total() float64 {
	var t float64
	for _, sig := range sortedKeys(d, nil) {
		t += d[sig]
	}
	return t
}

// Score returns the total-variation distance between the normalized forms
// of a and b, in [0, 1]: half the sum over the signature union of
// |a(sig)/aTotal − b(sig)/bTotal|. Two empty distributions score 0; an
// empty distribution against a non-empty one scores 1 (maximal drift —
// everything the workload now does is new). The sum runs over sorted
// signatures, making the result deterministic and symmetric.
func Score(a, b Distribution) float64 {
	ta, tb := a.Total(), b.Total()
	if ta <= 0 && tb <= 0 {
		return 0
	}
	if ta <= 0 || tb <= 0 {
		return 1
	}
	var sum float64
	for _, sig := range sortedKeys(a, b) {
		pa := a[sig] / ta
		pb := b[sig] / tb
		if pa >= pb {
			sum += pa - pb
		} else {
			sum += pb - pa
		}
	}
	// Accumulated rounding can land an ulp past the mathematical bound.
	if sum > 2 {
		sum = 2
	}
	return sum / 2
}

// Covers reports whether every signature carrying weight in cur is present
// in base — the condition under which a costed pool built from base can
// answer a re-tune of cur through the revise path (reweighting existing
// templates never needs new costing; a new template does).
func Covers(base, cur Distribution) bool {
	for sig, w := range cur {
		if w <= 0 {
			continue
		}
		if base[sig] <= 0 {
			return false
		}
	}
	return true
}

// Multipliers returns the per-signature slice-weight multipliers that
// reweight a workload with distribution base to match cur: cur(sig) /
// base(sig) for every base signature, 0 for templates that vanished.
// Feeding the result to the search layer's SliceWeights makes a revision
// against the old pool cost the workload as it is now shaped. Signatures in
// cur but not base have no base events to reweight — callers must check
// Covers first.
func Multipliers(base, cur Distribution) map[string]float64 {
	if len(base) == 0 {
		return nil
	}
	out := make(map[string]float64, len(base))
	for sig, bw := range base {
		if bw <= 0 {
			continue
		}
		out[sig] = cur[sig] / bw
	}
	return out
}

// sortedKeys returns the sorted union of the two distributions' signatures.
func sortedKeys(a, b Distribution) []string {
	keys := make([]string, 0, len(a)+len(b))
	for k := range a {
		keys = append(keys, k)
	}
	for k := range b {
		if _, dup := a[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
