package drift

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

func TestScoreEmptyEpochs(t *testing.T) {
	if got := Score(nil, nil); got != 0 {
		t.Fatalf("Score(nil, nil) = %g, want 0", got)
	}
	if got := Score(Distribution{}, Distribution{}); got != 0 {
		t.Fatalf("Score of two empty distributions = %g, want 0", got)
	}
	full := Distribution{"a": 3, "b": 1}
	if got := Score(nil, full); got != 1 {
		t.Fatalf("Score(empty, non-empty) = %g, want 1", got)
	}
	if got := Score(full, nil); got != 1 {
		t.Fatalf("Score(non-empty, empty) = %g, want 1", got)
	}
}

func TestScoreSingleTemplate(t *testing.T) {
	a := Distribution{"q": 5}
	b := Distribution{"q": 500}
	// One template is one template no matter its absolute weight: the
	// normalized distributions are identical.
	if got := Score(a, b); got != 0 {
		t.Fatalf("single-template score = %g, want 0", got)
	}
	c := Distribution{"other": 1}
	if got := Score(a, c); got != 1 {
		t.Fatalf("single vs different single = %g, want 1", got)
	}
}

func TestScoreIdenticalEpochs(t *testing.T) {
	a := Distribution{"a": 2, "b": 6, "c": 0.5}
	if got := Score(a, a); got != 0 {
		t.Fatalf("Score(a, a) = %g, want 0", got)
	}
	// Uniform scaling leaves the normalized distribution untouched.
	scaled := Distribution{}
	for k, v := range a {
		scaled[k] = v * 3
	}
	if got := Score(a, scaled); got != 0 {
		t.Fatalf("Score(a, 3a) = %g, want 0", got)
	}
}

func TestScoreDisjointEpochsIsMax(t *testing.T) {
	a := Distribution{"a": 1, "b": 2}
	b := Distribution{"c": 4, "d": 1, "e": 1}
	if got := Score(a, b); got != 1 {
		t.Fatalf("disjoint score = %g, want 1", got)
	}
}

func TestScoreSymmetricAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sigs := []string{"a", "b", "c", "d", "e", "f"}
	for trial := 0; trial < 200; trial++ {
		a, b := Distribution{}, Distribution{}
		for _, s := range sigs {
			if rng.Intn(2) == 0 {
				a[s] = rng.Float64() * 10
			}
			if rng.Intn(2) == 0 {
				b[s] = rng.Float64() * 10
			}
		}
		ab, ba := Score(a, b), Score(b, a)
		if ab != ba {
			t.Fatalf("trial %d: Score not symmetric: %g vs %g", trial, ab, ba)
		}
		if ab < 0 || ab > 1 {
			t.Fatalf("trial %d: Score %g outside [0,1]", trial, ab)
		}
	}
}

// TestScoreDeterministicUnderShuffledEvents feeds the same events to two
// compressors in different orders: the template distributions — and hence
// the drift score against any reference — must be bit-identical, because a
// template's weight is the sum of its events' weights regardless of which
// representative each folded into.
func TestScoreDeterministicUnderShuffledEvents(t *testing.T) {
	sqls := []string{
		"SELECT a FROM t WHERE a = 1",
		"SELECT a FROM t WHERE a = 2",
		"SELECT a FROM t WHERE a = 900",
		"SELECT b FROM t WHERE b = 5",
		"SELECT b FROM t WHERE b = 6",
		"SELECT a, b FROM t WHERE a = 3 AND b = 4",
	}
	var events []*workload.Event
	w := &workload.Workload{}
	for i, sql := range sqls {
		if err := w.Add(sql, float64(1+i%3)); err != nil {
			t.Fatal(err)
		}
	}
	events = w.Events

	dist := func(order []int) Distribution {
		comp := workload.NewCompressor(workload.CompressOptions{})
		for _, i := range order {
			if err := comp.Add(events[i]); err != nil {
				t.Fatal(err)
			}
		}
		return Distribution(comp.TemplateWeights())
	}

	base := dist([]int{0, 1, 2, 3, 4, 5})
	ref := Distribution{"x": 1, "y": 2}
	want := Score(base, ref)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		order := rng.Perm(len(events))
		d := dist(order)
		if got := Score(d, ref); got != want {
			t.Fatalf("trial %d (order %v): score %v, want %v", trial, order, got, want)
		}
		if got := Score(base, d); got != 0 {
			t.Fatalf("trial %d: shuffled distribution drifted from in-order one: %v", trial, got)
		}
	}
}

func TestCovers(t *testing.T) {
	base := Distribution{"a": 3, "b": 1}
	if !Covers(base, Distribution{"a": 10}) {
		t.Fatal("subset not covered")
	}
	if !Covers(base, base) {
		t.Fatal("identical distribution not covered")
	}
	if Covers(base, Distribution{"a": 1, "c": 1}) {
		t.Fatal("new template reported covered")
	}
	if !Covers(base, nil) {
		t.Fatal("empty distribution should be covered")
	}
	if Covers(nil, Distribution{"a": 1}) {
		t.Fatal("empty base covers nothing")
	}
}

func TestMultipliers(t *testing.T) {
	base := Distribution{"a": 2, "b": 4}
	cur := Distribution{"a": 6, "b": 4}
	m := Multipliers(base, cur)
	if m["a"] != 3 || m["b"] != 1 {
		t.Fatalf("multipliers = %v, want a:3 b:1", m)
	}
	// Vanished template → multiplier 0, so its events stop counting.
	m = Multipliers(base, Distribution{"a": 2})
	if m["b"] != 0 {
		t.Fatalf("vanished template multiplier = %g, want 0", m["b"])
	}
	if Multipliers(nil, cur) != nil {
		t.Fatal("empty base should yield nil multipliers")
	}
}
