package engine

// btree is an in-memory B+-tree over (key []Value, rowID int) entries,
// ordered by key then rowID. It backs IndexData: inserts and deletes are
// logarithmic, and range scans walk the linked leaf level — the structure
// whose page behaviour the optimizer's B-tree cost model describes.
type btree struct {
	root   *btreeNode
	degree int // max keys per node (order = degree+1 children)
	size   int
}

type btreeEntry struct {
	key []Value
	row int
}

type btreeNode struct {
	leaf     bool
	entries  []btreeEntry // leaf: data entries; internal: separator keys
	children []*btreeNode // internal only: len(entries)+1 children
	next     *btreeNode   // leaf-level sibling link
}

const defaultBtreeDegree = 64

func newBtree() *btree {
	return &btree{root: &btreeNode{leaf: true}, degree: defaultBtreeDegree}
}

// cmp orders two entries by key, breaking ties by row id so deletes can
// locate their exact entry.
func cmpEntries(a, b btreeEntry) int {
	n := len(a.key)
	if len(b.key) < n {
		n = len(b.key)
	}
	for i := 0; i < n; i++ {
		if c := a.key[i].Compare(b.key[i]); c != 0 {
			return c
		}
	}
	if len(a.key) != len(b.key) {
		if len(a.key) < len(b.key) {
			return -1
		}
		return 1
	}
	switch {
	case a.row < b.row:
		return -1
	case a.row > b.row:
		return 1
	default:
		return 0
	}
}

// cmpPrefix compares an entry's key against a probe prefix only (no row
// tiebreak): 0 means the entry's leading columns equal the probe.
func cmpPrefix(e btreeEntry, probe []Value) int {
	for i, v := range probe {
		if i >= len(e.key) {
			return -1
		}
		if c := e.key[i].Compare(v); c != 0 {
			return c
		}
	}
	return 0
}

// search returns the index of the first entry in n.entries that is ≥ e.
func searchEntries(entries []btreeEntry, e btreeEntry) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmpEntries(entries[mid], e) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds an entry.
func (t *btree) Insert(key []Value, row int) {
	e := btreeEntry{key: key, row: row}
	newChild, sep := t.insert(t.root, e)
	if newChild != nil {
		t.root = &btreeNode{
			entries:  []btreeEntry{sep},
			children: []*btreeNode{t.root, newChild},
		}
	}
	t.size++
}

// insert descends, splitting full children on the way back up. Returns a
// new right sibling and its separator when the node split.
func (t *btree) insert(n *btreeNode, e btreeEntry) (*btreeNode, btreeEntry) {
	if n.leaf {
		i := searchEntries(n.entries, e)
		n.entries = append(n.entries, btreeEntry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		if len(n.entries) <= t.degree {
			return nil, btreeEntry{}
		}
		// Split leaf: right half moves to a new node.
		mid := len(n.entries) / 2
		right := &btreeNode{leaf: true, entries: append([]btreeEntry(nil), n.entries[mid:]...), next: n.next}
		n.entries = n.entries[:mid:mid]
		n.next = right
		return right, right.entries[0]
	}
	// Internal: find child.
	ci := searchEntries(n.entries, e)
	// Entries in internal nodes are separators: child i holds keys < entries[i].
	if ci < len(n.entries) && cmpEntries(e, n.entries[ci]) >= 0 {
		ci++
	}
	newChild, sep := t.insert(n.children[ci], e)
	if newChild == nil {
		return nil, btreeEntry{}
	}
	i := searchEntries(n.entries, sep)
	n.entries = append(n.entries, btreeEntry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = newChild
	if len(n.entries) <= t.degree {
		return nil, btreeEntry{}
	}
	// Split internal node: middle separator moves up.
	mid := len(n.entries) / 2
	up := n.entries[mid]
	right := &btreeNode{
		entries:  append([]btreeEntry(nil), n.entries[mid+1:]...),
		children: append([]*btreeNode(nil), n.children[mid+1:]...),
	}
	n.entries = n.entries[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return right, up
}

// Delete removes the entry with the exact key and row id; it reports
// whether an entry was removed. Underflow is tolerated (nodes may become
// sparse); the tree stays correct, which is the property the engine needs.
func (t *btree) Delete(key []Value, row int) bool {
	e := btreeEntry{key: key, row: row}
	n := t.root
	for !n.leaf {
		ci := searchEntries(n.entries, e)
		if ci < len(n.entries) && cmpEntries(e, n.entries[ci]) >= 0 {
			ci++
		}
		n = n.children[ci]
	}
	i := searchEntries(n.entries, e)
	if i < len(n.entries) && cmpEntries(n.entries[i], e) == 0 {
		n.entries = append(n.entries[:i], n.entries[i+1:]...)
		t.size--
		return true
	}
	return false
}

// leafFor descends to the leaf that would contain e.
func (t *btree) leafFor(e btreeEntry) *btreeNode {
	n := t.root
	for !n.leaf {
		ci := searchEntries(n.entries, e)
		if ci < len(n.entries) && cmpEntries(e, n.entries[ci]) >= 0 {
			ci++
		}
		n = n.children[ci]
	}
	return n
}

// ScanPrefix appends to out the row ids of all entries whose leading key
// columns equal probe, in key order.
func (t *btree) ScanPrefix(probe []Value, out []int) []int {
	start := btreeEntry{key: probe, row: -1 << 62}
	n := t.leafFor(start)
	for n != nil {
		i := searchEntries(n.entries, start)
		for ; i < len(n.entries); i++ {
			c := cmpPrefix(n.entries[i], probe)
			if c > 0 {
				return out
			}
			if c == 0 {
				out = append(out, n.entries[i].row)
			}
		}
		n = n.next
	}
	return out
}

// ScanRange appends row ids with lo ≤ leadingKey ≤ hi (nil bounds open,
// inclusivity flags as given), in key order.
func (t *btree) ScanRange(lo, hi *Value, incLo, incHi bool, out []int) []int {
	var n *btreeNode
	if lo == nil {
		// Leftmost leaf.
		n = t.root
		for !n.leaf {
			n = n.children[0]
		}
	} else {
		n = t.leafFor(btreeEntry{key: []Value{*lo}, row: -1 << 62})
	}
	for n != nil {
		for i := 0; i < len(n.entries); i++ {
			e := n.entries[i]
			if lo != nil && len(e.key) > 0 {
				c := e.key[0].Compare(*lo)
				if c < 0 || (c == 0 && !incLo) {
					continue
				}
			}
			if hi != nil && len(e.key) > 0 {
				c := e.key[0].Compare(*hi)
				if c > 0 || (c == 0 && !incHi) {
					return out
				}
			}
			out = append(out, e.row)
		}
		n = n.next
	}
	return out
}

// ScanAll appends every row id in key order.
func (t *btree) ScanAll(out []int) []int {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		for _, e := range n.entries {
			out = append(out, e.row)
		}
		n = n.next
	}
	return out
}

// Len returns the number of entries.
func (t *btree) Len() int { return t.size }

// depth returns the tree height (leaf = 1), for tests.
func (t *btree) depth() int {
	d := 1
	n := t.root
	for !n.leaf {
		d++
		n = n.children[0]
	}
	return d
}
