package engine

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBtreeInsertScanOrder(t *testing.T) {
	bt := newBtree()
	rng := rand.New(rand.NewSource(3))
	n := 5000
	keys := make([]float64, n)
	for i := 0; i < n; i++ {
		keys[i] = float64(rng.Intn(800)) // heavy duplicates
		bt.Insert([]Value{Num(keys[i])}, i)
	}
	if bt.Len() != n {
		t.Fatalf("Len = %d", bt.Len())
	}
	if bt.depth() < 2 {
		t.Fatalf("5000 entries should split: depth %d", bt.depth())
	}
	all := bt.ScanAll(nil)
	if len(all) != n {
		t.Fatalf("ScanAll = %d", len(all))
	}
	prev := -1.0
	for _, id := range all {
		if keys[id] < prev {
			t.Fatal("ScanAll out of order")
		}
		prev = keys[id]
	}
}

func TestBtreeSeekAndDelete(t *testing.T) {
	bt := newBtree()
	for i := 0; i < 3000; i++ {
		bt.Insert([]Value{Num(float64(i % 300)), Num(float64(i))}, i)
	}
	// Prefix scan on the leading column.
	rows := bt.ScanPrefix([]Value{Num(42)}, nil)
	if len(rows) != 10 {
		t.Fatalf("prefix scan = %d, want 10", len(rows))
	}
	for _, id := range rows {
		if id%300 != 42 {
			t.Fatalf("wrong row %d", id)
		}
	}
	// Composite prefix.
	rows = bt.ScanPrefix([]Value{Num(42), Num(42)}, nil)
	if len(rows) != 1 || rows[0] != 42 {
		t.Fatalf("composite prefix = %v", rows)
	}
	// Delete one entry and rescan.
	if !bt.Delete([]Value{Num(42), Num(342)}, 342) {
		t.Fatal("delete failed")
	}
	if bt.Delete([]Value{Num(42), Num(342)}, 342) {
		t.Fatal("double delete should fail")
	}
	rows = bt.ScanPrefix([]Value{Num(42)}, nil)
	if len(rows) != 9 {
		t.Fatalf("after delete = %d, want 9", len(rows))
	}
}

func TestBtreeRangeScan(t *testing.T) {
	bt := newBtree()
	for i := 0; i < 1000; i++ {
		bt.Insert([]Value{Num(float64(i))}, i)
	}
	lo, hi := Num(100), Num(199)
	rows := bt.ScanRange(&lo, &hi, true, true, nil)
	if len(rows) != 100 {
		t.Fatalf("range = %d, want 100", len(rows))
	}
	rows = bt.ScanRange(&lo, &hi, false, false, nil)
	if len(rows) != 98 {
		t.Fatalf("exclusive range = %d, want 98", len(rows))
	}
	rows = bt.ScanRange(nil, &lo, true, true, nil)
	if len(rows) != 101 {
		t.Fatalf("open-lo range = %d, want 101", len(rows))
	}
	rows = bt.ScanRange(&hi, nil, false, false, nil)
	if len(rows) != 800 {
		t.Fatalf("open-hi range = %d, want 800", len(rows))
	}
}

func TestBtreeStrings(t *testing.T) {
	bt := newBtree()
	words := []string{"delta", "alpha", "charlie", "bravo", "echo", "alpha"}
	for i, w := range words {
		bt.Insert([]Value{Str(w)}, i)
	}
	rows := bt.ScanPrefix([]Value{Str("alpha")}, nil)
	if len(rows) != 2 {
		t.Fatalf("alpha rows = %v", rows)
	}
	lo := Str("b")
	hi := Str("d")
	rows = bt.ScanRange(&lo, &hi, true, true, nil)
	if len(rows) != 2 { // bravo, charlie
		t.Fatalf("string range = %d, want 2", len(rows))
	}
}

// TestBtreePropertyAgainstSortedSlice cross-checks the tree against a plain
// sorted slice under random interleaved inserts, deletes and scans.
func TestBtreePropertyAgainstSortedSlice(t *testing.T) {
	type op struct {
		Insert bool
		Key    uint8
	}
	f := func(ops []op, probe uint8, lo8, hi8 uint8) bool {
		bt := newBtree()
		bt.degree = 4 // force deep trees
		type ent struct {
			k   float64
			row int
		}
		var ref []ent
		row := 0
		for _, o := range ops {
			k := float64(o.Key % 50)
			if o.Insert || len(ref) == 0 {
				bt.Insert([]Value{Num(k)}, row)
				ref = append(ref, ent{k: k, row: row})
				row++
			} else {
				victim := ref[int(o.Key)%len(ref)]
				if !bt.Delete([]Value{Num(victim.k)}, victim.row) {
					return false
				}
				for i := range ref {
					if ref[i] == victim {
						ref = append(ref[:i], ref[i+1:]...)
						break
					}
				}
			}
		}
		if bt.Len() != len(ref) {
			return false
		}
		// Prefix scan equivalence.
		pk := float64(probe % 50)
		var want []int
		for _, e := range ref {
			if e.k == pk {
				want = append(want, e.row)
			}
		}
		got := bt.ScanPrefix([]Value{Num(pk)}, nil)
		if !sameSet(got, want) {
			return false
		}
		// Range scan equivalence.
		loV, hiV := float64(lo8%50), float64(hi8%50)
		if hiV < loV {
			loV, hiV = hiV, loV
		}
		want = want[:0]
		for _, e := range ref {
			if e.k >= loV && e.k <= hiV {
				want = append(want, e.row)
			}
		}
		l, h := Num(loV), Num(hiV)
		got = bt.ScanRange(&l, &h, true, true, nil)
		return sameSet(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	x := append([]int(nil), a...)
	y := append([]int(nil), b...)
	sort.Ints(x)
	sort.Ints(y)
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}
