package engine

import (
	"fmt"

	"repro/internal/optimizer"
	"repro/internal/sqlparser"
)

// execInsert appends rows and maintains every index and view on the table.
func (p *Prepared) execInsert(s *sqlparser.Insert) (*Result, error) {
	td := p.DB.Table(s.Table)
	if td == nil {
		return nil, fmt.Errorf("engine: unknown table %q", s.Table)
	}
	cols := s.Columns
	if len(cols) == 0 {
		cols = make([]string, len(td.Meta.Columns))
		for i, c := range td.Meta.Columns {
			cols[i] = c.Name
		}
	}
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(cols) {
			return nil, fmt.Errorf("engine: INSERT row has %d values for %d columns", len(exprRow), len(cols))
		}
		row := make([]Value, len(td.Meta.Columns))
		for i, e := range exprRow {
			ci := td.ColIndex(cols[i])
			if ci < 0 {
				return nil, fmt.Errorf("engine: unknown column %q", cols[i])
			}
			v, err := evalScalar(e, func(string, string) (Value, bool) { return Value{}, false }, nil)
			if err != nil {
				return nil, err
			}
			row[ci] = v
		}
		id := td.Append(row)
		p.maintainInsert(td, id)
	}
	p.invalidateViews(td.Meta.Name, int64(len(s.Rows)))
	return &Result{Affected: len(s.Rows)}, nil
}

// maintainInsert updates indexes and partition assignments for a new row.
func (p *Prepared) maintainInsert(td *TableData, id int) {
	for _, ix := range p.indexesOn(td.Meta.Name) {
		ix.insertRow(id)
		p.Metrics.RowsMaintained++
	}
	if scheme := p.Cfg.TablePartitioning(td.Meta.Name); scheme != nil {
		if parts, ok := p.parts[td.Meta.Name]; ok {
			ci := td.ColIndex(scheme.Column)
			pi := scheme.Locate(td.Rows[id][ci].Numeric())
			parts[pi] = append(parts[pi], id)
			p.parts[td.Meta.Name] = parts
			p.Metrics.RowsMaintained++
		}
	}
}

// targetRows finds the row ids a DML statement's WHERE selects.
func (p *Prepared) targetRows(table string, where sqlparser.Expr) (*TableData, []int, error) {
	td := p.DB.Table(table)
	if td == nil {
		return nil, nil, fmt.Errorf("engine: unknown table %q", table)
	}
	// Reuse the SELECT machinery for analysis-driven access.
	sel := &sqlparser.Select{
		Items: []sqlparser.SelectItem{{Expr: nil}},
		From:  []sqlparser.TableRef{{Name: td.Meta.Name}},
		Where: where,
	}
	q, err := optimizer.Analyze(p.DB.Cat, sel)
	if err != nil {
		return nil, nil, err
	}
	candidates := p.scopeRowIDs(q, 0, td)
	p.Metrics.RowsScanned += int64(len(candidates))
	var ids []int
	for _, id := range candidates {
		if td.Deleted[id] {
			continue
		}
		keep := true
		if where != nil {
			lk := func(qual, name string) (Value, bool) {
				ci := td.ColIndex(name)
				if ci < 0 {
					return Value{}, false
				}
				return td.Rows[id][ci], true
			}
			pass, err := evalBool(where, lk, nil)
			if err != nil {
				return nil, nil, err
			}
			keep = pass
		}
		if keep {
			ids = append(ids, id)
		}
	}
	return td, ids, nil
}

// execUpdate modifies rows in place and maintains dependent structures.
func (p *Prepared) execUpdate(s *sqlparser.Update) (*Result, error) {
	td, ids, err := p.targetRows(s.Table, s.Where)
	if err != nil {
		return nil, err
	}
	indexes := p.indexesOn(td.Meta.Name)
	for _, id := range ids {
		lk := func(qual, name string) (Value, bool) {
			ci := td.ColIndex(name)
			if ci < 0 {
				return Value{}, false
			}
			return td.Rows[id][ci], true
		}
		// Evaluate all assignments against the pre-update row.
		newVals := make(map[int]Value, len(s.Set))
		for _, asn := range s.Set {
			ci := td.ColIndex(asn.Column)
			if ci < 0 {
				return nil, fmt.Errorf("engine: unknown column %q", asn.Column)
			}
			v, err := evalScalar(asn.Value, lk, nil)
			if err != nil {
				return nil, err
			}
			newVals[ci] = v
		}
		// Indexes whose columns change must be repositioned.
		for _, ix := range indexes {
			touched := false
			for _, kc := range ix.Def.KeyColumns {
				if _, ok := newVals[td.ColIndex(kc)]; ok {
					touched = true
					break
				}
			}
			if touched {
				ix.removeRow(id)
			}
		}
		for ci, v := range newVals {
			td.Rows[id][ci] = v
		}
		for _, ix := range indexes {
			touched := false
			for _, kc := range ix.Def.KeyColumns {
				if _, ok := newVals[td.ColIndex(kc)]; ok {
					touched = true
					break
				}
			}
			if touched {
				ix.insertRow(id)
				p.Metrics.RowsMaintained++
			}
		}
		// Repartition if the partitioning column moved.
		if scheme := p.Cfg.TablePartitioning(td.Meta.Name); scheme != nil {
			if _, ok := newVals[td.ColIndex(scheme.Column)]; ok {
				p.rebuildPartitions(td)
			}
		}
	}
	if len(ids) > 0 {
		p.invalidateViews(td.Meta.Name, int64(len(ids)))
	}
	return &Result{Affected: len(ids)}, nil
}

// execDelete tombstones rows and maintains dependent structures.
func (p *Prepared) execDelete(s *sqlparser.Delete) (*Result, error) {
	td, ids, err := p.targetRows(s.Table, s.Where)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		td.Deleted[id] = true
		td.live--
		for _, ix := range p.indexesOn(td.Meta.Name) {
			ix.removeRow(id)
			p.Metrics.RowsMaintained++
		}
	}
	if len(ids) > 0 {
		if p.Cfg.TablePartitioning(td.Meta.Name) != nil {
			p.rebuildPartitions(td)
		}
		p.invalidateViews(td.Meta.Name, int64(len(ids)))
	}
	return &Result{Affected: len(ids)}, nil
}

func (p *Prepared) rebuildPartitions(td *TableData) {
	if scheme := p.Cfg.TablePartitioning(td.Meta.Name); scheme != nil {
		_ = p.buildPartitions(td, scheme)
		p.Metrics.RowsMaintained += int64(td.LiveRows())
	}
}
