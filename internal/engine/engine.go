// Package engine is the in-memory storage and execution engine: heap tables,
// ordered (B-tree-like) indexes, single-column range partitioning, and
// materialized views, plus a physical executor for the SQL subset. It exists
// so recommendations can actually be implemented and run — the paper's §7.2
// compares optimizer-estimated improvement against the actual improvement in
// execution time, and the engine is what makes "actual" measurable.
//
// The engine consumes the same analyzed-query shape (optimizer.Analyze) and
// the same view-matching predicate (optimizer.MatchView) as the optimizer,
// so the estimated and executed plans agree on structure usage while actual
// row counts still diverge from estimates the way real systems do.
package engine

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
)

// Value is one SQL value: numeric (int/float/date) or string.
type Value struct {
	F   float64
	S   string
	Str bool
}

// Num returns a numeric value.
func Num(f float64) Value { return Value{F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{S: s, Str: true} }

// Less orders two values (strings lexicographically, numbers numerically;
// numbers sort before strings in mixed comparisons, which do not occur in
// well-typed queries).
func (v Value) Less(o Value) bool {
	if v.Str != o.Str {
		return !v.Str
	}
	if v.Str {
		return v.S < o.S
	}
	return v.F < o.F
}

// Equal reports value equality.
func (v Value) Equal(o Value) bool {
	if v.Str != o.Str {
		return false
	}
	if v.Str {
		return v.S == o.S
	}
	return v.F == o.F
}

// Compare returns -1, 0 or +1.
func (v Value) Compare(o Value) int {
	switch {
	case v.Equal(o):
		return 0
	case v.Less(o):
		return -1
	default:
		return 1
	}
}

// String renders the value.
func (v Value) String() string {
	if v.Str {
		return v.S
	}
	return trimFloat(v.F)
}

func trimFloat(f float64) string { return strings.TrimSuffix(fmt.Sprintf("%g", f), ".0") }

// Numeric returns the numeric interpretation (strings yield 0).
func (v Value) Numeric() float64 {
	if v.Str {
		return 0
	}
	return v.F
}

// TableData holds the rows of one table, row-major in column order.
type TableData struct {
	Meta    *catalog.Table
	Rows    [][]Value
	Deleted []bool // tombstones; len == len(Rows)
	colIdx  map[string]int
	live    int
}

// NewTableData creates empty storage for a table.
func NewTableData(meta *catalog.Table) *TableData {
	td := &TableData{Meta: meta, colIdx: map[string]int{}}
	for i, c := range meta.Columns {
		td.colIdx[strings.ToLower(c.Name)] = i
	}
	return td
}

// ColIndex returns the position of the column in a row, or -1.
func (td *TableData) ColIndex(name string) int {
	if i, ok := td.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Append adds a row (in column order) and returns its row id.
func (td *TableData) Append(row []Value) int {
	td.Rows = append(td.Rows, row)
	td.Deleted = append(td.Deleted, false)
	td.live++
	return len(td.Rows) - 1
}

// LiveRows returns the number of non-deleted rows.
func (td *TableData) LiveRows() int { return td.live }

// Database is the data of one server: table contents keyed by table name.
type Database struct {
	Cat    *catalog.Catalog
	tables map[string]*TableData
}

// NewDatabase creates an empty database over the catalog.
func NewDatabase(cat *catalog.Catalog) *Database {
	return &Database{Cat: cat, tables: map[string]*TableData{}}
}

// Table returns (creating on demand) the storage of the named table, or nil
// if the catalog does not know it.
func (db *Database) Table(name string) *TableData {
	key := strings.ToLower(name)
	if td, ok := db.tables[key]; ok {
		return td
	}
	meta := db.Cat.ResolveTable(name)
	if meta == nil {
		return nil
	}
	td := NewTableData(meta)
	db.tables[key] = td
	return td
}

// Load bulk-appends rows into a table.
func (db *Database) Load(table string, rows [][]Value) error {
	td := db.Table(table)
	if td == nil {
		return fmt.Errorf("engine: unknown table %q", table)
	}
	for _, r := range rows {
		if len(r) != len(td.Meta.Columns) {
			return fmt.Errorf("engine: row width %d != %d columns of %q", len(r), len(td.Meta.Columns), table)
		}
		td.Append(r)
	}
	return nil
}

// SyncRowCounts updates the catalog's row counts from the stored data, so
// the optimizer's estimates track reality after loads and DML.
func (db *Database) SyncRowCounts() {
	for _, td := range db.tables {
		td.Meta.Rows = int64(td.LiveRows())
	}
}
