package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/catalog"
)

// buildTestDB creates orders (1000 rows) and customers (100 rows) with
// deterministic contents.
func buildTestDB(t *testing.T) *Database {
	t.Helper()
	cat := catalog.New()
	d := catalog.NewDatabase("db")
	d.AddTable(catalog.NewTable("db", "orders", 0,
		&catalog.Column{Name: "o_id", Type: catalog.TypeInt, Width: 8, Distinct: 1000, Min: 0, Max: 999},
		&catalog.Column{Name: "o_cust", Type: catalog.TypeInt, Width: 8, Distinct: 100, Min: 0, Max: 99},
		&catalog.Column{Name: "o_amount", Type: catalog.TypeFloat, Width: 8, Distinct: 500, Min: 0, Max: 499},
		&catalog.Column{Name: "o_day", Type: catalog.TypeDate, Width: 8, Distinct: 365, Min: 0, Max: 364},
		&catalog.Column{Name: "o_status", Type: catalog.TypeString, Width: 10, Distinct: 3, Min: 0, Max: 2},
	))
	d.AddTable(catalog.NewTable("db", "customers", 0,
		&catalog.Column{Name: "c_id", Type: catalog.TypeInt, Width: 8, Distinct: 100, Min: 0, Max: 99},
		&catalog.Column{Name: "c_name", Type: catalog.TypeString, Width: 20, Distinct: 100, Min: 0, Max: 99},
		&catalog.Column{Name: "c_region", Type: catalog.TypeInt, Width: 8, Distinct: 4, Min: 0, Max: 3},
	))
	cat.AddDatabase(d)
	db := NewDatabase(cat)

	statuses := []string{"open", "paid", "void"}
	var orows [][]Value
	for i := 0; i < 1000; i++ {
		orows = append(orows, []Value{
			Num(float64(i)), Num(float64(i % 100)), Num(float64((i * 7) % 500)),
			Num(float64(i % 365)), Str(statuses[i%3]),
		})
	}
	if err := db.Load("orders", orows); err != nil {
		t.Fatal(err)
	}
	var crows [][]Value
	for i := 0; i < 100; i++ {
		crows = append(crows, []Value{Num(float64(i)), Str(fmt.Sprintf("cust%03d", i)), Num(float64(i % 4))})
	}
	if err := db.Load("customers", crows); err != nil {
		t.Fatal(err)
	}
	db.SyncRowCounts()
	return db
}

func mustPrep(t *testing.T, db *Database, cfg *catalog.Configuration) *Prepared {
	t.Helper()
	p, err := db.Materialize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func rowsOf(t *testing.T, p *Prepared, sql string) [][]Value {
	t.Helper()
	res, err := p.ExecSQL(sql)
	if err != nil {
		t.Fatalf("ExecSQL(%q): %v", sql, err)
	}
	return res.Rows
}

func TestBasicSelect(t *testing.T) {
	db := buildTestDB(t)
	p := mustPrep(t, db, nil)

	rows := rowsOf(t, p, "SELECT o_id FROM orders WHERE o_cust = 5 ORDER BY o_id")
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	if rows[0][0].F != 5 || rows[9][0].F != 905 {
		t.Fatalf("unexpected ids: %v ... %v", rows[0], rows[9])
	}

	rows = rowsOf(t, p, "SELECT COUNT(*) FROM orders WHERE o_status = 'paid'")
	if len(rows) != 1 || rows[0][0].F != 333 {
		t.Fatalf("count(paid) = %v", rows)
	}

	rows = rowsOf(t, p, "SELECT COUNT(*) FROM orders WHERE o_status LIKE 'p%'")
	if rows[0][0].F != 333 {
		t.Fatalf("LIKE count = %v", rows)
	}
}

func TestJoinGroupOrder(t *testing.T) {
	db := buildTestDB(t)
	p := mustPrep(t, db, nil)
	rows := rowsOf(t, p, `SELECT c.c_region, COUNT(*), SUM(o.o_amount)
		FROM orders o JOIN customers c ON o.o_cust = c.c_id
		WHERE o.o_day < 100 GROUP BY c.c_region ORDER BY c.c_region`)
	if len(rows) != 4 {
		t.Fatalf("regions = %d, want 4", len(rows))
	}
	var totalCnt float64
	for _, r := range rows {
		totalCnt += r[1].F
	}
	// o_day = i % 365 < 100: i in [0,99] ∪ [365,464] ∪ [730,829] → 300 rows.
	if totalCnt != 300 {
		t.Fatalf("total count = %g, want 300", totalCnt)
	}
	// Regions ordered ascending.
	for i := 1; i < len(rows); i++ {
		if rows[i][0].F < rows[i-1][0].F {
			t.Fatal("regions not ordered")
		}
	}
}

func TestHavingDistinctTop(t *testing.T) {
	db := buildTestDB(t)
	p := mustPrep(t, db, nil)

	rows := rowsOf(t, p, "SELECT o_cust, COUNT(*) FROM orders GROUP BY o_cust HAVING COUNT(*) > 9")
	if len(rows) != 100 { // every customer has exactly 10 orders
		t.Fatalf("having rows = %d", len(rows))
	}
	rows = rowsOf(t, p, "SELECT o_cust, COUNT(*) FROM orders GROUP BY o_cust HAVING COUNT(*) > 10")
	if len(rows) != 0 {
		t.Fatalf("having rows = %d, want 0", len(rows))
	}
	rows = rowsOf(t, p, "SELECT DISTINCT o_status FROM orders")
	if len(rows) != 3 {
		t.Fatalf("distinct = %d", len(rows))
	}
	rows = rowsOf(t, p, "SELECT TOP 5 o_id FROM orders ORDER BY o_amount DESC, o_id")
	if len(rows) != 5 {
		t.Fatalf("top = %d", len(rows))
	}
}

func TestAggregatesAndArithmetic(t *testing.T) {
	db := buildTestDB(t)
	p := mustPrep(t, db, nil)
	rows := rowsOf(t, p, "SELECT SUM(o_amount * 2), AVG(o_amount), MIN(o_amount), MAX(o_amount) FROM orders WHERE o_cust = 0")
	if len(rows) != 1 {
		t.Fatal("scalar aggregate should yield one row")
	}
	// Customer 0 has orders i = 0,100,...,900 with amount (i*7)%500.
	var sum, minV, maxV float64
	minV, maxV = 1e18, -1e18
	for i := 0; i < 1000; i += 100 {
		a := float64((i * 7) % 500)
		sum += a
		if a < minV {
			minV = a
		}
		if a > maxV {
			maxV = a
		}
	}
	if rows[0][0].F != 2*sum || rows[0][1].F != sum/10 || rows[0][2].F != minV || rows[0][3].F != maxV {
		t.Fatalf("aggregates wrong: %v (sum=%g)", rows[0], sum)
	}
}

// TestConfigurationInvariance is the engine's central correctness property:
// query results must not depend on the physical configuration.
func TestConfigurationInvariance(t *testing.T) {
	db := buildTestDB(t)
	queries := []string{
		"SELECT o_id FROM orders WHERE o_cust = 7 ORDER BY o_id",
		"SELECT o_cust, COUNT(*), SUM(o_amount) FROM orders WHERE o_day BETWEEN 10 AND 50 GROUP BY o_cust ORDER BY o_cust",
		"SELECT c.c_name, SUM(o.o_amount) FROM orders o JOIN customers c ON o.o_cust = c.c_id GROUP BY c.c_name ORDER BY c.c_name",
		"SELECT COUNT(*) FROM orders WHERE o_status = 'open' AND o_day < 200",
		"SELECT o_status, AVG(o_amount) FROM orders GROUP BY o_status ORDER BY o_status",
		"SELECT TOP 7 o_id, o_amount FROM orders WHERE o_amount > 400 ORDER BY o_amount DESC, o_id",
	}

	raw := mustPrep(t, db, nil)
	baseline := make([][][]Value, len(queries))
	for i, q := range queries {
		baseline[i] = rowsOf(t, raw, q)
	}

	cfgs := []*catalog.Configuration{}
	// Indexed.
	c1 := catalog.NewConfiguration()
	c1.AddIndex(catalog.NewIndex("orders", "o_cust").WithInclude("o_amount"))
	c1.AddIndex(catalog.NewIndex("orders", "o_day"))
	c1.AddIndex(catalog.NewIndex("customers", "c_id"))
	cfgs = append(cfgs, c1)
	// Clustered + partitioned.
	c2 := catalog.NewConfiguration()
	cix := catalog.NewIndex("orders", "o_day")
	cix.Clustered = true
	c2.AddIndex(cix)
	c2.SetTablePartitioning("orders", catalog.NewPartitionScheme("o_day", 100, 200, 300))
	cfgs = append(cfgs, c2)
	// Materialized views.
	c3 := catalog.NewConfiguration()
	c3.AddView(catalog.NewMaterializedView([]string{"orders"}, nil,
		nil,
		[]catalog.ColRef{catalog.NewColRef("orders", "o_status")},
		[]catalog.Agg{{Func: "AVG", Col: catalog.NewColRef("orders", "o_amount")}, {Func: "COUNT"}, {Func: "SUM", Col: catalog.NewColRef("orders", "o_amount")}},
		3))
	cfgs = append(cfgs, c3)

	for ci, cfg := range cfgs {
		p := mustPrep(t, db, cfg)
		for qi, q := range queries {
			got := rowsOf(t, p, q)
			if !reflect.DeepEqual(got, baseline[qi]) {
				t.Errorf("config %d changes result of %q:\n got %v\nwant %v", ci, q, got, baseline[qi])
			}
		}
	}
}

func TestViewIsActuallyUsed(t *testing.T) {
	db := buildTestDB(t)
	cfg := catalog.NewConfiguration()
	cfg.AddView(catalog.NewMaterializedView([]string{"orders"}, nil, nil,
		[]catalog.ColRef{catalog.NewColRef("orders", "o_status")},
		[]catalog.Agg{{Func: "COUNT"}},
		3))
	p := mustPrep(t, db, cfg)
	res, err := p.ExecSQL("SELECT o_status, COUNT(*) FROM orders GROUP BY o_status")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ViewsScanned != 1 {
		t.Fatalf("view should serve the query: %+v", res.Stats)
	}
	if res.Stats.RowsScanned > 10 {
		t.Fatalf("view path should touch few rows, scanned %d", res.Stats.RowsScanned)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestIndexReducesRowsScanned(t *testing.T) {
	db := buildTestDB(t)
	raw := mustPrep(t, db, nil)
	r1, err := raw.ExecSQL("SELECT o_id FROM orders WHERE o_cust = 3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := catalog.NewConfiguration()
	cfg.AddIndex(catalog.NewIndex("orders", "o_cust"))
	p := mustPrep(t, db, cfg)
	r2, err := p.ExecSQL("SELECT o_id FROM orders WHERE o_cust = 3")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.IndexSeeks == 0 {
		t.Fatal("expected an index seek")
	}
	if r2.Stats.RowsScanned >= r1.Stats.RowsScanned {
		t.Fatalf("seek should scan fewer rows: %d vs %d", r2.Stats.RowsScanned, r1.Stats.RowsScanned)
	}
	if len(r2.Rows) != len(r1.Rows) {
		t.Fatal("results must agree")
	}
}

func TestPartitionEliminationReducesScan(t *testing.T) {
	db := buildTestDB(t)
	cfg := catalog.NewConfiguration()
	cfg.SetTablePartitioning("orders", catalog.NewPartitionScheme("o_day", 100, 200, 300))
	p := mustPrep(t, db, cfg)
	res, err := p.ExecSQL("SELECT COUNT(*) FROM orders WHERE o_day BETWEEN 120 AND 150")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RowsScanned >= 1000 {
		t.Fatalf("elimination should skip partitions: scanned %d", res.Stats.RowsScanned)
	}
	if res.Rows[0][0].F == 0 {
		t.Fatal("result should be non-empty")
	}
}

func TestDML(t *testing.T) {
	db := buildTestDB(t)
	cfg := catalog.NewConfiguration()
	cfg.AddIndex(catalog.NewIndex("orders", "o_cust"))
	cfg.AddView(catalog.NewMaterializedView([]string{"orders"}, nil, nil,
		[]catalog.ColRef{catalog.NewColRef("orders", "o_cust")},
		[]catalog.Agg{{Func: "COUNT"}},
		100))
	p := mustPrep(t, db, cfg)

	// Insert.
	res, err := p.ExecSQL("INSERT INTO orders VALUES (5000, 5, 123, 40, 'open')")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 || res.Stats.RowsMaintained == 0 {
		t.Fatalf("insert: %+v", res)
	}
	rows := rowsOf(t, p, "SELECT COUNT(*) FROM orders WHERE o_cust = 5")
	if rows[0][0].F != 11 {
		t.Fatalf("after insert count = %v", rows[0][0])
	}
	// The view reflects the insert (stale → rebuilt on access).
	rows = rowsOf(t, p, "SELECT o_cust, COUNT(*) FROM orders GROUP BY o_cust ORDER BY o_cust")
	if rows[5][1].F != 11 {
		t.Fatalf("view after insert = %v", rows[5])
	}

	// Update moving an index key.
	res, err = p.ExecSQL("UPDATE orders SET o_cust = 6 WHERE o_id = 5000")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("update affected = %d", res.Affected)
	}
	rows = rowsOf(t, p, "SELECT COUNT(*) FROM orders WHERE o_cust = 5")
	if rows[0][0].F != 10 {
		t.Fatalf("after update count(5) = %v", rows[0][0])
	}
	rows = rowsOf(t, p, "SELECT COUNT(*) FROM orders WHERE o_cust = 6")
	if rows[0][0].F != 11 {
		t.Fatalf("after update count(6) = %v", rows[0][0])
	}

	// Delete.
	res, err = p.ExecSQL("DELETE FROM orders WHERE o_id = 5000")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("delete affected = %d", res.Affected)
	}
	rows = rowsOf(t, p, "SELECT COUNT(*) FROM orders")
	if rows[0][0].F != 1000 {
		t.Fatalf("after delete total = %v", rows[0][0])
	}
}

func TestJoinViewMaterializationAndUse(t *testing.T) {
	db := buildTestDB(t)
	cfg := catalog.NewConfiguration()
	cfg.AddView(catalog.NewMaterializedView(
		[]string{"orders", "customers"},
		[]catalog.JoinPred{{Left: catalog.NewColRef("orders", "o_cust"), Right: catalog.NewColRef("customers", "c_id")}},
		nil,
		[]catalog.ColRef{catalog.NewColRef("customers", "c_region")},
		[]catalog.Agg{{Func: "SUM", Col: catalog.NewColRef("orders", "o_amount")}, {Func: "COUNT"}},
		4))
	p := mustPrep(t, db, cfg)

	raw := mustPrep(t, db, nil)
	q := "SELECT c.c_region, SUM(o.o_amount) FROM orders o JOIN customers c ON o.o_cust = c.c_id GROUP BY c.c_region ORDER BY c.c_region"
	want := rowsOf(t, raw, q)
	res, err := p.ExecSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ViewsScanned != 1 {
		t.Fatalf("join view should serve the query: %+v", res.Stats)
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("view answer differs:\n got %v\nwant %v", res.Rows, want)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abcabc", "%abc", true},
		{"abcabc", "a%c", true},
		{"Hello", "hello", true}, // case-insensitive like SQL Server default
	}
	for _, tc := range cases {
		if got := matchLike(tc.s, tc.p); got != tc.want {
			t.Errorf("matchLike(%q, %q) = %v, want %v", tc.s, tc.p, got, tc.want)
		}
	}
}

func TestSamplerStats(t *testing.T) {
	db := buildTestDB(t)
	s := NewSampler(db)
	vals := s.SampleColumn("orders", "o_cust", 500)
	if len(vals) == 0 {
		t.Fatal("no samples")
	}
	rows := s.SampleRows("orders", []string{"o_cust", "o_day"}, 500)
	if len(rows) == 0 || len(rows[0]) != 2 {
		t.Fatalf("rows = %v", rows[:1])
	}
	if s.SampleColumn("orders", "nope", 10) != nil {
		t.Fatal("unknown column should return nil")
	}
	if s.SampleColumn("nope", "x", 10) != nil {
		t.Fatal("unknown table should return nil")
	}
}

func TestSeekRandomizedAgainstScan(t *testing.T) {
	db := buildTestDB(t)
	cfg := catalog.NewConfiguration()
	cfg.AddIndex(catalog.NewIndex("orders", "o_amount"))
	p := mustPrep(t, db, cfg)
	raw := mustPrep(t, db, nil)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 25; i++ {
		lo := rng.Intn(500)
		hi := lo + rng.Intn(100)
		q := fmt.Sprintf("SELECT COUNT(*) FROM orders WHERE o_amount BETWEEN %d AND %d", lo, hi)
		a := rowsOf(t, raw, q)
		b := rowsOf(t, p, q)
		if a[0][0].F != b[0][0].F {
			t.Fatalf("range [%d,%d]: scan=%g seek=%g", lo, hi, a[0][0].F, b[0][0].F)
		}
	}
}
