package engine

import (
	"fmt"
	"strings"

	"repro/internal/sqlparser"
)

// lookupFn resolves a column reference in the current row context.
// It returns the value and whether the reference resolved.
type lookupFn func(qualifier, name string) (Value, bool)

// aggFn evaluates an aggregate in the current group context; nil when
// aggregates are not allowed in the expression.
type aggFn func(f *sqlparser.FuncExpr) (Value, error)

// evalScalar evaluates a scalar expression.
func evalScalar(e sqlparser.Expr, lk lookupFn, agg aggFn) (Value, error) {
	switch v := e.(type) {
	case *sqlparser.ColName:
		if val, ok := lk(v.Qualifier, v.Name); ok {
			return val, nil
		}
		return Value{}, fmt.Errorf("engine: cannot resolve column %s", v)
	case *sqlparser.Literal:
		if v.Kind == sqlparser.LitString {
			return Str(v.S), nil
		}
		return Num(v.F), nil
	case *sqlparser.BinaryExpr:
		l, err := evalScalar(v.Left, lk, agg)
		if err != nil {
			return Value{}, err
		}
		r, err := evalScalar(v.Right, lk, agg)
		if err != nil {
			return Value{}, err
		}
		a, b := l.Numeric(), r.Numeric()
		switch v.Op {
		case "+":
			return Num(a + b), nil
		case "-":
			return Num(a - b), nil
		case "*":
			return Num(a * b), nil
		case "/":
			if b == 0 {
				return Num(0), nil
			}
			return Num(a / b), nil
		}
		return Value{}, fmt.Errorf("engine: unknown operator %q", v.Op)
	case *sqlparser.FuncExpr:
		if agg == nil {
			return Value{}, fmt.Errorf("engine: aggregate %s not allowed here", v)
		}
		return agg(v)
	default:
		return Value{}, fmt.Errorf("engine: unsupported scalar %T", e)
	}
}

// evalBool evaluates a boolean expression.
func evalBool(e sqlparser.Expr, lk lookupFn, agg aggFn) (bool, error) {
	switch v := e.(type) {
	case *sqlparser.AndExpr:
		l, err := evalBool(v.Left, lk, agg)
		if err != nil || !l {
			return false, err
		}
		return evalBool(v.Right, lk, agg)
	case *sqlparser.OrExpr:
		l, err := evalBool(v.Left, lk, agg)
		if err != nil || l {
			return l, err
		}
		return evalBool(v.Right, lk, agg)
	case *sqlparser.NotExpr:
		b, err := evalBool(v.Inner, lk, agg)
		return !b, err
	case *sqlparser.ComparisonExpr:
		l, err := evalScalar(v.Left, lk, agg)
		if err != nil {
			return false, err
		}
		r, err := evalScalar(v.Right, lk, agg)
		if err != nil {
			return false, err
		}
		switch v.Op {
		case "=":
			return l.Equal(r), nil
		case "<>":
			return !l.Equal(r), nil
		case "<":
			return l.Less(r), nil
		case ">":
			return r.Less(l), nil
		case "<=":
			return !r.Less(l), nil
		case ">=":
			return !l.Less(r), nil
		case "like":
			return matchLike(l.String(), r.String()), nil
		}
		return false, fmt.Errorf("engine: unknown comparison %q", v.Op)
	case *sqlparser.BetweenExpr:
		x, err := evalScalar(v.Expr, lk, agg)
		if err != nil {
			return false, err
		}
		lo, err := evalScalar(v.Lo, lk, agg)
		if err != nil {
			return false, err
		}
		hi, err := evalScalar(v.Hi, lk, agg)
		if err != nil {
			return false, err
		}
		return !x.Less(lo) && !hi.Less(x), nil
	case *sqlparser.InExpr:
		x, err := evalScalar(v.Expr, lk, agg)
		if err != nil {
			return false, err
		}
		for _, item := range v.List {
			iv, err := evalScalar(item, lk, agg)
			if err != nil {
				return false, err
			}
			if x.Equal(iv) {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("engine: unsupported boolean %T", e)
	}
}

// matchLike implements SQL LIKE with % (any run) and _ (any single char).
func matchLike(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Dynamic programming over the pattern, iterative two-pointer with
	// backtracking on '%'.
	si, pi := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || equalFoldByte(p[pi], s[si])):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star, starSi = pi, si
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

func equalFoldByte(a, b byte) bool {
	if a == b {
		return true
	}
	if 'A' <= a && a <= 'Z' {
		a += 'a' - 'A'
	}
	if 'A' <= b && b <= 'Z' {
		b += 'a' - 'A'
	}
	return a == b
}

// parseExprText parses a bare SQL expression (used to evaluate synthetic
// "expr:" aggregate arguments stored in view definitions).
func parseExprText(text string) (sqlparser.Expr, error) {
	stmt, err := sqlparser.Parse("SELECT " + text + " FROM __x")
	if err != nil {
		return nil, fmt.Errorf("engine: bad expression %q: %w", text, err)
	}
	sel := stmt.(*sqlparser.Select)
	if len(sel.Items) != 1 || sel.Items[0].Expr == nil {
		return nil, fmt.Errorf("engine: bad expression %q", text)
	}
	return sel.Items[0].Expr, nil
}

// exprQualifiers collects the distinct qualifiers used in an expression.
func exprQualifiers(e sqlparser.Expr) []string {
	seen := map[string]bool{}
	var out []string
	sqlparser.WalkExprs(e, func(x sqlparser.Expr) {
		if c, ok := x.(*sqlparser.ColName); ok {
			q := strings.ToLower(c.Qualifier)
			if !seen[q] {
				seen[q] = true
				out = append(out, q)
			}
		}
	})
	return out
}
