package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/optimizer"
	"repro/internal/sqlparser"
)

// Result is the output of executing one statement.
type Result struct {
	Columns []string
	Rows    [][]Value
	// Affected is the number of rows changed by DML.
	Affected int
	// Stats is the physical work of this statement alone.
	Stats ExecStats
}

// Exec executes a statement against the prepared (materialized)
// configuration.
func (p *Prepared) Exec(stmt sqlparser.Statement) (*Result, error) {
	before := p.Metrics
	var res *Result
	var err error
	switch s := stmt.(type) {
	case *sqlparser.Select:
		res, err = p.execSelect(s)
	case *sqlparser.Insert:
		res, err = p.execInsert(s)
	case *sqlparser.Update:
		res, err = p.execUpdate(s)
	case *sqlparser.Delete:
		res, err = p.execDelete(s)
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
	if err != nil {
		return nil, err
	}
	res.Stats = diffStats(p.Metrics, before)
	return res, nil
}

// ExecSQL parses and executes one statement.
func (p *Prepared) ExecSQL(sql string) (*Result, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return p.Exec(stmt)
}

func diffStats(after, before ExecStats) ExecStats {
	return ExecStats{
		RowsScanned:    after.RowsScanned - before.RowsScanned,
		IndexSeeks:     after.IndexSeeks - before.IndexSeeks,
		RowsReturned:   after.RowsReturned - before.RowsReturned,
		ViewsScanned:   after.ViewsScanned - before.ViewsScanned,
		RowsMaintained: after.RowsMaintained - before.RowsMaintained,
	}
}

func (p *Prepared) execSelect(s *sqlparser.Select) (*Result, error) {
	q, err := optimizer.Analyze(p.DB.Cat, s)
	if err != nil {
		return nil, err
	}

	// Prefer a matching materialized view (smallest first), mirroring the
	// optimizer's view matching so estimated and actual plans agree.
	var bestView *ViewData
	for _, vd := range p.views {
		if _, ok := optimizer.MatchView(q, vd.Def); ok {
			fresh := p.viewByKey(vd.Def.Key())
			if bestView == nil || len(fresh.Rows) < len(bestView.Rows) {
				bestView = fresh
			}
		}
	}
	if bestView != nil {
		return p.execSelectFromView(s, q, bestView)
	}
	return p.execSelectBase(s, q)
}

// resolver binds column references to scopes for the engine, mirroring the
// analyzer's rules (qualifier = binding or table name; unqualified = unique
// owning table).
type resolver struct {
	q        *optimizer.QueryInfo
	colScope map[string]int // unqualified column → scope (-2 = ambiguous)
}

func newResolver(q *optimizer.QueryInfo) *resolver {
	r := &resolver{q: q, colScope: map[string]int{}}
	for si, sc := range q.Scopes {
		for _, c := range sc.Table.Columns {
			name := strings.ToLower(c.Name)
			if prev, ok := r.colScope[name]; ok && prev != si {
				r.colScope[name] = -2
			} else {
				r.colScope[name] = si
			}
		}
	}
	return r
}

// scopeOf resolves a reference to a scope index, or -1.
func (r *resolver) scopeOf(qualifier, name string) int {
	qualifier = strings.ToLower(qualifier)
	name = strings.ToLower(name)
	if qualifier != "" {
		for si, sc := range r.q.Scopes {
			if sc.Binding == qualifier || sc.Table.Name == qualifier {
				if sc.Table.HasColumn(name) {
					return si
				}
				return -1
			}
		}
		return -1
	}
	if si, ok := r.colScope[name]; ok && si >= 0 {
		return si
	}
	return -1
}

// exprScopes returns the set of scopes an expression touches.
func (r *resolver) exprScopes(e sqlparser.Expr) ([]int, error) {
	seen := map[int]bool{}
	var out []int
	var badRef error
	sqlparser.WalkExprs(e, func(x sqlparser.Expr) {
		if c, ok := x.(*sqlparser.ColName); ok {
			si := r.scopeOf(c.Qualifier, c.Name)
			if si < 0 {
				badRef = fmt.Errorf("engine: cannot resolve %s", c)
				return
			}
			if !seen[si] {
				seen[si] = true
				out = append(out, si)
			}
		}
	})
	sort.Ints(out)
	return out, badRef
}

// execSelectBase runs the query over base tables.
func (p *Prepared) execSelectBase(s *sqlparser.Select, q *optimizer.QueryInfo) (*Result, error) {
	r := newResolver(q)
	tds := make([]*TableData, len(q.Scopes))
	for si, sc := range q.Scopes {
		tds[si] = p.DB.Table(sc.Table.Name)
		if tds[si] == nil {
			return nil, fmt.Errorf("engine: no data for table %q", sc.Table.Name)
		}
	}

	// Classify WHERE conjuncts by scope coverage.
	type cond struct {
		expr   sqlparser.Expr
		scopes []int
	}
	var conds []cond
	for _, conj := range sqlparser.Conjuncts(s.Where) {
		sc, err := r.exprScopes(conj)
		if err != nil {
			return nil, err
		}
		conds = append(conds, cond{expr: conj, scopes: sc})
	}

	// Per-scope candidate rows, filtered by single-scope conjuncts.
	rowIDs := make([][]int, len(q.Scopes))
	for si := range q.Scopes {
		ids := p.scopeRowIDs(q, si, tds[si])
		lk := func(id int) lookupFn {
			return func(qual, name string) (Value, bool) {
				if sj := r.scopeOf(qual, name); sj == si {
					return tds[si].Rows[id][tds[si].ColIndex(name)], true
				}
				return Value{}, false
			}
		}
		var kept []int
		for _, id := range ids {
			if tds[si].Deleted[id] {
				continue
			}
			ok := true
			for _, cd := range conds {
				if len(cd.scopes) == 1 && cd.scopes[0] == si {
					pass, err := evalBool(cd.expr, lk(id), nil)
					if err != nil {
						return nil, err
					}
					if !pass {
						ok = false
						break
					}
				}
			}
			if ok {
				kept = append(kept, id)
			}
		}
		p.Metrics.RowsScanned += int64(len(ids))
		rowIDs[si] = kept
	}

	// Left-deep join.
	n := len(q.Scopes)
	joinedSet := map[int]bool{}
	var tuples [][]int
	// Seed with the smallest filtered scope.
	seed := 0
	for si := 1; si < n; si++ {
		if len(rowIDs[si]) < len(rowIDs[seed]) {
			seed = si
		}
	}
	for _, id := range rowIDs[seed] {
		tp := make([]int, n)
		for i := range tp {
			tp[i] = -1
		}
		tp[seed] = id
		tuples = append(tuples, tp)
	}
	joinedSet[seed] = true

	tupleLookup := func(tp []int) lookupFn {
		return func(qual, name string) (Value, bool) {
			si := r.scopeOf(qual, name)
			if si < 0 || tp[si] < 0 {
				return Value{}, false
			}
			return tds[si].Rows[tp[si]][tds[si].ColIndex(name)], true
		}
	}

	applied := make([]bool, len(conds))
	applyConds := func() error {
		var kept [][]int
		for _, tp := range tuples {
			ok := true
			for ci, cd := range conds {
				if applied[ci] || len(cd.scopes) < 2 {
					continue
				}
				ready := true
				for _, sx := range cd.scopes {
					if !joinedSet[sx] {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				pass, err := evalBool(cd.expr, tupleLookup(tp), nil)
				if err != nil {
					return err
				}
				if !pass {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, tp)
			}
		}
		tuples = kept
		return nil
	}

	for len(joinedSet) < n {
		// Pick a scope connected to the joined set, else the smallest left.
		next := -1
		var edges []optimizer.JoinEdge
		for si := 0; si < n; si++ {
			if joinedSet[si] {
				continue
			}
			var es []optimizer.JoinEdge
			for _, e := range q.Joins {
				if e.L == si && joinedSet[e.R] {
					es = append(es, e)
				} else if e.R == si && joinedSet[e.L] {
					es = append(es, optimizer.JoinEdge{L: e.R, R: e.L, LCol: e.RCol, RCol: e.LCol})
				}
			}
			if len(es) > 0 && (next < 0 || len(rowIDs[si]) < len(rowIDs[next])) {
				next = si
				edges = es
			}
		}
		if next < 0 { // cartesian fallback
			for si := 0; si < n; si++ {
				if !joinedSet[si] {
					next = si
					break
				}
			}
			edges = nil
		}

		if len(edges) > 0 {
			// Hash join: build on the new scope's rows keyed by its join cols.
			// Edges are normalized as L = next side.
			keyOf := func(vals []Value) string {
				var b strings.Builder
				for _, v := range vals {
					b.WriteString(v.String())
					b.WriteByte('\x00')
				}
				return b.String()
			}
			build := map[string][]int{}
			td := tds[next]
			for _, id := range rowIDs[next] {
				vals := make([]Value, len(edges))
				for i, e := range edges {
					vals[i] = td.Rows[id][td.ColIndex(e.LCol)]
				}
				k := keyOf(vals)
				build[k] = append(build[k], id)
			}
			var out [][]int
			for _, tp := range tuples {
				vals := make([]Value, len(edges))
				okAll := true
				for i, e := range edges {
					otd := tds[e.R]
					if tp[e.R] < 0 {
						okAll = false
						break
					}
					vals[i] = otd.Rows[tp[e.R]][otd.ColIndex(e.RCol)]
				}
				if !okAll {
					continue
				}
				for _, id := range build[keyOf(vals)] {
					ntp := append([]int(nil), tp...)
					ntp[next] = id
					out = append(out, ntp)
				}
			}
			tuples = out
		} else {
			var out [][]int
			for _, tp := range tuples {
				for _, id := range rowIDs[next] {
					ntp := append([]int(nil), tp...)
					ntp[next] = id
					out = append(out, ntp)
				}
			}
			if len(tuples) == 0 && n == 1 {
				// unreachable; seed handles single scope
			}
			tuples = out
		}
		joinedSet[next] = true
		if err := applyConds(); err != nil {
			return nil, err
		}
	}
	// Mark multi-scope conds applied (all scopes joined by now).
	if err := applyConds(); err != nil {
		return nil, err
	}

	src := &baseSource{r: r, tds: tds, tuples: tuples}
	ids := make([]int, len(tuples))
	for i := range ids {
		ids[i] = i
	}
	res, err := finishQuery(s, q, src, ids)
	if err != nil {
		return nil, err
	}
	p.Metrics.RowsReturned += int64(len(res.Rows))
	return res, nil
}

// scopeRowIDs returns candidate row ids for one scope, using the best
// available index seek or partition elimination, else a full scan.
func (p *Prepared) scopeRowIDs(q *optimizer.QueryInfo, si int, td *TableData) []int {
	sc := q.Scopes[si]
	var best []int
	haveBest := false

	consider := func(ids []int) {
		if !haveBest || len(ids) < len(best) {
			best = ids
			haveBest = true
		}
	}

	for _, ix := range p.indexesOn(sc.Table.Name) {
		// Longest all-equality prefix probe.
		var probe []Value
		for _, kc := range ix.Def.KeyColumns {
			pr := findEqPred(sc.Preds, kc)
			if pr == nil {
				break
			}
			probe = append(probe, predValue(*pr))
		}
		if len(probe) > 0 {
			p.Metrics.IndexSeeks++
			consider(ix.SeekEqual(probe))
			continue
		}
		// Leading-column range / LIKE-prefix seek.
		lead := ix.Def.KeyColumns[0]
		for _, pr := range sc.Preds {
			if pr.Column != lead {
				continue
			}
			switch pr.Kind {
			case optimizer.PredRange:
				if pr.IsStr {
					continue
				}
				var lo, hi *Value
				if pr.Lo > -1e300 {
					v := Num(pr.Lo)
					lo = &v
				}
				if pr.Hi < 1e300 {
					v := Num(pr.Hi)
					hi = &v
				}
				p.Metrics.IndexSeeks++
				consider(ix.SeekRange(lo, hi, pr.IncLo, pr.IncHi))
			case optimizer.PredLike:
				prefix := likePrefixOf(pr.Pattern)
				if prefix == "" {
					continue
				}
				lo := Str(prefix)
				hi := Str(prefix + "\xff")
				p.Metrics.IndexSeeks++
				consider(ix.SeekRange(&lo, &hi, true, true))
			}
		}
	}
	if haveBest {
		return best
	}

	// Partition elimination.
	if parts, ok := p.parts[sc.Table.Name]; ok {
		scheme := p.Cfg.TablePartitioning(sc.Table.Name)
		if scheme != nil {
			for _, pr := range sc.Preds {
				if pr.Column != scheme.Column {
					continue
				}
				switch pr.Kind {
				case optimizer.PredEq:
					if !pr.IsStr {
						return parts[scheme.Locate(pr.Value)]
					}
				case optimizer.PredRange:
					if pr.IsStr {
						continue
					}
					loP, hiP := 0, len(parts)-1
					if pr.Lo > -1e300 {
						loP = scheme.Locate(pr.Lo)
					}
					if pr.Hi < 1e300 {
						hiP = scheme.Locate(pr.Hi)
					}
					var ids []int
					for pi := loP; pi <= hiP && pi < len(parts); pi++ {
						ids = append(ids, parts[pi]...)
					}
					return ids
				}
			}
		}
	}

	// Full scan.
	ids := make([]int, 0, td.LiveRows())
	for id := range td.Rows {
		if !td.Deleted[id] {
			ids = append(ids, id)
		}
	}
	return ids
}

func findEqPred(preds []optimizer.Pred, col string) *optimizer.Pred {
	for i := range preds {
		if preds[i].Column == col && preds[i].Kind == optimizer.PredEq {
			return &preds[i]
		}
	}
	return nil
}

func predValue(p optimizer.Pred) Value {
	if p.IsStr {
		return Str(p.StrValue)
	}
	return Num(p.Value)
}

func likePrefixOf(pattern string) string {
	i := strings.IndexAny(pattern, "%_")
	if i < 0 {
		return pattern
	}
	return pattern[:i]
}
