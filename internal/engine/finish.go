package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/optimizer"
	"repro/internal/sqlparser"
)

// tupleSource abstracts where tuples come from (base-table join output or a
// materialized view) for the shared grouping / ordering / projection
// pipeline.
type tupleSource interface {
	// lookup resolves columns for tuple ti.
	lookup(ti int) lookupFn
	// evalAgg evaluates an aggregate over a group of tuples.
	evalAgg(f *sqlparser.FuncExpr, group []int) (Value, error)
}

// baseSource serves tuples produced by the base-table join.
type baseSource struct {
	r      *resolver
	tds    []*TableData
	tuples [][]int
}

func (b *baseSource) lookup(ti int) lookupFn {
	tp := b.tuples[ti]
	return func(qual, name string) (Value, bool) {
		si := b.r.scopeOf(qual, name)
		if si < 0 || tp[si] < 0 {
			return Value{}, false
		}
		return b.tds[si].Rows[tp[si]][b.tds[si].ColIndex(name)], true
	}
}

func (b *baseSource) evalAgg(f *sqlparser.FuncExpr, group []int) (Value, error) {
	return genericAgg(f, group, b.lookup)
}

// genericAgg computes an aggregate by evaluating the argument per tuple.
func genericAgg(f *sqlparser.FuncExpr, group []int, lk func(int) lookupFn) (Value, error) {
	name := strings.ToLower(f.Name)
	if f.Star || name == "count" && f.Arg == nil {
		return Num(float64(len(group))), nil
	}
	var sum float64
	var minV, maxV Value
	first := true
	for _, ti := range group {
		v, err := evalScalar(f.Arg, lk(ti), nil)
		if err != nil {
			return Value{}, err
		}
		sum += v.Numeric()
		if first {
			minV, maxV = v, v
			first = false
		} else {
			if v.Less(minV) {
				minV = v
			}
			if maxV.Less(v) {
				maxV = v
			}
		}
	}
	switch name {
	case "count":
		return Num(float64(len(group))), nil
	case "sum":
		return Num(sum), nil
	case "avg":
		if len(group) == 0 {
			return Num(0), nil
		}
		return Num(sum / float64(len(group))), nil
	case "min":
		return minV, nil
	case "max":
		return maxV, nil
	}
	return Value{}, fmt.Errorf("engine: unknown aggregate %q", f.Name)
}

// finishQuery applies grouping, HAVING, DISTINCT, ORDER BY, TOP, and
// projection over the source tuples.
func finishQuery(s *sqlparser.Select, q *optimizer.QueryInfo, src tupleSource, tuples []int) (*Result, error) {
	grouped := len(s.GroupBy) > 0 || len(q.Aggs) > 0

	// Expand the select list (resolving '*').
	type outItem struct {
		expr  sqlparser.Expr
		alias string
	}
	var items []outItem
	for _, it := range s.Items {
		if it.Expr != nil {
			items = append(items, outItem{expr: it.Expr, alias: it.Alias})
			continue
		}
		for _, sc := range q.Scopes {
			for _, c := range sc.Table.Columns {
				items = append(items, outItem{expr: &sqlparser.ColName{Qualifier: sc.Binding, Name: strings.ToLower(c.Name)}})
			}
		}
	}
	columns := make([]string, len(items))
	for i, it := range items {
		if it.alias != "" {
			columns[i] = it.alias
		} else {
			columns[i] = it.expr.String()
		}
	}

	// Resolve ORDER BY expressions (alias substitution).
	orderExpr := make([]sqlparser.Expr, len(s.OrderBy))
	for i, o := range s.OrderBy {
		e := o.Expr
		if c, ok := e.(*sqlparser.ColName); ok && c.Qualifier == "" {
			for _, it := range items {
				if it.alias == c.Name {
					e = it.expr
					break
				}
			}
		}
		orderExpr[i] = e
	}

	type outRow struct {
		vals []Value
		keys []Value
	}
	var outs []outRow

	emit := func(rep int, group []int) error {
		aggCtx := func(f *sqlparser.FuncExpr) (Value, error) {
			return src.evalAgg(f, group)
		}
		if s.Having != nil {
			ok, err := evalBool(s.Having, src.lookup(rep), aggCtx)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		row := outRow{vals: make([]Value, len(items))}
		for i, it := range items {
			v, err := evalScalar(it.expr, src.lookup(rep), aggCtx)
			if err != nil {
				return err
			}
			row.vals[i] = v
		}
		row.keys = make([]Value, len(orderExpr))
		for i, e := range orderExpr {
			v, err := evalScalar(e, src.lookup(rep), aggCtx)
			if err != nil {
				return err
			}
			row.keys[i] = v
		}
		outs = append(outs, row)
		return nil
	}

	if grouped {
		// Group tuples by the GROUP BY column values.
		keys := []string{}
		groups := map[string][]int{}
		for _, ti := range tuples {
			var b strings.Builder
			for _, g := range s.GroupBy {
				v, err := evalScalar(g, src.lookup(ti), nil)
				if err != nil {
					return nil, err
				}
				b.WriteString(v.String())
				b.WriteByte('\x00')
			}
			k := b.String()
			if _, ok := groups[k]; !ok {
				keys = append(keys, k)
			}
			groups[k] = append(groups[k], ti)
		}
		if len(s.GroupBy) == 0 {
			// Scalar aggregate: one group over everything (possibly empty).
			keys = []string{""}
			groups[""] = tuples
		}
		for _, k := range keys {
			g := groups[k]
			if len(g) == 0 {
				// Empty scalar-aggregate group (no qualifying rows):
				// aggregates evaluate to zero, other outputs to NULL-ish.
				row := outRow{vals: make([]Value, len(items)), keys: make([]Value, len(orderExpr))}
				for i, it := range items {
					if _, ok := it.expr.(*sqlparser.FuncExpr); ok {
						row.vals[i] = Num(0)
					}
				}
				outs = append(outs, row)
				continue
			}
			if err := emit(g[0], g); err != nil {
				return nil, err
			}
		}
	} else {
		for _, ti := range tuples {
			if err := emit(ti, []int{ti}); err != nil {
				return nil, err
			}
		}
	}

	// ORDER BY.
	if len(orderExpr) > 0 {
		sort.SliceStable(outs, func(a, b int) bool {
			for i := range orderExpr {
				c := outs[a].keys[i].Compare(outs[b].keys[i])
				if c == 0 {
					continue
				}
				if s.OrderBy[i].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	// DISTINCT.
	if s.Distinct {
		seen := map[string]bool{}
		var dedup []outRow
		for _, r := range outs {
			var b strings.Builder
			for _, v := range r.vals {
				b.WriteString(v.String())
				b.WriteByte('\x00')
			}
			if !seen[b.String()] {
				seen[b.String()] = true
				dedup = append(dedup, r)
			}
		}
		outs = dedup
	}

	// TOP.
	if s.Top > 0 && len(outs) > s.Top {
		outs = outs[:s.Top]
	}

	res := &Result{Columns: columns}
	for _, r := range outs {
		res.Rows = append(res.Rows, r.vals)
	}
	return res, nil
}
