package engine

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
)

// IndexData is the materialization of one index: a B+-tree over the
// table's rows keyed by the index key columns.
type IndexData struct {
	Def    *catalog.Index
	td     *TableData
	keyIdx []int // column positions of the key columns
	tree   *btree
}

// buildIndex materializes an index over current table contents.
func buildIndex(def *catalog.Index, td *TableData) (*IndexData, error) {
	ix := &IndexData{Def: def, td: td, tree: newBtree()}
	for _, kc := range def.KeyColumns {
		ci := td.ColIndex(kc)
		if ci < 0 {
			return nil, fmt.Errorf("engine: index %s: unknown column %q", def.Key(), kc)
		}
		ix.keyIdx = append(ix.keyIdx, ci)
	}
	for id := range td.Rows {
		if !td.Deleted[id] {
			ix.tree.Insert(ix.keyOf(id), id)
		}
	}
	return ix, nil
}

// keyOf extracts the index key of a row.
func (ix *IndexData) keyOf(id int) []Value {
	row := ix.td.Rows[id]
	key := make([]Value, len(ix.keyIdx))
	for i, ci := range ix.keyIdx {
		key[i] = row[ci]
	}
	return key
}

// SeekEqual returns the row ids whose leading key columns equal probe.
func (ix *IndexData) SeekEqual(probe []Value) []int {
	return ix.tree.ScanPrefix(probe, nil)
}

// SeekRange returns the row ids whose leading key column lies between lo and
// hi (nil bounds are open).
func (ix *IndexData) SeekRange(lo, hi *Value, incLo, incHi bool) []int {
	return ix.tree.ScanRange(lo, hi, incLo, incHi, nil)
}

// insertRow maintains the index for a newly appended row id.
func (ix *IndexData) insertRow(id int) {
	ix.tree.Insert(ix.keyOf(id), id)
}

// removeRow maintains the index for a deleted row id.
func (ix *IndexData) removeRow(id int) {
	ix.tree.Delete(ix.keyOf(id), id)
}

// ViewData is a materialized view's contents: rows whose schema is the
// view's output columns followed by its aggregates.
type ViewData struct {
	Def     *catalog.MaterializedView
	Columns []string // qualified names: "table.column", then agg strings
	Rows    [][]Value
	colIdx  map[string]int
	stale   bool
}

// ColIndex returns the position of the named output, or -1.
func (vd *ViewData) ColIndex(name string) int {
	if i, ok := vd.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Prepared is a database with one physical configuration materialized:
// indexes built, views computed, partitions assigned. All execution happens
// against a Prepared.
type Prepared struct {
	DB  *Database
	Cfg *catalog.Configuration

	indexes map[string]*IndexData // by index Key
	views   []*ViewData
	parts   map[string][][]int // table → partition → row ids

	// Metrics accumulates execution effort across statements.
	Metrics ExecStats
}

// ExecStats counts the physical work performed.
type ExecStats struct {
	RowsScanned    int64 // rows touched by scans and seeks
	IndexSeeks     int64
	RowsReturned   int64
	ViewsScanned   int64
	RowsMaintained int64 // index/view maintenance row operations
}

// Add accumulates counters.
func (s *ExecStats) Add(o ExecStats) {
	s.RowsScanned += o.RowsScanned
	s.IndexSeeks += o.IndexSeeks
	s.RowsReturned += o.RowsReturned
	s.ViewsScanned += o.ViewsScanned
	s.RowsMaintained += o.RowsMaintained
}

// Materialize implements the configuration physically: builds every index,
// computes every materialized view, and assigns partitions. It validates the
// configuration first.
func (db *Database) Materialize(cfg *catalog.Configuration) (*Prepared, error) {
	if cfg == nil {
		cfg = catalog.NewConfiguration()
	}
	if err := cfg.Validate(db.Cat); err != nil {
		return nil, err
	}
	p := &Prepared{DB: db, Cfg: cfg, indexes: map[string]*IndexData{}, parts: map[string][][]int{}}
	for _, def := range cfg.Indexes {
		td := db.Table(def.Table)
		if td == nil {
			return nil, fmt.Errorf("engine: index on unknown table %q", def.Table)
		}
		ix, err := buildIndex(def, td)
		if err != nil {
			return nil, err
		}
		p.indexes[def.Key()] = ix
	}
	for table, scheme := range cfg.TableParts {
		td := db.Table(table)
		if td == nil {
			return nil, fmt.Errorf("engine: partitioning on unknown table %q", table)
		}
		if err := p.buildPartitions(td, scheme); err != nil {
			return nil, err
		}
	}
	for _, vdef := range cfg.Views {
		vd, err := p.materializeView(vdef)
		if err != nil {
			return nil, err
		}
		p.views = append(p.views, vd)
	}
	return p, nil
}

func (p *Prepared) buildPartitions(td *TableData, scheme *catalog.PartitionScheme) error {
	ci := td.ColIndex(scheme.Column)
	if ci < 0 {
		return fmt.Errorf("engine: partition column %q missing from %q", scheme.Column, td.Meta.Name)
	}
	parts := make([][]int, scheme.Partitions())
	for id, row := range td.Rows {
		if td.Deleted[id] {
			continue
		}
		pi := scheme.Locate(row[ci].Numeric())
		parts[pi] = append(parts[pi], id)
	}
	p.parts[strings.ToLower(td.Meta.Name)] = parts
	return nil
}

// indexesOn returns materialized indexes on the table.
func (p *Prepared) indexesOn(table string) []*IndexData {
	var out []*IndexData
	for _, def := range p.Cfg.IndexesOn(table) {
		if ix := p.indexes[def.Key()]; ix != nil {
			out = append(out, ix)
		}
	}
	return out
}

// viewByKey returns the materialized view with the given definition key.
func (p *Prepared) viewByKey(key string) *ViewData {
	for _, vd := range p.views {
		if vd.Def.Key() == key {
			if vd.stale {
				fresh, err := p.materializeView(vd.Def)
				if err == nil {
					*vd = *fresh
				}
			}
			return vd
		}
	}
	return nil
}

// invalidateViews marks views over the table stale; they rebuild on next
// access, and the rebuild effort is charged to maintenance eagerly.
func (p *Prepared) invalidateViews(table string, changedRows int64) {
	for _, vd := range p.views {
		if vd.Def.References(table) {
			vd.stale = true
			p.Metrics.RowsMaintained += changedRows * int64(len(vd.Def.Tables))
		}
	}
}
