package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/catalog"
)

// refRow is a reference-evaluator row: column name → value.
type refRow map[string]Value

// refEval is a deliberately naive, independent implementation of the query
// semantics used to cross-check the engine: nested loops, no indexes, no
// shortcuts. It supports the shapes the generator below produces.
type refEval struct {
	rows []refRow
}

func buildRefRows(db *Database, tables []string) []refRow {
	// Cartesian product of all live rows, qualified column names.
	out := []refRow{{}}
	for _, tn := range tables {
		td := db.Table(tn)
		var next []refRow
		for _, base := range out {
			for id, r := range td.Rows {
				if td.Deleted[id] {
					continue
				}
				nr := refRow{}
				for k, v := range base {
					nr[k] = v
				}
				for ci, c := range td.Meta.Columns {
					nr[tn+"."+c.Name] = r[ci]
				}
				next = append(next, nr)
			}
		}
		out = next
	}
	return out
}

// TestEngineAgainstReference cross-checks the engine against the naive
// evaluator over randomized single-table and join queries under several
// physical configurations, asserting the configuration-independence of
// results once more — this time against an implementation that shares no
// code with the engine's operators.
func TestEngineAgainstReference(t *testing.T) {
	db := buildTestDB(t)
	rng := rand.New(rand.NewSource(99))

	cfgs := []*catalog.Configuration{nil}
	c1 := catalog.NewConfiguration()
	c1.AddIndex(catalog.NewIndex("orders", "o_cust"))
	c1.AddIndex(catalog.NewIndex("orders", "o_amount").WithInclude("o_day"))
	cix := catalog.NewIndex("customers", "c_id")
	cix.Clustered = true
	c1.AddIndex(cix)
	c1.SetTablePartitioning("orders", catalog.NewPartitionScheme("o_day", 90, 180, 270))
	cfgs = append(cfgs, c1)

	preps := make([]*Prepared, len(cfgs))
	for i, cfg := range cfgs {
		preps[i] = mustPrep(t, db, cfg)
	}

	for trial := 0; trial < 60; trial++ {
		sql, check := randomQuery(rng, db)
		want := check()
		for ci, p := range preps {
			res, err := p.ExecSQL(sql)
			if err != nil {
				t.Fatalf("cfg %d: %q: %v", ci, sql, err)
			}
			got := summarize(res.Rows)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cfg %d: %q:\n got %v\nwant %v", ci, sql, got, want)
			}
		}
	}
}

// summarize renders rows order-insensitively (sorted string forms) so
// reference and engine compare without relying on output order.
func summarize(rows [][]Value) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		s := ""
		for _, v := range r {
			s += v.String() + "|"
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// randomQuery builds a random query over the test schema together with a
// closure computing the reference answer.
func randomQuery(rng *rand.Rand, db *Database) (string, func() []string) {
	switch rng.Intn(4) {
	case 0: // single-table filter + projection
		lo := rng.Intn(300)
		hi := lo + rng.Intn(200)
		cust := rng.Intn(100)
		sql := fmt.Sprintf("SELECT o_id, o_amount FROM orders WHERE o_day BETWEEN %d AND %d AND o_cust <> %d", lo, hi, cust)
		return sql, func() []string {
			var rows [][]Value
			for _, r := range buildRefRows(db, []string{"orders"}) {
				d := r["orders.o_day"].F
				if d >= float64(lo) && d <= float64(hi) && r["orders.o_cust"].F != float64(cust) {
					rows = append(rows, []Value{r["orders.o_id"], r["orders.o_amount"]})
				}
			}
			return summarize(rows)
		}
	case 1: // grouped aggregate with filter
		cut := rng.Intn(500)
		sql := fmt.Sprintf("SELECT o_cust, COUNT(*), SUM(o_amount) FROM orders WHERE o_amount > %d GROUP BY o_cust", cut)
		return sql, func() []string {
			type agg struct {
				n   int
				sum float64
			}
			groups := map[float64]*agg{}
			for _, r := range buildRefRows(db, []string{"orders"}) {
				if r["orders.o_amount"].F > float64(cut) {
					g := groups[r["orders.o_cust"].F]
					if g == nil {
						g = &agg{}
						groups[r["orders.o_cust"].F] = g
					}
					g.n++
					g.sum += r["orders.o_amount"].F
				}
			}
			var rows [][]Value
			for k, g := range groups {
				rows = append(rows, []Value{Num(k), Num(float64(g.n)), Num(g.sum)})
			}
			return summarize(rows)
		}
	case 2: // join with filter
		region := rng.Intn(4)
		sql := fmt.Sprintf("SELECT o.o_id FROM orders o, customers c WHERE o.o_cust = c.c_id AND c.c_region = %d AND o.o_status = 'open'", region)
		return sql, func() []string {
			var rows [][]Value
			for _, r := range buildRefRows(db, []string{"orders", "customers"}) {
				if r["orders.o_cust"].Equal(r["customers.c_id"]) &&
					r["customers.c_region"].F == float64(region) &&
					r["orders.o_status"].S == "open" {
					rows = append(rows, []Value{r["orders.o_id"]})
				}
			}
			return summarize(rows)
		}
	default: // IN + OR disjunction
		a, b := rng.Intn(100), rng.Intn(100)
		day := rng.Intn(365)
		sql := fmt.Sprintf("SELECT o_id FROM orders WHERE o_cust IN (%d, %d) OR o_day = %d", a, b, day)
		return sql, func() []string {
			var rows [][]Value
			for _, r := range buildRefRows(db, []string{"orders"}) {
				c := r["orders.o_cust"].F
				if c == float64(a) || c == float64(b) || r["orders.o_day"].F == float64(day) {
					rows = append(rows, []Value{r["orders.o_id"]})
				}
			}
			return summarize(rows)
		}
	}
}
