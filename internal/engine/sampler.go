package engine

import "strings"

// Sampler adapts a Database to the stats.Sampler interface so statistics can
// be created from actual data (the production-server side of §5.3). String
// values are folded to a stable numeric code for histogram purposes.
type Sampler struct {
	DB *Database
	// Stride controls deterministic systematic sampling: every k-th row is
	// taken so up to n values are returned.
}

// NewSampler wraps a database.
func NewSampler(db *Database) *Sampler { return &Sampler{DB: db} }

// SampleColumn returns up to n values of the column in numeric encoding.
func (s *Sampler) SampleColumn(table, column string, n int) []float64 {
	td := s.DB.Table(table)
	if td == nil {
		return nil
	}
	ci := td.ColIndex(column)
	if ci < 0 || td.LiveRows() == 0 {
		return nil
	}
	stride := td.LiveRows()/n + 1
	out := make([]float64, 0, n)
	seen := 0
	for id, row := range td.Rows {
		if td.Deleted[id] {
			continue
		}
		if seen%stride == 0 {
			out = append(out, numCode(row[ci]))
		}
		seen++
	}
	return out
}

// SampleRows returns up to n rows projected to the given columns.
func (s *Sampler) SampleRows(table string, columns []string, n int) [][]float64 {
	td := s.DB.Table(table)
	if td == nil {
		return nil
	}
	cis := make([]int, len(columns))
	for i, c := range columns {
		cis[i] = td.ColIndex(c)
		if cis[i] < 0 {
			return nil
		}
	}
	if td.LiveRows() == 0 {
		return nil
	}
	stride := td.LiveRows()/n + 1
	var out [][]float64
	seen := 0
	for id, row := range td.Rows {
		if td.Deleted[id] {
			continue
		}
		if seen%stride == 0 {
			r := make([]float64, len(cis))
			for i, ci := range cis {
				r[i] = numCode(row[ci])
			}
			out = append(out, r)
		}
		seen++
	}
	return out
}

// numCode maps a value to a number preserving order reasonably for strings
// (first 8 bytes packed big-endian-ish).
func numCode(v Value) float64 {
	if !v.Str {
		return v.F
	}
	s := strings.ToLower(v.S)
	var code float64
	for i := 0; i < 8; i++ {
		var b byte
		if i < len(s) {
			b = s[i]
		}
		code = code*256 + float64(b)
	}
	return code
}
