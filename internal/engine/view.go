package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/sqlparser"
)

// viewSource serves tuples out of a materialized view.
type viewSource struct {
	vd *ViewData
	q  *optimizer.QueryInfo
	r  *resolver
}

func (v *viewSource) colFor(qual, name string) int {
	si := v.r.scopeOf(qual, name)
	if si < 0 {
		return -1
	}
	return v.vd.ColIndex(v.q.Scopes[si].Table.Name + "." + strings.ToLower(name))
}

func (v *viewSource) lookup(ti int) lookupFn {
	row := v.vd.Rows[ti]
	return func(qual, name string) (Value, bool) {
		ci := v.colFor(qual, name)
		if ci < 0 {
			return Value{}, false
		}
		return row[ci], true
	}
}

func (v *viewSource) evalAgg(f *sqlparser.FuncExpr, group []int) (Value, error) {
	if len(v.vd.Def.GroupBy) == 0 {
		// SPJ view: aggregate arguments are plain view columns.
		return genericAgg(f, group, v.lookup)
	}
	canon, ok := v.q.AggCanon[f]
	if !ok {
		return Value{}, fmt.Errorf("engine: aggregate %s missing canonical form", f)
	}
	ci := v.vd.ColIndex(canon.String())
	fn := strings.ToUpper(canon.Func)
	if ci < 0 && fn != "AVG" {
		return Value{}, fmt.Errorf("engine: view %s lacks aggregate %s", v.vd.Def.Name, canon)
	}
	switch fn {
	case "SUM", "COUNT":
		var s float64
		for _, ti := range group {
			s += v.vd.Rows[ti][ci].Numeric()
		}
		return Num(s), nil
	case "MIN", "MAX":
		out := v.vd.Rows[group[0]][ci]
		for _, ti := range group[1:] {
			x := v.vd.Rows[ti][ci]
			if fn == "MIN" && x.Less(out) || fn == "MAX" && out.Less(x) {
				out = x
			}
		}
		return out, nil
	case "AVG":
		if ci >= 0 && len(group) == 1 {
			return v.vd.Rows[group[0]][ci], nil
		}
		// Re-derive from SUM and COUNT.
		si := v.vd.ColIndex(catalog.Agg{Func: "SUM", Col: canon.Col}.String())
		cnt := v.vd.ColIndex(catalog.Agg{Func: "COUNT"}.String())
		if cnt < 0 {
			cnt = v.vd.ColIndex(catalog.Agg{Func: "COUNT", Col: canon.Col}.String())
		}
		if si < 0 || cnt < 0 {
			return Value{}, fmt.Errorf("engine: view %s cannot re-derive AVG", v.vd.Def.Name)
		}
		var s, n float64
		for _, ti := range group {
			s += v.vd.Rows[ti][si].Numeric()
			n += v.vd.Rows[ti][cnt].Numeric()
		}
		if n == 0 {
			return Num(0), nil
		}
		return Num(s / n), nil
	}
	return Value{}, fmt.Errorf("engine: unknown aggregate %q", canon.Func)
}

// execSelectFromView answers the query from a matched materialized view.
func (p *Prepared) execSelectFromView(s *sqlparser.Select, q *optimizer.QueryInfo, vd *ViewData) (*Result, error) {
	r := newResolver(q)
	src := &viewSource{vd: vd, q: q, r: r}
	p.Metrics.ViewsScanned++
	p.Metrics.RowsScanned += int64(len(vd.Rows))

	// Filter view rows with the WHERE conjuncts, skipping equality join
	// predicates: those are satisfied by the view's construction and their
	// columns are consumed (not exposed) by the view. Every other conjunct's
	// columns are exposed, per MatchView.
	var residual []sqlparser.Expr
	for _, conj := range sqlparser.Conjuncts(s.Where) {
		if cmp, ok := conj.(*sqlparser.ComparisonExpr); ok && cmp.Op == "=" {
			_, lok := cmp.Left.(*sqlparser.ColName)
			_, rok := cmp.Right.(*sqlparser.ColName)
			if lok && rok {
				if scopes, err := r.exprScopes(conj); err == nil && len(scopes) == 2 {
					continue // cross-table join predicate
				}
			}
		}
		residual = append(residual, conj)
	}
	var tuples []int
	for ti := range vd.Rows {
		ok := true
		for _, conj := range residual {
			pass, err := evalBool(conj, src.lookup(ti), nil)
			if err != nil {
				return nil, err
			}
			if !pass {
				ok = false
				break
			}
		}
		if ok {
			tuples = append(tuples, ti)
		}
	}
	res, err := finishQuery(s, q, src, tuples)
	if err != nil {
		return nil, err
	}
	p.Metrics.RowsReturned += int64(len(res.Rows))
	return res, nil
}

// materializeView computes a view's contents: join the member tables on the
// join predicates, project the output columns, and group with aggregates.
func (p *Prepared) materializeView(def *catalog.MaterializedView) (*ViewData, error) {
	// Gather member tables.
	tds := make([]*TableData, len(def.Tables))
	scopeOf := map[string]int{}
	for i, tn := range def.Tables {
		td := p.DB.Table(tn)
		if td == nil {
			return nil, fmt.Errorf("engine: view %s over unknown table %q", def.Name, tn)
		}
		tds[i] = td
		scopeOf[tn] = i
	}

	// Seed tuples from the first table, then hash-join the rest using
	// whatever join predicates connect them.
	liveIDs := func(td *TableData) []int {
		ids := make([]int, 0, td.LiveRows())
		for id := range td.Rows {
			if !td.Deleted[id] {
				ids = append(ids, id)
			}
		}
		return ids
	}

	type edge struct {
		a, b       int
		aCol, bCol string
	}
	var edges []edge
	for _, jp := range def.JoinPreds {
		ai, aok := scopeOf[jp.Left.Table]
		bi, bok := scopeOf[jp.Right.Table]
		if !aok || !bok {
			return nil, fmt.Errorf("engine: view %s join references foreign table", def.Name)
		}
		edges = append(edges, edge{a: ai, b: bi, aCol: jp.Left.Column, bCol: jp.Right.Column})
	}

	joined := map[int]bool{0: true}
	var tuples [][]int
	for _, id := range liveIDs(tds[0]) {
		tp := make([]int, len(tds))
		for i := range tp {
			tp[i] = -1
		}
		tp[0] = id
		tuples = append(tuples, tp)
	}
	for len(joined) < len(tds) {
		// Find a scope connected to the joined set.
		next := -1
		var myEdges []edge
		for si := range tds {
			if joined[si] {
				continue
			}
			var es []edge
			for _, e := range edges {
				if e.a == si && joined[e.b] {
					es = append(es, e)
				} else if e.b == si && joined[e.a] {
					es = append(es, edge{a: e.b, b: e.a, aCol: e.bCol, bCol: e.aCol})
				}
			}
			if len(es) > 0 {
				next = si
				myEdges = es
				break
			}
		}
		if next < 0 { // cartesian fallback
			for si := range tds {
				if !joined[si] {
					next = si
					break
				}
			}
		}
		build := map[string][]int{}
		for _, id := range liveIDs(tds[next]) {
			var b strings.Builder
			for _, e := range myEdges {
				b.WriteString(tds[next].Rows[id][tds[next].ColIndex(e.aCol)].String())
				b.WriteByte('\x00')
			}
			build[b.String()] = append(build[b.String()], id)
		}
		var out [][]int
		for _, tp := range tuples {
			var b strings.Builder
			ok := true
			for _, e := range myEdges {
				if tp[e.b] < 0 {
					ok = false
					break
				}
				b.WriteString(tds[e.b].Rows[tp[e.b]][tds[e.b].ColIndex(e.bCol)].String())
				b.WriteByte('\x00')
			}
			if !ok {
				continue
			}
			for _, id := range build[b.String()] {
				ntp := append([]int(nil), tp...)
				ntp[next] = id
				out = append(out, ntp)
			}
		}
		tuples = out
		joined[next] = true
	}
	p.Metrics.RowsMaintained += int64(len(tuples))

	// Column lookup for a tuple, resolving "table.column" references.
	lkOf := func(tp []int) lookupFn {
		return func(qual, name string) (Value, bool) {
			qual = strings.ToLower(qual)
			name = strings.ToLower(name)
			if qual == "" {
				for si, td := range tds {
					if td.ColIndex(name) >= 0 && tp[si] >= 0 {
						return td.Rows[tp[si]][td.ColIndex(name)], true
					}
				}
				return Value{}, false
			}
			si, ok := scopeOf[qual]
			if !ok || tp[si] < 0 {
				return Value{}, false
			}
			ci := tds[si].ColIndex(name)
			if ci < 0 {
				return Value{}, false
			}
			return tds[si].Rows[tp[si]][ci], true
		}
	}

	// Pre-parse aggregate argument expressions.
	type aggSpec struct {
		def catalog.Agg
		arg sqlparser.Expr // nil for COUNT(*)
	}
	var aggs []aggSpec
	for _, a := range def.Aggs {
		spec := aggSpec{def: a}
		if a.Col.Column != "" {
			if strings.HasPrefix(a.Col.Column, "expr:") {
				e, err := parseExprText(strings.TrimPrefix(a.Col.Column, "expr:"))
				if err != nil {
					return nil, err
				}
				spec.arg = e
			} else {
				spec.arg = &sqlparser.ColName{Qualifier: a.Col.Table, Name: a.Col.Column}
			}
		}
		aggs = append(aggs, spec)
	}

	vd := &ViewData{Def: def, colIdx: map[string]int{}}
	for _, o := range def.OutputColumns {
		vd.Columns = append(vd.Columns, o.String())
	}
	for _, a := range def.Aggs {
		vd.Columns = append(vd.Columns, a.String())
	}
	for i, c := range vd.Columns {
		vd.colIdx[strings.ToLower(c)] = i
	}

	outVals := func(tp []int) ([]Value, error) {
		lk := lkOf(tp)
		vals := make([]Value, 0, len(def.OutputColumns))
		for _, o := range def.OutputColumns {
			v, ok := lk(o.Table, o.Column)
			if !ok {
				return nil, fmt.Errorf("engine: view %s: cannot resolve %s", def.Name, o)
			}
			vals = append(vals, v)
		}
		return vals, nil
	}

	if len(def.GroupBy) == 0 && len(def.Aggs) == 0 {
		// SPJ view: one output row per joined tuple.
		for _, tp := range tuples {
			vals, err := outVals(tp)
			if err != nil {
				return nil, err
			}
			vd.Rows = append(vd.Rows, vals)
		}
		def.Rows = int64(len(vd.Rows))
		return vd, nil
	}

	// Grouped view (group key = the output columns, which subsume GroupBy).
	keys := []string{}
	groups := map[string][][]int{}
	groupVals := map[string][]Value{}
	for _, tp := range tuples {
		vals, err := outVals(tp)
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		for _, v := range vals {
			b.WriteString(v.String())
			b.WriteByte('\x00')
		}
		k := b.String()
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
			groupVals[k] = vals
		}
		groups[k] = append(groups[k], tp)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		row := append([]Value(nil), groupVals[k]...)
		for _, spec := range aggs {
			switch strings.ToUpper(spec.def.Func) {
			case "COUNT":
				if spec.arg == nil {
					row = append(row, Num(float64(len(g))))
					continue
				}
				row = append(row, Num(float64(len(g))))
			case "SUM", "AVG", "MIN", "MAX":
				var sum float64
				var minV, maxV Value
				for i, tp := range g {
					v, err := evalScalar(spec.arg, lkOf(tp), nil)
					if err != nil {
						return nil, err
					}
					sum += v.Numeric()
					if i == 0 {
						minV, maxV = v, v
					} else {
						if v.Less(minV) {
							minV = v
						}
						if maxV.Less(v) {
							maxV = v
						}
					}
				}
				switch strings.ToUpper(spec.def.Func) {
				case "SUM":
					row = append(row, Num(sum))
				case "AVG":
					row = append(row, Num(sum/float64(len(g))))
				case "MIN":
					row = append(row, minV)
				case "MAX":
					row = append(row, maxV)
				}
			default:
				return nil, fmt.Errorf("engine: view %s: unknown aggregate %q", def.Name, spec.def.Func)
			}
		}
		vd.Rows = append(vd.Rows, row)
	}
	def.Rows = int64(len(vd.Rows))
	return vd, nil
}
