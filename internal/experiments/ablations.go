package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen/setquery"
	"repro/internal/datagen/tpch"
	"repro/internal/workload"
)

// Sec3Result compares the integrated search against the staged baseline of
// paper §3 (Example 2): choosing indexes first and partitioning second can
// foreclose the optimal combination (clustered index on the grouping column
// plus range partitioning on the selection column).
type Sec3Result struct {
	IntegratedQuality float64
	StagedQuality     float64
	IntegratedPicks   []string
	StagedPicks       []string
}

// Sec3IntegratedVsStaged runs the paper's Example 1/2 workload shape — a
// selection on X with grouping on A over a large table — restricted to
// clustered indexes and partitioning, integrated vs staged (indexes first).
func Sec3IntegratedVsStaged(cfg Config) (*Sec3Result, error) {
	srv, _, err := newTPCHServer(cfg.TPCHSF, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// The Example 1/2 query shape over lineitem: a range selection on
	// l_shipdate (the paper's X) with ordered output on l_partkey (the
	// paper's A). The tiny storage budget leaves only the non-redundant
	// structures — clustered indexes and partitioning — exactly the setting
	// of Example 2. Clustering on the output column avoids the sort while
	// partitioning on the selection column eliminates partitions; the staged
	// solution commits to clustering on the selection column first and can
	// never reach that combination.
	w := workload.MustNew(
		"SELECT l_partkey, l_quantity FROM lineitem WHERE l_shipdate < 600 ORDER BY l_partkey",
		"SELECT l_partkey, l_extendedprice FROM lineitem WHERE l_shipdate < 700 ORDER BY l_partkey",
	)
	features := core.FeatureIndexes | core.FeaturePartitioning
	opts := core.Options{Features: features, StorageBudget: 1 << 20} // non-redundant only

	intRec, err := core.Tune(srv, w, opts)
	if err != nil {
		return nil, err
	}
	stagedRec, err := core.TuneStaged(srv, w, opts,
		[]core.FeatureMask{core.FeatureIndexes, core.FeaturePartitioning})
	if err != nil {
		return nil, err
	}
	res := &Sec3Result{
		IntegratedQuality: intRec.Improvement,
		StagedQuality:     stagedRec.Improvement,
	}
	for _, s := range intRec.NewStructures {
		res.IntegratedPicks = append(res.IntegratedPicks, s.String())
	}
	for _, s := range stagedRec.NewStructures {
		res.StagedPicks = append(res.StagedPicks, s.String())
	}
	return res, nil
}

// String renders the §3 comparison.
func (r *Sec3Result) String() string {
	rows := [][]string{
		{"integrated", pct1(r.IntegratedQuality), fmt.Sprint(len(r.IntegratedPicks))},
		{"staged (indexes → partitioning)", pct1(r.StagedQuality), fmt.Sprint(len(r.StagedPicks))},
	}
	return renderTable("Section 3: integrated vs staged physical design selection",
		[]string{"Approach", "Quality", "#structures"}, rows)
}

// AblationRow is one on/off comparison of a design choice.
type AblationRow struct {
	Name       string
	QualityOn  float64
	QualityOff float64
	TimeOn     time.Duration
	TimeOff    time.Duration
	CallsOn    int64
	CallsOff   int64
	StorageOn  int64
	StorageOff int64
}

// AblationColumnGroupRestriction measures the column-group restriction
// (§2.2) on SYNT1: disabling it explodes the candidate space with little
// quality gain.
func AblationColumnGroupRestriction(cfg Config) (*AblationRow, error) {
	build := func() (*core.Options, core.Tuner, *workload.Workload, error) {
		s, err := newSYNT1Server(cfg.SYNT1Rows, cfg.Seed)
		if err != nil {
			return nil, nil, nil, err
		}
		opts := cfg.tuneOpts(s, core.FeatureIndexes)
		opts.SkipReports = true
		return &opts, s, setquery.Workload(s.Cat, cfg.SYNT1Events/4, cfg.SYNT1Templ, cfg.Seed), nil
	}
	optsOn, srvOn, w, err := build()
	if err != nil {
		return nil, err
	}
	recOn, err := core.Tune(srvOn, w, *optsOn)
	if err != nil {
		return nil, err
	}
	optsOff, srvOff, w2, err := build()
	if err != nil {
		return nil, err
	}
	optsOff.NoColGroupRestriction = true
	recOff, err := core.Tune(srvOff, w2, *optsOff)
	if err != nil {
		return nil, err
	}
	return &AblationRow{
		Name:      "column-group restriction",
		QualityOn: recOn.Improvement, QualityOff: recOff.Improvement,
		TimeOn: recOn.Duration, TimeOff: recOff.Duration,
		CallsOn: recOn.WhatIfCalls, CallsOff: recOff.WhatIfCalls,
	}, nil
}

// AblationMerging measures the merging step (§2.2) under a tight storage
// budget on TPC-H: merged structures serve several queries at once, which
// matters exactly when storage is scarce.
func AblationMerging(cfg Config) (*AblationRow, error) {
	run := func(noMerge bool) (*core.Recommendation, error) {
		s, _, err := newTPCHServer(cfg.TPCHSF, cfg.Seed)
		if err != nil {
			return nil, err
		}
		opts := core.Options{
			Features:      core.FeatureIndexes | core.FeatureViews,
			StorageBudget: int64(0.4 * float64(s.Cat.Bytes())), // tight
			NoMerging:     noMerge,
			SkipReports:   true,
			BaseConfig:    tpch.ConstraintConfig(s.Cat),
		}
		return core.Tune(s, tpch.Workload(), opts)
	}
	recOn, err := run(false)
	if err != nil {
		return nil, err
	}
	recOff, err := run(true)
	if err != nil {
		return nil, err
	}
	return &AblationRow{
		Name:      "merging under tight storage",
		QualityOn: recOn.Improvement, QualityOff: recOff.Improvement,
		TimeOn: recOn.Duration, TimeOff: recOff.Duration,
		CallsOn: recOn.WhatIfCalls, CallsOff: recOff.WhatIfCalls,
		StorageOn: recOn.StorageBytes, StorageOff: recOff.StorageBytes,
	}, nil
}

// AblationLazyAlignment compares lazy vs eager introduction of aligned
// candidates (§4): eager expansion multiplies the candidate pool.
func AblationLazyAlignment(cfg Config) (*AblationRow, error) {
	run := func(eager bool) (*core.Recommendation, error) {
		s, _, err := newTPCHServer(cfg.TPCHSF, cfg.Seed)
		if err != nil {
			return nil, err
		}
		opts := cfg.tuneOpts(s, core.FeatureIndexes|core.FeaturePartitioning)
		opts.Aligned = true
		opts.EagerAlignment = eager
		opts.SkipReports = true
		opts.BaseConfig = tpch.ConstraintConfig(s.Cat)
		return core.Tune(s, tpch.Workload(), opts)
	}
	lazy, err := run(false)
	if err != nil {
		return nil, err
	}
	eager, err := run(true)
	if err != nil {
		return nil, err
	}
	return &AblationRow{
		Name:      "lazy (on) vs eager (off) alignment",
		QualityOn: lazy.Improvement, QualityOff: eager.Improvement,
		TimeOn: lazy.Duration, TimeOff: eager.Duration,
		CallsOn: lazy.WhatIfCalls, CallsOff: eager.WhatIfCalls,
	}, nil
}

// AblationGreedySeed compares Greedy(1,k) against Greedy(2,k) on TPC-H:
// the larger exhaustive seed can only improve quality, at a running-time
// price.
func AblationGreedySeed(cfg Config) (*AblationRow, error) {
	run := func(m int) (*core.Recommendation, error) {
		s, _, err := newTPCHServer(cfg.TPCHSF, cfg.Seed)
		if err != nil {
			return nil, err
		}
		opts := cfg.tuneOpts(s, core.FeatureIndexes)
		opts.GreedyM = m
		opts.SkipReports = true
		opts.BaseConfig = tpch.ConstraintConfig(s.Cat)
		return core.Tune(s, tpch.Workload(), opts)
	}
	m2, err := run(2)
	if err != nil {
		return nil, err
	}
	m1, err := run(1)
	if err != nil {
		return nil, err
	}
	return &AblationRow{
		Name:      "Greedy(2,k) (on) vs Greedy(1,k) (off)",
		QualityOn: m2.Improvement, QualityOff: m1.Improvement,
		TimeOn: m2.Duration, TimeOff: m1.Duration,
		CallsOn: m2.WhatIfCalls, CallsOff: m1.WhatIfCalls,
	}, nil
}

// AblationString renders one ablation row.
func AblationString(r *AblationRow) string {
	rows := [][]string{
		{"on", pct1(r.QualityOn), r.TimeOn.Round(time.Millisecond).String(), fmt.Sprint(r.CallsOn)},
		{"off", pct1(r.QualityOff), r.TimeOff.Round(time.Millisecond).String(), fmt.Sprint(r.CallsOff)},
	}
	return renderTable("Ablation: "+r.Name, []string{"Variant", "Quality", "Time", "What-if calls"}, rows)
}
