package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen/psoft"
	"repro/internal/datagen/setquery"
	"repro/internal/datagen/tpch"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// Table3Row is one row of Table 3: the impact of workload compression on
// quality and running time of DTA for one database/workload.
type Table3Row struct {
	Name            string
	Events          int
	EventsTuned     int // after compression
	QualityFull     float64
	QualityCompress float64
	QualityDecrease float64
	TimeFull        time.Duration
	TimeCompress    time.Duration
	Speedup         float64
}

// Table3 reproduces §7.4: tune each workload with and without workload
// compression and compare quality and running time. The paper reports:
// TPCH22 (22 distinct queries) compresses not at all (1×, 0–1% quality
// change); PSOFT (~6000 templatized events) speeds up 5.8× at 0.5% quality
// loss; SYNT1 (8000 queries from ~100 templates) speeds up 43× at 1% loss.
func Table3(cfg Config) ([]Table3Row, error) {
	type caseDef struct {
		name  string
		build func() (*whatif.Server, *workload.Workload, error)
	}
	cases := []caseDef{
		{"TPCH22", func() (*whatif.Server, *workload.Workload, error) {
			s, _, err := newTPCHServer(cfg.TPCHSF, cfg.Seed)
			return s, tpch.Workload(), err
		}},
		{"PSOFT", func() (*whatif.Server, *workload.Workload, error) {
			s, err := newPSOFTServer(cfg.PSOFTScale, cfg.Seed)
			if err != nil {
				return nil, nil, err
			}
			return s, psoft.Workload(s.Cat, cfg.PSOFTEvents, cfg.Seed), nil
		}},
		{"SYNT1", func() (*whatif.Server, *workload.Workload, error) {
			s, err := newSYNT1Server(cfg.SYNT1Rows, cfg.Seed)
			if err != nil {
				return nil, nil, err
			}
			return s, setquery.Workload(s.Cat, cfg.SYNT1Events, cfg.SYNT1Templ, cfg.Seed), nil
		}},
	}

	var rows []Table3Row
	for _, tc := range cases {
		// Fresh servers per run so statistics creation is charged equally.
		srvFull, w, err := tc.build()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tc.name, err)
		}
		optsFull := cfg.tuneOpts(srvFull, core.FeatureAll)
		optsFull.NoCompression = true
		optsFull.SkipReports = true
		recFull, err := core.Tune(srvFull, w, optsFull)
		if err != nil {
			return nil, fmt.Errorf("%s full: %w", tc.name, err)
		}

		srvC, w2, err := tc.build()
		if err != nil {
			return nil, err
		}
		optsC := cfg.tuneOpts(srvC, core.FeatureAll)
		optsC.CompressWorkload = true
		optsC.SkipReports = true
		recC, err := core.Tune(srvC, w2, optsC)
		if err != nil {
			return nil, fmt.Errorf("%s compressed: %w", tc.name, err)
		}

		row := Table3Row{
			Name:            tc.name,
			Events:          w.Len(),
			EventsTuned:     recC.EventsTuned,
			QualityFull:     recFull.Improvement,
			QualityCompress: recC.Improvement,
			QualityDecrease: recFull.Improvement - recC.Improvement,
			TimeFull:        recFull.Duration,
			TimeCompress:    recC.Duration,
		}
		if recC.Duration > 0 {
			row.Speedup = float64(recFull.Duration) / float64(recC.Duration)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table3String renders Table 3.
func Table3String(rows []Table3Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%d (%.0f%%)", r.EventsTuned, 100*float64(r.EventsTuned)/float64(max(1, r.Events))),
			pct1(r.QualityDecrease),
			fmt.Sprintf("%.1fx", r.Speedup),
		})
	}
	return renderTable("Table 3: Impact of workload compression on quality and running time of DTA",
		[]string{"Workload", "#events", "events tuned", "quality decrease", "speedup"}, out)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
