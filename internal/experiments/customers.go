package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen/cust"
	"repro/internal/optimizer"
	"repro/internal/whatif"
)

// Table1Row is one row of Table 1 (customer database overview).
type Table1Row struct {
	Name      string
	Databases int
	Tables    int
	SizeGB    float64
}

// Table1 regenerates the customer-database overview (paper Table 1).
// Sizes describe the full-scale scenarios; the tuning experiments run on
// scaled-down instances with identical structure.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, s := range cust.All(1) {
		rows = append(rows, Table1Row{Name: s.Name, Databases: s.Databases, Tables: s.TablesN, SizeGB: s.DataGB})
	}
	return rows
}

// Table1String renders Table 1.
func Table1String() string {
	var rows [][]string
	for _, r := range Table1() {
		rows = append(rows, []string{r.Name, fmt.Sprint(r.Databases), fmt.Sprint(r.Tables), fmt.Sprintf("%.1f", r.SizeGB)})
	}
	return renderTable("Table 1: Overview of customer databases and workloads",
		[]string{"Database", "#DBs", "#Tables", "Total size (GB)"}, rows)
}

// Table2Row is one row of Table 2 (quality of DTA vs hand-tuned design).
type Table2Row struct {
	Name         string
	QualityHand  float64 // (Craw − Ccurrent)/Craw
	QualityDTA   float64 // (Craw − Cdta)/Craw
	Events       float64 // workload events
	TuningTime   time.Duration
	EventsPerMin float64
	NewCount     int
}

// Table2 regenerates the DTA-vs-hand-tuned comparison (paper Table 2,
// methodology of §7.1): for each customer workload, cost the workload under
// the DBA's current design (Ccurrent), drop everything except constraint
// indexes (Craw), tune with DTA (Cdta), and report percentage reductions
// relative to Craw.
func Table2(cfg Config) ([]Table2Row, error) {
	var rows []Table2Row
	for _, s := range cust.All(cfg.CustScale) {
		data, err := s.Load(cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		srv := whatif.NewServer(s.Name, s.Catalog, optimizer.DefaultHardware())
		srv.AttachData(data)
		w := s.Workload(cfg.CustEvents, cfg.Seed)
		raw := s.ConstraintConfig()

		craw, err := workloadCost(srv, w, raw)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		current := raw.Clone()
		current.Merge(s.HandTuned)
		ccur, err := workloadCost(srv, w, current)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}

		opts := cfg.tuneOpts(srv, core.FeatureAll)
		opts.BaseConfig = raw
		opts.SkipReports = true
		rec, err := core.Tune(srv, w, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}

		row := Table2Row{
			Name:        s.Name,
			QualityHand: quality(craw, ccur),
			QualityDTA:  quality(craw, rec.Cost),
			Events:      w.TotalWeight(),
			TuningTime:  rec.Duration,
			NewCount:    len(rec.NewStructures),
		}
		if rec.Duration > 0 {
			row.EventsPerMin = row.Events / rec.Duration.Minutes()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2String renders Table 2.
func Table2String(rows []Table2Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Name, pct(r.QualityHand), pct(r.QualityDTA),
			fmt.Sprintf("%.0fK", r.Events/1000),
			r.TuningTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.EventsPerMin),
		})
	}
	return renderTable("Table 2: Quality of DTA vs hand-tuned design on customer workloads",
		[]string{"Workload", "Quality hand-tuned", "Quality DTA", "#events", "Tuning time", "events/min"}, out)
}
