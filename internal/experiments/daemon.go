package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/datagen/setquery"
	"repro/internal/service"
)

// DaemonRow is one trace epoch of the continuous-tuning sweep: the chunk
// fed, the drift score it left the daemon at, and — when the epoch
// re-tuned — the trigger, path, and delta shape. The sweep's claims are
// structural and asserted, not just recorded: stable epochs must score
// under the threshold and trigger zero re-tunes, the reweight epoch must
// be answered through the revise path, the template-shift epoch through a
// fresh pass, and the whole delta sequence must be byte-identical across a
// mid-scenario restart at a different parallelism level.
type DaemonRow struct {
	Case        string        // initial | stable-1 | stable-2 | reweight | shift | feedback
	Wall        time.Duration // epoch wall clock (ingest + any re-tune)
	ChunkEvents int64         // raw events this chunk
	Events      int64         // cumulative raw events
	Score       float64       // drift score at the chunk boundary
	Retuned     bool
	Trigger     string // initial | drift | feedback ("" when not re-tuned)
	Path        string // revise | fresh ("" when not re-tuned)
	Churn       int    // creates + drops of the emitted delta
	WhatIfCalls int64  // optimizer calls the re-tune issued
	Improvement float64
}

// daemonThreshold is the sweep's drift threshold. Stable epochs replay the
// same template mix and score ≤ ~0.02 (exactly 0 when the epoch length is a
// multiple of the template count); the injected reweight and shift epochs
// score ≥ 0.15 at both Quick and Default scale. 0.1 splits the two regimes
// with margin on each side.
const daemonThreshold = 0.1

// daemonChunks renders the sweep's drifting SYNT trace once, so every leg
// (and the restarted leg) streams byte-identical chunks. The first four
// chunks share the template universe: "initial" and the two "stable"
// chunks draw the full template set from the same seed (the stable chunks
// only rescale the distribution), and "reweight" draws a prefix subset —
// setquery templates are generated sequentially, so a smaller count under
// the same seed yields a strict prefix, concentrating weight on known
// templates without introducing new ones (the revise-path case). "shift"
// draws from a different seed: new templates the retained pool has never
// costed (the fresh-path case).
func daemonChunks(cfg Config) ([]struct{ name, body string }, error) {
	cat := setquery.Catalog(cfg.SYNT1Rows)
	render := func(events, tcount int, seed int64) (string, error) {
		var b strings.Builder
		if _, err := io.Copy(&b, setquery.Trace(cat, events, tcount, seed)); err != nil {
			return "", err
		}
		return b.String(), nil
	}
	quarter := cfg.SYNT1Templ / 4
	if quarter < 1 {
		quarter = 1
	}
	specs := []struct {
		name   string
		events int
		tcount int
		seed   int64
	}{
		{"initial", cfg.SYNT1Events, cfg.SYNT1Templ, cfg.Seed},
		{"stable-1", cfg.SYNT1Events / 2, cfg.SYNT1Templ, cfg.Seed},
		{"stable-2", cfg.SYNT1Events / 2, cfg.SYNT1Templ, cfg.Seed},
		{"reweight", cfg.SYNT1Events / 2, quarter, cfg.Seed},
		{"shift", cfg.SYNT1Events / 2, cfg.SYNT1Templ, cfg.Seed + 1000},
	}
	out := make([]struct{ name, body string }, 0, len(specs))
	for _, s := range specs {
		body, err := render(s.events, s.tcount, s.seed)
		if err != nil {
			return nil, err
		}
		out = append(out, struct{ name, body string }{s.name, body})
	}
	return out, nil
}

// daemonLeg runs the whole epoch sequence against a fresh manager and
// returns the per-epoch rows plus the daemon's delta history as canonical
// JSON (the determinism fingerprint). With restartAfter ≥ 0 the manager is
// torn down after that chunk index and the daemon resumed from stateDir in
// a fresh manager over a fresh server — the crash-recovery leg.
func daemonLeg(cfg Config, chunks []struct{ name, body string }, parallelism, restartAfter int, stateDir string) ([]DaemonRow, []byte, error) {
	newManager := func() (*service.Manager, error) {
		srv, err := newSYNT1Server(cfg.SYNT1Rows, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m := service.NewManager(2)
		if err := m.Register(&service.Backend{Name: "synt1", Tuner: srv}); err != nil {
			return nil, err
		}
		if stateDir != "" {
			if err := m.SetStateDir(stateDir); err != nil {
				return nil, err
			}
		}
		return m, nil
	}
	m, err := newManager()
	if err != nil {
		return nil, nil, err
	}
	srvBytes := int64(cfg.StorageX * float64(setquery.Catalog(cfg.SYNT1Rows).Bytes()))
	d, err := m.CreateDaemon(service.DaemonRequest{
		Database: "synt1",
		Options: service.CreateOptions{
			Features:    "IDX",
			StorageMB:   srvBytes >> 20,
			Parallelism: parallelism,
			Derive:      cfg.Derive,
		},
		Drift: service.DaemonDriftOptions{Threshold: daemonThreshold},
	})
	if err != nil {
		return nil, nil, err
	}
	id := d.ID()

	var rows []DaemonRow
	ctx := context.Background()
	for i, c := range chunks {
		start := time.Now()
		res, err := m.IngestTrace(ctx, id, strings.NewReader(c.body))
		wall := time.Since(start)
		if err != nil {
			return rows, nil, fmt.Errorf("daemon %s epoch: %w", c.name, err)
		}
		row := DaemonRow{
			Case:        c.name,
			Wall:        wall,
			ChunkEvents: res.ChunkEvents,
			Events:      res.Events,
			Score:       res.Score,
			Retuned:     res.Retuned,
			Trigger:     res.Trigger,
			Path:        res.Path,
		}
		if res.Delta != nil {
			row.Churn = res.Delta.Churn
			row.WhatIfCalls = res.Delta.WhatIfCalls
			row.Improvement = res.Delta.Improvement
		}
		rows = append(rows, row)

		if i == restartAfter {
			// Crash: drop the manager, rebuild server + manager, resume the
			// daemon purely from its persisted compressor snapshot, feedback
			// state, and pool file.
			m, err = newManager()
			if err != nil {
				return rows, nil, err
			}
			resumed, err := m.ResumeDaemons()
			if err != nil {
				return rows, nil, fmt.Errorf("daemon resume after %s: %w", c.name, err)
			}
			if len(resumed) != 1 || resumed[0].ID() != id {
				return rows, nil, fmt.Errorf("daemon resume after %s: got %d daemons, want %s", c.name, len(resumed), id)
			}
		}
	}

	// DBA-in-the-loop epoch: accept the top proposed structure, veto the
	// runner-up, and force a re-tune under the updated feedback.
	dm, ok := m.GetDaemon(id)
	if !ok {
		return rows, nil, fmt.Errorf("daemon %s vanished", id)
	}
	proposed := dm.Snapshot().Proposed
	if len(proposed) == 0 {
		return rows, nil, fmt.Errorf("daemon has no outstanding proposal to give feedback on")
	}
	fb := service.FeedbackRequest{Accept: []string{proposed[0].Key}, Retune: true}
	if len(proposed) > 1 {
		fb.Veto = []string{proposed[1].Key}
	}
	start := time.Now()
	fres, err := m.Feedback(ctx, id, fb)
	wall := time.Since(start)
	if err != nil {
		return rows, nil, fmt.Errorf("daemon feedback epoch: %w", err)
	}
	snap := dm.Snapshot()
	rows = append(rows, DaemonRow{
		Case:        "feedback",
		Wall:        wall,
		Events:      snap.Events,
		Score:       snap.DriftScore,
		Retuned:     true,
		Trigger:     fres.Delta.Trigger,
		Path:        fres.Delta.Path,
		Churn:       fres.Delta.Churn,
		WhatIfCalls: fres.Delta.WhatIfCalls,
		Improvement: fres.Delta.Improvement,
	})

	// The accepted structure must be pinned and the vetoed one dropped, not
	// re-proposed — the feedback contract.
	for _, e := range append(fres.Delta.Create, fres.Delta.Drop...) {
		if e.Key == fb.Accept[0] {
			return rows, nil, fmt.Errorf("accepted structure %s churned in the feedback delta", e.Key)
		}
	}
	if len(fb.Veto) > 0 {
		for _, e := range fres.Delta.Create {
			if e.Key == fb.Veto[0] {
				return rows, nil, fmt.Errorf("vetoed structure %s re-proposed", e.Key)
			}
		}
	}

	deltas, err := json.Marshal(dm.Deltas(0))
	if err != nil {
		return rows, nil, err
	}
	return rows, deltas, nil
}

// DaemonSweep measures the continuous tuning daemon on a drifting SYNT
// trace (§5's "tuning as an ongoing activity" read of the paper's server-
// side deployment): six epochs — initial tune, two stable epochs, a
// reweight epoch, a template-shift epoch, and a DBA feedback epoch — with
// the drift decisions asserted, then the identical scenario replayed with
// a mid-scenario restart at a different parallelism level, which must
// reproduce the delta sequence byte for byte.
func DaemonSweep(cfg Config) ([]DaemonRow, error) {
	chunks, err := daemonChunks(cfg)
	if err != nil {
		return nil, err
	}

	rows, deltasA, err := daemonLeg(cfg, chunks, 1, -1, "")
	if err != nil {
		return rows, err
	}

	// Structural assertions on the primary leg.
	byCase := map[string]DaemonRow{}
	for _, r := range rows {
		byCase[r.Case] = r
	}
	if r := byCase["initial"]; !r.Retuned || r.Trigger != service.TriggerInitial {
		return rows, fmt.Errorf("initial epoch did not run the initial tune: %+v", r)
	}
	for _, c := range []string{"stable-1", "stable-2"} {
		if r := byCase[c]; r.Retuned || r.Score >= daemonThreshold {
			return rows, fmt.Errorf("stable epoch %s re-tuned or scored %.3f ≥ %.2f", c, r.Score, daemonThreshold)
		}
	}
	if r := byCase["reweight"]; !r.Retuned || r.Trigger != service.TriggerDrift || r.Path != service.PathRevise {
		return rows, fmt.Errorf("reweight epoch not answered by a revise-path drift re-tune: %+v", r)
	}
	if r := byCase["shift"]; !r.Retuned || r.Trigger != service.TriggerDrift || r.Path != service.PathFresh {
		return rows, fmt.Errorf("shift epoch not answered by a fresh-path drift re-tune: %+v", r)
	}
	if r := byCase["feedback"]; r.Trigger != service.TriggerFeedback {
		return rows, fmt.Errorf("feedback epoch trigger = %q", r.Trigger)
	}

	// Determinism leg: restart after the stable-1 epoch, parallelism 4.
	stateDir, err := os.MkdirTemp("", "dta-daemon-*")
	if err != nil {
		return rows, err
	}
	defer os.RemoveAll(stateDir)
	_, deltasB, err := daemonLeg(cfg, chunks, 4, 1, stateDir)
	if err != nil {
		return rows, fmt.Errorf("restart leg: %w", err)
	}
	if !bytes.Equal(deltasA, deltasB) {
		return rows, fmt.Errorf("delta sequence not reproduced across restart + parallelism change:\n%s\nvs\n%s", deltasA, deltasB)
	}
	return rows, nil
}

// DaemonString renders the sweep as a table.
func DaemonString(rows []DaemonRow) string {
	var body [][]string
	for _, r := range rows {
		retuned := "-"
		if r.Retuned {
			retuned = r.Trigger + "/" + r.Path
		}
		body = append(body, []string{
			r.Case,
			r.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%.3f", r.Score),
			retuned,
			fmt.Sprintf("%d", r.Churn),
			fmt.Sprintf("%d", r.WhatIfCalls),
			pct1(r.Improvement),
		})
	}
	return renderTable("Continuous-tuning daemon sweep (drifting SYNT trace; restart leg must reproduce deltas byte-identically)",
		[]string{"Epoch", "Wall", "Events", "Drift", "Retune", "Churn", "WhatIfCalls", "Improvement"}, body)
}

// SummarizeDaemon flattens the sweep for the -json artifact. The
// deterministic fields ride in the gate-exact columns: cumulative events in
// Events, delta churn in DerivedEvals, re-tune optimizer calls in
// WhatIfCalls (all integer-exact in the benchdiff gate), and the drift
// score in Ratio (1e-9 relative tolerance) — so a stable epoch growing a
// re-tune, a re-tune changing its churn, or the drift scorer moving at all
// each fail the gate exactly.
func SummarizeDaemon(rows []DaemonRow) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out, BenchRecord{
			Experiment:     "daemon",
			Case:           r.Case,
			WallMS:         ms(r.Wall),
			WhatIfCalls:    r.WhatIfCalls,
			ImprovementPct: 100 * r.Improvement,
			Events:         r.Events,
			Ratio:          r.Score,
			DerivedEvals:   int64(r.Churn),
		})
	}
	return out
}
