package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen/setquery"
	"repro/internal/datagen/tpch"
	"repro/internal/derive"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// DeriveRow is one (workload, mode) leg of the cost-derivation sweep: the
// full advisor run with Options.Derive = Mode. Because derived costs are
// exact (the derivation layer only answers when the plan-set argument
// guarantees the optimizer would return the same number), every mode of a
// workload must report the same recommendation and improvement — only the
// what-if call count and the wall clock may change.
type DeriveRow struct {
	Workload     string // "synt1" (single-table, indexes only) or "tpch" (joins, all features)
	Mode         string
	Wall         time.Duration
	WhatIfCalls  int64
	DerivedEvals int64
	Improvement  float64
	Fingerprint  string // chosen structures, order-sensitive
	// Fallbacks breaks down, by reason (and query shape: "-join" suffixed
	// keys are multi-scope events), the evaluations the derivation layer
	// declined and answered with a real optimizer call instead.
	Fallbacks map[string]int64
}

// DeriveSweep tunes two workloads once per derivation mode (off, on,
// verify), each against a fresh server so statistics and cost caches never
// carry over, and reports the exact optimizer call count and recommendation
// per leg. SYNT1 exercises flat single-scope skeleton replay; TPC-H
// exercises composed join-skeleton replay (with views and partitioning
// enabled, matching the parallel sweep so call counts line up). It is the
// measurement behind the claim that cost derivation is a pure call-count
// optimization: any drift in the recommendation fingerprint or improvement
// relative to the workload's derive=off run is returned as an error, not a
// row. The verify legs additionally cross-check every derived cost against
// a real what-if call inside the advisor, so a clean run is itself the
// equivalence proof.
func DeriveSweep(cfg Config) ([]DeriveRow, error) {
	legs := []struct {
		workload string
		setup    func() (*whatif.Server, *workload.Workload, core.Options, error)
	}{
		{"synt1", func() (*whatif.Server, *workload.Workload, core.Options, error) {
			srv, err := newSYNT1Server(cfg.SYNT1Rows, cfg.Seed)
			if err != nil {
				return nil, nil, core.Options{}, err
			}
			cat := setquery.Catalog(cfg.SYNT1Rows)
			w := setquery.Workload(cat, cfg.SYNT1Events, cfg.SYNT1Templ, cfg.Seed)
			opts := cfg.tuneOpts(srv, core.FeatureIndexes)
			opts.SkipReports = true
			opts.CompressWorkload = true
			return srv, w, opts, nil
		}},
		{"tpch", func() (*whatif.Server, *workload.Workload, core.Options, error) {
			srv, _, err := newTPCHServer(cfg.TPCHSF, cfg.Seed)
			if err != nil {
				return nil, nil, core.Options{}, err
			}
			return srv, tpch.Workload(), cfg.tuneOpts(srv, core.FeatureAll), nil
		}},
	}

	var rows []DeriveRow
	for _, leg := range legs {
		var off *DeriveRow
		for _, mode := range []string{"off", "on", "verify"} {
			srv, w, opts, err := leg.setup()
			if err != nil {
				return nil, err
			}
			opts.Derive = derive.Mode(mode)
			start := time.Now()
			rec, err := core.Tune(srv, w, opts)
			if err != nil {
				return nil, fmt.Errorf("%s/derive=%s: %w", leg.workload, mode, err)
			}
			rows = append(rows, DeriveRow{
				Workload:     leg.workload,
				Mode:         mode,
				Wall:         time.Since(start),
				WhatIfCalls:  rec.WhatIfCalls,
				DerivedEvals: rec.DerivedEvals,
				Improvement:  rec.Improvement,
				Fingerprint:  recFingerprint(rec),
				Fallbacks:    rec.DeriveFallbacks,
			})
			r := &rows[len(rows)-1]
			if mode == "off" {
				off = r
				continue
			}
			if r.Fingerprint != off.Fingerprint || r.Improvement != off.Improvement {
				return rows, fmt.Errorf(
					"derivation drift: %s/derive=%s recommends differently than derive=off (improvement %.6f vs %.6f):\n%s\nvs\n%s",
					leg.workload, r.Mode, r.Improvement, off.Improvement, r.Fingerprint, off.Fingerprint)
			}
		}
	}
	return rows, nil
}

// deriveRatio is the what-if call reduction factor of one row over its
// workload's derive=off baseline row.
func deriveRatio(rows []DeriveRow, r DeriveRow) float64 {
	if r.WhatIfCalls <= 0 {
		return 0
	}
	for _, b := range rows {
		if b.Workload == r.Workload && b.Mode == "off" {
			return float64(b.WhatIfCalls) / float64(r.WhatIfCalls)
		}
	}
	return 0
}

// DeriveString renders the sweep with per-mode call reduction over each
// workload's derive=off baseline.
func DeriveString(rows []DeriveRow) string {
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Workload,
			r.Mode,
			r.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", r.WhatIfCalls),
			fmt.Sprintf("%d", r.DerivedEvals),
			fmt.Sprintf("%.1fx", deriveRatio(rows, r)),
			fmt.Sprintf("%.1f%%", 100*r.Improvement),
			fallbackString(r.Fallbacks),
		})
	}
	return renderTable("Cost-derivation sweep (SYNT1 + TPC-H, identical recommendations required)",
		[]string{"Workload", "Derive", "Wall", "WhatIfCalls", "Derived", "CallReduction", "Improvement", "Fallbacks"}, body)
}

// fallbackString renders a per-reason fallback breakdown as
// "atom:12 dml:3", reasons sorted, or "-" when the layer never declined.
func fallbackString(m map[string]int64) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}

// SummarizeDerive flattens the sweep for the -json artifact: one record per
// leg, Case "<workload>/derive=<mode>", Ratio carrying the call reduction
// factor over that workload's derive=off row.
func SummarizeDerive(rows []DeriveRow) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out, BenchRecord{
			Experiment:     "derive",
			Case:           r.Workload + "/derive=" + r.Mode,
			WallMS:         ms(r.Wall),
			WhatIfCalls:    r.WhatIfCalls,
			DerivedEvals:   r.DerivedEvals,
			ImprovementPct: 100 * r.Improvement,
			Ratio:          deriveRatio(rows, r),
		})
	}
	return out
}
