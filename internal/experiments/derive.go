package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen/setquery"
	"repro/internal/derive"
)

// DeriveRow is one mode of the cost-derivation sweep: the full advisor run on
// the SYNT1 workload with Options.Derive = Mode. Because derived costs are
// exact (the derivation layer only answers when the plan-set argument
// guarantees the optimizer would return the same number), every row must
// report the same recommendation and improvement — only the what-if call
// count and the wall clock may change.
type DeriveRow struct {
	Mode         string
	Wall         time.Duration
	WhatIfCalls  int64
	DerivedEvals int64
	Improvement  float64
	Fingerprint  string // chosen structures, order-sensitive
	// Fallbacks breaks down, by reason, the evaluations the derivation
	// layer declined and answered with a real optimizer call instead.
	Fallbacks map[string]int64
}

// DeriveSweep tunes the same SYNT1 workload once per derivation mode
// (off, on, verify), each against a fresh server so statistics and cost
// caches never carry over, and reports the exact optimizer call count and
// recommendation per mode. It is the measurement behind the claim that cost
// derivation is a pure call-count optimization: any drift in the
// recommendation fingerprint or improvement relative to the derive=off run
// is returned as an error, not a row. The verify leg additionally
// cross-checks every derived cost against a real what-if call inside the
// advisor, so a clean run is itself the equivalence proof.
func DeriveSweep(cfg Config) ([]DeriveRow, error) {
	rows := make([]DeriveRow, 0, 3)
	for _, mode := range []string{"off", "on", "verify"} {
		srv, err := newSYNT1Server(cfg.SYNT1Rows, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cat := setquery.Catalog(cfg.SYNT1Rows)
		w := setquery.Workload(cat, cfg.SYNT1Events, cfg.SYNT1Templ, cfg.Seed)
		opts := cfg.tuneOpts(srv, core.FeatureIndexes)
		opts.SkipReports = true
		opts.CompressWorkload = true
		opts.Derive = derive.Mode(mode)
		start := time.Now()
		rec, err := core.Tune(srv, w, opts)
		if err != nil {
			return nil, fmt.Errorf("derive=%s: %w", mode, err)
		}
		rows = append(rows, DeriveRow{
			Mode:         mode,
			Wall:         time.Since(start),
			WhatIfCalls:  rec.WhatIfCalls,
			DerivedEvals: rec.DerivedEvals,
			Improvement:  rec.Improvement,
			Fingerprint:  recFingerprint(rec),
			Fallbacks:    rec.DeriveFallbacks,
		})
	}
	for _, r := range rows[1:] {
		if r.Fingerprint != rows[0].Fingerprint || r.Improvement != rows[0].Improvement {
			return rows, fmt.Errorf(
				"derivation drift: derive=%s recommends differently than derive=off (improvement %.6f vs %.6f):\n%s\nvs\n%s",
				r.Mode, r.Improvement, rows[0].Improvement, r.Fingerprint, rows[0].Fingerprint)
		}
	}
	return rows, nil
}

// deriveRatio is the what-if call reduction factor of one row over the
// derive=off baseline row.
func deriveRatio(rows []DeriveRow, r DeriveRow) float64 {
	if len(rows) == 0 || r.WhatIfCalls <= 0 {
		return 0
	}
	return float64(rows[0].WhatIfCalls) / float64(r.WhatIfCalls)
}

// DeriveString renders the sweep with per-mode call reduction over the
// derive=off baseline.
func DeriveString(rows []DeriveRow) string {
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Mode,
			r.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", r.WhatIfCalls),
			fmt.Sprintf("%d", r.DerivedEvals),
			fmt.Sprintf("%.1fx", deriveRatio(rows, r)),
			fmt.Sprintf("%.1f%%", 100*r.Improvement),
			fallbackString(r.Fallbacks),
		})
	}
	return renderTable("Cost-derivation sweep (SYNT1, identical recommendations required)",
		[]string{"Derive", "Wall", "WhatIfCalls", "Derived", "CallReduction", "Improvement", "Fallbacks"}, body)
}

// fallbackString renders a per-reason fallback breakdown as
// "atom:12 dml:3", reasons sorted, or "-" when the layer never declined.
func fallbackString(m map[string]int64) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}

// SummarizeDerive flattens the sweep for the -json artifact: one record per
// mode, Case "derive=<mode>", Ratio carrying the call reduction factor.
func SummarizeDerive(rows []DeriveRow) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out, BenchRecord{
			Experiment:     "derive",
			Case:           "derive=" + r.Mode,
			WallMS:         ms(r.Wall),
			WhatIfCalls:    r.WhatIfCalls,
			DerivedEvals:   r.DerivedEvals,
			ImprovementPct: 100 * r.Improvement,
			Ratio:          deriveRatio(rows, r),
		})
	}
	return out
}
