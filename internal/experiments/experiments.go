// Package experiments implements the evaluation of paper §7: one function
// per table and figure, each regenerating the corresponding rows/series.
// Absolute numbers differ from the paper's (the substrate is this
// repository's simulator, not the authors' testbed); the shapes — who wins,
// by roughly what factor, where the crossovers fall — are the reproduction
// target. EXPERIMENTS.md records paper-vs-measured for each entry.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen/psoft"
	"repro/internal/datagen/setquery"
	"repro/internal/datagen/tpch"
	"repro/internal/derive"
	"repro/internal/engine"
	"repro/internal/optimizer"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// Config scales the experiments. The defaults run the full suite in a few
// minutes on a laptop; Quick shrinks everything for tests.
type Config struct {
	TPCHSF      float64 // scale factor for tuning experiments (§7.3–7.6)
	TPCHExecSF  float64 // scale factor for actual-execution runs (§7.2)
	PSOFTScale  float64 // data scale for the PSOFT schema
	PSOFTEvents int     // trace length (paper: ~6000)
	SYNT1Rows   int64   // BENCH rows
	SYNT1Events int     // paper: 8000
	SYNT1Templ  int     // paper: ~100
	CustScale   float64 // data scale for CUST1–4
	CustEvents  int     // trace length per customer (paper: 9K–252K)
	StorageX    float64 // storage budget as a multiple of raw data (paper: 3x)
	WarmRuns    int     // §7.2 warm runs per query (paper: 5)
	Seed        int64
	// Derive is the cost-derivation mode every tuning run uses ("" = off;
	// "on"/"verify" per core.Options.Derive). dtabench -derive sets it.
	Derive string
}

// Default returns the standard experiment configuration.
func Default() Config {
	return Config{
		TPCHSF:      0.01,
		TPCHExecSF:  0.02,
		PSOFTScale:  0.02,
		PSOFTEvents: 6000,
		SYNT1Rows:   100000,
		SYNT1Events: 8000,
		SYNT1Templ:  100,
		CustScale:   0.01,
		CustEvents:  4000,
		StorageX:    3,
		WarmRuns:    5,
		Seed:        1,
	}
}

// Quick returns a configuration small enough for unit tests.
func Quick() Config {
	return Config{
		TPCHSF:      0.002,
		TPCHExecSF:  0.005,
		PSOFTScale:  0.005,
		PSOFTEvents: 600,
		SYNT1Rows:   20000,
		SYNT1Events: 600,
		SYNT1Templ:  40,
		CustScale:   0.003,
		CustEvents:  600,
		StorageX:    3,
		WarmRuns:    3,
		Seed:        1,
	}
}

// newTPCHServer builds a production server with TPC-H data loaded.
func newTPCHServer(sf float64, seed int64) (*whatif.Server, *engine.Database, error) {
	cat := tpch.Catalog(sf)
	db, err := tpch.Load(cat, seed)
	if err != nil {
		return nil, nil, err
	}
	s := whatif.NewServer("tpch", cat, optimizer.DefaultHardware())
	s.AttachData(db)
	return s, db, nil
}

// newPSOFTServer builds a production server with PSOFT data loaded.
func newPSOFTServer(scale float64, seed int64) (*whatif.Server, error) {
	cat := psoft.Catalog(scale)
	db, err := psoft.Load(cat, seed)
	if err != nil {
		return nil, err
	}
	s := whatif.NewServer("psoft", cat, optimizer.DefaultHardware())
	s.AttachData(db)
	return s, nil
}

// newSYNT1Server builds a production server with SYNT1 data loaded.
func newSYNT1Server(rows int64, seed int64) (*whatif.Server, error) {
	cat := setquery.Catalog(rows)
	db, err := setquery.Load(cat, seed)
	if err != nil {
		return nil, err
	}
	s := whatif.NewServer("synt1", cat, optimizer.DefaultHardware())
	s.AttachData(db)
	return s, nil
}

// workloadCost sums the optimizer-estimated cost of the workload under cfg.
func workloadCost(s *whatif.Server, w *workload.Workload, cfg *catalog.Configuration) (float64, error) {
	var total float64
	for _, e := range w.Events {
		c, err := s.Cost(e.Stmt, cfg)
		if err != nil {
			return 0, err
		}
		total += e.Weight * c
	}
	return total, nil
}

// quality is the paper's metric: the percentage reduction of the workload
// cost relative to the raw configuration, (Craw − C)/Craw.
func quality(craw, c float64) float64 {
	if craw <= 0 {
		return 0
	}
	return (craw - c) / craw
}

// tuneOpts builds the standard tuning options: storage budget = StorageX ×
// raw data size.
func (c Config) tuneOpts(s *whatif.Server, features core.FeatureMask) core.Options {
	return core.Options{
		Features:      features,
		StorageBudget: int64(c.StorageX * float64(s.Cat.Bytes())),
		Derive:        derive.Mode(c.Derive),
	}
}

// renderTable renders rows as a fixed-width text table.
func renderTable(title string, headers []string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func pct(f float64) string { return fmt.Sprintf("%.0f%%", 100*f) }

func pct1(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
