package experiments

import (
	"testing"
)

// The experiment suite runs at Quick scale here; shape assertions are loose
// (the tight comparisons live in EXPERIMENTS.md at Default scale).

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if Table1String() == "" {
		t.Fatal("render failed")
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning")
	}
	rows, err := Table2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.QualityDTA < -0.001 {
			t.Errorf("%s: DTA must never be worse than raw: %.3f", r.Name, r.QualityDTA)
		}
	}
	// CUST1: hand-tuned good, DTA at least comparable.
	if c1 := byName["CUST1"]; c1.QualityDTA < c1.QualityHand-0.05 {
		t.Errorf("CUST1: DTA %.2f should be ≥ hand %.2f", c1.QualityDTA, c1.QualityHand)
	}
	// CUST2: DTA clearly better than the weak hand design.
	if c2 := byName["CUST2"]; c2.QualityDTA <= c2.QualityHand {
		t.Errorf("CUST2: DTA %.2f should beat hand %.2f", c2.QualityDTA, c2.QualityHand)
	}
	// CUST3: hand-tuned hurts (negative), DTA near zero.
	if c3 := byName["CUST3"]; c3.QualityHand >= 0.02 {
		t.Errorf("CUST3: hand-tuned should hurt: %.3f", c3.QualityHand)
	}
	// CUST4: hand = 0 by construction, DTA positive.
	if c4 := byName["CUST4"]; c4.QualityHand != 0 || c4.QualityDTA <= 0.05 {
		t.Errorf("CUST4: hand=%.2f dta=%.2f", c4.QualityHand, c4.QualityDTA)
	}
	t.Log("\n" + Table2String(rows))
}

func TestSec72Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end execution")
	}
	res, err := Sec72(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpectedImprovement < 0.3 {
		t.Errorf("expected improvement too small: %.2f", res.ExpectedImprovement)
	}
	if res.ActualImprovement < 0.05 {
		t.Errorf("actual improvement too small: %.2f", res.ActualImprovement)
	}
	t.Log("\n" + res.String())
}

func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning")
	}
	rows, err := Figure3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Reduction <= 0 {
			t.Errorf("%s: test server must reduce overhead: %.2f", r.Name, r.Reduction)
		}
	}
	// More complex tuning benefits more: TPCH22-A ≥ TPCHQ1-I.
	if rows[3].Reduction < rows[0].Reduction {
		t.Errorf("TPCH22-A (%.2f) should reduce at least as much as TPCHQ1-I (%.2f)",
			rows[3].Reduction, rows[0].Reduction)
	}
	t.Log("\n" + Figure3String(rows))
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning")
	}
	rows, err := Table3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// TPCH22: all-distinct queries, no compression possible.
	if r := byName["TPCH22"]; r.EventsTuned != r.Events {
		t.Errorf("TPCH22 should not compress: %d of %d", r.EventsTuned, r.Events)
	}
	// PSOFT and SYNT1 compress hard and speed up.
	for _, name := range []string{"PSOFT", "SYNT1"} {
		r := byName[name]
		if float64(r.EventsTuned) > 0.5*float64(r.Events) {
			t.Errorf("%s should compress: tuned %d of %d", name, r.EventsTuned, r.Events)
		}
		if r.Speedup < 1.2 {
			t.Errorf("%s speedup = %.1fx", name, r.Speedup)
		}
		if r.QualityDecrease > 0.10 {
			t.Errorf("%s quality decrease = %.3f", name, r.QualityDecrease)
		}
	}
	// SYNT1 compresses more than PSOFT (more events per template).
	if byName["SYNT1"].Speedup < byName["PSOFT"].Speedup {
		t.Logf("note: SYNT1 speedup %.1fx < PSOFT %.1fx at quick scale",
			byName["SYNT1"].Speedup, byName["PSOFT"].Speedup)
	}
	t.Log("\n" + Table3String(rows))
}

func TestSec75Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning")
	}
	rows, err := Sec75(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.StatsReduced > r.StatsNaive {
			t.Errorf("%s: reduction increased stats: %d vs %d", r.Name, r.StatsReduced, r.StatsNaive)
		}
		if r.CountReduction <= 0 {
			t.Errorf("%s: no reduction: %+v", r.Name, r)
		}
		// No difference in the quality of DTA's recommendation.
		if d := r.QualityNaive - r.QualityReduced; d > 0.02 || d < -0.02 {
			t.Errorf("%s: quality changed: %.3f vs %.3f", r.Name, r.QualityNaive, r.QualityReduced)
		}
	}
	t.Log("\n" + Sec75String(rows))
}

func TestFigure45Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning")
	}
	rows, err := Figure45(Quick())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Figure45Row{}
	for _, r := range rows {
		byName[r.Name] = r
		// Comparable quality.
		if r.QualityITW-r.QualityDTA > 0.08 {
			t.Errorf("%s: DTA quality %.3f far below ITW %.3f", r.Name, r.QualityDTA, r.QualityITW)
		}
	}
	// DTA issues fewer what-if calls on the large templatized workloads.
	for _, name := range []string{"PSOFT", "SYNT1"} {
		r := byName[name]
		if r.CallsDTA >= r.CallsITW {
			t.Errorf("%s: DTA calls %d should be below ITW %d", name, r.CallsDTA, r.CallsITW)
		}
	}
	t.Log("\n" + Figure45String(rows))
}

func TestIngestSweepShape(t *testing.T) {
	cfg := Quick()
	rows, err := IngestSweep(cfg, []int{1500, 4500})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.ParityChecked {
			t.Fatalf("parity must run at quick sizes: %+v", r)
		}
		if r.Representatives > r.Templates*4 {
			t.Fatalf("representatives %d exceed templates %d × 4", r.Representatives, r.Templates)
		}
		if r.Improvement <= 0 {
			t.Fatalf("no improvement at n=%d", r.Events)
		}
	}
	// Tripling the trace must not grow retained state: same templates, same
	// representative bound, (much) higher compression ratio.
	if rows[1].Representatives != rows[0].Representatives {
		t.Fatalf("representatives grew with trace size: %d → %d", rows[0].Representatives, rows[1].Representatives)
	}
	if rows[1].Ratio <= rows[0].Ratio {
		t.Fatalf("ratio should grow with trace size: %.1f → %.1f", rows[0].Ratio, rows[1].Ratio)
	}
	if IngestString(rows) == "" || len(SummarizeIngest(rows)) != 2 {
		t.Fatal("render/summary failed")
	}
}

func TestDeriveSweepShape(t *testing.T) {
	rows, err := DeriveSweep(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Two workloads (synt1 flat replay, tpch join replay) × three modes.
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// DeriveSweep itself enforces recommendation and improvement equality
	// across modes; the shape left to assert is the call reduction, per
	// workload.
	for _, base := range []int{0, 3} {
		off, on, verify := rows[base], rows[base+1], rows[base+2]
		if off.Mode != "off" || on.Mode != "on" || verify.Mode != "verify" ||
			on.Workload != off.Workload || verify.Workload != off.Workload {
			t.Fatalf("row order: %+v", rows)
		}
		if on.DerivedEvals == 0 {
			t.Fatalf("%s: derivation never fired", on.Workload)
		}
		if ratio := deriveRatio(rows, on); ratio < 2 {
			t.Errorf("%s: call reduction %.1fx (off %d → on %d), want ≥ 2x even at quick scale",
				on.Workload, ratio, off.WhatIfCalls, on.WhatIfCalls)
		}
		// The verify leg re-checks every derived cost against the
		// optimizer; its surviving without error is the point, but it must
		// also have derived.
		if verify.DerivedEvals == 0 {
			t.Fatalf("%s: verify leg never derived", verify.Workload)
		}
	}
	// The join-heavy leg must report join-shaped fallbacks — the shape
	// split is what localizes a future join-replay regression.
	if rows[4].Fallbacks["atom-join"] == 0 {
		t.Errorf("tpch derive=on: no atom-join fallbacks recorded: %v", rows[4].Fallbacks)
	}
	if DeriveString(rows) == "" || len(SummarizeDerive(rows)) != 6 {
		t.Fatal("render/summary failed")
	}
	t.Log("\n" + DeriveString(rows))
}

func TestSec3AndAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning")
	}
	cfg := Quick()
	sec3, err := Sec3IntegratedVsStaged(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sec3.IntegratedQuality < sec3.StagedQuality-0.01 {
		t.Errorf("integrated %.3f must not lose to staged %.3f", sec3.IntegratedQuality, sec3.StagedQuality)
	}
	t.Log("\n" + sec3.String())

	for name, fn := range map[string]func(Config) (*AblationRow, error){
		"colgroup":  AblationColumnGroupRestriction,
		"merging":   AblationMerging,
		"alignment": AblationLazyAlignment,
		"greedy":    AblationGreedySeed,
	} {
		r, err := fn(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Log("\n" + AblationString(r))
	}
}
