package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen/tpch"
	"repro/internal/testsrv"
	"repro/internal/workload"
)

// Figure3Row is one bar of Figure 3: the reduction in production-server
// overhead obtained by tuning through a test server, for one workload /
// feature-set combination.
type Figure3Row struct {
	Name             string // TPCHQ1-I, TPCHQ1-A, TPCH22-I, TPCH22-A
	DirectOverhead   float64
	SessionOverhead  float64
	Reduction        float64
	ProdWhatIfDirect int64
}

// Figure3 reproduces §7.3 on TPC-H (the paper uses the 1 GB configuration):
// tune {the first query, all 22 queries} × {indexes only, indexes and
// materialized views}, once directly against the production server and once
// through a test server, and compare the total simulated duration of
// statements submitted to production. The paper reports ~60% reduction for
// TPCHQ1-I growing to ~90% for TPCH22-A: the more complex the tuning, the
// more what-if work the test server absorbs, while production pays only for
// statistics creation.
func Figure3(cfg Config) ([]Figure3Row, error) {
	cases := []struct {
		name     string
		queries  []string
		features core.FeatureMask
	}{
		{"TPCHQ1-I", tpch.Queries()[:1], core.FeatureIndexes},
		{"TPCHQ1-A", tpch.Queries()[:1], core.FeatureIndexes | core.FeatureViews},
		{"TPCH22-I", tpch.Queries(), core.FeatureIndexes},
		{"TPCH22-A", tpch.Queries(), core.FeatureIndexes | core.FeatureViews},
	}
	var rows []Figure3Row
	for _, tc := range cases {
		w := workload.MustNew(tc.queries...)

		// Direct: everything lands on production.
		direct, _, err := newTPCHServer(cfg.TPCHSF, cfg.Seed)
		if err != nil {
			return nil, err
		}
		opts := cfg.tuneOpts(direct, tc.features)
		opts.BaseConfig = tpch.ConstraintConfig(direct.Cat)
		if _, err := core.Tune(direct, w, opts); err != nil {
			return nil, fmt.Errorf("%s direct: %w", tc.name, err)
		}

		// Through a test server: production pays only for statistics.
		prod, _, err := newTPCHServer(cfg.TPCHSF, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sess := testsrv.NewSession(prod)
		opts2 := cfg.tuneOpts(prod, tc.features)
		opts2.BaseConfig = tpch.ConstraintConfig(sess.Catalog())
		if _, err := core.Tune(sess, w, opts2); err != nil {
			return nil, fmt.Errorf("%s session: %w", tc.name, err)
		}

		row := Figure3Row{
			Name:             tc.name,
			DirectOverhead:   direct.Acct().Overhead,
			SessionOverhead:  sess.ProductionOverhead(),
			ProdWhatIfDirect: direct.Acct().WhatIfCalls,
		}
		if row.DirectOverhead > 0 {
			row.Reduction = 1 - row.SessionOverhead/row.DirectOverhead
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure3String renders Figure 3 as a table.
func Figure3String(rows []Figure3Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Name, pct(r.Reduction),
			fmt.Sprintf("%.0f", r.DirectOverhead),
			fmt.Sprintf("%.0f", r.SessionOverhead),
			fmt.Sprint(r.ProdWhatIfDirect),
		})
	}
	return renderTable("Figure 3: Reduction in production server overhead by exploiting a test server",
		[]string{"Workload", "Reduction", "Direct overhead", "Test-server overhead", "What-if calls (direct)"}, out)
}
