package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/datagen/setquery"
	"repro/internal/workload"
)

// ingestParityMax caps the sweep sizes that also run the batch
// (materialize-then-compress) leg for a recommendation-parity check; above
// it the batch leg would dominate the sweep's wall clock and memory for no
// extra signal — the streaming and batch compressors are the same code fed
// in the same order.
const ingestParityMax = 100000

// IngestRow is one size level of the streaming-ingestion scale sweep: a
// synthetic SYNT1 trace of Events statements streamed through the online
// compressor and tuned, with the ingest wall clock, the bytes allocated
// during ingestion (runtime.MemStats TotalAlloc delta — the whole point is
// that this stays bounded by templates × MaxPerTemplate state, not O(events)),
// the compression achieved, and the tuning outcome. Rows at or below the
// parity threshold also tune the same statements through the batch path and
// require an identical recommendation.
type IngestRow struct {
	Events          int
	Bytes           int64
	IngestWall      time.Duration
	AllocMB         float64
	Templates       int
	Representatives int
	Ratio           float64
	TuneWall        time.Duration
	WhatIfCalls     int64
	Improvement     float64
	ParityChecked   bool
}

// IngestSweep streams synthetic SYNT1 traces of the given sizes through
// StreamTrace → Compressor → Tune, one fresh server per size so statistics
// and cost caches never carry over. For sizes at or below the parity
// threshold it also materializes the identical statements and tunes them
// through the batch compression path; any drift in the recommendation
// fingerprint, improvement, or what-if call count is returned as an error.
// A compressor retaining more than templates × MaxPerTemplate representatives
// is likewise an error — that bound is the sweep's reason to exist.
func IngestSweep(cfg Config, sizes []int) ([]IngestRow, error) {
	rows := make([]IngestRow, 0, len(sizes))
	for _, n := range sizes {
		srv, err := newSYNT1Server(cfg.SYNT1Rows, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cat := setquery.Catalog(cfg.SYNT1Rows)
		trace := setquery.Trace(cat, n, cfg.SYNT1Templ, cfg.Seed)

		comp := workload.NewCompressor(workload.CompressOptions{})
		cr := &countingTraceReader{r: trace}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		ingestStart := time.Now()
		err = workload.StreamTrace(cr, func(e *workload.Event, _ int) error { return comp.Add(e) })
		ingestWall := time.Since(ingestStart)
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, fmt.Errorf("ingest n=%d: %w", n, err)
		}
		if bound := comp.Templates() * 4; comp.Len() > bound {
			return nil, fmt.Errorf("ingest n=%d: compressor retained %d representatives, bound is %d (templates %d × 4)",
				n, comp.Len(), bound, comp.Templates())
		}

		w := comp.Workload()
		opts := cfg.tuneOpts(srv, core.FeatureIndexes)
		opts.SkipReports = true
		opts.Ingest = &core.IngestStats{Events: comp.Events(), Bytes: cr.n, Templates: comp.Templates()}
		tuneStart := time.Now()
		rec, err := core.Tune(srv, w, opts)
		if err != nil {
			return nil, fmt.Errorf("tune n=%d: %w", n, err)
		}
		row := IngestRow{
			Events:          n,
			Bytes:           cr.n,
			IngestWall:      ingestWall,
			AllocMB:         float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
			Templates:       comp.Templates(),
			Representatives: w.Len(),
			Ratio:           comp.Ratio(),
			TuneWall:        time.Since(tuneStart),
			WhatIfCalls:     rec.WhatIfCalls,
			Improvement:     rec.Improvement,
		}

		if n <= ingestParityMax {
			if err := ingestParity(cfg, n, rec); err != nil {
				return rows, err
			}
			row.ParityChecked = true
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ingestParity tunes the identical statement sequence through the batch path
// (materialized workload, advisor-side compression) on a fresh server and
// compares the recommendation against the streaming run's.
func ingestParity(cfg Config, n int, streamRec *core.Recommendation) error {
	srv, err := newSYNT1Server(cfg.SYNT1Rows, cfg.Seed)
	if err != nil {
		return err
	}
	cat := setquery.Catalog(cfg.SYNT1Rows)
	w := setquery.Workload(cat, n, cfg.SYNT1Templ, cfg.Seed)
	opts := cfg.tuneOpts(srv, core.FeatureIndexes)
	opts.SkipReports = true
	opts.CompressWorkload = true
	rec, err := core.Tune(srv, w, opts)
	if err != nil {
		return fmt.Errorf("parity tune n=%d: %w", n, err)
	}
	if got, want := recFingerprint(streamRec), recFingerprint(rec); got != want {
		return fmt.Errorf("parity violated at n=%d: streaming and batch paths recommend different structures:\nstream:\n%s\nbatch:\n%s", n, got, want)
	}
	if streamRec.Improvement != rec.Improvement {
		return fmt.Errorf("parity violated at n=%d: improvement %.6f (stream) vs %.6f (batch)", n, streamRec.Improvement, rec.Improvement)
	}
	if streamRec.WhatIfCalls != rec.WhatIfCalls {
		return fmt.Errorf("parity violated at n=%d: what-if calls %d (stream) vs %d (batch)", n, streamRec.WhatIfCalls, rec.WhatIfCalls)
	}
	return nil
}

// recFingerprint renders the recommendation's structures, order-sensitive.
func recFingerprint(rec *core.Recommendation) string {
	fp := ""
	for _, st := range rec.NewStructures {
		fp += st.Key() + "\n"
	}
	return fp
}

// countingTraceReader counts bytes drained from the synthetic trace.
type countingTraceReader struct {
	r interface{ Read([]byte) (int, error) }
	n int64
}

func (c *countingTraceReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// IngestString renders the sweep.
func IngestString(rows []IngestRow) string {
	var body [][]string
	for _, r := range rows {
		parity := "-"
		if r.ParityChecked {
			parity = "ok"
		}
		body = append(body, []string{
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%.1f MB", float64(r.Bytes)/(1<<20)),
			r.IngestWall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f MB", r.AllocMB),
			fmt.Sprintf("%d", r.Representatives),
			fmt.Sprintf("%.0fx", r.Ratio),
			r.TuneWall.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", r.WhatIfCalls),
			fmt.Sprintf("%.1f%%", 100*r.Improvement),
			parity,
		})
	}
	return renderTable("Streaming ingestion scale sweep (SYNT1 traces, online compression)",
		[]string{"Events", "Trace", "Ingest", "Alloc", "Reps", "Ratio", "Tune", "WhatIfCalls", "Improvement", "Parity"}, body)
}

// SummarizeIngest flattens the sweep for the -json artifact: one record per
// size, Case "n=N".
func SummarizeIngest(rows []IngestRow) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out, BenchRecord{
			Experiment:     "ingest",
			Case:           fmt.Sprintf("n=%d", r.Events),
			WallMS:         ms(r.IngestWall + r.TuneWall),
			WhatIfCalls:    r.WhatIfCalls,
			ImprovementPct: 100 * r.Improvement,
			Events:         int64(r.Events),
			AllocMB:        r.AllocMB,
			Ratio:          r.Ratio,
		})
	}
	return out
}
