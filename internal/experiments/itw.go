package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen/psoft"
	"repro/internal/datagen/setquery"
	"repro/internal/datagen/tpch"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// Figure45Row is one workload's end-to-end comparison of DTA against the
// SQL Server 2000 Index Tuning Wizard (paper §7.6, Figures 4 and 5).
type Figure45Row struct {
	Name          string
	QualityDTA    float64
	QualityITW    float64
	TimeDTA       time.Duration
	TimeITW       time.Duration
	TimeReduction float64 // DTA running time relative to ITW (1 − dta/itw)
	CallsDTA      int64
	CallsITW      int64
}

// Figure45 reproduces §7.6: both tools run against the same server, tuning
// indexes and materialized views only (ITW cannot recommend partitioning).
// The paper's Figure 4 shows comparable recommendation quality (DTA slightly
// better in all cases) and Figure 5 shows DTA significantly faster on the
// large workloads (its scalability devices — workload compression and
// column-group restriction — do not exist in ITW).
func Figure45(cfg Config) ([]Figure45Row, error) {
	cases := []struct {
		name  string
		build func() (*whatif.Server, *workload.Workload, error)
	}{
		{"TPCH22", func() (*whatif.Server, *workload.Workload, error) {
			s, _, err := newTPCHServer(cfg.TPCHSF, cfg.Seed)
			return s, tpch.Workload(), err
		}},
		{"PSOFT", func() (*whatif.Server, *workload.Workload, error) {
			s, err := newPSOFTServer(cfg.PSOFTScale, cfg.Seed)
			if err != nil {
				return nil, nil, err
			}
			return s, psoft.Workload(s.Cat, cfg.PSOFTEvents, cfg.Seed), nil
		}},
		{"SYNT1", func() (*whatif.Server, *workload.Workload, error) {
			s, err := newSYNT1Server(cfg.SYNT1Rows, cfg.Seed)
			if err != nil {
				return nil, nil, err
			}
			return s, setquery.Workload(s.Cat, cfg.SYNT1Events, cfg.SYNT1Templ, cfg.Seed), nil
		}},
	}
	var rows []Figure45Row
	for _, tc := range cases {
		srvD, w, err := tc.build()
		if err != nil {
			return nil, err
		}
		optsD := cfg.tuneOpts(srvD, core.FeatureIndexes|core.FeatureViews)
		optsD.SkipReports = true
		recD, err := core.Tune(srvD, w, optsD)
		if err != nil {
			return nil, fmt.Errorf("%s DTA: %w", tc.name, err)
		}

		srvI, w2, err := tc.build()
		if err != nil {
			return nil, err
		}
		optsI := cfg.tuneOpts(srvI, 0)
		optsI.SkipReports = true
		recI, err := core.TuneITW(srvI, w2, optsI)
		if err != nil {
			return nil, fmt.Errorf("%s ITW: %w", tc.name, err)
		}

		row := Figure45Row{
			Name:       tc.name,
			QualityDTA: recD.Improvement,
			QualityITW: recI.Improvement,
			TimeDTA:    recD.Duration,
			TimeITW:    recI.Duration,
			CallsDTA:   recD.WhatIfCalls,
			CallsITW:   recI.WhatIfCalls,
		}
		if recI.Duration > 0 {
			row.TimeReduction = 1 - float64(recD.Duration)/float64(recI.Duration)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure45String renders Figures 4 and 5 as tables.
func Figure45String(rows []Figure45Row) string {
	var q, t [][]string
	for _, r := range rows {
		q = append(q, []string{r.Name, pct1(r.QualityDTA), pct1(r.QualityITW)})
		t = append(t, []string{
			r.Name,
			r.TimeDTA.Round(time.Millisecond).String(),
			r.TimeITW.Round(time.Millisecond).String(),
			pct(r.TimeReduction),
			fmt.Sprintf("%d vs %d", r.CallsDTA, r.CallsITW),
		})
	}
	return renderTable("Figure 4: Quality of recommendation — DTA vs SQL2K Index Tuning Wizard",
		[]string{"Workload", "DTA quality", "ITW quality"}, q) + "\n" +
		renderTable("Figure 5: Running time — DTA vs SQL2K Index Tuning Wizard",
			[]string{"Workload", "DTA time", "ITW time", "time reduction", "what-if calls"}, t)
}
