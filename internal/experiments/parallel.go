package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen/tpch"
)

// ParallelRow is one level of the parallelism sweep: the full advisor run on
// the TPC-H demonstration database at Options.Parallelism = P. Because the
// cost cache is single-flight and the greedy reductions are deterministic,
// every row must report the same recommendation (Improvement) and the same
// WhatIfCalls — only the wall clock may change.
type ParallelRow struct {
	Parallelism  int
	Wall         time.Duration
	WhatIfCalls  int64
	DerivedEvals int64
	Improvement  float64
	Fingerprint  string // chosen structures, order-sensitive
}

// ParallelSweep tunes the same TPC-H workload once per parallelism level,
// each against a fresh server (so statistics and caches never carry over),
// and reports wall clock, exact what-if call counts, and the recommendation
// fingerprint per level. It is the measurement behind the claim that the
// parallel pipeline is a pure latency optimization: any fingerprint or
// call-count drift across levels is returned as an error, not a row.
func ParallelSweep(cfg Config, levels []int) ([]ParallelRow, error) {
	rows := make([]ParallelRow, 0, len(levels))
	for _, p := range levels {
		srv, _, err := newTPCHServer(cfg.TPCHSF, cfg.Seed)
		if err != nil {
			return nil, err
		}
		w := tpch.Workload()
		opts := cfg.tuneOpts(srv, core.FeatureAll)
		opts.Parallelism = p
		start := time.Now()
		rec, err := core.Tune(srv, w, opts)
		if err != nil {
			return nil, fmt.Errorf("parallelism %d: %w", p, err)
		}
		fp := ""
		for _, st := range rec.NewStructures {
			fp += st.Key() + "\n"
		}
		rows = append(rows, ParallelRow{
			Parallelism:  p,
			Wall:         time.Since(start),
			WhatIfCalls:  rec.WhatIfCalls,
			DerivedEvals: rec.DerivedEvals,
			Improvement:  rec.Improvement,
			Fingerprint:  fp,
		})
	}
	for _, r := range rows[1:] {
		if r.Fingerprint != rows[0].Fingerprint || r.WhatIfCalls != rows[0].WhatIfCalls {
			return rows, fmt.Errorf(
				"determinism violated: parallelism %d produced %d what-if calls and a different recommendation than parallelism %d (%d calls)",
				r.Parallelism, r.WhatIfCalls, rows[0].Parallelism, rows[0].WhatIfCalls)
		}
	}
	return rows, nil
}

// ParallelString renders the sweep with per-level speedup over the first
// (slowest-expected) level.
func ParallelString(rows []ParallelRow) string {
	var body [][]string
	for _, r := range rows {
		speedup := "1.00x"
		if r.Wall > 0 && len(rows) > 0 && rows[0].Wall > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(rows[0].Wall)/float64(r.Wall))
		}
		body = append(body, []string{
			fmt.Sprintf("%d", r.Parallelism),
			r.Wall.Round(time.Millisecond).String(),
			speedup,
			fmt.Sprintf("%d", r.WhatIfCalls),
			fmt.Sprintf("%.1f%%", 100*r.Improvement),
		})
	}
	return renderTable("Parallel tuning sweep (TPC-H, identical recommendations required)",
		[]string{"Parallelism", "Wall", "Speedup", "WhatIfCalls", "Improvement"}, body)
}

// SummarizeParallel flattens the sweep for the -json artifact: one record
// per level, Case "p=N".
func SummarizeParallel(rows []ParallelRow) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out, BenchRecord{
			Experiment:     "parallel",
			Case:           fmt.Sprintf("p=%d", r.Parallelism),
			WallMS:         ms(r.Wall),
			WhatIfCalls:    r.WhatIfCalls,
			DerivedEvals:   r.DerivedEvals,
			ImprovementPct: 100 * r.Improvement,
		})
	}
	return out
}
