package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen/psoft"
	"repro/internal/datagen/tpch"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// Sec75Row is one row of the §7.5 reduced-statistics-creation experiment.
type Sec75Row struct {
	Name           string
	StatsNaive     int
	StatsReduced   int
	CountReduction float64
	PagesNaive     int64
	PagesReduced   int64
	TimeReduction  float64 // by sampling-I/O proxy
	QualityNaive   float64
	QualityReduced float64
}

// Sec75 reproduces §7.5: tune TPC-H and PSOFT with and without the
// reduced-statistics technique of §5.2, measuring the reduction in the
// number of statistics created and in statistics-creation time (sampling
// I/O pages stand in for time — the cost of creating a statistic is
// dominated by sampling the table, which is what the technique saves). The
// paper reports −55%/−62% (count/time) for TPC-H and −24%/−31% for PSOFT,
// with no difference in recommendation quality, since the technique only
// removes redundant statistical information.
func Sec75(cfg Config) ([]Sec75Row, error) {
	cases := []struct {
		name  string
		build func() (*whatif.Server, *workload.Workload, error)
	}{
		{"TPC-H", func() (*whatif.Server, *workload.Workload, error) {
			s, _, err := newTPCHServer(cfg.TPCHSF, cfg.Seed)
			return s, tpch.Workload(), err
		}},
		{"PSOFT", func() (*whatif.Server, *workload.Workload, error) {
			s, err := newPSOFTServer(cfg.PSOFTScale, cfg.Seed)
			if err != nil {
				return nil, nil, err
			}
			return s, psoft.Workload(s.Cat, cfg.PSOFTEvents, cfg.Seed), nil
		}},
	}
	var rows []Sec75Row
	for _, tc := range cases {
		srvN, w, err := tc.build()
		if err != nil {
			return nil, err
		}
		optsN := cfg.tuneOpts(srvN, core.FeatureAll)
		optsN.DisableStatReduction = true
		optsN.SkipReports = true
		recN, err := core.Tune(srvN, w, optsN)
		if err != nil {
			return nil, fmt.Errorf("%s naive: %w", tc.name, err)
		}

		srvR, w2, err := tc.build()
		if err != nil {
			return nil, err
		}
		optsR := cfg.tuneOpts(srvR, core.FeatureAll)
		optsR.SkipReports = true
		recR, err := core.Tune(srvR, w2, optsR)
		if err != nil {
			return nil, fmt.Errorf("%s reduced: %w", tc.name, err)
		}

		row := Sec75Row{
			Name:           tc.name,
			StatsNaive:     recN.StatsCreated,
			StatsReduced:   recR.StatsCreated,
			PagesNaive:     statPages(srvN),
			PagesReduced:   statPages(srvR),
			QualityNaive:   recN.Improvement,
			QualityReduced: recR.Improvement,
		}
		if row.StatsNaive > 0 {
			row.CountReduction = 1 - float64(row.StatsReduced)/float64(row.StatsNaive)
		}
		if row.PagesNaive > 0 {
			row.TimeReduction = 1 - float64(row.PagesReduced)/float64(row.PagesNaive)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// statPages sums the sampling I/O charged for every statistic the server
// created — the proxy for statistics-creation time.
func statPages(s *whatif.Server) int64 {
	var pages int64
	for _, st := range s.Stats.All() {
		pages += st.SampledPages
	}
	return pages
}

// Sec75String renders the §7.5 results.
func Sec75String(rows []Sec75Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			fmt.Sprintf("%d → %d", r.StatsNaive, r.StatsReduced),
			pct(r.CountReduction),
			pct(r.TimeReduction),
			fmt.Sprintf("%.1f%% vs %.1f%%", 100*r.QualityNaive, 100*r.QualityReduced),
		})
	}
	return renderTable("Section 7.5: Impact of reduced statistics creation (paper: −55%/−62% TPC-H, −24%/−31% PSOFT, quality unchanged)",
		[]string{"Workload", "#stats", "count reduction", "time reduction", "quality (naive vs reduced)"}, out)
}
