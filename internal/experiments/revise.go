package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen/setquery"
	"repro/internal/datagen/tpch"
	"repro/internal/derive"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// ReviseRow is one constraint revision of the interactive-tuning sweep: the
// revision's search-only wall clock and what-if call count next to a fresh
// full run under the same constraints. Revision and fresh run must agree on
// the recommendation and improvement — the sweep fails on any drift — so
// the row measures only what splitting costing from search saves.
type ReviseRow struct {
	DB          string        // synt1 | tpch
	Case        string        // same | storage-tight | storage-half | storage-double | veto-top | reweight
	WallRevise  time.Duration // core.Revise against the retained pool, warm server
	WallFull    time.Duration // fresh full run under the same constraints, fresh server
	ReviseCalls int64         // what-if calls the revision issued (pool misses)
	FullCalls   int64         // what-if calls of the fresh full run
	Improvement float64
	Fingerprint string // chosen structures, order-sensitive
}

// reviseSpeedup is the full-run wall clock over the revision wall clock.
func reviseSpeedup(r ReviseRow) float64 {
	if r.WallRevise <= 0 {
		return 0
	}
	return float64(r.WallFull) / float64(r.WallRevise)
}

// reviseCase is one constraint mutation the sweep replays against the pool.
type reviseCase struct {
	name   string
	mutate func(core.Constraints, *core.Recommendation, *workload.Workload) core.Constraints
}

// reviseCases are the constraint changes a DBA iterates through in the
// paper's interactive scenario: tightening and relaxing the storage bound,
// vetoing the top recommended structure, and reweighting a workload slice.
// "same" replays the original constraints and must reproduce the original
// recommendation with zero calls.
func reviseCases() []reviseCase {
	return []reviseCase{
		{"same", func(c core.Constraints, _ *core.Recommendation, _ *workload.Workload) core.Constraints {
			return c
		}},
		{"storage-tight", func(c core.Constraints, _ *core.Recommendation, _ *workload.Workload) core.Constraints {
			c.StorageBudget = c.StorageBudget * 4 / 5
			return c
		}},
		{"storage-half", func(c core.Constraints, _ *core.Recommendation, _ *workload.Workload) core.Constraints {
			c.StorageBudget /= 2
			return c
		}},
		{"storage-double", func(c core.Constraints, _ *core.Recommendation, _ *workload.Workload) core.Constraints {
			c.StorageBudget *= 2
			return c
		}},
		{"veto-top", func(c core.Constraints, rec *core.Recommendation, _ *workload.Workload) core.Constraints {
			if len(rec.NewStructures) > 0 {
				c.Vetoed = append(append([]string(nil), c.Vetoed...), rec.NewStructures[0].Key())
			}
			return c
		}},
		{"reweight", func(c core.Constraints, _ *core.Recommendation, w *workload.Workload) core.Constraints {
			if w.Len() == 0 {
				return c
			}
			m := make(map[string]float64, len(c.SliceWeights)+1)
			for k, v := range c.SliceWeights {
				m[k] = v
			}
			m[w.Events[0].Signature()] = 4
			c.SliceWeights = m
			return c
		}},
	}
}

// ReviseSweep measures interactive session revision (the costing/search
// split): each database is tuned once in full with the costed pool
// retained, then every constraint change in reviseCases is answered twice —
// by core.Revise against the pool on the still-warm server (the service's
// PATCH /sessions/{id} path), and by a fresh full run on a freshly built
// server under the identical constraints (what a DBA without the pool would
// pay, statistics creation included). The two recommendations and
// improvements must match exactly; any drift is returned as an error, not a
// row. Derivation is forced on — pool facts are what let a changed storage
// bound reach new configurations without optimizer calls — so revisions are
// expected to report zero what-if calls.
func ReviseSweep(cfg Config) ([]ReviseRow, error) {
	type target struct {
		name  string
		build func() (*whatif.Server, *workload.Workload, error)
	}
	targets := []target{
		{"synt1", func() (*whatif.Server, *workload.Workload, error) {
			srv, err := newSYNT1Server(cfg.SYNT1Rows, cfg.Seed)
			if err != nil {
				return nil, nil, err
			}
			cat := setquery.Catalog(cfg.SYNT1Rows)
			return srv, setquery.Workload(cat, cfg.SYNT1Events, cfg.SYNT1Templ, cfg.Seed), nil
		}},
		{"tpch", func() (*whatif.Server, *workload.Workload, error) {
			srv, _, err := newTPCHServer(cfg.TPCHSF, cfg.Seed)
			return srv, tpch.Workload(), err
		}},
	}

	var rows []ReviseRow
	for _, tg := range targets {
		warm, w, err := tg.build()
		if err != nil {
			return nil, err
		}
		opts := cfg.tuneOpts(warm, core.FeatureIndexes)
		opts.SkipReports = true
		opts.CompressWorkload = true
		opts.Derive = derive.On
		var pool *core.CostedPool
		opts.PoolSink = func(p *core.CostedPool) { pool = p }
		start := time.Now()
		parent, err := core.Tune(warm, w, opts)
		parentWall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("revise %s: full run: %w", tg.name, err)
		}
		if pool == nil {
			return nil, fmt.Errorf("revise %s: full run sealed no pool", tg.name)
		}
		cons := opts.SearchConstraints()

		for _, rc := range reviseCases() {
			rcons := rc.mutate(cons, parent, w)
			start = time.Now()
			rev, err := core.Revise(context.Background(), warm, pool, rcons, core.Options{})
			revWall := time.Since(start)
			if err != nil {
				return rows, fmt.Errorf("revise %s/%s: %w", tg.name, rc.name, err)
			}

			// The fresh-run side: "same" is the parent run itself; every
			// other case pays a full pipeline on a fresh server.
			fullWall, fullCalls, fullRec := parentWall, parent.WhatIfCalls, parent
			if rc.name != "same" {
				fsrv, fw, err := tg.build()
				if err != nil {
					return rows, err
				}
				fopts := cfg.tuneOpts(fsrv, core.FeatureIndexes)
				fopts.SkipReports = true
				fopts.CompressWorkload = true
				fopts.Derive = derive.On
				fopts.StorageBudget = rcons.StorageBudget
				fopts.Aligned = rcons.Aligned
				fopts.UserConfig = rcons.Pinned
				fopts.Vetoed = rcons.Vetoed
				fopts.SliceWeights = rcons.SliceWeights
				start = time.Now()
				fullRec, err = core.Tune(fsrv, fw, fopts)
				fullWall = time.Since(start)
				if err != nil {
					return rows, fmt.Errorf("revise %s/%s: fresh run: %w", tg.name, rc.name, err)
				}
				fullCalls = fullRec.WhatIfCalls
			}

			if recFingerprint(rev) != recFingerprint(fullRec) || rev.Improvement != fullRec.Improvement {
				return rows, fmt.Errorf(
					"revision drift: %s/%s revision disagrees with a fresh full run (improvement %.6f vs %.6f):\n%s\nvs\n%s",
					tg.name, rc.name, rev.Improvement, fullRec.Improvement,
					recFingerprint(rev), recFingerprint(fullRec))
			}
			rows = append(rows, ReviseRow{
				DB:          tg.name,
				Case:        rc.name,
				WallRevise:  revWall,
				WallFull:    fullWall,
				ReviseCalls: rev.WhatIfCalls,
				FullCalls:   fullCalls,
				Improvement: rev.Improvement,
				Fingerprint: recFingerprint(rev),
			})
		}
	}
	return rows, nil
}

// ReviseString renders the sweep with the per-case revision speedup.
func ReviseString(rows []ReviseRow) string {
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.DB,
			r.Case,
			r.WallRevise.Round(time.Millisecond).String(),
			r.WallFull.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", reviseSpeedup(r)),
			fmt.Sprintf("%d", r.ReviseCalls),
			fmt.Sprintf("%d", r.FullCalls),
			fmt.Sprintf("%.1f%%", 100*r.Improvement),
		})
	}
	return renderTable("Session-revision sweep (revision vs fresh full run, identical recommendations required)",
		[]string{"DB", "Case", "WallRevise", "WallFull", "Speedup", "ReviseCalls", "FullCalls", "Improvement"}, body)
}

// SummarizeRevise flattens the sweep for the -json artifact: two records
// per case — the revision and the fresh full run — matched by the
// "<db>-<case>/revise|full" key so the CI gate locks both call counts (a
// revision regressing from zero calls fails exactly) while wall clocks stay
// under the machine tolerance.
func SummarizeRevise(rows []ReviseRow) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out,
			BenchRecord{
				Experiment:     "revise",
				Case:           r.DB + "-" + r.Case + "/revise",
				WallMS:         ms(r.WallRevise),
				WhatIfCalls:    r.ReviseCalls,
				ImprovementPct: 100 * r.Improvement,
			},
			BenchRecord{
				Experiment:     "revise",
				Case:           r.DB + "-" + r.Case + "/full",
				WallMS:         ms(r.WallFull),
				WhatIfCalls:    r.FullCalls,
				ImprovementPct: 100 * r.Improvement,
			})
	}
	return out
}
