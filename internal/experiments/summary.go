package experiments

import (
	"encoding/json"
	"os"
	"time"
)

// BenchRecord is one machine-readable benchmark result: either a whole
// experiment (Case empty, WallMS set by the harness) or one of its cases
// (quality expressed as an improvement percentage over the baseline the
// experiment defines). dtabench -json collects these for CI artifacts and
// regression tracking.
type BenchRecord struct {
	Experiment     string  `json:"experiment"`
	Case           string  `json:"case,omitempty"`
	WallMS         int64   `json:"wallMS,omitempty"`
	WhatIfCalls    int64   `json:"whatIfCalls,omitempty"`
	ImprovementPct float64 `json:"improvementPct,omitempty"`
	// Events is the raw trace size of an ingest-sweep case.
	Events int64 `json:"events,omitempty"`
	// AllocMB is the bytes allocated during streaming ingestion (MB) — the
	// bounded-memory claim the ingest sweep exists to demonstrate.
	AllocMB float64 `json:"allocMB,omitempty"`
	// Ratio is the workload compression ratio (raw events per kept
	// representative) an ingest-sweep case achieved — or, for derive-sweep
	// cases, the what-if call reduction factor over the derive=off run.
	Ratio float64 `json:"ratio,omitempty"`
	// DerivedEvals is the number of cost evaluations the derivation layer
	// answered without an optimizer call (derive-sweep and parallel-sweep
	// cases with derivation enabled).
	DerivedEvals int64 `json:"derivedEvals,omitempty"`
}

// WriteBenchJSON writes the records as an indented JSON array.
func WriteBenchJSON(path string, records []BenchRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func ms(d time.Duration) int64 { return d.Milliseconds() }

// SummarizeTable2 flattens the customer-workload comparison (§7.1).
func SummarizeTable2(rows []Table2Row) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out, BenchRecord{
			Experiment:     "table2",
			Case:           r.Name,
			WallMS:         ms(r.TuningTime),
			ImprovementPct: 100 * r.QualityDTA,
		})
	}
	return out
}

// SummarizeSec72 reports the expected-vs-actual improvement run (§7.2).
func SummarizeSec72(r *Sec72Result) []BenchRecord {
	return []BenchRecord{
		{Experiment: "sec72", Case: "expected", ImprovementPct: 100 * r.ExpectedImprovement},
		{Experiment: "sec72", Case: "actual", ImprovementPct: 100 * r.ActualImprovement},
	}
}

// SummarizeFigure3 reports the production-overhead reduction of tuning
// through a test server (§7.3) as the improvement percentage.
func SummarizeFigure3(rows []Figure3Row) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out, BenchRecord{
			Experiment:     "figure3",
			Case:           r.Name,
			WhatIfCalls:    r.ProdWhatIfDirect,
			ImprovementPct: 100 * r.Reduction,
		})
	}
	return out
}

// SummarizeTable3 reports workload compression (§7.4): the compressed run's
// quality and time per case.
func SummarizeTable3(rows []Table3Row) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out, BenchRecord{
			Experiment:     "table3",
			Case:           r.Name,
			WallMS:         ms(r.TimeCompress),
			ImprovementPct: 100 * r.QualityCompress,
		})
	}
	return out
}

// SummarizeSec75 reports reduced statistics (§7.5): quality with the
// technique on, per case.
func SummarizeSec75(rows []Sec75Row) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out, BenchRecord{
			Experiment:     "sec75",
			Case:           r.Name,
			ImprovementPct: 100 * r.QualityReduced,
		})
	}
	return out
}

// SummarizeFigure45 reports the DTA side of the DTA-vs-ITW comparison
// (§7.6).
func SummarizeFigure45(rows []Figure45Row) []BenchRecord {
	var out []BenchRecord
	for _, r := range rows {
		out = append(out, BenchRecord{
			Experiment:     "figure45",
			Case:           r.Name,
			WallMS:         ms(r.TimeDTA),
			WhatIfCalls:    r.CallsDTA,
			ImprovementPct: 100 * r.QualityDTA,
		})
	}
	return out
}

// SummarizeSec3 reports the integrated-vs-staged comparison (§3).
func SummarizeSec3(r *Sec3Result) []BenchRecord {
	return []BenchRecord{
		{Experiment: "sec3", Case: "integrated", ImprovementPct: 100 * r.IntegratedQuality},
		{Experiment: "sec3", Case: "staged", ImprovementPct: 100 * r.StagedQuality},
	}
}

// SummarizeAblation reports one ablation's technique-on run.
func SummarizeAblation(r *AblationRow) []BenchRecord {
	return []BenchRecord{{
		Experiment:     "ablations",
		Case:           r.Name,
		WallMS:         ms(r.TimeOn),
		WhatIfCalls:    r.CallsOn,
		ImprovementPct: 100 * r.QualityOn,
	}}
}
