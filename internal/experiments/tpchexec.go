package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datagen/tpch"
	"repro/internal/engine"
	"repro/internal/sqlparser"
)

// Sec72Result reproduces §7.2: evaluation on the TPC-H benchmark workload.
// The paper (at 10GB) reports an expected (optimizer-estimated) improvement
// of 88% and an actual improvement in execution time of 83% — the point
// being that the two track each other closely without being equal.
type Sec72Result struct {
	ExpectedImprovement float64
	ActualImprovement   float64
	RawExecTime         time.Duration
	TunedExecTime       time.Duration
	Structures          int
	PerQuery            []Sec72Query
}

// Sec72Query is one query's before/after actual runtime.
type Sec72Query struct {
	Query     int
	RawTime   time.Duration
	TunedTime time.Duration
}

// Sec72 tunes the 22-query workload (storage budget 3× raw data), then
// implements the recommendation in the engine and measures warm-run
// execution times under both configurations. Per the paper's methodology,
// each query runs WarmRuns times; the highest and lowest readings are
// discarded and the rest averaged.
func Sec72(cfg Config) (*Sec72Result, error) {
	srv, db, err := newTPCHServer(cfg.TPCHExecSF, cfg.Seed)
	if err != nil {
		return nil, err
	}
	w := tpch.Workload()
	raw := tpch.ConstraintConfig(srv.Cat)

	opts := cfg.tuneOpts(srv, core.FeatureAll)
	opts.BaseConfig = raw
	rec, err := core.Tune(srv, w, opts)
	if err != nil {
		return nil, err
	}

	res := &Sec72Result{
		ExpectedImprovement: rec.Improvement,
		Structures:          len(rec.NewStructures),
	}

	rawPrep, err := db.Materialize(raw)
	if err != nil {
		return nil, err
	}
	tunedPrep, err := db.Materialize(rec.Config)
	if err != nil {
		return nil, err
	}

	stmts := make([]sqlparser.Statement, 0, len(w.Events))
	for _, e := range w.Events {
		stmts = append(stmts, e.Stmt)
	}
	for qi, stmt := range stmts {
		rawT, err := warmRunTime(rawPrep, stmt, cfg.WarmRuns)
		if err != nil {
			return nil, fmt.Errorf("Q%d raw: %w", qi+1, err)
		}
		tunedT, err := warmRunTime(tunedPrep, stmt, cfg.WarmRuns)
		if err != nil {
			return nil, fmt.Errorf("Q%d tuned: %w", qi+1, err)
		}
		res.PerQuery = append(res.PerQuery, Sec72Query{Query: qi + 1, RawTime: rawT, TunedTime: tunedT})
		res.RawExecTime += rawT
		res.TunedExecTime += tunedT
	}
	if res.RawExecTime > 0 {
		res.ActualImprovement = 1 - float64(res.TunedExecTime)/float64(res.RawExecTime)
	}
	return res, nil
}

// warmRunTime executes the statement n times (after one warm-up run),
// discards the highest and lowest readings, and averages the rest.
func warmRunTime(p *engine.Prepared, stmt sqlparser.Statement, n int) (time.Duration, error) {
	if n < 3 {
		n = 3
	}
	if _, err := p.Exec(stmt); err != nil { // warm-up
		return 0, err
	}
	times := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := p.Exec(stmt); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	times = times[1 : len(times)-1] // drop lowest and highest
	var sum time.Duration
	for _, t := range times {
		sum += t
	}
	return sum / time.Duration(len(times)), nil
}

// String renders the §7.2 summary.
func (r *Sec72Result) String() string {
	rows := [][]string{{
		"TPC-H 22 queries",
		pct(r.ExpectedImprovement),
		pct(r.ActualImprovement),
		r.RawExecTime.Round(time.Millisecond).String(),
		r.TunedExecTime.Round(time.Millisecond).String(),
		fmt.Sprint(r.Structures),
	}}
	return renderTable("Section 7.2: TPC-H expected vs actual improvement (paper: 88% expected, 83% actual)",
		[]string{"Workload", "Expected", "Actual", "Raw exec", "Tuned exec", "#structures"}, rows)
}
