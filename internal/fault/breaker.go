package fault

import "sync/atomic"

// BreakerConfig parameterizes a Breaker.
type BreakerConfig struct {
	// FailureRate is the failure fraction (over all recorded attempts) at
	// which the breaker trips (≤ 0 → 0.05).
	FailureRate float64
	// MinSamples is the minimum number of recorded attempts before the
	// rate is evaluated — a breaker must not trip on the first unlucky
	// call (≤ 0 → 64).
	MinSamples int64
}

// withDefaults resolves zero fields to the package defaults.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureRate <= 0 {
		c.FailureRate = 0.05
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 64
	}
	return c
}

// Breaker is a one-way failure-rate circuit breaker: Record every attempt's
// outcome, and once at least MinSamples attempts have been recorded with a
// failure fraction of FailureRate or more, Tripped flips to true and stays
// there. The tuning pipeline maps a tripped breaker to degraded mode —
// stop searching, return the best design found so far — so the breaker
// deliberately never closes again within a session: a backend that already
// proved flaky mid-search cannot be trusted for the remainder.
//
// A nil Breaker records nothing and never trips. All methods are safe for
// concurrent use by pool workers.
type Breaker struct {
	cfg      BreakerConfig
	attempts atomic.Int64
	failures atomic.Int64
	open     atomic.Bool
}

// NewBreaker builds a breaker (zero config fields get defaults: 5% failure
// rate over at least 64 attempts).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Record observes one attempt outcome and trips the breaker when the
// failure rate crosses the threshold.
func (b *Breaker) Record(ok bool) {
	if b == nil {
		return
	}
	n := b.attempts.Add(1)
	f := b.failures.Load()
	if !ok {
		f = b.failures.Add(1)
	}
	if n >= b.cfg.MinSamples && float64(f) >= b.cfg.FailureRate*float64(n) {
		b.open.Store(true)
	}
}

// Tripped reports whether the breaker has opened.
func (b *Breaker) Tripped() bool { return b != nil && b.open.Load() }

// Counts snapshots the recorded attempts and failures.
func (b *Breaker) Counts() (attempts, failures int64) {
	if b == nil {
		return 0, 0
	}
	return b.attempts.Load(), b.failures.Load()
}
