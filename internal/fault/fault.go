// Package fault is the tuning system's robustness substrate: deterministic,
// seedable fault injection (so failure paths are testable in CI), retry with
// exponential backoff and per-attempt timeouts around expensive backend
// calls, and a failure-rate circuit breaker that lets a tuning session
// degrade gracefully instead of crashing.
//
// The paper's advisor is designed to run for hours against production
// servers under a tuning time bound (§2, §6): it must tolerate flaky
// what-if optimizer calls, slow test-server imports, and process restarts
// while still returning the best recommendation found so far (the anytime
// property of §2.1). This package supplies the mechanisms; internal/core
// threads them through the pipeline (retrying what-if calls, tripping a
// session into degraded mode) and internal/service persists checkpoints so
// a killed server resumes in-flight sessions.
//
// Everything here is nil-tolerant: a nil *Injector injects nothing and a
// nil *Breaker never trips, so production paths pay nothing when fault
// handling is unconfigured.
package fault

// Well-known injection sites. An Injector accepts arbitrary site names;
// these are the ones the tuning pipeline consults.
const (
	// SiteWhatIf is one what-if optimizer call (whatif.Server.WhatIf and
	// the evaluator's leader path).
	SiteWhatIf = "whatif"
	// SiteStats is one statistics build (whatif.Server sampling its data).
	SiteStats = "stats"
	// SiteImport is one statistics import onto a test server (§5.3 Step 2).
	SiteImport = "import"
)
