package fault

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("seed=42;whatif:error:0.10;import:latency:0.5:5ms;stats:panic:0.01")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 42 || len(spec.Rules) != 3 {
		t.Fatalf("got %+v", spec)
	}
	if spec.Rules[1].Kind != KindLatency || spec.Rules[1].Delay != 5*time.Millisecond {
		t.Fatalf("latency rule: %+v", spec.Rules[1])
	}
	if got := spec.Sites(); len(got) != 3 || got[0] != "import" {
		t.Fatalf("sites: %v", got)
	}
	// Round-trip through String.
	spec2, err := ParseSpec(spec.String())
	if err != nil || spec2.String() != spec.String() {
		t.Fatalf("round trip: %v %q vs %q", err, spec2.String(), spec.String())
	}

	for _, bad := range []string{
		"whatif:error",          // missing probability
		"whatif:error:2",        // probability out of range
		"whatif:error:0.5:10ms", // error takes no argument
		"whatif:latency:0.5",    // latency needs a duration
		"whatif:latency:0.5:x",  // bad duration
		"whatif:frob:0.5",       // unknown kind
		"seed=abc",              // bad seed
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}

	empty, err := ParseSpec("")
	if err != nil || NewInjector(empty) != nil {
		t.Fatalf("empty spec should build the nil injector (err %v)", err)
	}
}

func TestInjectorDeterministicAndCounted(t *testing.T) {
	spec, err := ParseSpec("seed=7;whatif:error:0.25")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (errs int) {
		in := NewInjector(spec)
		for i := 0; i < 1000; i++ {
			if in.Inject(SiteWhatIf) != nil {
				errs++
			}
		}
		if got := in.Counts()["whatif/error"]; got != int64(errs) {
			t.Fatalf("counts %d vs observed %d", got, errs)
		}
		return errs
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	if a < 200 || a > 300 {
		t.Fatalf("25%% rate produced %d/1000 errors", a)
	}
}

func TestInjectorMetricsAndNil(t *testing.T) {
	spec, _ := ParseSpec("seed=1;stats:error:1.0")
	in := NewInjector(spec)
	reg := obs.NewRegistry()
	in.SetMetrics(reg)
	if err := in.Inject(SiteStats); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if in.Inject("elsewhere") != nil {
		t.Fatal("unruled site injected")
	}
	snap := reg.Snapshot()
	found := false
	for _, s := range snap {
		if s.Name == "dta_faults_injected_total" {
			found = true
		}
	}
	if !found {
		t.Fatal("dta_faults_injected_total not registered")
	}

	var nilInj *Injector
	if nilInj.Inject(SiteWhatIf) != nil || nilInj.Counts() != nil {
		t.Fatal("nil injector should no-op")
	}
	nilInj.SetMetrics(reg)
}

func TestInjectorPanics(t *testing.T) {
	spec, _ := ParseSpec("seed=1;whatif:panic:1.0")
	in := NewInjector(spec)
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok || pv.Site != SiteWhatIf {
			t.Fatalf("recovered %v", r)
		}
	}()
	in.Inject(SiteWhatIf)
	t.Fatal("no panic")
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	var outcomes []bool
	v, err := Do(context.Background(), Policy{MaxAttempts: 5, BaseDelay: time.Microsecond},
		func() (int, error) {
			calls++
			if calls < 3 {
				return 0, fmt.Errorf("flaky %d", calls)
			}
			return 99, nil
		},
		func(attempt int, err error) { outcomes = append(outcomes, err == nil) })
	if err != nil || v != 99 || calls != 3 {
		t.Fatalf("v=%d err=%v calls=%d", v, err, calls)
	}
	want := []bool{false, false, true}
	for i, ok := range want {
		if outcomes[i] != ok {
			t.Fatalf("outcomes %v", outcomes)
		}
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	_, err := Do(context.Background(), Policy{MaxAttempts: 3, BaseDelay: time.Microsecond},
		func() (int, error) { calls++; return 0, boom }, nil)
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoRecoversPanics(t *testing.T) {
	calls := 0
	v, err := Do(context.Background(), Policy{MaxAttempts: 2, BaseDelay: time.Microsecond},
		func() (string, error) {
			calls++
			if calls == 1 {
				panic(PanicValue{Site: SiteWhatIf})
			}
			return "ok", nil
		}, nil)
	if err != nil || v != "ok" || calls != 2 {
		t.Fatalf("v=%q err=%v calls=%d", v, err, calls)
	}
}

func TestDoHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, err := Do(ctx, Policy{}, func() (int, error) { calls++; return 0, errors.New("x") }, nil)
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoAttemptTimeout(t *testing.T) {
	// calls is atomic: the timed-out first attempt's goroutine is abandoned,
	// not killed, and races the second attempt on anything it still touches.
	var calls atomic.Int64
	release := make(chan struct{})
	defer close(release)
	_, err := Do(context.Background(),
		Policy{MaxAttempts: 2, BaseDelay: time.Microsecond, Timeout: 5 * time.Millisecond},
		func() (int, error) {
			if calls.Add(1) == 1 {
				<-release // hang well past the timeout
			}
			return 7, nil
		}, nil)
	if err != nil {
		t.Fatalf("second attempt should succeed: %v", err)
	}
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureRate: 0.5, MinSamples: 10})
	for i := 0; i < 9; i++ {
		b.Record(i%2 == 0)
	}
	if b.Tripped() {
		t.Fatal("tripped below MinSamples")
	}
	b.Record(false) // 10 samples, 5 failures = 50%
	if !b.Tripped() {
		t.Fatal("should trip at the threshold")
	}
	att, fail := b.Counts()
	if att != 10 || fail != 5 {
		t.Fatalf("counts %d/%d", att, fail)
	}

	var nb *Breaker
	nb.Record(false)
	if nb.Tripped() {
		t.Fatal("nil breaker tripped")
	}
}
