package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrInjected is the error returned by call sites where an error rule
// fired. Callers can distinguish injected failures from real backend
// failures with errors.Is; the retry layer treats both the same.
var ErrInjected = errors.New("fault: injected error")

// PanicValue is the value an injected panic carries, so recover sites can
// tell an injected panic from a real bug.
type PanicValue struct {
	// Site is the injection site that panicked.
	Site string
}

// Error renders the panic value (it also satisfies error so the retry
// layer's recover can hand it back as one).
func (p PanicValue) Error() string { return "fault: injected panic at " + p.Site }

// Injector draws from a seeded random source to decide, per call, whether
// a site's rules fire. It is safe for concurrent use; the draw sequence is
// serialized under a mutex, so a single-goroutine run with a fixed seed is
// exactly reproducible (concurrent runs reproduce the same marginal rates
// but may interleave draws differently).
//
// A nil Injector is valid and injects nothing.
type Injector struct {
	spec *Spec

	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string][]Rule
	count map[string]int64 // "site/kind" → times fired

	metrics map[string]*obs.Counter // cached registry series, same keys
	reg     *obs.Registry
}

// NewInjector builds an injector for the spec (nil spec or no rules →
// returns nil, the inject-nothing injector).
func NewInjector(spec *Spec) *Injector {
	if spec == nil || len(spec.Rules) == 0 {
		return nil
	}
	in := &Injector{
		spec:  spec,
		rng:   rand.New(rand.NewSource(spec.Seed)),
		rules: map[string][]Rule{},
		count: map[string]int64{},
	}
	for _, r := range spec.Rules {
		in.rules[r.Site] = append(in.rules[r.Site], r)
	}
	return in
}

// SetMetrics attaches a registry: every injected fault increments
// dta_faults_injected_total{site,kind}.
func (in *Injector) SetMetrics(reg *obs.Registry) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.reg = reg
	in.metrics = map[string]*obs.Counter{}
}

// Inject consults the site's rules in spec order, drawing once per rule.
// Latency rules that fire sleep (outside the injector lock, after all
// draws); if an error rule fired Inject returns ErrInjected, and if a
// panic rule fired it panics with a PanicValue. Nil injector: no-op.
func (in *Injector) Inject(site string) error {
	if in == nil {
		return nil
	}
	var delay time.Duration
	injectErr := false
	injectPanic := false
	in.mu.Lock()
	for _, r := range in.rules[site] {
		if in.rng.Float64() >= r.Probability {
			continue
		}
		in.fireLocked(site, r.Kind)
		switch r.Kind {
		case KindLatency:
			delay += r.Delay
		case KindError:
			injectErr = true
		case KindPanic:
			injectPanic = true
		}
	}
	in.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if injectPanic {
		panic(PanicValue{Site: site})
	}
	if injectErr {
		return fmt.Errorf("%w (site %s)", ErrInjected, site)
	}
	return nil
}

// fireLocked records one injected fault; the caller holds in.mu.
func (in *Injector) fireLocked(site string, kind Kind) {
	key := site + "/" + string(kind)
	in.count[key]++
	if in.reg == nil {
		return
	}
	c, ok := in.metrics[key]
	if !ok {
		c = in.reg.Counter("dta_faults_injected_total",
			"Faults injected by the seeded fault injector, by site and kind.",
			"site", site, "kind", string(kind))
		in.metrics[key] = c
	}
	c.Inc()
}

// Spec returns the spec the injector was built from (nil for the nil
// injector) — what lets a service persist and later recreate a session's
// fault configuration. The draw-sequence position is not part of it: a
// recreated injector restarts its seeded sequence.
func (in *Injector) Spec() *Spec {
	if in == nil {
		return nil
	}
	return in.spec
}

// Counts snapshots how many faults have fired, keyed "site/kind".
func (in *Injector) Counts() map[string]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.count))
	for k, v := range in.count {
		out[k] = v
	}
	return out
}
