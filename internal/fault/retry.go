package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrAttemptTimeout is returned (and then possibly retried) when one
// attempt exceeded the policy's per-attempt Timeout. The attempt's
// goroutine is abandoned — its eventual result is discarded — which is the
// only way to bound an in-process optimizer call that cannot observe a
// context.
var ErrAttemptTimeout = errors.New("fault: attempt timed out")

// Policy parameterizes Do: how many attempts, how the backoff between them
// grows, and how long a single attempt may run.
type Policy struct {
	// MaxAttempts is the total number of attempts, first try included
	// (≤ 0 → 4).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (≤ 0 → 2ms); each
	// subsequent backoff doubles, with ±50% jitter.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (≤ 0 → 250ms).
	MaxDelay time.Duration
	// Timeout bounds one attempt's wall time (0 = unbounded). A timed-out
	// attempt counts as a failed attempt and is retried.
	Timeout time.Duration
}

// WithDefaults resolves zero fields to the package defaults.
func (p Policy) WithDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 2 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	return p
}

// backoff returns the sleep before retry n (n = 1 for the first retry):
// BaseDelay·2^(n−1) capped at MaxDelay, with ±50% jitter so synchronized
// retry storms across workers spread out.
func (p Policy) backoff(n int) time.Duration {
	d := p.BaseDelay << (n - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	half := int64(d) / 2
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(2*half))
}

// result carries one attempt's outcome across the timeout boundary.
type result[T any] struct {
	v   T
	err error
}

// Do runs fn under the policy: up to MaxAttempts attempts with exponential
// backoff between them, each attempt bounded by Timeout. Panics inside fn
// (including injected ones) are recovered into errors and retried like any
// failure. onResult, when non-nil, observes every attempt's outcome in
// order (attempt numbering from 1) — the hook the circuit breaker and the
// retry metrics hang off. Do stops early when ctx is done, returning the
// context error (a cancelled tuning session must not sit out backoff
// sleeps).
func Do[T any](ctx context.Context, p Policy, fn func() (T, error), onResult func(attempt int, err error)) (T, error) {
	p = p.WithDefaults()
	var zero T
	var lastErr error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		v, err := runAttempt(p, fn)
		if onResult != nil {
			onResult(attempt, err)
		}
		if err == nil {
			return v, nil
		}
		lastErr = err
		if attempt == p.MaxAttempts {
			break
		}
		select {
		case <-time.After(p.backoff(attempt)):
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
	return zero, fmt.Errorf("fault: %d attempts failed: %w", p.MaxAttempts, lastErr)
}

// runAttempt runs one recovered attempt, enforcing the per-attempt timeout.
// Results travel by value through a channel, so an abandoned (timed-out)
// attempt cannot race the caller.
func runAttempt[T any](p Policy, fn func() (T, error)) (T, error) {
	if p.Timeout <= 0 {
		return recovered(fn)
	}
	ch := make(chan result[T], 1)
	go func() {
		v, err := recovered(fn)
		ch <- result[T]{v, err}
	}()
	timer := time.NewTimer(p.Timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-timer.C:
		var zero T
		return zero, fmt.Errorf("%w after %s", ErrAttemptTimeout, p.Timeout)
	}
}

// recovered invokes fn, converting a panic (e.g. an injected one) into an
// error so the retry loop and the circuit breaker see a plain failure.
func recovered[T any](fn func() (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("fault: recovered panic: %w", e)
			} else {
				err = fmt.Errorf("fault: recovered panic: %v", r)
			}
		}
	}()
	return fn()
}
