package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind is the flavour of an injected fault.
type Kind string

// Fault kinds an injection rule can specify.
const (
	// KindError makes the call site return ErrInjected.
	KindError Kind = "error"
	// KindLatency makes the call site sleep for the rule's Delay.
	KindLatency Kind = "latency"
	// KindPanic makes the call site panic (the retry layer recovers it).
	KindPanic Kind = "panic"
)

// Rule is one injection rule: at Site, with Probability per call, inject
// Kind. Latency rules carry the Delay to sleep.
type Rule struct {
	Site        string
	Kind        Kind
	Probability float64
	Delay       time.Duration
}

// String renders the rule in spec grammar form.
func (r Rule) String() string {
	s := fmt.Sprintf("%s:%s:%g", r.Site, r.Kind, r.Probability)
	if r.Kind == KindLatency {
		s += ":" + r.Delay.String()
	}
	return s
}

// Spec is a parsed fault specification: a seed plus a list of rules.
//
// Grammar (the -fault-spec flag and the create API's options.faultSpec):
//
//	spec  = item *( ";" item )
//	item  = "seed=" int64          (default 1)
//	      | site ":" kind ":" prob [ ":" duration ]
//	site  = "whatif" | "stats" | "import" | any identifier
//	kind  = "error" | "latency" | "panic"
//	prob  = float in [0, 1]
//
// The duration argument is required for latency rules and rejected for the
// others. Example:
//
//	seed=42;whatif:error:0.10;import:latency:0.5:5ms
type Spec struct {
	Seed  int64
	Rules []Rule
}

// ParseSpec parses the fault-spec grammar. An empty string yields an empty
// spec (whose Injector injects nothing).
func ParseSpec(s string) (*Spec, error) {
	spec := &Spec{Seed: 1}
	for _, item := range strings.Split(s, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(item, "seed="); ok {
			n, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %w", rest, err)
			}
			spec.Seed = n
			continue
		}
		parts := strings.Split(item, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("fault: rule %q is not site:kind:prob[:duration]", item)
		}
		r := Rule{Site: parts[0], Kind: Kind(parts[1])}
		p, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("fault: rule %q has bad probability %q (want 0..1)", item, parts[2])
		}
		r.Probability = p
		switch r.Kind {
		case KindError, KindPanic:
			if len(parts) != 3 {
				return nil, fmt.Errorf("fault: rule %q: %s takes no argument", item, r.Kind)
			}
		case KindLatency:
			if len(parts) != 4 {
				return nil, fmt.Errorf("fault: rule %q: latency needs a duration argument", item)
			}
			d, err := time.ParseDuration(parts[3])
			if err != nil {
				return nil, fmt.Errorf("fault: rule %q: bad duration: %w", item, err)
			}
			r.Delay = d
		default:
			return nil, fmt.Errorf("fault: rule %q has unknown kind %q (want error, latency, panic)", item, parts[1])
		}
		spec.Rules = append(spec.Rules, r)
	}
	return spec, nil
}

// String renders the spec back in grammar form (seed first, rules in order).
func (s *Spec) String() string {
	parts := []string{fmt.Sprintf("seed=%d", s.Seed)}
	for _, r := range s.Rules {
		parts = append(parts, r.String())
	}
	return strings.Join(parts, ";")
}

// Sites lists the distinct sites the spec injects at, sorted.
func (s *Spec) Sites() []string {
	set := map[string]bool{}
	for _, r := range s.Rules {
		set[r.Site] = true
	}
	out := make([]string, 0, len(set))
	for site := range set {
		out = append(out, site)
	}
	sort.Strings(out)
	return out
}
