// Explain reconstructs per-recommended-structure provenance purely from
// journal events: which enumeration greedy step (or the seed) admitted
// the structure at what workload-cost delta, what it beat, which merge
// parents it came from, and which queries' candidate selection wanted it
// (with per-query before/after costs). Nothing here re-derives costs —
// if the journal can't explain a structure (its admitting events were
// overwritten, or index alignment renamed it after the search), the
// provenance says so instead of guessing.
package journal

import (
	"fmt"
	"io"
	"sort"
)

// QueryBenefit is one query that selected a recommended structure (or a
// merge ancestor of it) during candidate selection, with the query's
// candidate-selection cost delta.
type QueryBenefit struct {
	// Query is the workload event index.
	Query int `json:"query"`
	// SQL is the query text.
	SQL string `json:"sql,omitempty"`
	// CostBefore is the query's cost under the mandatory-only base
	// configuration.
	CostBefore float64 `json:"costBefore"`
	// CostAfter is the query's cost under its best candidate subset.
	CostAfter float64 `json:"costAfter"`
	// Gain is the weighted workload-cost gain the query contributed.
	Gain float64 `json:"gain"`
}

// StructureProvenance explains one recommended structure.
type StructureProvenance struct {
	// Structure is the structure key being explained.
	Structure string `json:"structure"`
	// AdmittedBy is "greedy-seed" or "greedy-step" when the enumeration
	// search's journal records admitting the structure, empty when the
	// journal cannot explain it (events overwritten, or the aligned
	// enumeration renamed structures after the search).
	AdmittedBy string `json:"admittedBy,omitempty"`
	// Step is the enumeration growth step that admitted the structure
	// (-1 for the seed, and -1 when unexplained).
	Step int `json:"step"`
	// CostBefore is the workload cost before admission.
	CostBefore float64 `json:"costBefore,omitempty"`
	// CostAfter is the workload cost after admission.
	CostAfter float64 `json:"costAfter,omitempty"`
	// Alternatives counts the candidates evaluated in the admitting
	// step's frontier.
	Alternatives int `json:"alternatives,omitempty"`
	// RunnerUp is the structure the admitting step would have taken
	// otherwise.
	RunnerUp string `json:"runnerUp,omitempty"`
	// RunnerUpCost is the runner-up's workload cost.
	RunnerUpCost float64 `json:"runnerUpCost,omitempty"`
	// MergedFrom lists the leaf (pre-merging) candidate keys the
	// structure was merged from, empty for unmerged candidates.
	MergedFrom []string `json:"mergedFrom,omitempty"`
	// BenefitingQueries lists the queries whose candidate selection
	// chose the structure or one of its merge leaves, by query index.
	BenefitingQueries []QueryBenefit `json:"benefitingQueries,omitempty"`
}

// Explanation is the explain layer's result: provenance for each
// requested structure plus the journal-loss accounting a consumer needs
// to judge completeness.
type Explanation struct {
	// Session is the session (or run) the journal belongs to.
	Session string `json:"session,omitempty"`
	// Structures holds one provenance per requested structure key, in
	// the requested order.
	Structures []StructureProvenance `json:"structures"`
	// DroppedEvents reports journal ring overwrites by kind; non-zero
	// values mean provenance may be incomplete.
	DroppedEvents map[Kind]int64 `json:"droppedEvents,omitempty"`
}

// Explain builds provenance for the given recommended-structure keys
// from a journal's events (as returned by Journal.Events).
func Explain(events []Event, structures []string) *Explanation {
	// Index the event stream once.
	var (
		queryEv  = map[int]Event{}    // query index → query summary event
		candFor  = map[string][]int{} // structure key → query indexes that chose it
		parents  = map[string][]string{}
		admitted = map[string]Event{} // structure key → enumeration seed/step event
	)
	for _, e := range events {
		switch e.Kind {
		case KindQuery:
			queryEv[e.Query] = e
		case KindCandidate:
			if e.Accepted {
				candFor[e.Structure] = append(candFor[e.Structure], e.Query)
			}
		case KindMerge:
			if e.Accepted {
				parents[e.Structure] = append([]string{}, e.Parents...)
			}
		case KindSeed:
			if e.Scope == ScopeEnumeration {
				for _, s := range e.Structures {
					admitted[s] = e
				}
			}
		case KindStep:
			if e.Scope == ScopeEnumeration && e.Accepted {
				admitted[e.Structure] = e
			}
		}
	}

	exp := &Explanation{Structures: make([]StructureProvenance, 0, len(structures))}
	for _, key := range structures {
		p := StructureProvenance{Structure: key, Step: -1}
		if e, ok := admitted[key]; ok {
			p.AdmittedBy = string(e.Kind)
			p.Step = e.Step
			p.CostBefore, p.CostAfter = e.CostBefore, e.CostAfter
			p.Alternatives = e.Alternatives
			p.RunnerUp, p.RunnerUpCost = e.RunnerUp, e.RunnerUpCost
		}
		leaves := mergeLeaves(key, parents)
		if len(leaves) > 1 || (len(leaves) == 1 && leaves[0] != key) {
			p.MergedFrom = leaves
		}
		p.BenefitingQueries = benefitingQueries(leaves, candFor, queryEv)
		exp.Structures = append(exp.Structures, p)
	}
	return exp
}

// mergeLeaves expands a structure key through recorded merge parentage
// down to the pre-merging candidate leaves, cycle-safe and sorted. An
// unmerged key is its own single leaf.
func mergeLeaves(key string, parents map[string][]string) []string {
	seen := map[string]bool{}
	var leaves []string
	var walk func(k string)
	walk = func(k string) {
		if seen[k] {
			return
		}
		seen[k] = true
		ps := parents[k]
		if len(ps) == 0 {
			leaves = append(leaves, k)
			return
		}
		for _, p := range ps {
			walk(p)
		}
	}
	walk(key)
	sort.Strings(leaves)
	return leaves
}

// benefitingQueries unions the queries that selected any of the leaves
// during candidate selection, with each query's recorded cost delta.
func benefitingQueries(leaves []string, candFor map[string][]int, queryEv map[int]Event) []QueryBenefit {
	qset := map[int]bool{}
	for _, leaf := range leaves {
		for _, q := range candFor[leaf] {
			qset[q] = true
		}
	}
	if len(qset) == 0 {
		return nil
	}
	qs := make([]int, 0, len(qset))
	for q := range qset {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	out := make([]QueryBenefit, 0, len(qs))
	for _, q := range qs {
		b := QueryBenefit{Query: q}
		if e, ok := queryEv[q]; ok {
			b.SQL = e.SQL
			b.CostBefore, b.CostAfter, b.Gain = e.CostBefore, e.CostAfter, e.Gain
		}
		out = append(out, b)
	}
	return out
}

// WriteText renders the explanation as the human-readable report
// `dta -explain` prints.
func (x *Explanation) WriteText(w io.Writer) error {
	if len(x.Structures) == 0 {
		_, err := fmt.Fprintln(w, "explain: no recommended structures")
		return err
	}
	for _, p := range x.Structures {
		if _, err := fmt.Fprintf(w, "structure %s\n", p.Structure); err != nil {
			return err
		}
		switch {
		case p.AdmittedBy == string(KindSeed):
			fmt.Fprintf(w, "  admitted by the enumeration seed: workload cost %.2f -> %.2f\n",
				p.CostBefore, p.CostAfter)
		case p.AdmittedBy == string(KindStep):
			fmt.Fprintf(w, "  admitted at enumeration greedy step %d: workload cost %.2f -> %.2f (%d alternatives evaluated)\n",
				p.Step, p.CostBefore, p.CostAfter, p.Alternatives)
			if p.RunnerUp != "" {
				fmt.Fprintf(w, "  runner-up: %s (would reach %.2f)\n", p.RunnerUp, p.RunnerUpCost)
			}
		default:
			fmt.Fprintf(w, "  admission not recorded in the journal (events overwritten, or structure renamed by aligned enumeration)\n")
		}
		if len(p.MergedFrom) > 0 {
			fmt.Fprintf(w, "  merged from:\n")
			for _, m := range p.MergedFrom {
				fmt.Fprintf(w, "    %s\n", m)
			}
		}
		if len(p.BenefitingQueries) > 0 {
			fmt.Fprintf(w, "  benefiting queries:\n")
			for _, q := range p.BenefitingQueries {
				sql := q.SQL
				if len(sql) > 60 {
					sql = sql[:57] + "..."
				}
				fmt.Fprintf(w, "    #%d %s: %.2f -> %.2f (weighted gain %.2f)\n",
					q.Query, sql, q.CostBefore, q.CostAfter, q.Gain)
			}
		}
	}
	if len(x.DroppedEvents) > 0 {
		if _, err := fmt.Fprintf(w, "warning: journal dropped events (%v); provenance may be incomplete\n", x.DroppedEvents); err != nil {
			return err
		}
	}
	return nil
}
