package journal

import (
	"bytes"
	"strings"
	"testing"
)

// synthJournal builds an event stream modeling a small but complete
// pipeline: two queries select candidates, two candidates merge, the
// enumeration greedy seeds with one structure and accepts the merged one
// at step 1.
func synthJournal() []Event {
	var evs []Event
	seq := int64(0)
	add := func(e Event) {
		seq++
		e.Seq = seq
		evs = append(evs, e)
	}

	q0 := Ev(KindQuery)
	q0.Query, q0.SQL = 0, "SELECT a FROM t WHERE a = 1"
	q0.CostBefore, q0.CostAfter, q0.Gain = 100, 40, 60
	add(q0)

	c0 := Ev(KindCandidate)
	c0.Query, c0.Structure, c0.Accepted, c0.Gain = 0, "ix:t(a)", true, 60
	add(c0)
	c0r := Ev(KindCandidate)
	c0r.Query, c0r.Structure, c0r.Accepted = 0, "ix:t(z)", false
	add(c0r)

	q1 := Ev(KindQuery)
	q1.Query, q1.SQL = 1, "SELECT b FROM t WHERE b = 2"
	q1.CostBefore, q1.CostAfter, q1.Gain = 80, 30, 50
	add(q1)
	c1 := Ev(KindCandidate)
	c1.Query, c1.Structure, c1.Accepted, c1.Gain = 1, "ix:t(b)", true, 50
	add(c1)

	m := Ev(KindMerge)
	m.Structure, m.Parents, m.Accepted = "ix:t(a,b)", []string{"ix:t(a)", "ix:t(b)"}, true
	add(m)

	seed := Ev(KindSeed)
	seed.Scope, seed.Structures, seed.Accepted = "enumeration", []string{"ix:u(c)"}, true
	seed.CostBefore, seed.CostAfter = 180, 150
	add(seed)

	st := Ev(KindStep)
	st.Scope, st.Step, st.Structure, st.Accepted = "enumeration", 1, "ix:t(a,b)", true
	st.CostBefore, st.CostAfter, st.Alternatives = 150, 90, 3
	st.RunnerUp, st.RunnerUpCost = "ix:t(a)", 110
	add(st)

	return evs
}

func TestExplainStepAdmissionWithMergeLineage(t *testing.T) {
	exp := Explain(synthJournal(), []string{"ix:t(a,b)"})
	if len(exp.Structures) != 1 {
		t.Fatalf("structures: %d, want 1", len(exp.Structures))
	}
	p := exp.Structures[0]
	if p.AdmittedBy != "greedy-step" || p.Step != 1 {
		t.Fatalf("AdmittedBy=%q Step=%d, want greedy-step/1", p.AdmittedBy, p.Step)
	}
	if p.CostBefore != 150 || p.CostAfter != 90 || p.Alternatives != 3 {
		t.Errorf("costs/alternatives = %v/%v/%d", p.CostBefore, p.CostAfter, p.Alternatives)
	}
	if p.RunnerUp != "ix:t(a)" || p.RunnerUpCost != 110 {
		t.Errorf("runner-up = %q/%v", p.RunnerUp, p.RunnerUpCost)
	}
	if len(p.MergedFrom) != 2 || p.MergedFrom[0] != "ix:t(a)" || p.MergedFrom[1] != "ix:t(b)" {
		t.Errorf("MergedFrom = %v", p.MergedFrom)
	}
	// Benefiting queries are the union over the merge leaves.
	if len(p.BenefitingQueries) != 2 {
		t.Fatalf("BenefitingQueries = %v, want both queries", p.BenefitingQueries)
	}
	if q := p.BenefitingQueries[0]; q.Query != 0 || q.CostBefore != 100 || q.CostAfter != 40 || q.Gain != 60 || q.SQL == "" {
		t.Errorf("query 0 benefit = %+v", q)
	}
	if q := p.BenefitingQueries[1]; q.Query != 1 || q.Gain != 50 {
		t.Errorf("query 1 benefit = %+v", q)
	}
}

func TestExplainSeedAdmission(t *testing.T) {
	exp := Explain(synthJournal(), []string{"ix:u(c)"})
	p := exp.Structures[0]
	if p.AdmittedBy != "greedy-seed" || p.Step != -1 {
		t.Fatalf("AdmittedBy=%q Step=%d, want greedy-seed/-1", p.AdmittedBy, p.Step)
	}
	if p.CostBefore != 180 || p.CostAfter != 150 {
		t.Errorf("seed costs = %v -> %v", p.CostBefore, p.CostAfter)
	}
	if len(p.MergedFrom) != 0 {
		t.Errorf("unmerged structure has MergedFrom = %v", p.MergedFrom)
	}
}

func TestExplainUnexplainedStructure(t *testing.T) {
	exp := Explain(synthJournal(), []string{"ix:never(seen)"})
	p := exp.Structures[0]
	if p.AdmittedBy != "" || p.Step != -1 {
		t.Fatalf("unknown structure explained: %+v", p)
	}
	if len(p.BenefitingQueries) != 0 {
		t.Errorf("unknown structure has benefiting queries: %v", p.BenefitingQueries)
	}
}

// Rejected candidate events and query-scoped greedy events must not leak
// into provenance.
func TestExplainIgnoresRejectedAndQueryScoped(t *testing.T) {
	evs := synthJournal()
	qs := Ev(KindStep)
	qs.Scope, qs.Step, qs.Structure, qs.Accepted = "query", 0, "ix:t(z)", true
	evs = append(evs, qs)

	exp := Explain(evs, []string{"ix:t(z)"})
	p := exp.Structures[0]
	if p.AdmittedBy != "" {
		t.Fatalf("query-scoped step treated as enumeration admission: %+v", p)
	}
	if len(p.BenefitingQueries) != 0 {
		t.Errorf("rejected candidate counted as benefiting: %v", p.BenefitingQueries)
	}
}

func TestMergeLeavesCycleSafe(t *testing.T) {
	parents := map[string][]string{
		"a": {"b", "c"},
		"b": {"a", "d"}, // cycle back to a
	}
	leaves := mergeLeaves("a", parents)
	if len(leaves) != 2 || leaves[0] != "c" || leaves[1] != "d" {
		t.Fatalf("leaves = %v, want [c d]", leaves)
	}
}

func TestWriteText(t *testing.T) {
	exp := Explain(synthJournal(), []string{"ix:t(a,b)", "ix:u(c)", "ix:never(seen)"})
	exp.DroppedEvents = map[Kind]int64{KindDeriveFallback: 7}
	var buf bytes.Buffer
	if err := exp.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"structure ix:t(a,b)",
		"admitted at enumeration greedy step 1",
		"runner-up: ix:t(a)",
		"merged from:",
		"benefiting queries:",
		"admitted by the enumeration seed",
		"admission not recorded in the journal",
		"warning: journal dropped events",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := (&Explanation{}).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no recommended structures") {
		t.Errorf("empty explanation report = %q", buf.String())
	}
}
