// Package journal records the advisor's decisions — not its timings — as
// an append-only, bounded, per-session stream of typed events: which
// candidates each query's Greedy(m,k) kept, what the enumeration greedy
// seeded with and what every growth step accepted or rejected (and what
// the runner-up was), which merge attempts produced kept structures,
// what drop analysis removed, why cost derivation fell back to a real
// optimizer call, and when retries or the circuit breaker fired. Traces
// (internal/obs) answer "where did the time go"; the journal answers
// "why is this structure in the recommendation" — the explain layer
// (explain.go) reconstructs per-structure provenance from these events
// alone.
//
// Emission is purely observational and happens at the pipeline's
// sequential reduction points, so recommendations are byte-identical
// with journaling on or off. Memory is bounded per kind: each kind gets
// its own ring, so a noisy kind (derive fallbacks, retries) can evict
// only its own history, never the scarce decision events explain needs.
package journal

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Kind names a decision-event type. The set is closed: ParseKinds
// rejects unknown names so a typo in a journal filter is a 400, not an
// empty stream.
type Kind string

// The journal's event kinds, one per pipeline decision point.
const (
	// KindPhase marks a pipeline phase transition (paper §2.2 steps).
	KindPhase Kind = "phase"
	// KindQuery summarizes one query's candidate selection: per-query
	// base cost, best found cost, and the weighted gain it contributes.
	KindQuery Kind = "query"
	// KindCandidate records one candidate structure kept or rejected by
	// a query's Greedy(m,k) selection.
	KindCandidate Kind = "candidate"
	// KindSeed records a greedy search's exhaustive seed choice: the
	// best size-≤m subset and the cost it starts from.
	KindSeed Kind = "greedy-seed"
	// KindStep records one greedy growth step: the structure picked (or
	// the best non-improving structure rejected), the cost delta, how
	// many alternatives were evaluated, and the runner-up.
	KindStep Kind = "greedy-step"
	// KindMerge records one candidate-merging attempt: parents, the
	// merged structure, and whether it was kept (not a duplicate).
	KindMerge Kind = "merge"
	// KindDrop records one drop-analysis round: the existing structure
	// whose removal was cheapest and whether it was actually dropped.
	KindDrop Kind = "drop"
	// KindDeriveFallback records one derived-cost bailout to a real
	// optimizer call, with the fallback reason taxonomy from
	// internal/derive (dml, atom, stats-epoch, eval-error, used-escape).
	KindDeriveFallback Kind = "derive-fallback"
	// KindRetry records one failed backend attempt (the retry layer's
	// per-site transitions; successes are not journaled).
	KindRetry Kind = "retry"
	// KindBreaker records the circuit breaker tripping the session into
	// degraded mode.
	KindBreaker Kind = "breaker"
	// KindStop records a non-empty stop reason (time-limit, cancelled,
	// degraded) on the finished recommendation.
	KindStop Kind = "stop"
	// KindRevise records a session-revision start: a search-only re-run
	// against a persisted costed pool under changed constraints.
	KindRevise Kind = "revise"
	// KindDrift records a continuous tuning daemon's drift evaluation at
	// the end of a trace epoch: the score against the last-tuned template
	// distribution (CostAfter), the threshold (CostBefore), and whether a
	// re-tune was triggered (Accepted).
	KindDrift Kind = "drift"
	// KindDelta records one recommendation delta a daemon emitted: the
	// create keys (Structures), the drop keys (Parents — reused, the only
	// other key-set field), the trigger and path (Reason, "trigger/path"),
	// and the delta's churn (Alternatives).
	KindDelta Kind = "delta"
	// KindFeedback records one DBA feedback decision applied to a daemon:
	// the structure key and whether it was accepted (pinned) or vetoed.
	KindFeedback Kind = "feedback"
)

// Scope values for seed/step events: the per-query candidate-selection
// greedy versus the global enumeration greedy.
const (
	// ScopeQuery marks a per-query Greedy(m,k) candidate-selection event.
	ScopeQuery = "query"
	// ScopeEnumeration marks a global enumeration greedy event.
	ScopeEnumeration = "enumeration"
)

// Kinds lists every event kind in its canonical order (the order
// WriteNDJSON groups nothing by — events are sequence-ordered — but the
// order documentation and filters enumerate).
func Kinds() []Kind {
	return []Kind{KindPhase, KindQuery, KindCandidate, KindSeed, KindStep,
		KindMerge, KindDrop, KindDeriveFallback, KindRetry, KindBreaker, KindStop,
		KindRevise, KindDrift, KindDelta, KindFeedback}
}

// Event is one journal entry. Seq and T are stamped by Append; the rest
// is set by the emit site. Query and Step always serialize (-1 = not
// applicable) so consumers never confuse "query 0" with "no query";
// every other field is kind-specific and omitted when empty.
type Event struct {
	// Seq is the session-wide append order (dense per session, gaps only
	// where a ring overwrote history — see Journal.Dropped).
	Seq int64 `json:"seq"`
	// T is the wall-clock append time.
	T time.Time `json:"t"`
	// Kind is the decision-event type.
	Kind Kind `json:"kind"`
	// Scope distinguishes the per-query candidate-selection greedy
	// ("query") from the global enumeration greedy ("enumeration") for
	// seed/step events.
	Scope string `json:"scope,omitempty"`
	// Query is the workload event index the decision concerns, -1 when
	// the decision is not query-scoped.
	Query int `json:"query"`
	// Step is the greedy growth-step number, -1 outside step events
	// (the seed is step -1 by convention too: it precedes step 0).
	Step int `json:"step"`
	// Phase is the pipeline phase name (phase events).
	Phase string `json:"phase,omitempty"`
	// SQL is the query text (query events).
	SQL string `json:"sql,omitempty"`
	// Structure is the structure key the decision concerns.
	Structure string `json:"structure,omitempty"`
	// Structures is a structure-key set: the seed's chosen subset.
	Structures []string `json:"structures,omitempty"`
	// Parents are the two structure keys a merge combined.
	Parents []string `json:"parents,omitempty"`
	// Accepted reports whether the decision kept its subject (candidate
	// chosen, step taken, merge kept, structure dropped). Meaningless on
	// kinds without an accept/reject outcome (phase, retry, stop, ...).
	Accepted bool `json:"accepted"`
	// CostBefore is the relevant cost before the decision (kind-specific:
	// per-query base cost, workload cost before a greedy step, ...).
	CostBefore float64 `json:"costBefore,omitempty"`
	// CostAfter is the corresponding cost after (or the rejected cost).
	CostAfter float64 `json:"costAfter,omitempty"`
	// Gain is the weighted workload-cost gain (query/candidate events).
	Gain float64 `json:"gain,omitempty"`
	// Alternatives counts how many candidates were evaluated alongside
	// the winner in the same reduction.
	Alternatives int `json:"alternatives,omitempty"`
	// RunnerUp is the second-best structure in a greedy step's frontier.
	RunnerUp string `json:"runnerUp,omitempty"`
	// RunnerUpCost is the workload cost the runner-up would have reached.
	RunnerUpCost float64 `json:"runnerUpCost,omitempty"`
	// Reason carries the derive fallback reason, breaker cause, or stop
	// reason.
	Reason string `json:"reason,omitempty"`
	// Site is the backend call site a retry/breaker event fired at.
	Site string `json:"site,omitempty"`
	// Err is the attempt error text (retry events).
	Err string `json:"err,omitempty"`
}

// Ev returns an Event of the given kind with Query and Step pre-set to
// -1 (not applicable); emit sites override what they know.
func Ev(kind Kind) Event { return Event{Kind: kind, Query: -1, Step: -1} }

// DefaultPerKindLimit bounds each kind's ring. 16384 events/kind keeps a
// whole session's decision history for every workload in this repo while
// capping worst-case memory at a few MB per session however long a
// stream of derive fallbacks or retries runs.
const DefaultPerKindLimit = 16384

// ring is one kind's bounded buffer: once full, Append overwrites the
// oldest entry and counts the loss.
type ring struct {
	buf     []Event
	next    int // index the next append writes (buf is full once wrapped)
	full    bool
	dropped int64
}

func (r *ring) append(e Event, limit int) {
	if len(r.buf) < limit && !r.full {
		r.buf = append(r.buf, e)
		if len(r.buf) == limit {
			r.next = 0
			r.full = true
		}
		return
	}
	// Full (or the limit shrank): overwrite the oldest slot.
	if r.next >= len(r.buf) {
		r.next = 0
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	r.full = true
	r.dropped++
}

// Journal is one session's bounded decision-event stream. The zero
// value is not usable; call New. All methods are safe for concurrent
// use and safe on a nil receiver (a nil *Journal is "journaling off"),
// so emit sites never need a guard.
type Journal struct {
	name string

	mu    sync.Mutex
	seq   int64
	limit int
	rings map[Kind]*ring

	mEvents  map[Kind]*obs.Counter
	mDropped map[Kind]*obs.Counter
}

// New creates an empty journal. name labels exports (the session ID).
func New(name string) *Journal {
	return &Journal{name: name, limit: DefaultPerKindLimit, rings: map[Kind]*ring{}}
}

// Name returns the label the journal was created with.
func (j *Journal) Name() string {
	if j == nil {
		return ""
	}
	return j.name
}

// SetLimit changes the per-kind ring bound (minimum 1). Shrinking does
// not retroactively discard history; it only bounds future appends.
func (j *Journal) SetLimit(n int) {
	if j == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	j.mu.Lock()
	j.limit = n
	j.mu.Unlock()
}

// AttachMetrics registers the journal's series on reg:
// dta_journal_events_total{kind} (appends, including later-overwritten
// ones) and dta_journal_dropped_total{kind} (ring overwrites).
func (j *Journal) AttachMetrics(reg *obs.Registry) {
	if j == nil || reg == nil {
		return
	}
	mEvents := map[Kind]*obs.Counter{}
	mDropped := map[Kind]*obs.Counter{}
	for _, k := range Kinds() {
		mEvents[k] = reg.Counter("dta_journal_events_total",
			"Decision-journal events appended, by event kind.", "kind", string(k))
		mDropped[k] = reg.Counter("dta_journal_dropped_total",
			"Decision-journal events overwritten by their kind's bounded ring.", "kind", string(k))
	}
	j.mu.Lock()
	j.mEvents = mEvents
	j.mDropped = mDropped
	j.mu.Unlock()
}

// Append stamps e with the next sequence number and the current time and
// records it in its kind's ring. No-op on a nil journal.
func (j *Journal) Append(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	e.T = time.Now().UTC()
	r := j.rings[e.Kind]
	if r == nil {
		r = &ring{}
		j.rings[e.Kind] = r
	}
	before := r.dropped
	r.append(e, j.limit)
	mEvent, mDrop := j.mEvents[e.Kind], j.mDropped[e.Kind]
	droppedNow := r.dropped > before
	j.mu.Unlock()
	if mEvent != nil {
		mEvent.Inc()
	}
	if droppedNow && mDrop != nil {
		mDrop.Inc()
	}
}

// Len reports how many events are currently retained across all kinds.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, r := range j.rings {
		n += len(r.buf)
	}
	return n
}

// Dropped reports how many events the rings have overwritten in total.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var n int64
	for _, r := range j.rings {
		n += r.dropped
	}
	return n
}

// DroppedByKind reports ring overwrites per kind (kinds with zero drops
// are omitted).
func (j *Journal) DroppedByKind() map[Kind]int64 {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := map[Kind]int64{}
	for k, r := range j.rings {
		if r.dropped > 0 {
			out[k] = r.dropped
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Events returns the retained events, sequence-ordered. With kinds given,
// only those kinds are returned. The result is a copy; mutating it does
// not affect the journal.
func (j *Journal) Events(kinds ...Kind) []Event {
	if j == nil {
		return nil
	}
	var want map[Kind]bool
	if len(kinds) > 0 {
		want = map[Kind]bool{}
		for _, k := range kinds {
			want[k] = true
		}
	}
	j.mu.Lock()
	var out []Event
	for k, r := range j.rings {
		if want != nil && !want[k] {
			continue
		}
		out = append(out, r.buf...)
	}
	j.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// WriteNDJSON streams the retained events to w as one JSON object per
// line, sequence-ordered. filter nil means every kind; otherwise only
// kinds mapped to true are written.
func (j *Journal) WriteNDJSON(w io.Writer, filter map[Kind]bool) error {
	if j == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, e := range j.Events() {
		if filter != nil && !filter[e.Kind] {
			continue
		}
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ParseKinds parses a comma-separated kind list (as in the journal
// endpoint's ?kind= parameter) into a WriteNDJSON filter, rejecting
// unknown kinds. Empty input yields a nil (pass-everything) filter.
func ParseKinds(s string) (map[Kind]bool, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	known := map[Kind]bool{}
	for _, k := range Kinds() {
		known[k] = true
	}
	out := map[Kind]bool{}
	for _, part := range strings.Split(s, ",") {
		k := Kind(strings.TrimSpace(part))
		if k == "" {
			continue
		}
		if !known[k] {
			return nil, fmt.Errorf("unknown journal event kind %q (known: %v)", k, Kinds())
		}
		out[k] = true
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// ctxKey keys the journal in a context, mirroring obs.WithTrace: the
// service (or a CLI flag) attaches one per session, and the pipeline's
// tracker picks it up without any new plumbing through Options.
type ctxKey struct{}

// WithContext returns a context carrying j. Attaching nil is a no-op.
func WithContext(ctx context.Context, j *Journal) context.Context {
	if j == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, j)
}

// FromContext returns the context's journal, or nil (journaling off).
func FromContext(ctx context.Context) *Journal {
	if ctx == nil {
		return nil
	}
	j, _ := ctx.Value(ctxKey{}).(*Journal)
	return j
}
