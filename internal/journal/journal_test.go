package journal

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestAppendStampsSequenceAndTime(t *testing.T) {
	j := New("s1")
	for i := 0; i < 5; i++ {
		e := Ev(KindStep)
		e.Step = i
		j.Append(e)
	}
	evs := j.Events()
	if len(evs) != 5 {
		t.Fatalf("Events: got %d, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i+1) {
			t.Errorf("event %d: Seq = %d, want %d", i, e.Seq, i+1)
		}
		if e.T.IsZero() {
			t.Errorf("event %d: zero timestamp", i)
		}
		if e.Step != i {
			t.Errorf("event %d: Step = %d (events not in append order)", i, e.Step)
		}
	}
}

func TestEvDefaults(t *testing.T) {
	e := Ev(KindPhase)
	if e.Query != -1 || e.Step != -1 {
		t.Fatalf("Ev: Query=%d Step=%d, want -1/-1", e.Query, e.Step)
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	// Query and Step must serialize even at their zero-ish values so a
	// consumer never confuses "query 0" with "not query-scoped".
	for _, want := range []string{`"query":-1`, `"step":-1`, `"accepted":false`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("marshaled event %s missing %s", b, want)
		}
	}
}

// TestPerKindBounds checks the journal's central memory property: each
// kind has its own ring, so a noisy kind can only evict its own history.
func TestPerKindBounds(t *testing.T) {
	j := New("s1")
	j.SetLimit(4)

	// Two scarce decision events first.
	for i := 0; i < 2; i++ {
		e := Ev(KindStep)
		e.Step = i
		j.Append(e)
	}
	// Then a flood of fallbacks far over the limit.
	for i := 0; i < 100; i++ {
		e := Ev(KindDeriveFallback)
		e.Reason = "atom"
		j.Append(e)
	}

	steps := j.Events(KindStep)
	if len(steps) != 2 {
		t.Fatalf("flood of derive-fallback events evicted greedy steps: %d retained, want 2", len(steps))
	}
	fallbacks := j.Events(KindDeriveFallback)
	if len(fallbacks) != 4 {
		t.Fatalf("fallback ring holds %d, want limit 4", len(fallbacks))
	}
	// The ring keeps the newest events.
	if got := fallbacks[len(fallbacks)-1].Seq; got != int64(2+100) {
		t.Errorf("newest fallback Seq = %d, want %d", got, 2+100)
	}
	if got := j.Dropped(); got != 96 {
		t.Errorf("Dropped = %d, want 96", got)
	}
	byKind := j.DroppedByKind()
	if byKind[KindDeriveFallback] != 96 || len(byKind) != 1 {
		t.Errorf("DroppedByKind = %v, want {derive-fallback: 96}", byKind)
	}
	if j.Len() != 6 {
		t.Errorf("Len = %d, want 6", j.Len())
	}
}

func TestEventsFilterAndOrder(t *testing.T) {
	j := New("s1")
	j.Append(Ev(KindPhase))
	j.Append(Ev(KindStep))
	j.Append(Ev(KindPhase))
	j.Append(Ev(KindMerge))

	all := j.Events()
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("Events not sequence-ordered: %d after %d", all[i].Seq, all[i-1].Seq)
		}
	}
	phases := j.Events(KindPhase)
	if len(phases) != 2 {
		t.Fatalf("Events(KindPhase): got %d, want 2", len(phases))
	}
	// The copy must be independent of the journal's storage.
	phases[0].Phase = "mutated"
	if j.Events(KindPhase)[0].Phase == "mutated" {
		t.Error("Events returned a view into the journal's storage")
	}
}

func TestWriteNDJSON(t *testing.T) {
	j := New("s1")
	e := Ev(KindStep)
	e.Structure = "ix:t(a)"
	j.Append(e)
	j.Append(Ev(KindPhase))

	var buf bytes.Buffer
	if err := j.WriteNDJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines+1, err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("NDJSON lines = %d, want 2", lines)
	}

	buf.Reset()
	filter, err := ParseKinds("greedy-step")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteNDJSON(&buf, filter); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(buf.String())
	if strings.Count(out, "\n")+1 != 1 || !strings.Contains(out, "ix:t(a)") {
		t.Fatalf("filtered NDJSON = %q, want the one greedy-step line", out)
	}
}

func TestParseKinds(t *testing.T) {
	f, err := ParseKinds(" candidate , merge ")
	if err != nil {
		t.Fatal(err)
	}
	if !f[KindCandidate] || !f[KindMerge] || len(f) != 2 {
		t.Fatalf("ParseKinds = %v", f)
	}
	if f, err := ParseKinds(""); err != nil || f != nil {
		t.Fatalf("ParseKinds(\"\") = %v, %v; want nil, nil", f, err)
	}
	if _, err := ParseKinds("candidate,bogus"); err == nil {
		t.Fatal("ParseKinds accepted an unknown kind")
	}
}

func TestAttachMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	j := New("s1")
	j.SetLimit(2)
	j.AttachMetrics(reg)
	for i := 0; i < 5; i++ {
		j.Append(Ev(KindRetry))
	}
	var text bytes.Buffer
	reg.WritePrometheus(&text)
	s := text.String()
	if !strings.Contains(s, `dta_journal_events_total{kind="retry"} 5`) {
		t.Errorf("missing events counter in exposition:\n%s", s)
	}
	if !strings.Contains(s, `dta_journal_dropped_total{kind="retry"} 3`) {
		t.Errorf("missing dropped counter in exposition:\n%s", s)
	}
}

func TestNilJournalIsSafe(t *testing.T) {
	var j *Journal
	j.Append(Ev(KindStep)) // must not panic
	j.SetLimit(10)
	j.AttachMetrics(obs.NewRegistry())
	if j.Len() != 0 || j.Dropped() != 0 || j.Events() != nil || j.Name() != "" {
		t.Error("nil journal accessors not zero-valued")
	}
	if j.DroppedByKind() != nil {
		t.Error("nil journal DroppedByKind not nil")
	}
	if err := j.WriteNDJSON(&bytes.Buffer{}, nil); err != nil {
		t.Error(err)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context carries a journal")
	}
	j := New("s1")
	ctx := WithContext(context.Background(), j)
	if FromContext(ctx) != j {
		t.Fatal("journal did not round-trip through the context")
	}
	// Attaching nil is a no-op, and FromContext(nil) is safe.
	if WithContext(ctx, nil) != ctx {
		t.Fatal("WithContext(nil) should return the context unchanged")
	}
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil) should be nil")
	}
}

func TestConcurrentAppend(t *testing.T) {
	j := New("s1")
	j.SetLimit(64)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				j.Append(Ev(KindDeriveFallback))
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := j.Len(); got != 64 {
		t.Fatalf("Len = %d, want 64", got)
	}
	if got := j.Dropped(); got != 8*200-64 {
		t.Fatalf("Dropped = %d, want %d", got, 8*200-64)
	}
	// Sequence numbers must be unique.
	seen := map[int64]bool{}
	for _, e := range j.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate Seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}
