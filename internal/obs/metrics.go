package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 updated with compare-and-swap, the same idiom the
// what-if server uses for its overhead counter.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v (v must be non-negative for the exposition to stay meaningful).
func (c *Counter) Add(v float64) { c.v.Add(v) }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: observations are counted into the
// first bucket whose upper bound is ≥ the value, with an implicit +Inf
// overflow bucket, plus a running sum and count.
type Histogram struct {
	upper  []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	sum    atomicFloat
	n      atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Buckets returns the upper bounds and cumulative counts (excluding +Inf;
// the total is Count).
func (h *Histogram) Buckets() ([]float64, []uint64) {
	out := make([]uint64, len(h.upper))
	var cum uint64
	for i := range h.upper {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return h.upper, out
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExpBuckets returns n upper bounds start, start·factor, start·factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 10µs to ~80s — what-if optimizer calls sit at the
// low end, whole sessions at the high end.
var LatencyBuckets = ExpBuckets(1e-5, 2, 23)

// CountBuckets suits small cardinalities: candidates per query, structures
// per configuration, pool sizes.
var CountBuckets = ExpBuckets(1, 2, 12)

// RatioBuckets suits multiplicative factors spanning 1× to ~32k× — workload
// compression ratios (raw events per kept representative) live here.
var RatioBuckets = ExpBuckets(1, 2, 16)

// metric families by type name used in exposition.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled instance of a family.
type series struct {
	labels []string // alternating key, value pairs, sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric with all of its labeled series.
type family struct {
	name, help, typ string
	buckets         []float64

	mu     sync.Mutex
	series map[string]*series
}

// Registry holds metric families and renders them as Prometheus text
// exposition or a JSON-friendly snapshot. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// familyOf finds or creates a family, panicking on a type conflict (a
// programming error: one name registered as two metric types).
func (r *Registry) familyOf(name, help, typ string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: map[string]*series{}}
		r.fams[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	return f
}

// normalizeLabels validates alternating key/value pairs and returns them
// sorted by key together with the series map key.
func normalizeLabels(labels []string) ([]string, string) {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	n := len(labels) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return labels[2*idx[a]] < labels[2*idx[b]] })
	out := make([]string, 0, len(labels))
	var key strings.Builder
	for _, i := range idx {
		out = append(out, labels[2*i], labels[2*i+1])
		key.WriteString(labels[2*i])
		key.WriteByte(0)
		key.WriteString(labels[2*i+1])
		key.WriteByte(0)
	}
	return out, key.String()
}

func (f *family) seriesOf(labels []string) *series {
	sorted, key := normalizeLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labels: sorted}
		switch f.typ {
		case typeCounter:
			s.c = &Counter{}
		case typeGauge:
			s.g = &Gauge{}
		case typeHistogram:
			h := &Histogram{upper: f.buckets}
			h.counts = make([]atomic.Uint64, len(f.buckets)+1)
			s.h = h
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter for the name and label pairs (alternating
// key, value), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.familyOf(name, help, typeCounter, nil).seriesOf(labels).c
}

// Gauge returns the gauge for the name and label pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.familyOf(name, help, typeGauge, nil).seriesOf(labels).g
}

// Histogram returns the histogram for the name and label pairs. The buckets
// of the first registration of a name win; they must be sorted ascending.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}
	return r.familyOf(name, help, typeHistogram, buckets).seriesOf(labels).h
}

// snapshotFamilies returns the families sorted by name and each family's
// series sorted by label key, for deterministic exposition.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	f.mu.Unlock()
	return out
}

// escapeLabel escapes a label value for the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// renderLabels renders {k="v",...} from sorted pairs, with extra appended
// unescaped-key pairs (used for the histogram le label).
func renderLabels(pairs []string, extra ...string) string {
	all := append(append([]string(nil), pairs...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(all); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(all[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(all[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			var err error
			switch f.typ {
			case typeCounter:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels), formatFloat(s.c.Value()))
			case typeGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels), formatFloat(s.g.Value()))
			case typeHistogram:
				err = writeHistogram(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s *series) error {
	upper, cum := s.h.Buckets()
	for i, ub := range upper {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, renderLabels(s.labels, "le", formatFloat(ub)), cum[i]); err != nil {
			return err
		}
	}
	count := s.h.Count()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(s.labels, "le", "+Inf"), count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(s.labels), formatFloat(s.h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(s.labels), count)
	return err
}

// SeriesSnapshot is the JSON view of one labeled series.
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"`
	Count  uint64            `json:"count,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
	// Buckets maps each upper bound to the cumulative count ≤ bound.
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// FamilySnapshot is the JSON view of one metric family.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot returns a JSON-friendly view of every family, sorted by name.
func (r *Registry) Snapshot() []FamilySnapshot {
	var out []FamilySnapshot
	for _, f := range r.snapshotFamilies() {
		fs := FamilySnapshot{Name: f.name, Type: f.typ, Help: f.help}
		for _, s := range f.sortedSeries() {
			ss := SeriesSnapshot{}
			if len(s.labels) > 0 {
				ss.Labels = map[string]string{}
				for i := 0; i+1 < len(s.labels); i += 2 {
					ss.Labels[s.labels[i]] = s.labels[i+1]
				}
			}
			switch f.typ {
			case typeCounter:
				ss.Value = s.c.Value()
			case typeGauge:
				ss.Value = s.g.Value()
			case typeHistogram:
				ss.Count = s.h.Count()
				ss.Sum = s.h.Sum()
				upper, cum := s.h.Buckets()
				ss.Buckets = map[string]uint64{}
				for i, ub := range upper {
					ss.Buckets[formatFloat(ub)] = cum[i]
				}
				ss.Buckets["+Inf"] = ss.Count
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}
