package obs

import (
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("calls_total", "calls")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %v, want 5", got)
	}
	// The same name+labels returns the same series.
	if r.Counter("calls_total", "calls") != c {
		t.Fatal("counter identity lost")
	}
	g := r.Gauge("pool", "pool size", "kind", "index")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
	// Label order must not matter for identity.
	a := r.Counter("lbl_total", "", "a", "1", "b", "2")
	b := r.Counter("lbl_total", "", "b", "2", "a", "1")
	if a != b {
		t.Fatal("label order changed series identity")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.001, 0.01, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-102.561) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
	upper, cum := h.Buckets()
	if len(upper) != 3 || upper[0] != 0.01 {
		t.Fatalf("upper = %v", upper)
	}
	// 0.001 and 0.01 land ≤0.01; 0.05 ≤0.1; 0.5 ≤1; 2 and 100 overflow.
	want := []uint64{2, 3, 4}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", cum, want)
		}
	}
}

// TestPrometheusExposition checks the text format line by line: HELP/TYPE
// headers, escaped labels, histogram bucket/sum/count suffixes.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("dta_calls_total", "what-if calls", "server", `pr"od\x`).Add(3)
	r.Gauge("dta_sessions", "live sessions", "state", "running").Set(2)
	h := r.Histogram("dta_lat_seconds", "latency", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	for _, want := range []string{
		"# TYPE dta_calls_total counter",
		`dta_calls_total{server="pr\"od\\x"} 3`,
		"# TYPE dta_sessions gauge",
		`dta_sessions{state="running"} 2`,
		"# TYPE dta_lat_seconds histogram",
		`dta_lat_seconds_bucket{le="0.5"} 1`,
		`dta_lat_seconds_bucket{le="1"} 2`,
		`dta_lat_seconds_bucket{le="+Inf"} 3`,
		`dta_lat_seconds_sum 5.9`,
		`dta_lat_seconds_count 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	// Every non-comment line must match the exposition sample grammar.
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?Inf|[0-9eE.+-]+)$`)
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("bad exposition line %q", line)
		}
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help c").Add(2)
	h := r.Histogram("h_seconds", "", []float64{1})
	h.Observe(0.5)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("families = %d", len(snap))
	}
	if snap[0].Name != "c_total" || snap[0].Series[0].Value != 2 {
		t.Fatalf("counter snapshot: %+v", snap[0])
	}
	hs := snap[1]
	if hs.Type != "histogram" || hs.Series[0].Count != 1 || hs.Series[0].Buckets["1"] != 1 {
		t.Fatalf("histogram snapshot: %+v", hs)
	}
}

// TestConcurrentObservation hammers one registry from many goroutines; run
// under -race this is the concurrency-safety check.
func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const goroutines, per = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("cc_total", "").Inc()
				r.Gauge("gg", "").Set(float64(i))
				r.Histogram("hh", "", []float64{100, 1000}, "g", "x").Observe(float64(i))
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("cc_total", "").Value(); got != goroutines*per {
		t.Fatalf("counter = %v, want %d", got, goroutines*per)
	}
	if got := r.Histogram("hh", "", nil, "g", "x").Count(); got != goroutines*per {
		t.Fatalf("histogram count = %v, want %d", got, goroutines*per)
	}
}
