// Package obs is the tuning system's observability substrate: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms with Prometheus text exposition and JSON snapshots) and
// context-attached hierarchical spans exportable as Chrome trace-event JSON
// (loadable in chrome://tracing or Perfetto).
//
// The paper's advisor is dominated by what-if optimizer calls (§4, §6.2 —
// candidate selection and enumeration are both bounded by optimizer
// invocations), and follow-on work treats what-if call counts and latency as
// the tuning-cost metric. This package is how the rest of the system answers
// "where did the session's time budget go": the what-if layer records call
// latency histograms, the pipeline records a span per phase / per query /
// per greedy step / per what-if call, and the service exposes both over
// HTTP.
//
// Everything here is safe for concurrent use. Both halves are nil-tolerant:
// a nil *Span no-ops on End/SetArg, and StartSpan on a context without a
// Trace returns a nil span, so instrumented code paths pay almost nothing
// when observation is off.
package obs
