package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Trace collects the completed spans of one tuning session. It is bounded:
// past the span limit new spans are counted as dropped rather than stored,
// so a runaway session cannot exhaust server memory. A Trace may be exported
// while the session is still running; the export contains the spans
// completed so far.
type Trace struct {
	name  string
	start time.Time

	nextID atomic.Int64

	mu      sync.Mutex
	spans   []spanRecord
	limit   int
	dropped int64
}

// spanRecord is one completed span.
type spanRecord struct {
	id, parent int64
	cat, name  string
	start      time.Time
	dur        time.Duration
	args       map[string]any
}

// DefaultSpanLimit bounds the spans kept per trace. At roughly a hundred
// bytes per span the default caps a trace at ~20 MB — far above any normal
// session (a span per what-if call, and sessions issue thousands of calls).
const DefaultSpanLimit = 200000

// NewTrace creates an empty trace. The name becomes the process name in the
// Chrome trace export (typically the session ID).
func NewTrace(name string) *Trace {
	return &Trace{name: name, start: time.Now(), limit: DefaultSpanLimit}
}

// SetLimit replaces the span limit (n ≤ 0 restores the default).
func (t *Trace) SetLimit(n int) {
	if n <= 0 {
		n = DefaultSpanLimit
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// Name returns the trace name.
func (t *Trace) Name() string { return t.name }

// SpanCount returns the number of completed spans collected so far.
func (t *Trace) SpanCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns the number of spans discarded over the limit.
func (t *Trace) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

func (t *Trace) collect(r spanRecord) {
	t.mu.Lock()
	if len(t.spans) >= t.limit {
		t.dropped++
	} else {
		t.spans = append(t.spans, r)
	}
	t.mu.Unlock()
}

// Span is one in-flight operation. A nil *Span is valid and no-ops, which is
// what StartSpan returns when the context carries no Trace — instrumented
// code never needs to branch on whether tracing is enabled.
type Span struct {
	tr         *Trace
	id, parent int64
	cat, name  string
	start      time.Time
	args       map[string]any
}

// SetArg attaches one key/value to the span (rendered in the trace viewer's
// args pane). It returns the span for chaining and no-ops on nil.
func (s *Span) SetArg(key string, v any) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[key] = v
	return s
}

// End completes the span and hands it to the trace. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.collect(spanRecord{
		id: s.id, parent: s.parent, cat: s.cat, name: s.name,
		start: s.start, dur: time.Since(s.start), args: s.args,
	})
}

type traceKey struct{}
type spanKey struct{}

// WithTrace attaches the trace to the context; spans started from the
// returned context (and its descendants) collect into it.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartSpan opens a span as a child of the context's current span. When the
// context carries no Trace it returns the context unchanged and a nil span —
// the zero-overhead "tracing off" path.
func StartSpan(ctx context.Context, cat, name string) (context.Context, *Span) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	var parent int64
	if p, _ := ctx.Value(spanKey{}).(*Span); p != nil {
		parent = p.id
	}
	s := &Span{tr: tr, id: tr.nextID.Add(1), parent: parent, cat: cat, name: name, start: time.Now()}
	return context.WithValue(ctx, spanKey{}, s), s
}

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events; ts and dur in microseconds).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace renders the trace in Chrome trace-event JSON, loadable in
// chrome://tracing and Perfetto. All spans of a session run on one tuning
// goroutine, so they share one pid/tid and the viewer reconstructs nesting
// from time containment.
//
// Every span event carries a selfUs arg — its exclusive (self) time: the
// span's duration minus the summed durations of its direct children, in
// microseconds, clamped at zero. otherData.selfTimeUs aggregates self time
// per "cat/name" call site, so "where did the time actually go" is computed
// at export rather than eyeballed from the timeline. When children were
// dropped over the span limit their time cannot be subtracted, so a parent's
// self time is an overestimate in truncated traces (droppedSpans > 0 flags
// this).
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	spans := append([]spanRecord(nil), t.spans...)
	dropped := t.dropped
	t.mu.Unlock()

	// Sum direct-child time per parent id; self = dur − children, clamped.
	childUs := make(map[int64]int64, len(spans))
	for _, r := range spans {
		if r.parent != 0 {
			childUs[r.parent] += r.dur.Microseconds()
		}
	}
	selfBySite := map[string]int64{}

	out := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"trace":        t.name,
			"spans":        len(spans),
			"droppedSpans": dropped,
		},
		TraceEvents: []chromeEvent{{
			Name: "process_name", Ph: "M", Pid: 1, Tid: 1,
			Args: map[string]any{"name": t.name},
		}},
	}
	for _, r := range spans {
		durUs := r.dur.Microseconds()
		selfUs := durUs - childUs[r.id]
		if selfUs < 0 {
			selfUs = 0 // clock skew between parent and child reads
		}
		selfBySite[r.cat+"/"+r.name] += selfUs
		// Fresh args map per event: r.args is shared with the span record,
		// and mutating it here would race with a concurrent export.
		args := make(map[string]any, len(r.args)+2)
		for k, v := range r.args {
			args[k] = v
		}
		args["selfUs"] = selfUs
		if r.parent != 0 {
			args["parentSpan"] = r.parent
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: r.name, Cat: r.cat, Ph: "X",
			Ts:  r.start.Sub(t.start).Microseconds(),
			Dur: durUs,
			Pid: 1, Tid: 1, ID: r.id,
			Args: args,
		})
	}
	out.OtherData["selfTimeUs"] = selfBySite
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
