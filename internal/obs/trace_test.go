package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTrace("s-0001")
	ctx := WithTrace(context.Background(), tr)

	ctx, root := StartSpan(ctx, "session", "session s-0001")
	phaseCtx, phase := StartSpan(ctx, "phase", "candidate-selection")
	_, call := StartSpan(phaseCtx, "whatif", "what-if")
	call.SetArg("event", 3)
	call.End()
	phase.End()
	root.End()

	if tr.SpanCount() != 3 {
		t.Fatalf("spans = %d", tr.SpanCount())
	}
	// Parent links reflect the context chain.
	byName := map[string]spanRecord{}
	for _, r := range tr.spans {
		byName[r.name] = r
	}
	if byName["session s-0001"].parent != 0 {
		t.Fatalf("root has parent %d", byName["session s-0001"].parent)
	}
	if byName["candidate-selection"].parent != byName["session s-0001"].id {
		t.Fatal("phase not parented to session")
	}
	if byName["what-if"].parent != byName["candidate-selection"].id {
		t.Fatal("what-if not parented to phase")
	}
	if byName["what-if"].args["event"] != 3 {
		t.Fatalf("args = %v", byName["what-if"].args)
	}
}

func TestNilSpanAndNoTraceContext(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "x", "y")
	if sp != nil {
		t.Fatal("expected nil span without a trace")
	}
	sp.SetArg("k", "v") // must not panic
	sp.End()
	if TraceFrom(ctx) != nil {
		t.Fatal("trace appeared from nowhere")
	}
}

func TestSpanLimit(t *testing.T) {
	tr := NewTrace("bounded")
	tr.SetLimit(2)
	ctx := WithTrace(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(ctx, "c", "s")
		sp.End()
	}
	if tr.SpanCount() != 2 || tr.Dropped() != 3 {
		t.Fatalf("spans=%d dropped=%d", tr.SpanCount(), tr.Dropped())
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTrace("s-0042")
	ctx := WithTrace(context.Background(), tr)
	ctx, root := StartSpan(ctx, "session", "session s-0042")
	_, child := StartSpan(ctx, "phase", "enumeration")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" || doc.OtherData["trace"] != "s-0042" {
		t.Fatalf("metadata off: %+v", doc.OtherData)
	}
	// One metadata event plus the two spans.
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" {
		t.Fatalf("first event %+v not process metadata", doc.TraceEvents[0])
	}
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents[1:] {
		if e.Ph != "X" || e.Ts < 0 || e.Pid != 1 {
			t.Fatalf("bad event %+v", e)
		}
		seen[e.Cat] = true
	}
	if !seen["session"] || !seen["phase"] {
		t.Fatalf("categories missing: %v", seen)
	}
}
