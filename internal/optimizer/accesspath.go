package optimizer

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/catalog"
)

// accessPath is one way to produce the (filtered) rows of a scope.
type accessPath struct {
	plan  *Plan
	rows  float64 // output rows after all local predicates
	pages float64 // output volume in pages (required columns only)
}

// accessPaths enumerates the physical alternatives for one scope under the
// configuration: heap scan, clustered index seek, non-clustered index seeks
// (with RID lookups when not covering), covering index scans — each with
// range-partition elimination folded in.
func (c *optContext) accessPaths(s *Scope) []accessPath {
	t := s.Table
	outRows := float64(t.Rows) * c.scopeSelectivity(s)
	if outRows < 1 {
		outRows = 1
	}
	outWidth := t.ColumnWidth(s.Required)
	outPages := pagesF(outRows, outWidth)

	var paths []accessPath

	clustered := c.cfg.ClusteredIndex(t.Name)
	tablePart := c.cfg.TablePartitioning(t.Name)
	if clustered != nil && clustered.Partitioning != nil {
		// The clustered index *is* the table; its partitioning governs the
		// base data.
		tablePart = clustered.Partitioning
	}

	// Base scan of the table (heap or clustered index in key order).
	{
		fr := c.partitionFraction(t, tablePart, s.Preds)
		scanPages := float64(t.Pages()) * fr
		scanRows := float64(t.Rows) * fr
		cost := startupCost + scanPages + scanRows*cpuPerRow
		cost /= c.parallelism(scanPages)
		op, detail, structure := "HeapScan", t.Name, ""
		var ordered []string
		if clustered != nil {
			op, detail, structure = "ClusteredScan", clustered.String(), clustered.Key()
			ordered = qualify(t.Name, clustered.KeyColumns)
			if tablePart != nil {
				// Each partition is ordered on the clustered key; a merge
				// of the per-partition streams preserves the order at a
				// small comparison cost (the interaction Example 2 of the
				// paper builds on: clustered on A + partitioned on X).
				cost += scanRows * math.Log2(float64(tablePart.Partitions())) * cpuPerCompare
			}
		}
		if tablePart != nil && fr < 1 {
			detail += fmt.Sprintf(" (partitions: %.0f%%)", fr*100)
			if structure == "" {
				structure = "tp:" + t.Name + "=" + tablePart.String()
			}
		}
		paths = append(paths, accessPath{
			plan: &Plan{Op: op, Detail: detail, Cost: cost, Rows: outRows, Pages: outPages,
				Structure: structure, Ordered: ordered},
			rows: outRows, pages: outPages,
		})
	}

	// Clustered index seek on a sargable prefix of the clustered key.
	if clustered != nil {
		if seekSel, matched := c.matchedPrefix(t, clustered.KeyColumns, s.Preds); matched > 0 {
			c.wantStat(t.Name, clustered.KeyColumns)
			fr := c.partitionFraction(t, tablePart, s.Preds)
			readPages := float64(t.Pages()) * math.Min(seekSel, fr)
			readRows := float64(t.Rows) * seekSel
			cost := startupCost + btreeDepth(float64(t.Pages()))*c.hw().RandomFactor + readPages + readRows*cpuPerRow
			if tablePart != nil {
				cost += readRows * math.Log2(float64(tablePart.Partitions())) * cpuPerCompare
			}
			cost /= c.parallelism(readPages)
			ordered := qualify(t.Name, clustered.KeyColumns)
			paths = append(paths, accessPath{
				plan: &Plan{Op: "ClusteredSeek", Detail: clustered.String(), Cost: cost,
					Rows: outRows, Pages: outPages, Structure: clustered.Key(), Ordered: ordered},
				rows: outRows, pages: outPages,
			})
		}
	}

	// Non-clustered index paths.
	for _, ix := range c.cfg.IndexesOn(t.Name) {
		if ix.Clustered {
			continue
		}
		covering := ix.Covers(s.Required)
		leafPages := float64(ix.Pages(t))
		ixPart := ix.Partitioning
		fr := c.partitionFraction(t, ixPart, s.Preds)
		c.wantStat(t.Name, ix.KeyColumns)

		if seekSel, matched := c.matchedPrefix(t, ix.KeyColumns, s.Preds); matched > 0 {
			seeks := 1.0
			if p := findPred(s.Preds, ix.KeyColumns[0]); p != nil && p.Kind == PredIn {
				seeks = float64(p.InSize)
			}
			readPages := leafPages * math.Min(seekSel, fr)
			readRows := float64(t.Rows) * seekSel
			cost := startupCost + seeks*btreeDepth(leafPages)*c.hw().RandomFactor + readPages + readRows*cpuPerRow
			if !covering {
				// One random base-table page per qualifying row.
				cost += readRows * c.hw().RandomFactor
			}
			if ixPart != nil {
				cost += readRows * math.Log2(float64(ixPart.Partitions())) * cpuPerCompare
			}
			cost /= c.parallelism(readPages + 1)
			var ordered []string
			if covering {
				ordered = qualify(t.Name, ix.KeyColumns)
			}
			detail := ix.String()
			if !covering {
				detail += " + RID lookup"
			}
			paths = append(paths, accessPath{
				plan: &Plan{Op: "IndexSeek", Detail: detail, Cost: cost, Rows: outRows,
					Pages: outPages, Structure: ix.Key(), Ordered: ordered},
				rows: outRows, pages: outPages,
			})
		}

		if covering {
			// Full scan of the (narrower) covering index.
			scanPages := leafPages * fr
			scanRows := float64(t.Rows) * fr
			cost := startupCost + scanPages + scanRows*cpuPerRow
			if ixPart != nil {
				cost += scanRows * math.Log2(float64(ixPart.Partitions())) * cpuPerCompare
			}
			cost /= c.parallelism(scanPages)
			ordered := qualify(t.Name, ix.KeyColumns)
			paths = append(paths, accessPath{
				plan: &Plan{Op: "IndexScan", Detail: ix.String(), Cost: cost, Rows: outRows,
					Pages: outPages, Structure: ix.Key(), Ordered: ordered},
				rows: outRows, pages: outPages,
			})
		}
	}

	return paths
}

// bestAccess returns the cheapest access path, and the cheapest path whose
// output order covers wantOrder (nil if none). Exact cost ties break by
// (operator, structure key) — see pathLess — so the winner never depends on
// the configuration's structure enumeration order.
func (c *optContext) bestAccess(s *Scope, wantOrder []string) (best accessPath, ordered *accessPath) {
	paths := c.accessPaths(s)
	bi := 0
	for i := 1; i < len(paths); i++ {
		if pathLess(paths[i].plan, paths[bi].plan) {
			bi = i
		}
	}
	best = paths[bi]
	if len(wantOrder) > 0 {
		oi := -1
		for i := range paths {
			if orderedPrefix(paths[i].plan.Ordered, wantOrder) {
				if oi < 0 || pathLess(paths[i].plan, paths[oi].plan) {
					oi = i
				}
			}
		}
		if oi >= 0 {
			p := paths[oi]
			ordered = &p
		}
	}
	return best, ordered
}

// pathLess is the strict total order plan selections minimize over: cost
// first, then operator, then structure key. The tie-break makes equal-cost
// choices (symmetric candidate indexes are common) independent of the order
// structures happen to be listed in the configuration, which both keeps
// recommendations deterministic and lets the derivation layer replay the
// selection from a plan skeleton.
func pathLess(a, b *Plan) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	return a.Structure < b.Structure
}

// matchedPrefix computes the selectivity of the sargable prefix of the key
// columns: equality predicates extend the prefix; the first range / IN /
// LIKE-prefix predicate closes it. Returns the combined selectivity and the
// number of key columns matched (0 = cannot seek).
func (c *optContext) matchedPrefix(t *catalog.Table, keyCols []string, preds []Pred) (float64, int) {
	sel := 1.0
	matched := 0
	for _, kc := range keyCols {
		p := findPred(preds, kc)
		if p == nil || !p.Sargable() {
			break
		}
		sel *= c.predSelectivity(t, *p)
		matched++
		if p.Kind != PredEq {
			break // a range closes the prefix
		}
	}
	return sel, matched
}

// findPred returns the first sargable predicate on the column, preferring
// equality predicates over ranges.
func findPred(preds []Pred, col string) *Pred {
	var found *Pred
	for i := range preds {
		p := &preds[i]
		if p.Column != col || !p.Sargable() {
			continue
		}
		if p.Kind == PredEq {
			return p
		}
		if found == nil {
			found = p
		}
	}
	return found
}

// partitionFraction estimates the fraction of partitions a scan must touch
// given the scope's predicates on the partitioning column. With no
// partitioning or no predicate on the partitioning column it is 1.
func (c *optContext) partitionFraction(t *catalog.Table, part *catalog.PartitionScheme, preds []Pred) float64 {
	if part == nil || part.Partitions() <= 1 {
		return 1
	}
	p := findPred(preds, part.Column)
	if p == nil {
		return 1
	}
	n := float64(part.Partitions())
	perPart := 1 / n
	switch p.Kind {
	case PredEq:
		return perPart
	case PredIn:
		return math.Min(1, float64(p.InSize)*perPart)
	case PredRange:
		sel := c.predSelectivity(t, *p)
		// A range touching sel of the rows touches about sel of the
		// partitions, plus the boundary partition.
		return math.Min(1, sel+perPart)
	case PredLike:
		return math.Min(1, 0.05+perPart)
	default:
		return 1
	}
}

func qualify(table string, cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = strings.ToLower(table) + "." + strings.ToLower(c)
	}
	return out
}

func pagesF(rows float64, width int) float64 {
	per := float64(catalog.PageSize) / float64(width)
	if per < 1 {
		per = 1
	}
	p := rows / per
	if p < 1 {
		p = 1
	}
	return p
}
