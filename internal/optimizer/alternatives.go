package optimizer

import (
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
	"repro/internal/stats"
)

// AltComponent is one end-to-end costed plan alternative of a single-scope
// SELECT: the complete statement plan built over one access path or one
// materialized view. Every field is independent of which other additive
// structures the configuration holds, which is what makes subset costing a
// pure selection over the components (the INUM observation).
type AltComponent struct {
	// Structure is the additive structure key that must be present for this
	// alternative to exist ("" = base access through the heap or a clustered
	// index, available under every sub-configuration).
	Structure string
	// Op is the access operator at the root of the alternative's access plan
	// (HeapScan, ClusteredSeek, IndexSeek, ViewScan, ...), the second field
	// of the pathLess tie-break order.
	Op string
	// View marks a materialized-view alternative, which competes against the
	// chosen base access on pre-finish cost (the optimizer's view rule).
	View bool
	// Pre is the access/view plan cost before grouping, ordering and TOP —
	// the metric the optimizer's access-path and view selections compare.
	Pre float64
	// Final is the end-to-end statement cost when this alternative is chosen.
	Final float64
	// Ordered reports whether the alternative's output order satisfies the
	// query's interesting order (the sort-avoidance rule of basePlan).
	Ordered bool
	// Used holds the used-structure keys the finished plan reports when this
	// alternative wins.
	Used []string
}

// altLess mirrors pathLess over skeleton components: minimize pre-finish
// cost, break exact ties by (operator, structure key). For index and view
// components Structure equals the plan's structure key; base components are
// uniquely identified by Op alone, so the two orders coincide on every pair
// pathLess can be asked to compare.
func altLess(a, b *AltComponent) bool {
	if a.Pre != b.Pre {
		return a.Pre < b.Pre
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	return a.Structure < b.Structure
}

// Alternatives is the plan skeleton of one SELECT under one configuration,
// such that the statement's cost and used structures under any
// sub-configuration — same base structures, any subset of the additive ones —
// follow from Select without another optimizer call. Single-scope SELECTs
// carry flat end-to-end components; multi-scope SELECTs carry a JoinSkeleton
// whose per-scope alternatives compose through the join cost function.
type Alternatives struct {
	// Components lists the single-scope alternatives in the optimizer's own
	// enumeration order (base accesses, then non-clustered indexes, then
	// views). Empty when Join is set.
	Components []AltComponent
	// HasOrder reports whether the query has an interesting order, enabling
	// the ordered-alternative rule during Select.
	HasOrder bool
	// Join is the multi-scope skeleton (nil for single-scope SELECTs).
	Join *JoinSkeleton
}

// OptimizeAlternatives is Optimize plus the plan skeleton: for a SELECT the
// second result carries the plan alternatives costed end-to-end — flat
// components for a single scope, a composed JoinSkeleton for joins; for DML
// it is nil and the call behaves exactly like Optimize. The Result is
// identical to Optimize's in either case, including the RequiredStats set
// (the skeleton only repeats computations the direct optimization performs,
// and stat requests dedup by key).
func (o *Optimizer) OptimizeAlternatives(stmt sqlparser.Statement, cfg *catalog.Configuration) (*Result, *Alternatives, error) {
	sel, ok := stmt.(*sqlparser.Select)
	if !ok {
		res, err := o.Optimize(stmt, cfg)
		return res, nil, err
	}
	if cfg == nil {
		cfg = catalog.NewConfiguration()
	}
	ctx := &optContext{opt: o, cfg: cfg, wanted: map[string]stats.Request{}}
	plan, err := ctx.optimizeSelect(sel)
	if err != nil {
		return nil, nil, err
	}
	var alts *Alternatives
	if q, err := o.analyze(sel); err == nil {
		if len(q.Scopes) == 1 {
			alts = ctx.selectAlternatives(q)
		} else if len(q.Scopes) > 1 {
			alts = &Alternatives{Join: ctx.joinAlternatives(q)}
		}
	}
	res := &Result{Cost: plan.Cost, Plan: plan}
	for _, r := range ctx.wanted {
		res.RequiredStats = append(res.RequiredStats, r)
	}
	sortRequests(res.RequiredStats)
	res.UsedStructures = plan.structureKeys()
	return res, alts, nil
}

// selectAlternatives builds the plan skeleton of a single-scope query: each
// access path and each matching view, finished end-to-end exactly as
// optimizeSelect would finish it if that alternative were chosen.
func (c *optContext) selectAlternatives(q *QueryInfo) *Alternatives {
	s := q.Scopes[0]
	width := s.Table.ColumnWidth(s.Required)
	want := c.interestingOrder(q)
	a := &Alternatives{HasOrder: len(want) > 0}
	for _, p := range c.accessPaths(s) {
		fin := c.finishSelect(q, joined{plan: p.plan, rows: p.rows, width: width})
		gate := ""
		// Heap and clustered accesses are gated by base structures, which
		// every sub-configuration in a derivation scope shares; only
		// non-clustered index paths require their structure to be present.
		if p.plan.Op == "IndexSeek" || p.plan.Op == "IndexScan" {
			gate = p.plan.Structure
		}
		a.Components = append(a.Components, AltComponent{
			Structure: gate,
			Op:        p.plan.Op,
			Pre:       p.plan.Cost,
			Final:     fin.Cost,
			Ordered:   len(want) > 0 && orderedPrefix(p.plan.Ordered, want),
			Used:      fin.structureKeys(),
		})
	}
	if len(c.cfg.Views) > 0 {
		// Single scope: the table set is a singleton and there are no join
		// predicates, mirroring bestViewPlan's inputs for this query shape.
		tables := []string{strings.ToLower(s.Table.Name)}
		joinSet := map[string]bool{}
		for _, v := range c.cfg.Views {
			if cand := c.tryView(q, v, tables, joinSet); cand != nil {
				fin := c.finishSelect(q, *cand)
				a.Components = append(a.Components, AltComponent{
					Structure: v.Key(),
					Op:        cand.plan.Op,
					View:      true,
					Pre:       cand.plan.Cost,
					Final:     fin.Cost,
					Used:      fin.structureKeys(),
				})
			}
		}
	}
	return a
}

// Select replays the optimizer's plan choice over the alternatives available
// under a sub-configuration: has reports whether an additive structure key is
// present. Because every component cost is config-independent (the same
// arithmetic produces bit-identical floats under the sub-configuration) and
// every selection minimizes the pathLess total order, the replayed choice is
// exactly the choice a real optimization of that configuration would make.
// ok is false only when no alternative is available, which cannot happen for
// a skeleton built by selectAlternatives (a base scan always exists).
// Multi-scope skeletons dispatch to the join replay.
func (a *Alternatives) Select(has func(string) bool) (float64, []string, bool) {
	if a.Join != nil {
		return a.Join.selectJoin(has)
	}
	avail := func(c *AltComponent) bool {
		return c.Structure == "" || has(c.Structure)
	}

	// Access-path selection (bestAccess): minimum by pathLess.
	var j *AltComponent
	for i := range a.Components {
		c := &a.Components[i]
		if c.View || !avail(c) {
			continue
		}
		if j == nil || altLess(c, j) {
			j = c
		}
	}
	if j == nil {
		return 0, nil, false
	}
	chosen := j

	// Ordered alternative: the cheapest order-preserving path wins when its
	// end-to-end cost beats the unordered choice (basePlan's sort avoidance;
	// the incumbent keeps an exact tie).
	if a.HasOrder {
		var alt *AltComponent
		for i := range a.Components {
			c := &a.Components[i]
			if c.View || !avail(c) || !c.Ordered {
				continue
			}
			if alt == nil || altLess(c, alt) {
				alt = c
			}
		}
		if alt != nil && alt.Final < j.Final {
			chosen = alt
		}
	}

	// View selection: the cheapest matching view competes against the chosen
	// base access on pre-finish cost (optimizeSelect's view rule; the base
	// access keeps an exact tie).
	var vw *AltComponent
	for i := range a.Components {
		c := &a.Components[i]
		if !c.View || !avail(c) {
			continue
		}
		if vw == nil || altLess(c, vw) {
			vw = c
		}
	}
	if vw != nil && vw.Pre < chosen.Pre {
		chosen = vw
	}
	return chosen.Final, append([]string(nil), chosen.Used...), true
}
