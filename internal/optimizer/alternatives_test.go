package optimizer

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
)

// altFixture returns the additive structures (non-clustered indexes and
// views) the skeleton equivalence tests select subsets from. ix3 and ix4 are
// deliberately symmetric — same leading column, same included width — so
// covering scans over them cost exactly the same and exercise the
// deterministic (cost, op, structure) tie-break.
func altFixture() []catalog.Structure {
	view := catalog.NewMaterializedView(
		[]string{"t"}, nil, nil,
		[]catalog.ColRef{catalog.NewColRef("t", "a")},
		[]catalog.Agg{{Func: "COUNT"}, {Func: "SUM", Col: catalog.NewColRef("t", "x")}},
		100,
	)
	return []catalog.Structure{
		{Index: catalog.NewIndex("t", "x")},
		{Index: catalog.NewIndex("t", "x", "a")},
		{Index: catalog.NewIndex("t", "a").WithInclude("x")},
		{Index: catalog.NewIndex("t", "a").WithInclude("d_id")},
		{View: view},
	}
}

// applySubset builds a configuration holding the base structures plus the
// chosen additive subset, applying the additive structures in reverse order
// so the test also proves the choice does not depend on the order structures
// are listed in the configuration.
func applySubset(base *catalog.Configuration, adds []catalog.Structure, mask int) *catalog.Configuration {
	cfg := base.Clone()
	for i := len(adds) - 1; i >= 0; i-- {
		if mask&(1<<i) != 0 {
			adds[i].ApplyTo(cfg)
		}
	}
	return cfg
}

// TestAlternativesSelectMatchesDirectOptimize is the skeleton soundness
// property: for every query shape and every subset of additive structures,
// replaying the skeleton taken at the full configuration returns exactly the
// cost and used-structure set a direct optimization of the subset returns.
func TestAlternativesSelectMatchesDirectOptimize(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	adds := altFixture()

	queries := []string{
		"SELECT id FROM t WHERE x = 42",
		"SELECT x, a FROM t WHERE x < 3000",
		"SELECT a, COUNT(*), SUM(x) FROM t GROUP BY a",
		"SELECT a FROM t WHERE a < 50 ORDER BY a",
		"SELECT TOP 10 x FROM t WHERE a = 3 ORDER BY x",
		"SELECT DISTINCT a FROM t WHERE x >= 9000",
	}

	bases := map[string]*catalog.Configuration{
		"heap": catalog.NewConfiguration(),
	}
	clustered := catalog.NewConfiguration()
	cix := catalog.NewIndex("t", "id")
	cix.Clustered = true
	clustered.AddIndex(cix)
	bases["clustered"] = clustered
	parted := catalog.NewConfiguration()
	parted.SetTablePartitioning("t", catalog.NewPartitionScheme("x", 10, 100, 1000, 5000))
	bases["partitioned"] = parted

	for baseName, base := range bases {
		for _, q := range queries {
			stmt := sqlparser.MustParse(q)
			full := applySubset(base, adds, (1<<len(adds))-1)
			res, alts, err := o.OptimizeAlternatives(stmt, full)
			if err != nil {
				t.Fatalf("%s/%q: OptimizeAlternatives: %v", baseName, q, err)
			}
			direct, err := o.Optimize(stmt, full)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost != direct.Cost {
				t.Fatalf("%s/%q: OptimizeAlternatives cost %v != Optimize cost %v", baseName, q, res.Cost, direct.Cost)
			}
			if alts == nil {
				t.Fatalf("%s/%q: single-scope SELECT must produce a skeleton", baseName, q)
			}
			for mask := 0; mask < 1<<len(adds); mask++ {
				sub := applySubset(base, adds, mask)
				has := func(key string) bool {
					for i, s := range adds {
						if mask&(1<<i) != 0 && s.Key() == key {
							return true
						}
					}
					return false
				}
				got, gotUsed, ok := alts.Select(has)
				if !ok {
					t.Fatalf("%s/%q mask %b: Select failed", baseName, q, mask)
				}
				want, err := o.Optimize(stmt, sub)
				if err != nil {
					t.Fatal(err)
				}
				if got != want.Cost {
					t.Fatalf("%s/%q mask %b: replayed cost %v != direct cost %v", baseName, q, mask, got, want.Cost)
				}
				sort.Strings(gotUsed)
				wantUsed := append([]string(nil), want.UsedStructures...)
				sort.Strings(wantUsed)
				if len(gotUsed) != len(wantUsed) {
					t.Fatalf("%s/%q mask %b: replayed used %v != direct used %v", baseName, q, mask, gotUsed, wantUsed)
				}
				for i := range gotUsed {
					if gotUsed[i] != wantUsed[i] {
						t.Fatalf("%s/%q mask %b: replayed used %v != direct used %v", baseName, q, mask, gotUsed, wantUsed)
					}
				}
			}
		}
	}
}

// TestAlternativesNilForDML: DML statements report no skeleton and identical
// Optimize results; join SELECTs now decompose into a JoinSkeleton.
func TestAlternativesNilForDML(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	cfg := catalog.NewConfiguration()
	cfg.AddIndex(catalog.NewIndex("t", "x"))
	cfg.AddIndex(catalog.NewIndex("d", "d_id").WithInclude("name"))

	stmt := sqlparser.MustParse("UPDATE t SET x = 1 WHERE id = 77")
	res, alts, err := o.OptimizeAlternatives(stmt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if alts != nil {
		t.Fatal("DML: expected no skeleton")
	}
	direct, err := o.Optimize(stmt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != direct.Cost || math.IsNaN(res.Cost) {
		t.Fatalf("DML: cost %v != direct %v", res.Cost, direct.Cost)
	}

	join := sqlparser.MustParse("SELECT d.name FROM t, d WHERE t.d_id = d.d_id AND t.x = 17")
	_, alts, err = o.OptimizeAlternatives(join, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if alts == nil || alts.Join == nil {
		t.Fatal("join SELECT: expected a join skeleton")
	}
}

// joinFixture returns the additive structures the join-skeleton equivalence
// test selects subsets from: probe and seek indexes on both sides of the
// t⋈d edge (including a symmetric equal-cost pair), an SPJ join view and a
// grouped join view.
func joinFixture() []catalog.Structure {
	jp := catalog.JoinPred{Left: catalog.NewColRef("t", "d_id"), Right: catalog.NewColRef("d", "d_id")}
	spj := catalog.NewMaterializedView(
		[]string{"t", "d"}, []catalog.JoinPred{jp},
		[]catalog.ColRef{
			catalog.NewColRef("t", "x"), catalog.NewColRef("t", "a"),
			catalog.NewColRef("d", "name"), catalog.NewColRef("d", "region"),
		},
		nil, nil, 1_000_000,
	)
	grouped := catalog.NewMaterializedView(
		[]string{"t", "d"}, []catalog.JoinPred{jp},
		nil,
		[]catalog.ColRef{catalog.NewColRef("t", "a"), catalog.NewColRef("d", "region")},
		[]catalog.Agg{{Func: "COUNT"}},
		500,
	)
	return []catalog.Structure{
		{Index: catalog.NewIndex("t", "d_id")},
		{Index: catalog.NewIndex("d", "d_id").WithInclude("name")},
		{Index: catalog.NewIndex("t", "x", "d_id")},
		// Symmetric pair: same key, equal-width includes — probe and seek
		// costs tie exactly, exercising the structure-key tie-break inside a
		// composed join.
		{Index: catalog.NewIndex("t", "d_id").WithInclude("x")},
		{Index: catalog.NewIndex("t", "d_id").WithInclude("a")},
		{View: spj},
		{View: grouped},
	}
}

// TestJoinAlternativesSelectMatchesDirectOptimize is the multi-scope skeleton
// soundness property: for join query shapes and every subset of additive
// structures, replaying the skeleton taken at the full configuration returns
// exactly the cost and used-structure set a direct optimization of the subset
// returns.
func TestJoinAlternativesSelectMatchesDirectOptimize(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	adds := joinFixture()

	queries := []string{
		"SELECT d.name FROM t, d WHERE t.d_id = d.d_id AND t.x = 17",
		"SELECT d.name, t.x FROM t, d WHERE t.d_id = d.d_id AND t.x < 500 ORDER BY t.x",
		"SELECT t.a, COUNT(*) FROM t, d WHERE t.d_id = d.d_id GROUP BY t.a",
		"SELECT d.region, COUNT(*) FROM t, d WHERE t.d_id = d.d_id AND t.a = 3 GROUP BY d.region",
		"SELECT TOP 5 d.name FROM t, d WHERE t.d_id = d.d_id AND t.x = 9 ORDER BY d.name",
	}

	bases := map[string]*catalog.Configuration{
		"heap": catalog.NewConfiguration(),
	}
	clustered := catalog.NewConfiguration()
	cixT := catalog.NewIndex("t", "id")
	cixT.Clustered = true
	clustered.AddIndex(cixT)
	cixD := catalog.NewIndex("d", "d_id")
	cixD.Clustered = true
	clustered.AddIndex(cixD)
	bases["clustered"] = clustered
	parted := catalog.NewConfiguration()
	parted.SetTablePartitioning("t", catalog.NewPartitionScheme("x", 10, 100, 1000, 5000))
	bases["partitioned"] = parted

	for baseName, base := range bases {
		for _, q := range queries {
			stmt := sqlparser.MustParse(q)
			full := applySubset(base, adds, (1<<len(adds))-1)
			res, alts, err := o.OptimizeAlternatives(stmt, full)
			if err != nil {
				t.Fatalf("%s/%q: OptimizeAlternatives: %v", baseName, q, err)
			}
			direct, err := o.Optimize(stmt, full)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost != direct.Cost {
				t.Fatalf("%s/%q: OptimizeAlternatives cost %v != Optimize cost %v", baseName, q, res.Cost, direct.Cost)
			}
			if alts == nil || alts.Join == nil {
				t.Fatalf("%s/%q: join SELECT must produce a join skeleton", baseName, q)
			}
			for mask := 0; mask < 1<<len(adds); mask++ {
				sub := applySubset(base, adds, mask)
				has := func(key string) bool {
					for i, s := range adds {
						if mask&(1<<i) != 0 && s.Key() == key {
							return true
						}
					}
					return false
				}
				got, gotUsed, ok := alts.Select(has)
				if !ok {
					t.Fatalf("%s/%q mask %b: Select failed", baseName, q, mask)
				}
				want, err := o.Optimize(stmt, sub)
				if err != nil {
					t.Fatal(err)
				}
				if got != want.Cost {
					t.Fatalf("%s/%q mask %b: replayed cost %v != direct cost %v", baseName, q, mask, got, want.Cost)
				}
				sort.Strings(gotUsed)
				wantUsed := append([]string(nil), want.UsedStructures...)
				sort.Strings(wantUsed)
				if len(gotUsed) != len(wantUsed) {
					t.Fatalf("%s/%q mask %b: replayed used %v != direct used %v", baseName, q, mask, gotUsed, wantUsed)
				}
				for i := range gotUsed {
					if gotUsed[i] != wantUsed[i] {
						t.Fatalf("%s/%q mask %b: replayed used %v != direct used %v", baseName, q, mask, gotUsed, wantUsed)
					}
				}
			}
		}
	}
}

// TestJoinTieBreakRandomizedOrders is the satellite property test for
// equal-cost ties under composed join skeletons: indexes on t(d_id) with
// equal-width includes cost exactly the same as probe and seek alternatives,
// so every subset of them ties. For random subsets applied in random orders,
// a fresh optimization must pick the same winner (same cost, same used set)
// as the insertion-order-reversed configuration AND as the skeleton replay —
// i.e. the choice depends only on the structure set, never on enumeration
// order.
func TestJoinTieBreakRandomizedOrders(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	tied := []catalog.Structure{
		{Index: catalog.NewIndex("t", "d_id").WithInclude("x")},
		{Index: catalog.NewIndex("t", "d_id").WithInclude("a")},
		{Index: catalog.NewIndex("t", "d_id").WithInclude("id")},
		{Index: catalog.NewIndex("d", "d_id").WithInclude("region")},
		{Index: catalog.NewIndex("d", "d_id").WithInclude("d_id")},
	}
	queries := []string{
		"SELECT d.name FROM t, d WHERE t.d_id = d.d_id AND t.x = 17",
		"SELECT t.a, COUNT(*) FROM t, d WHERE t.d_id = d.d_id GROUP BY t.a",
	}
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 100; trial++ {
		mask := rng.Intn(1 << len(tied))
		var subset []catalog.Structure
		for i, s := range tied {
			if mask&(1<<i) != 0 {
				subset = append(subset, s)
			}
		}
		perm := rng.Perm(len(subset))
		fwd := catalog.NewConfiguration()
		for _, i := range perm {
			subset[i].ApplyTo(fwd)
		}
		rev := catalog.NewConfiguration()
		for k := len(perm) - 1; k >= 0; k-- {
			subset[perm[k]].ApplyTo(rev)
		}
		q := queries[trial%len(queries)]
		stmt := sqlparser.MustParse(q)
		rf, err := o.Optimize(stmt, fwd)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := o.Optimize(stmt, rev)
		if err != nil {
			t.Fatal(err)
		}
		if rf.Cost != rr.Cost {
			t.Fatalf("trial %d %q: order-dependent cost %v vs %v", trial, q, rf.Cost, rr.Cost)
		}
		if len(rf.UsedStructures) != len(rr.UsedStructures) {
			t.Fatalf("trial %d %q: order-dependent used %v vs %v", trial, q, rf.UsedStructures, rr.UsedStructures)
		}
		for i := range rf.UsedStructures {
			if rf.UsedStructures[i] != rr.UsedStructures[i] {
				t.Fatalf("trial %d %q: order-dependent used %v vs %v", trial, q, rf.UsedStructures, rr.UsedStructures)
			}
		}
		// The skeleton taken at the full tied set must replay the same winner
		// for this subset.
		fullCfg := catalog.NewConfiguration()
		for _, s := range tied {
			s.ApplyTo(fullCfg)
		}
		_, alts, err := o.OptimizeAlternatives(stmt, fullCfg)
		if err != nil {
			t.Fatal(err)
		}
		got, gotUsed, ok := alts.Select(func(key string) bool {
			for i, s := range tied {
				if mask&(1<<i) != 0 && s.Key() == key {
					return true
				}
			}
			return false
		})
		if !ok || got != rf.Cost {
			t.Fatalf("trial %d %q: replay cost %v != direct %v", trial, q, got, rf.Cost)
		}
		sort.Strings(gotUsed)
		wantUsed := append([]string(nil), rf.UsedStructures...)
		sort.Strings(wantUsed)
		if len(gotUsed) != len(wantUsed) {
			t.Fatalf("trial %d %q: replay used %v != direct %v", trial, q, gotUsed, wantUsed)
		}
		for i := range gotUsed {
			if gotUsed[i] != wantUsed[i] {
				t.Fatalf("trial %d %q: replay used %v != direct %v", trial, q, gotUsed, wantUsed)
			}
		}
	}
}

// TestTieBreakIsOrderIndependent pins the pathLess property the derivation
// layer depends on: two exactly symmetric covering indexes cost the same, and
// the optimizer picks the same one regardless of the order the configuration
// lists them in.
func TestTieBreakIsOrderIndependent(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	q := sqlparser.MustParse("SELECT a FROM t WHERE a < 50")
	ix1 := catalog.NewIndex("t", "a").WithInclude("x")
	ix2 := catalog.NewIndex("t", "a").WithInclude("d_id")

	fwd := catalog.NewConfiguration()
	fwd.AddIndex(ix1)
	fwd.AddIndex(ix2)
	rev := catalog.NewConfiguration()
	rev.AddIndex(ix2)
	rev.AddIndex(ix1)

	rf, err := o.Optimize(q, fwd)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := o.Optimize(q, rev)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Cost != rr.Cost {
		t.Fatalf("tied configs must cost the same: %v vs %v", rf.Cost, rr.Cost)
	}
	if len(rf.UsedStructures) != 1 || len(rr.UsedStructures) != 1 || rf.UsedStructures[0] != rr.UsedStructures[0] {
		t.Fatalf("tie must break identically under both orders: %v vs %v", rf.UsedStructures, rr.UsedStructures)
	}
}
