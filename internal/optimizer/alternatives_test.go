package optimizer

import (
	"math"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
)

// altFixture returns the additive structures (non-clustered indexes and
// views) the skeleton equivalence tests select subsets from. ix3 and ix4 are
// deliberately symmetric — same leading column, same included width — so
// covering scans over them cost exactly the same and exercise the
// deterministic (cost, op, structure) tie-break.
func altFixture() []catalog.Structure {
	view := catalog.NewMaterializedView(
		[]string{"t"}, nil, nil,
		[]catalog.ColRef{catalog.NewColRef("t", "a")},
		[]catalog.Agg{{Func: "COUNT"}, {Func: "SUM", Col: catalog.NewColRef("t", "x")}},
		100,
	)
	return []catalog.Structure{
		{Index: catalog.NewIndex("t", "x")},
		{Index: catalog.NewIndex("t", "x", "a")},
		{Index: catalog.NewIndex("t", "a").WithInclude("x")},
		{Index: catalog.NewIndex("t", "a").WithInclude("d_id")},
		{View: view},
	}
}

// applySubset builds a configuration holding the base structures plus the
// chosen additive subset, applying the additive structures in reverse order
// so the test also proves the choice does not depend on the order structures
// are listed in the configuration.
func applySubset(base *catalog.Configuration, adds []catalog.Structure, mask int) *catalog.Configuration {
	cfg := base.Clone()
	for i := len(adds) - 1; i >= 0; i-- {
		if mask&(1<<i) != 0 {
			adds[i].ApplyTo(cfg)
		}
	}
	return cfg
}

// TestAlternativesSelectMatchesDirectOptimize is the skeleton soundness
// property: for every query shape and every subset of additive structures,
// replaying the skeleton taken at the full configuration returns exactly the
// cost and used-structure set a direct optimization of the subset returns.
func TestAlternativesSelectMatchesDirectOptimize(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	adds := altFixture()

	queries := []string{
		"SELECT id FROM t WHERE x = 42",
		"SELECT x, a FROM t WHERE x < 3000",
		"SELECT a, COUNT(*), SUM(x) FROM t GROUP BY a",
		"SELECT a FROM t WHERE a < 50 ORDER BY a",
		"SELECT TOP 10 x FROM t WHERE a = 3 ORDER BY x",
		"SELECT DISTINCT a FROM t WHERE x >= 9000",
	}

	bases := map[string]*catalog.Configuration{
		"heap": catalog.NewConfiguration(),
	}
	clustered := catalog.NewConfiguration()
	cix := catalog.NewIndex("t", "id")
	cix.Clustered = true
	clustered.AddIndex(cix)
	bases["clustered"] = clustered
	parted := catalog.NewConfiguration()
	parted.SetTablePartitioning("t", catalog.NewPartitionScheme("x", 10, 100, 1000, 5000))
	bases["partitioned"] = parted

	for baseName, base := range bases {
		for _, q := range queries {
			stmt := sqlparser.MustParse(q)
			full := applySubset(base, adds, (1<<len(adds))-1)
			res, alts, err := o.OptimizeAlternatives(stmt, full)
			if err != nil {
				t.Fatalf("%s/%q: OptimizeAlternatives: %v", baseName, q, err)
			}
			direct, err := o.Optimize(stmt, full)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost != direct.Cost {
				t.Fatalf("%s/%q: OptimizeAlternatives cost %v != Optimize cost %v", baseName, q, res.Cost, direct.Cost)
			}
			if alts == nil {
				t.Fatalf("%s/%q: single-scope SELECT must produce a skeleton", baseName, q)
			}
			for mask := 0; mask < 1<<len(adds); mask++ {
				sub := applySubset(base, adds, mask)
				has := func(key string) bool {
					for i, s := range adds {
						if mask&(1<<i) != 0 && s.Key() == key {
							return true
						}
					}
					return false
				}
				got, gotUsed, ok := alts.Select(has)
				if !ok {
					t.Fatalf("%s/%q mask %b: Select failed", baseName, q, mask)
				}
				want, err := o.Optimize(stmt, sub)
				if err != nil {
					t.Fatal(err)
				}
				if got != want.Cost {
					t.Fatalf("%s/%q mask %b: replayed cost %v != direct cost %v", baseName, q, mask, got, want.Cost)
				}
				sort.Strings(gotUsed)
				wantUsed := append([]string(nil), want.UsedStructures...)
				sort.Strings(wantUsed)
				if len(gotUsed) != len(wantUsed) {
					t.Fatalf("%s/%q mask %b: replayed used %v != direct used %v", baseName, q, mask, gotUsed, wantUsed)
				}
				for i := range gotUsed {
					if gotUsed[i] != wantUsed[i] {
						t.Fatalf("%s/%q mask %b: replayed used %v != direct used %v", baseName, q, mask, gotUsed, wantUsed)
					}
				}
			}
		}
	}
}

// TestAlternativesNilForJoinsAndDML: statements the skeleton cannot decompose
// report no skeleton and identical Optimize results.
func TestAlternativesNilForJoinsAndDML(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	cfg := catalog.NewConfiguration()
	cfg.AddIndex(catalog.NewIndex("t", "x"))
	cfg.AddIndex(catalog.NewIndex("d", "d_id").WithInclude("name"))

	for _, q := range []string{
		"SELECT d.name FROM t, d WHERE t.d_id = d.d_id AND t.x = 17",
		"UPDATE t SET x = 1 WHERE id = 77",
	} {
		stmt := sqlparser.MustParse(q)
		res, alts, err := o.OptimizeAlternatives(stmt, cfg)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if alts != nil {
			t.Fatalf("%q: expected no skeleton", q)
		}
		direct, err := o.Optimize(stmt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != direct.Cost || math.IsNaN(res.Cost) {
			t.Fatalf("%q: cost %v != direct %v", q, res.Cost, direct.Cost)
		}
	}
}

// TestTieBreakIsOrderIndependent pins the pathLess property the derivation
// layer depends on: two exactly symmetric covering indexes cost the same, and
// the optimizer picks the same one regardless of the order the configuration
// lists them in.
func TestTieBreakIsOrderIndependent(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	q := sqlparser.MustParse("SELECT a FROM t WHERE a < 50")
	ix1 := catalog.NewIndex("t", "a").WithInclude("x")
	ix2 := catalog.NewIndex("t", "a").WithInclude("d_id")

	fwd := catalog.NewConfiguration()
	fwd.AddIndex(ix1)
	fwd.AddIndex(ix2)
	rev := catalog.NewConfiguration()
	rev.AddIndex(ix2)
	rev.AddIndex(ix1)

	rf, err := o.Optimize(q, fwd)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := o.Optimize(q, rev)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Cost != rr.Cost {
		t.Fatalf("tied configs must cost the same: %v vs %v", rf.Cost, rr.Cost)
	}
	if len(rf.UsedStructures) != 1 || len(rr.UsedStructures) != 1 || rf.UsedStructures[0] != rr.UsedStructures[0] {
		t.Fatalf("tie must break identically under both orders: %v vs %v", rf.UsedStructures, rr.UsedStructures)
	}
}
