package optimizer

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
)

// Maintenance cost constants (sequential-page units).
const (
	baseWritePerRow = 0.002 // write one heap/clustered row
	viewMaintPerRow = 0.02  // incremental maintenance of one view per changed row
)

// indexMaintPerRow returns the per-row maintenance cost of one index: a
// B-tree descent plus a leaf write.
func (c *optContext) indexMaintPerRow() float64 {
	return 2*c.hw().RandomFactor*0.25 + baseWritePerRow
}

// optimizeInsert costs an INSERT: base write plus maintenance of every
// index and every materialized view referencing the table. This is what
// makes redundant structures expensive for update-intensive workloads
// (paper §3).
func (c *optContext) optimizeInsert(s *sqlparser.Insert) (*Plan, error) {
	q, err := c.opt.analyze(s)
	if err != nil {
		return nil, err
	}
	t := q.Scopes[0].Table
	rows := float64(q.InsertRowCount)
	if rows < 1 {
		rows = 1
	}
	return c.maintenancePlan("Insert", t, rows, nil, nil), nil
}

// optimizeUpdate costs an UPDATE: locating the affected rows (a SELECT-like
// access) plus per-row maintenance of the base data, of every index whose
// columns are modified, and of every view referencing the table.
func (c *optContext) optimizeUpdate(s *sqlparser.Update) (*Plan, error) {
	q, err := c.opt.analyze(s)
	if err != nil {
		return nil, err
	}
	scope := q.Scopes[0]
	access, _ := c.bestAccess(scope, nil)
	modified := map[string]bool{}
	for _, col := range q.SetColumns {
		modified[col] = true
	}
	return c.maintenancePlan("Update", scope.Table, access.rows, modified, access.plan), nil
}

// optimizeDelete costs a DELETE: locating the rows plus removing them from
// the base data, every index, and every referencing view.
func (c *optContext) optimizeDelete(s *sqlparser.Delete) (*Plan, error) {
	q, err := c.opt.analyze(s)
	if err != nil {
		return nil, err
	}
	scope := q.Scopes[0]
	access, _ := c.bestAccess(scope, nil)
	return c.maintenancePlan("Delete", scope.Table, access.rows, nil, access.plan), nil
}

// maintenancePlan builds the modification plan. modifiedCols, when non-nil
// (UPDATE), restricts index maintenance to indexes touching those columns.
func (c *optContext) maintenancePlan(op string, t *catalog.Table, rows float64, modifiedCols map[string]bool, access *Plan) *Plan {
	cost := startupCost + rows*baseWritePerRow
	var children []*Plan
	if access != nil {
		cost += access.Cost
		children = append(children, access)
	}

	maintained := 0
	for _, ix := range c.cfg.IndexesOn(t.Name) {
		if modifiedCols != nil && !ix.Clustered {
			touched := false
			for _, col := range ix.AllColumns() {
				if modifiedCols[col] {
					touched = true
					break
				}
			}
			if !touched {
				continue
			}
		}
		if modifiedCols != nil && ix.Clustered {
			// A clustered index is maintained only when its key moves.
			touched := false
			for _, col := range ix.KeyColumns {
				if modifiedCols[col] {
					touched = true
					break
				}
			}
			if !touched {
				continue
			}
		}
		cost += rows * c.indexMaintPerRow()
		maintained++
		children = append(children, &Plan{Op: "IndexMaintenance", Detail: ix.String(),
			Cost: rows * c.indexMaintPerRow(), Rows: rows, Structure: ix.Key()})
	}

	for _, v := range c.cfg.ViewsOver(t.Name) {
		// View maintenance scales with the view's complexity: each extra
		// joined table multiplies the per-row work (the change must be
		// joined against the other tables).
		factor := viewMaintPerRow * float64(len(v.Tables))
		if len(v.GroupBy) > 0 {
			factor *= 1.5
		}
		if modifiedCols != nil && !viewTouches(v, t.Name, modifiedCols) {
			continue
		}
		cost += rows * factor
		children = append(children, &Plan{Op: "ViewMaintenance", Detail: v.Name,
			Cost: rows * factor, Rows: rows, Structure: v.Key()})
	}

	detail := fmt.Sprintf("%s %s (%d structures maintained)", op, t.Name, len(children))
	return &Plan{Op: op, Detail: detail, Cost: cost, Rows: rows, Children: children}
}

// viewTouches reports whether an UPDATE of the given columns affects the
// view's contents.
func viewTouches(v *catalog.MaterializedView, table string, modified map[string]bool) bool {
	for _, o := range v.OutputColumns {
		if o.Table == table && modified[o.Column] {
			return true
		}
	}
	for _, g := range v.GroupBy {
		if g.Table == table && modified[g.Column] {
			return true
		}
	}
	for _, a := range v.Aggs {
		if a.Col.Table == table && modified[a.Col.Column] {
			return true
		}
	}
	for _, j := range v.JoinPreds {
		if (j.Left.Table == table && modified[j.Left.Column]) ||
			(j.Right.Table == table && modified[j.Right.Column]) {
			return true
		}
	}
	return false
}
