package optimizer

import "math"

// FinishSpec captures everything the post-join finish chain (residual
// filters, aggregation, HAVING, DISTINCT, ORDER BY, TOP) needs about a query,
// with no reference back to the catalog or configuration. All fields are
// configuration-independent, so a plan skeleton can serialize the spec once
// and re-run the finish arithmetic — through the same code path the live
// optimizer uses — for any structure subset, reproducing costs bit-for-bit.
type FinishSpec struct {
	// PostSels holds the clamped selectivity of each post-join residual
	// filter, in query order.
	PostSels []float64
	// HasGroup/HasAggs mirror len(GroupBy) > 0 and len(Aggs) > 0.
	HasGroup bool
	HasAggs  bool
	// GroupDistinct is the raw (uncapped) distinct-group estimate; the finish
	// caps it by the input cardinality.
	GroupDistinct float64
	// Want is the interesting order the aggregate checks the input against.
	Want []string
	// HasHaving applies the 0.3-selectivity HAVING filter.
	HasHaving bool
	// Distinct applies the hash-distinct step.
	Distinct bool
	// HasOrderBy applies the ordering step, with OrderWant the wanted column
	// order; OrderOK is false when some ORDER BY column could not be resolved
	// to a scope (the sort is then unconditional and OrderWant is partial).
	HasOrderBy bool
	OrderWant  []string
	OrderOK    bool
	// Top is the TOP row limit (0 = none).
	Top int
	// HW is the hardware model the hash/sort operators price against.
	HW Hardware
}

// finishSpec captures the finish chain of the query.
func (c *optContext) finishSpec(q *QueryInfo) FinishSpec {
	s := FinishSpec{
		HasGroup:      len(q.GroupBy) > 0,
		HasAggs:       len(q.Aggs) > 0,
		GroupDistinct: 1,
		HasHaving:     q.HasHaving,
		Distinct:      q.Distinct,
		HasOrderBy:    len(q.OrderBy) > 0,
		OrderOK:       true,
		Top:           q.Top,
		HW:            c.hw(),
	}
	for _, f := range q.PostFilters {
		s.PostSels = append(s.PostSels, clampSel(f.Sel))
	}
	if s.HasGroup || s.HasAggs {
		if s.HasGroup {
			s.GroupDistinct = c.groupDistinct(q)
		}
		s.Want = c.interestingOrder(q)
	}
	if s.HasOrderBy {
		for _, o := range q.OrderBy {
			if o.Scope < 0 {
				s.OrderOK = false
				break
			}
			s.OrderWant = append(s.OrderWant, q.Scopes[o.Scope].Table.Name+"."+o.Column)
		}
	}
	return s
}

// finish appends the captured chain on top of the input plan. This is THE
// finish implementation: the live optimizer's finishSelect and the skeleton
// replay both run it, so a replayed cost is the same float sequence the
// optimizer would compute.
func (s *FinishSpec) finish(plan *Plan, rows float64, width int) *Plan {
	// Post-join residual filters.
	for _, sel := range s.PostSels {
		rows *= sel
	}
	if rows < 1 {
		rows = 1
	}

	// Grouping / aggregation.
	if s.HasGroup || s.HasAggs {
		groups := 1.0
		if s.HasGroup {
			groups = capGroups(s.GroupDistinct, rows)
		}
		if s.HasGroup && orderedPrefix(plan.Ordered, s.Want) {
			cost := plan.Cost + rows*cpuPerRow
			plan = &Plan{Op: "StreamAggregate", Cost: cost, Rows: groups,
				Pages: pagesF(groups, width), Children: []*Plan{plan}, Ordered: plan.Ordered}
		} else {
			cost := plan.Cost + hashCostHW(s.HW, groups, pagesF(groups, width), rows)
			plan = &Plan{Op: "HashAggregate", Cost: cost, Rows: groups,
				Pages: pagesF(groups, width), Children: []*Plan{plan}}
		}
		rows = groups
	}

	if s.HasHaving {
		rows = math.Max(1, rows*0.3)
		plan = &Plan{Op: "Filter", Detail: "HAVING", Cost: plan.Cost + rows*cpuPerRow,
			Rows: rows, Pages: pagesF(rows, width), Children: []*Plan{plan}, Ordered: plan.Ordered}
	}

	if s.Distinct {
		d := math.Max(1, rows/2)
		plan = &Plan{Op: "HashDistinct", Cost: plan.Cost + hashCostHW(s.HW, d, pagesF(d, width), rows),
			Rows: d, Pages: pagesF(d, width), Children: []*Plan{plan}}
		rows = d
	}

	// Ordering.
	if s.HasOrderBy {
		if !s.OrderOK || !orderedPrefix(plan.Ordered, s.OrderWant) {
			plan = &Plan{Op: "Sort", Cost: plan.Cost + sortCostHW(s.HW, rows, pagesF(rows, width)),
				Rows: rows, Pages: pagesF(rows, width), Children: []*Plan{plan}, Ordered: s.OrderWant}
		}
	}

	if s.Top > 0 && float64(s.Top) < rows {
		rows = float64(s.Top)
		plan = &Plan{Op: "Top", Cost: plan.Cost + startupCost, Rows: rows,
			Pages: pagesF(rows, width), Children: []*Plan{plan}, Ordered: plan.Ordered}
	}
	return plan
}
