package optimizer

import (
	"math"
	"math/bits"
)

// joined is a DP state: the best left-deep plan for a subset of scopes.
type joined struct {
	plan  *Plan
	rows  float64
	width int // summed required-column width, for page estimates
}

func (j joined) pages() float64 { return pagesF(j.rows, j.width) }

// joinSrc supplies the per-scope and per-edge inputs the join composition
// consumes: access paths, join-edge selectivities, index-nested-loop probe
// candidates, and the hardware model. The live optimizer backs it with the
// configuration and catalog (liveJoinSrc); a replayed plan skeleton backs it
// with captured alternatives restricted to a structure subset (replayJoinSrc).
// Every quantity a joinSrc returns is independent of which *additive*
// structures the configuration holds beyond availability — the property that
// lets composeJoin run the bit-identical arithmetic on both sides.
type joinSrc interface {
	// scopeCount is the number of scopes joined.
	scopeCount() int
	// access returns the cheapest access path of scope i (pathLess minimum
	// over the available paths) with the scope's output rows and width.
	access(i int) joined
	// binding is the scope's display label for plan details.
	binding(i int) string
	// edges lists the query's join edges (scope indices and columns).
	edges() []JoinEdge
	// edgeSel is the selectivity of edge k (symmetric: the classic
	// 1/max(distinct) rule does not depend on join direction).
	edgeSel(k int) float64
	// probe returns the cheapest index-nested-loop probe plan into scope i on
	// the join column for the given outer cardinality, or nil when no index
	// with that leading key is available.
	probe(i int, col string, outerRows float64) *Plan
	// hardware is the cost-model hardware the composition prices against.
	hardware() Hardware
}

// joinScopes computes the best left-deep join over all scopes of the query
// using dynamic programming over connected subsets (greedy fallback above
// dpMaxTables tables).
func (c *optContext) joinScopes(q *QueryInfo) joined {
	return composeJoin(liveJoinSrc{c: c, q: q})
}

const dpMaxTables = 10

// composeJoin runs the join-order search over a source: DP over connected
// subsets up to dpMaxTables scopes, greedy beyond that or when the join graph
// is disconnected. Both the search order and every tie-break are
// deterministic, so two sources supplying bit-identical inputs produce
// bit-identical plans — the contract the derivation layer's skeleton replay
// rests on.
func composeJoin(src joinSrc) joined {
	n := src.scopeCount()
	if n == 1 {
		return src.access(0)
	}
	if n <= dpMaxTables {
		if res, ok := composeDP(src); ok {
			return res
		}
	}
	return composeGreedy(src)
}

// composeDP is the dynamic program over connected subsets; ok is false for a
// disconnected join graph (no complete plan reachable through connected
// extensions).
func composeDP(src joinSrc) (joined, bool) {
	n := src.scopeCount()
	best := make(map[uint64]joined, 1<<n)
	// Singletons.
	for i := 0; i < n; i++ {
		best[1<<i] = src.access(i)
	}
	full := uint64(1)<<n - 1
	// Grow subsets by size.
	for size := 2; size <= n; size++ {
		for sub := uint64(1); sub <= full; sub++ {
			if bits.OnesCount64(sub) != size {
				continue
			}
			var cur joined
			found := false
			for j := 0; j < n; j++ {
				bit := uint64(1) << j
				if sub&bit == 0 {
					continue
				}
				rest := sub &^ bit
				left, ok := best[rest]
				if !ok {
					continue
				}
				// Require connectivity unless the subset has no internal
				// joins at all (cross join fallback).
				connected := connects(src.edges(), rest, j)
				if !connected && len(src.edges()) > 0 {
					continue
				}
				cand := composeWith(src, left, rest, j)
				if !found || cand.plan.Cost < cur.plan.Cost {
					cur, found = cand, true
				}
			}
			if found {
				best[sub] = cur
			}
		}
	}
	res, ok := best[full]
	return res, ok
}

// connects reports whether scope j has a join edge into the subset.
func connects(edges []JoinEdge, subset uint64, j int) bool {
	for _, e := range edges {
		if e.L == j && subset&(1<<e.R) != 0 {
			return true
		}
		if e.R == j && subset&(1<<e.L) != 0 {
			return true
		}
	}
	return false
}

// composeWith extends the left intermediate with scope j, choosing the
// cheapest of hash join and index nested loops.
func composeWith(src joinSrc, left joined, leftSet uint64, j int) joined {
	rightBest := src.access(j)

	// Combined cardinality: apply every edge between leftSet and j.
	sel := 1.0
	var joinCols []string // join columns on the right side, for INL
	for k, e := range src.edges() {
		var rcol string
		switch {
		case e.L == j && leftSet&(1<<e.R) != 0:
			rcol = e.LCol
		case e.R == j && leftSet&(1<<e.L) != 0:
			rcol = e.RCol
		default:
			continue
		}
		sel *= src.edgeSel(k)
		joinCols = append(joinCols, rcol)
	}
	outRows := left.rows * rightBest.rows * sel
	if len(joinCols) == 0 {
		outRows = left.rows * rightBest.rows // cartesian
	}
	if outRows < 1 {
		outRows = 1
	}
	width := left.width + rightBest.width
	out := joined{rows: outRows, width: width}

	// Hash join (build on the smaller input).
	buildRows, probeRows := rightBest.rows, left.rows
	buildPages := rightBest.pages()
	if left.rows < rightBest.rows {
		buildRows, probeRows = left.rows, rightBest.rows
		buildPages = left.pages()
	}
	hashCost := left.plan.Cost + rightBest.plan.Cost + hashCostHW(src.hardware(), buildRows, buildPages, probeRows)
	out.plan = &Plan{
		Op: "HashJoin", Detail: src.binding(j), Cost: hashCost, Rows: outRows,
		Pages: out.pages(), Children: []*Plan{left.plan, rightBest.plan},
	}

	// Index nested loops: for each join column on the right, look for an
	// index (clustered or not) whose leading key is that column.
	for _, jc := range joinCols {
		if inl := src.probe(j, jc, left.rows); inl != nil {
			cost := left.plan.Cost + inl.Cost
			if cost < out.plan.Cost {
				out.plan = &Plan{
					Op: "IndexLoopJoin", Detail: src.binding(j) + " via " + inl.Detail,
					Cost: cost, Rows: outRows, Pages: out.pages(),
					Children: []*Plan{left.plan, inl}, Structure: inl.Structure,
				}
			}
		}
	}
	return out
}

// composeGreedy builds a left-deep join greedily: start from the cheapest
// access path, repeatedly add the connected scope with the lowest resulting
// cost (scanning scopes in index order, so ties and disconnected fallbacks
// resolve deterministically). It always produces a complete plan.
func composeGreedy(src joinSrc) joined {
	n := src.scopeCount()
	remaining := make([]bool, n)
	left := n
	// Seed with the scope whose access is cheapest (first wins on exact
	// ties, in scope order).
	seed, seedCost := 0, math.Inf(1)
	for i := 0; i < n; i++ {
		remaining[i] = true
		if ap := src.access(i); ap.plan.Cost < seedCost {
			seed, seedCost = i, ap.plan.Cost
		}
	}
	cur := src.access(seed)
	curSet := uint64(1) << seed
	remaining[seed] = false
	left--
	for left > 0 {
		bestJ, bestCand, found := -1, joined{}, false
		connectable := anyConnected(src.edges(), remaining, curSet)
		for j := 0; j < n; j++ {
			if !remaining[j] {
				continue
			}
			if !connects(src.edges(), curSet, j) && connectable {
				continue // prefer connected extensions while any exist
			}
			cand := composeWith(src, cur, curSet, j)
			if !found || cand.plan.Cost < bestCand.plan.Cost {
				bestJ, bestCand, found = j, cand, true
			}
		}
		if !found {
			for j := 0; j < n; j++ {
				if remaining[j] {
					bestJ = j
					bestCand = composeWith(src, cur, curSet, j)
					break
				}
			}
		}
		cur = bestCand
		curSet |= 1 << bestJ
		remaining[bestJ] = false
		left--
	}
	return cur
}

func anyConnected(edges []JoinEdge, remaining []bool, curSet uint64) bool {
	for _, e := range edges {
		if remaining[e.L] && curSet&(1<<e.R) != 0 {
			return true
		}
		if remaining[e.R] && curSet&(1<<e.L) != 0 {
			return true
		}
	}
	return false
}

// liveJoinSrc drives the join composition from the live optimizer state: the
// configuration, catalog, and statistics behind the optContext.
type liveJoinSrc struct {
	c *optContext
	q *QueryInfo
}

func (s liveJoinSrc) scopeCount() int { return len(s.q.Scopes) }

func (s liveJoinSrc) access(i int) joined {
	ap, _ := s.c.bestAccess(s.q.Scopes[i], nil)
	return joined{plan: ap.plan, rows: ap.rows, width: s.q.Scopes[i].Table.ColumnWidth(s.q.Scopes[i].Required)}
}

func (s liveJoinSrc) binding(i int) string { return s.q.Scopes[i].Binding }

func (s liveJoinSrc) edges() []JoinEdge { return s.q.Joins }

func (s liveJoinSrc) edgeSel(k int) float64 {
	e := s.q.Joins[k]
	return s.c.joinSelectivity(s.q.Scopes[e.L], e.LCol, s.q.Scopes[e.R], e.RCol)
}

func (s liveJoinSrc) probe(i int, col string, outerRows float64) *Plan {
	return s.c.indexLoopCost(s.q.Scopes[i], col, outerRows)
}

func (s liveJoinSrc) hardware() Hardware { return s.c.hw() }

// probeCand is one index-nested-loop probe candidate into a scope: the cost
// of one probe through a specific index (clustered or non-clustered). The
// per-probe cost is independent of the outer cardinality and of which other
// additive structures the configuration holds, which is what lets a plan
// skeleton carry candidates and re-price them for any outer row count.
type probeCand struct {
	perProbe  float64
	detail    string
	structure string
	gate      string // additive structure key required, "" = always available
}

// chooseProbe picks the cheapest probe candidate for the given outer
// cardinality, breaking exact cost ties by structure key (every candidate is
// an IndexProbe, so the structure key alone completes the pathLess order).
// Returns the winner and its total cost; ok is false with no candidates.
func chooseProbe(cands []probeCand, outerRows float64) (probeCand, float64, bool) {
	var win probeCand
	var winTotal float64
	found := false
	for _, pc := range cands {
		total := startupCost + outerRows*pc.perProbe
		if !found || total < winTotal || (total == winTotal && pc.structure < win.structure) {
			win, winTotal, found = pc, total, true
		}
	}
	return win, winTotal, found
}

// probeCands enumerates the INL probe candidates of a scope on the join
// column under the configuration: the clustered index when its leading key is
// the join column, and every non-clustered index likewise (with a per-row
// RID-lookup surcharge when not covering). matchRows is the per-probe match
// cardinality the caller computed.
func (c *optContext) probeCands(s *Scope, joinCol string, matchRows float64) []probeCand {
	t := s.Table
	var out []probeCand
	if cl := c.cfg.ClusteredIndex(t.Name); cl != nil && cl.KeyColumns[0] == joinCol {
		c.wantStat(t.Name, cl.KeyColumns)
		perProbe := btreeDepth(float64(t.Pages()))*c.hw().RandomFactor + matchRows*cpuPerRow
		// The clustered index is a base structure: present in every
		// sub-configuration of a derivation scope, so no gate.
		out = append(out, probeCand{perProbe: perProbe, detail: cl.String(), structure: cl.Key()})
	}
	for _, ix := range c.cfg.IndexesOn(t.Name) {
		if ix.Clustered || ix.KeyColumns[0] != joinCol {
			continue
		}
		c.wantStat(t.Name, ix.KeyColumns)
		perProbe := btreeDepth(float64(ix.Pages(t)))*c.hw().RandomFactor + matchRows*cpuPerRow
		if !ix.Covers(s.Required) {
			perProbe += matchRows * c.hw().RandomFactor
		}
		out = append(out, probeCand{perProbe: perProbe, detail: ix.String(), structure: ix.Key(), gate: ix.Key()})
	}
	return out
}

// indexLoopCost returns a pseudo-plan for probing the right table once per
// outer row through an index on the join column, or nil when no such index
// exists. Exact cost ties between candidate indexes break by structure key —
// never by the order the configuration lists them in — so the chosen probe
// is the one a skeleton replay of the same candidates chooses.
func (c *optContext) indexLoopCost(s *Scope, joinCol string, outerRows float64) *Plan {
	t := s.Table
	// Rows matching one probe value.
	matchRows := float64(t.Rows) * c.density(t, []string{joinCol})
	if matchRows < 1 {
		matchRows = 1
	}
	// Residual local predicates still apply per probe.
	localSel := c.scopeSelectivity(s)
	win, total, ok := chooseProbe(c.probeCands(s, joinCol, matchRows), outerRows)
	if !ok {
		return nil
	}
	return &Plan{Op: "IndexProbe", Detail: win.detail, Cost: total,
		Rows: outerRows * matchRows * localSel, Structure: win.structure}
}
