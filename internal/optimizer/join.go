package optimizer

import (
	"math"
	"math/bits"
)

// joined is a DP state: the best left-deep plan for a subset of scopes.
type joined struct {
	plan  *Plan
	rows  float64
	width int // summed required-column width, for page estimates
}

func (j joined) pages() float64 { return pagesF(j.rows, j.width) }

// joinScopes computes the best left-deep join over all scopes of the query
// using dynamic programming over connected subsets (greedy fallback above
// dpMaxTables tables).
func (c *optContext) joinScopes(q *QueryInfo) joined {
	n := len(q.Scopes)
	if n == 1 {
		best, _ := c.bestAccess(q.Scopes[0], nil)
		return joined{plan: best.plan, rows: best.rows, width: q.Scopes[0].Table.ColumnWidth(q.Scopes[0].Required)}
	}
	if n <= dpMaxTables {
		return c.joinDP(q)
	}
	return c.joinGreedy(q)
}

const dpMaxTables = 10

func (c *optContext) joinDP(q *QueryInfo) joined {
	n := len(q.Scopes)
	best := make(map[uint64]joined, 1<<n)
	// Singletons.
	for i := 0; i < n; i++ {
		ap, _ := c.bestAccess(q.Scopes[i], nil)
		best[1<<i] = joined{plan: ap.plan, rows: ap.rows, width: q.Scopes[i].Table.ColumnWidth(q.Scopes[i].Required)}
	}
	full := uint64(1)<<n - 1
	// Grow subsets by size.
	for size := 2; size <= n; size++ {
		for sub := uint64(1); sub <= full; sub++ {
			if bits.OnesCount64(sub) != size {
				continue
			}
			var cur joined
			found := false
			for j := 0; j < n; j++ {
				bit := uint64(1) << j
				if sub&bit == 0 {
					continue
				}
				rest := sub &^ bit
				left, ok := best[rest]
				if !ok {
					continue
				}
				// Require connectivity unless the subset has no internal
				// joins at all (cross join fallback).
				connected := c.connects(q, rest, j)
				if !connected && c.hasAnyJoin(q, rest, j) {
					continue
				}
				cand := c.joinWith(q, left, rest, j)
				if !found || cand.plan.Cost < cur.plan.Cost {
					cur, found = cand, true
				}
			}
			if found {
				best[sub] = cur
			}
		}
	}
	if res, ok := best[full]; ok {
		return res
	}
	// Disconnected join graph: fall back to greedy, which always completes.
	return c.joinGreedy(q)
}

// connects reports whether scope j has a join edge into the subset.
func (c *optContext) connects(q *QueryInfo, subset uint64, j int) bool {
	for _, e := range q.Joins {
		if e.L == j && subset&(1<<e.R) != 0 {
			return true
		}
		if e.R == j && subset&(1<<e.L) != 0 {
			return true
		}
	}
	return false
}

// hasAnyJoin reports whether any join edge exists between the subset ∪ {j}
// and anything — used to permit cartesian products only for genuinely
// join-free queries.
func (c *optContext) hasAnyJoin(q *QueryInfo, subset uint64, j int) bool {
	return len(q.Joins) > 0
}

// joinWith extends the left intermediate with scope j, choosing the cheapest
// of hash join and index nested loops.
func (c *optContext) joinWith(q *QueryInfo, left joined, leftSet uint64, j int) joined {
	right := q.Scopes[j]
	rightBest, _ := c.bestAccess(right, nil)

	// Combined cardinality: apply every edge between leftSet and j.
	sel := 1.0
	var joinCols []string // join columns on the right side, for INL
	for _, e := range q.Joins {
		var rcol string
		switch {
		case e.L == j && leftSet&(1<<e.R) != 0:
			rcol = e.LCol
			sel *= c.joinSelectivity(q.Scopes[e.R], e.RCol, right, e.LCol)
		case e.R == j && leftSet&(1<<e.L) != 0:
			rcol = e.RCol
			sel *= c.joinSelectivity(q.Scopes[e.L], e.LCol, right, e.RCol)
		default:
			continue
		}
		joinCols = append(joinCols, rcol)
	}
	outRows := left.rows * rightBest.rows * sel
	if len(joinCols) == 0 {
		outRows = left.rows * rightBest.rows // cartesian
	}
	if outRows < 1 {
		outRows = 1
	}
	width := left.width + right.Table.ColumnWidth(right.Required)
	out := joined{rows: outRows, width: width}

	// Hash join (build on the smaller input).
	buildRows, probeRows := rightBest.rows, left.rows
	buildPages := rightBest.pages
	if left.rows < rightBest.rows {
		buildRows, probeRows = left.rows, rightBest.rows
		buildPages = left.pages()
	}
	hashCost := left.plan.Cost + rightBest.plan.Cost + c.hashCost(buildRows, buildPages, probeRows)
	out.plan = &Plan{
		Op: "HashJoin", Detail: right.Binding, Cost: hashCost, Rows: outRows,
		Pages: out.pages(), Children: []*Plan{left.plan, rightBest.plan},
	}

	// Index nested loops: for each join column on the right, look for an
	// index (clustered or not) whose leading key is that column.
	for _, jc := range joinCols {
		if inl := c.indexLoopCost(right, jc, left.rows); inl != nil {
			cost := left.plan.Cost + inl.Cost
			if cost < out.plan.Cost {
				out.plan = &Plan{
					Op: "IndexLoopJoin", Detail: right.Binding + " via " + inl.Detail,
					Cost: cost, Rows: outRows, Pages: out.pages(),
					Children: []*Plan{left.plan, inl}, Structure: inl.Structure,
				}
			}
		}
	}
	return out
}

// indexLoopCost returns a pseudo-plan for probing the right table once per
// outer row through an index on the join column, or nil when no such index
// exists.
func (c *optContext) indexLoopCost(s *Scope, joinCol string, outerRows float64) *Plan {
	t := s.Table
	// Rows matching one probe value.
	matchRows := float64(t.Rows) * c.density(t, []string{joinCol})
	if matchRows < 1 {
		matchRows = 1
	}
	// Residual local predicates still apply per probe.
	localSel := c.scopeSelectivity(s)

	var bestPlan *Plan
	consider := func(cost float64, detail, structure string) {
		total := startupCost + outerRows*cost
		if bestPlan == nil || total < bestPlan.Cost {
			bestPlan = &Plan{Op: "IndexProbe", Detail: detail, Cost: total,
				Rows: outerRows * matchRows * localSel, Structure: structure}
		}
	}
	if cl := c.cfg.ClusteredIndex(t.Name); cl != nil && cl.KeyColumns[0] == joinCol {
		c.wantStat(t.Name, cl.KeyColumns)
		perProbe := btreeDepth(float64(t.Pages()))*c.hw().RandomFactor + matchRows*cpuPerRow
		consider(perProbe, cl.String(), cl.Key())
	}
	for _, ix := range c.cfg.IndexesOn(t.Name) {
		if ix.Clustered || ix.KeyColumns[0] != joinCol {
			continue
		}
		c.wantStat(t.Name, ix.KeyColumns)
		perProbe := btreeDepth(float64(ix.Pages(t)))*c.hw().RandomFactor + matchRows*cpuPerRow
		if !ix.Covers(s.Required) {
			perProbe += matchRows * c.hw().RandomFactor
		}
		consider(perProbe, ix.String(), ix.Key())
	}
	return bestPlan
}

// joinGreedy builds a left-deep join greedily: start from the cheapest
// access path, repeatedly add the connected scope with the lowest resulting
// cost. It always produces a complete plan.
func (c *optContext) joinGreedy(q *QueryInfo) joined {
	n := len(q.Scopes)
	remaining := make(map[int]bool, n)
	for i := range q.Scopes {
		remaining[i] = true
	}
	// Seed with the scope whose access is cheapest.
	seed, seedCost := 0, math.Inf(1)
	for i := range q.Scopes {
		ap, _ := c.bestAccess(q.Scopes[i], nil)
		if ap.plan.Cost < seedCost {
			seed, seedCost = i, ap.plan.Cost
		}
	}
	ap, _ := c.bestAccess(q.Scopes[seed], nil)
	cur := joined{plan: ap.plan, rows: ap.rows, width: q.Scopes[seed].Table.ColumnWidth(q.Scopes[seed].Required)}
	curSet := uint64(1) << seed
	delete(remaining, seed)
	for len(remaining) > 0 {
		bestJ, bestCand, found := -1, joined{}, false
		for j := range remaining {
			if !c.connects(q, curSet, j) && anyConnected(q, remaining, curSet) {
				continue // prefer connected extensions while any exist
			}
			cand := c.joinWith(q, cur, curSet, j)
			if !found || cand.plan.Cost < bestCand.plan.Cost {
				bestJ, bestCand, found = j, cand, true
			}
		}
		if !found {
			for j := range remaining {
				bestJ = j
				bestCand = c.joinWith(q, cur, curSet, j)
				break
			}
		}
		cur = bestCand
		curSet |= 1 << bestJ
		delete(remaining, bestJ)
	}
	return cur
}

func anyConnected(q *QueryInfo, remaining map[int]bool, curSet uint64) bool {
	for _, e := range q.Joins {
		if remaining[e.L] && curSet&(1<<e.R) != 0 {
			return true
		}
		if remaining[e.R] && curSet&(1<<e.L) != 0 {
			return true
		}
	}
	return false
}
