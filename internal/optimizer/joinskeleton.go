package optimizer

import (
	"sort"
	"strings"

	"repro/internal/catalog"
)

// ScopeAlt is one access-path alternative of one join scope: the pre-join
// cost of producing the scope's filtered rows through a specific physical
// structure. Pre, like every skeleton quantity, is independent of which other
// additive structures the configuration holds.
type ScopeAlt struct {
	// Gate is the additive structure key that must be present for the
	// alternative to exist ("" = base access, available everywhere).
	Gate string
	// Op and Struct are the access plan's operator and structure key, the
	// pathLess tie-break fields (Struct can be non-empty for gateless base
	// paths: a clustered key or a table-partitioning key).
	Op     string
	Struct string
	// Pre is the access plan cost.
	Pre float64
}

// scopeAltLess mirrors pathLess over scope alternatives.
func scopeAltLess(a, b *ScopeAlt) bool {
	if a.Pre != b.Pre {
		return a.Pre < b.Pre
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	return a.Struct < b.Struct
}

// SkeletonScope carries one scope of a join skeleton: its filtered output
// cardinality and width (shared by every access path) and the costed
// alternatives.
type SkeletonScope struct {
	Binding string
	Rows    float64
	Width   int
	Alts    []ScopeAlt
}

// SkeletonEdge is one join edge with its captured selectivity. Sel is
// direction-symmetric (1/max(distinct) does not depend on join order), so a
// single float reproduces the live computation for either build direction.
type SkeletonEdge struct {
	L, R       int
	LCol, RCol string
	Sel        float64
}

// SkeletonProbe is one index-nested-loop probe candidate into a scope on a
// join column: the per-probe cost through a specific index. The replay
// re-prices it for any outer cardinality as startupCost + outer·PerProbe —
// the same arithmetic indexLoopCost runs.
type SkeletonProbe struct {
	Scope    int
	Col      string
	Gate     string // "" = clustered (base) probe, always available
	Struct   string
	PerProbe float64
}

// JoinSkeleton is the plan skeleton of a multi-scope SELECT under one
// configuration: per-scope access alternatives, join-edge selectivities and
// probe candidates, matching materialized views costed end-to-end, and the
// captured finish chain. selectJoin re-runs the optimizer's join-order search
// and plan arithmetic — through the same composeJoin/finish code paths the
// live optimizer uses — restricted to any additive-structure subset,
// reproducing the cost bit-for-bit (paper §2.2's what-if interface served
// without an optimizer call; the per-scope decomposition is the INUM/CoPhy
// move, PAPERS.md).
type JoinSkeleton struct {
	Scopes []SkeletonScope
	Edges  []SkeletonEdge
	Probes []SkeletonProbe
	// Views lists matching materialized-view alternatives, reusing the
	// single-scope component shape (Pre competes with the join root's cost;
	// Final and Used are captured end-to-end).
	Views  []AltComponent
	Finish FinishSpec
	HW     Hardware
}

// joinAlternatives captures the join skeleton of a multi-scope query under
// the current configuration. The capture only repeats computations the direct
// optimization performs (access-path enumeration, edge selectivities, probe
// costing, view matching), so it introduces no new statistic requests beyond
// dedup and never perturbs the optimization result.
func (c *optContext) joinAlternatives(q *QueryInfo) *JoinSkeleton {
	js := &JoinSkeleton{Finish: c.finishSpec(q), HW: c.hw()}

	for _, s := range q.Scopes {
		sc := SkeletonScope{Binding: s.Binding, Width: s.Table.ColumnWidth(s.Required)}
		paths := c.accessPaths(s)
		if len(paths) > 0 {
			sc.Rows = paths[0].rows // all paths share the filtered cardinality
		}
		for _, p := range paths {
			gate := ""
			if p.plan.Op == "IndexSeek" || p.plan.Op == "IndexScan" {
				gate = p.plan.Structure
			}
			sc.Alts = append(sc.Alts, ScopeAlt{Gate: gate, Op: p.plan.Op, Struct: p.plan.Structure, Pre: p.plan.Cost})
		}
		js.Scopes = append(js.Scopes, sc)
	}

	for _, e := range q.Joins {
		js.Edges = append(js.Edges, SkeletonEdge{
			L: e.L, R: e.R, LCol: e.LCol, RCol: e.RCol,
			Sel: c.joinSelectivity(q.Scopes[e.L], e.LCol, q.Scopes[e.R], e.RCol),
		})
	}

	// Probe candidates: every (scope, join column) pair the composition can
	// ask for, i.e. each scope's columns across its join edges.
	for j, s := range q.Scopes {
		seen := map[string]bool{}
		for _, e := range q.Joins {
			var col string
			switch {
			case e.L == j:
				col = e.LCol
			case e.R == j:
				col = e.RCol
			default:
				continue
			}
			if seen[col] {
				continue
			}
			seen[col] = true
			matchRows := float64(s.Table.Rows) * c.density(s.Table, []string{col})
			if matchRows < 1 {
				matchRows = 1
			}
			for _, pc := range c.probeCands(s, col, matchRows) {
				js.Probes = append(js.Probes, SkeletonProbe{
					Scope: j, Col: col, Gate: pc.gate, Struct: pc.structure, PerProbe: pc.perProbe,
				})
			}
		}
	}

	// Matching views, costed end-to-end (mirrors bestViewPlan's inputs;
	// self-joins match no views).
	if len(c.cfg.Views) > 0 {
		seenT := map[string]bool{}
		var tables []string
		selfJoin := false
		for _, s := range q.Scopes {
			if seenT[s.Table.Name] {
				selfJoin = true
				break
			}
			seenT[s.Table.Name] = true
			tables = append(tables, strings.ToLower(s.Table.Name))
		}
		if !selfJoin {
			sort.Strings(tables)
			joinSet := map[string]bool{}
			for _, e := range q.Joins {
				jp := catalog.JoinPred{
					Left:  catalog.NewColRef(q.Scopes[e.L].Table.Name, e.LCol),
					Right: catalog.NewColRef(q.Scopes[e.R].Table.Name, e.RCol),
				}
				joinSet[jp.String()] = true
			}
			for _, v := range c.cfg.Views {
				if cand := c.tryView(q, v, tables, joinSet); cand != nil {
					fin := c.finishSelect(q, *cand)
					js.Views = append(js.Views, AltComponent{
						Structure: v.Key(),
						Op:        cand.plan.Op,
						View:      true,
						Pre:       cand.plan.Cost,
						Final:     fin.Cost,
						Used:      fin.structureKeys(),
					})
				}
			}
		}
	}
	return js
}

// replayJoinSrc drives the join composition from a captured skeleton
// restricted to an additive-structure subset.
type replayJoinSrc struct {
	js  *JoinSkeleton
	es  []JoinEdge
	has func(string) bool
}

func (s replayJoinSrc) scopeCount() int { return len(s.js.Scopes) }

func (s replayJoinSrc) access(i int) joined {
	sc := &s.js.Scopes[i]
	var win *ScopeAlt
	for k := range sc.Alts {
		a := &sc.Alts[k]
		if a.Gate != "" && !s.has(a.Gate) {
			continue
		}
		if win == nil || scopeAltLess(a, win) {
			win = a
		}
	}
	// win is never nil for a capture-built skeleton: the base scan is
	// gateless, so every subset keeps at least one alternative.
	return joined{
		plan:  &Plan{Op: win.Op, Cost: win.Pre, Structure: win.Struct},
		rows:  sc.Rows,
		width: sc.Width,
	}
}

func (s replayJoinSrc) binding(i int) string { return s.js.Scopes[i].Binding }

func (s replayJoinSrc) edges() []JoinEdge { return s.es }

func (s replayJoinSrc) edgeSel(k int) float64 { return s.js.Edges[k].Sel }

func (s replayJoinSrc) probe(i int, col string, outerRows float64) *Plan {
	var cands []probeCand
	for _, p := range s.js.Probes {
		if p.Scope != i || p.Col != col {
			continue
		}
		if p.Gate != "" && !s.has(p.Gate) {
			continue
		}
		cands = append(cands, probeCand{perProbe: p.PerProbe, structure: p.Struct})
	}
	win, total, ok := chooseProbe(cands, outerRows)
	if !ok {
		return nil
	}
	return &Plan{Op: "IndexProbe", Cost: total, Structure: win.structure}
}

func (s replayJoinSrc) hardware() Hardware { return s.js.HW }

// selectJoin replays the optimizer's plan choice for the subset: re-run the
// join-order search over the available scope alternatives and probes, apply
// the view rule against the join root's pre-finish cost, and run the captured
// finish chain. Every step goes through the same code the live optimizer runs
// (composeJoin, chooseProbe, FinishSpec.finish), so the replayed cost is the
// float sequence a real optimization of the subset would compute. ok is false
// only for an empty skeleton.
func (js *JoinSkeleton) selectJoin(has func(string) bool) (float64, []string, bool) {
	if len(js.Scopes) == 0 {
		return 0, nil, false
	}
	edges := make([]JoinEdge, len(js.Edges))
	for i, e := range js.Edges {
		edges[i] = JoinEdge{L: e.L, R: e.R, LCol: e.LCol, RCol: e.RCol}
	}
	root := composeJoin(replayJoinSrc{js: js, es: edges, has: has})

	// View rule: the cheapest available matching view competes against the
	// join root on pre-finish cost (the base plan keeps an exact tie).
	var vw *AltComponent
	for i := range js.Views {
		c := &js.Views[i]
		if !has(c.Structure) {
			continue
		}
		if vw == nil || altLess(c, vw) {
			vw = c
		}
	}
	if vw != nil && vw.Pre < root.plan.Cost {
		return vw.Final, append([]string(nil), vw.Used...), true
	}

	fin := js.Finish.finish(root.plan, root.rows, root.width)
	return fin.Cost, fin.structureKeys(), true
}
