package optimizer

import (
	"sort"
	"strings"

	"repro/internal/catalog"
)

// bestViewPlan returns the cheapest plan answering the query from a
// materialized view in the configuration, or nil when no view matches.
// A view matches when it joins exactly the query's tables on exactly the
// query's join predicates, exposes every plain column the query consumes,
// and (for grouped views) its grouping subsumes the query's grouping with
// derivable aggregates ([3]-style view matching).
func (c *optContext) bestViewPlan(q *QueryInfo) *joined {
	if len(c.cfg.Views) == 0 {
		return nil
	}
	// Self-joins reference a table twice; view matching skips those.
	seen := map[string]bool{}
	var tables []string
	for _, s := range q.Scopes {
		if seen[s.Table.Name] {
			return nil
		}
		seen[s.Table.Name] = true
		tables = append(tables, strings.ToLower(s.Table.Name))
	}
	sort.Strings(tables)

	joinSet := map[string]bool{}
	for _, e := range q.Joins {
		jp := catalog.JoinPred{
			Left:  catalog.NewColRef(q.Scopes[e.L].Table.Name, e.LCol),
			Right: catalog.NewColRef(q.Scopes[e.R].Table.Name, e.RCol),
		}
		joinSet[jp.String()] = true
	}

	var best *joined
	for _, v := range c.cfg.Views {
		if cand := c.tryView(q, v, tables, joinSet); cand != nil {
			if best == nil || pathLess(cand.plan, best.plan) {
				best = cand
			}
		}
	}
	return best
}

// ViewMatch describes how a view answers a query.
type ViewMatch struct {
	// Regroup is true when the query's grouping is strictly coarser than the
	// view's, so a re-aggregation over the view rows is needed.
	Regroup bool
}

// MatchView reports whether the materialized view can answer the query:
// exact table and join-predicate sets, every plain column the query consumes
// exposed by the view, and (for grouped views) derivable aggregates with the
// query grouping a subset of the view grouping. The engine uses the same
// predicate so estimated and actual plans agree on view usage.
func MatchView(q *QueryInfo, v *catalog.MaterializedView) (ViewMatch, bool) {
	seen := map[string]bool{}
	var tables []string
	for _, s := range q.Scopes {
		if seen[s.Table.Name] {
			return ViewMatch{}, false // self-join
		}
		seen[s.Table.Name] = true
		tables = append(tables, strings.ToLower(s.Table.Name))
	}
	sort.Strings(tables)
	joinSet := map[string]bool{}
	for _, e := range q.Joins {
		jp := catalog.JoinPred{
			Left:  catalog.NewColRef(q.Scopes[e.L].Table.Name, e.LCol),
			Right: catalog.NewColRef(q.Scopes[e.R].Table.Name, e.RCol),
		}
		joinSet[jp.String()] = true
	}
	return matchView(q, v, tables, joinSet)
}

func matchView(q *QueryInfo, v *catalog.MaterializedView, tables []string, joinSet map[string]bool) (ViewMatch, bool) {
	// Table sets must match exactly.
	if len(v.Tables) != len(tables) {
		return ViewMatch{}, false
	}
	for i := range tables {
		if v.Tables[i] != tables[i] {
			return ViewMatch{}, false
		}
	}
	// Join predicate sets must match exactly.
	if len(v.JoinPreds) != len(joinSet) {
		return ViewMatch{}, false
	}
	for _, jp := range v.JoinPreds {
		if !joinSet[jp.String()] {
			return ViewMatch{}, false
		}
	}

	outSet := map[string]bool{}
	for _, o := range v.OutputColumns {
		outSet[o.String()] = true
	}
	groupSet := map[string]bool{}
	for _, g := range v.GroupBy {
		groupSet[g.String()] = true
	}
	aggSet := map[string]bool{}
	for _, a := range v.Aggs {
		aggSet[a.String()] = true
	}
	colOf := func(sc ScopedCol) string {
		return catalog.NewColRef(q.Scopes[sc.Scope].Table.Name, sc.Column).String()
	}

	grouped := len(v.GroupBy) > 0

	// Every plain column the query consumes must be exposed by the view.
	var needPlain []ScopedCol
	needPlain = append(needPlain, q.PlainSelectCols...)
	needPlain = append(needPlain, q.GroupBy...)
	for _, o := range q.OrderBy {
		if o.Scope >= 0 {
			needPlain = append(needPlain, o)
		}
	}
	for si, s := range q.Scopes {
		for _, p := range s.Preds {
			for _, col := range p.InputColumns() {
				needPlain = append(needPlain, ScopedCol{Scope: si, Column: col})
			}
			if p.Column == "" && len(p.Cols) == 0 {
				return ViewMatch{}, false // opaque residual cannot be applied on the view
			}
		}
	}
	for _, f := range q.PostFilters {
		if len(f.Cols) == 0 {
			return ViewMatch{}, false
		}
		needPlain = append(needPlain, f.Cols...)
	}
	for _, sc := range needPlain {
		if sc.Column == "" {
			return ViewMatch{}, false
		}
		if !outSet[colOf(sc)] {
			return ViewMatch{}, false
		}
	}

	// Aggregates must be derivable from the view.
	regroup := false
	if grouped {
		if len(q.GroupBy) == 0 && len(q.Aggs) == 0 {
			return ViewMatch{}, false // plain row query cannot read grouped view
		}
		// Query grouping must be a subset of the view grouping.
		for _, g := range q.GroupBy {
			if !groupSet[colOf(g)] {
				return ViewMatch{}, false
			}
		}
		regroup = len(q.GroupBy) < len(v.GroupBy)
		for _, a := range q.Aggs {
			if !aggSet[a.String()] {
				return ViewMatch{}, false
			}
			if regroup {
				switch strings.ToUpper(a.Func) {
				case "SUM", "COUNT", "MIN", "MAX":
					// re-aggregable
				case "AVG":
					// AVG re-derives from SUM and COUNT of the same argument.
					if !aggSet[catalog.Agg{Func: "SUM", Col: a.Col}.String()] || !(aggSet[catalog.Agg{Func: "COUNT"}.String()] || aggSet[catalog.Agg{Func: "COUNT", Col: a.Col}.String()]) {
						return ViewMatch{}, false
					}
				default:
					return ViewMatch{}, false
				}
			}
		}
	} else if len(q.Aggs) > 0 {
		// SPJ view under an aggregating query: the aggregate arguments must
		// be exposed as plain columns.
		for _, a := range q.Aggs {
			if a.Col.Column != "" && !strings.HasPrefix(a.Col.Column, "expr:") && !outSet[a.Col.String()] {
				return ViewMatch{}, false
			}
			if strings.HasPrefix(a.Col.Column, "expr:") {
				return ViewMatch{}, false // expression args cannot be matched conservatively
			}
		}
	}
	return ViewMatch{Regroup: regroup}, true
}

func (c *optContext) tryView(q *QueryInfo, v *catalog.MaterializedView, tables []string, joinSet map[string]bool) *joined {
	m, ok := matchView(q, v, tables, joinSet)
	if !ok {
		return nil
	}
	regroup := m.Regroup

	// Cost: scan the view (with partition elimination), filter with the
	// query's local predicates, regroup if needed.
	rows := float64(v.Rows)
	if rows < 1 {
		rows = 1
	}
	pages := float64(v.Pages(c.opt.Cat))

	fr := 1.0
	if v.Partitioning != nil {
		// Elimination applies when some scope has a sargable predicate on
		// the partitioning column of its table.
		for _, s := range q.Scopes {
			if s.Table.HasColumn(v.Partitioning.Column) {
				if f := c.partitionFraction(s.Table, v.Partitioning, s.Preds); f < fr {
					fr = f
				}
			}
		}
	}

	// Local predicates filter the view scan; post-join residuals are applied
	// uniformly by finishSelect.
	sel := 1.0
	for _, s := range q.Scopes {
		sel *= c.scopeSelectivity(s)
	}
	outRows := rows * sel
	if outRows < 1 {
		outRows = 1
	}

	scanPages := pages * fr
	cost := startupCost + scanPages + rows*fr*cpuPerRow
	cost /= c.parallelism(scanPages)
	plan := &Plan{Op: "ViewScan", Detail: v.Name, Cost: cost, Rows: outRows,
		Pages: pagesF(outRows, v.RowWidth(c.opt.Cat)), Structure: v.Key()}
	if regroup {
		groups := c.groupCardinality(q, outRows)
		plan = &Plan{Op: "HashAggregate", Detail: "regroup view", Cost: cost + c.hashCost(groups, pagesF(groups, v.RowWidth(c.opt.Cat)), outRows),
			Rows: groups, Pages: pagesF(groups, v.RowWidth(c.opt.Cat)), Children: []*Plan{plan}, Structure: v.Key()}
		outRows = groups
	}
	return &joined{plan: plan, rows: outRows, width: v.RowWidth(c.opt.Cat)}
}
