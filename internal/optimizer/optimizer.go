// Package optimizer implements the cost-based query optimizer the advisor is
// kept in-sync with (paper §2.2): given a statement and a (possibly
// hypothetical) physical configuration, it produces the optimizer-estimated
// cost and plan of the statement as if the configuration were materialized.
//
// The optimizer relies fundamentally on metadata and statistics — never on
// data — which is the property that makes test-server tuning possible
// (paper §5.3). Hardware parameters (number of CPUs, memory) are explicit
// inputs so a test server can simulate the production server's cost model.
package optimizer

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
	"repro/internal/stats"
)

// Hardware models the server parameters the cost model takes into account
// (paper §2.2: "the impact of multiple processors, amount of memory on the
// server, and so on").
type Hardware struct {
	CPUs         int
	MemoryPages  int64   // pages of memory available to hash/sort operators
	RandomFactor float64 // cost of one random page read, in sequential-page units
}

// DefaultHardware returns a mid-size server: 8 CPUs, 1 GB of buffer memory.
func DefaultHardware() Hardware {
	return Hardware{CPUs: 8, MemoryPages: 1 << 17, RandomFactor: 4}
}

// normalize fills zero fields with usable defaults.
func (h Hardware) normalize() Hardware {
	if h.CPUs <= 0 {
		h.CPUs = 1
	}
	if h.MemoryPages <= 0 {
		h.MemoryPages = 1 << 14
	}
	if h.RandomFactor <= 0 {
		h.RandomFactor = 4
	}
	return h
}

// Cost model constants: the unit is one sequential page read.
const (
	cpuPerRow     = 0.001  // CPU cost of touching one row
	cpuPerProbe   = 0.0015 // CPU cost of one hash probe/insert
	cpuPerCompare = 0.0003 // CPU cost of one comparison during sorts
	startupCost   = 0.05   // fixed per-operator startup
	btreeFanout   = 150.0  // separator entries per non-leaf page
)

// StatsProvider supplies the statistical information the optimizer consults.
// The *stats.Store type satisfies it.
type StatsProvider interface {
	HistogramFor(table, column string) *stats.Histogram
	DensityFor(table string, cols []string) (float64, bool)
}

// Optimizer estimates statement costs under hypothetical configurations.
type Optimizer struct {
	Cat   *catalog.Catalog
	Stats StatsProvider
	HW    Hardware

	mu      sync.Mutex
	anCache map[sqlparser.Statement]*QueryInfo
}

// analyze resolves the statement against the catalog, caching the result
// per statement node: tuning optimizes the same statement under thousands
// of configurations, and the analysis is configuration-independent.
func (o *Optimizer) analyze(stmt sqlparser.Statement) (*QueryInfo, error) {
	o.mu.Lock()
	if q, ok := o.anCache[stmt]; ok {
		o.mu.Unlock()
		return q, nil
	}
	o.mu.Unlock()
	q, err := Analyze(o.Cat, stmt)
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	if o.anCache == nil {
		o.anCache = map[sqlparser.Statement]*QueryInfo{}
	}
	o.anCache[stmt] = q
	o.mu.Unlock()
	return q, nil
}

// New creates an optimizer over the catalog with the given statistics and
// hardware model.
func New(cat *catalog.Catalog, sp StatsProvider, hw Hardware) *Optimizer {
	return &Optimizer{Cat: cat, Stats: sp, HW: hw.normalize()}
}

// Result is the outcome of one what-if optimization.
type Result struct {
	// Cost is the optimizer-estimated cost in sequential-page units.
	Cost float64
	// Plan is the chosen physical plan.
	Plan *Plan
	// RequiredStats lists the statistics the optimizer wanted but could not
	// find; on a production/test split these must be created on the
	// production server and imported (paper §5.3 Step 2).
	RequiredStats []stats.Request
	// UsedStructures holds the Keys of configuration structures the chosen
	// plan uses, for analysis reports (paper §6.3).
	UsedStructures []string
}

// Optimize returns the estimated cost and plan of stmt as if cfg were
// materialized in the database. cfg may be nil (raw heaps only).
func (o *Optimizer) Optimize(stmt sqlparser.Statement, cfg *catalog.Configuration) (*Result, error) {
	if cfg == nil {
		cfg = catalog.NewConfiguration()
	}
	ctx := &optContext{opt: o, cfg: cfg, wanted: map[string]stats.Request{}}
	var plan *Plan
	var err error
	switch s := stmt.(type) {
	case *sqlparser.Select:
		plan, err = ctx.optimizeSelect(s)
	case *sqlparser.Insert:
		plan, err = ctx.optimizeInsert(s)
	case *sqlparser.Update:
		plan, err = ctx.optimizeUpdate(s)
	case *sqlparser.Delete:
		plan, err = ctx.optimizeDelete(s)
	default:
		return nil, fmt.Errorf("optimizer: unsupported statement type %T", stmt)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{Cost: plan.Cost, Plan: plan}
	for _, r := range ctx.wanted {
		res.RequiredStats = append(res.RequiredStats, r)
	}
	sortRequests(res.RequiredStats)
	res.UsedStructures = plan.structureKeys()
	return res, nil
}

// optContext carries per-optimization state.
type optContext struct {
	opt    *Optimizer
	cfg    *catalog.Configuration
	wanted map[string]stats.Request // stats we looked for and missed
}

func (c *optContext) hw() Hardware { return c.opt.HW }

// wantStat records that the optimizer would benefit from a statistic.
func (c *optContext) wantStat(table string, cols []string) {
	r := stats.Request{Table: table, Columns: cols}
	c.wanted[r.Key()] = r
}

// histogram fetches a histogram for the column, recording a miss.
func (c *optContext) histogram(table, column string) *stats.Histogram {
	if c.opt.Stats != nil {
		if h := c.opt.Stats.HistogramFor(table, column); h != nil {
			return h
		}
	}
	c.wantStat(table, []string{column})
	return nil
}

// density fetches the density of a column set, recording a miss and falling
// back to catalog distinct counts under independence.
func (c *optContext) density(t *catalog.Table, cols []string) float64 {
	if c.opt.Stats != nil {
		if d, ok := c.opt.Stats.DensityFor(t.Name, cols); ok {
			return d
		}
	}
	c.wantStat(t.Name, cols)
	distinct := 1.0
	for _, col := range cols {
		distinct *= float64(t.DistinctOf(col))
	}
	if distinct > float64(t.Rows) {
		distinct = float64(t.Rows)
	}
	if distinct < 1 {
		distinct = 1
	}
	return 1 / distinct
}

// parallelism returns the degree of parallelism a scan of the given size
// gets: larger scans parallelize up to the CPU count.
func (c *optContext) parallelism(pages float64) float64 {
	return parallelismHW(c.hw(), pages)
}

// parallelismHW is parallelism over an explicit hardware model: the plan
// skeletons the derivation layer replays carry the Hardware they were costed
// under and must run the exact arithmetic the live optimizer runs, so the
// computation lives in one shared function rather than two copies that
// could drift.
func parallelismHW(hw Hardware, pages float64) float64 {
	p := math.Floor(pages/256) + 1
	if p > float64(hw.CPUs) {
		p = float64(hw.CPUs)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// sortCost returns the cost of sorting rows of the given page volume:
// n·log₂(n) comparisons plus spill I/O when the input exceeds memory.
func (c *optContext) sortCost(rows, pages float64) float64 {
	return sortCostHW(c.hw(), rows, pages)
}

// sortCostHW is sortCost over an explicit hardware model (see parallelismHW
// for why the shared form exists).
func sortCostHW(hw Hardware, rows, pages float64) float64 {
	if rows < 2 {
		return startupCost
	}
	cost := startupCost + rows*math.Log2(rows)*cpuPerCompare
	if pages > float64(hw.MemoryPages) {
		cost += 2 * pages // one spill write + read pass
	}
	return cost / parallelismHW(hw, pages)
}

// hashCost returns the cost of building and probing a hash table.
func (c *optContext) hashCost(buildRows, buildPages, probeRows float64) float64 {
	return hashCostHW(c.hw(), buildRows, buildPages, probeRows)
}

// hashCostHW is hashCost over an explicit hardware model (see parallelismHW
// for why the shared form exists).
func hashCostHW(hw Hardware, buildRows, buildPages, probeRows float64) float64 {
	cost := startupCost + buildRows*cpuPerProbe + probeRows*cpuPerProbe
	if buildPages > float64(hw.MemoryPages) {
		cost += 2 * buildPages // grace-hash spill
	}
	return cost
}

// btreeDepth returns the number of non-leaf levels descended per seek into
// an index with the given number of leaf pages: one for tiny indexes,
// growing logarithmically with the fanout.
func btreeDepth(leafPages float64) float64 {
	d := 1.0
	for pages := leafPages; pages > btreeFanout && d < 4; pages /= btreeFanout {
		d++
	}
	return d
}

func sortRequests(reqs []stats.Request) {
	for i := 1; i < len(reqs); i++ {
		for j := i; j > 0 && reqs[j].Key() < reqs[j-1].Key(); j-- {
			reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
		}
	}
}
