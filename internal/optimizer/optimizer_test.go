package optimizer

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
	"repro/internal/stats"
)

// testCatalog builds a two-table schema: a 1M-row fact table t and a
// 50k-row dimension d.
func testCatalog() *catalog.Catalog {
	c := catalog.New()
	db := catalog.NewDatabase("db")
	db.AddTable(catalog.NewTable("db", "t", 1_000_000,
		&catalog.Column{Name: "id", Type: catalog.TypeInt, Width: 8, Distinct: 1_000_000, Min: 1, Max: 1_000_000},
		&catalog.Column{Name: "x", Type: catalog.TypeInt, Width: 8, Distinct: 10_000, Min: 0, Max: 9_999},
		&catalog.Column{Name: "a", Type: catalog.TypeInt, Width: 8, Distinct: 100, Min: 0, Max: 99},
		&catalog.Column{Name: "d_id", Type: catalog.TypeInt, Width: 8, Distinct: 50_000, Min: 1, Max: 50_000},
		&catalog.Column{Name: "pad", Type: catalog.TypeString, Width: 100, Distinct: 1_000_000, Min: 0, Max: 999_999},
	))
	db.AddTable(catalog.NewTable("db", "d", 50_000,
		&catalog.Column{Name: "d_id", Type: catalog.TypeInt, Width: 8, Distinct: 50_000, Min: 1, Max: 50_000},
		&catalog.Column{Name: "name", Type: catalog.TypeString, Width: 30, Distinct: 50_000, Min: 0, Max: 49_999},
		&catalog.Column{Name: "region", Type: catalog.TypeInt, Width: 8, Distinct: 5, Min: 0, Max: 4},
	))
	c.AddDatabase(db)
	return c
}

func newOpt(cat *catalog.Catalog) *Optimizer {
	store := stats.NewStore()
	for _, t := range cat.Tables() {
		for _, col := range t.Columns {
			st, err := stats.Build(cat, t.Name, []string{col.Name}, nil, stats.BuildOptions{})
			if err != nil {
				panic(err)
			}
			store.Add(st)
		}
	}
	return New(cat, store, DefaultHardware())
}

func cost(t *testing.T, o *Optimizer, sql string, cfg *catalog.Configuration) float64 {
	t.Helper()
	res, err := o.Optimize(sqlparser.MustParse(sql), cfg)
	if err != nil {
		t.Fatalf("Optimize(%q): %v", sql, err)
	}
	if res.Cost <= 0 || math.IsNaN(res.Cost) || math.IsInf(res.Cost, 0) {
		t.Fatalf("Optimize(%q): bad cost %v", sql, res.Cost)
	}
	return res.Cost
}

func TestIndexSeekBeatsScanOnSelectivePredicate(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	q := "SELECT id FROM t WHERE x = 42"

	raw := cost(t, o, q, nil)
	cfg := catalog.NewConfiguration()
	cfg.AddIndex(catalog.NewIndex("t", "x"))
	with := cost(t, o, q, cfg)
	if with >= raw/5 {
		t.Fatalf("index should cut a selective lookup by >5x: raw=%.1f with=%.1f", raw, with)
	}
}

func TestCoveringIndexBeatsRIDLookupsOnWideRange(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	// ~30% of rows qualify: RID lookups are ruinous, covering scan is not.
	q := "SELECT x, a FROM t WHERE x < 3000"

	ncfg := catalog.NewConfiguration()
	ncfg.AddIndex(catalog.NewIndex("t", "x"))
	nonCovering := cost(t, o, q, ncfg)

	ccfg := catalog.NewConfiguration()
	ccfg.AddIndex(catalog.NewIndex("t", "x").WithInclude("a"))
	covering := cost(t, o, q, ccfg)

	raw := cost(t, o, q, nil)
	if covering >= raw {
		t.Fatalf("covering index should beat heap scan: %.1f vs %.1f", covering, raw)
	}
	if covering >= nonCovering {
		t.Fatalf("covering should beat RID lookups on a wide range: %.1f vs %.1f", covering, nonCovering)
	}
	// The optimizer should not pick the lookup plan when it loses to a scan.
	if nonCovering > raw*1.01 {
		t.Fatalf("optimizer must fall back to scan rather than pay lookups: %.1f vs raw %.1f", nonCovering, raw)
	}
}

func TestClusteredIndexHelpsRange(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	q := "SELECT pad FROM t WHERE x BETWEEN 100 AND 200"

	raw := cost(t, o, q, nil)
	cfg := catalog.NewConfiguration()
	cix := catalog.NewIndex("t", "x")
	cix.Clustered = true
	cfg.AddIndex(cix)
	with := cost(t, o, q, cfg)
	if with >= raw/5 {
		t.Fatalf("clustered range scan should be far cheaper: raw=%.1f with=%.1f", raw, with)
	}
}

func TestPartitionElimination(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	q := "SELECT pad FROM t WHERE x = 5000"

	raw := cost(t, o, q, nil)
	cfg := catalog.NewConfiguration()
	var bounds []float64
	for b := 1000.0; b < 10000; b += 1000 {
		bounds = append(bounds, b)
	}
	cfg.SetTablePartitioning("t", catalog.NewPartitionScheme("x", bounds...))
	with := cost(t, o, q, cfg)
	if with >= raw/2 {
		t.Fatalf("partition elimination should cut the scan: raw=%.1f with=%.1f", raw, with)
	}
	// Partitioning consumes no storage.
	if cfg.StorageBytes(cat) != 0 {
		t.Fatal("partitioning must be storage-free")
	}
	// A query not on the partitioning column gains nothing.
	q2 := "SELECT pad FROM t WHERE a = 3"
	if c1, c2 := cost(t, o, q2, nil), cost(t, o, q2, cfg); c2 > c1*1.01 || c2 < c1*0.5 {
		t.Fatalf("unrelated query should be unaffected: %.1f vs %.1f", c1, c2)
	}
}

func TestPaperExample1AlternativeStructures(t *testing.T) {
	// Paper §3 Example 1: SELECT A, COUNT(*) FROM T WHERE X < 10 GROUP BY A.
	// A clustered index on X, partitioning on X, a covering index (X, A),
	// and a matching MV all reduce the cost.
	cat := testCatalog()
	o := newOpt(cat)
	q := "SELECT a, COUNT(*) FROM t WHERE x < 10 GROUP BY a"
	raw := cost(t, o, q, nil)

	cix := catalog.NewConfiguration()
	ci := catalog.NewIndex("t", "x")
	ci.Clustered = true
	cix.AddIndex(ci)
	if c := cost(t, o, q, cix); c >= raw {
		t.Fatalf("clustered on X should help: %.1f vs %.1f", c, raw)
	}

	part := catalog.NewConfiguration()
	part.SetTablePartitioning("t", catalog.NewPartitionScheme("x", 10, 100, 1000, 5000))
	if c := cost(t, o, q, part); c >= raw {
		t.Fatalf("partitioning on X should help: %.1f vs %.1f", c, raw)
	}

	cov := catalog.NewConfiguration()
	cov.AddIndex(catalog.NewIndex("t", "x", "a"))
	if c := cost(t, o, q, cov); c >= raw {
		t.Fatalf("covering index should help: %.1f vs %.1f", c, raw)
	}

	mv := catalog.NewConfiguration()
	mv.AddView(catalog.NewMaterializedView(
		[]string{"t"}, nil,
		[]catalog.ColRef{catalog.NewColRef("t", "x"), catalog.NewColRef("t", "a")},
		[]catalog.ColRef{catalog.NewColRef("t", "x"), catalog.NewColRef("t", "a")},
		[]catalog.Agg{{Func: "COUNT"}},
		100*10_000, // |a| × |x| groups upper bound, still ≪ table
	))
	if c := cost(t, o, q, mv); c >= raw {
		t.Fatalf("materialized view should help: %.1f vs %.1f", c, raw)
	}
}

func TestMVMatchingRules(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)

	grouped := catalog.NewMaterializedView(
		[]string{"t"}, nil, nil,
		[]catalog.ColRef{catalog.NewColRef("t", "a")},
		[]catalog.Agg{{Func: "COUNT"}, {Func: "SUM", Col: catalog.NewColRef("t", "x")}},
		100,
	)
	cfg := catalog.NewConfiguration()
	cfg.AddView(grouped)

	// Exact group match: answerable from the view.
	res, err := o.Optimize(sqlparser.MustParse("SELECT a, COUNT(*) FROM t GROUP BY a"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	usedView := false
	for _, s := range res.UsedStructures {
		if s == grouped.Key() {
			usedView = true
		}
	}
	if !usedView {
		t.Fatalf("exact-group query should use the view, used: %v", res.UsedStructures)
	}

	// Aggregate not in the view: not answerable.
	res2, err := o.Optimize(sqlparser.MustParse("SELECT a, MIN(x) FROM t GROUP BY a"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res2.UsedStructures {
		if s == grouped.Key() {
			t.Fatal("MIN(x) is not derivable from the view")
		}
	}

	// Predicate on a column the view lost: not answerable.
	res3, err := o.Optimize(sqlparser.MustParse("SELECT a, COUNT(*) FROM t WHERE x = 1 GROUP BY a"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res3.UsedStructures {
		if s == grouped.Key() {
			t.Fatal("predicate column x is not exposed by the view")
		}
	}
}

func TestJoinUsesIndexNestedLoop(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	q := "SELECT d.name FROM t, d WHERE t.d_id = d.d_id AND t.x = 17"

	raw := cost(t, o, q, nil)
	cfg := catalog.NewConfiguration()
	cfg.AddIndex(catalog.NewIndex("t", "x"))
	cfg.AddIndex(catalog.NewIndex("d", "d_id").WithInclude("name"))
	with := cost(t, o, q, cfg)
	if with >= raw/3 {
		t.Fatalf("selective probe-side index + INL should win big: raw=%.1f with=%.1f", raw, with)
	}
}

func TestUpdateCostGrowsWithIndexes(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	q := "UPDATE t SET x = 1 WHERE id = 77"

	cfg1 := catalog.NewConfiguration()
	cfg1.AddIndex(catalog.NewIndex("t", "id"))
	base := cost(t, o, q, cfg1)

	cfg2 := cfg1.Clone()
	cfg2.AddIndex(catalog.NewIndex("t", "x"))
	cfg2.AddIndex(catalog.NewIndex("t", "x", "a"))
	cfg2.AddView(catalog.NewMaterializedView(
		[]string{"t"}, nil, nil,
		[]catalog.ColRef{catalog.NewColRef("t", "x")},
		[]catalog.Agg{{Func: "COUNT"}},
		10_000,
	))
	more := cost(t, o, q, cfg2)
	if more <= base {
		t.Fatalf("maintenance must make updates dearer: %.2f vs %.2f", more, base)
	}

	// Indexes not touching the SET columns are not maintained.
	cfg3 := cfg1.Clone()
	cfg3.AddIndex(catalog.NewIndex("t", "a"))
	same := cost(t, o, q, cfg3)
	if math.Abs(same-base) > base*0.01 {
		t.Fatalf("untouched index should not add cost: %.2f vs %.2f", same, base)
	}
}

func TestInsertDeleteMaintenance(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)

	ins := "INSERT INTO t VALUES (1, 2, 3, 4, 'p')"
	raw := cost(t, o, ins, nil)
	cfg := catalog.NewConfiguration()
	for _, col := range []string{"x", "a", "d_id"} {
		cfg.AddIndex(catalog.NewIndex("t", col))
	}
	with := cost(t, o, ins, cfg)
	if with <= raw {
		t.Fatal("insert must maintain indexes")
	}

	del := "DELETE FROM t WHERE x = 5"
	delRaw := cost(t, o, del, nil)
	delWith := cost(t, o, del, cfg)
	// The index makes finding the rows cheaper but removal dearer; with a
	// selective predicate the find savings dominate.
	if delWith >= delRaw {
		t.Fatalf("selective delete should still benefit from the index: %.1f vs %.1f", delWith, delRaw)
	}
}

func TestRequiredStatsReported(t *testing.T) {
	cat := testCatalog()
	o := New(cat, stats.NewStore(), DefaultHardware()) // empty stats
	cfg := catalog.NewConfiguration()
	cfg.AddIndex(catalog.NewIndex("t", "x", "a"))
	res, err := o.Optimize(sqlparser.MustParse("SELECT id FROM t WHERE x = 3"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RequiredStats) == 0 {
		t.Fatal("missing statistics should be reported")
	}
	found := false
	for _, r := range res.RequiredStats {
		if r.Key() == "t(x,a)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stat on the index key columns should be wanted: %v", res.RequiredStats)
	}
}

func TestHardwareAffectsCost(t *testing.T) {
	cat := testCatalog()
	store := stats.NewStore()
	small := New(cat, store, Hardware{CPUs: 1, MemoryPages: 1 << 10, RandomFactor: 4})
	big := New(cat, store, Hardware{CPUs: 32, MemoryPages: 1 << 20, RandomFactor: 4})
	q := sqlparser.MustParse("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a")
	rs, err := small.Optimize(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := big.Optimize(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Cost >= rs.Cost {
		t.Fatalf("more CPUs/memory must not cost more: big=%.1f small=%.1f", rb.Cost, rs.Cost)
	}
}

func TestOrderByAvoidedByClusteredIndex(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	q := "SELECT id, x FROM t ORDER BY x"
	raw := cost(t, o, q, nil)
	cfg := catalog.NewConfiguration()
	cix := catalog.NewIndex("t", "x")
	cix.Clustered = true
	cfg.AddIndex(cix)
	with := cost(t, o, q, cfg)
	if with >= raw {
		t.Fatalf("sorted access should avoid the sort: %.1f vs %.1f", with, raw)
	}
}

func TestSelfJoinAndErrors(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	// Self-join parses and optimizes (no MV path).
	if c := cost(t, o, "SELECT t1.id FROM t t1, t t2 WHERE t1.x = t2.a", nil); c <= 0 {
		t.Fatal("self-join should cost something")
	}
	if _, err := o.Optimize(sqlparser.MustParse("SELECT z FROM nosuch"), nil); err == nil {
		t.Fatal("unknown table must error")
	}
	if _, err := o.Optimize(sqlparser.MustParse("SELECT nocol FROM t"), nil); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestAnalyzeShapes(t *testing.T) {
	cat := testCatalog()
	q, err := Analyze(cat, sqlparser.MustParse(
		"SELECT d.region, COUNT(*) FROM t JOIN d ON t.d_id = d.d_id WHERE t.x BETWEEN 1 AND 5 AND d.name LIKE 'ab%' GROUP BY d.region ORDER BY d.region"))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Scopes) != 2 || len(q.Joins) != 1 {
		t.Fatalf("scopes=%d joins=%d", len(q.Scopes), len(q.Joins))
	}
	if len(q.Scopes[0].Preds) != 1 || q.Scopes[0].Preds[0].Kind != PredRange {
		t.Fatalf("t preds = %+v", q.Scopes[0].Preds)
	}
	if len(q.Scopes[1].Preds) != 1 || q.Scopes[1].Preds[0].Kind != PredLike {
		t.Fatalf("d preds = %+v", q.Scopes[1].Preds)
	}
	if !q.Scopes[1].Preds[0].Sargable() {
		t.Fatal("LIKE 'ab%' has a literal prefix and is sargable")
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Scope != 1 {
		t.Fatalf("group by = %+v", q.GroupBy)
	}
	if len(q.Aggs) != 1 || q.Aggs[0].String() != "COUNT(*)" {
		t.Fatalf("aggs = %+v", q.Aggs)
	}
}

func TestPlanRendering(t *testing.T) {
	cat := testCatalog()
	o := newOpt(cat)
	res, err := o.Optimize(sqlparser.MustParse("SELECT a, COUNT(*) FROM t WHERE x < 10 GROUP BY a"), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Plan.String()
	if s == "" || res.Plan.Rows <= 0 {
		t.Fatal("plan should render and carry cardinalities")
	}
}
