package optimizer

import (
	"fmt"
	"sort"
	"strings"
)

// Plan is a node of the chosen physical plan tree. Cost is cumulative
// (includes children); Rows and Pages describe the node's output.
type Plan struct {
	Op       string  // operator name, e.g. "HeapScan", "IndexSeek", "HashJoin"
	Detail   string  // human-readable detail, e.g. the index used
	Cost     float64 // cumulative estimated cost
	Rows     float64 // estimated output cardinality
	Pages    float64 // estimated output volume in pages
	Children []*Plan
	// Structure is the Key() of the configuration structure this node uses
	// (index, view, or table partitioning), if any.
	Structure string
	// Ordered lists the columns (table-qualified, lower-case) the node's
	// output is ordered on, for sort avoidance upstream.
	Ordered []string
}

// String renders the plan tree.
func (p *Plan) String() string {
	var b strings.Builder
	p.render(&b, 0)
	return b.String()
}

func (p *Plan) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s", p.Op)
	if p.Detail != "" {
		fmt.Fprintf(b, " [%s]", p.Detail)
	}
	fmt.Fprintf(b, " (cost=%.2f rows=%.0f)\n", p.Cost, p.Rows)
	for _, c := range p.Children {
		c.render(b, depth+1)
	}
}

// structureKeys collects the distinct structure keys used anywhere in the
// plan, sorted for determinism.
func (p *Plan) structureKeys() []string {
	set := map[string]bool{}
	p.walk(func(n *Plan) {
		if n.Structure != "" {
			set[n.Structure] = true
		}
	})
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (p *Plan) walk(fn func(*Plan)) {
	fn(p)
	for _, c := range p.Children {
		c.walk(fn)
	}
}

// orderedPrefix reports whether the plan output order covers want as a
// prefix (enough to skip a sort on want).
func orderedPrefix(have, want []string) bool {
	if len(want) > len(have) {
		return false
	}
	for i, w := range want {
		if have[i] != w {
			return false
		}
	}
	return true
}
