package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
)

// StmtKind classifies analyzed statements.
type StmtKind int

// Statement kinds.
const (
	KindSelect StmtKind = iota
	KindInsert
	KindUpdate
	KindDelete
)

// PredKind classifies local predicates on one table.
type PredKind int

// Predicate kinds. Eq, Range and In are sargable (an index with a matching
// leading key column can seek on them); Like with a literal prefix seeks as
// a range; Residual predicates can only filter rows after access.
const (
	PredEq PredKind = iota
	PredRange
	PredIn
	PredLike
	PredResidual
)

// Pred is one local predicate on a column of one table.
type Pred struct {
	Column string
	Kind   PredKind

	// Eq / In.
	Value    float64
	StrValue string
	IsStr    bool
	InSize   int

	// Range: (Lo, Hi) with inclusivity flags; use ±Inf for open ends.
	Lo, Hi       float64
	IncLo, IncHi bool

	// Like keeps the pattern; a pattern with a literal prefix is sargable.
	Pattern string

	// DefaultSel is the guess used for residual predicates.
	DefaultSel float64
	// Cols lists the columns a residual predicate reads (Column is empty
	// for residuals spanning arithmetic); used by view matching.
	Cols []string
}

// InputColumns returns every column the predicate reads.
func (p Pred) InputColumns() []string {
	if p.Column != "" {
		return []string{p.Column}
	}
	return p.Cols
}

// Sargable reports whether the predicate can drive an index seek.
func (p Pred) Sargable() bool {
	switch p.Kind {
	case PredEq, PredRange, PredIn:
		return true
	case PredLike:
		return likePrefix(p.Pattern) != ""
	default:
		return false
	}
}

// likePrefix returns the literal prefix of a LIKE pattern ("" if none).
func likePrefix(pattern string) string {
	i := strings.IndexAny(pattern, "%_")
	if i < 0 {
		return pattern
	}
	return pattern[:i]
}

// Scope is one table instance of the query with its local predicates and the
// columns the query needs from it.
type Scope struct {
	Binding string // alias or table name used in the query text
	Table   *catalog.Table
	Preds   []Pred
	// Required are the columns the plan must produce from this table
	// (projections, join keys, grouping, ordering, aggregate arguments,
	// residual-predicate inputs), sorted.
	Required []string

	required map[string]bool
}

func (s *Scope) need(col string) {
	if s.required == nil {
		s.required = map[string]bool{}
	}
	col = strings.ToLower(col)
	if !s.required[col] {
		s.required[col] = true
		s.Required = append(s.Required, col)
		sort.Strings(s.Required)
	}
}

// ScopedCol names a column of one scope.
type ScopedCol struct {
	Scope  int
	Column string
}

// JoinEdge is one equality join between two scopes.
type JoinEdge struct {
	L, R       int // scope indices
	LCol, RCol string
}

// ResidualFilter is a non-sargable filter that may span several scopes; it
// is applied after the join with the given selectivity estimate.
type ResidualFilter struct {
	Scopes []int
	Sel    float64
	Cols   []ScopedCol
}

// QueryInfo is the analyzed, catalog-bound form of a statement — the shape
// both the optimizer and the advisor's candidate-generation step consume.
type QueryInfo struct {
	Kind   StmtKind
	Stmt   sqlparser.Statement
	Scopes []*Scope
	Joins  []JoinEdge

	GroupBy     []ScopedCol
	OrderBy     []ScopedCol
	OrderDesc   []bool
	Aggs        []catalog.Agg
	PostFilters []ResidualFilter
	HasHaving   bool
	Distinct    bool
	Top         int

	// PlainSelectCols are columns projected outside of aggregates; together
	// with grouping, ordering and predicate columns they form the column
	// set a materialized view must expose to answer the query.
	PlainSelectCols []ScopedCol

	// AggCanon maps each aggregate FuncExpr node in the statement to its
	// canonical catalog form (qualifiers rewritten to table names), so the
	// engine and view matching agree on aggregate identity.
	AggCanon map[*sqlparser.FuncExpr]catalog.Agg

	// DML fields (Target duplicates Scopes[0] for Update/Delete).
	InsertRowCount int
	SetColumns     []string
}

// ScopeIndex returns the index of the scope with the given binding, or -1.
func (q *QueryInfo) ScopeIndex(binding string) int {
	for i, s := range q.Scopes {
		if s.Binding == binding {
			return i
		}
	}
	return -1
}

// Analyze resolves a statement against the catalog: tables, per-table
// predicates, join edges, grouping/ordering/aggregation, and the column sets
// each table must produce.
func Analyze(cat *catalog.Catalog, stmt sqlparser.Statement) (*QueryInfo, error) {
	a := &analyzer{cat: cat}
	switch s := stmt.(type) {
	case *sqlparser.Select:
		return a.analyzeSelect(s)
	case *sqlparser.Insert:
		return a.analyzeInsert(s)
	case *sqlparser.Update:
		return a.analyzeUpdate(s)
	case *sqlparser.Delete:
		return a.analyzeDelete(s)
	default:
		return nil, fmt.Errorf("optimizer: unsupported statement type %T", stmt)
	}
}

type analyzer struct {
	cat *catalog.Catalog
	q   *QueryInfo
}

func (a *analyzer) analyzeSelect(s *sqlparser.Select) (*QueryInfo, error) {
	q := &QueryInfo{Kind: KindSelect, Stmt: s, Distinct: s.Distinct, Top: s.Top, AggCanon: map[*sqlparser.FuncExpr]catalog.Agg{}}
	a.q = q
	for _, ref := range s.From {
		t := a.cat.ResolveTable(ref.Name)
		if t == nil {
			return nil, fmt.Errorf("optimizer: unknown table %q", ref.Name)
		}
		q.Scopes = append(q.Scopes, &Scope{Binding: ref.Binding(), Table: t})
	}

	// Predicates.
	for _, conj := range sqlparser.Conjuncts(s.Where) {
		if err := a.addCondition(conj); err != nil {
			return nil, err
		}
	}

	// Projections and aggregates.
	for _, it := range s.Items {
		if it.Expr == nil { // SELECT *
			for i, sc := range q.Scopes {
				for _, c := range sc.Table.Columns {
					q.Scopes[i].need(c.Name)
					q.PlainSelectCols = append(q.PlainSelectCols, ScopedCol{Scope: i, Column: strings.ToLower(c.Name)})
				}
			}
			continue
		}
		if f, ok := it.Expr.(*sqlparser.FuncExpr); ok {
			q.Aggs = append(q.Aggs, a.aggOf(f))
			a.needExprCols(f.Arg)
			continue
		}
		if c, ok := it.Expr.(*sqlparser.ColName); ok {
			// A bare column projection must resolve.
			if _, _, err := a.resolve(c); err != nil {
				return nil, err
			}
		}
		a.needExprCols(it.Expr)
		q.PlainSelectCols = append(q.PlainSelectCols, a.exprCols(it.Expr)...)
	}

	// Grouping.
	for _, g := range s.GroupBy {
		si, col, err := a.resolve(g)
		if err != nil {
			return nil, err
		}
		q.GroupBy = append(q.GroupBy, ScopedCol{Scope: si, Column: col})
		q.Scopes[si].need(col)
	}

	// Having: walk for aggregates and columns; costed as a residual.
	if s.Having != nil {
		q.HasHaving = true
		sqlparser.WalkExprs(s.Having, func(e sqlparser.Expr) {
			if f, ok := e.(*sqlparser.FuncExpr); ok {
				q.Aggs = append(q.Aggs, a.aggOf(f))
				a.needExprCols(f.Arg)
			}
		})
	}

	// Ordering. Order-by over aggregates, arithmetic, or select-list aliases
	// is a plain sort; only direct column references participate in sort
	// avoidance.
	for _, o := range s.OrderBy {
		expr := o.Expr
		// An unqualified name matching a select-list alias refers to that
		// item (SQL resolution order prefers the alias).
		if c, ok := expr.(*sqlparser.ColName); ok && c.Qualifier == "" {
			for _, it := range s.Items {
				if it.Alias == c.Name && it.Expr != nil {
					expr = it.Expr
					break
				}
			}
		}
		if f, ok := expr.(*sqlparser.FuncExpr); ok {
			q.Aggs = append(q.Aggs, a.aggOf(f))
			a.needExprCols(f.Arg)
			q.OrderBy = append(q.OrderBy, ScopedCol{Scope: -1})
			q.OrderDesc = append(q.OrderDesc, o.Desc)
			continue
		}
		if c, ok := expr.(*sqlparser.ColName); ok {
			si, col, err := a.resolve(c)
			if err != nil {
				return nil, err
			}
			q.OrderBy = append(q.OrderBy, ScopedCol{Scope: si, Column: col})
			q.OrderDesc = append(q.OrderDesc, o.Desc)
			q.Scopes[si].need(col)
		} else {
			a.needExprCols(expr)
			q.OrderBy = append(q.OrderBy, ScopedCol{Scope: -1})
			q.OrderDesc = append(q.OrderDesc, o.Desc)
		}
	}

	dedupAggs(q)
	return q, nil
}

// aggOf converts a parsed aggregate into the catalog's canonical form.
// Aggregates over arithmetic expressions get a synthetic column name equal
// to the deparsed expression with alias qualifiers rewritten to table names,
// so structurally identical aggregates (in a query and in a view candidate)
// compare equal regardless of aliasing.
func (a *analyzer) aggOf(f *sqlparser.FuncExpr) catalog.Agg {
	ag := a.aggOfInner(f)
	if a.q.AggCanon != nil {
		a.q.AggCanon[f] = ag
	}
	return ag
}

func (a *analyzer) aggOfInner(f *sqlparser.FuncExpr) catalog.Agg {
	if f.Star {
		return catalog.Agg{Func: strings.ToUpper(f.Name)}
	}
	if c, ok := f.Arg.(*sqlparser.ColName); ok {
		if si, col, err := a.resolve(c); err == nil {
			return catalog.Agg{Func: strings.ToUpper(f.Name), Col: catalog.NewColRef(a.q.Scopes[si].Table.Name, col)}
		}
	}
	tbl := ""
	if cols := a.exprCols(f.Arg); len(cols) > 0 {
		tbl = a.q.Scopes[cols[0].Scope].Table.Name
	}
	canon := a.canonExpr(f.Arg)
	return catalog.Agg{Func: strings.ToUpper(f.Name), Col: catalog.ColRef{Table: strings.ToLower(tbl), Column: "expr:" + strings.ToLower(canon.String())}}
}

// canonExpr clones an expression rewriting every column qualifier to the
// owning table's name.
func (a *analyzer) canonExpr(e sqlparser.Expr) sqlparser.Expr {
	switch v := e.(type) {
	case nil:
		return nil
	case *sqlparser.ColName:
		if si, col, err := a.resolve(v); err == nil {
			return &sqlparser.ColName{Qualifier: a.q.Scopes[si].Table.Name, Name: col}
		}
		return &sqlparser.ColName{Qualifier: v.Qualifier, Name: v.Name}
	case *sqlparser.Literal:
		l := *v
		return &l
	case *sqlparser.BinaryExpr:
		return &sqlparser.BinaryExpr{Op: v.Op, Left: a.canonExpr(v.Left), Right: a.canonExpr(v.Right)}
	case *sqlparser.FuncExpr:
		return &sqlparser.FuncExpr{Name: v.Name, Star: v.Star, Arg: a.canonExpr(v.Arg)}
	default:
		return e
	}
}

func dedupAggs(q *QueryInfo) {
	seen := map[string]bool{}
	out := q.Aggs[:0]
	for _, ag := range q.Aggs {
		if k := ag.String(); !seen[k] {
			seen[k] = true
			out = append(out, ag)
		}
	}
	q.Aggs = out
}

func (a *analyzer) analyzeInsert(s *sqlparser.Insert) (*QueryInfo, error) {
	t := a.cat.ResolveTable(s.Table)
	if t == nil {
		return nil, fmt.Errorf("optimizer: unknown table %q", s.Table)
	}
	q := &QueryInfo{Kind: KindInsert, Stmt: s, InsertRowCount: len(s.Rows)}
	q.Scopes = []*Scope{{Binding: strings.ToLower(s.Table), Table: t}}
	a.q = q
	return q, nil
}

func (a *analyzer) analyzeUpdate(s *sqlparser.Update) (*QueryInfo, error) {
	t := a.cat.ResolveTable(s.Table)
	if t == nil {
		return nil, fmt.Errorf("optimizer: unknown table %q", s.Table)
	}
	q := &QueryInfo{Kind: KindUpdate, Stmt: s}
	q.Scopes = []*Scope{{Binding: strings.ToLower(s.Table), Table: t}}
	a.q = q
	for _, asn := range s.Set {
		q.SetColumns = append(q.SetColumns, strings.ToLower(asn.Column))
		a.needExprCols(asn.Value)
	}
	for _, conj := range sqlparser.Conjuncts(s.Where) {
		if err := a.addCondition(conj); err != nil {
			return nil, err
		}
	}
	return q, nil
}

func (a *analyzer) analyzeDelete(s *sqlparser.Delete) (*QueryInfo, error) {
	t := a.cat.ResolveTable(s.Table)
	if t == nil {
		return nil, fmt.Errorf("optimizer: unknown table %q", s.Table)
	}
	q := &QueryInfo{Kind: KindDelete, Stmt: s}
	q.Scopes = []*Scope{{Binding: strings.ToLower(s.Table), Table: t}}
	a.q = q
	for _, conj := range sqlparser.Conjuncts(s.Where) {
		if err := a.addCondition(conj); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// resolve binds a column reference to a scope.
func (a *analyzer) resolve(c *sqlparser.ColName) (int, string, error) {
	if c.Qualifier != "" {
		for i, s := range a.q.Scopes {
			if s.Binding == c.Qualifier || s.Table.Name == c.Qualifier {
				if !s.Table.HasColumn(c.Name) {
					return 0, "", fmt.Errorf("optimizer: table %q has no column %q", s.Table.Name, c.Name)
				}
				return i, strings.ToLower(c.Name), nil
			}
		}
		return 0, "", fmt.Errorf("optimizer: unknown qualifier %q", c.Qualifier)
	}
	found := -1
	for i, s := range a.q.Scopes {
		if s.Table.HasColumn(c.Name) {
			if found >= 0 {
				return 0, "", fmt.Errorf("optimizer: ambiguous column %q", c.Name)
			}
			found = i
		}
	}
	if found < 0 {
		return 0, "", fmt.Errorf("optimizer: unknown column %q", c.Name)
	}
	return found, strings.ToLower(c.Name), nil
}

// exprCols returns the scoped columns referenced by an expression,
// silently skipping unresolvable references.
func (a *analyzer) exprCols(e sqlparser.Expr) []ScopedCol {
	var out []ScopedCol
	sqlparser.WalkExprs(e, func(x sqlparser.Expr) {
		if c, ok := x.(*sqlparser.ColName); ok {
			if si, col, err := a.resolve(c); err == nil {
				out = append(out, ScopedCol{Scope: si, Column: col})
			}
		}
	})
	return out
}

// needExprCols marks every column in the expression as required.
func (a *analyzer) needExprCols(e sqlparser.Expr) {
	for _, sc := range a.exprCols(e) {
		a.q.Scopes[sc.Scope].need(sc.Column)
	}
}

// addCondition classifies one WHERE conjunct as a join edge, a sargable
// local predicate, or a residual filter.
func (a *analyzer) addCondition(e sqlparser.Expr) error {
	q := a.q
	switch v := e.(type) {
	case *sqlparser.ComparisonExpr:
		lc, lok := v.Left.(*sqlparser.ColName)
		rc, rok := v.Right.(*sqlparser.ColName)
		ll, llit := v.Right.(*sqlparser.Literal)
		rl, rlit := v.Left.(*sqlparser.Literal)
		switch {
		case lok && rok:
			li, lcol, err := a.resolve(lc)
			if err != nil {
				return err
			}
			ri, rcol, err := a.resolve(rc)
			if err != nil {
				return err
			}
			if li == ri {
				// Same-table column comparison: residual.
				a.addResidualCols([]ScopedCol{{Scope: li, Column: lcol}, {Scope: li, Column: rcol}}, 0.1)
				q.Scopes[li].need(lcol)
				q.Scopes[li].need(rcol)
				return nil
			}
			if v.Op != "=" {
				// Non-equality joins are residual post-join filters.
				a.addResidualCols([]ScopedCol{{Scope: li, Column: lcol}, {Scope: ri, Column: rcol}}, 0.3)
				q.Scopes[li].need(lcol)
				q.Scopes[ri].need(rcol)
				return nil
			}
			q.Joins = append(q.Joins, JoinEdge{L: li, R: ri, LCol: lcol, RCol: rcol})
			q.Scopes[li].need(lcol)
			q.Scopes[ri].need(rcol)
			return nil
		case lok && llit:
			return a.addComparisonPred(lc, v.Op, ll)
		case rok && rlit:
			return a.addComparisonPred(rc, flipOp(v.Op), rl)
		default:
			// Arithmetic or otherwise non-sargable comparison.
			a.addResidualCols(a.exprCols(e), defaultSelForOp(v.Op))
			a.needExprCols(e)
			return nil
		}
	case *sqlparser.BetweenExpr:
		c, ok := v.Expr.(*sqlparser.ColName)
		lo, lok := v.Lo.(*sqlparser.Literal)
		hi, hok := v.Hi.(*sqlparser.Literal)
		if ok && lok && hok {
			si, col, err := a.resolve(c)
			if err != nil {
				return err
			}
			q.Scopes[si].Preds = append(q.Scopes[si].Preds, Pred{
				Column: col, Kind: PredRange,
				Lo: litNum(lo), Hi: litNum(hi), IncLo: true, IncHi: true,
				IsStr: lo.Kind == sqlparser.LitString,
			})
			q.Scopes[si].need(col)
			return nil
		}
		a.addResidualCols(a.exprCols(e), 0.25)
		a.needExprCols(e)
		return nil
	case *sqlparser.InExpr:
		if c, ok := v.Expr.(*sqlparser.ColName); ok {
			si, col, err := a.resolve(c)
			if err != nil {
				return err
			}
			p := Pred{Column: col, Kind: PredIn, InSize: len(v.List)}
			if len(v.List) > 0 {
				if l, ok := v.List[0].(*sqlparser.Literal); ok {
					p.IsStr = l.Kind == sqlparser.LitString
					p.Value = l.F
					p.StrValue = l.S
				}
			}
			q.Scopes[si].Preds = append(q.Scopes[si].Preds, p)
			q.Scopes[si].need(col)
			return nil
		}
		a.addResidualCols(a.exprCols(e), 0.2)
		a.needExprCols(e)
		return nil
	case *sqlparser.OrExpr, *sqlparser.NotExpr:
		a.addResidualCols(a.exprCols(e), orSelectivity(e))
		a.needExprCols(e)
		return nil
	default:
		a.addResidualCols(a.exprCols(e), 0.3)
		a.needExprCols(e)
		return nil
	}
}

func (a *analyzer) addComparisonPred(c *sqlparser.ColName, op string, lit *sqlparser.Literal) error {
	si, col, err := a.resolve(c)
	if err != nil {
		return err
	}
	q := a.q
	sc := q.Scopes[si]
	isStr := lit.Kind == sqlparser.LitString
	switch op {
	case "=":
		sc.Preds = append(sc.Preds, Pred{Column: col, Kind: PredEq, Value: lit.F, StrValue: lit.S, IsStr: isStr})
	case "<":
		sc.Preds = append(sc.Preds, Pred{Column: col, Kind: PredRange, Lo: negInf, Hi: lit.F, IsStr: isStr})
	case "<=":
		sc.Preds = append(sc.Preds, Pred{Column: col, Kind: PredRange, Lo: negInf, Hi: lit.F, IncHi: true, IsStr: isStr})
	case ">":
		sc.Preds = append(sc.Preds, Pred{Column: col, Kind: PredRange, Lo: lit.F, Hi: posInf, IsStr: isStr})
	case ">=":
		sc.Preds = append(sc.Preds, Pred{Column: col, Kind: PredRange, Lo: lit.F, Hi: posInf, IncLo: true, IsStr: isStr})
	case "<>":
		sc.Preds = append(sc.Preds, Pred{Column: col, Kind: PredResidual, DefaultSel: 0.9})
	case "like":
		sc.Preds = append(sc.Preds, Pred{Column: col, Kind: PredLike, Pattern: lit.S})
	default:
		return fmt.Errorf("optimizer: unsupported comparison op %q", op)
	}
	sc.need(col)
	return nil
}

func (a *analyzer) addResidualCols(cols []ScopedCol, sel float64) {
	scopes := scopeSet(cols)
	if len(scopes) == 1 {
		var names []string
		seen := map[string]bool{}
		for _, c := range cols {
			if !seen[c.Column] {
				seen[c.Column] = true
				names = append(names, c.Column)
			}
		}
		a.q.Scopes[scopes[0]].Preds = append(a.q.Scopes[scopes[0]].Preds,
			Pred{Kind: PredResidual, DefaultSel: sel, Cols: names})
		return
	}
	if len(scopes) == 0 {
		return // constant condition; ignore
	}
	a.q.PostFilters = append(a.q.PostFilters, ResidualFilter{Scopes: scopes, Sel: sel, Cols: cols})
}

func scopeSet(cols []ScopedCol) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range cols {
		if !seen[c.Scope] {
			seen[c.Scope] = true
			out = append(out, c.Scope)
		}
	}
	sort.Ints(out)
	return out
}

func litNum(l *sqlparser.Literal) float64 { return l.F }

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	default:
		return op
	}
}

func defaultSelForOp(op string) float64 {
	switch op {
	case "=":
		return 0.05
	case "<>":
		return 0.9
	default:
		return 0.3
	}
}

// orSelectivity gives a structural guess for OR/NOT residuals.
func orSelectivity(e sqlparser.Expr) float64 {
	switch v := e.(type) {
	case *sqlparser.OrExpr:
		l, r := orSelectivity(v.Left), orSelectivity(v.Right)
		return clampSel(l + r - l*r)
	case *sqlparser.NotExpr:
		return clampSel(1 - orSelectivity(v.Inner))
	case *sqlparser.ComparisonExpr:
		return defaultSelForOp(v.Op)
	case *sqlparser.AndExpr:
		return clampSel(orSelectivity(v.Left) * orSelectivity(v.Right))
	case *sqlparser.BetweenExpr:
		return 0.25
	case *sqlparser.InExpr:
		return 0.15
	default:
		return 0.3
	}
}

func clampSel(s float64) float64 {
	if s < 1e-9 {
		return 1e-9
	}
	if s > 1 {
		return 1
	}
	return s
}

var (
	negInf = math.Inf(-1)
	posInf = math.Inf(1)
)
