package optimizer

import (
	"repro/internal/sqlparser"
)

// optimizeSelect plans a SELECT: the best of (a) the join plan over base
// tables and (b) any matching materialized view, followed by grouping,
// having, ordering and TOP.
func (c *optContext) optimizeSelect(s *sqlparser.Select) (*Plan, error) {
	q, err := c.opt.analyze(s)
	if err != nil {
		return nil, err
	}

	base := c.basePlan(q)
	if mv := c.bestViewPlan(q); mv != nil && mv.plan.Cost < base.plan.Cost {
		base = *mv
	}
	plan := c.finishSelect(q, base)
	return plan, nil
}

// basePlan computes the join-over-base-tables plan, using an
// order-preserving single-table access when it lets the query skip a sort
// for GROUP BY / ORDER BY.
func (c *optContext) basePlan(q *QueryInfo) joined {
	j := c.joinScopes(q)

	// Single-table queries can exploit an access path whose order matches
	// the grouping or ordering columns (Example 1 of the paper: a clustered
	// index on the GROUP BY column).
	if len(q.Scopes) == 1 {
		want := c.interestingOrder(q)
		if len(want) > 0 {
			_, op := c.bestAccess(q.Scopes[0], want)
			if op != nil {
				alt := joined{plan: op.plan, rows: op.rows, width: q.Scopes[0].Table.ColumnWidth(q.Scopes[0].Required)}
				// Compare end-to-end: the ordered path may lose on access
				// cost but win by skipping the sort/hash.
				if c.finishSelect(q, alt).Cost < c.finishSelect(q, j).Cost {
					return alt
				}
			}
		}
	}
	return j
}

// interestingOrder returns the qualified column order that would let the
// query avoid a sort or use stream aggregation: GROUP BY columns first,
// else ORDER BY columns.
func (c *optContext) interestingOrder(q *QueryInfo) []string {
	if len(q.GroupBy) > 0 {
		var want []string
		for _, g := range q.GroupBy {
			if g.Scope < 0 {
				return nil
			}
			want = append(want, q.Scopes[g.Scope].Table.Name+"."+g.Column)
		}
		return want
	}
	var want []string
	for _, o := range q.OrderBy {
		if o.Scope < 0 {
			return nil
		}
		want = append(want, q.Scopes[o.Scope].Table.Name+"."+o.Column)
	}
	return want
}

// finishSelect appends residual filters, aggregation, having, distinct,
// ordering and TOP on top of the input, by capturing the query's FinishSpec
// and running the shared finish chain over it.
func (c *optContext) finishSelect(q *QueryInfo, in joined) *Plan {
	spec := c.finishSpec(q)
	return spec.finish(in.plan, in.rows, in.width)
}
