package optimizer

import (
	"math"
	"sort"

	"repro/internal/catalog"
)

// predSelectivity estimates the fraction of the table's rows satisfying one
// local predicate, consulting histograms for ranges and densities for
// equalities, and recording any statistic it wished for.
func (c *optContext) predSelectivity(t *catalog.Table, p Pred) float64 {
	switch p.Kind {
	case PredEq:
		if p.IsStr {
			// String equality: histogram positions are dictionary codes the
			// optimizer does not see; use density.
			return clampSel(c.density(t, []string{p.Column}))
		}
		if h := c.histogram(t.Name, p.Column); h != nil {
			return clampSel(h.SelEq(p.Value))
		}
		return clampSel(c.density(t, []string{p.Column}))
	case PredRange:
		if p.IsStr {
			return 0.3
		}
		if h := c.histogram(t.Name, p.Column); h != nil {
			return clampSel(h.SelRange(p.Lo, p.Hi, p.IncLo, p.IncHi))
		}
		// No histogram: guess from the catalog domain, assuming uniformity.
		col := t.Column(p.Column)
		if col == nil || col.Max <= col.Min {
			return 0.3
		}
		lo := math.Max(p.Lo, col.Min)
		hi := math.Min(p.Hi, col.Max)
		if hi < lo {
			return 0.0001
		}
		return clampSel((hi - lo) / (col.Max - col.Min))
	case PredIn:
		n := float64(p.InSize)
		if n < 1 {
			n = 1
		}
		return clampSel(n * c.density(t, []string{p.Column}))
	case PredLike:
		prefix := likePrefix(p.Pattern)
		switch {
		case prefix == p.Pattern: // exact match, no wildcard
			return clampSel(c.density(t, []string{p.Column}))
		case prefix != "":
			return 0.05 // prefix match
		default:
			return 0.1 // contains / suffix match
		}
	default:
		if p.DefaultSel > 0 {
			return clampSel(p.DefaultSel)
		}
		return 0.3
	}
}

// scopeSelectivity multiplies the selectivities of every local predicate on
// the scope.
func (c *optContext) scopeSelectivity(s *Scope) float64 {
	sel := 1.0
	for _, p := range s.Preds {
		sel *= c.predSelectivity(s.Table, p)
	}
	return clampSel(sel)
}

// joinSelectivity estimates the selectivity of an equality join using the
// classic 1/max(distinct(L), distinct(R)) rule with densities.
func (c *optContext) joinSelectivity(l *Scope, lcol string, r *Scope, rcol string) float64 {
	dl := c.density(l.Table, []string{lcol})
	dr := c.density(r.Table, []string{rcol})
	// density = 1/distinct, so min(density) = 1/max(distinct).
	return clampSel(math.Min(dl, dr))
}

// groupDistinct estimates the raw (uncapped) distinct-group count of the
// query's GROUP BY columns. Per-scope densities combine under independence.
// Scopes multiply in ascending scope order — a deterministic order, so the
// float product is reproducible bit-for-bit by a replay that captured it.
func (c *optContext) groupDistinct(q *QueryInfo) float64 {
	if len(q.GroupBy) == 0 {
		return 1
	}
	// Group columns of the same scope use a single multi-column density.
	byScope := map[int][]string{}
	var order []int
	for _, g := range q.GroupBy {
		if _, seen := byScope[g.Scope]; !seen {
			order = append(order, g.Scope)
		}
		byScope[g.Scope] = append(byScope[g.Scope], g.Column)
	}
	sort.Ints(order)
	distinct := 1.0
	for _, si := range order {
		d := c.density(q.Scopes[si].Table, byScope[si])
		if d <= 0 {
			d = 1
		}
		distinct *= 1 / d
	}
	return distinct
}

// groupCardinality estimates the number of groups produced by grouping
// inputRows on the given columns: the raw distinct estimate capped by the
// input cardinality.
func (c *optContext) groupCardinality(q *QueryInfo, inputRows float64) float64 {
	if len(q.GroupBy) == 0 {
		return 1
	}
	return capGroups(c.groupDistinct(q), inputRows)
}

// capGroups clamps a raw distinct-group estimate to [1, inputRows].
func capGroups(distinct, inputRows float64) float64 {
	if distinct > inputRows {
		distinct = inputRows
	}
	if distinct < 1 {
		distinct = 1
	}
	return distinct
}
