package optimizer

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
	"repro/internal/stats"
)

func selCtx(t *testing.T) (*optContext, *catalog.Table) {
	t.Helper()
	cat := testCatalog()
	o := newOpt(cat)
	return &optContext{opt: o, cfg: catalog.NewConfiguration(), wanted: map[string]stats.Request{}}, cat.ResolveTable("t")
}

func TestPredSelectivityEq(t *testing.T) {
	c, tbl := selCtx(t)
	// x has 10k distinct values uniformly.
	got := c.predSelectivity(tbl, Pred{Column: "x", Kind: PredEq, Value: 500})
	if math.Abs(got-1.0/10000) > 1.0/10000 {
		t.Fatalf("eq sel = %g, want ~1e-4", got)
	}
	// String equality uses density.
	gotS := c.predSelectivity(tbl, Pred{Column: "pad", Kind: PredEq, IsStr: true, StrValue: "q"})
	if gotS > 1.0/100000 {
		t.Fatalf("string eq sel = %g", gotS)
	}
}

func TestPredSelectivityRange(t *testing.T) {
	c, tbl := selCtx(t)
	got := c.predSelectivity(tbl, Pred{Column: "x", Kind: PredRange, Lo: 0, Hi: 4999.5, IncLo: true})
	if math.Abs(got-0.5) > 0.06 {
		t.Fatalf("range sel = %g, want ~0.5", got)
	}
	open := c.predSelectivity(tbl, Pred{Column: "x", Kind: PredRange, Lo: math.Inf(-1), Hi: 1000})
	if math.Abs(open-0.1) > 0.03 {
		t.Fatalf("open range sel = %g, want ~0.1", open)
	}
}

func TestPredSelectivityInLikeResidual(t *testing.T) {
	c, tbl := selCtx(t)
	in := c.predSelectivity(tbl, Pred{Column: "a", Kind: PredIn, InSize: 5})
	if math.Abs(in-0.05) > 0.01 { // 5/100 distinct
		t.Fatalf("IN sel = %g, want ~0.05", in)
	}
	prefix := c.predSelectivity(tbl, Pred{Column: "pad", Kind: PredLike, Pattern: "ab%"})
	if prefix != 0.05 {
		t.Fatalf("prefix LIKE sel = %g", prefix)
	}
	contains := c.predSelectivity(tbl, Pred{Column: "pad", Kind: PredLike, Pattern: "%ab%"})
	if contains != 0.1 {
		t.Fatalf("contains LIKE sel = %g", contains)
	}
	exact := c.predSelectivity(tbl, Pred{Column: "pad", Kind: PredLike, Pattern: "abc"})
	if exact > 0.001 {
		t.Fatalf("exact LIKE behaves like equality: %g", exact)
	}
	res := c.predSelectivity(tbl, Pred{Kind: PredResidual, DefaultSel: 0.42})
	if res != 0.42 {
		t.Fatalf("residual sel = %g", res)
	}
}

func TestJoinSelectivity(t *testing.T) {
	c, _ := selCtx(t)
	cat := c.opt.Cat
	l := &Scope{Table: cat.ResolveTable("t")}
	r := &Scope{Table: cat.ResolveTable("d")}
	got := c.joinSelectivity(l, "d_id", r, "d_id")
	if math.Abs(got-1.0/50000) > 1e-6 {
		t.Fatalf("join sel = %g, want 1/50000", got)
	}
}

func TestGroupCardinality(t *testing.T) {
	c, _ := selCtx(t)
	q, err := Analyze(c.opt.Cat, mustSel("SELECT a, COUNT(*) FROM t GROUP BY a"))
	if err != nil {
		t.Fatal(err)
	}
	groups := c.groupCardinality(q, 1e6)
	if math.Abs(groups-100) > 5 {
		t.Fatalf("groups = %g, want ~100", groups)
	}
	// Cap by input cardinality.
	if got := c.groupCardinality(q, 10); got != 10 {
		t.Fatalf("cap failed: %g", got)
	}
	// No grouping: one group.
	q2, _ := Analyze(c.opt.Cat, mustSel("SELECT COUNT(*) FROM t"))
	if got := c.groupCardinality(q2, 1e6); got != 1 {
		t.Fatalf("scalar group = %g", got)
	}
}

func TestBtreeDepth(t *testing.T) {
	cases := []struct {
		pages float64
		want  float64
	}{
		{1, 1}, {100, 1}, {151, 2}, {20000, 2}, {1e6, 3}, {1e12, 4}, {1e30, 4},
	}
	for _, tc := range cases {
		if got := btreeDepth(tc.pages); got != tc.want {
			t.Errorf("btreeDepth(%g) = %g, want %g", tc.pages, got, tc.want)
		}
	}
}

func TestLikePrefix(t *testing.T) {
	if likePrefix("abc%def") != "abc" || likePrefix("a_c") != "a" || likePrefix("xyz") != "xyz" || likePrefix("%x") != "" {
		t.Fatal("likePrefix wrong")
	}
}

func TestOrderedPrefix(t *testing.T) {
	if !orderedPrefix([]string{"t.a", "t.b"}, []string{"t.a"}) {
		t.Fatal("prefix should match")
	}
	if orderedPrefix([]string{"t.a"}, []string{"t.a", "t.b"}) {
		t.Fatal("longer want cannot match")
	}
	if orderedPrefix([]string{"t.b", "t.a"}, []string{"t.a"}) {
		t.Fatal("order matters")
	}
	if !orderedPrefix(nil, nil) {
		t.Fatal("empty want always matches")
	}
}

func mustSel(q string) sqlparser.Statement { return sqlparser.MustParse(q) }
