package service

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/workload"
)

// DefaultDriftThreshold is the drift score at or above which a daemon
// re-tunes when neither the daemon's options nor the server default
// (dtaserver -drift-threshold) choose one. Total-variation distance 0.15
// means 15% of the workload's weight has moved between templates since the
// last re-tune — enough to shift which indexes pay for themselves, while
// sampling noise on a stable workload stays well below it.
const DefaultDriftThreshold = 0.15

// Daemon triggers, in the order they can fire: the first trace epoch always
// tunes, later epochs tune when drift crosses the threshold, and feedback
// can force a re-tune under the updated pins/vetoes.
const (
	// TriggerInitial is the first re-tune: no accepted baseline exists yet.
	TriggerInitial = "initial"
	// TriggerDrift is a re-tune caused by the drift score crossing the
	// daemon's threshold.
	TriggerDrift = "drift"
	// TriggerFeedback is a re-tune explicitly requested alongside
	// accept/veto feedback.
	TriggerFeedback = "feedback"
)

// Re-tune paths: how a triggered re-tune was answered.
const (
	// PathRevise replays the search layer against the retained costed pool,
	// reweighted to the current template distribution — no costing work.
	PathRevise = "revise"
	// PathFresh runs the full costing pipeline over the current compressed
	// workload (new templates appeared, or no pool is retained).
	PathFresh = "fresh"
)

// DeltaEntry is one structure of a recommendation delta: its stable key
// (what feedback refers to) and the DDL-shaped description.
type DeltaEntry struct {
	Key string `json:"key"`
	DDL string `json:"ddl"`
}

// Delta is one recommendation delta a daemon emitted: the create/drop set
// relative to the daemon's previous proposal and the accepted
// configuration, plus the drift context that triggered it. Deltas carry no
// wall-clock fields, so an identical trace stream and feedback sequence
// yields a byte-identical delta sequence — across restarts and across
// parallelism levels.
type Delta struct {
	// Seq numbers deltas per daemon from 1.
	Seq int `json:"seq"`
	// Trigger is why the re-tune ran: initial, drift, or feedback.
	Trigger string `json:"trigger"`
	// Path is how it ran: revise (against the retained pool) or fresh.
	Path string `json:"path"`
	// Score is the drift score at the re-tune (1 for the initial tune).
	Score float64 `json:"score"`
	// Epoch is the trace-chunk count at emission; Events the cumulative
	// raw events absorbed.
	Epoch  int   `json:"epoch"`
	Events int64 `json:"events"`
	// Create lists structures newly proposed; Drop structures the previous
	// proposal contained but this one does not. Both sorted by key.
	Create []DeltaEntry `json:"create,omitempty"`
	Drop   []DeltaEntry `json:"drop,omitempty"`
	// Churn is len(Create) + len(Drop) — what dta_delta_churn observes.
	Churn int `json:"churn"`
	// Improvement and WhatIfCalls summarize the re-tune that produced the
	// delta; calls are search-layer only on the revise path.
	Improvement float64 `json:"improvement"`
	WhatIfCalls int64   `json:"whatIfCalls"`
}

// DaemonEvent is one entry of a daemon's NDJSON event stream.
type DaemonEvent struct {
	Seq int `json:"seq"`
	// Kind is ingest, drift, delta, feedback, or closed.
	Kind string `json:"kind"`
	// Events/Bytes carry cumulative ingest volume on ingest events.
	Events int64 `json:"events,omitempty"`
	Bytes  int64 `json:"bytes,omitempty"`
	// Score and Retuned carry a drift evaluation's outcome.
	Score   float64 `json:"score,omitempty"`
	Retuned bool    `json:"retuned,omitempty"`
	// Trigger is set on delta events (initial, drift, feedback).
	Trigger string `json:"trigger,omitempty"`
	// Structure and Accepted carry one feedback decision.
	Structure string `json:"structure,omitempty"`
	Accepted  bool   `json:"accepted,omitempty"`
	// Delta is the emitted delta on delta events.
	Delta *Delta `json:"delta,omitempty"`
}

// maxDaemonEventHistory bounds the per-daemon event log replayed to late
// subscribers, like maxEventHistory does for sessions.
const maxDaemonEventHistory = 1024

// Daemon is one continuous tuning loop: a long-lived per-database session
// that ingests the live trace incrementally through a streaming compressor,
// scores workload drift against the template distribution it last tuned,
// re-tunes when the score crosses its threshold — through the retained
// costed pool when the pool still covers every current template, through a
// fresh costing pass otherwise — and emits recommendation deltas instead of
// full configurations. Accept/veto feedback pins structures into the
// partial configuration (paper §5) or excludes them from future
// enumeration, and both survive re-tunes and server restarts through the
// manager's state directory.
type Daemon struct {
	id      string
	backend string
	created time.Time
	// journal records the daemon's decision history: every drift
	// evaluation, every delta, every feedback decision, plus the tuning
	// pipeline's own events for each re-tune — the substrate of
	// GET /daemons/{id}/explain.
	journal *journal.Journal
	// trace is the daemon's span timeline across all its re-tunes.
	trace *obs.Trace
	// gScore mirrors the latest drift score into dta_drift_score{daemon=id}.
	gScore *obs.Gauge

	mu     sync.Mutex
	closed bool
	// opts is the re-tune option template (wire CreateOptions mapped to
	// core.Options, callbacks stripped); wire is the persisted form.
	opts core.Options
	wire CreateOptions
	// threshold is the drift score at which an epoch triggers a re-tune.
	threshold float64
	comp      *workload.Compressor
	epochs    int
	// lastTuned is the template distribution at the last re-tune (nil
	// before the first); score is the latest drift evaluation against it.
	lastTuned drift.Distribution
	score     float64
	// pool is the costed pool retained from the last re-tune; poolDist the
	// template distribution of its statements, for the coverage check.
	pool     *core.CostedPool
	poolDist drift.Distribution
	// accepted is the pinned partial configuration built from accept
	// feedback (paper §6.2 user-specified configuration); vetoed the
	// structure keys excluded from enumeration.
	accepted *catalog.Configuration
	vetoed   []string
	// current maps the outstanding proposal's structure keys to the
	// structures themselves; deltas diff successive proposals against it,
	// and feedback resolves keys through it — the recommendation can
	// contain merged structures that exist in no candidate pool.
	current map[string]catalog.Structure
	deltas  []Delta
	retunes map[string]int64
	// lastImprovement/lastCalls summarize the most recent re-tune.
	lastImprovement float64
	lastCalls       int64

	seq     int
	events  []DaemonEvent
	subs    map[int]chan DaemonEvent
	nextSub int
}

// ID returns the daemon identifier.
func (d *Daemon) ID() string { return d.id }

// Backend returns the backend the daemon tunes.
func (d *Daemon) Backend() string { return d.backend }

// Journal returns the daemon's decision journal (live and bounded).
func (d *Daemon) Journal() *journal.Journal { return d.journal }

// Trace returns the daemon's span timeline (live).
func (d *Daemon) Trace() *obs.Trace { return d.trace }

// Deltas returns the daemon's delta history from seq (exclusive); since 0
// returns everything.
func (d *Daemon) Deltas(since int) []Delta {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Delta, 0, len(d.deltas))
	for _, dl := range d.deltas {
		if dl.Seq > since {
			out = append(out, dl)
		}
	}
	return out
}

// Subscribe registers a live event subscriber, mirroring Session.Subscribe:
// history for replay, a live channel (closed when the daemon closes), and
// an unsubscribe function. Slow subscribers drop events rather than
// stalling ingestion.
func (d *Daemon) Subscribe() ([]DaemonEvent, <-chan DaemonEvent, func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	hist := append([]DaemonEvent(nil), d.events...)
	if d.closed {
		ch := make(chan DaemonEvent)
		close(ch)
		return hist, ch, func() {}
	}
	id := d.nextSub
	d.nextSub++
	ch := make(chan DaemonEvent, 64)
	d.subs[id] = ch
	return hist, ch, func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		if _, ok := d.subs[id]; ok {
			delete(d.subs, id)
			close(ch)
		}
	}
}

// publishLocked appends an event and fans it out; the caller holds d.mu.
func (d *Daemon) publishLocked(e DaemonEvent) {
	d.seq++
	e.Seq = d.seq
	d.events = append(d.events, e)
	if len(d.events) > maxDaemonEventHistory {
		d.events = append(d.events[:1:1], d.events[len(d.events)-maxDaemonEventHistory+1:]...)
	}
	for _, ch := range d.subs {
		select {
		case ch <- e:
		default:
		}
	}
}

// DaemonSnapshot is the JSON-friendly view of a daemon.
type DaemonSnapshot struct {
	ID        string    `json:"id"`
	Backend   string    `json:"backend"`
	Created   time.Time `json:"created"`
	Closed    bool      `json:"closed,omitempty"`
	Threshold float64   `json:"threshold"`
	// Epochs is the trace-chunk count; Events/Templates/Representatives
	// the compressor's cumulative state.
	Epochs          int   `json:"epochs"`
	Events          int64 `json:"events"`
	Templates       int   `json:"templates"`
	Representatives int   `json:"representatives"`
	// DriftScore is the latest drift evaluation against the last-tuned
	// template distribution.
	DriftScore float64 `json:"driftScore"`
	// Retunes counts re-tunes by trigger; Deltas the deltas emitted.
	Retunes map[string]int64 `json:"retunes,omitempty"`
	Deltas  int              `json:"deltas"`
	// LastImprovement/LastWhatIfCalls summarize the most recent re-tune.
	LastImprovement float64 `json:"lastImprovement,omitempty"`
	LastWhatIfCalls int64   `json:"lastWhatIfCalls,omitempty"`
	// Accepted and Vetoed are the feedback state (sorted keys); Proposed
	// the outstanding proposal the next delta diffs against.
	Accepted []string     `json:"accepted,omitempty"`
	Vetoed   []string     `json:"vetoed,omitempty"`
	Proposed []DeltaEntry `json:"proposed,omitempty"`
	// PoolFingerprint is the retained pool's content address.
	PoolFingerprint string `json:"poolFingerprint,omitempty"`
}

// Snapshot captures the daemon's current state for reporting.
func (d *Daemon) Snapshot() DaemonSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := DaemonSnapshot{
		ID:              d.id,
		Backend:         d.backend,
		Created:         d.created,
		Closed:          d.closed,
		Threshold:       d.threshold,
		Epochs:          d.epochs,
		Events:          d.comp.Events(),
		Templates:       d.comp.Templates(),
		Representatives: d.comp.Len(),
		DriftScore:      d.score,
		Deltas:          len(d.deltas),
		LastImprovement: d.lastImprovement,
		LastWhatIfCalls: d.lastCalls,
		Vetoed:          append([]string(nil), d.vetoed...),
		Proposed:        sortedEntries(describe(d.current), ""),
	}
	if len(d.retunes) > 0 {
		out.Retunes = make(map[string]int64, len(d.retunes))
		for k, v := range d.retunes {
			out.Retunes[k] = v
		}
	}
	out.Accepted = acceptedKeys(d.accepted)
	if d.pool != nil {
		out.PoolFingerprint = d.pool.Fingerprint
	}
	return out
}

// acceptedKeys returns the sorted structure keys of a pinned configuration.
func acceptedKeys(cfg *catalog.Configuration) []string {
	if cfg == nil {
		return nil
	}
	var keys []string
	for _, st := range cfg.Structures() {
		keys = append(keys, st.Key())
	}
	sort.Strings(keys)
	return keys
}

// describe renders a key→structure map as key→description.
func describe(m map[string]catalog.Structure) map[string]string {
	out := make(map[string]string, len(m))
	for k, st := range m {
		out[k] = st.String()
	}
	return out
}

// sortedEntries renders a key→description map as DeltaEntry list sorted by
// key, with an optional DDL verb prefix.
func sortedEntries(m map[string]string, verb string) []DeltaEntry {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]DeltaEntry, 0, len(keys))
	for _, k := range keys {
		out = append(out, DeltaEntry{Key: k, DDL: verb + m[k]})
	}
	return out
}

// DaemonDriftOptions tunes a daemon's drift detection.
type DaemonDriftOptions struct {
	// Threshold is the drift score at or above which an epoch triggers a
	// re-tune; 0 defers to the server default (dtaserver -drift-threshold,
	// DefaultDriftThreshold absent that). Negative is rejected.
	Threshold float64 `json:"threshold,omitempty"`
}

// DaemonRequest is the JSON body of POST /daemons.
type DaemonRequest struct {
	// Database names the registered backend (may be empty when exactly one
	// backend is registered).
	Database string `json:"database,omitempty"`
	// Options carries the re-tune tuning options, same wire form as
	// sessions; reports are always skipped and compression is implicit (the
	// daemon's workload only exists as compressor output).
	Options CreateOptions `json:"options"`
	// Drift tunes drift detection.
	Drift DaemonDriftOptions `json:"drift"`
}

// SetDriftThreshold sets the server-default drift threshold for daemons
// whose request does not choose one (dtaserver -drift-threshold). Call
// before serving; applies to daemons created afterwards.
func (m *Manager) SetDriftThreshold(t float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t <= 0 {
		t = DefaultDriftThreshold
	}
	m.driftDefault = t
}

// CreateDaemon starts a continuous tuning daemon on the named backend. The
// daemon is idle until its first trace chunk arrives.
func (m *Manager) CreateDaemon(req DaemonRequest) (*Daemon, error) {
	b, err := m.backend(req.Database)
	if err != nil {
		return nil, err
	}
	if req.Drift.Threshold < 0 {
		return nil, fmt.Errorf("service: negative drift threshold %g", req.Drift.Threshold)
	}
	opts, err := req.Options.toCore()
	if err != nil {
		return nil, err
	}
	threshold := req.Drift.Threshold
	m.mu.Lock()
	if threshold == 0 {
		threshold = m.driftDefault
		if threshold == 0 {
			threshold = DefaultDriftThreshold
		}
	}
	if opts.Derive == "" {
		opts.Derive = m.deriveDefault
	}
	m.mu.Unlock()
	return m.addDaemon("", b.Name, req.Options, opts, threshold, nil)
}

// addDaemon allocates and registers a daemon; the resume path supplies a
// fixed ID and a restored compressor (nil = fresh).
func (m *Manager) addDaemon(id, backend string, wire CreateOptions, opts core.Options, threshold float64, comp *workload.Compressor) (*Daemon, error) {
	opts.SkipReports = true
	if comp == nil {
		comp = workload.NewCompressor(workload.CompressOptions{MaxPerTemplate: opts.MaxPerTemplate})
	}
	m.mu.Lock()
	if id == "" {
		m.dseq++
		id = fmt.Sprintf("d-%04d", m.dseq)
	} else {
		if _, dup := m.daemons[id]; dup {
			m.mu.Unlock()
			return nil, fmt.Errorf("service: daemon %q already exists", id)
		}
		var n int
		if _, err := fmt.Sscanf(id, "d-%d", &n); err == nil && n > m.dseq {
			m.dseq = n
		}
	}
	d := &Daemon{
		id:        id,
		backend:   backend,
		created:   time.Now(),
		opts:      opts,
		wire:      wire,
		threshold: threshold,
		comp:      comp,
		current:   map[string]catalog.Structure{},
		retunes:   map[string]int64{},
		subs:      map[int]chan DaemonEvent{},
	}
	d.trace = obs.NewTrace(d.id)
	d.journal = journal.New(d.id)
	d.journal.AttachMetrics(m.reg)
	d.gScore = m.reg.Gauge("dta_drift_score",
		"Latest workload-drift score per daemon (0 = template distribution unchanged since the last re-tune, 1 = disjoint).",
		"daemon", d.id)
	m.daemons[d.id] = d
	m.dorder = append(m.dorder, d.id)
	m.mu.Unlock()
	m.daemonsCreated.Add(1)
	m.cDaemons.Inc()
	m.log.Info("daemon created", "daemon", d.id, "backend", backend, "threshold", threshold)
	return d, nil
}

// GetDaemon returns the daemon by ID.
func (m *Manager) GetDaemon(id string) (*Daemon, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.daemons[id]
	return d, ok
}

// Daemons returns every daemon in creation order.
func (m *Manager) Daemons() []*Daemon {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Daemon, 0, len(m.dorder))
	for _, id := range m.dorder {
		out = append(out, m.daemons[id])
	}
	return out
}

// CloseDaemon closes the daemon: it stops accepting trace and feedback,
// its event stream terminates, and its persisted state and pool files are
// removed. The daemon stays listed for inspection.
func (m *Manager) CloseDaemon(id string) (*Daemon, error) {
	d, ok := m.GetDaemon(id)
	if !ok {
		return nil, fmt.Errorf("service: no daemon %q", id)
	}
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		d.publishLocked(DaemonEvent{Kind: "closed"})
		for sid, ch := range d.subs {
			delete(d.subs, sid)
			close(ch)
		}
	}
	d.mu.Unlock()
	m.removeDaemonState(id)
	m.removePool(id)
	m.log.Info("daemon closed", "daemon", id)
	return d, nil
}

// EpochResult reports one trace chunk's outcome: the drift evaluation and,
// when a re-tune was triggered, the delta it emitted.
type EpochResult struct {
	Daemon string `json:"daemon"`
	Epoch  int    `json:"epoch"`
	// Events is the cumulative raw-event count; ChunkEvents and ChunkBytes
	// this chunk's volume.
	Events      int64 `json:"events"`
	ChunkEvents int64 `json:"chunkEvents"`
	ChunkBytes  int64 `json:"chunkBytes"`
	// Score is the drift score against the last-tuned distribution;
	// Threshold the daemon's trigger level.
	Score     float64 `json:"score"`
	Threshold float64 `json:"threshold"`
	// Retuned reports whether this epoch re-tuned; Trigger/Path/Delta
	// describe the re-tune when it did.
	Retuned bool   `json:"retuned"`
	Trigger string `json:"trigger,omitempty"`
	Path    string `json:"path,omitempty"`
	Delta   *Delta `json:"delta,omitempty"`
}

// IngestTrace streams one trace chunk (the workload.ReadTrace line format)
// into the daemon's compressor, evaluates drift at the chunk boundary, and
// re-tunes synchronously when the score crosses the threshold — the first
// chunk always tunes. The call returns when ingestion and any re-tune are
// done; re-tunes wait for a manager worker slot like sessions do, so
// daemons cannot oversubscribe the box. A malformed trace line aborts the
// chunk with a line-numbered error; events before the bad line stay folded
// in (the compressor is cumulative), and the daemon remains usable.
func (m *Manager) IngestTrace(ctx context.Context, id string, trace io.Reader) (*EpochResult, error) {
	d, ok := m.GetDaemon(id)
	if !ok {
		return nil, fmt.Errorf("service: no daemon %q", id)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("service: daemon %s is closed", d.id)
	}
	b, err := m.backend(d.backend)
	if err != nil {
		return nil, err
	}

	startEvents := d.comp.Events()
	cr := &countingReader{r: trace}
	_, sp := obs.StartSpan(obs.WithTrace(ctx, d.trace), "daemon", "ingest")
	var last int64
	flush := func() {
		ev := d.comp.Events() - startEvents
		m.cIngestEvents.Add(float64(ev - last))
		last = ev
	}
	err = workload.StreamTrace(cr, func(e *workload.Event, _ int) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if aerr := d.comp.Add(e); aerr != nil {
			return aerr
		}
		if (d.comp.Events()-startEvents)%ingestFlushEvery == 0 {
			flush()
		}
		return nil
	})
	flush()
	m.cIngestBytes.Add(float64(cr.n))
	chunk := d.comp.Events() - startEvents
	if err != nil {
		sp.SetArg("error", err.Error()).End()
		m.writeDaemonState(d)
		return nil, fmt.Errorf("service: daemon %s trace ingest: %w", d.id, err)
	}
	if d.comp.Events() == 0 {
		sp.End()
		return nil, fmt.Errorf("service: daemon %s: trace contains no statements", d.id)
	}
	d.epochs++
	sp.SetArg("events", chunk).SetArg("bytes", cr.n).End()
	d.publishLocked(DaemonEvent{Kind: "ingest", Events: d.comp.Events(), Bytes: cr.n})

	cur := drift.Distribution(d.comp.TemplateWeights())
	score := drift.Score(d.lastTuned, cur)
	d.score = score
	d.gScore.Set(score)
	trigger := ""
	switch {
	case d.lastTuned == nil:
		trigger = TriggerInitial
	case score >= d.threshold:
		trigger = TriggerDrift
	}
	ev := journal.Ev(journal.KindDrift)
	ev.CostBefore = d.threshold
	ev.CostAfter = score
	ev.Accepted = trigger != ""
	ev.Reason = trigger
	d.journal.Append(ev)
	d.publishLocked(DaemonEvent{Kind: "drift", Score: score, Retuned: trigger != ""})
	m.log.Info("daemon epoch", "daemon", d.id, "epoch", d.epochs,
		"events", d.comp.Events(), "score", score, "trigger", trigger)

	res := &EpochResult{
		Daemon:      d.id,
		Epoch:       d.epochs,
		Events:      d.comp.Events(),
		ChunkEvents: chunk,
		ChunkBytes:  cr.n,
		Score:       score,
		Threshold:   d.threshold,
	}
	if trigger == "" {
		m.writeDaemonState(d)
		return res, nil
	}
	delta, path, err := m.retuneLocked(ctx, d, b, trigger, cur, score)
	if err != nil {
		m.writeDaemonState(d)
		return res, err
	}
	res.Retuned = true
	res.Trigger = trigger
	res.Path = path
	res.Delta = delta
	m.writeDaemonState(d)
	return res, nil
}

// retuneLocked runs one re-tune (the caller holds d.mu): through the
// revise path when the retained pool's statements cover every template
// currently carrying weight, through a fresh costing pass otherwise. It
// waits for a manager worker slot, updates the daemon's pool, proposal,
// and last-tuned distribution, and emits the resulting delta.
func (m *Manager) retuneLocked(ctx context.Context, d *Daemon, b *Backend, trigger string, cur drift.Distribution, score float64) (*Delta, string, error) {
	ctx = obs.WithTrace(ctx, d.trace)
	ctx = journal.WithContext(ctx, d.journal)
	ctx, root := obs.StartSpan(ctx, "daemon", "retune")
	root.SetArg("trigger", trigger).SetArg("score", score)
	defer root.End()

	_, queued := obs.StartSpan(ctx, "daemon", "queued")
	select {
	case m.sem <- struct{}{}:
		queued.End()
		defer func() { <-m.sem }()
	case <-ctx.Done():
		queued.End()
		return nil, "", ctx.Err()
	}

	path := PathFresh
	if d.pool != nil && drift.Covers(d.poolDist, cur) {
		path = PathRevise
	}
	root.SetArg("path", path)

	var pool *core.CostedPool
	var rec *core.Recommendation
	var err error
	start := time.Now()
	switch path {
	case PathRevise:
		cons := core.Constraints{
			StorageBudget: d.opts.StorageBudget,
			Aligned:       d.opts.Aligned,
			Pinned:        d.accepted,
			Vetoed:        append([]string(nil), d.vetoed...),
			SliceWeights:  drift.Multipliers(d.poolDist, cur),
		}
		opts := core.Options{
			Parallelism: m.clampParallelism(d.opts.Parallelism),
			Metrics:     m.reg,
			PoolSink:    func(p *core.CostedPool) { pool = p },
		}
		rec, err = core.Revise(ctx, b.Tuner, d.pool, cons, opts)
	default:
		// Snapshot the compressor's representatives: later chunks keep
		// folding weight into them, and the tuned workload must not move
		// under the pipeline.
		cw := d.comp.Workload()
		w := &workload.Workload{Events: make([]*workload.Event, 0, len(cw.Events))}
		for _, e := range cw.Events {
			cp := *e
			w.Events = append(w.Events, &cp)
		}
		opts := d.opts
		// The workload is already the compressor's representative set;
		// batch-compressing it again would be a no-op pass over every event.
		opts.NoCompression = true
		opts.UserConfig = d.accepted
		opts.Vetoed = append([]string(nil), d.vetoed...)
		if opts.BaseConfig == nil {
			opts.BaseConfig = b.BaseConfig
		}
		opts.Parallelism = m.clampParallelism(opts.Parallelism)
		opts.Metrics = m.reg
		opts.Ingest = &core.IngestStats{Events: d.comp.Events(), Templates: d.comp.Templates()}
		opts.PoolSink = func(p *core.CostedPool) { pool = p }
		rec, err = core.TuneContext(ctx, b.Tuner, w, opts)
	}
	elapsed := time.Since(start)
	if err != nil {
		m.log.Warn("daemon re-tune failed", "daemon", d.id, "trigger", trigger, "path", path, "err", err)
		return nil, path, fmt.Errorf("service: daemon %s re-tune (%s/%s): %w", d.id, trigger, path, err)
	}
	if pool != nil {
		d.pool = pool
		d.poolDist = statementDistribution(pool.Statements)
		m.writePool(d.id, pool)
	}

	// Diff the new proposal against the previous one. Pinned (accepted)
	// structures never appear in NewStructures — they ride in the base —
	// but filter defensively so an accepted key can never churn.
	acc := map[string]bool{}
	for _, k := range acceptedKeys(d.accepted) {
		acc[k] = true
	}
	proposal := map[string]catalog.Structure{}
	for _, st := range rec.NewStructures {
		if k := st.Key(); !acc[k] {
			proposal[k] = st
		}
	}
	creates := map[string]string{}
	for k, st := range proposal {
		if _, had := d.current[k]; !had {
			creates[k] = st.String()
		}
	}
	drops := map[string]string{}
	for k, st := range d.current {
		if _, has := proposal[k]; !has {
			drops[k] = st.String()
		}
	}
	delta := Delta{
		Seq:         len(d.deltas) + 1,
		Trigger:     trigger,
		Path:        path,
		Score:       score,
		Epoch:       d.epochs,
		Events:      d.comp.Events(),
		Create:      sortedEntries(creates, "CREATE "),
		Drop:        sortedEntries(drops, "DROP "),
		Churn:       len(creates) + len(drops),
		Improvement: rec.Improvement,
		WhatIfCalls: rec.WhatIfCalls,
	}
	d.current = proposal
	d.lastTuned = cur
	d.score = drift.Score(d.lastTuned, cur) // 0 by construction
	d.gScore.Set(d.score)
	d.lastImprovement = rec.Improvement
	d.lastCalls = rec.WhatIfCalls
	d.deltas = append(d.deltas, delta)
	d.retunes[trigger]++

	ev := journal.Ev(journal.KindDelta)
	ev.Reason = trigger + "/" + path
	ev.Alternatives = delta.Churn
	for _, e := range delta.Create {
		ev.Structures = append(ev.Structures, e.Key)
	}
	for _, e := range delta.Drop {
		ev.Parents = append(ev.Parents, e.Key)
	}
	ev.CostAfter = rec.Improvement
	ev.Accepted = true
	d.journal.Append(ev)

	m.daemonRetunes.Add(1)
	m.deltasEmitted.Add(1)
	m.cRetunes[trigger].Inc()
	m.hChurn.Observe(float64(delta.Churn))
	m.hDuration.Observe(elapsed.Seconds())
	root.SetArg("whatIfCalls", rec.WhatIfCalls).SetArg("improvement", rec.Improvement).
		SetArg("churn", delta.Churn)
	d.publishLocked(DaemonEvent{Kind: "delta", Trigger: trigger, Score: score, Delta: &delta})
	m.log.Info("daemon re-tuned", "daemon", d.id, "trigger", trigger, "path", path,
		"duration", elapsed, "whatIfCalls", rec.WhatIfCalls,
		"improvement", rec.Improvement, "churn", delta.Churn)
	return &delta, path, nil
}

// statementDistribution computes the template distribution of a pool's
// statements, the base of the revise-path coverage check and multipliers.
func statementDistribution(stmts []workload.Statement) drift.Distribution {
	w, err := workload.FromStatements(stmts)
	if err != nil {
		return nil
	}
	out := drift.Distribution{}
	for _, e := range w.Events {
		out[e.Signature()] += e.Weight
	}
	return out
}

// FeedbackRequest is the JSON body of POST /daemons/{id}/feedback: the
// DBA-in-the-loop decisions about proposed structures.
type FeedbackRequest struct {
	// Accept pins the named structures into the partial configuration:
	// every future re-tune builds on them and never proposes or drops
	// them. Accepting a vetoed key lifts the veto.
	Accept []string `json:"accept,omitempty"`
	// Veto excludes the named structures from future enumeration. Vetoing
	// an accepted key unpins it, and the next delta proposes dropping it.
	Veto []string `json:"veto,omitempty"`
	// Retune forces an immediate re-tune under the updated feedback
	// (trigger "feedback"), so a veto is answered with its replacement in
	// the same call.
	Retune bool `json:"retune,omitempty"`
}

// FeedbackResult reports applied feedback and the delta a forced re-tune
// emitted.
type FeedbackResult struct {
	Daemon   string   `json:"daemon"`
	Accepted []string `json:"accepted,omitempty"`
	Vetoed   []string `json:"vetoed,omitempty"`
	Delta    *Delta   `json:"delta,omitempty"`
}

// Feedback applies accept/veto decisions to the daemon. Accept keys must
// resolve against the current proposal, the retained pool's candidates or
// base, or the already-accepted set; veto keys against the same — an
// unresolvable key fails the whole request before anything is applied.
// Feedback is persisted immediately, so it survives server restarts.
func (m *Manager) Feedback(ctx context.Context, id string, req FeedbackRequest) (*FeedbackResult, error) {
	d, ok := m.GetDaemon(id)
	if !ok {
		return nil, fmt.Errorf("service: no daemon %q", id)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("service: daemon %s is closed", d.id)
	}

	byKey := map[string]catalog.Structure{}
	for k, st := range d.current {
		byKey[k] = st
	}
	if d.pool != nil {
		for _, st := range d.pool.Candidates {
			byKey[st.Key()] = st
		}
		if d.pool.Base != nil {
			for _, st := range d.pool.Base.Structures() {
				byKey[st.Key()] = st
			}
		}
	}
	if d.accepted != nil {
		for _, st := range d.accepted.Structures() {
			byKey[st.Key()] = st
		}
	}
	resolve := func(k, verb string) (catalog.Structure, error) {
		st, ok := byKey[k]
		if !ok {
			return catalog.Structure{}, fmt.Errorf("service: %s key %q matches no proposed, pooled, or accepted structure of daemon %s", verb, k, d.id)
		}
		return st, nil
	}
	type change struct {
		key    string
		st     catalog.Structure
		accept bool
	}
	var changes []change
	for _, k := range req.Accept {
		st, err := resolve(k, "accept")
		if err != nil {
			return nil, err
		}
		changes = append(changes, change{k, st, true})
	}
	for _, k := range req.Veto {
		st, err := resolve(k, "veto")
		if err != nil {
			return nil, err
		}
		changes = append(changes, change{k, st, false})
	}

	res := &FeedbackResult{Daemon: d.id}
	vetoSet := map[string]bool{}
	for _, k := range d.vetoed {
		vetoSet[k] = true
	}
	accSet := map[string]catalog.Structure{}
	if d.accepted != nil {
		for _, st := range d.accepted.Structures() {
			accSet[st.Key()] = st
		}
	}
	for _, c := range changes {
		if c.accept {
			delete(vetoSet, c.key)
			accSet[c.key] = c.st
			// The structure is deployed now, not an outstanding proposal.
			delete(d.current, c.key)
			res.Accepted = append(res.Accepted, c.key)
		} else {
			vetoSet[c.key] = true
			if _, was := accSet[c.key]; was {
				delete(accSet, c.key)
				// It was deployed: surface the drop in the next delta.
				d.current[c.key] = c.st
			}
			res.Vetoed = append(res.Vetoed, c.key)
		}
		ev := journal.Ev(journal.KindFeedback)
		ev.Structure = c.key
		ev.Accepted = c.accept
		d.journal.Append(ev)
		d.publishLocked(DaemonEvent{Kind: "feedback", Structure: c.key, Accepted: c.accept})
	}
	d.vetoed = d.vetoed[:0]
	for k := range vetoSet {
		d.vetoed = append(d.vetoed, k)
	}
	sort.Strings(d.vetoed)
	if len(accSet) == 0 {
		d.accepted = nil
	} else {
		cfg := catalog.NewConfiguration()
		keys := make([]string, 0, len(accSet))
		for k := range accSet {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			accSet[k].ApplyTo(cfg)
		}
		d.accepted = cfg
	}
	m.log.Info("daemon feedback", "daemon", d.id,
		"accepted", res.Accepted, "vetoed", res.Vetoed, "retune", req.Retune)

	if req.Retune {
		b, err := m.backend(d.backend)
		if err != nil {
			return nil, err
		}
		cur := drift.Distribution(d.comp.TemplateWeights())
		if cur.Total() <= 0 {
			return nil, fmt.Errorf("service: daemon %s has ingested no trace to re-tune", d.id)
		}
		delta, _, err := m.retuneLocked(ctx, d, b, TriggerFeedback, cur, d.score)
		if err != nil {
			m.writeDaemonState(d)
			return nil, err
		}
		res.Delta = delta
	}
	m.writeDaemonState(d)
	return res, nil
}
