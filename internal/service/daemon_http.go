package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/journal"
)

// daemonRoutes adds the continuous-tuning endpoints to the service mux;
// Handler calls it so the daemon API ships with the session API.
func (m *Manager) daemonRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /daemons", m.handleDaemonCreate)
	mux.HandleFunc("POST /daemons/resume", m.handleDaemonResume)
	mux.HandleFunc("GET /daemons", m.handleDaemonList)
	mux.HandleFunc("GET /daemons/{id}", m.handleDaemonGet)
	mux.HandleFunc("POST /daemons/{id}/trace", m.handleDaemonTrace)
	mux.HandleFunc("GET /daemons/{id}/delta", m.handleDaemonDelta)
	mux.HandleFunc("POST /daemons/{id}/feedback", m.handleDaemonFeedback)
	mux.HandleFunc("GET /daemons/{id}/events", m.handleDaemonEvents)
	mux.HandleFunc("GET /daemons/{id}/journal", m.handleDaemonJournal)
	mux.HandleFunc("GET /daemons/{id}/explain", m.handleDaemonExplain)
	mux.HandleFunc("GET /daemons/{id}/timeline", m.handleDaemonTimeline)
	mux.HandleFunc("DELETE /daemons/{id}", m.handleDaemonClose)
}

func (m *Manager) handleDaemonCreate(w http.ResponseWriter, r *http.Request) {
	var body DaemonRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	d, err := m.CreateDaemon(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/daemons/"+d.ID())
	writeJSON(w, http.StatusCreated, d.Snapshot())
}

// handleDaemonResume replays the state directory's daemon files, restoring
// every persisted daemon that is not already live — the endpoint twin of
// the ResumeDaemons call dtaserver makes at startup.
func (m *Manager) handleDaemonResume(w http.ResponseWriter, r *http.Request) {
	resumed, err := m.ResumeDaemons()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]DaemonSnapshot, len(resumed))
	for i, d := range resumed {
		out[i] = d.Snapshot()
	}
	writeJSON(w, http.StatusOK, map[string]any{"resumed": out})
}

func (m *Manager) handleDaemonList(w http.ResponseWriter, r *http.Request) {
	daemons := m.Daemons()
	out := make([]DaemonSnapshot, len(daemons))
	for i, d := range daemons {
		out[i] = d.Snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

func (m *Manager) daemon(w http.ResponseWriter, r *http.Request) (*Daemon, bool) {
	id := r.PathValue("id")
	d, ok := m.GetDaemon(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no daemon %q", id))
	}
	return d, ok
}

func (m *Manager) handleDaemonGet(w http.ResponseWriter, r *http.Request) {
	if d, ok := m.daemon(w, r); ok {
		writeJSON(w, http.StatusOK, d.Snapshot())
	}
}

// handleDaemonTrace is POST /daemons/{id}/trace: the body is one trace
// chunk in the workload.ReadTrace line format, streamed straight into the
// daemon's compressor. The response is the epoch result — the drift score
// this chunk left the daemon at and, when a re-tune was triggered, the
// delta it emitted. The call is synchronous: a triggered re-tune runs (and
// may queue behind the worker limit) before the response is written, so
// the caller always observes the daemon's post-epoch state.
func (m *Manager) handleDaemonTrace(w http.ResponseWriter, r *http.Request) {
	d, ok := m.daemon(w, r)
	if !ok {
		return
	}
	res, err := m.IngestTrace(r.Context(), d.ID(), r.Body)
	if err != nil {
		status := http.StatusBadRequest
		if res != nil {
			// Ingestion succeeded; the re-tune behind it failed.
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleDaemonDelta is GET /daemons/{id}/delta: the daemon's recommendation
// deltas, oldest first. ?since=N skips deltas with seq ≤ N, so a DBA
// applying deltas can poll for only what is new.
func (m *Manager) handleDaemonDelta(w http.ResponseWriter, r *http.Request) {
	d, ok := m.daemon(w, r)
	if !ok {
		return
	}
	since := 0
	if q := r.URL.Query().Get("since"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad since %q", q))
			return
		}
		since = n
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"daemon": d.ID(),
		"deltas": d.Deltas(since),
	})
}

func (m *Manager) handleDaemonFeedback(w http.ResponseWriter, r *http.Request) {
	d, ok := m.daemon(w, r)
	if !ok {
		return
	}
	var body FeedbackRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(body.Accept) == 0 && len(body.Veto) == 0 && !body.Retune {
		writeError(w, http.StatusBadRequest, fmt.Errorf("feedback names no structures and requests no re-tune"))
		return
	}
	res, err := m.Feedback(r.Context(), d.ID(), body)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "re-tune") {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleDaemonEvents streams the daemon's event log as NDJSON: history
// first, then live events until the daemon is closed or the client goes
// away. Unlike a session stream it has no natural end — a daemon is
// long-lived by design.
func (m *Manager) handleDaemonEvents(w http.ResponseWriter, r *http.Request) {
	d, ok := m.daemon(w, r)
	if !ok {
		return
	}
	hist, live, unsub := d.Subscribe()
	defer unsub()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for _, e := range hist {
		enc.Encode(e)
	}
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case e, open := <-live:
			if !open {
				return
			}
			enc.Encode(e)
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleDaemonJournal serves the daemon's decision journal as NDJSON —
// the drift/delta/feedback events plus the tuning pipeline's own decision
// events for every re-tune. ?kind= filters as on the session endpoint
// (the daemon kinds are drift, delta, feedback).
func (m *Manager) handleDaemonJournal(w http.ResponseWriter, r *http.Request) {
	d, ok := m.daemon(w, r)
	if !ok {
		return
	}
	var filter map[journal.Kind]bool
	if q := r.URL.Query().Get("kind"); q != "" {
		f, err := journal.ParseKinds(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		filter = f
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	d.Journal().WriteNDJSON(w, filter)
}

// daemonExplanation is the GET /daemons/{id}/explain response: why the
// latest delta was proposed (its trigger, path, and drift score) plus
// per-structure provenance for the outstanding proposal, reconstructed
// from the daemon's decision journal exactly as session explain is.
type daemonExplanation struct {
	Daemon string `json:"daemon"`
	// LastDelta is the most recent delta with the drift context that
	// triggered it; nil before the first re-tune.
	LastDelta *Delta `json:"lastDelta,omitempty"`
	// Explain is the per-structure provenance of the outstanding proposal.
	Explain *journal.Explanation `json:"explain"`
}

func (m *Manager) handleDaemonExplain(w http.ResponseWriter, r *http.Request) {
	d, ok := m.daemon(w, r)
	if !ok {
		return
	}
	snap := d.Snapshot()
	if snap.Deltas == 0 {
		writeError(w, http.StatusConflict, fmt.Errorf("daemon %s has not re-tuned yet; explain requires at least one delta", d.ID()))
		return
	}
	keys := make([]string, 0, len(snap.Proposed))
	for _, e := range snap.Proposed {
		keys = append(keys, e.Key)
	}
	exp := journal.Explain(d.Journal().Events(), keys)
	exp.Session = d.ID()
	exp.DroppedEvents = d.Journal().DroppedByKind()
	out := daemonExplanation{Daemon: d.ID(), Explain: exp}
	if all := d.Deltas(0); len(all) > 0 {
		out.LastDelta = &all[len(all)-1]
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDaemonTimeline serves the daemon's span timeline as Chrome
// trace-event JSON, covering every re-tune the daemon has run. (Named
// /timeline rather than the sessions' /trace because POST …/trace is the
// daemon's trace-ingest endpoint.)
func (m *Manager) handleDaemonTimeline(w http.ResponseWriter, r *http.Request) {
	d, ok := m.daemon(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="`+d.ID()+`-trace.json"`)
	w.WriteHeader(http.StatusOK)
	d.Trace().WriteChromeTrace(w)
}

func (m *Manager) handleDaemonClose(w http.ResponseWriter, r *http.Request) {
	d, ok := m.daemon(w, r)
	if !ok {
		return
	}
	if _, err := m.CloseDaemon(d.ID()); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, d.Snapshot())
}
