package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/workload"
)

// daemonState is the on-disk form of one continuous tuning daemon: the
// manifest (backend, options, threshold), the full compressor snapshot, the
// template distribution last tuned, the feedback state, the outstanding
// proposal, and the delta history. One file per daemon lives under the
// manager's state directory as <id>.daemon.json, rewritten after every
// epoch and every feedback call; the retained pool rides beside it as
// <id>.pool.json through the same writePool path sessions use. Restoring
// the compressor snapshot — rather than replaying the trace — is what makes
// a restarted daemon byte-identical to one that never stopped.
type daemonState struct {
	ID        string                    `json:"id"`
	Backend   string                    `json:"backend,omitempty"`
	Created   time.Time                 `json:"created"`
	Options   CreateOptions             `json:"options"`
	Threshold float64                   `json:"threshold"`
	Epochs    int                       `json:"epochs"`
	Score     float64                   `json:"score"`
	Comp      *workload.CompressorState `json:"compressor,omitempty"`
	LastTuned map[string]float64        `json:"lastTuned,omitempty"`
	Accepted  *catalog.Configuration    `json:"accepted,omitempty"`
	Vetoed    []string                  `json:"vetoed,omitempty"`
	// Proposed is the outstanding proposal (key → structure) the next
	// delta diffs against and feedback keys resolve through.
	Proposed map[string]catalog.Structure `json:"proposed,omitempty"`
	Deltas   []Delta           `json:"deltas,omitempty"`
	Retunes  map[string]int64  `json:"retunes,omitempty"`
	// LastImprovement/LastCalls summarize the most recent re-tune.
	LastImprovement float64 `json:"lastImprovement,omitempty"`
	LastCalls       int64   `json:"lastCalls,omitempty"`
	// PoolFingerprint cross-checks the <id>.pool.json beside this file; a
	// mismatched or missing pool degrades to the fresh path, never corrupts.
	PoolFingerprint string `json:"poolFingerprint,omitempty"`
}

// daemonSuffix marks daemon state files in the shared state directory.
const daemonSuffix = ".daemon.json"

// daemonPath returns the daemon's state file path ("" with persistence off).
func (m *Manager) daemonPath(id string) string {
	m.mu.Lock()
	dir := m.stateDir
	m.mu.Unlock()
	if dir == "" {
		return ""
	}
	return filepath.Join(dir, id+daemonSuffix)
}

// writeDaemonState persists the daemon atomically (temp file + rename); the
// caller holds d.mu. A daemon whose options are not wire-representable
// (programmatic callbacks etc.) cannot be persisted and is skipped — the
// HTTP surface only produces representable ones.
func (m *Manager) writeDaemonState(d *Daemon) {
	path := m.daemonPath(d.id)
	if path == "" {
		return
	}
	st := &daemonState{
		ID:              d.id,
		Backend:         d.backend,
		Created:         d.created,
		Options:         d.wire,
		Threshold:       d.threshold,
		Epochs:          d.epochs,
		Score:           d.score,
		Comp:            d.comp.State(),
		LastTuned:       d.lastTuned,
		Accepted:        d.accepted,
		Vetoed:          d.vetoed,
		Proposed:        d.current,
		Deltas:          d.deltas,
		Retunes:         d.retunes,
		LastImprovement: d.lastImprovement,
		LastCalls:       d.lastCalls,
	}
	if d.pool != nil {
		st.PoolFingerprint = d.pool.Fingerprint
	}
	data, err := json.Marshal(st)
	if err != nil {
		m.log.Warn("daemon state marshal", "daemon", d.id, "err", err)
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		m.log.Warn("daemon state write", "daemon", d.id, "err", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		m.log.Warn("daemon state rename", "daemon", d.id, "err", err)
	}
}

// removeDaemonState deletes a closed daemon's state file.
func (m *Manager) removeDaemonState(id string) {
	if path := m.daemonPath(id); path != "" {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			m.log.Warn("daemon state remove", "daemon", id, "err", err)
		}
	}
}

// ResumeDaemons scans the state directory and restores every persisted
// daemon that is not already live: compressor snapshot, feedback state,
// proposal, delta history, and — when the fingerprint beside it still
// matches — the retained costed pool, so the first post-restart re-tune can
// take the revise path. Identical trace and feedback fed to a restored
// daemon produce the identical delta sequence an uninterrupted daemon would
// have emitted. Corrupt files are logged and skipped, never fatal.
func (m *Manager) ResumeDaemons() ([]*Daemon, error) {
	m.mu.Lock()
	dir := m.stateDir
	m.mu.Unlock()
	if dir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: state dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), daemonSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // creation order: IDs are zero-padded sequence numbers

	var resumed []*Daemon
	for _, name := range names {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			m.log.Warn("daemon state read", "file", name, "err", err)
			continue
		}
		var st daemonState
		if err := json.Unmarshal(data, &st); err != nil || st.ID == "" {
			m.log.Warn("daemon state corrupt", "file", name, "err", err)
			continue
		}
		if _, live := m.GetDaemon(st.ID); live {
			continue
		}
		d, err := m.resumeDaemon(&st)
		if err != nil {
			m.log.Warn("daemon resume failed", "daemon", st.ID, "err", err)
			continue
		}
		m.log.Info("daemon resumed", "daemon", d.id, "backend", d.backend,
			"epochs", st.Epochs, "deltas", len(st.Deltas))
		resumed = append(resumed, d)
	}
	return resumed, nil
}

// resumeDaemon rebuilds one daemon from its persisted state.
func (m *Manager) resumeDaemon(st *daemonState) (*Daemon, error) {
	if _, err := m.backend(st.Backend); err != nil {
		return nil, err
	}
	opts, err := st.Options.toCore()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if opts.Derive == "" {
		opts.Derive = m.deriveDefault
	}
	m.mu.Unlock()
	var comp *workload.Compressor
	if st.Comp != nil {
		comp, err = workload.RestoreCompressor(st.Comp)
		if err != nil {
			return nil, fmt.Errorf("compressor snapshot: %w", err)
		}
	}
	threshold := st.Threshold
	if threshold <= 0 {
		threshold = DefaultDriftThreshold
	}
	d, err := m.addDaemon(st.ID, st.Backend, st.Options, opts, threshold, comp)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.created = st.Created
	d.epochs = st.Epochs
	d.score = st.Score
	if st.LastTuned != nil {
		d.lastTuned = drift.Distribution(st.LastTuned)
	}
	d.accepted = st.Accepted
	d.vetoed = append([]string(nil), st.Vetoed...)
	if st.Proposed != nil {
		d.current = st.Proposed
	}
	d.deltas = append([]Delta(nil), st.Deltas...)
	for k, v := range st.Retunes {
		d.retunes[k] = v
	}
	d.lastImprovement = st.LastImprovement
	d.lastCalls = st.LastCalls
	d.gScore.Set(d.score)
	if st.PoolFingerprint != "" {
		if pool := m.readPool(d.id, st.PoolFingerprint); pool != nil {
			d.pool = pool
			d.poolDist = statementDistribution(pool.Statements)
		}
	}
	d.mu.Unlock()
	return d, nil
}

// readPool loads a daemon's retained pool file, validating its content
// address against the fingerprint the daemon state recorded. Any mismatch
// or read failure returns nil: the daemon comes back without a pool and
// simply takes the fresh path at its next re-tune.
func (m *Manager) readPool(id, fingerprint string) *core.CostedPool {
	path := m.poolPath(id)
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			m.log.Warn("pool read", "daemon", id, "err", err)
		}
		return nil
	}
	var pool core.CostedPool
	if err := json.Unmarshal(data, &pool); err != nil {
		m.log.Warn("pool corrupt", "daemon", id, "err", err)
		return nil
	}
	if pool.Fingerprint != fingerprint {
		m.log.Warn("pool fingerprint mismatch", "daemon", id,
			"want", fingerprint, "got", pool.Fingerprint)
		return nil
	}
	return &pool
}
