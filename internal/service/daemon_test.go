package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

// Daemon test trace chunks over the small test server's tables. chunkBase
// holds two templates at a 2:1 weight ratio; streaming more of it keeps the
// template distribution bit-identical (uniform scaling), so stable epochs
// score drift 0. chunkReweight shifts weight between the same two templates
// (revise-path drift); chunkNew introduces a third template (fresh-path
// drift, the retained pool no longer covers the workload).
func chunkBase(events, offset int) string {
	var b strings.Builder
	for i := offset; i < offset+events; i++ {
		if i%2 == 0 {
			fmt.Fprintf(&b, "2\t0.5\tSELECT id FROM t WHERE x = %d\n", (i*37)%2000)
		} else {
			fmt.Fprintf(&b, "SELECT SUM(amt) FROM t WHERE a = %d\n", i%100)
		}
	}
	return b.String()
}

func chunkReweight(events, offset int) string {
	var b strings.Builder
	for i := offset; i < offset+events; i++ {
		fmt.Fprintf(&b, "SELECT SUM(amt) FROM t WHERE a = %d\n", i%100)
	}
	return b.String()
}

func chunkNew(events, offset int) string {
	var b strings.Builder
	for i := offset; i < offset+events; i++ {
		fmt.Fprintf(&b, "SELECT a, COUNT(*) FROM t WHERE x < %d GROUP BY a\n", 5+i%40)
	}
	return b.String()
}

// newDaemonManager builds a manager over the small test server with one
// backend named db.
func newDaemonManager(t *testing.T) *service.Manager {
	t.Helper()
	m := service.NewManager(2)
	if err := m.Register(&service.Backend{Name: "db", Tuner: smallServer(t)}); err != nil {
		t.Fatal(err)
	}
	return m
}

func daemonOpts() service.CreateOptions {
	return service.CreateOptions{Features: "IDX", Parallelism: 1}
}

func ingest(t *testing.T, m *service.Manager, id, chunk string) *service.EpochResult {
	t.Helper()
	res, err := m.IngestTrace(context.Background(), id, strings.NewReader(chunk))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	return res
}

// TestDaemonDriftTriggers drives one daemon through the canonical epoch
// sequence: initial tune, two stable epochs with zero re-tunes, a reweight
// epoch answered through the revise path, and a new-template epoch answered
// through a fresh costing pass.
func TestDaemonDriftTriggers(t *testing.T) {
	m := newDaemonManager(t)
	d, err := m.CreateDaemon(service.DaemonRequest{
		Database: "db",
		Options:  daemonOpts(),
		Drift:    service.DaemonDriftOptions{Threshold: 0.15},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Epoch 1: the first chunk always tunes, at maximal score.
	res := ingest(t, m, d.ID(), chunkBase(400, 0))
	if !res.Retuned || res.Trigger != service.TriggerInitial {
		t.Fatalf("epoch 1: retuned=%v trigger=%q, want initial re-tune", res.Retuned, res.Trigger)
	}
	if res.Score != 1 {
		t.Fatalf("epoch 1 score = %v, want 1 (no prior distribution)", res.Score)
	}
	if res.Delta == nil || len(res.Delta.Create) == 0 {
		t.Fatalf("epoch 1 emitted no creating delta: %+v", res.Delta)
	}
	if res.Delta.Seq != 1 || len(res.Delta.Drop) != 0 {
		t.Fatalf("epoch 1 delta = %+v, want seq 1 with no drops", res.Delta)
	}

	// Epochs 2-3: same template mix — bit-exact zero drift, no re-tune.
	for i, off := range []int{400, 600} {
		res = ingest(t, m, d.ID(), chunkBase(200, off))
		if res.Retuned {
			t.Fatalf("stable epoch %d re-tuned (score %v)", i+2, res.Score)
		}
		if res.Score != 0 {
			t.Fatalf("stable epoch %d score = %v, want exactly 0", i+2, res.Score)
		}
	}

	// Epoch 4: weight shifts between known templates — drift over the
	// threshold, answered from the retained pool.
	res = ingest(t, m, d.ID(), chunkReweight(400, 800))
	if !res.Retuned || res.Trigger != service.TriggerDrift {
		t.Fatalf("reweight epoch: retuned=%v trigger=%q, want drift re-tune", res.Retuned, res.Trigger)
	}
	if res.Path != service.PathRevise {
		t.Fatalf("reweight epoch path = %q, want %q (pool still covers every template)", res.Path, service.PathRevise)
	}
	if res.Score < 0.15 {
		t.Fatalf("reweight epoch score = %v, want ≥ threshold", res.Score)
	}

	// Epoch 5: a template the pool has never costed — fresh pass.
	res = ingest(t, m, d.ID(), chunkNew(600, 1200))
	if !res.Retuned || res.Trigger != service.TriggerDrift {
		t.Fatalf("new-template epoch: retuned=%v trigger=%q, want drift re-tune", res.Retuned, res.Trigger)
	}
	if res.Path != service.PathFresh {
		t.Fatalf("new-template epoch path = %q, want %q", res.Path, service.PathFresh)
	}

	snap := d.Snapshot()
	if snap.Retunes[service.TriggerInitial] != 1 || snap.Retunes[service.TriggerDrift] != 2 {
		t.Fatalf("retune counts = %v, want initial:1 drift:2", snap.Retunes)
	}
	if snap.Epochs != 5 || snap.Deltas != 3 {
		t.Fatalf("epochs=%d deltas=%d, want 5 and 3", snap.Epochs, snap.Deltas)
	}
	mm := m.Metrics()
	if mm.DaemonsCreated != 1 || mm.DaemonRetunes != 3 || mm.DeltasEmitted != 3 {
		t.Fatalf("manager metrics = %+v, want 1 daemon, 3 retunes, 3 deltas", mm)
	}
}

// TestDaemonFeedback pins and vetoes structures and checks both survive
// subsequent re-tunes: an accepted structure never churns again, a vetoed
// one is dropped and never re-proposed.
func TestDaemonFeedback(t *testing.T) {
	m := newDaemonManager(t)
	d, err := m.CreateDaemon(service.DaemonRequest{Database: "db", Options: daemonOpts()})
	if err != nil {
		t.Fatal(err)
	}
	res := ingest(t, m, d.ID(), chunkBase(400, 0))
	if res.Delta == nil || len(res.Delta.Create) < 2 {
		t.Fatalf("need ≥ 2 proposed structures, got %+v", res.Delta)
	}
	pin := res.Delta.Create[0].Key
	ban := res.Delta.Create[1].Key

	// Unresolvable keys fail whole, before anything is applied.
	if _, err := m.Feedback(context.Background(), d.ID(), service.FeedbackRequest{Accept: []string{"IDX(nope)"}}); err == nil {
		t.Fatal("unresolvable accept key did not error")
	}

	fb, err := m.Feedback(context.Background(), d.ID(), service.FeedbackRequest{
		Accept: []string{pin},
		Veto:   []string{ban},
		Retune: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fb.Delta == nil || fb.Delta.Trigger != service.TriggerFeedback {
		t.Fatalf("forced re-tune delta = %+v, want trigger feedback", fb.Delta)
	}
	for _, e := range append(fb.Delta.Create, fb.Delta.Drop...) {
		if e.Key == pin {
			t.Fatalf("accepted structure %s churned in the feedback delta", pin)
		}
		if strings.HasPrefix(e.DDL, "CREATE ") && e.Key == ban {
			t.Fatalf("vetoed structure %s re-proposed", ban)
		}
	}
	var dropped bool
	for _, e := range fb.Delta.Drop {
		if e.Key == ban {
			dropped = true
		}
	}
	if !dropped {
		t.Fatalf("vetoed proposed structure %s not dropped: %+v", ban, fb.Delta)
	}
	snap := d.Snapshot()
	if len(snap.Accepted) != 1 || snap.Accepted[0] != pin {
		t.Fatalf("accepted = %v, want [%s]", snap.Accepted, pin)
	}
	if len(snap.Vetoed) != 1 || snap.Vetoed[0] != ban {
		t.Fatalf("vetoed = %v, want [%s]", snap.Vetoed, ban)
	}

	// Veto the accepted structure: it unpins and the next delta drops it.
	fb, err = m.Feedback(context.Background(), d.ID(), service.FeedbackRequest{Veto: []string{pin}, Retune: true})
	if err != nil {
		t.Fatal(err)
	}
	dropped = false
	for _, e := range fb.Delta.Drop {
		if e.Key == pin {
			dropped = true
		}
	}
	if !dropped {
		t.Fatalf("vetoing accepted %s did not drop it: %+v", pin, fb.Delta)
	}
	if got := d.Snapshot().Accepted; len(got) != 0 {
		t.Fatalf("accepted after veto = %v, want empty", got)
	}

	// Later drift re-tunes keep honoring both vetoes.
	res = ingest(t, m, d.ID(), chunkReweight(600, 400))
	if !res.Retuned {
		t.Fatalf("reweight after feedback did not re-tune (score %v)", res.Score)
	}
	for _, e := range res.Delta.Create {
		if e.Key == pin || e.Key == ban {
			t.Fatalf("vetoed structure %s re-proposed after drift re-tune", e.Key)
		}
	}
}

// daemonScenario feeds one fixed chunk sequence plus a feedback step to a
// daemon and returns the daemon's full delta history as canonical JSON.
// Every determinism test compares these bytes.
func daemonScenario(t *testing.T, m *service.Manager, id string, from int) []byte {
	t.Helper()
	steps := []string{
		chunkBase(400, 0),
		chunkBase(200, 400),
		chunkReweight(400, 600),
		chunkNew(500, 1000),
	}
	for i := from; i < len(steps); i++ {
		if _, err := m.IngestTrace(context.Background(), id, strings.NewReader(steps[i])); err != nil {
			t.Fatalf("scenario step %d: %v", i, err)
		}
		if i == 0 {
			d, _ := m.GetDaemon(id)
			key := d.Snapshot().Proposed[0].Key
			if _, err := m.Feedback(context.Background(), id, service.FeedbackRequest{Accept: []string{key}}); err != nil {
				t.Fatalf("scenario feedback: %v", err)
			}
		}
	}
	d, ok := m.GetDaemon(id)
	if !ok {
		t.Fatalf("daemon %s vanished", id)
	}
	data, err := json.Marshal(d.Deltas(0))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDaemonDeterminismAcrossParallelism runs the identical trace stream
// and feedback sequence at parallelism 1 and 4 and requires byte-identical
// delta sequences.
func TestDaemonDeterminismAcrossParallelism(t *testing.T) {
	var got [][]byte
	for _, par := range []int{1, 4} {
		m := newDaemonManager(t)
		opts := daemonOpts()
		opts.Parallelism = par
		d, err := m.CreateDaemon(service.DaemonRequest{Database: "db", Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, daemonScenario(t, m, d.ID(), 0))
	}
	if !bytes.Equal(got[0], got[1]) {
		t.Fatalf("delta sequences differ across parallelism:\n%s\nvs\n%s", got[0], got[1])
	}
}

// TestDaemonRestartResume kills the manager mid-scenario, resumes the
// daemon from the state directory in a fresh manager, finishes the
// scenario, and requires the delta sequence to be byte-identical with an
// uninterrupted run — including the post-restart re-tune taking the revise
// path from the reloaded pool.
func TestDaemonRestartResume(t *testing.T) {
	dir := t.TempDir()

	m1 := newDaemonManager(t)
	if err := m1.SetStateDir(dir); err != nil {
		t.Fatal(err)
	}
	d1, err := m1.CreateDaemon(service.DaemonRequest{Database: "db", Options: daemonOpts()})
	if err != nil {
		t.Fatal(err)
	}
	// Steps 0-1 (initial tune + feedback + one stable epoch), then "crash".
	steps := []string{chunkBase(400, 0), chunkBase(200, 400)}
	for i, c := range steps {
		if _, err := m1.IngestTrace(context.Background(), d1.ID(), strings.NewReader(c)); err != nil {
			t.Fatalf("pre-crash step %d: %v", i, err)
		}
		if i == 0 {
			key := d1.Snapshot().Proposed[0].Key
			if _, err := m1.Feedback(context.Background(), d1.ID(), service.FeedbackRequest{Accept: []string{key}}); err != nil {
				t.Fatal(err)
			}
		}
	}

	m2 := newDaemonManager(t)
	if err := m2.SetStateDir(dir); err != nil {
		t.Fatal(err)
	}
	resumed, err := m2.ResumeDaemons()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 || resumed[0].ID() != d1.ID() {
		t.Fatalf("resumed %d daemons, want exactly %s", len(resumed), d1.ID())
	}
	d2 := resumed[0]
	if got, want := d2.Snapshot(), d1.Snapshot(); got.Epochs != want.Epochs ||
		got.Events != want.Events || got.DriftScore != want.DriftScore ||
		len(got.Accepted) != len(want.Accepted) || got.PoolFingerprint != want.PoolFingerprint {
		t.Fatalf("resumed snapshot diverged:\n%+v\nvs\n%+v", got, want)
	}

	// The reweight epoch right after restart must still take the revise
	// path: the pool came back from disk.
	res, err := m2.IngestTrace(context.Background(), d2.ID(), strings.NewReader(chunkReweight(400, 600)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Retuned || res.Path != service.PathRevise {
		t.Fatalf("post-restart reweight: retuned=%v path=%q, want revise re-tune", res.Retuned, res.Path)
	}
	if _, err := m2.IngestTrace(context.Background(), d2.ID(), strings.NewReader(chunkNew(500, 1000))); err != nil {
		t.Fatal(err)
	}
	restarted, err := json.Marshal(d2.Deltas(0))
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference run (no state dir).
	m3 := newDaemonManager(t)
	d3, err := m3.CreateDaemon(service.DaemonRequest{Database: "db", Options: daemonOpts()})
	if err != nil {
		t.Fatal(err)
	}
	reference := daemonScenario(t, m3, d3.ID(), 0)

	if !bytes.Equal(restarted, reference) {
		t.Fatalf("restart changed the delta sequence:\n%s\nvs\n%s", restarted, reference)
	}
}

// TestDaemonHTTP exercises the whole daemon surface over HTTP: create,
// trace epochs, delta listing with ?since, feedback, the event stream,
// explain, and close.
func TestDaemonHTTP(t *testing.T) {
	m := newDaemonManager(t)
	ts := httptest.NewServer(m.Handler())
	t.Cleanup(ts.Close)

	body, _ := json.Marshal(service.DaemonRequest{Database: "db", Options: daemonOpts()})
	resp, err := http.Post(ts.URL+"/daemons", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var snap service.DaemonSnapshot
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /daemons = %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Threshold != service.DefaultDriftThreshold {
		t.Fatalf("default threshold = %v, want %v", snap.Threshold, service.DefaultDriftThreshold)
	}
	base := ts.URL + "/daemons/" + snap.ID

	post := func(path, ctype, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(base+path, ctype, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}

	// Two epochs: initial tune, then a bit-stable chunk.
	code, raw := post("/trace", "text/plain", chunkBase(400, 0))
	if code != http.StatusOK {
		t.Fatalf("POST trace = %d: %s", code, raw)
	}
	var epoch service.EpochResult
	if err := json.Unmarshal(raw, &epoch); err != nil {
		t.Fatal(err)
	}
	if !epoch.Retuned || epoch.Delta == nil {
		t.Fatalf("first epoch did not tune: %s", raw)
	}
	code, raw = post("/trace", "text/plain", chunkBase(200, 400))
	if code != http.StatusOK {
		t.Fatalf("POST trace 2 = %d: %s", code, raw)
	}
	if err := json.Unmarshal(raw, &epoch); err != nil {
		t.Fatal(err)
	}
	if epoch.Retuned || epoch.Score != 0 {
		t.Fatalf("stable epoch retuned=%v score=%v, want no re-tune at score 0", epoch.Retuned, epoch.Score)
	}

	// Delta listing, then ?since past the only delta.
	gresp, err := http.Get(base + "/delta")
	if err != nil {
		t.Fatal(err)
	}
	var deltas struct {
		Daemon string          `json:"daemon"`
		Deltas []service.Delta `json:"deltas"`
	}
	if err := json.NewDecoder(gresp.Body).Decode(&deltas); err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if len(deltas.Deltas) != 1 || deltas.Deltas[0].Trigger != service.TriggerInitial {
		t.Fatalf("GET delta = %+v, want one initial delta", deltas)
	}
	gresp, err = http.Get(base + "/delta?since=1")
	if err != nil {
		t.Fatal(err)
	}
	deltas.Deltas = nil
	json.NewDecoder(gresp.Body).Decode(&deltas)
	gresp.Body.Close()
	if len(deltas.Deltas) != 0 {
		t.Fatalf("GET delta?since=1 returned %d deltas, want 0", len(deltas.Deltas))
	}

	// Feedback over HTTP: accept the first proposed structure and force a
	// re-tune.
	d, _ := m.GetDaemon(snap.ID)
	key := d.Snapshot().Proposed[0].Key
	fb, _ := json.Marshal(service.FeedbackRequest{Accept: []string{key}, Retune: true})
	code, raw = post("/feedback", "application/json", string(fb))
	if code != http.StatusOK {
		t.Fatalf("POST feedback = %d: %s", code, raw)
	}
	var fres service.FeedbackResult
	if err := json.Unmarshal(raw, &fres); err != nil {
		t.Fatal(err)
	}
	if len(fres.Accepted) != 1 || fres.Delta == nil || fres.Delta.Trigger != service.TriggerFeedback {
		t.Fatalf("feedback result = %s", raw)
	}
	if code, raw = post("/feedback", "application/json", `{}`); code != http.StatusBadRequest {
		t.Fatalf("empty feedback = %d: %s", code, raw)
	}

	// Event stream: history replays ingest, drift, delta, and feedback.
	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	req, _ := http.NewRequestWithContext(sctx, "GET", base+"/events", nil)
	eresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	kinds := map[string]bool{}
	sc := bufio.NewScanner(eresp.Body)
	for len(kinds) < 4 && sc.Scan() {
		var ev service.DaemonEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		kinds[ev.Kind] = true
	}
	for _, k := range []string{"ingest", "drift", "delta", "feedback"} {
		if !kinds[k] {
			t.Fatalf("event stream missing kind %q (saw %v)", k, kinds)
		}
	}
	scancel()

	// Explain names the latest delta and its trigger.
	gresp, err = http.Get(base + "/explain")
	if err != nil {
		t.Fatal(err)
	}
	var exp struct {
		Daemon    string         `json:"daemon"`
		LastDelta *service.Delta `json:"lastDelta"`
	}
	if err := json.NewDecoder(gresp.Body).Decode(&exp); err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if exp.Daemon != snap.ID || exp.LastDelta == nil || exp.LastDelta.Trigger != service.TriggerFeedback {
		t.Fatalf("GET explain = %+v", exp)
	}

	// Close: the daemon refuses further trace.
	dreq, _ := http.NewRequest("DELETE", base, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE daemon = %d", dresp.StatusCode)
	}
	if code, raw = post("/trace", "text/plain", chunkBase(10, 0)); code != http.StatusBadRequest {
		t.Fatalf("trace after close = %d: %s", code, raw)
	}
}

// TestDaemonEmptyTrace rejects a first chunk with no statements and
// tolerates an empty later chunk as a no-op epoch.
func TestDaemonEmptyTrace(t *testing.T) {
	m := newDaemonManager(t)
	d, err := m.CreateDaemon(service.DaemonRequest{Database: "db", Options: daemonOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.IngestTrace(context.Background(), d.ID(), strings.NewReader("")); err == nil {
		t.Fatal("empty first chunk accepted")
	}
	ingest(t, m, d.ID(), chunkBase(400, 0))
	res := ingest(t, m, d.ID(), "")
	if res.Retuned || res.ChunkEvents != 0 || res.Score != 0 {
		t.Fatalf("empty later chunk = %+v, want score-0 no-op epoch", res)
	}
}
