package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/workload"
	"repro/internal/xmlio"
)

// CreateOptions is the JSON wire form of the tunable core.Options subset —
// the knobs the shipped tool's command-line/XML interface exposes (§6.1).
type CreateOptions struct {
	// Features selects the physical-design feature set: ALL, IDX, MV,
	// PARTITIONING, IDX_MV, IDX_PARTITIONING (empty = ALL).
	Features string `json:"features,omitempty"`
	// StorageMB bounds the recommendation's extra storage (0 = unbounded).
	StorageMB int64 `json:"storageMB,omitempty"`
	Aligned   bool  `json:"aligned,omitempty"`
	// TimeLimit is a Go duration string ("30s", "10m"); empty = unbounded.
	TimeLimit     string `json:"timeLimit,omitempty"`
	NoCompression bool   `json:"noCompression,omitempty"`
	AllowDrops    bool   `json:"allowDrops,omitempty"`
	EvaluateOnly  bool   `json:"evaluateOnly,omitempty"`
	GreedyM       int    `json:"greedyM,omitempty"`
	GreedyK       int    `json:"greedyK,omitempty"`
	SkipReports   bool   `json:"skipReports,omitempty"`
	// Parallelism is the session's evaluation concurrency (0 = the server
	// default, GOMAXPROCS). The server-wide budget (dtaserver
	// -max-parallelism) caps it. Recommendations do not depend on it.
	Parallelism int `json:"parallelism,omitempty"`
	// Derive selects the cost-derivation layer's mode: "on" answers
	// cost-cache misses algebraically from atomic plan facts where provably
	// exact (recommendations unchanged, far fewer optimizer calls),
	// "verify" additionally cross-checks every derived cost against a real
	// call, "off" disables it. Empty defers to the server default
	// (dtaserver -derive).
	Derive string `json:"derive,omitempty"`
	// FaultSpec, when non-empty, attaches a session-scoped deterministic
	// fault injector (grammar "seed=N;site:kind:prob[:duration];...", see
	// internal/fault) — the chaos-testing knob. Sites: whatif, stats,
	// import.
	FaultSpec string `json:"faultSpec,omitempty"`
	// RetryAttempts overrides the per-call retry budget of the session's
	// backoff policy (0 = the default, 4 attempts).
	RetryAttempts int `json:"retryAttempts,omitempty"`
}

// CreateRequest is the JSON body of POST /sessions.
type CreateRequest struct {
	Database   string               `json:"database,omitempty"`
	Statements []workload.Statement `json:"statements,omitempty"`
	Options    CreateOptions        `json:"options"`
}

func (c CreateRequest) toRequest() (Request, error) {
	req := Request{Backend: c.Database}
	if len(c.Statements) > 0 {
		w, err := workload.FromStatements(c.Statements)
		if err != nil {
			return req, err
		}
		req.Workload = w
	}
	opts, err := c.Options.toCore()
	if err != nil {
		return req, err
	}
	req.Options = opts
	return req, nil
}

// toCore maps the wire options onto core.Options. It is also the resume
// path's deserializer: a persisted session's options go through exactly this
// mapping again, so a resumed session tunes under the options it was
// created with.
func (c CreateOptions) toCore() (core.Options, error) {
	mask, err := xmlio.FeatureMaskFromString(c.Features)
	if err != nil {
		return core.Options{}, err
	}
	opts := core.Options{
		Features:      mask,
		StorageBudget: c.StorageMB << 20,
		Aligned:       c.Aligned,
		NoCompression: c.NoCompression,
		AllowDrops:    c.AllowDrops,
		EvaluateOnly:  c.EvaluateOnly,
		GreedyM:       c.GreedyM,
		GreedyK:       c.GreedyK,
		SkipReports:   c.SkipReports,
		Parallelism:   c.Parallelism,
	}
	if c.TimeLimit != "" {
		d, err := time.ParseDuration(c.TimeLimit)
		if err != nil {
			return core.Options{}, fmt.Errorf("bad timeLimit: %w", err)
		}
		opts.TimeLimit = d
	}
	if c.Derive != "" {
		mode, err := derive.ParseMode(c.Derive)
		if err != nil {
			return core.Options{}, fmt.Errorf("bad derive: %w", err)
		}
		opts.Derive = mode
	}
	if c.FaultSpec != "" {
		spec, err := fault.ParseSpec(c.FaultSpec)
		if err != nil {
			return core.Options{}, fmt.Errorf("bad faultSpec: %w", err)
		}
		opts.Faults = fault.NewInjector(spec)
	}
	if c.RetryAttempts < 0 {
		return core.Options{}, fmt.Errorf("bad retryAttempts: %d", c.RetryAttempts)
	}
	opts.Retry.MaxAttempts = c.RetryAttempts
	return opts, nil
}

// Handler returns the service's HTTP API:
//
//	POST   /sessions             create a tuning session (JSON or DTAXML body)
//	POST   /sessions/trace       create a session from a raw trace streamed as the body
//	POST   /sessions/resume      resume checkpointed sessions from the state dir
//	GET    /sessions             list sessions
//	GET    /sessions/{id}        one session's snapshot
//	GET    /sessions/{id}/events stream progress events (NDJSON)
//	GET    /sessions/{id}/trace  session timeline as Chrome trace-event JSON
//	GET    /sessions/{id}/journal decision journal as NDJSON (?kind= filters)
//	GET    /sessions/{id}/explain per-structure provenance from the journal
//	PATCH  /sessions/{id}        revise a completed session under changed constraints
//	DELETE /sessions/{id}        cancel a session
//	POST   /daemons              create a continuous tuning daemon
//	POST   /daemons/resume       restore persisted daemons from the state dir
//	GET    /daemons              list daemons
//	GET    /daemons/{id}         one daemon's snapshot
//	POST   /daemons/{id}/trace   ingest one trace chunk (epoch); re-tunes on drift
//	GET    /daemons/{id}/delta   recommendation deltas (?since=N for only new ones)
//	POST   /daemons/{id}/feedback accept/veto structures; optional forced re-tune
//	GET    /daemons/{id}/events  stream daemon events (NDJSON)
//	GET    /daemons/{id}/journal decision journal as NDJSON (?kind= filters)
//	GET    /daemons/{id}/explain why the latest delta was proposed
//	GET    /daemons/{id}/timeline daemon timeline as Chrome trace-event JSON
//	DELETE /daemons/{id}         close a daemon
//	GET    /metrics              Prometheus text exposition (JSON with Accept: application/json)
//	GET    /metrics.json         cumulative service metrics, JSON
//	GET    /backends             registered databases
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", m.handleCreate)
	mux.HandleFunc("POST /sessions/trace", m.handleCreateTrace)
	mux.HandleFunc("POST /sessions/resume", m.handleResume)
	mux.HandleFunc("GET /sessions", m.handleList)
	mux.HandleFunc("GET /sessions/{id}", m.handleGet)
	mux.HandleFunc("GET /sessions/{id}/events", m.handleEvents)
	mux.HandleFunc("GET /sessions/{id}/trace", m.handleTrace)
	mux.HandleFunc("GET /sessions/{id}/journal", m.handleJournal)
	mux.HandleFunc("GET /sessions/{id}/explain", m.handleExplain)
	mux.HandleFunc("PATCH /sessions/{id}", m.handleRevise)
	mux.HandleFunc("DELETE /sessions/{id}", m.handleCancel)
	m.daemonRoutes(mux)
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	mux.HandleFunc("GET /metrics.json", m.handleMetricsJSON)
	mux.HandleFunc("GET /backends", m.handleBackends)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decodeCreate accepts the native JSON body or a DTAXML document (the
// shipped tool's session definition format), detected by Content-Type.
func decodeCreate(r *http.Request) (Request, error) {
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil && strings.Contains(mt, "xml") {
		doc, err := xmlio.Decode(r.Body)
		if err != nil {
			return Request{}, err
		}
		if doc.Input == nil {
			return Request{}, fmt.Errorf("DTAXML document has no Input element")
		}
		opts, err := xmlio.OptionsFromXML(doc.Input.Options)
		if err != nil {
			return Request{}, err
		}
		opts.EvaluateOnly = doc.Input.EvaluateOnly
		if doc.Input.Configuration != nil {
			opts.UserConfig = xmlio.ToConfiguration(doc.Input.Configuration)
		}
		req := Request{Options: opts}
		if len(doc.Input.Databases) > 0 {
			req.Backend = doc.Input.Databases[0]
		}
		if doc.Input.Workload != nil {
			w, err := xmlio.ToWorkload(doc.Input.Workload)
			if err != nil {
				return Request{}, err
			}
			req.Workload = w
		}
		return req, nil
	}
	var body CreateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		return Request{}, fmt.Errorf("bad request body: %w", err)
	}
	return body.toRequest()
}

func (m *Manager) handleCreate(w http.ResponseWriter, r *http.Request) {
	req, err := decodeCreate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s, err := m.Create(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/sessions/"+s.ID())
	writeJSON(w, http.StatusCreated, s.Snapshot())
}

// handleCreateTrace is POST /sessions/trace: the request body is a raw
// profiler trace in the workload.ReadTrace line format, streamed straight
// into the session's online compressor without ever being buffered whole.
// Because the body is the trace, the session parameters travel as query
// parameters instead: ?database=<backend> names the backend and
// ?options=<JSON CreateOptions> carries the tuning options. Progress during
// ingestion is published on the session's event stream (phase "ingest"). A
// malformed trace fails with 400 and a line-numbered error; the failed
// session remains visible in the session list.
func (m *Manager) handleCreateTrace(w http.ResponseWriter, r *http.Request) {
	var copts CreateOptions
	if o := r.URL.Query().Get("options"); o != "" {
		if err := json.Unmarshal([]byte(o), &copts); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad options: %w", err))
			return
		}
	}
	opts, err := copts.toCore()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req := Request{Backend: r.URL.Query().Get("database"), Options: opts}
	s, err := m.CreateStreaming(req, r.Body)
	if err != nil {
		if s != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error(), "session": s.ID()})
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/sessions/"+s.ID())
	writeJSON(w, http.StatusCreated, s.Snapshot())
}

// handleResume replays the state directory: every persisted session that is
// not already live is recreated from its manifest and warm-started from its
// last checkpoint. dtaserver calls the same ResumeSessions at startup; the
// endpoint exists for operators who attach a state directory to a running
// server or repair one by hand.
func (m *Manager) handleResume(w http.ResponseWriter, r *http.Request) {
	resumed, err := m.ResumeSessions()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]Snapshot, len(resumed))
	for i, s := range resumed {
		out[i] = s.Snapshot()
	}
	writeJSON(w, http.StatusOK, map[string]any{"resumed": out})
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	sessions := m.Sessions()
	out := make([]Snapshot, len(sessions))
	for i, s := range sessions {
		out[i] = s.Snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

func (m *Manager) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	id := r.PathValue("id")
	s, ok := m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no session %q", id))
	}
	return s, ok
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	if s, ok := m.session(w, r); ok {
		writeJSON(w, http.StatusOK, s.Snapshot())
	}
}

// handleEvents streams the session's progress events as NDJSON: the history
// first, then live events until the session terminates or the client goes
// away. The final line is always the terminal snapshot.
func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	s, ok := m.session(w, r)
	if !ok {
		return
	}
	hist, live, unsub := s.Subscribe()
	defer unsub()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for _, e := range hist {
		enc.Encode(e)
	}
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case e, open := <-live:
			if !open {
				enc.Encode(s.Snapshot())
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
			enc.Encode(e)
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleRevise is PATCH /sessions/{id}: create a child session that
// replays the completed session's retained costed pool under the
// constraint changes in the body (ReviseRequest; absent fields inherit the
// parent's constraints). Only the search layer re-runs — the response is
// the child's snapshot (201, Location header), whose lineage is in
// revisedFrom. A session that is not done, or whose pool retention
// expired, is a 409; an unresolvable pin key or malformed body is a 400.
func (m *Manager) handleRevise(w http.ResponseWriter, r *http.Request) {
	s, ok := m.session(w, r)
	if !ok {
		return
	}
	if st := s.State(); st != StateDone {
		writeError(w, http.StatusConflict, fmt.Errorf("session %s is %s; revision requires a completed session", s.ID(), st))
		return
	}
	if s.Pool() == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("session %s retains no costed pool (retention expired, or the session predates pool retention)", s.ID()))
		return
	}
	var body ReviseRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil && err != io.EOF {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	child, err := m.Revise(s.ID(), body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/sessions/"+child.ID())
	writeJSON(w, http.StatusCreated, child.Snapshot())
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	s, ok := m.session(w, r)
	if !ok {
		return
	}
	s.Cancel()
	// Give the session a moment to settle so the response usually reflects
	// the terminal state; cancellation itself is already delivered.
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	_ = s.Wait(ctx)
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// handleTrace serves the session's span timeline as Chrome trace-event JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev. A running
// session's trace is served as-is — only completed spans appear.
func (m *Manager) handleTrace(w http.ResponseWriter, r *http.Request) {
	s, ok := m.session(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="`+s.ID()+`-trace.json"`)
	w.WriteHeader(http.StatusOK)
	s.Trace().WriteChromeTrace(w)
}

// handleJournal serves the session's decision journal as NDJSON, one typed
// event per line in sequence order. ?kind=candidate,greedy-step narrows the
// stream to the listed event kinds; an unknown kind is a 400. A running
// session's journal is served as-is — only events emitted so far appear.
func (m *Manager) handleJournal(w http.ResponseWriter, r *http.Request) {
	s, ok := m.session(w, r)
	if !ok {
		return
	}
	var filter map[journal.Kind]bool
	if q := r.URL.Query().Get("kind"); q != "" {
		f, err := journal.ParseKinds(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		filter = f
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	s.Journal().WriteNDJSON(w, filter)
}

// handleExplain reconstructs per-recommended-structure provenance — the
// greedy decision that admitted each structure, the alternatives it beat,
// and the queries it benefits — purely from the session's decision journal.
// It requires a terminal session with a recommendation (409 otherwise).
func (m *Manager) handleExplain(w http.ResponseWriter, r *http.Request) {
	s, ok := m.session(w, r)
	if !ok {
		return
	}
	if !s.State().Terminal() {
		writeError(w, http.StatusConflict, fmt.Errorf("session %s is %s; explain requires a terminal session", s.ID(), s.State()))
		return
	}
	rec, err := s.Result()
	if rec == nil {
		if err == nil {
			err = fmt.Errorf("session %s has no recommendation", s.ID())
		}
		writeError(w, http.StatusConflict, err)
		return
	}
	keys := make([]string, 0, len(rec.NewStructures))
	for _, st := range rec.NewStructures {
		keys = append(keys, st.Key())
	}
	exp := journal.Explain(s.Journal().Events(), keys)
	exp.Session = s.ID()
	exp.DroppedEvents = s.Journal().DroppedByKind()
	writeJSON(w, http.StatusOK, exp)
}

// handleMetrics serves the Prometheus text exposition format by default
// (what a Prometheus scraper or plain curl gets); clients that send
// Accept: application/json get the JSON snapshot instead, same as
// GET /metrics.json.
func (m *Manager) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if accepts(r, "application/json") {
		m.handleMetricsJSON(w, r)
		return
	}
	// The lifecycle counters and per-backend call totals live outside the
	// registry (they predate it and feed the JSON view); mirror the
	// point-in-time ones into gauges so one scrape carries everything.
	snap := m.Metrics()
	m.gPending.Set(float64(snap.SessionsPending))
	m.gRunning.Set(float64(snap.SessionsRunning))
	for _, b := range snap.Backends {
		m.reg.Gauge("dta_backend_whatif_calls",
			"Cumulative what-if optimizer calls absorbed by the backend's server, including still-running sessions.",
			"backend", b.Name).Set(float64(b.WhatIfCalls))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	m.reg.WritePrometheus(w)
}

// accepts reports whether the request's Accept header mentions the media
// type (a lightweight check, not full content negotiation — the two
// supported representations cannot both be asked for sensibly).
func accepts(r *http.Request, mediaType string) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		if mt, _, err := mime.ParseMediaType(strings.TrimSpace(part)); err == nil && mt == mediaType {
			return true
		}
	}
	return false
}

func (m *Manager) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.Metrics())
}

func (m *Manager) handleBackends(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"backends": m.Backends()})
}
