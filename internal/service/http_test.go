package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/service"
)

func newTestAPI(t *testing.T, workers int) (*service.Manager, *httptest.Server, *gatedTuner) {
	t.Helper()
	srv := smallServer(t)
	m := service.NewManager(workers)
	if err := m.Register(&service.Backend{Name: "db", Tuner: srv, DefaultWorkload: quickWorkload(t, 0)}); err != nil {
		t.Fatal(err)
	}
	// A gated view of the same server, for deterministic mid-run
	// cancellation over HTTP (see gatedTuner).
	gate := newGatedTuner(srv, 120)
	if err := m.Register(&service.Backend{Name: "db-gated", Tuner: gate}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(m.Handler())
	t.Cleanup(ts.Close)
	return m, ts, gate
}

func postJSON(t *testing.T, url string, body any) (*http.Response, service.Snapshot) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap service.Snapshot
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
	}
	return resp, snap
}

func getSnapshot(t *testing.T, url string) (int, service.Snapshot) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap service.Snapshot
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, snap
}

func waitTerminal(t *testing.T, base, id string) service.Snapshot {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		code, snap := getSnapshot(t, base+"/sessions/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /sessions/%s = %d", id, code)
		}
		if snap.State.Terminal() {
			return snap
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("session %s never terminated", id)
	return service.Snapshot{}
}

// TestHTTPLifecycle drives a session from POST through the event stream to
// completion and checks the metrics endpoint.
func TestHTTPLifecycle(t *testing.T) {
	_, ts, _ := newTestAPI(t, 2)

	// Create with explicit statements and options.
	resp, snap := postJSON(t, ts.URL+"/sessions", map[string]any{
		"database": "db",
		"statements": []map[string]any{
			{"sql": "SELECT id FROM t WHERE x = 42", "weight": 2},
			{"sql": "SELECT a, COUNT(*) FROM t WHERE x < 10 GROUP BY a"},
		},
		"options": map[string]any{"features": "IDX", "timeLimit": "2m"},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /sessions = %d", resp.StatusCode)
	}
	if snap.ID == "" || snap.Backend != "db" {
		t.Fatalf("bad snapshot: %+v", snap)
	}
	if loc := resp.Header.Get("Location"); loc != "/sessions/"+snap.ID {
		t.Fatalf("Location = %q", loc)
	}

	final := waitTerminal(t, ts.URL, snap.ID)
	if final.State != service.StateDone {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Improvement <= 0 || final.Result.WhatIfCalls <= 0 {
		t.Fatalf("bad result: %+v", final.Result)
	}
	if len(final.Result.Structures) == 0 {
		t.Fatalf("expected recommended structures: %+v", final.Result)
	}

	// The event stream replays history and ends with the terminal snapshot.
	streamResp, err := http.Get(ts.URL + "/sessions/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(streamResp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			lines = append(lines, sc.Text())
		}
	}
	if len(lines) < 2 {
		t.Fatalf("stream produced %d lines", len(lines))
	}
	var first service.Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("bad event line %q: %v", lines[0], err)
	}
	if first.Seq != 1 {
		t.Fatalf("first event seq = %d", first.Seq)
	}
	var last service.Snapshot
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.ID != snap.ID || !last.State.Terminal() {
		t.Fatalf("stream tail: %+v", last)
	}

	// List includes the session; metrics add up.
	resp2, err := http.Get(ts.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list []service.Snapshot
	if err := json.NewDecoder(resp2.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if len(list) == 0 {
		t.Fatal("GET /sessions returned nothing")
	}

	var mx service.Metrics
	resp3, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp3.Body).Decode(&mx); err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if mx.SessionsDone < 1 || mx.WhatIfCalls < final.Result.WhatIfCalls {
		t.Fatalf("metrics off: %+v", mx)
	}
}

// TestHTTPCancelAndErrors covers DELETE-driven cancellation, the DTAXML
// input path, and the error responses.
func TestHTTPCancelAndErrors(t *testing.T) {
	_, ts, gate := newTestAPI(t, 1)

	// A session on the gated backend: its 120th what-if call parks inside
	// candidate selection until released, so the DELETE below cancels a
	// genuinely running session mid-search.
	stmts := make([]map[string]any, 0, 60)
	for i := 0; i < 20; i++ {
		stmts = append(stmts,
			map[string]any{"sql": fmt.Sprintf("SELECT id FROM t WHERE x = %d", i*31%2000)},
			map[string]any{"sql": fmt.Sprintf("SELECT a, COUNT(*) FROM t WHERE x < %d GROUP BY a", 10+i)},
			map[string]any{"sql": fmt.Sprintf("SELECT SUM(amt) FROM t WHERE a = %d", i%100)},
		)
	}
	resp, snap := postJSON(t, ts.URL+"/sessions", map[string]any{
		"database":   "db-gated",
		"statements": stmts,
		"options":    map[string]any{"noCompression": true, "skipReports": true},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	select {
	case <-gate.reached:
	case <-time.After(time.Minute):
		t.Fatal("session never reached its gated call")
	}
	// The DELETE cancels the parked session; release the gate once the
	// request has been handled and the session must stop mid-search.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+snap.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", delResp.StatusCode)
	}
	close(gate.release)
	final := waitTerminal(t, ts.URL, snap.ID)
	if final.State != service.StateCancelled {
		t.Fatalf("state after DELETE = %s", final.State)
	}
	if final.Result == nil || final.Result.StopReason != string(core.StopCancelled) {
		t.Fatalf("cancelled session result: %+v", final.Result)
	}

	// Its event stream (now fully terminal) replays history showing the
	// candidate-selection phase it was cancelled in.
	stream, err := http.Get(ts.URL + "/sessions/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	sawCandidates := false
	for sc.Scan() {
		var e service.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue
		}
		if e.Progress.Phase == core.PhaseCandidates {
			sawCandidates = true
		}
	}
	stream.Body.Close()
	if !sawCandidates {
		t.Fatal("event history never showed candidate selection")
	}

	// DTAXML body on the XML content type.
	xmlBody := `<DTAXML>
  <Input>
    <Database>db</Database>
    <Workload>
      <Statement Weight="3">SELECT SUM(amt) FROM t WHERE a = 7</Statement>
    </Workload>
    <TuningOptions><FeatureSet>IDX</FeatureSet></TuningOptions>
  </Input>
</DTAXML>`
	xresp, err := http.Post(ts.URL+"/sessions", "application/xml", strings.NewReader(xmlBody))
	if err != nil {
		t.Fatal(err)
	}
	var xsnap service.Snapshot
	if err := json.NewDecoder(xresp.Body).Decode(&xsnap); err != nil {
		t.Fatal(err)
	}
	xresp.Body.Close()
	if xresp.StatusCode != http.StatusCreated {
		t.Fatalf("XML POST = %d", xresp.StatusCode)
	}
	if s := waitTerminal(t, ts.URL, xsnap.ID); s.State != service.StateDone {
		t.Fatalf("XML session state = %s (%s)", s.State, s.Error)
	}

	// Errors: unknown session, unknown database, malformed options.
	if code, _ := getSnapshot(t, ts.URL+"/sessions/s-9999"); code != http.StatusNotFound {
		t.Fatalf("GET unknown session = %d", code)
	}
	resp, _ = postJSON(t, ts.URL+"/sessions", map[string]any{"database": "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST unknown database = %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/sessions", map[string]any{
		"database": "db",
		"options":  map[string]any{"timeLimit": "soon"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST bad timeLimit = %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/sessions", map[string]any{"database": "db", "bogus": true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST unknown field = %d", resp.StatusCode)
	}
}

// TestHTTPDeriveOption drives options.derive over the wire: a derivation-on
// session must report derivedEvals and fewer what-if calls than the same
// session with derivation off, while recommending the identical structures —
// and a bad mode must be rejected at create time.
func TestHTTPDeriveOption(t *testing.T) {
	_, ts, _ := newTestAPI(t, 2)

	run := func(mode string) service.Snapshot {
		t.Helper()
		resp, snap := postJSON(t, ts.URL+"/sessions", map[string]any{
			"database": "db",
			"options":  map[string]any{"derive": mode},
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /sessions derive=%s = %d", mode, resp.StatusCode)
		}
		final := waitTerminal(t, ts.URL, snap.ID)
		if final.State != service.StateDone {
			t.Fatalf("derive=%s: state = %s (%s)", mode, final.State, final.Error)
		}
		return final
	}

	// Sessions share the backend, and the first session creates statistics
	// that change later sessions' cost estimates; warm them up front so the
	// off/on comparison sees identical statistics.
	run("off")

	off := run("off")
	on := run("on")
	if off.Result.DerivedEvals != 0 {
		t.Fatalf("derive=off reported derivedEvals=%d", off.Result.DerivedEvals)
	}
	if on.Result.DerivedEvals == 0 {
		t.Fatal("derive=on reported no derived evaluations")
	}
	if on.Result.WhatIfCalls >= off.Result.WhatIfCalls {
		t.Fatalf("derive=on must cut calls: on=%d off=%d", on.Result.WhatIfCalls, off.Result.WhatIfCalls)
	}
	if fmt.Sprint(on.Result.Structures) != fmt.Sprint(off.Result.Structures) ||
		on.Result.Improvement != off.Result.Improvement {
		t.Fatalf("recommendation depends on derive mode:\n off: %v (%v)\n on:  %v (%v)",
			off.Result.Structures, off.Result.Improvement, on.Result.Structures, on.Result.Improvement)
	}

	resp, _ := postJSON(t, ts.URL+"/sessions", map[string]any{
		"database": "db",
		"options":  map[string]any{"derive": "sometimes"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST bad derive mode = %d", resp.StatusCode)
	}
}
