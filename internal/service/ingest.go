package service

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// ingestFlushEvery is how often (in events) streaming ingestion publishes a
// progress snapshot and advances the ingest metric series.
const ingestFlushEvery = 4096

// countingReader counts the bytes read through it.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// publishIngest publishes an ingest-phase progress snapshot: the session is
// still pending (no worker slot is held while the trace streams in), but
// subscribers on the event stream see ingestion advance live.
func (s *Session) publishIngest(events, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.progress = core.Progress{
		Phase:          core.PhaseIngest,
		IngestedEvents: events,
		IngestedBytes:  bytes,
		Elapsed:        time.Since(s.created),
	}
	s.publishLocked()
}

// CreateStreaming creates a tuning session whose workload arrives as a raw
// profiler trace (the workload.ReadTrace line format) streamed from trace.
// The trace is never materialized: each line is parsed and folded straight
// into an online workload.Compressor, so a multi-million-event trace is
// ingested in O(templates × MaxPerTemplate) workload memory. Ingestion runs
// synchronously on the caller's goroutine (the HTTP handler streams the
// request body through it); the session is visible and its event stream
// publishes ingest-phase progress while the trace is still arriving, and the
// tuning run is launched when ingestion completes.
//
// req.Workload is ignored — the trace is the workload. A malformed trace
// (unparseable SQL, non-finite or negative weight/duration, no statements at
// all) fails the session with a line-numbered error; the failed session is
// returned alongside the error so callers can surface its ID. Streaming
// sessions are not persisted to the manager's state directory: their
// workload exists only as compressor output, which a manifest of wire
// statements cannot faithfully restore.
func (m *Manager) CreateStreaming(req Request, trace io.Reader) (*Session, error) {
	b, err := m.backend(req.Backend)
	if err != nil {
		return nil, err
	}
	opts := req.Options
	if opts.BaseConfig == nil {
		opts.BaseConfig = b.BaseConfig
	}
	opts.Parallelism = m.clampParallelism(opts.Parallelism)
	if opts.Faults != nil {
		opts.Faults.SetMetrics(m.reg)
	}

	ctx, cancel := context.WithCancel(context.Background())
	s, err := m.addSession("", b.Name, "", cancel)
	if err != nil {
		cancel()
		return nil, err
	}
	s.cons = opts.SearchConstraints()
	m.log.Info("session created (streaming ingest)", "session", s.id, "backend", b.Name)

	// The ingest span precedes the session root span run() opens; both land
	// on the same per-session trace, so the timeline shows ingest → queued →
	// phases in order.
	_, sp := obs.StartSpan(obs.WithTrace(ctx, s.trace), "session", "ingest")

	comp := workload.NewCompressor(workload.CompressOptions{MaxPerTemplate: opts.MaxPerTemplate})
	cr := &countingReader{r: trace}
	var lastEvents, lastBytes int64
	flush := func() {
		ev, by := comp.Events(), cr.n
		m.cIngestEvents.Add(float64(ev - lastEvents))
		m.cIngestBytes.Add(float64(by - lastBytes))
		lastEvents, lastBytes = ev, by
		s.publishIngest(ev, by)
	}
	err = workload.StreamTrace(cr, func(e *workload.Event, line int) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if aerr := comp.Add(e); aerr != nil {
			return aerr
		}
		if comp.Events()%ingestFlushEvery == 0 {
			flush()
		}
		return nil
	})
	if err == nil && comp.Events() == 0 {
		err = fmt.Errorf("service: trace contains no statements")
	}
	flush()
	if err != nil {
		sp.SetArg("error", err.Error()).End()
		if ctx.Err() != nil {
			m.cancelled.Add(1)
			m.cFinished[StateCancelled].Inc()
			m.log.Info("session cancelled during ingest", "session", s.id)
			s.finish(StateCancelled, nil, err)
		} else {
			m.failed.Add(1)
			m.cFinished[StateFailed].Inc()
			m.log.Warn("trace ingest failed", "session", s.id, "error", err)
			s.finish(StateFailed, nil, err)
		}
		return s, err
	}

	w := comp.Workload()
	m.hTemplates.Observe(float64(comp.Templates()))
	m.hRatio.Observe(comp.Ratio())
	sp.SetArg("events", comp.Events()).SetArg("bytes", cr.n).
		SetArg("templates", comp.Templates()).SetArg("representatives", w.Len()).End()
	opts.Ingest = &core.IngestStats{Events: comp.Events(), Bytes: cr.n, Templates: comp.Templates()}
	m.log.Info("trace ingested", "session", s.id,
		"events", comp.Events(), "bytes", cr.n,
		"templates", comp.Templates(), "representatives", w.Len())

	go m.run(ctx, s, b, w, opts)
	return s, nil
}
