package service_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/workload"
)

// traceBody renders a templated trace over the small test server's tables:
// events raw statements across two templates with weights and durations.
func traceBody(events int) string {
	var b strings.Builder
	for i := 0; i < events; i++ {
		if i%2 == 0 {
			fmt.Fprintf(&b, "2\t0.5\tSELECT id FROM t WHERE x = %d\n", (i*37)%2000)
		} else {
			fmt.Fprintf(&b, "SELECT SUM(amt) FROM t WHERE a = %d\n", i%100)
		}
	}
	return b.String()
}

func postTrace(t *testing.T, base, query, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/sessions/trace?"+query, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestHTTPStreamingIngest(t *testing.T) {
	m, ts, _ := newTestAPI(t, 2)

	const events = 10000
	opts, _ := json.Marshal(map[string]any{"features": "IDX", "skipReports": true})
	q := "database=db&options=" + url.QueryEscape(string(opts))
	resp, raw := postTrace(t, ts.URL, q, traceBody(events))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /sessions/trace = %d: %s", resp.StatusCode, raw)
	}
	var snap service.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Progress.IngestedEvents != events {
		t.Fatalf("ingested %d events, want %d", snap.Progress.IngestedEvents, events)
	}
	if snap.Progress.IngestedBytes == 0 {
		t.Fatal("ingested bytes not reported")
	}

	final := waitTerminal(t, ts.URL, snap.ID)
	if final.State != service.StateDone {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}
	if final.Result == nil || final.Result.IngestedEvents != events {
		t.Fatalf("result must carry ingest volume: %+v", final.Result)
	}
	if final.Result.EventsTuned >= events/10 {
		t.Fatalf("compression did not engage: %d events tuned of %d raw", final.Result.EventsTuned, events)
	}
	if final.Result.Improvement <= 0 {
		t.Fatalf("no improvement: %+v", final.Result)
	}
	if final.Progress.IngestedEvents != events {
		t.Fatalf("terminal snapshot lost ingest volume: %+v", final.Progress)
	}

	// The event stream carries ingest-phase snapshots before the pipeline
	// phases (10k events with a 4096-event flush interval → at least two).
	streamResp, err := http.Get(ts.URL + "/sessions/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	ingestSnaps := 0
	sc := bufio.NewScanner(streamResp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev service.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // final line is a Snapshot, not an Event
		}
		if ev.Progress.Phase == core.PhaseIngest {
			ingestSnaps++
		}
	}
	if ingestSnaps < 2 {
		t.Fatalf("want ≥ 2 ingest-phase events in the stream, got %d", ingestSnaps)
	}

	// The ingest metric series moved.
	mreq, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	mresp, err := http.DefaultClient.Do(mreq)
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	prom, _ := io.ReadAll(mresp.Body)
	text := string(prom)
	for _, series := range []string{"dta_ingest_events_total", "dta_ingest_bytes_total", "dta_compress_templates", "dta_compress_ratio"} {
		if !strings.Contains(text, series) {
			t.Fatalf("metric %s missing from exposition", series)
		}
	}
	if !strings.Contains(text, fmt.Sprintf("dta_ingest_events_total %d", events)) {
		t.Fatalf("dta_ingest_events_total should read %d:\n%s", events, grepLines(text, "dta_ingest"))
	}
	_ = m
}

// grepLines returns the lines of s containing substr (test failure output).
func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

func TestHTTPStreamingIngestMalformedTrace(t *testing.T) {
	_, ts, _ := newTestAPI(t, 2)

	body := "SELECT id FROM t WHERE x = 1\nNaN\tSELECT id FROM t WHERE x = 2\n"
	resp, raw := postTrace(t, ts.URL, "database=db", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed trace: status = %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error   string `json:"error"`
		Session string `json:"session"`
	}
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "line 2") || !strings.Contains(e.Error, "non-finite weight") {
		t.Fatalf("error not line-numbered: %q", e.Error)
	}
	// The failed session is still visible for post-mortem.
	if e.Session == "" {
		t.Fatal("failed session ID missing from error response")
	}
	code, snap := getSnapshot(t, ts.URL+"/sessions/"+e.Session)
	if code != http.StatusOK || snap.State != service.StateFailed {
		t.Fatalf("failed ingest session: code=%d state=%s", code, snap.State)
	}

	// An empty trace also fails cleanly.
	resp2, raw2 := postTrace(t, ts.URL, "database=db", "# only a comment\n")
	if resp2.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw2), "no statements") {
		t.Fatalf("empty trace: status=%d body=%s", resp2.StatusCode, raw2)
	}

	// Bad options JSON never creates a session.
	resp3, raw3 := postTrace(t, ts.URL, "database=db&options="+url.QueryEscape("{nope"), traceBody(2))
	if resp3.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw3), "bad options") {
		t.Fatalf("bad options: status=%d body=%s", resp3.StatusCode, raw3)
	}
}

func TestCreateStreamingMatchesBatchCreate(t *testing.T) {
	// The same trace through Create (materialized, batch-compressed) and
	// through streaming ingest must produce the same recommendation. Each
	// leg gets a fresh backend: concurrent sessions on one shared server
	// interleave statistics creation with costing, which perturbs cost
	// estimates at the last float digit regardless of ingest path.
	newMgr := func() *service.Manager {
		m := service.NewManager(1)
		if err := m.Register(&service.Backend{Name: "db", Tuner: smallServer(t)}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	const events = 600
	trace := traceBody(events)

	w, err := workload.ReadTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := newMgr().Create(service.Request{Backend: "db", Workload: w,
		Options: core.Options{Features: core.FeatureIndexes, SkipReports: true}})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := newMgr().CreateStreaming(service.Request{Backend: "db",
		Options: core.Options{Features: core.FeatureIndexes, SkipReports: true}}, strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	<-batch.Done()
	<-stream.Done()
	brec, berr := batch.Result()
	srec, serr := stream.Result()
	if berr != nil || serr != nil {
		t.Fatalf("errors: batch=%v stream=%v", berr, serr)
	}
	bs, ss := keyList(brec), keyList(srec)
	if bs != ss {
		t.Fatalf("recommendations differ:\nbatch:  %s\nstream: %s", bs, ss)
	}
	if brec.Improvement != srec.Improvement {
		t.Fatalf("improvement drifted: batch %.6f stream %.6f", brec.Improvement, srec.Improvement)
	}
	if !srec.Compressed || srec.IngestedEvents != events {
		t.Fatalf("stream recommendation: compressed=%v ingested=%d", srec.Compressed, srec.IngestedEvents)
	}
}

func keyList(rec *core.Recommendation) string {
	var out []string
	for _, st := range rec.NewStructures {
		out = append(out, st.Key())
	}
	return strings.Join(out, "\n")
}
